file(REMOVE_RECURSE
  "CMakeFiles/test_mobo.dir/test_mobo.cpp.o"
  "CMakeFiles/test_mobo.dir/test_mobo.cpp.o.d"
  "test_mobo"
  "test_mobo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
