# Empty compiler generated dependencies file for test_mobo.
# This may be replaced when dependencies are built.
