file(REMOVE_RECURSE
  "CMakeFiles/test_io_summary.dir/test_io_summary.cpp.o"
  "CMakeFiles/test_io_summary.dir/test_io_summary.cpp.o.d"
  "test_io_summary"
  "test_io_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
