# Empty dependencies file for test_nn_extras.
# This may be replaced when dependencies are built.
