file(REMOVE_RECURSE
  "CMakeFiles/test_nn_extras.dir/test_nn_extras.cpp.o"
  "CMakeFiles/test_nn_extras.dir/test_nn_extras.cpp.o.d"
  "test_nn_extras"
  "test_nn_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
