file(REMOVE_RECURSE
  "liblens_comm.a"
)
