
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/commcost.cpp" "src/comm/CMakeFiles/lens_comm.dir/commcost.cpp.o" "gcc" "src/comm/CMakeFiles/lens_comm.dir/commcost.cpp.o.d"
  "/root/repo/src/comm/trace.cpp" "src/comm/CMakeFiles/lens_comm.dir/trace.cpp.o" "gcc" "src/comm/CMakeFiles/lens_comm.dir/trace.cpp.o.d"
  "/root/repo/src/comm/trace_io.cpp" "src/comm/CMakeFiles/lens_comm.dir/trace_io.cpp.o" "gcc" "src/comm/CMakeFiles/lens_comm.dir/trace_io.cpp.o.d"
  "/root/repo/src/comm/wireless.cpp" "src/comm/CMakeFiles/lens_comm.dir/wireless.cpp.o" "gcc" "src/comm/CMakeFiles/lens_comm.dir/wireless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
