file(REMOVE_RECURSE
  "CMakeFiles/lens_comm.dir/commcost.cpp.o"
  "CMakeFiles/lens_comm.dir/commcost.cpp.o.d"
  "CMakeFiles/lens_comm.dir/trace.cpp.o"
  "CMakeFiles/lens_comm.dir/trace.cpp.o.d"
  "CMakeFiles/lens_comm.dir/trace_io.cpp.o"
  "CMakeFiles/lens_comm.dir/trace_io.cpp.o.d"
  "CMakeFiles/lens_comm.dir/wireless.cpp.o"
  "CMakeFiles/lens_comm.dir/wireless.cpp.o.d"
  "liblens_comm.a"
  "liblens_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
