# Empty compiler generated dependencies file for lens_comm.
# This may be replaced when dependencies are built.
