file(REMOVE_RECURSE
  "liblens_runtime.a"
)
