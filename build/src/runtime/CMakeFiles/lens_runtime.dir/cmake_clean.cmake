file(REMOVE_RECURSE
  "CMakeFiles/lens_runtime.dir/deployer.cpp.o"
  "CMakeFiles/lens_runtime.dir/deployer.cpp.o.d"
  "CMakeFiles/lens_runtime.dir/threshold.cpp.o"
  "CMakeFiles/lens_runtime.dir/threshold.cpp.o.d"
  "CMakeFiles/lens_runtime.dir/threshold_io.cpp.o"
  "CMakeFiles/lens_runtime.dir/threshold_io.cpp.o.d"
  "CMakeFiles/lens_runtime.dir/tracker.cpp.o"
  "CMakeFiles/lens_runtime.dir/tracker.cpp.o.d"
  "liblens_runtime.a"
  "liblens_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
