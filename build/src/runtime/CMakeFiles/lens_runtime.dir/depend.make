# Empty dependencies file for lens_runtime.
# This may be replaced when dependencies are built.
