file(REMOVE_RECURSE
  "liblens_sim.a"
)
