file(REMOVE_RECURSE
  "CMakeFiles/lens_sim.dir/battery.cpp.o"
  "CMakeFiles/lens_sim.dir/battery.cpp.o.d"
  "CMakeFiles/lens_sim.dir/link.cpp.o"
  "CMakeFiles/lens_sim.dir/link.cpp.o.d"
  "CMakeFiles/lens_sim.dir/system.cpp.o"
  "CMakeFiles/lens_sim.dir/system.cpp.o.d"
  "CMakeFiles/lens_sim.dir/timeline.cpp.o"
  "CMakeFiles/lens_sim.dir/timeline.cpp.o.d"
  "liblens_sim.a"
  "liblens_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
