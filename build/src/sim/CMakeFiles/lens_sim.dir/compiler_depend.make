# Empty compiler generated dependencies file for lens_sim.
# This may be replaced when dependencies are built.
