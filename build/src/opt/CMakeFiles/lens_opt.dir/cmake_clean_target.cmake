file(REMOVE_RECURSE
  "liblens_opt.a"
)
