file(REMOVE_RECURSE
  "CMakeFiles/lens_opt.dir/acquisition.cpp.o"
  "CMakeFiles/lens_opt.dir/acquisition.cpp.o.d"
  "CMakeFiles/lens_opt.dir/gp.cpp.o"
  "CMakeFiles/lens_opt.dir/gp.cpp.o.d"
  "CMakeFiles/lens_opt.dir/hypervolume.cpp.o"
  "CMakeFiles/lens_opt.dir/hypervolume.cpp.o.d"
  "CMakeFiles/lens_opt.dir/kernel.cpp.o"
  "CMakeFiles/lens_opt.dir/kernel.cpp.o.d"
  "CMakeFiles/lens_opt.dir/matrix.cpp.o"
  "CMakeFiles/lens_opt.dir/matrix.cpp.o.d"
  "CMakeFiles/lens_opt.dir/mobo.cpp.o"
  "CMakeFiles/lens_opt.dir/mobo.cpp.o.d"
  "CMakeFiles/lens_opt.dir/nsga2.cpp.o"
  "CMakeFiles/lens_opt.dir/nsga2.cpp.o.d"
  "CMakeFiles/lens_opt.dir/pareto.cpp.o"
  "CMakeFiles/lens_opt.dir/pareto.cpp.o.d"
  "CMakeFiles/lens_opt.dir/scalarization.cpp.o"
  "CMakeFiles/lens_opt.dir/scalarization.cpp.o.d"
  "liblens_opt.a"
  "liblens_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
