# Empty dependencies file for lens_opt.
# This may be replaced when dependencies are built.
