
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/acquisition.cpp" "src/opt/CMakeFiles/lens_opt.dir/acquisition.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/acquisition.cpp.o.d"
  "/root/repo/src/opt/gp.cpp" "src/opt/CMakeFiles/lens_opt.dir/gp.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/gp.cpp.o.d"
  "/root/repo/src/opt/hypervolume.cpp" "src/opt/CMakeFiles/lens_opt.dir/hypervolume.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/hypervolume.cpp.o.d"
  "/root/repo/src/opt/kernel.cpp" "src/opt/CMakeFiles/lens_opt.dir/kernel.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/kernel.cpp.o.d"
  "/root/repo/src/opt/matrix.cpp" "src/opt/CMakeFiles/lens_opt.dir/matrix.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/matrix.cpp.o.d"
  "/root/repo/src/opt/mobo.cpp" "src/opt/CMakeFiles/lens_opt.dir/mobo.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/mobo.cpp.o.d"
  "/root/repo/src/opt/nsga2.cpp" "src/opt/CMakeFiles/lens_opt.dir/nsga2.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/nsga2.cpp.o.d"
  "/root/repo/src/opt/pareto.cpp" "src/opt/CMakeFiles/lens_opt.dir/pareto.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/pareto.cpp.o.d"
  "/root/repo/src/opt/scalarization.cpp" "src/opt/CMakeFiles/lens_opt.dir/scalarization.cpp.o" "gcc" "src/opt/CMakeFiles/lens_opt.dir/scalarization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
