
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/lens_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/lens_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/avgpool.cpp" "src/nn/CMakeFiles/lens_nn.dir/avgpool.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/avgpool.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/lens_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/builder.cpp" "src/nn/CMakeFiles/lens_nn.dir/builder.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/builder.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/lens_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/lens_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/lens_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/lens_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/lens_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/lens_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/lens_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/lens_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/lens_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/lens_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/nn/CMakeFiles/lens_nn.dir/schedule.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/schedule.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/lens_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/lens_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/lens_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
