# Empty compiler generated dependencies file for lens_nn.
# This may be replaced when dependencies are built.
