file(REMOVE_RECURSE
  "liblens_nn.a"
)
