file(REMOVE_RECURSE
  "liblens_perf.a"
)
