
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/device.cpp" "src/perf/CMakeFiles/lens_perf.dir/device.cpp.o" "gcc" "src/perf/CMakeFiles/lens_perf.dir/device.cpp.o.d"
  "/root/repo/src/perf/predictor.cpp" "src/perf/CMakeFiles/lens_perf.dir/predictor.cpp.o" "gcc" "src/perf/CMakeFiles/lens_perf.dir/predictor.cpp.o.d"
  "/root/repo/src/perf/profiler.cpp" "src/perf/CMakeFiles/lens_perf.dir/profiler.cpp.o" "gcc" "src/perf/CMakeFiles/lens_perf.dir/profiler.cpp.o.d"
  "/root/repo/src/perf/simulator.cpp" "src/perf/CMakeFiles/lens_perf.dir/simulator.cpp.o" "gcc" "src/perf/CMakeFiles/lens_perf.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/lens_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lens_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lens_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
