file(REMOVE_RECURSE
  "CMakeFiles/lens_perf.dir/device.cpp.o"
  "CMakeFiles/lens_perf.dir/device.cpp.o.d"
  "CMakeFiles/lens_perf.dir/predictor.cpp.o"
  "CMakeFiles/lens_perf.dir/predictor.cpp.o.d"
  "CMakeFiles/lens_perf.dir/profiler.cpp.o"
  "CMakeFiles/lens_perf.dir/profiler.cpp.o.d"
  "CMakeFiles/lens_perf.dir/simulator.cpp.o"
  "CMakeFiles/lens_perf.dir/simulator.cpp.o.d"
  "liblens_perf.a"
  "liblens_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
