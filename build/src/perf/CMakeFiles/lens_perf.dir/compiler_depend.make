# Empty compiler generated dependencies file for lens_perf.
# This may be replaced when dependencies are built.
