file(REMOVE_RECURSE
  "CMakeFiles/lens_dnn.dir/architecture.cpp.o"
  "CMakeFiles/lens_dnn.dir/architecture.cpp.o.d"
  "CMakeFiles/lens_dnn.dir/layer.cpp.o"
  "CMakeFiles/lens_dnn.dir/layer.cpp.o.d"
  "CMakeFiles/lens_dnn.dir/presets.cpp.o"
  "CMakeFiles/lens_dnn.dir/presets.cpp.o.d"
  "CMakeFiles/lens_dnn.dir/summary.cpp.o"
  "CMakeFiles/lens_dnn.dir/summary.cpp.o.d"
  "liblens_dnn.a"
  "liblens_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
