file(REMOVE_RECURSE
  "liblens_dnn.a"
)
