# Empty dependencies file for lens_dnn.
# This may be replaced when dependencies are built.
