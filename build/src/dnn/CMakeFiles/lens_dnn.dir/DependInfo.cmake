
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/architecture.cpp" "src/dnn/CMakeFiles/lens_dnn.dir/architecture.cpp.o" "gcc" "src/dnn/CMakeFiles/lens_dnn.dir/architecture.cpp.o.d"
  "/root/repo/src/dnn/layer.cpp" "src/dnn/CMakeFiles/lens_dnn.dir/layer.cpp.o" "gcc" "src/dnn/CMakeFiles/lens_dnn.dir/layer.cpp.o.d"
  "/root/repo/src/dnn/presets.cpp" "src/dnn/CMakeFiles/lens_dnn.dir/presets.cpp.o" "gcc" "src/dnn/CMakeFiles/lens_dnn.dir/presets.cpp.o.d"
  "/root/repo/src/dnn/summary.cpp" "src/dnn/CMakeFiles/lens_dnn.dir/summary.cpp.o" "gcc" "src/dnn/CMakeFiles/lens_dnn.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
