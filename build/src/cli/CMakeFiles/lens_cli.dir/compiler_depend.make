# Empty compiler generated dependencies file for lens_cli.
# This may be replaced when dependencies are built.
