file(REMOVE_RECURSE
  "liblens_cli.a"
)
