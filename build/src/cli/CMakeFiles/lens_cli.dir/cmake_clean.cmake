file(REMOVE_RECURSE
  "CMakeFiles/lens_cli.dir/args.cpp.o"
  "CMakeFiles/lens_cli.dir/args.cpp.o.d"
  "CMakeFiles/lens_cli.dir/commands.cpp.o"
  "CMakeFiles/lens_cli.dir/commands.cpp.o.d"
  "liblens_cli.a"
  "liblens_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
