file(REMOVE_RECURSE
  "liblens_ml.a"
)
