file(REMOVE_RECURSE
  "CMakeFiles/lens_ml.dir/features.cpp.o"
  "CMakeFiles/lens_ml.dir/features.cpp.o.d"
  "CMakeFiles/lens_ml.dir/metrics.cpp.o"
  "CMakeFiles/lens_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/lens_ml.dir/ridge.cpp.o"
  "CMakeFiles/lens_ml.dir/ridge.cpp.o.d"
  "CMakeFiles/lens_ml.dir/roofline.cpp.o"
  "CMakeFiles/lens_ml.dir/roofline.cpp.o.d"
  "liblens_ml.a"
  "liblens_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
