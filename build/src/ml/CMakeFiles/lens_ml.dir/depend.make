# Empty dependencies file for lens_ml.
# This may be replaced when dependencies are built.
