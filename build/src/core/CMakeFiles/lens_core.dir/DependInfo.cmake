
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/lens_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/lens_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/lens_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/lens_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/export.cpp.o.d"
  "/root/repo/src/core/nas.cpp" "src/core/CMakeFiles/lens_core.dir/nas.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/nas.cpp.o.d"
  "/root/repo/src/core/portfolio.cpp" "src/core/CMakeFiles/lens_core.dir/portfolio.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/portfolio.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/lens_core.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/refine.cpp.o.d"
  "/root/repo/src/core/robust.cpp" "src/core/CMakeFiles/lens_core.dir/robust.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/robust.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/core/CMakeFiles/lens_core.dir/search_space.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/search_space.cpp.o.d"
  "/root/repo/src/core/trained_accuracy.cpp" "src/core/CMakeFiles/lens_core.dir/trained_accuracy.cpp.o" "gcc" "src/core/CMakeFiles/lens_core.dir/trained_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/lens_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/lens_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lens_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lens_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lens_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lens_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
