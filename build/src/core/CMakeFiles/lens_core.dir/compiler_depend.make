# Empty compiler generated dependencies file for lens_core.
# This may be replaced when dependencies are built.
