file(REMOVE_RECURSE
  "liblens_core.a"
)
