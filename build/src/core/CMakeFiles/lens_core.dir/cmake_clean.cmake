file(REMOVE_RECURSE
  "CMakeFiles/lens_core.dir/accuracy.cpp.o"
  "CMakeFiles/lens_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/lens_core.dir/analysis.cpp.o"
  "CMakeFiles/lens_core.dir/analysis.cpp.o.d"
  "CMakeFiles/lens_core.dir/evaluator.cpp.o"
  "CMakeFiles/lens_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/lens_core.dir/export.cpp.o"
  "CMakeFiles/lens_core.dir/export.cpp.o.d"
  "CMakeFiles/lens_core.dir/nas.cpp.o"
  "CMakeFiles/lens_core.dir/nas.cpp.o.d"
  "CMakeFiles/lens_core.dir/portfolio.cpp.o"
  "CMakeFiles/lens_core.dir/portfolio.cpp.o.d"
  "CMakeFiles/lens_core.dir/refine.cpp.o"
  "CMakeFiles/lens_core.dir/refine.cpp.o.d"
  "CMakeFiles/lens_core.dir/robust.cpp.o"
  "CMakeFiles/lens_core.dir/robust.cpp.o.d"
  "CMakeFiles/lens_core.dir/search_space.cpp.o"
  "CMakeFiles/lens_core.dir/search_space.cpp.o.d"
  "CMakeFiles/lens_core.dir/trained_accuracy.cpp.o"
  "CMakeFiles/lens_core.dir/trained_accuracy.cpp.o.d"
  "liblens_core.a"
  "liblens_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
