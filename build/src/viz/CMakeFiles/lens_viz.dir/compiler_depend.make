# Empty compiler generated dependencies file for lens_viz.
# This may be replaced when dependencies are built.
