file(REMOVE_RECURSE
  "liblens_viz.a"
)
