file(REMOVE_RECURSE
  "CMakeFiles/lens_viz.dir/ascii.cpp.o"
  "CMakeFiles/lens_viz.dir/ascii.cpp.o.d"
  "liblens_viz.a"
  "liblens_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
