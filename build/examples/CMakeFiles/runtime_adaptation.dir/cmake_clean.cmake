file(REMOVE_RECURSE
  "CMakeFiles/runtime_adaptation.dir/runtime_adaptation.cpp.o"
  "CMakeFiles/runtime_adaptation.dir/runtime_adaptation.cpp.o.d"
  "runtime_adaptation"
  "runtime_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
