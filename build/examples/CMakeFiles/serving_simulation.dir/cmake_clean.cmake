file(REMOVE_RECURSE
  "CMakeFiles/serving_simulation.dir/serving_simulation.cpp.o"
  "CMakeFiles/serving_simulation.dir/serving_simulation.cpp.o.d"
  "serving_simulation"
  "serving_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
