
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/memory_constrained.cpp" "examples/CMakeFiles/memory_constrained.dir/memory_constrained.cpp.o" "gcc" "examples/CMakeFiles/memory_constrained.dir/memory_constrained.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/lens_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lens_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lens_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lens_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/lens_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lens_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/lens_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lens_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lens_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
