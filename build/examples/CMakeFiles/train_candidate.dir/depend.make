# Empty dependencies file for train_candidate.
# This may be replaced when dependencies are built.
