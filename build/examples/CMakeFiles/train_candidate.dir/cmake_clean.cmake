file(REMOVE_RECURSE
  "CMakeFiles/train_candidate.dir/train_candidate.cpp.o"
  "CMakeFiles/train_candidate.dir/train_candidate.cpp.o.d"
  "train_candidate"
  "train_candidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_candidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
