file(REMOVE_RECURSE
  "CMakeFiles/regional_deployment.dir/regional_deployment.cpp.o"
  "CMakeFiles/regional_deployment.dir/regional_deployment.cpp.o.d"
  "regional_deployment"
  "regional_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
