# Empty compiler generated dependencies file for regional_deployment.
# This may be replaced when dependencies are built.
