file(REMOVE_RECURSE
  "CMakeFiles/lens-cli.dir/lens_cli_main.cpp.o"
  "CMakeFiles/lens-cli.dir/lens_cli_main.cpp.o.d"
  "lens-cli"
  "lens-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
