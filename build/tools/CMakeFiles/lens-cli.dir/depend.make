# Empty dependencies file for lens-cli.
# This may be replaced when dependencies are built.
