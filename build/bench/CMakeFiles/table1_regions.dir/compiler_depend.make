# Empty compiler generated dependencies file for table1_regions.
# This may be replaced when dependencies are built.
