file(REMOVE_RECURSE
  "CMakeFiles/table1_regions.dir/table1_regions.cpp.o"
  "CMakeFiles/table1_regions.dir/table1_regions.cpp.o.d"
  "table1_regions"
  "table1_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
