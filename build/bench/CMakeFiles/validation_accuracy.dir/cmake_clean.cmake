file(REMOVE_RECURSE
  "CMakeFiles/validation_accuracy.dir/validation_accuracy.cpp.o"
  "CMakeFiles/validation_accuracy.dir/validation_accuracy.cpp.o.d"
  "validation_accuracy"
  "validation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
