# Empty dependencies file for validation_accuracy.
# This may be replaced when dependencies are built.
