file(REMOVE_RECURSE
  "CMakeFiles/fig7_criteria.dir/fig7_criteria.cpp.o"
  "CMakeFiles/fig7_criteria.dir/fig7_criteria.cpp.o.d"
  "fig7_criteria"
  "fig7_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
