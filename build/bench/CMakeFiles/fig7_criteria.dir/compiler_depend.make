# Empty compiler generated dependencies file for fig7_criteria.
# This may be replaced when dependencies are built.
