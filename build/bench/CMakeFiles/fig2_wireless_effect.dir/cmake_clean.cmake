file(REMOVE_RECURSE
  "CMakeFiles/fig2_wireless_effect.dir/fig2_wireless_effect.cpp.o"
  "CMakeFiles/fig2_wireless_effect.dir/fig2_wireless_effect.cpp.o.d"
  "fig2_wireless_effect"
  "fig2_wireless_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_wireless_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
