# Empty compiler generated dependencies file for fig2_wireless_effect.
# This may be replaced when dependencies are built.
