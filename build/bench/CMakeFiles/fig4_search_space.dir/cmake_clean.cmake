file(REMOVE_RECURSE
  "CMakeFiles/fig4_search_space.dir/fig4_search_space.cpp.o"
  "CMakeFiles/fig4_search_space.dir/fig4_search_space.cpp.o.d"
  "fig4_search_space"
  "fig4_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
