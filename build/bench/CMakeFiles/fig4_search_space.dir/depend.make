# Empty dependencies file for fig4_search_space.
# This may be replaced when dependencies are built.
