# Empty compiler generated dependencies file for fig8_runtime.
# This may be replaced when dependencies are built.
