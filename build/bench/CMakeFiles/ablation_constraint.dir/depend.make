# Empty dependencies file for ablation_constraint.
# This may be replaced when dependencies are built.
