file(REMOVE_RECURSE
  "CMakeFiles/ablation_constraint.dir/ablation_constraint.cpp.o"
  "CMakeFiles/ablation_constraint.dir/ablation_constraint.cpp.o.d"
  "ablation_constraint"
  "ablation_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
