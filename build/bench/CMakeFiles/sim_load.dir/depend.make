# Empty dependencies file for sim_load.
# This may be replaced when dependencies are built.
