file(REMOVE_RECURSE
  "CMakeFiles/sim_load.dir/sim_load.cpp.o"
  "CMakeFiles/sim_load.dir/sim_load.cpp.o.d"
  "sim_load"
  "sim_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
