# Empty compiler generated dependencies file for ablation_robust.
# This may be replaced when dependencies are built.
