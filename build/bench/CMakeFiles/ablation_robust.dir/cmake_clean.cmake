file(REMOVE_RECURSE
  "CMakeFiles/ablation_robust.dir/ablation_robust.cpp.o"
  "CMakeFiles/ablation_robust.dir/ablation_robust.cpp.o.d"
  "ablation_robust"
  "ablation_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
