# Empty compiler generated dependencies file for fig5_runtime_system.
# This may be replaced when dependencies are built.
