file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_system.dir/fig5_runtime_system.cpp.o"
  "CMakeFiles/fig5_runtime_system.dir/fig5_runtime_system.cpp.o.d"
  "fig5_runtime_system"
  "fig5_runtime_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
