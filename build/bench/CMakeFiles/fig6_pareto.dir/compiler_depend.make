# Empty compiler generated dependencies file for fig6_pareto.
# This may be replaced when dependencies are built.
