file(REMOVE_RECURSE
  "CMakeFiles/fig6_pareto.dir/fig6_pareto.cpp.o"
  "CMakeFiles/fig6_pareto.dir/fig6_pareto.cpp.o.d"
  "fig6_pareto"
  "fig6_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
