file(REMOVE_RECURSE
  "CMakeFiles/ablation_cloud.dir/ablation_cloud.cpp.o"
  "CMakeFiles/ablation_cloud.dir/ablation_cloud.cpp.o.d"
  "ablation_cloud"
  "ablation_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
