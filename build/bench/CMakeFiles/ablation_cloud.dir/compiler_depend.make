# Empty compiler generated dependencies file for ablation_cloud.
# This may be replaced when dependencies are built.
