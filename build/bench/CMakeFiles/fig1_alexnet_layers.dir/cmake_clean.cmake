file(REMOVE_RECURSE
  "CMakeFiles/fig1_alexnet_layers.dir/fig1_alexnet_layers.cpp.o"
  "CMakeFiles/fig1_alexnet_layers.dir/fig1_alexnet_layers.cpp.o.d"
  "fig1_alexnet_layers"
  "fig1_alexnet_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_alexnet_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
