# Empty dependencies file for fig1_alexnet_layers.
# This may be replaced when dependencies are built.
