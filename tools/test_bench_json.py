#!/usr/bin/env python3
"""Unit tests for the shared bench-JSON footer helper (bench_json.py).

The fixture replicates what io::atomic_write_checked emits: a JSON payload
followed by the `# lens:fnv1a <hex16> <bytes>` integrity footer. Every bench
JSON consumer (check_thread_scaling.py gating BENCH_parallel.json and
BENCH_fleet.json) loads through this helper, so this is the seam that keeps
footer handling from regressing."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_json import load_stripped_json, strip_footer


FIXTURE = (
    '{\n'
    '  "results": [\n'
    '    {"name": "config", "hardware_threads": 8},\n'
    '    {"name": "threads=8", "speedup_vs_1_thread": 5.5}\n'
    '  ]\n'
    '}\n'
    '# lens:fnv1a cbf29ce484222325 104\n'
)


class StripFooterTest(unittest.TestCase):
    def test_strips_checksum_footer(self):
        stripped = strip_footer(FIXTURE)
        self.assertNotIn("fnv1a", stripped)
        doc = json.loads(stripped)
        self.assertEqual(doc["results"][0]["hardware_threads"], 8)

    def test_strips_indented_comment_lines_only(self):
        text = '{"a": 1}\n   # indented footer\n# another\n'
        self.assertEqual(json.loads(strip_footer(text)), {"a": 1})

    def test_preserves_hash_inside_strings(self):
        # A '#' inside a JSON string is payload, not footer: the stripper
        # only drops lines that *start* with '#'.
        text = '{"label": "bench #4"}\n# lens:fnv1a 0 0\n'
        self.assertEqual(json.loads(strip_footer(text))["label"], "bench #4")

    def test_no_footer_is_identity(self):
        text = '{"a": [1, 2, 3]}'
        self.assertEqual(strip_footer(text), text)


class LoadStrippedJsonTest(unittest.TestCase):
    def test_loads_footer_bearing_file(self):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8"
        ) as f:
            f.write(FIXTURE)
            path = f.name
        try:
            doc = load_stripped_json(path)
            records = {r["name"]: r for r in doc["results"]}
            self.assertEqual(records["threads=8"]["speedup_vs_1_thread"], 5.5)
        finally:
            os.unlink(path)

    def test_check_thread_scaling_imports_shared_helper(self):
        import check_thread_scaling

        self.assertIs(check_thread_scaling.load_stripped_json, load_stripped_json)


if __name__ == "__main__":
    unittest.main()
