#!/usr/bin/env python3
"""Shared loader for bench JSON artifacts (BENCH_*.json).

Every bench artifact in this repo is written through io::atomic_write_checked,
which appends a `# lens:fnv1a <hex16> <bytes>` integrity footer after the JSON
payload. Python consumers must strip that footer (and any other `#`-prefixed
line) before json.loads — this module is the one place that rule lives, so no
consumer grows its own ad-hoc stripping again.
"""

import json

FOOTER_PREFIX = "# lens:fnv1a"


def strip_footer(text):
    """Drop `#`-prefixed lines (the integrity footer) from a bench artifact."""
    return "\n".join(
        line for line in text.splitlines() if not line.lstrip().startswith("#")
    )


def load_stripped_json(path):
    """json.loads of a bench artifact, integrity footer stripped."""
    with open(path, "r", encoding="utf-8") as f:
        return json.loads(strip_footer(f.read()))
