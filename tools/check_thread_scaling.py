#!/usr/bin/env python3
"""CI regression gate for the parallel layer's thread scaling.

Parses BENCH_parallel.json (written by bench/bench_parallel via
io::atomic_write_checked, so the file ends with a `# lens:fnv1a <hex> <bytes>`
integrity footer that must be stripped before json.loads) and fails the build
when the 8-thread speedup of the fixed MOBO search regresses below the floor.

Hardware awareness: wall-clock speedup only exists when the runner has the
cores. With >= 8 hardware threads the gate uses the measured wall speedup;
with fewer it falls back to the probe's modeled speedup (per-chunk CPU times
list-scheduled onto 8 virtual workers plus the serial remainder — see
src/par/probe.hpp), which is what the chunk structure supports independent of
the recording machine. Either way the determinism bit
(identical_to_reference) must hold for every thread count.

Usage: check_thread_scaling.py [BENCH_parallel.json] [--min-speedup X]
"""

import argparse
import json
import sys

from bench_json import load_stripped_json

DEFAULT_MIN_SPEEDUP = 3.0
GATED_THREADS = 8


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json_path", nargs="?", default="BENCH_parallel.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=f"floor for the {GATED_THREADS}-thread speedup "
        f"(default {DEFAULT_MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    try:
        doc = load_stripped_json(args.json_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {args.json_path}: {e}")
        return 1

    records = {r.get("name"): r for r in doc.get("results", [])}
    config = records.get("config", {})
    hardware = int(config.get("hardware_threads", 0))
    gated = records.get(f"threads={GATED_THREADS}")
    if gated is None:
        print(f"FAIL: {args.json_path} has no threads={GATED_THREADS} record")
        return 1

    failures = []
    for name, record in records.items():
        if not name.startswith("threads="):
            continue
        if record.get("identical_to_reference") != 1.0:
            failures.append(f"{name}: NOT bit-identical to the 1-thread reference")

    wall = gated.get("speedup_vs_1_thread", 0.0)
    modeled = gated.get("modeled_speedup", 0.0)
    if hardware >= GATED_THREADS:
        metric, value = "wall", wall
        print(
            f"runner has {hardware} hardware threads: gating on measured "
            f"wall speedup (modeled: {modeled:.2f}x)"
        )
    else:
        metric, value = "modeled", modeled
        print(
            f"runner has only {hardware} hardware thread(s): wall speedup "
            f"({wall:.2f}x) is meaningless here; gating on the probe's "
            f"modeled speedup instead"
        )
    if value < args.min_speedup:
        failures.append(
            f"threads={GATED_THREADS}: {metric} speedup {value:.2f}x is below "
            f"the {args.min_speedup:.2f}x floor"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: threads={GATED_THREADS} {metric} speedup {value:.2f}x >= "
        f"{args.min_speedup:.2f}x, determinism bit set at every thread count"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
