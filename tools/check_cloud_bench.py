#!/usr/bin/env python3
"""CI regression gate for the finite-cloud placement-policy duel.

Parses BENCH_cloud.json (written by bench/bench_cloud via
io::atomic_write_checked — integrity footer stripped by bench_json) and
enforces the duel's contract:

  1. Both placement policies are present.
  2. The pool is homogeneous, so admission is policy-independent: the shed
     rate (and the SLA-violation rate) must match EXACTLY between greedy
     first-fit and energy-aware best-fit.
  3. At that equal shed rate, consolidation must not cost energy: best-fit
     datacenter energy <= greedy datacenter energy.

Usage: check_cloud_bench.py [BENCH_cloud.json]
"""

import argparse
import json

from bench_json import load_stripped_json

GREEDY = "policy=greedy-first-fit"
BEST_FIT = "policy=energy-best-fit"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json_path", nargs="?", default="BENCH_cloud.json")
    args = parser.parse_args(argv)

    try:
        doc = load_stripped_json(args.json_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {args.json_path}: {e}")
        return 1

    records = {r.get("name"): r for r in doc.get("results", [])}
    failures = []

    greedy = records.get(GREEDY)
    best_fit = records.get(BEST_FIT)
    if greedy is None:
        failures.append(f"missing record {GREEDY}")
    if best_fit is None:
        failures.append(f"missing record {BEST_FIT}")

    if greedy is not None and best_fit is not None:
        for column in ("shed_rate", "sla_violation_rate"):
            g, b = greedy.get(column), best_fit.get(column)
            if g is None or b is None:
                failures.append(f"missing column {column}")
            elif g != b:
                failures.append(
                    f"{column} differs between policies ({g!r} vs {b!r}): "
                    "a homogeneous pool must admit identically"
                )
        g_energy = greedy.get("datacenter_energy_j")
        b_energy = best_fit.get("datacenter_energy_j")
        if g_energy is None or b_energy is None:
            failures.append("missing column datacenter_energy_j")
        elif not g_energy > 0.0:
            failures.append(
                f"greedy datacenter_energy_j is {g_energy!r}; the pool "
                "should burn measurable power under fleet load"
            )
        elif b_energy > g_energy:
            failures.append(
                f"energy-best-fit burned MORE energy than greedy "
                f"({b_energy:.1f} J > {g_energy:.1f} J) at equal shed rate"
            )
        else:
            saved = 100.0 * (1.0 - b_energy / g_energy)
            print(
                f"OK: shed rate {greedy['shed_rate']:.4f} equal across "
                f"policies; consolidation saves {saved:.1f}% datacenter energy"
            )

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: {args.json_path} passes the placement-duel gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
