// lens-cli: command-line front end to the LENS library.
// See `lens-cli help` for usage.

#include "cli/args.hpp"
#include "cli/commands.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  try {
    return lens::cli::run_command(lens::cli::Args::parse(argc, argv));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lens-cli: %s\n", error.what());
    return 1;
  }
}
