// Tests for the lens::io durability layer, the MOBO snapshot/restore
// contract (bit-identical continuation), and the NasDriver run-checkpoint
// loop: every persisted format must reject truncation at *any* byte offset,
// and a resumed search must reproduce the uninterrupted trajectory exactly.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/trace_io.hpp"
#include "core/export.hpp"
#include "core/nas.hpp"
#include "core/run_checkpoint.hpp"
#include "io/io.hpp"
#include "nn/checkpoint.hpp"
#include "nn/dense.hpp"
#include "opt/mobo.hpp"
#include "perf/predictor.hpp"
#include "runtime/threshold_io.hpp"

namespace lens {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

/// The core durability property: a loader must throw for *every* strict
/// prefix of a valid file — no byte offset may yield a silently partial
/// result.
template <typename Loader>
void expect_rejects_every_truncation(const std::string& valid_path, Loader&& loader) {
  const std::string contents = read_file(valid_path);
  ASSERT_FALSE(contents.empty());
  const std::string trunc = valid_path + ".trunc";
  for (std::size_t n = 0; n < contents.size(); ++n) {
    write_file(trunc, contents.substr(0, n));
    EXPECT_THROW(loader(trunc), std::exception) << "prefix of " << n << " bytes accepted";
  }
  std::remove(trunc.c_str());
}

// ---- FNV-1a and the double codec ---------------------------------------------

TEST(Fnv1a, DefinitionAndChaining) {
  EXPECT_EQ(io::fnv1a(""), io::kFnvOffsetBasis);
  // One xor-then-multiply round per byte, seeded with the same offset basis
  // the MOBO duplicate index and the genotype cache use.
  EXPECT_EQ(io::fnv1a("a"), (io::kFnvOffsetBasis ^ std::uint64_t{'a'}) * io::kFnvPrime);
  EXPECT_EQ(io::fnv1a("ab"),
            ((io::fnv1a("a")) ^ std::uint64_t{'b'}) * io::kFnvPrime);
  EXPECT_EQ(io::fnv1a("bar", io::fnv1a("foo")), io::fnv1a("foobar"));
  EXPECT_NE(io::fnv1a("alpha"), io::fnv1a("alphb"));
}

TEST(DoubleCodec, BitExactRoundTrip) {
  const double values[] = {0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           -2.5e-308,  // denormal territory
                           5e-324,     // smallest positive denormal
                           1.7976931348623157e308,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (double v : values) {
    const std::string hex = io::encode_double(v);
    EXPECT_EQ(hex.size(), 16u);
    const double back = io::decode_double(hex);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0) << hex;
  }
  // Signed zero and NaN payloads survive too (operator== can't see these).
  EXPECT_TRUE(std::signbit(io::decode_double(io::encode_double(-0.0))));
  EXPECT_TRUE(std::isnan(io::decode_double(
      io::encode_double(std::numeric_limits<double>::quiet_NaN()))));
}

TEST(DoubleCodec, RejectsMalformedHex) {
  EXPECT_THROW(io::decode_double(""), std::invalid_argument);
  EXPECT_THROW(io::decode_double("1234"), std::invalid_argument);
  EXPECT_THROW(io::decode_double("0123456789abcdef0"), std::invalid_argument);
  EXPECT_THROW(io::decode_double("0123456789ABCDEF"), std::invalid_argument);
  EXPECT_THROW(io::decode_double("0123456789abcdeg"), std::invalid_argument);
}

// ---- atomic_write ------------------------------------------------------------

TEST(AtomicWrite, ReplacesDurablyAndCleansUpOnFailure) {
  const std::string path = temp_path("atomic.txt");
  io::atomic_write(path, [](std::ostream& out) { out << "first\n"; });
  EXPECT_EQ(read_file(path), "first\n");
  io::atomic_write(path, [](std::ostream& out) { out << "second\n"; });
  EXPECT_EQ(read_file(path), "second\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // A writer that throws must leave the previous contents untouched and no
  // temp file behind.
  EXPECT_THROW(io::atomic_write(path,
                                [](std::ostream&) {
                                  throw std::logic_error("boom");
                                }),
               std::logic_error);
  EXPECT_EQ(read_file(path), "second\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // A writer that fails the stream surfaces as runtime_error, same cleanup.
  EXPECT_THROW(io::atomic_write(path,
                                [](std::ostream& out) {
                                  out.setstate(std::ios::failbit);
                                }),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "second\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  EXPECT_THROW(io::atomic_write("/nonexistent-dir/x.txt", [](std::ostream&) {}),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---- checked container -------------------------------------------------------

TEST(CheckedContainer, RoundTripAndFooterNormalization) {
  const std::string path = temp_path("checked.txt");
  io::atomic_write_checked(path, [](std::ostream& out) { out << "alpha\nbeta\n"; });
  EXPECT_EQ(io::read_checked(path), "alpha\nbeta\n");
  // The raw file still starts with the verbatim payload (external tools can
  // read it, skipping '#' comments).
  EXPECT_EQ(read_file(path).rfind("alpha\nbeta\n# lens:fnv1a ", 0), 0u);

  // A payload without a trailing newline gets one so the footer starts on
  // its own line.
  io::atomic_write_checked(path, [](std::ostream& out) { out << "no-newline"; });
  EXPECT_EQ(io::read_checked(path), "no-newline\n");
  std::remove(path.c_str());
}

TEST(CheckedContainer, RejectsTruncationAtEveryOffset) {
  const std::string path = temp_path("checked_trunc.txt");
  io::atomic_write_checked(path, [](std::ostream& out) { out << "alpha\nbeta\n"; });
  expect_rejects_every_truncation(path, [](const std::string& p) {
    return io::read_checked(p);
  });
  std::remove(path.c_str());
}

TEST(CheckedContainer, RejectsAnySingleByteFlipAndTrailingGarbage) {
  const std::string path = temp_path("checked_flip.txt");
  io::atomic_write_checked(path, [](std::ostream& out) { out << "alpha\nbeta\n"; });
  const std::string contents = read_file(path);
  const std::string mutated_path = path + ".mut";
  for (std::size_t i = 0; i < contents.size(); ++i) {
    std::string mutated = contents;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    write_file(mutated_path, mutated);
    EXPECT_THROW(io::read_checked(mutated_path), std::runtime_error) << "byte " << i;
  }
  write_file(mutated_path, contents + "x");
  EXPECT_THROW(io::read_checked(mutated_path), std::runtime_error);
  write_file(mutated_path, contents + "garbage\n");
  EXPECT_THROW(io::read_checked(mutated_path), std::runtime_error);
  std::remove(mutated_path.c_str());
  std::remove(path.c_str());
}

// ---- framed container --------------------------------------------------------

TEST(FramedContainer, RoundTripFormatCheckAndCorruption) {
  const std::string path = temp_path("framed.bin");
  const std::string payload = "line one\nline two\nbinary-ish \x01\x02\n";
  io::write_framed(path, "unit-test-v1", payload);
  EXPECT_EQ(io::read_framed(path, "unit-test-v1"), payload);
  EXPECT_THROW(io::read_framed(path, "other-format-v1"), std::runtime_error);
  EXPECT_THROW(io::write_framed(path, "has space", payload), std::invalid_argument);
  EXPECT_THROW(io::write_framed(path, "", payload), std::invalid_argument);

  expect_rejects_every_truncation(path, [](const std::string& p) {
    return io::read_framed(p, "unit-test-v1");
  });

  const std::string contents = read_file(path);
  write_file(path, contents + "x");
  EXPECT_THROW(io::read_framed(path, "unit-test-v1"), std::runtime_error);
  // Flip one payload byte: checksum mismatch.
  std::string mutated = contents;
  mutated[mutated.size() - 2] = static_cast<char>(mutated[mutated.size() - 2] ^ 0x40);
  write_file(path, mutated);
  EXPECT_THROW(io::read_framed(path, "unit-test-v1"), std::runtime_error);
  std::remove(path.c_str());
}

// ---- every persisted format rejects truncation at every byte offset ----------

TEST(TruncationSweep, TraceCsv) {
  const std::string path = temp_path("trace_sweep.csv");
  comm::ThroughputTrace trace;
  trace.interval_s = 0.5;
  trace.samples_mbps = {2.5, 7.25, 3.125};
  comm::save_trace_csv(trace, path);
  // Sanity: the intact file round-trips.
  EXPECT_EQ(comm::load_trace_csv(path).samples_mbps, trace.samples_mbps);
  expect_rejects_every_truncation(path, [](const std::string& p) {
    return comm::load_trace_csv(p);
  });
  std::remove(path.c_str());
}

TEST(TruncationSweep, SwitchingTable) {
  const std::string path = temp_path("table_sweep.txt");
  runtime::SwitchingTable table;
  table.metric = runtime::OptimizeFor::kLatency;
  table.option_labels = {"edge", "split@pool4"};
  table.intervals = {{0, 0.5, 2.0}, {1, 2.0, 8.0}};
  runtime::save_switching_table(table, path);
  EXPECT_EQ(runtime::load_switching_table(path).option_labels, table.option_labels);
  expect_rejects_every_truncation(path, [](const std::string& p) {
    return runtime::load_switching_table(p);
  });
  std::remove(path.c_str());
}

TEST(TruncationSweep, NetworkWeights) {
  const std::string path = temp_path("weights_sweep.txt");
  std::mt19937_64 rng(7);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>(3, 2, rng));
  nn::save_weights(net, path);
  nn::load_weights(net, path);  // intact file round-trips
  expect_rejects_every_truncation(path, [&net](const std::string& p) {
    nn::load_weights(net, p);
    return 0;
  });
  std::remove(path.c_str());
}

TEST(TruncationSweep, GenotypesCsv) {
  const std::string path = temp_path("geno_sweep.csv");
  const core::SearchSpace space;
  std::mt19937_64 rng(11);
  const core::Genotype genotype = space.random(rng);
  std::string encoded;
  for (std::size_t i = 0; i < genotype.size(); ++i) {
    if (i > 0) encoded += '-';
    encoded += std::to_string(genotype[i]);
  }
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << "index,genotype\n0," << encoded << "\n";
  });
  ASSERT_EQ(core::load_genotypes_csv(space, path).size(), 1u);
  expect_rejects_every_truncation(path, [&space](const std::string& p) {
    return core::load_genotypes_csv(space, p);
  });
  std::remove(path.c_str());
}

// ---- run-checkpoint rotation -------------------------------------------------

opt::MoboSnapshot tiny_snapshot(std::size_t evaluations) {
  opt::MoboSnapshot snapshot;
  snapshot.num_objectives = 2;
  snapshot.num_initial = 2;
  snapshot.num_iterations = 30;
  snapshot.pool_size = 8;
  snapshot.seed = 3;
  snapshot.refit_period = 10;
  snapshot.evaluations_done = evaluations;
  snapshot.models_ready = false;
  std::ostringstream rng_stream;
  rng_stream << std::mt19937_64(3);
  snapshot.rng_state = rng_stream.str();
  for (std::size_t i = 0; i < evaluations; ++i) {
    const double t = static_cast<double>(i);
    snapshot.history.push_back({{0.25 * t, 1.0 - 0.125 * t}, {t, 10.0 - t}});
  }
  return snapshot;
}

TEST(RunCheckpoint, FileNameAndRotation) {
  EXPECT_EQ(core::checkpoint_file_name(42), "snapshot-00000042.ckpt");
  EXPECT_EQ(core::checkpoint_file_name(123456789), "snapshot-123456789.ckpt");

  const std::string dir = temp_path("ckpt_rotation");
  fs::remove_all(dir);
  core::save_run_checkpoint(dir, tiny_snapshot(4), 2);
  core::save_run_checkpoint(dir, tiny_snapshot(8), 2);
  core::save_run_checkpoint(dir, tiny_snapshot(12), 2);
  const std::vector<std::string> files = core::list_run_checkpoints(dir);
  ASSERT_EQ(files.size(), 2u);  // the oldest rotation was pruned
  EXPECT_NE(files[0].find("snapshot-00000008.ckpt"), std::string::npos);
  EXPECT_NE(files[1].find("snapshot-00000012.ckpt"), std::string::npos);

  std::string loaded_path;
  const opt::MoboSnapshot newest = core::load_newest_run_checkpoint(dir, &loaded_path);
  EXPECT_EQ(newest.evaluations_done, 12u);
  EXPECT_EQ(loaded_path, files[1]);
  fs::remove_all(dir);
}

TEST(RunCheckpoint, CorruptedNewestFallsBackThenThrows) {
  const std::string dir = temp_path("ckpt_fallback");
  fs::remove_all(dir);
  core::save_run_checkpoint(dir, tiny_snapshot(4), 8);
  core::save_run_checkpoint(dir, tiny_snapshot(8), 8);
  const std::vector<std::string> files = core::list_run_checkpoints(dir);
  ASSERT_EQ(files.size(), 2u);

  // Truncate the newest rotation: resume must fall back to the previous one.
  const std::string newest_contents = read_file(files[1]);
  write_file(files[1], newest_contents.substr(0, newest_contents.size() / 2));
  std::string loaded_path;
  const opt::MoboSnapshot fallback = core::load_newest_run_checkpoint(dir, &loaded_path);
  EXPECT_EQ(fallback.evaluations_done, 4u);
  EXPECT_EQ(loaded_path, files[0]);

  // Corrupt every rotation: the failure lists each candidate.
  write_file(files[0], "not a snapshot");
  EXPECT_THROW(core::load_newest_run_checkpoint(dir), std::runtime_error);
  EXPECT_THROW(core::load_newest_run_checkpoint(temp_path("no_such_ckpt_dir")),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(RunCheckpoint, SnapshotFrameRejectsTruncationAtEveryOffset) {
  const std::string dir = temp_path("ckpt_trunc");
  fs::remove_all(dir);
  core::save_run_checkpoint(dir, tiny_snapshot(3), 1);
  const std::vector<std::string> files = core::list_run_checkpoints(dir);
  ASSERT_EQ(files.size(), 1u);
  expect_rejects_every_truncation(files[0], [](const std::string& p) {
    return opt::MoboSnapshot::deserialize(io::read_framed(p, "mobo-snapshot-v1"));
  });
  fs::remove_all(dir);
}

// ---- MOBO snapshot/restore ---------------------------------------------------

struct SyntheticProblem {
  opt::MoboEngine::Sampler sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    return std::vector<double>{uniform(rng), uniform(rng), uniform(rng)};
  };
  opt::MoboEngine::Objectives objectives = [](const std::vector<double>& x) {
    const double f1 = (x[0] - 0.3) * (x[0] - 0.3) + 0.5 * x[1] + 0.1 * x[2];
    const double f2 = (x[1] - 0.7) * (x[1] - 0.7) + 0.25 * x[0];
    return std::vector<double>{f1, f2};
  };
  opt::MoboConfig config;

  SyntheticProblem() {
    config.num_initial = 5;
    config.num_iterations = 7;
    config.pool_size = 16;
    config.seed = 9;
  }

  opt::MoboEngine make() const { return {config, 2, sampler, objectives}; }
};

void expect_histories_equal(const std::vector<opt::Observation>& a,
                            const std::vector<opt::Observation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "design point " << i;
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "objectives " << i;
  }
}

void expect_fronts_equal(const opt::ParetoFront& a, const opt::ParetoFront& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].id, b.points()[i].id);
    EXPECT_EQ(a.points()[i].objectives, b.points()[i].objectives);
  }
}

TEST(MoboSnapshotTest, SerializeDeserializeRoundTrip) {
  SyntheticProblem problem;
  opt::MoboEngine engine = problem.make();
  engine.step(8);  // warm-up done, models fitted, mid-BO
  const opt::MoboSnapshot snapshot = engine.snapshot();
  EXPECT_TRUE(snapshot.models_ready);
  ASSERT_EQ(snapshot.gps.size(), 2u);

  const opt::MoboSnapshot back = opt::MoboSnapshot::deserialize(snapshot.serialize());
  EXPECT_EQ(back.num_objectives, snapshot.num_objectives);
  EXPECT_EQ(back.num_initial, snapshot.num_initial);
  EXPECT_EQ(back.num_iterations, snapshot.num_iterations);
  EXPECT_EQ(back.pool_size, snapshot.pool_size);
  EXPECT_EQ(back.seed, snapshot.seed);
  EXPECT_EQ(back.refit_period, snapshot.refit_period);
  EXPECT_EQ(back.incremental_posterior, snapshot.incremental_posterior);
  EXPECT_EQ(back.evaluations_done, snapshot.evaluations_done);
  EXPECT_EQ(back.iterations_since_refit, snapshot.iterations_since_refit);
  EXPECT_EQ(back.models_ready, snapshot.models_ready);
  EXPECT_EQ(back.rng_state, snapshot.rng_state);
  ASSERT_EQ(back.gps.size(), snapshot.gps.size());
  for (std::size_t k = 0; k < back.gps.size(); ++k) {
    EXPECT_EQ(back.gps[k].signal_variance, snapshot.gps[k].signal_variance);
    EXPECT_EQ(back.gps[k].length_scale, snapshot.gps[k].length_scale);
    EXPECT_EQ(back.gps[k].noise_variance, snapshot.gps[k].noise_variance);
  }
  expect_histories_equal(back.history, snapshot.history);
}

TEST(MoboSnapshotTest, DeserializeRejectsStructuralDefects) {
  const std::string payload = tiny_snapshot(2).serialize();
  EXPECT_THROW(opt::MoboSnapshot::deserialize(""), std::invalid_argument);
  EXPECT_THROW(opt::MoboSnapshot::deserialize("garbage\n" + payload),
               std::invalid_argument);
  EXPECT_THROW(opt::MoboSnapshot::deserialize(payload + "trailing garbage\n"),
               std::invalid_argument);
  EXPECT_THROW(opt::MoboSnapshot::deserialize(payload.substr(0, payload.size() / 2)),
               std::invalid_argument);
}

TEST(MoboResume, ContinuationIsBitIdentical) {
  SyntheticProblem problem;
  opt::MoboEngine reference = problem.make();
  reference.step(12);

  // Interrupt after 8 evaluations, round-trip the snapshot through its text
  // payload (as the checkpoint file does), restore into a fresh engine and
  // finish the budget.
  opt::MoboEngine first = problem.make();
  first.step(8);
  const opt::MoboSnapshot snapshot =
      opt::MoboSnapshot::deserialize(first.snapshot().serialize());
  opt::MoboEngine resumed = problem.make();
  resumed.restore(snapshot);
  EXPECT_EQ(resumed.evaluations_done(), 8u);
  resumed.step(4);

  expect_histories_equal(resumed.history(), reference.history());
  expect_fronts_equal(resumed.front(), reference.front());
}

TEST(MoboResume, SeededEngineResumesBitIdentically) {
  SyntheticProblem problem;
  const std::vector<std::vector<double>> seed_xs = {{0.1, 0.2, 0.3}, {0.8, 0.5, 0.2}};
  std::vector<opt::Observation> seeds;
  for (const std::vector<double>& x : seed_xs) seeds.push_back({x, problem.objectives(x)});

  opt::MoboEngine reference = problem.make();
  reference.seed_observations(seeds);
  reference.step(8);

  opt::MoboEngine first = problem.make();
  first.seed_observations(seeds);
  first.step(5);
  const opt::MoboSnapshot snapshot =
      opt::MoboSnapshot::deserialize(first.snapshot().serialize());
  // restore() carries the seeded observations inside the history, so the
  // fresh engine needs no seed_observations() call of its own.
  opt::MoboEngine resumed = problem.make();
  resumed.restore(snapshot);
  resumed.step(3);

  expect_histories_equal(resumed.history(), reference.history());
  expect_fronts_equal(resumed.front(), reference.front());
}

TEST(MoboRestore, RejectsMismatchedConfigAndLateRestore) {
  SyntheticProblem problem;
  opt::MoboEngine source = problem.make();
  source.step(3);
  const opt::MoboSnapshot snapshot = source.snapshot();

  SyntheticProblem other_seed;
  other_seed.config.seed = 10;
  opt::MoboEngine wrong_seed = other_seed.make();
  EXPECT_THROW(wrong_seed.restore(snapshot), std::invalid_argument);

  opt::MoboEngine wrong_arity(problem.config, 3, problem.sampler,
                              [](const std::vector<double>& x) {
                                return std::vector<double>{x[0], x[1], x[2]};
                              });
  EXPECT_THROW(wrong_arity.restore(snapshot), std::invalid_argument);

  opt::MoboEngine started = problem.make();
  started.step(1);
  EXPECT_THROW(started.restore(snapshot), std::logic_error);
}

// ---- NasDriver checkpoint loop ----------------------------------------------

class NasCheckpointTest : public ::testing::Test {
 protected:
  NasCheckpointTest()
      : simulator_(perf::jetson_tx2_gpu()),
        oracle_(simulator_),
        comm_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, comm_) {
    core::clear_interrupt();
  }
  ~NasCheckpointTest() override { core::clear_interrupt(); }

  core::NasConfig small_config(unsigned seed = 1) const {
    core::NasConfig config;
    config.mobo.num_initial = 6;
    config.mobo.num_iterations = 6;
    config.mobo.pool_size = 32;
    config.mobo.seed = seed;
    config.tu_mbps = 3.0;
    return config;
  }

  core::NasResult run(const core::NasConfig& config) {
    core::NasDriver driver(space_, evaluator_, accuracy_, config);
    return driver.run();
  }

  static void expect_results_equal(const core::NasResult& a, const core::NasResult& b) {
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      EXPECT_EQ(a.history[i].genotype, b.history[i].genotype) << "candidate " << i;
      EXPECT_EQ(a.history[i].name, b.history[i].name);
      EXPECT_EQ(a.history[i].objectives(), b.history[i].objectives()) << "candidate " << i;
    }
    ASSERT_EQ(a.front.size(), b.front.size());
    for (std::size_t i = 0; i < a.front.points().size(); ++i) {
      EXPECT_EQ(a.front.points()[i].id, b.front.points()[i].id);
      EXPECT_EQ(a.front.points()[i].objectives, b.front.points()[i].objectives);
    }
  }

  static std::size_t snapshot_evaluations(const std::string& path) {
    const std::string name = fs::path(path).filename().string();
    return static_cast<std::size_t>(std::stoul(name.substr(9, 8)));
  }

  core::SearchSpace space_;
  perf::DeviceSimulator simulator_;
  perf::SimulatorOracle oracle_;
  comm::CommModel comm_;
  core::DeploymentEvaluator evaluator_;
  core::SurrogateAccuracyModel accuracy_;
};

TEST_F(NasCheckpointTest, CheckpointingDoesNotPerturbTheTrajectory) {
  const core::NasResult reference = run(small_config());

  const std::string dir = temp_path("nas_ckpt_same");
  fs::remove_all(dir);
  core::NasConfig config = small_config();
  config.checkpoint.directory = dir;
  config.checkpoint.period = 4;
  config.checkpoint.keep = 50;
  const core::NasResult checkpointed = run(config);

  expect_results_equal(checkpointed, reference);
  const std::vector<std::string> files = core::list_run_checkpoints(dir);
  ASSERT_FALSE(files.empty());
  // Snapshots at end-of-warm-up, every period after, and the final state.
  EXPECT_EQ(snapshot_evaluations(files.front()), 6u);
  EXPECT_EQ(snapshot_evaluations(files.back()), 12u);
  fs::remove_all(dir);
}

TEST_F(NasCheckpointTest, ResumeFromMidRunCheckpointIsBitIdentical) {
  const core::NasResult reference = run(small_config());

  const std::string dir = temp_path("nas_ckpt_resume");
  fs::remove_all(dir);
  core::NasConfig config = small_config();
  config.checkpoint.directory = dir;
  config.checkpoint.period = 2;
  config.checkpoint.keep = 50;
  run(config);

  // Simulate the crash: drop every rotation past 8 evaluations so the
  // resume genuinely continues from mid-run state.
  for (const std::string& path : core::list_run_checkpoints(dir)) {
    if (snapshot_evaluations(path) > 8) fs::remove(path);
  }
  core::NasConfig resume = small_config();
  resume.resume_run = dir;
  const core::NasResult resumed = run(resume);
  EXPECT_FALSE(resumed.interrupted);
  expect_results_equal(resumed, reference);

  // The exported frontier is byte-identical to the uninterrupted run's.
  const std::string ref_csv = temp_path("front_ref.csv");
  const std::string res_csv = temp_path("front_res.csv");
  core::save_front_csv(reference, space_, ref_csv);
  core::save_front_csv(resumed, space_, res_csv);
  EXPECT_EQ(read_file(ref_csv), read_file(res_csv));
  std::remove(ref_csv.c_str());
  std::remove(res_csv.c_str());
  fs::remove_all(dir);
}

TEST_F(NasCheckpointTest, InterruptFlushesACheckpointAndResumesToTheSameResult) {
  const core::NasResult reference = run(small_config());

  const std::string dir = temp_path("nas_ckpt_interrupt");
  fs::remove_all(dir);
  core::NasConfig config = small_config();
  config.checkpoint.directory = dir;
  config.checkpoint.period = 4;
  config.checkpoint.keep = 50;
  core::request_interrupt();
  const core::NasResult partial = run(config);
  core::clear_interrupt();
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.history.size(), reference.history.size());
  ASSERT_FALSE(core::list_run_checkpoints(dir).empty());

  core::NasConfig resume = small_config();
  resume.resume_run = dir;
  resume.checkpoint.directory = dir;
  resume.checkpoint.period = 4;
  resume.checkpoint.keep = 50;
  const core::NasResult resumed = run(resume);
  EXPECT_FALSE(resumed.interrupted);
  expect_results_equal(resumed, reference);
  fs::remove_all(dir);
}

TEST_F(NasCheckpointTest, WarmStartedRunResumesBitIdentically) {
  std::mt19937_64 rng(42);
  std::vector<core::Genotype> warm;
  for (int i = 0; i < 3; ++i) warm.push_back(space_.random(rng));

  core::NasConfig warm_config = small_config(2);
  warm_config.warm_start = warm;
  const core::NasResult reference = run(warm_config);

  const std::string dir = temp_path("nas_ckpt_warm");
  fs::remove_all(dir);
  core::NasConfig config = warm_config;
  config.checkpoint.directory = dir;
  config.checkpoint.period = 3;
  config.checkpoint.keep = 50;
  core::request_interrupt();
  const core::NasResult partial = run(config);
  core::clear_interrupt();
  EXPECT_TRUE(partial.interrupted);

  // Exact-state resume must not re-pass the warm-start genotypes — the
  // snapshot already contains those observations.
  core::NasConfig resume = small_config(2);
  resume.resume_run = dir;
  const core::NasResult resumed = run(resume);
  expect_results_equal(resumed, reference);
  fs::remove_all(dir);
}

TEST_F(NasCheckpointTest, ConfigValidation) {
  const std::string dir = temp_path("nas_ckpt_validation");
  fs::remove_all(dir);
  core::NasConfig config = small_config();
  config.checkpoint.directory = dir;
  config.checkpoint.period = 2;
  config.checkpoint.keep = 50;
  run(config);

  // warm_start and resume_run are mutually exclusive.
  std::mt19937_64 rng(5);
  core::NasConfig both = small_config();
  both.resume_run = dir;
  both.warm_start = {space_.random(rng)};
  EXPECT_THROW(run(both), std::invalid_argument);

  // Checkpoints and exact resume are MOBO-only.
  core::NasConfig random_strategy = small_config();
  random_strategy.strategy = core::SearchStrategy::kRandom;
  random_strategy.checkpoint.directory = dir;
  EXPECT_THROW(run(random_strategy), std::invalid_argument);
  core::NasConfig nsga2_strategy = small_config();
  nsga2_strategy.strategy = core::SearchStrategy::kNsga2;
  nsga2_strategy.resume_run = dir;
  EXPECT_THROW(run(nsga2_strategy), std::invalid_argument);

  // A snapshot taken under another engine configuration is rejected.
  core::NasConfig other_seed = small_config(7);
  other_seed.resume_run = dir;
  EXPECT_THROW(run(other_seed), std::invalid_argument);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace lens
