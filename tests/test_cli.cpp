// Tests for the CLI argument parser and subcommand dispatch.

#include <gtest/gtest.h>

#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace lens::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"lens-cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndOptions) {
  const Args args = parse({"search", "--iterations", "40", "--tu", "3.5", "--verbose"});
  EXPECT_EQ(args.command(), "search");
  EXPECT_EQ(args.get_int("iterations", 0), 40);
  EXPECT_DOUBLE_EQ(args.get_double("tu", 0.0), 3.5);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
}

TEST(Args, NoCommandIsEmpty) {
  const Args args = parse({"--flag"});
  EXPECT_EQ(args.command(), "");
  EXPECT_TRUE(args.get_bool("flag"));
}

TEST(Args, TrailingFlagWithoutValue) {
  const Args args = parse({"evaluate", "--summary"});
  EXPECT_TRUE(args.get_bool("summary"));
}

TEST(Args, MalformedInputThrows) {
  EXPECT_THROW(parse({"search", "stray-positional"}), std::invalid_argument);
  EXPECT_THROW(parse({"search", "--"}), std::invalid_argument);
}

TEST(Args, TypedAccessorsValidate) {
  const Args args = parse({"x", "--n", "abc", "--f", "1.5x", "--b", "maybe"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_bool("b"), std::invalid_argument);
}

TEST(Args, BooleanSpellings) {
  const Args args = parse({"x", "--a", "yes", "--b", "0", "--c", "false"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_FALSE(args.get_bool("c"));
}

TEST(Args, ExpectKnownCatchesTypos) {
  const Args args = parse({"search", "--iterashuns", "40"});
  EXPECT_THROW(args.expect_known({"iterations", "tu"}), std::invalid_argument);
  EXPECT_NO_THROW(args.expect_known({"iterashuns"}));
}

TEST(Args, DuplicateOptionThrows) {
  EXPECT_THROW(parse({"search", "--tu", "3", "--tu", "5"}), std::invalid_argument);
  EXPECT_THROW(parse({"search", "--tu=3", "--tu", "5"}), std::invalid_argument);
  EXPECT_THROW(parse({"x", "--flag", "--flag"}), std::invalid_argument);
}

TEST(Args, EqualsSyntax) {
  const Args args = parse({"search", "--tu=3.5", "--out=--dashes.csv", "--note="});
  EXPECT_DOUBLE_EQ(args.get_double("tu", 0.0), 3.5);
  // A value that itself starts with "--" survives via --key=value (the old
  // two-token form would have swallowed it as a boolean flag).
  EXPECT_EQ(args.get("out"), "--dashes.csv");
  EXPECT_EQ(args.get("note", "unset"), "");
  EXPECT_THROW(parse({"x", "--=value"}), std::invalid_argument);
}

TEST(Args, ErrorMessagesNameTheCommand) {
  const Args args = parse({"search", "--iterations", "abc", "--tu", "fast"});
  try {
    args.get_int("iterations", 0);
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("search"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("--iterations"), std::string::npos) << e.what();
  }
  try {
    args.get_double("tu", 0.0);
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("search"), std::string::npos) << e.what();
  }
}

TEST(Commands, HelpAndUnknown) {
  EXPECT_EQ(run_command(parse({"help"})), 0);
  EXPECT_EQ(run_command(parse({})), 0);
  EXPECT_EQ(run_command(parse({"frobnicate"})), 2);
}

TEST(Commands, BadOptionValueIsUserError) {
  EXPECT_EQ(run_command(parse({"evaluate", "--arch", "resnet"})), 1);
  EXPECT_EQ(run_command(parse({"evaluate", "--tech", "5g"})), 1);
  EXPECT_EQ(run_command(parse({"search", "--mode", "bogus"})), 1);
  EXPECT_EQ(run_command(parse({"thresholds", "--metric", "joy"})), 1);
  EXPECT_EQ(run_command(parse({"simulate", "--policy", "hope"})), 1);
  // Unknown option name is caught by expect_known.
  EXPECT_EQ(run_command(parse({"evaluate", "--archh", "alexnet"})), 1);
}

TEST(Commands, EvaluateRuns) {
  EXPECT_EQ(run_command(parse({"evaluate", "--arch", "alexnet", "--tu", "16.1"})), 0);
}

TEST(Commands, ThreadsFlagIsAcceptedEverywhereAndValidated) {
  EXPECT_EQ(run_command(parse({"evaluate", "--arch", "alexnet", "--threads", "2"})), 0);
  EXPECT_EQ(run_command(parse({"evaluate", "--threads", "0"})), 1);
  EXPECT_EQ(run_command(parse({"evaluate", "--threads", "nope"})), 1);
}

TEST(Commands, ThresholdsRuns) {
  EXPECT_EQ(run_command(parse({"thresholds", "--metric", "energy"})), 0);
}

TEST(Commands, SearchRunsSmallAndWritesCsv) {
  const std::string out = std::string(::testing::TempDir()) + "/cli_history.csv";
  EXPECT_EQ(run_command(parse({"search", "--iterations", "4", "--initial", "4", "--out",
                               out.c_str()})),
            0);
  FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(out.c_str());
}

TEST(Commands, SimulateRuns) {
  EXPECT_EQ(run_command(parse({"simulate", "--rate", "5", "--duration", "10", "--policy",
                               "all-edge", "--deadline", "100"})),
            0);
}

TEST(Commands, FaultsRunsAndRejectsUnknownOptions) {
  EXPECT_EQ(run_command(parse({"faults", "--rate", "5", "--duration", "15", "--seed", "7",
                               "--timeout", "300", "--retries", "1"})),
            0);
  EXPECT_EQ(run_command(parse({"faults", "--policy", "dynamic"})), 1);  // not a knob here
}

}  // namespace
}  // namespace lens::cli
