// Tests for grid neighborhoods and local refinement.

#include <random>

#include <gtest/gtest.h>

#include "core/refine.hpp"
#include "perf/predictor.hpp"

namespace lens::core {
namespace {

class RefineTest : public ::testing::Test {
 protected:
  RefineTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_) {}

  SearchSpace space_;
  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  DeploymentEvaluator evaluator_;
  SurrogateAccuracyModel accuracy_;
};

TEST_F(RefineTest, NeighborsAreValidAndAtDistanceOne) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Genotype g = space_.random(rng);
    const std::vector<Genotype> neighbors = grid_neighbors(space_, g);
    EXPECT_FALSE(neighbors.empty());
    for (const Genotype& n : neighbors) {
      EXPECT_TRUE(space_.is_valid(n));
      int hamming = 0;
      int step = 0;
      for (std::size_t d = 0; d < g.size(); ++d) {
        if (n[d] != g[d]) {
          ++hamming;
          step = std::abs(n[d] - g[d]);
        }
      }
      EXPECT_EQ(hamming, 1);
      EXPECT_EQ(step, 1);
    }
  }
}

TEST_F(RefineTest, NeighborCountIsBoundedByTwoPerDimension) {
  std::mt19937_64 rng(6);
  const Genotype g = space_.random(rng);
  EXPECT_LE(grid_neighbors(space_, g).size(), 2 * space_.num_dimensions());
}

TEST_F(RefineTest, NeighborsRejectInvalidStart) {
  EXPECT_THROW(grid_neighbors(space_, Genotype(space_.num_dimensions(), 0)),
               std::invalid_argument);
}

TEST_F(RefineTest, RefinementNeverWorsensScore) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Genotype start = space_.random(rng);
    const RefineResult result = refine(space_, evaluator_, accuracy_, start, {});
    EXPECT_LE(result.final_score, result.initial_score + 1e-9);
    EXPECT_TRUE(space_.is_valid(result.candidate.genotype));
    EXPECT_GE(result.evaluations, 1u);
  }
}

TEST_F(RefineTest, TerminatesAtLocalOptimum) {
  std::mt19937_64 rng(8);
  const Genotype start = space_.random(rng);
  RefineConfig config;
  config.max_steps = 64;
  const RefineResult result = refine(space_, evaluator_, accuracy_, start, config);
  // Re-refining from the result must take zero steps.
  const RefineResult again =
      refine(space_, evaluator_, accuracy_, result.candidate.genotype, config);
  EXPECT_EQ(again.steps_taken, 0);
}

TEST_F(RefineTest, PureEnergyWeightReducesEnergy) {
  std::mt19937_64 rng(9);
  // Start from a deliberately bulky genotype (max everything, all pools).
  Genotype start(space_.num_dimensions(), 0);
  for (int b = 0; b < 5; ++b) {
    start[static_cast<std::size_t>(4 * b + 0)] = 2;
    start[static_cast<std::size_t>(4 * b + 2)] = 5;
    start[static_cast<std::size_t>(4 * b + 3)] = 1;
  }
  start[20] = 5;
  start[21] = 1;
  start[22] = 5;
  ASSERT_TRUE(space_.is_valid(start));
  RefineConfig config;
  config.error_weight = 0.0;
  config.latency_weight = 0.0;
  config.energy_weight = 1.0;
  // All-Edge mode: the energy objective depends on the architecture alone
  // (best-deployment energy saturates at the fixed All-Cloud cost for bulky
  // models, which would plateau the descent).
  config.mode = ObjectiveMode::kAllEdgeOnly;
  const RefineResult result = refine(space_, evaluator_, accuracy_, start, config);
  const dnn::Architecture arch = space_.decode(start);
  const double start_energy = evaluator_.evaluate(arch, 3.0).all_edge().energy_mj;
  EXPECT_LT(result.candidate.energy_mj, start_energy);
  EXPECT_GT(result.steps_taken, 0);
}

TEST_F(RefineTest, Validation) {
  std::mt19937_64 rng(10);
  const Genotype start = space_.random(rng);
  RefineConfig config;
  config.error_weight = 0.0;
  config.latency_weight = 0.0;
  config.energy_weight = 0.0;
  EXPECT_THROW(refine(space_, evaluator_, accuracy_, start, config), std::invalid_argument);
  config.energy_weight = -1.0;
  EXPECT_THROW(refine(space_, evaluator_, accuracy_, start, config), std::invalid_argument);
}

TEST_F(RefineTest, AllEdgeModeUsesAllEdgeObjectives) {
  std::mt19937_64 rng(11);
  const Genotype start = space_.random(rng);
  RefineConfig config;
  config.mode = ObjectiveMode::kAllEdgeOnly;
  config.max_steps = 2;
  const RefineResult result = refine(space_, evaluator_, accuracy_, start, config);
  EXPECT_DOUBLE_EQ(result.candidate.latency_ms,
                   result.candidate.deployment.all_edge().latency_ms);
}

}  // namespace
}  // namespace lens::core
