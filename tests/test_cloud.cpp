// Tests for the finite-cloud latency extension, the additional device
// profiles, the Hamming kernel for categorical genotypes, and the finite
// datacenter model (lens::cloud): M/M/1/K queueing pinned against an
// in-test direct-normalization oracle, admission control / load shedding,
// placement-policy energy accounting, the datacenter fault classes, and
// the EdgeCloudSystem integration (shed, circuit breaker, and the
// infinite-cloud equivalence of an uncontended real-time pool).

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/scheduler.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/nas.hpp"
#include "dnn/presets.hpp"
#include "opt/gp.hpp"
#include "opt/kernel.hpp"
#include "perf/predictor.hpp"
#include "runtime/threshold.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"

namespace lens {
namespace {

TEST(DeviceProfiles, OrderingAcrossTiers) {
  const perf::DeviceProfile cloud = perf::datacenter_gpu();
  const perf::DeviceProfile edge_gpu = perf::jetson_tx2_gpu();
  const perf::DeviceProfile edge_cpu = perf::jetson_tx2_cpu();
  const perf::DeviceProfile tiny = perf::embedded_cpu();
  EXPECT_GT(cloud.conv_gflops, edge_gpu.conv_gflops);
  EXPECT_GT(edge_gpu.conv_gflops, edge_cpu.conv_gflops);
  EXPECT_GT(edge_cpu.conv_gflops, tiny.conv_gflops);
  EXPECT_GT(cloud.dense_bandwidth_gbps, edge_gpu.dense_bandwidth_gbps);
}

class CloudModelTest : public ::testing::Test {
 protected:
  CloudModelTest()
      : edge_sim_(perf::jetson_tx2_gpu()),
        cloud_sim_(perf::datacenter_gpu()),
        edge_oracle_(edge_sim_),
        cloud_oracle_(cloud_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        alexnet_(dnn::alexnet()) {}

  perf::DeviceSimulator edge_sim_;
  perf::DeviceSimulator cloud_sim_;
  perf::SimulatorOracle edge_oracle_;
  perf::SimulatorOracle cloud_oracle_;
  comm::CommModel wifi_;
  dnn::Architecture alexnet_;
};

TEST_F(CloudModelTest, NullCloudMatchesPaperModel) {
  const core::DeploymentEvaluator plain(edge_oracle_, wifi_);
  core::EvaluatorConfig config;  // cloud_model defaults to nullptr
  const core::DeploymentEvaluator configured(edge_oracle_, wifi_, config);
  const auto a = plain.evaluate(alexnet_, 10.0);
  const auto b = configured.evaluate(alexnet_, 10.0);
  ASSERT_EQ(a.options.size(), b.options.size());
  for (std::size_t i = 0; i < a.options.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.options[i].latency_ms, b.options[i].latency_ms);
    EXPECT_DOUBLE_EQ(b.options[i].cloud_latency_ms, 0.0);
  }
}

TEST_F(CloudModelTest, FiniteCloudAddsSuffixLatency) {
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const core::DeploymentEvaluator without(edge_oracle_, wifi_);
  const auto finite = with_cloud.evaluate(alexnet_, 10.0);
  const auto infinite = without.evaluate(alexnet_, 10.0);

  // All-Cloud pays the full network's cloud time; All-Edge pays none.
  EXPECT_GT(finite.all_cloud().latency_ms, infinite.all_cloud().latency_ms);
  EXPECT_GT(finite.all_cloud().cloud_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(finite.all_edge().latency_ms, infinite.all_edge().latency_ms);
  EXPECT_DOUBLE_EQ(finite.all_edge().cloud_latency_ms, 0.0);
  // Energy is never billed for cloud compute.
  for (std::size_t i = 0; i < finite.options.size(); ++i) {
    EXPECT_DOUBLE_EQ(finite.options[i].energy_mj, infinite.options[i].energy_mj);
  }
  // Later splits offload less -> smaller cloud latency.
  double previous = 1e300;
  for (const core::DeploymentOption& o : finite.options) {
    if (o.kind == core::DeploymentKind::kPartitioned) {
      EXPECT_LT(o.cloud_latency_ms, previous);
      previous = o.cloud_latency_ms;
    }
  }
}

TEST_F(CloudModelTest, DatacenterCloudBarelyMovesTheNeedle) {
  // The paper's assumption check: with a V100-class cloud, AlexNet's cloud
  // suffix costs ~1 ms, so deployment preferences at Table-I throughputs
  // are unchanged.
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const core::DeploymentEvaluator without(edge_oracle_, wifi_);
  for (double tu : {0.7, 7.5, 16.1}) {
    EXPECT_EQ(with_cloud.evaluate(alexnet_, tu).latency_choice().label(alexnet_),
              without.evaluate(alexnet_, tu).latency_choice().label(alexnet_));
  }
}

TEST_F(CloudModelTest, SlowCloudFlipsPreferenceTowardEdge) {
  // A cloud as weak as the edge device itself makes offloading pointless
  // for latency at high throughput.
  core::EvaluatorConfig config;
  config.cloud_model = &edge_oracle_;  // "cloud" == another TX2
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const auto eval = with_cloud.evaluate(alexnet_, 30.0);
  // Without cloud cost, 30 Mbps prefers pool5 (Fig. 2); with an equally slow
  // cloud the split only adds transfer + the same compute.
  EXPECT_EQ(eval.latency_choice().label(alexnet_), "All-Edge");
}

TEST_F(CloudModelTest, RuntimeCurvesIncludeCloudConstant) {
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const auto eval = with_cloud.evaluate(alexnet_, 10.0);
  const core::DeploymentOption& cloud = eval.all_cloud();
  const runtime::CostCurve curve = runtime::latency_curve(cloud, wifi_);
  EXPECT_NEAR(curve.value(10.0), cloud.latency_ms, 1e-9);
}

TEST(HammingKernel, CountsDifferingCoordinates) {
  EXPECT_EQ(opt::hamming_distance({0.0, 0.5, 1.0}, {0.0, 0.5, 1.0}), 0u);
  EXPECT_EQ(opt::hamming_distance({0.0, 0.5, 1.0}, {0.0, 0.6, 0.0}), 2u);
  EXPECT_THROW(opt::hamming_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(HammingKernel, BasicProperties) {
  const opt::HammingKernel k(1.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.0, 1.0}, {0.0, 1.0}), 1.0);
  // More differing coordinates -> lower covariance.
  EXPECT_GT(k({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}), k({0.0, 0.0, 0.0}, {1.0, 1.0, 0.0}));
  // Symmetric.
  EXPECT_DOUBLE_EQ(k({0.0, 1.0}, {1.0, 1.0}), k({1.0, 1.0}, {0.0, 1.0}));
  EXPECT_THROW(opt::HammingKernel(0.0, 1.0), std::invalid_argument);
}

TEST(HammingKernel, GpFitsCategoricalStructure) {
  // Target depends only on exact coordinate matches — Euclidean kernels
  // smooth across categories, the Hamming kernel does not need to.
  opt::GpConfig config;
  config.family = opt::KernelFamily::kHamming;
  opt::GaussianProcess gp(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double a : {0.0, 0.5, 1.0}) {
    for (double b : {0.0, 0.5, 1.0}) {
      x.push_back({a, b});
      y.push_back((a == 0.5 ? 2.0 : 0.0) + (b == 1.0 ? 1.0 : 0.0));
    }
  }
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict({0.5, 1.0}).mean, 3.0, 0.4);
  EXPECT_NEAR(gp.predict({0.0, 0.0}).mean, 0.0, 0.4);
}

TEST(HammingKernel, WorksInsideNasDriverConfig) {
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;
  core::NasConfig config;
  config.mobo.num_initial = 6;
  config.mobo.num_iterations = 6;
  config.mobo.pool_size = 32;
  config.mobo.gp.family = opt::KernelFamily::kHamming;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();
  EXPECT_EQ(result.history.size(), 12u);
  EXPECT_GE(result.front.size(), 1u);
}

// ---------------------------------------------------------------------------
// lens::cloud -- M/M/1/K closed forms vs a direct-normalization oracle
// ---------------------------------------------------------------------------

struct QueueOracle {
  double block = 0.0;
  double mean_jobs = 0.0;
  double wait_ms = 0.0;
};

/// Independent single-queue oracle: enumerate the truncated-geometric
/// occupancy p_n proportional to rho^n over n = 0..K and normalize — no
/// shared algebra with the closed forms under test.
QueueOracle queue_oracle(double lambda, double mu, std::size_t k) {
  std::vector<double> p(k + 1);
  const double rho = lambda / mu;
  double power = 1.0, norm = 0.0;
  for (std::size_t n = 0; n <= k; ++n) {
    p[n] = power;
    norm += power;
    power *= rho;
  }
  QueueOracle oracle;
  for (std::size_t n = 0; n <= k; ++n) {
    p[n] /= norm;
    oracle.mean_jobs += static_cast<double>(n) * p[n];
  }
  oracle.block = p[k];
  const double admitted = lambda * (1.0 - oracle.block);
  if (admitted > 0.0) {
    oracle.wait_ms =
        std::max(0.0, (oracle.mean_jobs / admitted - 1.0 / mu) * 1e3);
  }
  return oracle;
}

TEST(Mm1kMetrics, MatchesDirectNormalizationOracle) {
  const double cases[][2] = {{10.0, 100.0}, {80.0, 100.0}, {100.0, 100.0},
                             {150.0, 100.0}, {400.0, 100.0}, {1.0, 1000.0}};
  for (const auto& c : cases) {
    for (std::size_t k : {1u, 2u, 8u, 32u}) {
      const cloud::QueueMetrics m = cloud::mm1k_metrics(c[0], c[1], k);
      const QueueOracle oracle = queue_oracle(c[0], c[1], k);
      EXPECT_NEAR(m.block_probability, oracle.block, 1e-9)
          << "lambda=" << c[0] << " mu=" << c[1] << " K=" << k;
      EXPECT_NEAR(m.mean_jobs, oracle.mean_jobs, 1e-9);
      EXPECT_NEAR(m.mean_wait_ms, oracle.wait_ms, 1e-6);
    }
  }
}

TEST(Mm1kMetrics, DegenerateAndEdgeCases) {
  // rho == 1: uniform occupancy, p_K = 1/(K+1), L = K/2.
  const cloud::QueueMetrics balanced = cloud::mm1k_metrics(50.0, 50.0, 4);
  EXPECT_NEAR(balanced.block_probability, 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(balanced.mean_jobs, 2.0, 1e-12);
  // Empty queue: nothing waits, nothing blocks.
  const cloud::QueueMetrics idle = cloud::mm1k_metrics(0.0, 50.0, 4);
  EXPECT_EQ(idle.block_probability, 0.0);
  EXPECT_EQ(idle.mean_wait_ms, 0.0);
  EXPECT_THROW(cloud::mm1k_metrics(-1.0, 50.0, 4), std::invalid_argument);
  EXPECT_THROW(cloud::mm1k_metrics(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(cloud::mm1k_metrics(1.0, 50.0, 0), std::invalid_argument);
}

TEST(MachinePool, ValidationAndDerivedRates) {
  cloud::CloudConfig config;
  config.machines = 0;
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);
  config = {};
  config.machine.capacity_ms_per_s = 0.0;
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);
  config = {};
  config.machine.idle_w = 300.0;  // above active_w
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);
  config = {};
  config.machine.queue_slots = 0;
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);
  config = {};
  config.admit_utilization = 1.5;
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);
  config = {};
  config.assumed_job_ms = 0.0;
  EXPECT_THROW(cloud::MachinePool pool(config), std::invalid_argument);

  config = {};
  config.machine.capacity_ms_per_s = 4000.0;
  const cloud::MachinePool pool(config);
  // A 5 ms suffix at 4000 layer-ms/s serves 800 jobs/s; a 50% brownout
  // halves it; a blackout zeroes it.
  EXPECT_NEAR(pool.service_hz(5.0), 800.0, 1e-12);
  EXPECT_NEAR(pool.service_hz(5.0, 0.5), 400.0, 1e-12);
  EXPECT_EQ(pool.service_hz(5.0, 0.0), 0.0);
  // Options compiled under the infinite-cloud assumption (0 ms) fall back
  // to the configured assumed cost instead of free service.
  EXPECT_EQ(pool.effective_job_ms(0.0), config.assumed_job_ms);
  EXPECT_EQ(pool.effective_job_ms(3.0), 3.0);
  // Linear idle -> active power curve.
  EXPECT_EQ(pool.machine_power_w(0.0), config.machine.idle_w);
  EXPECT_EQ(pool.machine_power_w(1.0), config.machine.active_w);
}

// ---------------------------------------------------------------------------
// lens::cloud -- fluid placement (the fleet path)
// ---------------------------------------------------------------------------

cloud::CloudConfig small_pool(cloud::PlacementPolicy policy) {
  cloud::CloudConfig config;
  config.machines = 4;
  config.machine.capacity_ms_per_s = 4000.0;  // 5 ms suffix -> 800 jobs/s
  config.policy = policy;
  config.admit_utilization = 0.85;
  return config;
}

TEST(PlaceStep, ConservesLoadAndShedsOnlyBeyondCapacity) {
  const cloud::CloudScheduler sched(
      small_pool(cloud::PlacementPolicy::kGreedyFirstFit));
  // 4 machines x 800 jobs/s x 0.85 ceiling = 2720 qps of admission capacity.
  const cloud::StepOutcome light = sched.place_step(1000.0, 5.0);
  EXPECT_EQ(light.shed_qps, 0.0);
  EXPECT_EQ(light.admitted_qps, 1000.0);
  EXPECT_EQ(light.admit_fraction, 1.0);
  EXPECT_GT(light.mean_wait_ms, 0.0);
  EXPECT_EQ(light.machines_up, 4u);
  EXPECT_EQ(light.machines_active, 2u);  // 1000 / 680 per machine -> 2

  const cloud::StepOutcome heavy = sched.place_step(4000.0, 5.0);
  EXPECT_NEAR(heavy.admitted_qps, 2720.0, 1e-9);
  EXPECT_NEAR(heavy.shed_qps + heavy.admitted_qps, heavy.offered_qps, 1e-9);
  EXPECT_NEAR(heavy.admit_fraction, 2720.0 / 4000.0, 1e-12);
  EXPECT_EQ(heavy.machines_active, 4u);

  EXPECT_THROW(sched.place_step(-1.0, 5.0), std::invalid_argument);
}

TEST(PlaceStep, FailuresAndBrownoutsCutCapacity) {
  const cloud::CloudScheduler sched(
      small_pool(cloud::PlacementPolicy::kGreedyFirstFit));
  // Half the pool down: capacity halves to 1360 qps.
  const cloud::StepOutcome failed = sched.place_step(2000.0, 5.0, 0.5, 1.0);
  EXPECT_EQ(failed.machines_up, 2u);
  EXPECT_NEAR(failed.admitted_qps, 1360.0, 1e-9);
  EXPECT_GT(failed.shed_qps, 0.0);
  // A 75% brownout cuts every machine's speed: 200 jobs/s per machine.
  const cloud::StepOutcome browned = sched.place_step(2000.0, 5.0, 0.0, 0.25);
  EXPECT_EQ(browned.machines_up, 4u);
  EXPECT_NEAR(browned.admitted_qps, 4.0 * 200.0 * 0.85, 1e-9);
  EXPECT_GT(browned.shed_qps, 0.0);
  // Full blackout: everything shed, nothing active.
  const cloud::StepOutcome dark = sched.place_step(2000.0, 5.0, 0.0, 0.0);
  EXPECT_EQ(dark.admitted_qps, 0.0);
  EXPECT_EQ(dark.shed_qps, 2000.0);
  EXPECT_EQ(dark.machines_active, 0u);
}

TEST(PlaceStep, PoliciesAdmitIdenticallyButConsolidationSavesPower) {
  const cloud::CloudScheduler greedy(
      small_pool(cloud::PlacementPolicy::kGreedyFirstFit));
  const cloud::CloudScheduler best_fit(
      small_pool(cloud::PlacementPolicy::kEnergyBestFit));
  for (double offered : {500.0, 1500.0, 2720.0, 5000.0}) {
    const cloud::StepOutcome g = greedy.place_step(offered, 5.0);
    const cloud::StepOutcome e = best_fit.place_step(offered, 5.0);
    // Homogeneous pool: identical admission capacity, so identical shed.
    EXPECT_EQ(g.admitted_qps, e.admitted_qps) << offered;
    EXPECT_EQ(g.shed_qps, e.shed_qps);
    EXPECT_EQ(g.mean_wait_ms, e.mean_wait_ms);
    EXPECT_EQ(g.machines_active, e.machines_active);
    // Greedy keeps the idle tail powered; best-fit powers it off.
    const double idle_tail =
        static_cast<double>(g.machines_up - g.machines_active) *
        small_pool(cloud::PlacementPolicy::kGreedyFirstFit).machine.idle_w;
    EXPECT_NEAR(g.power_w - e.power_w, idle_tail, 1e-9);
    if (g.machines_active < g.machines_up) {
      EXPECT_GT(g.power_w, e.power_w);
    }
  }
}

// ---------------------------------------------------------------------------
// lens::cloud -- discrete admission (the EdgeCloudSystem path)
// ---------------------------------------------------------------------------

TEST(CloudAdmit, BoundedFifoQueueShedsWhenFull) {
  cloud::CloudConfig config;
  config.machines = 1;
  config.machine.capacity_ms_per_s = 1000.0;  // real time: 100 ms suffix
  config.machine.queue_slots = 2;
  cloud::CloudScheduler sched(config);

  const cloud::Admission a = sched.admit(0.0, 100.0);
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(a.start_s, 0.0);
  EXPECT_NEAR(a.completion_s, 0.1, 1e-12);
  EXPECT_EQ(a.wait_ms, 0.0);
  // Second arrival queues behind the first: waits out the residual service.
  const cloud::Admission b = sched.admit(0.05, 100.0);
  ASSERT_TRUE(b.admitted);
  EXPECT_NEAR(b.start_s, 0.1, 1e-12);
  EXPECT_NEAR(b.wait_ms, 50.0, 1e-9);
  // Third finds both slots resident: shed.
  const cloud::Admission c = sched.admit(0.06, 100.0);
  EXPECT_FALSE(c.admitted);
  EXPECT_EQ(sched.jobs_shed(), 1u);
  // After both complete, the queue has drained and admission resumes.
  const cloud::Admission d = sched.admit(0.3, 100.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.start_s, 0.3);
  EXPECT_EQ(sched.jobs_served(), 3u);

  EXPECT_THROW(sched.admit(-1.0, 100.0), std::invalid_argument);
}

TEST(CloudAdmit, PlacementOrderFollowsPolicy) {
  cloud::CloudConfig config;
  config.machines = 3;
  config.machine.capacity_ms_per_s = 1000.0;
  config.machine.queue_slots = 2;

  // First-fit: machine 0 twice (to capacity), then machine 1.
  config.policy = cloud::PlacementPolicy::kGreedyFirstFit;
  cloud::CloudScheduler greedy(config);
  EXPECT_EQ(greedy.admit(0.0, 50.0).machine, 0u);
  EXPECT_EQ(greedy.admit(0.0, 50.0).machine, 0u);
  EXPECT_EQ(greedy.admit(0.0, 50.0).machine, 1u);

  // Best-fit consolidation: the fullest machine with a free slot wins, so
  // the second job stacks on machine 0 instead of spreading.
  config.policy = cloud::PlacementPolicy::kEnergyBestFit;
  cloud::CloudScheduler best_fit(config);
  EXPECT_EQ(best_fit.admit(0.0, 50.0).machine, 0u);
  EXPECT_EQ(best_fit.admit(0.0, 50.0).machine, 0u);  // depth 1 beats empty
  EXPECT_EQ(best_fit.admit(0.0, 50.0).machine, 1u);  // 0 full now
  EXPECT_EQ(best_fit.admit(0.0, 50.0).machine, 1u);
}

TEST(CloudAdmit, FailuresShrinkThePoolAndEnergyFollowsPolicy) {
  cloud::CloudConfig config;
  config.machines = 2;
  config.machine.capacity_ms_per_s = 1000.0;
  config.machine.queue_slots = 1;
  cloud::CloudScheduler sched(config);
  // With one machine failed, only machine 0 exists; its single slot full
  // means shed even though machine 1 would have been free.
  EXPECT_TRUE(sched.admit(0.0, 100.0, 0.5).admitted);
  EXPECT_FALSE(sched.admit(0.0, 100.0, 0.5).admitted);
  // Brownout stretches service: a 50% factor doubles the 100 ms job.
  cloud::CloudScheduler slow(config);
  const cloud::Admission stretched = slow.admit(0.0, 100.0, 0.0, 0.5);
  EXPECT_NEAR(stretched.completion_s, 0.2, 1e-12);

  // Energy: one 0.1 s job on a 2-machine pool over a 1 s horizon. Greedy
  // pays idle draw on all non-busy time; best-fit pays busy draw only.
  cloud::CloudScheduler greedy(config);
  (void)greedy.admit(0.0, 100.0);
  const double active_w = config.machine.active_w;
  const double idle_w = config.machine.idle_w;
  EXPECT_NEAR(greedy.energy_j(1.0), 0.1 * active_w + 1.9 * idle_w, 1e-9);
  config.policy = cloud::PlacementPolicy::kEnergyBestFit;
  cloud::CloudScheduler frugal(config);
  (void)frugal.admit(0.0, 100.0);
  EXPECT_NEAR(frugal.energy_j(1.0), 0.1 * active_w, 1e-9);
}

// ---------------------------------------------------------------------------
// sim::FaultSchedule -- datacenter fault classes
// ---------------------------------------------------------------------------

TEST(DatacenterFaults, NewClassesLeaveLegacyStreamsByteIdentical) {
  sim::FaultScheduleConfig legacy;
  legacy.seed = 23;
  legacy.horizon_s = 3000.0;
  legacy.link_outage_rate_hz = 1.0 / 120.0;
  legacy.cloud_outage_rate_hz = 1.0 / 200.0;
  legacy.rtt_spike_rate_hz = 1.0 / 150.0;
  legacy.edge_slowdown_rate_hz = 1.0 / 180.0;

  sim::FaultScheduleConfig extended = legacy;
  extended.machine_failure_rate_hz = 1.0 / 90.0;
  extended.brownout_rate_hz = 1.0 / 110.0;

  const sim::FaultSchedule before = sim::FaultSchedule::generate(legacy);
  const sim::FaultSchedule after = sim::FaultSchedule::generate(extended);
  EXPECT_GT(after.count(sim::FaultClass::kMachineFailure), 0u);
  EXPECT_GT(after.count(sim::FaultClass::kRegionalBrownout), 0u);
  for (const sim::FaultClass fault :
       {sim::FaultClass::kLinkOutage, sim::FaultClass::kCloudOutage,
        sim::FaultClass::kRttSpike, sim::FaultClass::kEdgeSlowdown}) {
    ASSERT_EQ(before.count(fault), after.count(fault));
  }
  // Byte-identical legacy episodes, not just equal counts.
  std::vector<sim::FaultEpisode> legacy_before, legacy_after;
  for (const sim::FaultEpisode& e : before.episodes()) {
    if (e.fault != sim::FaultClass::kMachineFailure &&
        e.fault != sim::FaultClass::kRegionalBrownout) {
      legacy_before.push_back(e);
    }
  }
  for (const sim::FaultEpisode& e : after.episodes()) {
    if (e.fault != sim::FaultClass::kMachineFailure &&
        e.fault != sim::FaultClass::kRegionalBrownout) {
      legacy_after.push_back(e);
    }
  }
  ASSERT_EQ(legacy_before.size(), legacy_after.size());
  for (std::size_t i = 0; i < legacy_before.size(); ++i) {
    EXPECT_EQ(legacy_before[i].start_s, legacy_after[i].start_s);
    EXPECT_EQ(legacy_before[i].end_s, legacy_after[i].end_s);
    EXPECT_EQ(legacy_before[i].magnitude, legacy_after[i].magnitude);
  }
}

TEST(DatacenterFaults, InjectorQueriesAndValidation) {
  std::vector<sim::FaultEpisode> episodes;
  episodes.push_back({sim::FaultClass::kMachineFailure, 10.0, 20.0, 0.25});
  episodes.push_back({sim::FaultClass::kMachineFailure, 15.0, 18.0, 0.5});
  episodes.push_back({sim::FaultClass::kRegionalBrownout, 30.0, 40.0, 0.6});
  const sim::FaultInjector injector{sim::FaultSchedule(episodes)};
  EXPECT_EQ(injector.machine_failure_fraction(5.0), 0.0);
  EXPECT_EQ(injector.machine_failure_fraction(12.0), 0.25);
  EXPECT_EQ(injector.machine_failure_fraction(16.0), 0.5);  // deepest wins
  EXPECT_EQ(injector.brownout_factor(5.0), 1.0);
  EXPECT_NEAR(injector.brownout_factor(35.0), 0.4, 1e-12);

  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kMachineFailure, 0.0, 1.0, 1.5}}),
      std::invalid_argument);
  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kRegionalBrownout, 0.0, 1.0, 0.0}}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// sim::FaultSchedule -- regional fault classes (shared failure domains)
// ---------------------------------------------------------------------------

TEST(RegionalFaults, NewClassesLeaveLegacyStreamsByteIdentical) {
  // Same new-salt regression the datacenter classes passed: enabling the
  // regional classes (backhaul brownout/outage, fog-site failure) must leave
  // every one of the six pre-existing streams byte-identical.
  sim::FaultScheduleConfig legacy;
  legacy.seed = 23;
  legacy.horizon_s = 3000.0;
  legacy.link_outage_rate_hz = 1.0 / 120.0;
  legacy.cloud_outage_rate_hz = 1.0 / 200.0;
  legacy.rtt_spike_rate_hz = 1.0 / 150.0;
  legacy.edge_slowdown_rate_hz = 1.0 / 180.0;
  legacy.machine_failure_rate_hz = 1.0 / 90.0;
  legacy.brownout_rate_hz = 1.0 / 110.0;
  legacy.extra_hops.push_back({1.0 / 240.0, 30.0, 0.1, 1.0 / 260.0, 15.0, 80.0});

  sim::FaultScheduleConfig extended = legacy;
  extended.backhaul_brownout_rate_hz = 1.0 / 100.0;
  extended.backhaul_outage_rate_hz = 1.0 / 130.0;
  extended.fog_failure_rate_hz = 1.0 / 160.0;

  const sim::FaultSchedule before = sim::FaultSchedule::generate(legacy);
  const sim::FaultSchedule after = sim::FaultSchedule::generate(extended);
  EXPECT_GT(after.count(sim::FaultClass::kBackhaulBrownout), 0u);
  EXPECT_GT(after.count(sim::FaultClass::kBackhaulOutage), 0u);
  EXPECT_GT(after.count(sim::FaultClass::kFogSiteFailure), 0u);
  const auto is_regional = [](const sim::FaultEpisode& e) {
    return e.fault == sim::FaultClass::kBackhaulBrownout ||
           e.fault == sim::FaultClass::kBackhaulOutage ||
           e.fault == sim::FaultClass::kFogSiteFailure;
  };
  std::vector<sim::FaultEpisode> legacy_before, legacy_after;
  for (const sim::FaultEpisode& e : before.episodes()) {
    if (!is_regional(e)) legacy_before.push_back(e);
  }
  for (const sim::FaultEpisode& e : after.episodes()) {
    if (!is_regional(e)) legacy_after.push_back(e);
  }
  ASSERT_EQ(legacy_before.size(), legacy_after.size());
  for (std::size_t i = 0; i < legacy_before.size(); ++i) {
    EXPECT_EQ(legacy_before[i].fault, legacy_after[i].fault);
    EXPECT_EQ(legacy_before[i].start_s, legacy_after[i].start_s);
    EXPECT_EQ(legacy_before[i].end_s, legacy_after[i].end_s);
    EXPECT_EQ(legacy_before[i].magnitude, legacy_after[i].magnitude);
    EXPECT_EQ(legacy_before[i].hop, legacy_after[i].hop);
  }
  // Generated backhaul episodes land on the configured backhaul hop.
  for (const sim::FaultEpisode& e : after.episodes()) {
    if (e.fault == sim::FaultClass::kBackhaulBrownout ||
        e.fault == sim::FaultClass::kBackhaulOutage) {
      EXPECT_EQ(e.hop, extended.backhaul_hop);
    }
  }
}

TEST(RegionalFaults, InjectorQueriesAndValidation) {
  std::vector<sim::FaultEpisode> episodes;
  episodes.push_back({sim::FaultClass::kBackhaulBrownout, 10.0, 20.0, 0.6, 1});
  episodes.push_back({sim::FaultClass::kBackhaulBrownout, 15.0, 18.0, 0.9, 1});
  episodes.push_back({sim::FaultClass::kBackhaulOutage, 30.0, 40.0, 0.0, 2});
  episodes.push_back({sim::FaultClass::kFogSiteFailure, 50.0, 60.0, 0.5});
  episodes.push_back({sim::FaultClass::kFogSiteFailure, 55.0, 58.0, 1.0});
  const sim::FaultInjector injector{sim::FaultSchedule(episodes)};
  EXPECT_EQ(injector.backhaul_factor(5.0, 1), 1.0);
  EXPECT_NEAR(injector.backhaul_factor(12.0, 1), 0.4, 1e-12);
  EXPECT_NEAR(injector.backhaul_factor(16.0, 1), 0.1, 1e-12);  // deepest wins
  EXPECT_EQ(injector.backhaul_factor(12.0, 2), 1.0);           // hop-scoped
  EXPECT_FALSE(injector.backhaul_unavailable(12.0, 1));
  EXPECT_TRUE(injector.backhaul_unavailable(35.0, 2));
  EXPECT_FALSE(injector.backhaul_unavailable(35.0, 1));
  EXPECT_EQ(injector.fog_failure_fraction(45.0), 0.0);
  EXPECT_EQ(injector.fog_failure_fraction(52.0), 0.5);
  EXPECT_EQ(injector.fog_failure_fraction(56.0), 1.0);  // deepest wins

  // Backhaul classes live on hops past the radio; magnitudes are bounded.
  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kBackhaulBrownout, 0.0, 1.0, 0.5, 0}}),
      std::invalid_argument);
  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kBackhaulOutage, 0.0, 1.0, 0.0, 0}}),
      std::invalid_argument);
  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kBackhaulBrownout, 0.0, 1.0, 1.0, 1}}),
      std::invalid_argument);
  EXPECT_THROW(
      sim::FaultSchedule({{sim::FaultClass::kFogSiteFailure, 0.0, 1.0, 1.5}}),
      std::invalid_argument);
  sim::FaultScheduleConfig bad;
  bad.horizon_s = 100.0;
  bad.backhaul_outage_rate_hz = 0.01;
  bad.backhaul_hop = 0;
  EXPECT_THROW(sim::FaultSchedule::generate(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// sim::EdgeCloudSystem + finite cloud
// ---------------------------------------------------------------------------

comm::ThroughputTrace cloud_flat_trace(double mbps) {
  comm::ThroughputTrace trace;
  trace.samples_mbps = {mbps};
  trace.interval_s = 1000.0;
  return trace;
}

class FiniteCloudSystemTest : public ::testing::Test {
 protected:
  // A finite cloud needs a cloud performance model: with one configured the
  // plan options carry the measured suffix cost (cloud_latency_ms), which is
  // exactly the job size the pool schedules.
  FiniteCloudSystemTest()
      : sim_(perf::jetson_tx2_gpu()),
        cloud_sim_(perf::datacenter_gpu()),
        oracle_(sim_),
        cloud_oracle_(cloud_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_, with_cloud_model(cloud_oracle_)),
        plan_(evaluator_.compile(dnn::alexnet())),
        evaluation_(plan_.price(10.0)) {}

  static core::EvaluatorConfig with_cloud_model(
      const perf::SimulatorOracle& cloud) {
    core::EvaluatorConfig config;
    config.cloud_model = &cloud;
    return config;
  }

  /// Fastest cloud-reaching option (the pin the pool must serve).
  std::size_t cloud_option() const {
    std::size_t best = evaluation_.options.size();
    for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
      if (evaluation_.options[i].tx_bytes == 0) continue;
      if (best == evaluation_.options.size() ||
          evaluation_.options[i].latency_ms < evaluation_.options[best].latency_ms) {
        best = i;
      }
    }
    return best;
  }

  perf::DeviceSimulator sim_;
  perf::DeviceSimulator cloud_sim_;
  perf::SimulatorOracle oracle_;
  perf::SimulatorOracle cloud_oracle_;
  comm::CommModel wifi_;
  core::DeploymentEvaluator evaluator_;
  core::DeploymentPlan plan_;
  core::DeploymentEvaluation evaluation_;
};

TEST_F(FiniteCloudSystemTest, UncontendedRealTimePoolMatchesInfiniteCloud) {
  sim::SimConfig config;
  config.duration_s = 30.0;
  config.arrival_rate_hz = 3.0;
  config.policy = sim::DispatchPolicy::kFixed;
  config.fixed_option = cloud_option();
  ASSERT_GT(evaluation_.options[config.fixed_option].cloud_latency_ms, 0.0);

  sim::SimConfig finite = config;
  cloud::CloudConfig pool;
  pool.machines = 64;
  pool.machine.capacity_ms_per_s = 1000.0;  // real time
  pool.machine.queue_slots = 64;
  finite.cloud = pool;

  sim::EdgeCloudSystem infinite_sys(plan_, cloud_flat_trace(10.0), config);
  sim::EdgeCloudSystem finite_sys(plan_, cloud_flat_trace(10.0), finite);
  const sim::SimStats a = infinite_sys.run();
  const sim::SimStats b = finite_sys.run();
  // At 3 req/s nothing contends, and a real-time pool serves each suffix in
  // exactly cloud_latency_ms: the runs are bitwise identical.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.p99_latency_ms, b.p99_latency_ms);
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  EXPECT_EQ(b.shed, 0u);
  EXPECT_GT(b.datacenter_energy_j, 0.0);  // the pool itself is metered
}

TEST_F(FiniteCloudSystemTest, OverloadedPoolShedsToEdgeFallback) {
  sim::SimConfig config;
  config.duration_s = 20.0;
  config.arrival_rate_hz = 20.0;
  config.policy = sim::DispatchPolicy::kFixed;
  config.fixed_option = cloud_option();
  cloud::CloudConfig pool;
  pool.machines = 1;
  // Absurdly slow pool: the ~0.3 ms suffix takes ~1 s of service, longer
  // than the whole timeout+backoff retry window, so a request that keeps
  // meeting a full queue exhausts its retries and must fall back.
  pool.machine.capacity_ms_per_s = 0.3;
  pool.machine.queue_slots = 1;
  config.cloud = pool;

  sim::EdgeCloudSystem system(evaluation_.options, wifi_,
                              cloud_flat_trace(10.0), config);
  const sim::SimStats stats = system.run();
  EXPECT_GT(stats.shed, 0u);
  EXPECT_GT(stats.fallback_executions, 0u);
  // Shed requests fast-fail into the edge fallback: nothing waits out a
  // timeout, nothing is dropped.
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

TEST_F(FiniteCloudSystemTest, BreakerTripsFastFailsAndRecloses) {
  sim::SimConfig config;
  config.duration_s = 30.0;
  config.arrival_rate_hz = 8.0;
  config.policy = sim::DispatchPolicy::kFixed;
  config.fixed_option = cloud_option();
  config.timeout_ms = 200.0;
  config.retry_backoff_ms = 50.0;
  config.max_retries = 1;
  config.breaker_failures = 2;
  config.breaker_open_ms = 2000.0;
  config.faults.scripted.push_back(
      {sim::FaultClass::kCloudOutage, 5.0, 20.0, 0.0});

  sim::EdgeCloudSystem system(evaluation_.options, wifi_,
                              cloud_flat_trace(10.0), config);
  const sim::SimStats with_breaker = system.run();
  EXPECT_GE(with_breaker.breaker_trips, 1u);
  EXPECT_GT(with_breaker.breaker_open_time_s, 0.0);
  EXPECT_GT(with_breaker.fallback_executions, 0u);
  EXPECT_DOUBLE_EQ(with_breaker.availability, 1.0);

  // Without the breaker every request in the outage pays timeout + retry
  // before falling back; the breaker's fast-fail eliminates most of that.
  sim::SimConfig no_breaker = config;
  no_breaker.breaker_failures = 0;
  sim::EdgeCloudSystem stubborn(evaluation_.options, wifi_,
                                cloud_flat_trace(10.0), no_breaker);
  const sim::SimStats without = stubborn.run();
  EXPECT_EQ(without.breaker_trips, 0u);
  EXPECT_GT(without.timeouts, with_breaker.timeouts);
  EXPECT_LT(with_breaker.mean_latency_ms, without.mean_latency_ms);
}

}  // namespace
}  // namespace lens
