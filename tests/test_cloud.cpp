// Tests for the finite-cloud latency extension, the additional device
// profiles, and the Hamming kernel for categorical genotypes.

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/nas.hpp"
#include "dnn/presets.hpp"
#include "opt/gp.hpp"
#include "opt/kernel.hpp"
#include "perf/predictor.hpp"
#include "runtime/threshold.hpp"

namespace lens {
namespace {

TEST(DeviceProfiles, OrderingAcrossTiers) {
  const perf::DeviceProfile cloud = perf::datacenter_gpu();
  const perf::DeviceProfile edge_gpu = perf::jetson_tx2_gpu();
  const perf::DeviceProfile edge_cpu = perf::jetson_tx2_cpu();
  const perf::DeviceProfile tiny = perf::embedded_cpu();
  EXPECT_GT(cloud.conv_gflops, edge_gpu.conv_gflops);
  EXPECT_GT(edge_gpu.conv_gflops, edge_cpu.conv_gflops);
  EXPECT_GT(edge_cpu.conv_gflops, tiny.conv_gflops);
  EXPECT_GT(cloud.dense_bandwidth_gbps, edge_gpu.dense_bandwidth_gbps);
}

class CloudModelTest : public ::testing::Test {
 protected:
  CloudModelTest()
      : edge_sim_(perf::jetson_tx2_gpu()),
        cloud_sim_(perf::datacenter_gpu()),
        edge_oracle_(edge_sim_),
        cloud_oracle_(cloud_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        alexnet_(dnn::alexnet()) {}

  perf::DeviceSimulator edge_sim_;
  perf::DeviceSimulator cloud_sim_;
  perf::SimulatorOracle edge_oracle_;
  perf::SimulatorOracle cloud_oracle_;
  comm::CommModel wifi_;
  dnn::Architecture alexnet_;
};

TEST_F(CloudModelTest, NullCloudMatchesPaperModel) {
  const core::DeploymentEvaluator plain(edge_oracle_, wifi_);
  core::EvaluatorConfig config;  // cloud_model defaults to nullptr
  const core::DeploymentEvaluator configured(edge_oracle_, wifi_, config);
  const auto a = plain.evaluate(alexnet_, 10.0);
  const auto b = configured.evaluate(alexnet_, 10.0);
  ASSERT_EQ(a.options.size(), b.options.size());
  for (std::size_t i = 0; i < a.options.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.options[i].latency_ms, b.options[i].latency_ms);
    EXPECT_DOUBLE_EQ(b.options[i].cloud_latency_ms, 0.0);
  }
}

TEST_F(CloudModelTest, FiniteCloudAddsSuffixLatency) {
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const core::DeploymentEvaluator without(edge_oracle_, wifi_);
  const auto finite = with_cloud.evaluate(alexnet_, 10.0);
  const auto infinite = without.evaluate(alexnet_, 10.0);

  // All-Cloud pays the full network's cloud time; All-Edge pays none.
  EXPECT_GT(finite.all_cloud().latency_ms, infinite.all_cloud().latency_ms);
  EXPECT_GT(finite.all_cloud().cloud_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(finite.all_edge().latency_ms, infinite.all_edge().latency_ms);
  EXPECT_DOUBLE_EQ(finite.all_edge().cloud_latency_ms, 0.0);
  // Energy is never billed for cloud compute.
  for (std::size_t i = 0; i < finite.options.size(); ++i) {
    EXPECT_DOUBLE_EQ(finite.options[i].energy_mj, infinite.options[i].energy_mj);
  }
  // Later splits offload less -> smaller cloud latency.
  double previous = 1e300;
  for (const core::DeploymentOption& o : finite.options) {
    if (o.kind == core::DeploymentKind::kPartitioned) {
      EXPECT_LT(o.cloud_latency_ms, previous);
      previous = o.cloud_latency_ms;
    }
  }
}

TEST_F(CloudModelTest, DatacenterCloudBarelyMovesTheNeedle) {
  // The paper's assumption check: with a V100-class cloud, AlexNet's cloud
  // suffix costs ~1 ms, so deployment preferences at Table-I throughputs
  // are unchanged.
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const core::DeploymentEvaluator without(edge_oracle_, wifi_);
  for (double tu : {0.7, 7.5, 16.1}) {
    EXPECT_EQ(with_cloud.evaluate(alexnet_, tu).latency_choice().label(alexnet_),
              without.evaluate(alexnet_, tu).latency_choice().label(alexnet_));
  }
}

TEST_F(CloudModelTest, SlowCloudFlipsPreferenceTowardEdge) {
  // A cloud as weak as the edge device itself makes offloading pointless
  // for latency at high throughput.
  core::EvaluatorConfig config;
  config.cloud_model = &edge_oracle_;  // "cloud" == another TX2
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const auto eval = with_cloud.evaluate(alexnet_, 30.0);
  // Without cloud cost, 30 Mbps prefers pool5 (Fig. 2); with an equally slow
  // cloud the split only adds transfer + the same compute.
  EXPECT_EQ(eval.latency_choice().label(alexnet_), "All-Edge");
}

TEST_F(CloudModelTest, RuntimeCurvesIncludeCloudConstant) {
  core::EvaluatorConfig config;
  config.cloud_model = &cloud_oracle_;
  const core::DeploymentEvaluator with_cloud(edge_oracle_, wifi_, config);
  const auto eval = with_cloud.evaluate(alexnet_, 10.0);
  const core::DeploymentOption& cloud = eval.all_cloud();
  const runtime::CostCurve curve = runtime::latency_curve(cloud, wifi_);
  EXPECT_NEAR(curve.value(10.0), cloud.latency_ms, 1e-9);
}

TEST(HammingKernel, CountsDifferingCoordinates) {
  EXPECT_EQ(opt::hamming_distance({0.0, 0.5, 1.0}, {0.0, 0.5, 1.0}), 0u);
  EXPECT_EQ(opt::hamming_distance({0.0, 0.5, 1.0}, {0.0, 0.6, 0.0}), 2u);
  EXPECT_THROW(opt::hamming_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(HammingKernel, BasicProperties) {
  const opt::HammingKernel k(1.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.0, 1.0}, {0.0, 1.0}), 1.0);
  // More differing coordinates -> lower covariance.
  EXPECT_GT(k({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}), k({0.0, 0.0, 0.0}, {1.0, 1.0, 0.0}));
  // Symmetric.
  EXPECT_DOUBLE_EQ(k({0.0, 1.0}, {1.0, 1.0}), k({1.0, 1.0}, {0.0, 1.0}));
  EXPECT_THROW(opt::HammingKernel(0.0, 1.0), std::invalid_argument);
}

TEST(HammingKernel, GpFitsCategoricalStructure) {
  // Target depends only on exact coordinate matches — Euclidean kernels
  // smooth across categories, the Hamming kernel does not need to.
  opt::GpConfig config;
  config.family = opt::KernelFamily::kHamming;
  opt::GaussianProcess gp(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double a : {0.0, 0.5, 1.0}) {
    for (double b : {0.0, 0.5, 1.0}) {
      x.push_back({a, b});
      y.push_back((a == 0.5 ? 2.0 : 0.0) + (b == 1.0 ? 1.0 : 0.0));
    }
  }
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict({0.5, 1.0}).mean, 3.0, 0.4);
  EXPECT_NEAR(gp.predict({0.0, 0.0}).mean, 0.0, 0.4);
}

TEST(HammingKernel, WorksInsideNasDriverConfig) {
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;
  core::NasConfig config;
  config.mobo.num_initial = 6;
  config.mobo.num_iterations = 6;
  config.mobo.pool_size = 32;
  config.mobo.gp.family = opt::KernelFamily::kHamming;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();
  EXPECT_EQ(result.history.size(), 12u);
  EXPECT_GE(result.front.size(), 1u);
}

}  // namespace
}  // namespace lens
