// Tests for multi-region portfolio planning plus extra evaluator property
// sweeps that exercise the whole Algorithm-1 stack.

#include <random>

#include <gtest/gtest.h>

#include "core/portfolio.hpp"
#include "perf/predictor.hpp"

namespace lens::core {
namespace {

class PortfolioTest : public ::testing::Test {
 protected:
  PortfolioTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_) {
    const SurrogateAccuracyModel accuracy;
    NasConfig config;
    config.mobo.num_initial = 10;
    config.mobo.num_iterations = 10;
    config.mobo.pool_size = 32;
    config.mobo.seed = 6;
    NasDriver driver(space_, evaluator_, accuracy, config);
    result_ = driver.run();
  }

  SearchSpace space_;
  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  DeploymentEvaluator evaluator_;
  NasResult result_;

  std::vector<Region> regions_ = {{"fast", 16.0}, {"mid", 5.0}, {"slow", 0.8}};
};

TEST_F(PortfolioTest, SelectsAggregateMinimizer) {
  PortfolioConfig config;
  config.objective = kEnergyObjective;
  config.aggregate = Aggregate::kMean;
  const PortfolioResult chosen = plan_portfolio(result_, space_, evaluator_, regions_, config);
  ASSERT_EQ(chosen.plans.size(), regions_.size());

  // Recompute every frontier member's mean cost and confirm the argmin.
  for (const opt::ParetoPoint& p : result_.front.points()) {
    const EvaluatedCandidate& c = result_.history[p.id];
    const dnn::Architecture arch = space_.decode(c.genotype);
    double mean = 0.0;
    for (const Region& region : regions_) {
      mean += evaluator_.evaluate(arch, region.tu_mbps).best_energy_mj() /
              static_cast<double>(regions_.size());
    }
    EXPECT_GE(mean + 1e-9, chosen.aggregate_cost);
  }
}

TEST_F(PortfolioTest, WorstCaseAggregateIsMaxOfPlans) {
  PortfolioConfig config;
  config.objective = kLatencyObjective;
  config.aggregate = Aggregate::kWorstCase;
  const PortfolioResult chosen = plan_portfolio(result_, space_, evaluator_, regions_, config);
  double worst = 0.0;
  for (const RegionPlan& plan : chosen.plans) worst = std::max(worst, plan.cost);
  EXPECT_DOUBLE_EQ(worst, chosen.aggregate_cost);
}

TEST_F(PortfolioTest, AccuracyBoundFilters) {
  // A bound below every frontier error must throw.
  PortfolioConfig config;
  config.max_error_percent = 0.5;
  EXPECT_THROW(plan_portfolio(result_, space_, evaluator_, regions_, config),
               std::invalid_argument);
  // A generous bound succeeds and respects the constraint.
  config.max_error_percent = 45.0;
  const PortfolioResult chosen = plan_portfolio(result_, space_, evaluator_, regions_, config);
  EXPECT_LE(result_.history[chosen.history_index].error_percent, 45.0);
}

TEST_F(PortfolioTest, Validation) {
  EXPECT_THROW(plan_portfolio(result_, space_, evaluator_, {}), std::invalid_argument);
  PortfolioConfig config;
  config.objective = kErrorObjective;
  EXPECT_THROW(plan_portfolio(result_, space_, evaluator_, regions_, config),
               std::invalid_argument);
}

TEST_F(PortfolioTest, PlansCarryPerRegionDeployments) {
  const PortfolioResult chosen = plan_portfolio(result_, space_, evaluator_, regions_);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    EXPECT_EQ(chosen.plans[i].region.name, regions_[i].name);
    EXPECT_FALSE(chosen.plans[i].deployment_label.empty());
    EXPECT_GT(chosen.plans[i].cost, 0.0);
  }
}

// ---- extra evaluator property sweeps ---------------------------------------

class EvaluatorPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EvaluatorPropertyTest, BestCostsAreMonotoneInThroughput) {
  // Raising t_u can only improve (or not change) the best achievable cost:
  // every option's cost is non-increasing in t_u, hence so is the minimum.
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const DeploymentEvaluator evaluator(oracle, wifi);
  const SearchSpace space;
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    const Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    double previous_latency = 1e300;
    double previous_energy = 1e300;
    for (double tu : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const DeploymentEvaluation eval = evaluator.evaluate(arch, tu);
      EXPECT_LE(eval.best_latency_ms(), previous_latency + 1e-9);
      EXPECT_LE(eval.best_energy_mj(), previous_energy + 1e-9);
      previous_latency = eval.best_latency_ms();
      previous_energy = eval.best_energy_mj();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace lens::core
