// Tests for K-tier hierarchies: TierTopology validation, the multi-tier
// compile path and its dominance-pruned cut lattice, the shared cut-vector
// label formatter, per-hop threshold/deployer machinery, per-hop fault
// substreams, and the 3-tier serving simulation. The K=2 guarantees are
// frozen-reference checks: an evaluator built through TierTopology must be
// field-for-field identical to the historical two-argument evaluator, and
// the vector price path must delegate to the scalar (legacy) arithmetic.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "core/search_space.hpp"
#include "core/topology.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "runtime/threshold.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"
#include "viz/ascii.hpp"

namespace lens::core {
namespace {

/// Exact (bitwise, via ==) field-for-field comparison of two evaluations,
/// including the K-tier vector fields.
void expect_identical(const DeploymentEvaluation& got, const DeploymentEvaluation& want) {
  ASSERT_EQ(got.options.size(), want.options.size());
  EXPECT_EQ(got.best_latency_option, want.best_latency_option);
  EXPECT_EQ(got.best_energy_option, want.best_energy_option);
  EXPECT_EQ(got.layer_latency_ms, want.layer_latency_ms);
  EXPECT_EQ(got.layer_energy_mj, want.layer_energy_mj);
  for (std::size_t i = 0; i < want.options.size(); ++i) {
    const DeploymentOption& g = got.options[i];
    const DeploymentOption& w = want.options[i];
    EXPECT_EQ(g.kind, w.kind) << "option " << i;
    EXPECT_EQ(g.split_after, w.split_after) << "option " << i;
    EXPECT_EQ(g.latency_ms, w.latency_ms) << "option " << i;
    EXPECT_EQ(g.energy_mj, w.energy_mj) << "option " << i;
    EXPECT_EQ(g.edge_latency_ms, w.edge_latency_ms) << "option " << i;
    EXPECT_EQ(g.edge_energy_mj, w.edge_energy_mj) << "option " << i;
    EXPECT_EQ(g.tx_bytes, w.tx_bytes) << "option " << i;
    EXPECT_EQ(g.edge_weight_bytes, w.edge_weight_bytes) << "option " << i;
    EXPECT_EQ(g.cloud_latency_ms, w.cloud_latency_ms) << "option " << i;
    EXPECT_EQ(g.cuts, w.cuts) << "option " << i;
    EXPECT_EQ(g.tier_latency_ms, w.tier_latency_ms) << "option " << i;
    EXPECT_EQ(g.hop_tx_bytes, w.hop_tx_bytes) << "option " << i;
  }
}

comm::ThroughputTrace flat_trace(double mbps, double interval_s = 100.0) {
  comm::ThroughputTrace trace;
  trace.samples_mbps = {mbps};
  trace.interval_s = interval_s;
  return trace;
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest()
      : edge_sim_(perf::jetson_tx2_gpu()),
        edge_(edge_sim_),
        fog_sim_(perf::datacenter_gpu()),
        fog_(fog_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        lte_(comm::WirelessTechnology::kLte, 25.0) {}

  /// Built-in 3-tier preset over the fixture's models: wifi radio to the
  /// fog node, LTE-profiled backhaul to the cloud, free cloud compute.
  TierTopology three_tier(std::uint64_t edge_budget = 0,
                          std::uint64_t fog_budget = 0) const {
    EdgeFogCloudConfig config;
    config.radio = wifi_;
    config.backhaul = lte_;
    config.edge_memory_budget_bytes = edge_budget;
    config.fog_memory_budget_bytes = fog_budget;
    return edge_fog_cloud(edge_, fog_, nullptr, config);
  }

  /// Log-spaced throughput sweep over [0.05, 500] Mbps.
  static std::vector<double> tu_sweep() {
    std::vector<double> tus;
    for (double tu = 0.05; tu < 500.0; tu *= 2.3) tus.push_back(tu);
    return tus;
  }

  perf::DeviceSimulator edge_sim_;
  perf::SimulatorOracle edge_;
  perf::DeviceSimulator fog_sim_;
  perf::SimulatorOracle fog_;
  comm::CommModel wifi_;
  comm::CommModel lte_;
};

// ---------------------------------------------------------------------------
// TierTopology construction.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, TopologyValidatesShape) {
  const std::vector<TierSpec> good = {{"edge", &edge_, 0}, {"cloud", nullptr, 0}};
  EXPECT_NO_THROW(TierTopology(good, {wifi_}));

  EXPECT_THROW(TierTopology({{"edge", &edge_, 0}}, {}), std::invalid_argument);
  EXPECT_THROW(TierTopology(good, {wifi_, lte_}), std::invalid_argument);
  EXPECT_THROW(TierTopology({{"edge", nullptr, 0}, {"cloud", nullptr, 0}}, {wifi_}),
               std::invalid_argument);
  EXPECT_THROW(TierTopology({{"edge", &edge_, 0}, {"", nullptr, 0}}, {wifi_}),
               std::invalid_argument);
}

TEST_F(TopologyTest, EdgeFogCloudPresetShape) {
  const TierTopology topo = three_tier(1, 2);
  ASSERT_EQ(topo.num_tiers(), 3u);
  ASSERT_EQ(topo.num_hops(), 2u);
  EXPECT_EQ(topo.tier_names(), (std::vector<std::string>{"edge", "fog", "cloud"}));
  EXPECT_EQ(topo.tier(0).model, &edge_);
  EXPECT_EQ(topo.tier(1).model, &fog_);
  EXPECT_EQ(topo.tier(2).model, nullptr);
  EXPECT_EQ(topo.tier(0).memory_budget_bytes, 1u);
  EXPECT_EQ(topo.tier(1).memory_budget_bytes, 2u);
  EXPECT_EQ(topo.hop(0).round_trip_ms(), wifi_.round_trip_ms());
  EXPECT_EQ(topo.hop(1).round_trip_ms(), lte_.round_trip_ms());
}

// ---------------------------------------------------------------------------
// K=2 frozen-reference equivalence: a topology-built evaluator and the
// historical two-argument evaluator must agree bit for bit, and the vector
// price forms must delegate to the scalar legacy path.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, TwoTierTopologyIsBitIdenticalToLegacyEvaluator) {
  const std::uint64_t mb = 1ULL << 20;
  const std::uint64_t budgets[] = {0, 16 * mb};
  const perf::LayerPerformanceModel* clouds[] = {nullptr, &fog_};
  const dnn::Architecture arch = dnn::alexnet();

  for (std::uint64_t budget : budgets) {
    for (const perf::LayerPerformanceModel* cloud : clouds) {
      const DeploymentEvaluator legacy(edge_, wifi_, EvaluatorConfig{{}, budget, cloud});
      const DeploymentEvaluator via_topology(
          TierTopology::two_tier(edge_, wifi_, budget, cloud));
      const DeploymentPlan a = legacy.compile(arch);
      const DeploymentPlan b = via_topology.compile(arch);
      ASSERT_EQ(b.num_tiers(), 2u);
      for (double tu : tu_sweep()) {
        expect_identical(b.price(tu), a.price(tu));
        // A one-element throughput vector takes the exact scalar path.
        expect_identical(b.price(std::vector<double>{tu}), a.price(tu));
      }
    }
  }
}

TEST_F(TopologyTest, VectorFormsDelegateToScalarAtTwoTiers) {
  const DeploymentEvaluator evaluator(edge_, lte_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  for (double tu : tu_sweep()) {
    const std::vector<double> vec{tu};
    const PricedObjectives scalar = plan.objectives_at(tu);
    const PricedObjectives vector = plan.objectives_at(vec);
    EXPECT_EQ(vector.best_latency_ms, scalar.best_latency_ms);
    EXPECT_EQ(vector.best_energy_mj, scalar.best_energy_mj);
    EXPECT_EQ(vector.best_latency_option, scalar.best_latency_option);
    EXPECT_EQ(vector.best_energy_option, scalar.best_energy_option);
    for (std::size_t i = 0; i < plan.num_options(); ++i) {
      EXPECT_EQ(plan.option_latency_ms(i, vec), plan.option_latency_ms(i, tu));
      EXPECT_EQ(plan.option_energy_mj(i, vec), plan.option_energy_mj(i, tu));
    }
  }
  // At K=2 the surfaces carry the 1-D curve coefficients verbatim.
  ASSERT_EQ(plan.latency_surfaces().size(), plan.num_options());
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    ASSERT_EQ(plan.latency_surfaces()[i].num_hops(), 1u);
    EXPECT_EQ(plan.latency_surfaces()[i].constant, plan.latency_curves()[i].constant);
    EXPECT_EQ(plan.latency_surfaces()[i].per_inverse_tu[0],
              plan.latency_curves()[i].per_inverse_tu);
    EXPECT_EQ(plan.energy_surfaces()[i].constant, plan.energy_curves()[i].constant);
    EXPECT_EQ(plan.energy_surfaces()[i].per_inverse_tu[0],
              plan.energy_curves()[i].per_inverse_tu);
  }
}

// ---------------------------------------------------------------------------
// MultiHopCurve algebra.
// ---------------------------------------------------------------------------

TEST(MultiHopCurveTest, ValueAndCollapse) {
  const comm::MultiHopCurve curve{2.0, {10.0, 30.0}};
  EXPECT_DOUBLE_EQ(curve.value({5.0, 10.0}), 2.0 + 2.0 + 3.0);

  const comm::CostCurve in_hop0 = curve.collapse(0, {1.0, 10.0});
  EXPECT_DOUBLE_EQ(in_hop0.constant, 5.0);
  EXPECT_DOUBLE_EQ(in_hop0.per_inverse_tu, 10.0);
  const comm::CostCurve in_hop1 = curve.collapse(1, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(in_hop1.constant, 4.0);
  EXPECT_DOUBLE_EQ(in_hop1.per_inverse_tu, 30.0);
  // Collapsing agrees with direct evaluation at the pinned throughputs.
  EXPECT_DOUBLE_EQ(in_hop0.value(5.0), curve.value({5.0, 10.0}));

  // The fixed entry of an unused hop (zero coefficient) is never read.
  const comm::MultiHopCurve radio_only{1.0, {8.0, 0.0}};
  EXPECT_DOUBLE_EQ(radio_only.collapse(0, {1.0, -1.0}).constant, 1.0);
}

TEST(MultiHopCurveTest, Validation) {
  const comm::MultiHopCurve curve{2.0, {10.0, 30.0}};
  EXPECT_THROW(curve.value({5.0}), std::invalid_argument);
  EXPECT_THROW(curve.value({5.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(curve.collapse(2, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(curve.collapse(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(curve.collapse(0, {1.0, -2.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shared cut-vector formatter.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, DefaultTierNames) {
  EXPECT_EQ(default_tier_names(2), (std::vector<std::string>{"edge", "cloud"}));
  EXPECT_EQ(default_tier_names(3), (std::vector<std::string>{"edge", "fog", "cloud"}));
  EXPECT_EQ(default_tier_names(4),
            (std::vector<std::string>{"edge", "fog1", "fog2", "cloud"}));
  EXPECT_THROW(default_tier_names(1), std::invalid_argument);
}

TEST_F(TopologyTest, TwoTierOptionsKeepLegacyLabels) {
  const dnn::Architecture arch = dnn::alexnet();
  const DeploymentEvaluator evaluator(edge_, wifi_);
  const DeploymentEvaluation eval = evaluator.evaluate(arch, 3.0);
  EXPECT_EQ(eval.all_cloud().label(arch), "All-Cloud");
  ASSERT_TRUE(eval.has_all_edge());
  EXPECT_EQ(eval.all_edge().label(arch), "All-Edge");
  for (const DeploymentOption& o : eval.options) {
    if (o.kind != DeploymentKind::kPartitioned) continue;
    ASSERT_TRUE(o.split_after.has_value());
    EXPECT_EQ(o.label(arch), "split@" + arch.layers()[*o.split_after].name);
  }
}

TEST_F(TopologyTest, MultiTierLabelsSkipEmptyTiers) {
  const dnn::Architecture arch = dnn::alexnet();
  const std::size_t n = arch.num_layers();
  const std::vector<std::string> names{"edge", "fog", "cloud"};
  ASSERT_GE(n, 6u);

  DeploymentOption o;
  o.cuts = {0, 0};
  EXPECT_EQ(option_label(o, arch, names), "cloud");
  o.cuts = {n, n};
  EXPECT_EQ(option_label(o, arch, names), "edge");
  o.cuts = {4, n};
  EXPECT_EQ(option_label(o, arch, names), "edge|fog@4");
  o.cuts = {0, 4};
  EXPECT_EQ(option_label(o, arch, names), "fog|cloud@4");
  o.cuts = {2, 5};
  EXPECT_EQ(option_label(o, arch, names), "edge|fog@2|cloud@5");
  // label() without explicit names falls back to the defaults.
  EXPECT_EQ(o.label(arch), "edge|fog@2|cloud@5");
  EXPECT_THROW(option_label(o, arch, {"a", "b"}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Multi-tier compilation: shape invariants and the dominance prune.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, ThreeTierPlanShape) {
  const dnn::Architecture arch = dnn::alexnet();
  const std::size_t n = arch.num_layers();
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(arch);

  EXPECT_EQ(plan.num_tiers(), 3u);
  EXPECT_EQ(plan.num_hops(), 2u);
  EXPECT_EQ(plan.tier_names(), (std::vector<std::string>{"edge", "fog", "cloud"}));
  // K >= 3 plans expose surfaces, not 1-D curves.
  EXPECT_TRUE(plan.latency_curves().empty());
  ASSERT_EQ(plan.latency_surfaces().size(), plan.num_options());
  ASSERT_EQ(plan.energy_surfaces().size(), plan.num_options());

  for (const DeploymentOption& o : plan.options()) {
    ASSERT_EQ(o.cuts.size(), 2u);
    EXPECT_LE(o.cuts[0], o.cuts[1]);
    EXPECT_LE(o.cuts[1], n);
    ASSERT_EQ(o.tier_latency_ms.size(), 3u);
    ASSERT_EQ(o.hop_tx_bytes.size(), 2u);
    // Legacy scalar fields mirror the vector fields.
    EXPECT_EQ(o.tx_bytes, o.hop_tx_bytes[0]);
    EXPECT_EQ(o.edge_latency_ms, o.tier_latency_ms[0]);
    // A hop past the deepest occupied tier carries nothing.
    if (o.cuts[1] == n) {
      EXPECT_EQ(o.hop_tx_bytes[1], 0u);
    }
  }

  // Anchors survive pruning, and priced results agree with the surfaces.
  const std::vector<double> tu{3.0, 40.0};
  const DeploymentEvaluation eval = plan.price(tu);
  EXPECT_NO_THROW(eval.all_cloud());
  EXPECT_TRUE(eval.has_all_edge());
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    EXPECT_NEAR(plan.option_latency_ms(i, tu), plan.latency_surfaces()[i].value(tu),
                1e-9 * std::max(1.0, plan.option_latency_ms(i, tu)));
    EXPECT_NEAR(plan.option_energy_mj(i, tu), plan.energy_surfaces()[i].value(tu),
                1e-9 * std::max(1.0, plan.option_energy_mj(i, tu)));
  }
}

/// One unpruned reference option: cost coefficients of a 3-tier cut pair.
struct RefSurface {
  double lat_const = 0.0;
  double lat_slope0 = 0.0;
  double lat_slope1 = 0.0;
  double en_const = 0.0;
  double en_slope0 = 0.0;

  double latency(double t0, double t1) const {
    return lat_const + lat_slope0 / t0 + lat_slope1 / t1;
  }
  double energy(double t0) const { return en_const + en_slope0 / t0; }
};

/// Frozen reference: the exhaustive, *unpruned* 3-tier cut lattice with the
/// multi-tier cost semantics (hop h ships boundary c_{h+1} iff c_{h+1} < n;
/// only the hop-0 radio is billed to the battery; free cloud).
std::vector<RefSurface> reference_lattice(const dnn::Architecture& arch,
                                          const perf::LayerPerformanceModel& edge,
                                          const perf::LayerPerformanceModel& fog,
                                          const comm::CommModel& radio,
                                          const comm::CommModel& backhaul,
                                          std::uint64_t edge_budget,
                                          std::uint64_t fog_budget) {
  const dnn::DataSizeModel sizes{};
  const std::size_t n = arch.num_layers();
  std::vector<double> edge_lat(n + 1, 0.0), edge_en(n + 1, 0.0), fog_lat(n + 1, 0.0);
  std::vector<std::uint64_t> weights(n + 1, 0), boundary(n + 1, 0);
  boundary[0] = arch.input_bytes(sizes);
  for (std::size_t i = 0; i < n; ++i) {
    const dnn::LayerInfo& info = arch.layers()[i];
    const perf::LayerMeasurement e = edge.predict(info.spec, info.input);
    edge_lat[i + 1] = edge_lat[i] + e.latency_ms;
    edge_en[i + 1] = edge_en[i] + e.energy_mj();
    fog_lat[i + 1] = fog_lat[i] + fog.predict(info.spec, info.input).latency_ms;
    weights[i + 1] = weights[i] + 4ULL * info.params;
    boundary[i + 1] = arch.output_bytes(i, sizes);
  }
  std::vector<RefSurface> all;
  for (std::size_t c1 = 0; c1 <= n; ++c1) {
    if (edge_budget != 0 && weights[c1] > edge_budget) continue;
    for (std::size_t c2 = c1; c2 <= n; ++c2) {
      if (fog_budget != 0 && weights[c2] - weights[c1] > fog_budget) continue;
      RefSurface s;
      s.lat_const = edge_lat[c1] + (fog_lat[c2] - fog_lat[c1]);
      s.en_const = edge_en[c1];
      if (c1 < n) {
        const comm::CostCurve l = radio.comm_latency_curve(boundary[c1]);
        s.lat_const += l.constant;
        s.lat_slope0 = l.per_inverse_tu;
        const comm::CostCurve e = radio.tx_energy_curve(boundary[c1]);
        s.en_const += e.constant;
        s.en_slope0 = e.per_inverse_tu;
      }
      if (c2 < n) {
        const comm::CostCurve l = backhaul.comm_latency_curve(boundary[c2]);
        s.lat_const += l.constant;
        s.lat_slope1 = l.per_inverse_tu;
      }
      all.push_back(s);
    }
  }
  return all;
}

TEST_F(TopologyTest, DominancePruneNeverDropsAParetoOptimalCut) {
  const SearchSpace space;
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> log_tu(std::log(0.05), std::log(500.0));
  const std::uint64_t mb = 1ULL << 20;
  const std::uint64_t edge_budgets[] = {0, 50 * mb, 16 * mb};
  const std::uint64_t fog_budgets[] = {0, 32 * mb};

  for (int trial = 0; trial < 6; ++trial) {
    const dnn::Architecture arch = space.decode(space.random(rng));
    const std::uint64_t edge_budget = edge_budgets[trial % 3];
    const std::uint64_t fog_budget = fog_budgets[trial % 2];
    const DeploymentEvaluator evaluator(three_tier(edge_budget, fog_budget));
    const DeploymentPlan plan = evaluator.compile(arch);
    const std::vector<RefSurface> full = reference_lattice(
        arch, edge_, fog_, wifi_, lte_, edge_budget, fog_budget);
    ASSERT_FALSE(full.empty());
    // Pruning only removes options — and at every throughput vector the
    // kept set must still attain the full lattice's objective minima.
    EXPECT_LE(plan.num_options(), full.size());
    for (int probe = 0; probe < 12; ++probe) {
      const double t0 = std::exp(log_tu(rng));
      const double t1 = std::exp(log_tu(rng));
      double ref_lat = full[0].latency(t0, t1);
      double ref_en = full[0].energy(t0);
      for (const RefSurface& s : full) {
        ref_lat = std::min(ref_lat, s.latency(t0, t1));
        ref_en = std::min(ref_en, s.energy(t0));
      }
      const PricedObjectives got = plan.objectives_at({t0, t1});
      EXPECT_NEAR(got.best_latency_ms, ref_lat, 1e-9 * std::max(1.0, ref_lat))
          << "trial " << trial << " t0=" << t0 << " t1=" << t1;
      EXPECT_NEAR(got.best_energy_mj, ref_en, 1e-9 * std::max(1.0, ref_en))
          << "trial " << trial << " t0=" << t0 << " t1=" << t1;
    }
  }
}

TEST_F(TopologyTest, MultiTierErrorPaths) {
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  // Scalar pricing is a two-tier API; K >= 3 plans demand the vector form.
  EXPECT_THROW(plan.price(3.0), std::logic_error);
  EXPECT_THROW(plan.objectives_at(3.0), std::logic_error);
  EXPECT_THROW(plan.option_latency_ms(0, 3.0), std::logic_error);
  // Wrong-arity vectors are rejected with the actionable message.
  EXPECT_THROW(plan.price(std::vector<double>{3.0}), std::invalid_argument);
  EXPECT_THROW(plan.price(std::vector<double>{3.0, 4.0, 5.0}), std::invalid_argument);
  EXPECT_THROW(plan.price(std::vector<double>{3.0, 0.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-hop threshold machinery and the switching surface.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, CollapsedCurvesAndPerHopCrossovers) {
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  const std::vector<double> pinned{1.0, 50.0};
  const std::vector<comm::CostCurve> collapsed =
      runtime::collapse_curves(plan.latency_surfaces(), 0, pinned);
  ASSERT_EQ(collapsed.size(), plan.num_options());
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    const comm::CostCurve direct = plan.latency_surfaces()[i].collapse(0, pinned);
    EXPECT_EQ(collapsed[i].constant, direct.constant);
    EXPECT_EQ(collapsed[i].per_inverse_tu, direct.per_inverse_tu);
  }
  // crossover_tu_hop == crossover_tu of the collapsed pair.
  for (std::size_t i = 0; i + 1 < plan.num_options(); ++i) {
    const auto via_hop = runtime::crossover_tu_hop(
        plan.latency_surfaces()[i], plan.latency_surfaces()[i + 1], 0, pinned);
    const auto via_collapse = runtime::crossover_tu(collapsed[i], collapsed[i + 1]);
    ASSERT_EQ(via_hop.has_value(), via_collapse.has_value()) << "pair " << i;
    if (via_hop) {
      EXPECT_DOUBLE_EQ(*via_hop, *via_collapse) << "pair " << i;
    }
  }
}

TEST_F(TopologyTest, SwitchingSurfaceSelectsCheapestOption) {
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  const auto& surfaces = plan.latency_surfaces();
  const runtime::SwitchingSurface surface =
      runtime::switching_surface(surfaces, 0.05, 500.0, 1.0, 400.0, 6);
  ASSERT_EQ(surface.backhaul_tus_mbps.size(), 6u);
  ASSERT_EQ(surface.rows.size(), 6u);

  const double probes[] = {0.07, 0.5, 3.0, 20.0, 150.0, 480.0};
  for (double t1 : surface.backhaul_tus_mbps) {
    const std::vector<double> pinned{1.0, t1};
    for (double t0 : probes) {
      const std::size_t chosen = surface.select(t0, t1);
      ASSERT_LT(chosen, surfaces.size());
      const double chosen_cost = surfaces[chosen].collapse(0, pinned).value(t0);
      double best_cost = chosen_cost;
      for (const comm::MultiHopCurve& s : surfaces) {
        best_cost = std::min(best_cost, s.collapse(0, pinned).value(t0));
      }
      EXPECT_LE(chosen_cost, best_cost + 1e-9 * std::max(1.0, best_cost))
          << "t0=" << t0 << " t1=" << t1;
    }
  }
}

TEST_F(TopologyTest, SwitchingSurfaceValidation) {
  const DeploymentEvaluator two_tier(edge_, wifi_);
  const DeploymentPlan plan = two_tier.compile(dnn::alexnet());
  // One-hop surfaces have no backhaul axis to condition on.
  EXPECT_THROW(runtime::switching_surface(plan.latency_surfaces(), 0.05, 500.0, 1.0,
                                          400.0, 6),
               std::invalid_argument);
  EXPECT_THROW(runtime::switching_surface({}, 0.05, 500.0, 1.0, 400.0, 6),
               std::invalid_argument);
  const DeploymentEvaluator three(three_tier());
  const auto& surfaces = three.compile(dnn::alexnet()).latency_surfaces();
  EXPECT_THROW(runtime::switching_surface(surfaces, 0.05, 500.0, 1.0, 400.0, 1),
               std::invalid_argument);
  EXPECT_THROW(runtime::switching_surface(surfaces, 5.0, 5.0, 1.0, 400.0, 6),
               std::invalid_argument);
}

TEST_F(TopologyTest, TierLadderFallback) {
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  const runtime::DynamicDeployer deployer(plan, runtime::OptimizeFor::kLatency,
                                          {3.0, 40.0});
  ASSERT_TRUE(deployer.cheapest_edge_only().has_value());
  // Rung 0 of the ladder is exactly the edge-only query.
  EXPECT_EQ(deployer.cheapest_confined(0), deployer.cheapest_edge_only());
  EXPECT_EQ(deployer.select_hop_unreachable(0), deployer.select_cloud_unreachable());
  EXPECT_EQ(deployer.options()[deployer.select_hop_unreachable(0)].tx_bytes, 0u);
  // With the backhaul down, the selection must not use hop 1.
  const std::size_t confined = deployer.select_hop_unreachable(1);
  ASSERT_EQ(deployer.options()[confined].hop_tx_bytes.size(), 2u);
  EXPECT_EQ(deployer.options()[confined].hop_tx_bytes[1], 0u);
}

// ---------------------------------------------------------------------------
// Per-hop fault injection.
// ---------------------------------------------------------------------------

TEST(HopFaultTest, BackhaulStreamsNeverPerturbHopZero) {
  sim::FaultScheduleConfig base;
  base.seed = 7;
  base.horizon_s = 400.0;
  base.link_outage_rate_hz = 1.0 / 40.0;
  base.cloud_outage_rate_hz = 1.0 / 90.0;
  base.rtt_spike_rate_hz = 1.0 / 50.0;
  base.edge_slowdown_rate_hz = 1.0 / 70.0;
  const sim::FaultSchedule plain = sim::FaultSchedule::generate(base);

  sim::FaultScheduleConfig with_backhaul = base;
  sim::HopFaultConfig hop1;
  hop1.outage_rate_hz = 1.0 / 30.0;
  hop1.outage_mean_s = 5.0;
  hop1.rtt_spike_rate_hz = 1.0 / 45.0;
  with_backhaul.extra_hops = {hop1};
  const sim::FaultSchedule mixed = sim::FaultSchedule::generate(with_backhaul);

  // The hop-0 (and hopless) episode stream is byte-identical: backhaul
  // classes draw from disjoint RNG substreams.
  std::vector<sim::FaultEpisode> hop0;
  std::size_t hop1_outages = 0, hop1_spikes = 0;
  for (const sim::FaultEpisode& e : mixed.episodes()) {
    if (e.hop == 0) {
      hop0.push_back(e);
    } else if (e.fault == sim::FaultClass::kLinkOutage) {
      ++hop1_outages;
    } else if (e.fault == sim::FaultClass::kRttSpike) {
      ++hop1_spikes;
    }
  }
  ASSERT_EQ(hop0.size(), plain.episodes().size());
  for (std::size_t i = 0; i < hop0.size(); ++i) {
    const sim::FaultEpisode& a = plain.episodes()[i];
    const sim::FaultEpisode& b = hop0[i];
    EXPECT_EQ(a.fault, b.fault) << "episode " << i;
    EXPECT_EQ(a.start_s, b.start_s) << "episode " << i;
    EXPECT_EQ(a.end_s, b.end_s) << "episode " << i;
    EXPECT_EQ(a.magnitude, b.magnitude) << "episode " << i;
  }
  EXPECT_GT(hop1_outages, 0u);
  EXPECT_GT(hop1_spikes, 0u);

  sim::FaultScheduleConfig bad = with_backhaul;
  bad.extra_hops[0].outage_rate_hz = -1.0;
  EXPECT_THROW(sim::FaultSchedule::generate(bad), std::invalid_argument);
}

TEST(HopFaultTest, InjectorQueriesAreHopScoped) {
  std::vector<sim::FaultEpisode> episodes;
  episodes.push_back({sim::FaultClass::kLinkOutage, 10.0, 20.0, 0.5, 1});
  episodes.push_back({sim::FaultClass::kLinkOutage, 30.0, 40.0, 0.25, 0});
  episodes.push_back({sim::FaultClass::kRttSpike, 5.0, 15.0, 100.0, 1});
  const sim::FaultInjector injector{sim::FaultSchedule(std::move(episodes))};

  EXPECT_DOUBLE_EQ(injector.link_factor(15.0), 1.0);  // hop 0 by default
  EXPECT_DOUBLE_EQ(injector.link_factor(15.0, 1), 0.5);
  EXPECT_DOUBLE_EQ(injector.link_factor(35.0), 0.25);
  EXPECT_DOUBLE_EQ(injector.link_factor(35.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(injector.rtt_extra_ms(10.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.rtt_extra_ms(10.0, 1), 100.0);
  // Boundaries are per hop: hop 1's next change is its own episode start,
  // even though hop 0's episode sorts later.
  EXPECT_DOUBLE_EQ(injector.next_link_boundary(0.0), 30.0);
  EXPECT_DOUBLE_EQ(injector.next_link_boundary(0.0, 1), 10.0);
  EXPECT_DOUBLE_EQ(injector.next_link_boundary(12.0, 1), 20.0);
}

// ---------------------------------------------------------------------------
// 3-tier serving simulation.
// ---------------------------------------------------------------------------

TEST_F(TopologyTest, ThreeTierSimulationRunsUnderBackhaulFaults) {
  const DeploymentEvaluator evaluator(three_tier());
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());

  sim::SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 3.0;
  config.seed = 11;
  config.policy = sim::DispatchPolicy::kDynamic;
  config.backhaul_tu_mbps = {50.0};
  config.faults.link_outage_rate_hz = 1.0 / 30.0;
  config.faults.link_outage_mean_s = 3.0;
  sim::HopFaultConfig backhaul;
  backhaul.outage_rate_hz = 1.0 / 25.0;
  backhaul.outage_mean_s = 4.0;
  backhaul.rtt_spike_rate_hz = 1.0 / 40.0;
  config.faults.extra_hops = {backhaul};
  config.timeout_ms = 500.0;

  sim::EdgeCloudSystem system(plan, flat_trace(8.0), config);
  const sim::SimStats stats = system.run();
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.makespan_s, 0.0);
  EXPECT_GE(stats.availability, 0.0);
  EXPECT_LE(stats.availability, 1.0);

  // Same seed, same stats — the K-tier chain stays deterministic.
  sim::EdgeCloudSystem again(plan, flat_trace(8.0), config);
  const sim::SimStats repeat = again.run();
  EXPECT_EQ(stats.completed, repeat.completed);
  EXPECT_EQ(stats.mean_latency_ms, repeat.mean_latency_ms);
  EXPECT_EQ(stats.total_energy_mj, repeat.total_energy_mj);
  EXPECT_EQ(stats.timeouts, repeat.timeouts);

  // A K-tier plan demands one nominal rate per backhaul hop.
  sim::SimConfig missing = config;
  missing.backhaul_tu_mbps.clear();
  EXPECT_THROW(sim::EdgeCloudSystem(plan, flat_trace(8.0), missing),
               std::invalid_argument);
  sim::SimConfig negative = config;
  negative.backhaul_tu_mbps = {-1.0};
  EXPECT_THROW(sim::EdgeCloudSystem(plan, flat_trace(8.0), negative),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tier-chain ASCII diagram.
// ---------------------------------------------------------------------------

TEST(TierDiagramTest, RendersOccupancyAndHopPayloads) {
  const std::vector<std::string> names{"edge", "fog", "cloud"};
  EXPECT_EQ(viz::tier_diagram(names, {4, 8}, 10, {1024, 2048}),
            "[edge: L0-L3] ==(1.0 KB)==> [fog: L4-L7] ==(2.0 KB)==> [cloud: L8-L9]");
  EXPECT_EQ(viz::tier_diagram(names, {10, 10}, 10, {0, 0}),
            "[edge: L0-L9] ----> [fog: idle] ----> [cloud: idle]");
  EXPECT_EQ(viz::tier_diagram(names, {0, 0}, 10, {147, 147}),
            "[edge: idle] ==(147 B)==> [fog: idle] ==(147 B)==> [cloud: L0-L9]");

  EXPECT_THROW(viz::tier_diagram({"edge"}, {}, 10, {}), std::invalid_argument);
  EXPECT_THROW(viz::tier_diagram(names, {4}, 10, {1024}), std::invalid_argument);
  EXPECT_THROW(viz::tier_diagram(names, {8, 4}, 10, {0, 0}), std::invalid_argument);
  EXPECT_THROW(viz::tier_diagram(names, {4, 11}, 10, {0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace lens::core
