// Cross-module integration tests: the full LENS pipeline wired exactly as
// the benches wire it — profiling -> trained predictors -> Algorithm 1 ->
// Algorithm 2 -> frontier analysis -> runtime thresholds -> trace playback.

#include <cmath>

#include <gtest/gtest.h>

#include "comm/trace.hpp"
#include "core/analysis.hpp"
#include "core/nas.hpp"
#include "core/trained_accuracy.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"

namespace lens {
namespace {

TEST(Integration, TrainedPredictorDrivesEvaluator) {
  // The paper's real pipeline: regression predictors (not the oracle)
  // inside Algorithm 1. Rankings must match the oracle's on AlexNet-scale
  // decisions at common throughputs.
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(sim, {.samples_per_kind = 300, .seed = 13});
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator predicted_eval(predictor, wifi);
  const core::DeploymentEvaluator oracle_eval(oracle, wifi);

  const core::SearchSpace space;
  std::mt19937_64 rng(17);
  std::size_t agreements = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const core::Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    const auto predicted = predicted_eval.evaluate(arch, 3.0);
    const auto truth = oracle_eval.evaluate(arch, 3.0);
    if (predicted.energy_choice().label(arch) == truth.energy_choice().label(arch)) {
      ++agreements;
    }
    // Objective magnitudes stay close even when the argmin differs.
    EXPECT_NEAR(predicted.best_energy_mj(), truth.best_energy_mj(),
                0.25 * truth.best_energy_mj());
    EXPECT_NEAR(predicted.best_latency_ms(), truth.best_latency_ms(),
                0.25 * truth.best_latency_ms());
  }
  EXPECT_GE(agreements, static_cast<std::size_t>(trials * 3 / 4));
}

TEST(Integration, SmallLensSearchFindsPartitioningGains) {
  // A short LENS run on the paper search space should surface at least one
  // Pareto member whose best deployment is not All-Edge at t_u = 3 Mbps —
  // the core phenomenon behind Fig. 6.
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.mobo.num_initial = 10;
  config.mobo.num_iterations = 15;
  config.mobo.pool_size = 64;
  config.mobo.seed = 5;
  config.tu_mbps = 3.0;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();

  bool found_partition_gain = false;
  for (const core::EvaluatedCandidate& c : result.history) {
    if (c.deployment.energy_choice().kind != core::DeploymentKind::kAllEdge) {
      found_partition_gain = true;
      break;
    }
  }
  EXPECT_TRUE(found_partition_gain);
}

TEST(Integration, SearchToRuntimePipeline) {
  // Select a frontier model from a small search and run it through the
  // runtime threshold analysis and a trace playback (Fig. 8 structure).
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel lte(comm::WirelessTechnology::kLte, 10.0);
  const core::DeploymentEvaluator evaluator(oracle, lte);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.mobo.num_initial = 12;
  config.mobo.num_iterations = 8;
  config.mobo.seed = 9;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();
  ASSERT_FALSE(result.front.empty());

  const core::EvaluatedCandidate& model =
      result.history[result.front.points().front().id];
  std::vector<core::DeploymentOption> options = {model.deployment.energy_choice(),
                                                 model.deployment.all_edge()};
  if (options[0].kind == core::DeploymentKind::kAllEdge) {
    options[0] = model.deployment.all_cloud();  // ensure two distinct options
  }
  const runtime::DynamicDeployer deployer(options, lte, runtime::OptimizeFor::kEnergy);

  comm::TraceGeneratorConfig trace_config;
  trace_config.mean_mbps = 10.0;
  trace_config.seed = 21;
  comm::TraceGenerator generator(trace_config);
  const comm::ThroughputTrace trace = generator.generate(40, 300.0);

  const runtime::PlaybackResult dynamic = deployer.play_dynamic(trace, 1.0);
  const runtime::PlaybackResult fixed0 = deployer.play_fixed(trace, 0);
  const runtime::PlaybackResult fixed1 = deployer.play_fixed(trace, 1);
  EXPECT_LE(dynamic.total_cost, fixed0.total_cost + 1e-9);
  EXPECT_LE(dynamic.total_cost, fixed1.total_cost + 1e-9);
  EXPECT_EQ(dynamic.per_sample_cost.size(), 40u);
}

TEST(Integration, TrainedAccuracyEvaluatorOnSmallSpace) {
  // Real-training objective: decode against a 16x16 input and train briefly.
  core::SearchSpaceConfig space_config;
  space_config.num_blocks = 2;
  space_config.depths = {1};
  space_config.kernels = {3};
  space_config.filters = {8, 12};
  space_config.fc_units = {32};
  space_config.min_pools = 2;
  const core::SearchSpace space(space_config);

  core::TrainedAccuracyConfig config;
  config.train_samples = 300;
  config.test_samples = 100;
  config.epochs = 4;
  config.trainer.batch_size = 16;
  config.trainer.sgd.learning_rate = 0.05;
  const core::TrainedAccuracyEvaluator evaluator(space, config);

  std::mt19937_64 rng(3);
  const core::Genotype g = space.random(rng);
  const dnn::Architecture arch = space.decode(g);
  const double error = evaluator.test_error_percent(g, arch);
  EXPECT_LT(error, 60.0);  // far better than the 90% of chance
  EXPECT_GE(error, 0.0);
  // Deterministic per genotype.
  EXPECT_DOUBLE_EQ(error, evaluator.test_error_percent(g, arch));
}

TEST(Integration, TrainedPredictorReproducesTableOne) {
  // Table I must hold through the *trained* predictors, not just the
  // ground-truth oracle — this is the paper's actual pipeline.
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator gpu_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator cpu_sim(perf::jetson_tx2_cpu());
  const perf::RooflinePredictor gpu =
      perf::RooflinePredictor::train(gpu_sim, {.samples_per_kind = 400, .seed = 3});
  const perf::RooflinePredictor cpu =
      perf::RooflinePredictor::train(cpu_sim, {.samples_per_kind = 400, .seed = 4});
  const core::DeploymentEvaluator gpu_wifi(
      gpu, comm::CommModel(comm::WirelessTechnology::kWifi, 5.0));
  const core::DeploymentEvaluator cpu_lte(
      cpu, comm::CommModel(comm::WirelessTechnology::kLte, 5.0));

  struct Row {
    double tu;
    const char* cells[4];
  };
  const Row rows[] = {
      {16.1, {"All-Edge", "split@pool5", "All-Cloud", "All-Cloud"}},
      {7.5, {"All-Edge", "split@pool5", "split@pool5", "All-Cloud"}},
      {0.7, {"All-Edge", "All-Edge", "All-Edge", "split@pool5"}},
  };
  for (const Row& row : rows) {
    const auto g = gpu_wifi.evaluate(alexnet, row.tu);
    const auto c = cpu_lte.evaluate(alexnet, row.tu);
    EXPECT_EQ(g.latency_choice().label(alexnet), row.cells[0]) << "tu " << row.tu;
    EXPECT_EQ(g.energy_choice().label(alexnet), row.cells[1]) << "tu " << row.tu;
    EXPECT_EQ(c.latency_choice().label(alexnet), row.cells[2]) << "tu " << row.tu;
    EXPECT_EQ(c.energy_choice().label(alexnet), row.cells[3]) << "tu " << row.tu;
  }
}

TEST(Integration, PresetFamiliesEvaluateSanely) {
  // Every preset passes through the full evaluator with sane outputs.
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  for (const dnn::Architecture& arch :
       {dnn::alexnet(), dnn::vgg16(), dnn::vgg11(), dnn::lenet5()}) {
    const core::DeploymentEvaluation eval = evaluator.evaluate(arch, 10.0);
    EXPECT_GE(eval.options.size(), 2u) << arch.name();
    EXPECT_GT(eval.best_latency_ms(), 0.0) << arch.name();
    EXPECT_GT(eval.best_energy_mj(), 0.0) << arch.name();
    // VGG-16 is ~7x AlexNet's FLOPs: the all-edge latencies must order.
  }
  EXPECT_GT(evaluator.evaluate(dnn::vgg16(), 10.0).all_edge().latency_ms,
            evaluator.evaluate(dnn::alexnet(), 10.0).all_edge().latency_ms);
  EXPECT_LT(evaluator.evaluate(dnn::lenet5(), 10.0).all_edge().latency_ms,
            evaluator.evaluate(dnn::alexnet(), 10.0).all_edge().latency_ms);
}

TEST(Integration, GpTuningTracksFunctionSmoothness) {
  // Marginal-likelihood tuning must pick clearly longer length scales for
  // smooth targets than for jagged ones.
  auto fit_length_scale = [](double frequency) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i <= 60; ++i) {
      const double xi = i / 60.0;
      x.push_back({xi});
      y.push_back(std::sin(frequency * xi));
    }
    opt::GaussianProcess gp;  // tuned
    gp.fit(x, y);
    return gp.length_scale();
  };
  EXPECT_GT(fit_length_scale(2.0), fit_length_scale(40.0));
}

TEST(Integration, AllEdgeObjectivesUpperBoundLensObjectives) {
  // For identical genotypes, LENS objectives == min over options <= the
  // Traditional's All-Edge objectives. Sweep random genotypes.
  perf::DeviceSimulator sim(perf::jetson_tx2_cpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel lte(comm::WirelessTechnology::kLte, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, lte);
  const core::SearchSpace space;
  std::mt19937_64 rng(29);
  for (int i = 0; i < 25; ++i) {
    const core::Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    const auto eval = evaluator.evaluate(arch, 3.0);
    EXPECT_LE(eval.best_latency_ms(), eval.all_edge().latency_ms + 1e-9);
    EXPECT_LE(eval.best_energy_mj(), eval.all_edge().energy_mj + 1e-9);
    EXPECT_LE(eval.best_latency_ms(), eval.all_cloud().latency_ms + 1e-9);
    EXPECT_LE(eval.best_energy_mj(), eval.all_cloud().energy_mj + 1e-9);
  }
}

}  // namespace
}  // namespace lens
