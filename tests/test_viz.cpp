// Tests for the ASCII plotting helpers.

#include <gtest/gtest.h>

#include "viz/ascii.hpp"

namespace lens::viz {
namespace {

Series simple_series(char glyph = '*') {
  Series s;
  s.label = "test";
  s.glyph = glyph;
  s.x = {0.0, 1.0, 2.0, 3.0};
  s.y = {0.0, 1.0, 4.0, 9.0};
  return s;
}

TEST(Scatter, ContainsGlyphsAxesAndLegend) {
  const std::string plot = scatter_plot({simple_series('o')});
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("[o] test"), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);  // axis corners
  // Extreme y values appear as axis labels.
  EXPECT_NE(plot.find('9'), std::string::npos);
}

TEST(Scatter, MultipleSeriesAllDrawn) {
  Series a = simple_series('a');
  Series b = simple_series('b');
  for (double& v : b.y) v += 0.5;
  const std::string plot = scatter_plot({a, b});
  EXPECT_NE(plot.find('a'), std::string::npos);
  EXPECT_NE(plot.find('b'), std::string::npos);
}

TEST(Scatter, GlyphLandsAtExpectedCorner) {
  Series s;
  s.label = "corner";
  s.glyph = '#';
  s.x = {0.0, 10.0};
  s.y = {0.0, 5.0};
  PlotConfig config;
  config.width = 20;
  config.height = 10;
  const std::string plot = scatter_plot({s}, config);
  // The (max x, max y) point lands on the first canvas row, last column;
  // the first canvas row is the second output line.
  std::size_t line_start = plot.find('\n') + 1;
  std::size_t line_end = plot.find('\n', line_start);
  const std::string first_row = plot.substr(line_start, line_end - line_start);
  EXPECT_EQ(first_row[first_row.size() - 2], '#');  // last col before border '|'
}

TEST(Scatter, Validation) {
  EXPECT_THROW(scatter_plot({}), std::invalid_argument);
  Series ragged = simple_series();
  ragged.y.pop_back();
  EXPECT_THROW(scatter_plot({ragged}), std::invalid_argument);
  Series empty;
  empty.label = "empty";
  EXPECT_THROW(scatter_plot({empty}), std::invalid_argument);
  PlotConfig tiny;
  tiny.width = 2;
  EXPECT_THROW(scatter_plot({simple_series()}, tiny), std::invalid_argument);
}

TEST(Scatter, LogAxisRejectsNonPositive) {
  Series s = simple_series();  // y starts at 0
  PlotConfig config;
  config.log_y = true;
  EXPECT_THROW(scatter_plot({s}, config), std::invalid_argument);
  for (double& v : s.y) v += 1.0;
  EXPECT_NO_THROW(scatter_plot({s}, config));
}

TEST(Scatter, DegenerateSinglePointRenders) {
  Series s;
  s.label = "dot";
  s.glyph = 'x';
  s.x = {5.0};
  s.y = {7.0};
  const std::string plot = scatter_plot({s});
  EXPECT_NE(plot.find('x'), std::string::npos);
}

TEST(Line, InterpolatesAcrossColumns) {
  Series s;
  s.label = "ramp";
  s.glyph = '.';
  s.x = {0.0, 100.0};
  s.y = {0.0, 100.0};
  PlotConfig config;
  config.width = 40;
  config.height = 12;
  const std::string plot = line_plot({s}, config);
  // A two-point ramp must paint roughly one glyph per column.
  const std::size_t glyphs = static_cast<std::size_t>(
      std::count(plot.begin(), plot.end(), '.'));
  EXPECT_GE(glyphs, 38u);
}

TEST(Line, SinglePointFallsBackToDot) {
  Series s;
  s.label = "single";
  s.glyph = 'q';
  s.x = {1.0};
  s.y = {2.0};
  EXPECT_NE(line_plot({s}).find('q'), std::string::npos);
}

TEST(Line, AxisLabelsAppear) {
  PlotConfig config;
  config.x_label = "throughput";
  config.y_label = "energy";
  const std::string plot = line_plot({simple_series()}, config);
  EXPECT_NE(plot.find("throughput"), std::string::npos);
  EXPECT_NE(plot.find("energy"), std::string::npos);
}

}  // namespace
}  // namespace lens::viz
