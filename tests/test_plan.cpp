// Tests for compiled deployment plans (core/plan.hpp): compile/price must
// reproduce the historical single-stage Algorithm-1 evaluation bit for bit.
// A frozen reference implementation of the pre-refactor evaluate() lives in
// this file; randomized architectures are checked against it field-for-field
// with exact (EXPECT_EQ) comparisons across memory budgets, cloud models,
// and log-spaced throughput sweeps.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "core/search_space.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/threshold.hpp"

namespace lens::core {
namespace {

/// Frozen copy of the pre-refactor DeploymentEvaluator::evaluate — the
/// ground truth the compile/price split must match exactly.
DeploymentEvaluation legacy_evaluate(const perf::LayerPerformanceModel& model,
                                     const comm::CommModel& comm,
                                     const EvaluatorConfig& config,
                                     const dnn::Architecture& arch, double tu_mbps) {
  DeploymentEvaluation result;
  const std::size_t n = arch.num_layers();

  result.layer_latency_ms.reserve(n);
  result.layer_energy_mj.reserve(n);
  for (const dnn::LayerInfo& info : arch.layers()) {
    const perf::LayerMeasurement m = model.predict(info.spec, info.input);
    result.layer_latency_ms.push_back(m.latency_ms);
    result.layer_energy_mj.push_back(m.energy_mj());
  }

  std::vector<double> cloud_suffix_ms(n + 1, 0.0);
  if (config.cloud_model != nullptr) {
    for (std::size_t i = n; i-- > 0;) {
      const dnn::LayerInfo& info = arch.layers()[i];
      cloud_suffix_ms[i] = cloud_suffix_ms[i + 1] +
                           config.cloud_model->predict(info.spec, info.input).latency_ms;
    }
  }

  {
    DeploymentOption o;
    o.kind = DeploymentKind::kAllCloud;
    o.tx_bytes = arch.input_bytes(config.sizes);
    o.edge_latency_ms = 0.0;
    o.edge_energy_mj = 0.0;
    o.cloud_latency_ms = cloud_suffix_ms[0];
    o.latency_ms = comm.comm_latency_ms(o.tx_bytes, tu_mbps) + o.cloud_latency_ms;
    o.energy_mj = comm.tx_energy_mj(o.tx_bytes, tu_mbps);
    result.options.push_back(o);
  }

  const std::uint64_t budget = config.edge_memory_budget_bytes;
  double latency_prefix = 0.0;
  double energy_prefix = 0.0;
  std::uint64_t weight_prefix = 0;
  const std::uint64_t input_bytes = arch.input_bytes(config.sizes);
  for (std::size_t i = 0; i < n; ++i) {
    latency_prefix += result.layer_latency_ms[i];
    energy_prefix += result.layer_energy_mj[i];
    weight_prefix += 4ULL * arch.layers()[i].params;
    const std::uint64_t out_bytes = arch.output_bytes(i, config.sizes);
    const bool viable = out_bytes < input_bytes;
    const bool fits = budget == 0 || weight_prefix <= budget;
    const bool last = i + 1 == n;
    if (last && fits) {
      DeploymentOption o;
      o.kind = DeploymentKind::kAllEdge;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.latency_ms = latency_prefix;
      o.energy_mj = energy_prefix;
      o.edge_weight_bytes = weight_prefix;
      result.options.push_back(o);
    } else if (!last && viable && fits) {
      DeploymentOption o;
      o.kind = DeploymentKind::kPartitioned;
      o.split_after = i;
      o.tx_bytes = out_bytes;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.cloud_latency_ms = cloud_suffix_ms[i + 1];
      o.latency_ms =
          latency_prefix + comm.comm_latency_ms(out_bytes, tu_mbps) + o.cloud_latency_ms;
      o.energy_mj = energy_prefix + comm.tx_energy_mj(out_bytes, tu_mbps);
      o.edge_weight_bytes = weight_prefix;
      result.options.push_back(o);
    }
  }

  result.best_latency_option = 0;
  result.best_energy_option = 0;
  for (std::size_t i = 1; i < result.options.size(); ++i) {
    if (result.options[i].latency_ms <
        result.options[result.best_latency_option].latency_ms) {
      result.best_latency_option = i;
    }
    if (result.options[i].energy_mj < result.options[result.best_energy_option].energy_mj) {
      result.best_energy_option = i;
    }
  }
  return result;
}

/// Exact (bitwise, via ==) field-for-field comparison of two evaluations.
void expect_identical(const DeploymentEvaluation& got, const DeploymentEvaluation& want) {
  ASSERT_EQ(got.options.size(), want.options.size());
  EXPECT_EQ(got.best_latency_option, want.best_latency_option);
  EXPECT_EQ(got.best_energy_option, want.best_energy_option);
  EXPECT_EQ(got.layer_latency_ms, want.layer_latency_ms);
  EXPECT_EQ(got.layer_energy_mj, want.layer_energy_mj);
  for (std::size_t i = 0; i < want.options.size(); ++i) {
    const DeploymentOption& g = got.options[i];
    const DeploymentOption& w = want.options[i];
    EXPECT_EQ(g.kind, w.kind) << "option " << i;
    EXPECT_EQ(g.split_after, w.split_after) << "option " << i;
    EXPECT_EQ(g.latency_ms, w.latency_ms) << "option " << i;
    EXPECT_EQ(g.energy_mj, w.energy_mj) << "option " << i;
    EXPECT_EQ(g.edge_latency_ms, w.edge_latency_ms) << "option " << i;
    EXPECT_EQ(g.edge_energy_mj, w.edge_energy_mj) << "option " << i;
    EXPECT_EQ(g.tx_bytes, w.tx_bytes) << "option " << i;
    EXPECT_EQ(g.edge_weight_bytes, w.edge_weight_bytes) << "option " << i;
    EXPECT_EQ(g.cloud_latency_ms, w.cloud_latency_ms) << "option " << i;
  }
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        cloud_sim_(perf::jetson_tx2_gpu()),
        cloud_oracle_(cloud_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        lte_(comm::WirelessTechnology::kLte, 25.0) {}

  /// Log-spaced throughput sweep over [0.05, 500] Mbps.
  static std::vector<double> tu_sweep() {
    std::vector<double> tus;
    for (double tu = 0.05; tu < 500.0; tu *= 2.3) tus.push_back(tu);
    return tus;
  }

  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  perf::DeviceSimulator cloud_sim_;
  perf::SimulatorOracle cloud_oracle_;
  comm::CommModel wifi_;
  comm::CommModel lte_;
};

TEST_F(PlanTest, PriceIsBitIdenticalToLegacyOnRandomArchitectures) {
  const SearchSpace space;
  std::mt19937_64 rng(2024);
  const std::uint64_t mb = 1ULL << 20;
  const std::uint64_t budgets[] = {0, 50 * mb, 16 * mb, 64 * 1024};
  const perf::LayerPerformanceModel* clouds[] = {nullptr, &cloud_oracle_};

  for (int trial = 0; trial < 8; ++trial) {
    const dnn::Architecture arch = space.decode(space.random(rng));
    // Cycle the grid so every (budget, cloud, comm) cell is exercised
    // without an 8x4x2x2 blowup of predictor work.
    const EvaluatorConfig config{{}, budgets[trial % 4], clouds[trial % 2]};
    const comm::CommModel& comm = trial % 3 == 0 ? lte_ : wifi_;
    const DeploymentEvaluator evaluator(oracle_, comm, config);
    const DeploymentPlan plan = evaluator.compile(arch);
    for (double tu : tu_sweep()) {
      const DeploymentEvaluation want = legacy_evaluate(oracle_, comm, config, arch, tu);
      expect_identical(plan.price(tu), want);
      // The thin evaluate() wrapper must agree too.
      expect_identical(evaluator.evaluate(arch, tu), want);
    }
  }
}

TEST_F(PlanTest, PlanCurvesMatchRuntimeCurveDerivation) {
  const DeploymentEvaluator evaluator(oracle_, lte_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  ASSERT_EQ(plan.latency_curves().size(), plan.num_options());
  ASSERT_EQ(plan.energy_curves().size(), plan.num_options());
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    const DeploymentOption& o = plan.options()[i];
    const runtime::CostCurve lat = runtime::latency_curve(o, lte_);
    const runtime::CostCurve ene = runtime::energy_curve(o, lte_);
    EXPECT_EQ(plan.latency_curves()[i].constant, lat.constant) << "option " << i;
    EXPECT_EQ(plan.latency_curves()[i].per_inverse_tu, lat.per_inverse_tu) << "option " << i;
    EXPECT_EQ(plan.energy_curves()[i].constant, ene.constant) << "option " << i;
    EXPECT_EQ(plan.energy_curves()[i].per_inverse_tu, ene.per_inverse_tu) << "option " << i;
  }
}

TEST_F(PlanTest, PriceIntoReusesStorageAndMatchesPrice) {
  const DeploymentEvaluator evaluator(oracle_, wifi_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  DeploymentEvaluation out;
  plan.price_into(3.0, out);
  const DeploymentOption* data = out.options.data();
  const std::size_t capacity = out.options.capacity();
  for (double tu : tu_sweep()) {
    plan.price_into(tu, out);
    expect_identical(out, plan.price(tu));
    // Hot path: no reallocation once the vectors have grown.
    EXPECT_EQ(out.options.data(), data);
    EXPECT_EQ(out.options.capacity(), capacity);
  }
}

TEST_F(PlanTest, ObjectivesAtAgreesWithFullPricing) {
  const DeploymentEvaluator evaluator(oracle_, wifi_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  const std::vector<double> tus = tu_sweep();
  const std::vector<PricedObjectives> batch = plan.price_batch(tus);
  ASSERT_EQ(batch.size(), tus.size());
  for (std::size_t i = 0; i < tus.size(); ++i) {
    const DeploymentEvaluation full = plan.price(tus[i]);
    EXPECT_EQ(batch[i].best_latency_ms, full.best_latency_ms());
    EXPECT_EQ(batch[i].best_energy_mj, full.best_energy_mj());
    EXPECT_EQ(batch[i].best_latency_option, full.best_latency_option);
    EXPECT_EQ(batch[i].best_energy_option, full.best_energy_option);
    const PricedObjectives single = plan.objectives_at(tus[i]);
    EXPECT_EQ(single.best_latency_ms, batch[i].best_latency_ms);
    EXPECT_EQ(single.best_energy_mj, batch[i].best_energy_mj);
  }
}

TEST_F(PlanTest, OptionCostHelpersMatchPricedFields) {
  const DeploymentEvaluator evaluator(oracle_, lte_);
  const DeploymentPlan plan = evaluator.compile(dnn::vgg16());
  for (double tu : {0.3, 4.0, 90.0}) {
    const DeploymentEvaluation full = plan.price(tu);
    for (std::size_t i = 0; i < plan.num_options(); ++i) {
      EXPECT_EQ(plan.option_latency_ms(i, tu), full.options[i].latency_ms);
      EXPECT_EQ(plan.option_energy_mj(i, tu), full.options[i].energy_mj);
    }
  }
}

TEST_F(PlanTest, Validation) {
  const DeploymentEvaluator evaluator(oracle_, wifi_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  EXPECT_THROW(plan.price(0.0), std::invalid_argument);
  EXPECT_THROW(plan.price(-2.0), std::invalid_argument);
  EXPECT_THROW(plan.objectives_at(0.0), std::invalid_argument);
  const DeploymentPlan empty;
  EXPECT_THROW(empty.price(3.0), std::logic_error);
  EXPECT_THROW(empty.objectives_at(3.0), std::logic_error);
}

TEST_F(PlanTest, PriceBatchValidationMatchesScalarPath) {
  // The batched sweep must reject exactly what a loop of objectives_at
  // calls would reject, in the same order: throughput first, empty plan
  // second. An empty sweep is a no-op, even on an empty plan.
  const DeploymentEvaluator evaluator(oracle_, wifi_);
  const DeploymentPlan plan = evaluator.compile(dnn::alexnet());
  EXPECT_TRUE(plan.price_batch({}).empty());
  EXPECT_THROW(plan.price_batch({0.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(plan.price_batch({3.0, -1.0}), std::invalid_argument);
  const DeploymentPlan empty;
  EXPECT_TRUE(empty.price_batch({}).empty());
  EXPECT_THROW(empty.price_batch({3.0}), std::logic_error);
  EXPECT_THROW(empty.price_batch({0.0}), std::invalid_argument);  // tu checked first
}

TEST_F(PlanTest, PlanOutlivesItsEvaluator) {
  // Plans are self-contained (they copy the comm model): pricing after the
  // evaluator is gone must still work — the NAS cache relies on this.
  DeploymentPlan plan;
  DeploymentEvaluation want;
  {
    const DeploymentEvaluator evaluator(oracle_, lte_);
    plan = evaluator.compile(dnn::alexnet());
    want = evaluator.evaluate(dnn::alexnet(), 7.0);
  }
  expect_identical(plan.price(7.0), want);
}

}  // namespace
}  // namespace lens::core
