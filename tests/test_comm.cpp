// Tests for wireless power models, communication cost math, and traces.

#include <gtest/gtest.h>

#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "comm/wireless.hpp"

namespace lens::comm {
namespace {

TEST(PowerModel, PublishedConstants) {
  const RadioPowerModel wifi = power_model_for(WirelessTechnology::kWifi);
  EXPECT_DOUBLE_EQ(wifi.alpha_mw_per_mbps, 283.17);
  EXPECT_DOUBLE_EQ(wifi.beta_mw, 132.86);
  const RadioPowerModel lte = power_model_for(WirelessTechnology::kLte);
  EXPECT_DOUBLE_EQ(lte.alpha_mw_per_mbps, 438.39);
  EXPECT_DOUBLE_EQ(lte.beta_mw, 1288.04);
  const RadioPowerModel g3 = power_model_for(WirelessTechnology::k3G);
  EXPECT_DOUBLE_EQ(g3.alpha_mw_per_mbps, 868.98);
  EXPECT_DOUBLE_EQ(g3.beta_mw, 817.88);
}

TEST(PowerModel, LinearInThroughput) {
  const RadioPowerModel lte = power_model_for(WirelessTechnology::kLte);
  EXPECT_NEAR(lte.transmit_power_mw(1.0), 438.39 + 1288.04, 1e-9);
  EXPECT_NEAR(lte.transmit_power_mw(10.0), 4383.9 + 1288.04, 1e-9);
  EXPECT_THROW(lte.transmit_power_mw(0.0), std::invalid_argument);
  EXPECT_THROW(lte.transmit_power_mw(-1.0), std::invalid_argument);
}

TEST(PowerModel, LteCostlierThanWifiAtSameThroughput) {
  const RadioPowerModel wifi = power_model_for(WirelessTechnology::kWifi);
  const RadioPowerModel lte = power_model_for(WirelessTechnology::kLte);
  for (double tu : {0.5, 3.0, 16.1, 50.0}) {
    EXPECT_GT(lte.transmit_power_mw(tu), wifi.transmit_power_mw(tu));
  }
}

TEST(TechnologyName, AllValues) {
  EXPECT_EQ(technology_name(WirelessTechnology::kWifi), "WiFi");
  EXPECT_EQ(technology_name(WirelessTechnology::kLte), "LTE");
  EXPECT_EQ(technology_name(WirelessTechnology::k3G), "3G");
}

TEST(CommModel, TxLatencyMatchesHandComputation) {
  const CommModel model(WirelessTechnology::kWifi, 20.0);
  // 147 kB = 150528 B = 1204224 bits at 3 Mbps -> 401.408 ms.
  EXPECT_NEAR(model.tx_latency_ms(150528, 3.0), 401.408, 1e-9);
  EXPECT_NEAR(model.comm_latency_ms(150528, 3.0), 421.408, 1e-9);
}

TEST(CommModel, LatencyScalesInverselyWithThroughput) {
  const CommModel model(WirelessTechnology::kLte, 0.0);
  const double slow = model.tx_latency_ms(1000, 1.0);
  const double fast = model.tx_latency_ms(1000, 10.0);
  EXPECT_NEAR(slow / fast, 10.0, 1e-9);
}

TEST(CommModel, EnergyIsPowerTimesTime) {
  const CommModel model(WirelessTechnology::kWifi, 20.0);
  const double tu = 5.0;
  const std::uint64_t bytes = 36864;
  const double expected_mw = 283.17 * tu + 132.86;
  const double expected_s = static_cast<double>(bytes) * 8.0 / (tu * 1e6);
  EXPECT_NEAR(model.tx_energy_mj(bytes, tu), expected_mw * expected_s, 1e-9);
}

TEST(CommModel, ZeroBytesCostOnlyRoundTrip) {
  const CommModel model(WirelessTechnology::kWifi, 15.0);
  EXPECT_DOUBLE_EQ(model.tx_latency_ms(0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(model.comm_latency_ms(0, 5.0), 15.0);
  EXPECT_DOUBLE_EQ(model.tx_energy_mj(0, 5.0), 0.0);
}

TEST(CommModel, Validation) {
  EXPECT_THROW(CommModel(WirelessTechnology::kWifi, -1.0), std::invalid_argument);
  const CommModel model(WirelessTechnology::kWifi, 10.0);
  EXPECT_THROW(model.tx_latency_ms(100, 0.0), std::invalid_argument);
  EXPECT_THROW(model.tx_energy_mj(100, -2.0), std::invalid_argument);
}

TEST(CommModel, EnergyNotMonotoneInThroughput) {
  // E(t) = alpha*Mb + beta*Mb/t: strictly decreasing in t, so faster links
  // always cost less energy for the same payload.
  const CommModel model(WirelessTechnology::kLte, 0.0);
  EXPECT_GT(model.tx_energy_mj(150528, 1.0), model.tx_energy_mj(150528, 2.0));
  EXPECT_GT(model.tx_energy_mj(150528, 2.0), model.tx_energy_mj(150528, 20.0));
}

TEST(Trace, StatsAndValidation) {
  ThroughputTrace trace;
  trace.samples_mbps = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(trace.mean_mbps(), 4.0);
  EXPECT_DOUBLE_EQ(trace.min_mbps(), 2.0);
  EXPECT_DOUBLE_EQ(trace.max_mbps(), 6.0);
  ThroughputTrace empty;
  EXPECT_THROW(empty.mean_mbps(), std::logic_error);
}

TEST(TraceGenerator, ValidatesConfig) {
  TraceGeneratorConfig bad;
  bad.mean_mbps = -1.0;
  EXPECT_THROW(TraceGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.correlation = 1.0;
  EXPECT_THROW(TraceGenerator{bad}, std::invalid_argument);
  TraceGenerator ok;
  EXPECT_THROW(ok.generate(0), std::invalid_argument);
}

TEST(TraceGenerator, ProducesPositiveSamplesNearMean) {
  TraceGeneratorConfig config;
  config.mean_mbps = 12.0;
  config.seed = 9;
  TraceGenerator gen(config);
  const ThroughputTrace trace = gen.generate(2000, 300.0);
  EXPECT_EQ(trace.size(), 2000u);
  EXPECT_GE(trace.min_mbps(), config.floor_mbps);
  // Log-normal with mu = log(12): median ~12, mean slightly above.
  EXPECT_GT(trace.mean_mbps(), 8.0);
  EXPECT_LT(trace.mean_mbps(), 18.0);
}

TEST(TraceGenerator, Deterministic) {
  TraceGeneratorConfig config;
  config.seed = 33;
  const ThroughputTrace a = TraceGenerator(config).generate(40);
  const ThroughputTrace b = TraceGenerator(config).generate(40);
  EXPECT_EQ(a.samples_mbps, b.samples_mbps);
}

TEST(TraceGenerator, CorrelationProducesSmootherTraces) {
  // Lag-1 autocovariance should be clearly higher with correlation on.
  auto lag1 = [](const ThroughputTrace& t) {
    double mean = t.mean_mbps();
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      num += (t.samples_mbps[i] - mean) * (t.samples_mbps[i + 1] - mean);
    }
    for (double v : t.samples_mbps) den += (v - mean) * (v - mean);
    return num / den;
  };
  TraceGeneratorConfig smooth;
  smooth.correlation = 0.9;
  smooth.seed = 4;
  TraceGeneratorConfig rough;
  rough.correlation = 0.0;
  rough.seed = 4;
  EXPECT_GT(lag1(TraceGenerator(smooth).generate(4000)),
            lag1(TraceGenerator(rough).generate(4000)) + 0.3);
}

// Parameterized: the power model scales correctly across technologies.
class TechSweepTest : public ::testing::TestWithParam<WirelessTechnology> {};

TEST_P(TechSweepTest, EnergyScalesLinearlyWithBytes) {
  const CommModel model(GetParam(), 10.0);
  const double e1 = model.tx_energy_mj(1000, 5.0);
  const double e2 = model.tx_energy_mj(2000, 5.0);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Techs, TechSweepTest,
                         ::testing::Values(WirelessTechnology::kWifi,
                                           WirelessTechnology::kLte,
                                           WirelessTechnology::k3G));

}  // namespace
}  // namespace lens::comm
