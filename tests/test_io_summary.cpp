// Tests for trace persistence/statistics and architecture summaries.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "comm/trace_io.hpp"
#include "dnn/presets.hpp"
#include "io/io.hpp"
#include "dnn/summary.hpp"

namespace lens {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Percentile, KnownValues) {
  comm::ThroughputTrace trace;
  trace.samples_mbps = {4.0, 1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(comm::percentile_mbps(trace, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(comm::percentile_mbps(trace, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(comm::percentile_mbps(trace, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(comm::percentile_mbps(trace, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(comm::percentile_mbps(trace, 12.5), 1.5);  // interpolated
}

TEST(Percentile, Validation) {
  comm::ThroughputTrace empty;
  EXPECT_THROW(comm::percentile_mbps(empty, 50.0), std::invalid_argument);
  comm::ThroughputTrace one;
  one.samples_mbps = {1.0};
  EXPECT_THROW(comm::percentile_mbps(one, -1.0), std::invalid_argument);
  EXPECT_THROW(comm::percentile_mbps(one, 101.0), std::invalid_argument);
}

TEST(TraceCsv, RoundTrip) {
  comm::TraceGenerator generator({.mean_mbps = 7.0, .seed = 3});
  const comm::ThroughputTrace original = generator.generate(25, 120.0);
  const std::string path = temp_path("trace_roundtrip.csv");
  comm::save_trace_csv(original, path);
  const comm::ThroughputTrace loaded = comm::load_trace_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.interval_s, 120.0);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded.samples_mbps[i], original.samples_mbps[i], 1e-4);
  }
  std::remove(path.c_str());
}

TEST(TraceCsv, LoadRejectsGarbage) {
  const std::string path = temp_path("trace_bad.csv");
  // No integrity footer: rejected by the checksum gate before parsing.
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(comm::load_trace_csv(path), std::runtime_error);
  // Valid footer but garbage payload: rejected by the parser.
  io::atomic_write_checked(path, [](std::ostream& out) { out << "not a trace\n"; });
  EXPECT_THROW(comm::load_trace_csv(path), std::invalid_argument);
  EXPECT_THROW(comm::load_trace_csv(temp_path("does_not_exist.csv")), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Summary, ContainsStructureAndTotals) {
  const dnn::Architecture alexnet = dnn::alexnet();
  const std::string text = dnn::summary(alexnet);
  EXPECT_NE(text.find("conv1"), std::string::npos);
  EXPECT_NE(text.find("pool5"), std::string::npos);
  EXPECT_NE(text.find("fc8"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
  // pool5 row is marked as a viable split; conv1 is not.
  const std::size_t pool5 = text.find("pool5");
  const std::size_t pool5_eol = text.find('\n', pool5);
  EXPECT_NE(text.substr(pool5, pool5_eol - pool5).find("yes"), std::string::npos);
}

TEST(Summary, SignatureIsCompactAndOrdered) {
  const dnn::Architecture alexnet = dnn::alexnet();
  const std::string sig = dnn::signature(alexnet);
  EXPECT_EQ(sig.rfind("conv11x11x96", 0), 0u);  // starts with conv1
  EXPECT_NE(sig.find("fc4096"), std::string::npos);
  EXPECT_NE(sig.find("fc1000"), std::string::npos);
  // Exactly 3 pools.
  std::size_t pools = 0;
  for (std::size_t pos = sig.find("pool"); pos != std::string::npos;
       pos = sig.find("pool", pos + 1)) {
    ++pools;
  }
  EXPECT_EQ(pools, 3u);
}

}  // namespace
}  // namespace lens
