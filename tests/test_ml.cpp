// Tests for ridge regression, feature scaling, and regression metrics.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "ml/features.hpp"
#include "ml/metrics.hpp"
#include "ml/ridge.hpp"

namespace lens::ml {
namespace {

TEST(Ridge, RecoversExactLinearModel) {
  RidgeConfig config;
  config.lambda = 0.0;
  RidgeRegression model(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double a = 0.0; a < 3.0; a += 0.5) {
    for (double b = -1.0; b < 1.0; b += 0.5) {
      x.push_back({a, b});
      y.push_back(2.0 * a - 3.0 * b + 1.0);
    }
  }
  model.fit(x, y);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -3.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 1.0, 1e-6);
  EXPECT_NEAR(model.predict({1.5, 0.25}), 2.0 * 1.5 - 3.0 * 0.25 + 1.0, 1e-6);
}

TEST(Ridge, RegularizationShrinksWeights) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::mt19937_64 rng(7);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (int i = 0; i < 50; ++i) {
    const double a = gauss(rng);
    x.push_back({a});
    y.push_back(5.0 * a + 0.1 * gauss(rng));
  }
  RidgeRegression weak{RidgeConfig{.lambda = 1e-6}};
  RidgeRegression strong{RidgeConfig{.lambda = 100.0}};
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_LT(std::abs(strong.weights()[0]), std::abs(weak.weights()[0]));
}

TEST(Ridge, InterceptIsNotPenalized) {
  // Constant-shifted data: heavy lambda must not shrink the intercept.
  RidgeRegression model{RidgeConfig{.lambda = 1000.0}};
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i % 3) * 1e-3});
    y.push_back(42.0);
  }
  model.fit(x, y);
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), 42.0, 1e-3);
}

TEST(Ridge, InputValidation) {
  EXPECT_THROW(RidgeRegression(RidgeConfig{.lambda = -1.0}), std::invalid_argument);
  RidgeRegression model;
  EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), std::logic_error);  // unfitted
  model.fit({{1.0}, {2.0}}, {1.0, 2.0});
  EXPECT_THROW(model.predict({1.0, 2.0}), std::invalid_argument);
}

TEST(Ridge, RankDeficientDesignStillSolves) {
  // Duplicate columns: the jitter keeps the normal equations solvable.
  RidgeRegression model{RidgeConfig{.lambda = 1e-3}};
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    const double a = static_cast<double>(i);
    x.push_back({a, a});
    y.push_back(4.0 * a);
  }
  EXPECT_NO_THROW(model.fit(x, y));
  EXPECT_NEAR(model.predict({5.0, 5.0}), 20.0, 0.1);
}

TEST(FeatureScaler, StandardizesColumns) {
  FeatureScaler scaler;
  scaler.fit({{0.0, 10.0}, {2.0, 30.0}, {4.0, 50.0}});
  const auto t = scaler.transform({2.0, 30.0});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);
  const auto hi = scaler.transform({4.0, 50.0});
  EXPECT_GT(hi[0], 0.9);
  EXPECT_GT(hi[1], 0.9);
}

TEST(FeatureScaler, ConstantColumnPassesThrough) {
  FeatureScaler scaler;
  scaler.fit({{5.0}, {5.0}, {5.0}});
  EXPECT_NEAR(scaler.transform(std::vector<double>{5.0})[0], 0.0, 1e-12);
  EXPECT_NEAR(scaler.transform(std::vector<double>{6.0})[0], 1.0, 1e-12);  // unit std fallback
}

TEST(FeatureScaler, Validation) {
  FeatureScaler scaler;
  EXPECT_THROW(scaler.fit({}), std::invalid_argument);
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::logic_error);
  scaler.fit({{1.0, 2.0}});
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Features, Log1pAndPairwise) {
  EXPECT_DOUBLE_EQ(log1p_feature(0.0), 0.0);
  EXPECT_NEAR(log1p_feature(std::exp(1.0) - 1.0), 1.0, 1e-12);
  EXPECT_THROW(log1p_feature(-0.5), std::invalid_argument);

  const auto expanded = with_pairwise_products({2.0, 3.0});
  // {2, 3, 2*2, 2*3, 3*3}
  ASSERT_EQ(expanded.size(), 5u);
  EXPECT_DOUBLE_EQ(expanded[2], 4.0);
  EXPECT_DOUBLE_EQ(expanded[3], 6.0);
  EXPECT_DOUBLE_EQ(expanded[4], 9.0);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  const std::vector<double> mean_pred = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r2_score(y, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, R2NegativeForBadFit) {
  EXPECT_LT(r2_score({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}), 0.0);
}

TEST(Metrics, RmseAndMape) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
  EXPECT_NEAR(mape({100.0, 200.0}, {110.0, 180.0}), 10.0, 1e-9);
  EXPECT_THROW(mape({0.0}, {1.0}), std::invalid_argument);  // all below eps
}

TEST(Metrics, SizeValidation) {
  EXPECT_THROW(r2_score({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(rmse({}, {}), std::invalid_argument);
}

TEST(Spearman, PerfectAndInverseOrders) {
  EXPECT_DOUBLE_EQ(spearman_correlation({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
  EXPECT_DOUBLE_EQ(spearman_correlation({1.0, 2.0, 3.0}, {30.0, 20.0, 10.0}), -1.0);
  // Monotone nonlinear transform preserves rank correlation exactly.
  EXPECT_DOUBLE_EQ(spearman_correlation({1.0, 2.0, 3.0, 4.0}, {1.0, 8.0, 27.0, 64.0}), 1.0);
}

TEST(Spearman, HandlesTies) {
  // Ties get average ranks; correlation stays defined and bounded.
  const double rho = spearman_correlation({1.0, 1.0, 2.0, 3.0}, {5.0, 6.0, 7.0, 8.0});
  EXPECT_GT(rho, 0.8);
  EXPECT_LE(rho, 1.0);
  // A constant vector carries no ranking signal.
  EXPECT_DOUBLE_EQ(spearman_correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Spearman, UncorrelatedNearZero) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = gauss(rng);
    b[i] = gauss(rng);
  }
  EXPECT_LT(std::abs(spearman_correlation(a, b)), 0.15);
}

TEST(Spearman, Validation) {
  EXPECT_THROW(spearman_correlation({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(spearman_correlation({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(Dataset, SplitPreservesAllSamples) {
  Dataset data;
  for (int i = 0; i < 100; ++i) data.add({static_cast<double>(i)}, i * 2.0);
  std::mt19937_64 rng(5);
  auto [train, test] = train_test_split(data, 0.25, rng);
  EXPECT_EQ(train.size() + test.size(), 100u);
  EXPECT_EQ(test.size(), 25u);
  // No sample duplicated: targets are unique, so the multiset union matches.
  std::vector<double> all = train.y;
  all.insert(all.end(), test.y.begin(), test.y.end());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)], i * 2.0);
}

TEST(Dataset, SplitValidation) {
  Dataset data;
  data.add({1.0}, 1.0);
  std::mt19937_64 rng(1);
  EXPECT_THROW(train_test_split(data, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(data, 1.0, rng), std::invalid_argument);
}

// Property: ridge generalizes on noisy linear data across dimensions.
class RidgeGeneralizationTest : public ::testing::TestWithParam<int> {};

TEST_P(RidgeGeneralizationTest, HighR2OnHeldOut) {
  const int dim = GetParam();
  std::mt19937_64 rng(static_cast<unsigned>(dim) * 31 + 1);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> true_weights(static_cast<std::size_t>(dim));
  // Guarantee signal: |w| >= 0.5 so the 0.05-sigma noise stays negligible.
  for (double& w : true_weights) {
    const double g = gauss(rng);
    w = (g < 0.0 ? -1.0 : 1.0) * (0.5 + std::abs(g));
  }

  Dataset data;
  for (int i = 0; i < 60 * dim; ++i) {
    std::vector<double> features(static_cast<std::size_t>(dim));
    double target = 0.5;
    for (int j = 0; j < dim; ++j) {
      features[static_cast<std::size_t>(j)] = gauss(rng);
      target += true_weights[static_cast<std::size_t>(j)] * features[static_cast<std::size_t>(j)];
    }
    target += 0.05 * gauss(rng);
    data.add(std::move(features), target);
  }
  auto [train, test] = train_test_split(data, 0.3, rng);
  RidgeRegression model{RidgeConfig{.lambda = 1e-4}};
  model.fit(train.x, train.y);
  EXPECT_GT(r2_score(test.y, model.predict(test.x)), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Dims, RidgeGeneralizationTest, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace lens::ml
