// Tests for the paper's Fig. 4 search space: encoding, decoding, sampling,
// the >=4-pools constraint, and normalization round-trips.

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "core/search_space.hpp"

namespace lens::core {
namespace {

TEST(SearchSpace, DimensionLayoutMatchesPaper) {
  const SearchSpace space;
  // 5 blocks * (depth, kernel, filters, pool) + fc1 + fc2? + fc2_units.
  EXPECT_EQ(space.num_dimensions(), 23u);
  const auto& cards = space.cardinalities();
  EXPECT_EQ(cards[0], 3);   // depths {1,2,3}
  EXPECT_EQ(cards[1], 3);   // kernels {3,5,7}
  EXPECT_EQ(cards[2], 6);   // filters
  EXPECT_EQ(cards[3], 2);   // pool?
  EXPECT_EQ(cards[20], 6);  // fc1 units
  EXPECT_EQ(cards[21], 2);  // fc2 present?
  EXPECT_EQ(cards[22], 6);  // fc2 units
  EXPECT_GT(space.log10_size(), 9.0);  // a space worth searching
}

TEST(SearchSpace, ConfigValidation) {
  SearchSpaceConfig config;
  config.depths.clear();
  EXPECT_THROW(SearchSpace{config}, std::invalid_argument);
  config = {};
  config.min_pools = 6;  // more than blocks
  EXPECT_THROW(SearchSpace{config}, std::invalid_argument);
}

TEST(SearchSpace, RandomSamplesAreValidAndDiverse) {
  const SearchSpace space;
  std::mt19937_64 rng(3);
  std::set<Genotype> seen;
  for (int i = 0; i < 100; ++i) {
    const Genotype g = space.random(rng);
    EXPECT_TRUE(space.is_valid(g));
    EXPECT_GE(space.count_pools(g), 4);
    seen.insert(g);
  }
  EXPECT_GT(seen.size(), 95u);  // collisions essentially impossible
}

TEST(SearchSpace, ValidityChecks) {
  const SearchSpace space;
  Genotype g(space.num_dimensions(), 0);
  // No pools at all -> invalid.
  EXPECT_FALSE(space.is_valid(g));
  // Exactly 4 pools -> valid.
  for (int b = 0; b < 4; ++b) g[static_cast<std::size_t>(4 * b + 3)] = 1;
  EXPECT_TRUE(space.is_valid(g));
  // Out-of-range index -> invalid.
  Genotype bad = g;
  bad[0] = 3;
  EXPECT_FALSE(space.is_valid(bad));
  // Wrong dimensionality -> invalid.
  EXPECT_FALSE(space.is_valid(Genotype(5, 0)));
  EXPECT_THROW(space.count_pools(Genotype(5, 0)), std::invalid_argument);
}

TEST(SearchSpace, DecodeBuildsExpectedStack) {
  const SearchSpace space;
  Genotype g(space.num_dimensions(), 0);
  for (int b = 0; b < 5; ++b) g[static_cast<std::size_t>(4 * b + 3)] = 1;  // all pools
  g[0] = 2;   // block 1 depth = 3
  g[1] = 1;   // block 1 kernel = 5
  g[2] = 5;   // block 1 filters = 256
  g[21] = 1;  // fc2 present
  const dnn::Architecture arch = space.decode(g);
  // Block 1: three convs (256 filters, k5) then pool.
  EXPECT_EQ(arch.layers()[0].spec.kind, dnn::LayerKind::kConv);
  EXPECT_EQ(arch.layers()[0].spec.filters, 256);
  EXPECT_EQ(arch.layers()[0].spec.kernel, 5);
  EXPECT_EQ(arch.layers()[2].spec.filters, 256);
  EXPECT_EQ(arch.layers()[3].spec.kind, dnn::LayerKind::kMaxPool);
  // Trailing: fc1, fc2, classifier.
  const auto& layers = arch.layers();
  EXPECT_EQ(layers[layers.size() - 3].spec.units, 256);  // fc1 index 0 -> 256
  EXPECT_EQ(layers[layers.size() - 2].spec.units, 256);  // fc2 index 0 -> 256
  EXPECT_EQ(layers.back().spec.units, 10);               // classifier
  EXPECT_EQ(layers.back().spec.activation, dnn::Activation::kSoftmax);
  // All convs batch-normalized (paper).
  for (const auto& info : layers) {
    if (info.spec.kind == dnn::LayerKind::kConv) {
      EXPECT_TRUE(info.spec.batch_norm);
    }
  }
}

TEST(SearchSpace, DecodeWithoutFc2) {
  const SearchSpace space;
  Genotype g(space.num_dimensions(), 0);
  for (int b = 0; b < 4; ++b) g[static_cast<std::size_t>(4 * b + 3)] = 1;
  g[21] = 0;  // fc2 absent
  const dnn::Architecture arch = space.decode(g);
  EXPECT_EQ(arch.count_kind(dnn::LayerKind::kDense), 2u);  // fc1 + classifier
  EXPECT_EQ(arch.count_kind(dnn::LayerKind::kMaxPool), 4u);
}

TEST(SearchSpace, DecodeRejectsInvalid) {
  const SearchSpace space;
  EXPECT_THROW(space.decode(Genotype(space.num_dimensions(), 0)), std::invalid_argument);
}

TEST(SearchSpace, NormalizationRoundTrip) {
  const SearchSpace space;
  std::mt19937_64 rng(17);
  for (int i = 0; i < 50; ++i) {
    const Genotype g = space.random(rng);
    const std::vector<double> x = space.to_normalized(g);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    EXPECT_EQ(space.from_normalized(x), g);
  }
}

TEST(SearchSpace, FromNormalizedClampsOutOfRange) {
  const SearchSpace space;
  std::vector<double> x(space.num_dimensions(), 2.0);  // above 1
  const Genotype g = space.from_normalized(x);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], space.cardinalities()[i] - 1);
  }
  EXPECT_THROW(space.from_normalized({0.5}), std::invalid_argument);
}

TEST(SearchSpace, ArchitectureNamesAreStable) {
  const SearchSpace space;
  std::mt19937_64 rng(9);
  const Genotype g = space.random(rng);
  EXPECT_EQ(space.architecture_name(g), space.architecture_name(g));
  const Genotype h = space.random(rng);
  EXPECT_NE(space.architecture_name(g), space.architecture_name(h));
  EXPECT_EQ(space.architecture_name(g).substr(0, 5), "arch-");
}

TEST(SearchSpace, CustomSmallSpaceWorks) {
  SearchSpaceConfig config;
  config.input = {16, 16, 3};
  config.num_blocks = 2;
  config.filters = {8, 16};
  config.fc_units = {32, 64};
  config.min_pools = 1;
  const SearchSpace space(config);
  std::mt19937_64 rng(2);
  const Genotype g = space.random(rng);
  const dnn::Architecture arch = space.decode(g);
  EXPECT_EQ(arch.input_shape().height, 16);
  EXPECT_EQ(arch.layers().back().spec.units, 10);
}

// Property sweep: decoded structure always matches the genotype.
class PoolCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PoolCountSweep, DecodedStructureMatchesGenotype) {
  const SearchSpace space;
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    EXPECT_EQ(static_cast<int>(arch.count_kind(dnn::LayerKind::kMaxPool)),
              space.count_pools(g));
    int expected_convs = 0;
    for (int b = 0; b < 5; ++b) {
      expected_convs += space.config().depths[static_cast<std::size_t>(
          g[static_cast<std::size_t>(4 * b)])];
    }
    EXPECT_EQ(static_cast<int>(arch.count_kind(dnn::LayerKind::kConv)), expected_convs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolCountSweep, ::testing::Values(1u, 7u, 42u, 99u));

}  // namespace
}  // namespace lens::core
