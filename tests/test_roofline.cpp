// Tests for the piecewise-max (roofline) latency regressor.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "ml/roofline.hpp"

namespace lens::ml {
namespace {

/// Synthetic roofline ground truth with multiplicative jitter.
struct RooflineWorld {
  double compute_rate;  // FLOP per ms
  double memory_rate;   // bytes per ms
  double overhead_ms;

  double latency(double flops, double bytes, double jitter = 1.0) const {
    return (std::max(flops / compute_rate, bytes / memory_rate) + overhead_ms) * jitter;
  }
};

struct SyntheticData {
  std::vector<double> flops;
  std::vector<double> bytes;
  std::vector<double> latency;
};

SyntheticData make_data(const RooflineWorld& world, std::size_t n, double noise,
                        unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> log_flops(5.0, 10.0);   // 1e5..1e10
  std::uniform_real_distribution<double> log_bytes(3.0, 8.5);    // 1e3..3e8
  std::uniform_real_distribution<double> jitter(1.0 - noise, 1.0 + noise);
  SyntheticData data;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = std::pow(10.0, log_flops(rng));
    const double b = std::pow(10.0, log_bytes(rng));
    data.flops.push_back(f);
    data.bytes.push_back(b);
    data.latency.push_back(world.latency(f, b, jitter(rng)));
  }
  return data;
}

TEST(Roofline, RecoversExactParametersWithoutNoise) {
  const RooflineWorld world{140e6, 25e6, 0.1};
  const SyntheticData data = make_data(world, 400, 0.0, 1);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  EXPECT_NEAR(model.compute_rate(), world.compute_rate, 0.02 * world.compute_rate);
  EXPECT_NEAR(model.memory_rate(), world.memory_rate, 0.02 * world.memory_rate);
  EXPECT_NEAR(model.overhead(), world.overhead_ms, 0.02);
}

TEST(Roofline, NearPerfectR2UnderJitter) {
  const RooflineWorld world{90e6, 12e6, 0.05};
  const SyntheticData data = make_data(world, 500, 0.03, 2);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  std::vector<double> pred;
  for (std::size_t i = 0; i < data.latency.size(); ++i) {
    pred.push_back(model.predict(data.flops[i], data.bytes[i]));
  }
  EXPECT_GT(r2_score(data.latency, pred), 0.98);
  EXPECT_LT(mape(data.latency, pred), 5.0);
}

TEST(Roofline, ClassifiesBoundednessCorrectly) {
  const RooflineWorld world{100e6, 10e6, 0.0};
  const SyntheticData data = make_data(world, 400, 0.0, 3);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  // Compute-bound sample: enormous flops, tiny bytes.
  EXPECT_TRUE(model.compute_bound(1e10, 1e3));
  // Memory-bound: tiny flops, enormous bytes.
  EXPECT_FALSE(model.compute_bound(1e5, 1e8));
}

TEST(Roofline, SingleBranchDataStillFits) {
  // All samples memory-bound (pool-like): compute branch unidentifiable but
  // predictions must stay accurate.
  const RooflineWorld world{1e12, 20e6, 0.1};  // compute never binds
  const SyntheticData data = make_data(world, 300, 0.02, 4);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  std::vector<double> pred;
  for (std::size_t i = 0; i < data.latency.size(); ++i) {
    pred.push_back(model.predict(data.flops[i], data.bytes[i]));
  }
  EXPECT_GT(r2_score(data.latency, pred), 0.98);
}

TEST(Roofline, Validation) {
  RooflineRegression model;
  EXPECT_THROW(model.fit({}, {}, {}), std::invalid_argument);
  EXPECT_THROW(model.fit({1.0}, {1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(model.fit({1.0}, {1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(model.fit({0.0}, {1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(model.predict(1.0, 1.0), std::logic_error);
  EXPECT_THROW(model.compute_bound(1.0, 1.0), std::logic_error);
  EXPECT_THROW(RooflineRegression({.max_iterations = 0}), std::invalid_argument);
}

TEST(Roofline, PredictionIsMonotoneInWork) {
  const RooflineWorld world{100e6, 10e6, 0.05};
  const SyntheticData data = make_data(world, 300, 0.02, 5);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  EXPECT_LT(model.predict(1e7, 1e5), model.predict(1e9, 1e5));
  EXPECT_LT(model.predict(1e6, 1e5), model.predict(1e6, 1e8));
}

// Property sweep: recovery accuracy holds across device regimes.
struct WorldCase {
  double compute_rate;
  double memory_rate;
  double overhead;
};

class RooflineWorldSweep : public ::testing::TestWithParam<WorldCase> {};

TEST_P(RooflineWorldSweep, RecoversRates) {
  const WorldCase w = GetParam();
  const RooflineWorld world{w.compute_rate, w.memory_rate, w.overhead};
  const SyntheticData data = make_data(world, 500, 0.01, 7);
  RooflineRegression model;
  model.fit(data.flops, data.bytes, data.latency);
  EXPECT_NEAR(model.compute_rate(), w.compute_rate, 0.1 * w.compute_rate);
  EXPECT_NEAR(model.memory_rate(), w.memory_rate, 0.1 * w.memory_rate);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, RooflineWorldSweep,
    ::testing::Values(WorldCase{140e6, 25e6, 0.1},   // TX2 GPU conv
                      WorldCase{21e6, 4e6, 0.02},    // TX2 CPU conv
                      WorldCase{140e6, 15.6e6, 0.1}, // TX2 GPU dense
                      WorldCase{60e6, 25e6, 0.1}));  // TX2 GPU pool

}  // namespace
}  // namespace lens::ml
