// Tests for the NSGA-II engine and its use as an Algorithm-2 ablation
// strategy inside the NAS driver.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/nas.hpp"
#include "opt/hypervolume.hpp"
#include "opt/nsga2.hpp"
#include "perf/predictor.hpp"

namespace lens::opt {
namespace {

Nsga2Engine::Sampler unit_sampler(std::size_t dim) {
  return [dim](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<double> x(dim);
    for (double& v : x) v = unit(rng);
    return x;
  };
}

std::vector<double> zdt1(const std::vector<double>& x) {
  const double f1 = x[0];
  const double g = 1.0 + 9.0 * x[1];
  return {f1, g * (1.0 - std::sqrt(f1 / g))};
}

TEST(Nsga2, ValidatesConfiguration) {
  auto sampler = unit_sampler(2);
  auto objectives = [](const std::vector<double>& x) { return zdt1(x); };
  Nsga2Config config;
  config.population = 2;
  EXPECT_THROW(Nsga2Engine(config, 2, sampler, objectives), std::invalid_argument);
  config = {};
  config.crossover_rate = 1.5;
  EXPECT_THROW(Nsga2Engine(config, 2, sampler, objectives), std::invalid_argument);
  config = {};
  EXPECT_THROW(Nsga2Engine(config, 0, sampler, objectives), std::invalid_argument);
  EXPECT_THROW(Nsga2Engine(config, 2, nullptr, objectives), std::invalid_argument);
}

TEST(Nsga2, BudgetAccounting) {
  Nsga2Config config;
  config.population = 8;
  config.generations = 3;
  Nsga2Engine engine(config, 2, unit_sampler(2),
                     [](const std::vector<double>& x) { return zdt1(x); });
  engine.run();
  EXPECT_EQ(engine.history().size(), 8u * 4u);  // init + 3 generations
}

TEST(Nsga2, FrontIsMutuallyNondominated) {
  Nsga2Config config;
  config.population = 16;
  config.generations = 5;
  config.seed = 3;
  Nsga2Engine engine(config, 2, unit_sampler(2),
                     [](const std::vector<double>& x) { return zdt1(x); });
  engine.run();
  const auto& points = engine.front().points();
  ASSERT_GE(points.size(), 2u);
  for (const ParetoPoint& p : points) {
    for (const ParetoPoint& q : points) {
      if (&p != &q) {
        EXPECT_FALSE(dominates(p.objectives, q.objectives));
      }
    }
  }
}

TEST(Nsga2, BeatsRandomOnZdt1) {
  const std::vector<double> reference = {1.1, 10.1};
  double nsga_hv = 0.0;
  double random_hv = 0.0;
  for (unsigned seed = 1; seed <= 3; ++seed) {
    Nsga2Config config;
    config.population = 20;
    config.generations = 9;  // 200 evaluations
    config.seed = seed;
    Nsga2Engine engine(config, 2, unit_sampler(2),
                       [](const std::vector<double>& x) { return zdt1(x); });
    engine.run();
    std::vector<std::vector<double>> pts;
    for (const auto& p : engine.front().points()) pts.push_back(p.objectives);
    nsga_hv += hypervolume(pts, reference);

    std::mt19937_64 rng(seed + 50);
    auto sampler = unit_sampler(2);
    ParetoFront random_front;
    for (std::size_t i = 0; i < 200; ++i) random_front.insert(i, zdt1(sampler(rng)));
    std::vector<std::vector<double>> rpts;
    for (const auto& p : random_front.points()) rpts.push_back(p.objectives);
    random_hv += hypervolume(rpts, reference);
  }
  EXPECT_GT(nsga_hv, random_hv);
}

TEST(Nsga2, ValidatorIsRespected) {
  // Feasible region: x[0] >= 0.5. All evaluated points must satisfy it as
  // long as the sampler only emits feasible points.
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> upper(0.5, 1.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    return std::vector<double>{upper(rng), unit(rng)};
  };
  auto validator = [](const std::vector<double>& x) { return x[0] >= 0.5; };
  Nsga2Config config;
  config.population = 12;
  config.generations = 4;
  Nsga2Engine engine(config, 2, sampler,
                     [](const std::vector<double>& x) { return zdt1(x); }, validator);
  engine.run();
  for (const Observation& o : engine.history()) {
    EXPECT_GE(o.x[0], 0.5);
  }
}

TEST(Nsga2, ImpossibleValidatorFallsBackToSampler) {
  // A validator rejecting every offspring forces the random-immigrant
  // fallback each generation; the run must still complete its budget with
  // all points drawn from the (feasible-by-construction) sampler.
  auto sampler = unit_sampler(2);
  auto validator = [](const std::vector<double>&) { return false; };
  Nsga2Config config;
  config.population = 6;
  config.generations = 2;
  config.repair_attempts = 2;
  Nsga2Engine engine(config, 2, sampler,
                     [](const std::vector<double>& x) { return zdt1(x); }, validator);
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(engine.history().size(), 18u);
}

TEST(Nsga2, ExplicitMutationRateIsAccepted) {
  Nsga2Config config;
  config.population = 8;
  config.generations = 2;
  config.mutation_rate = 0.5;
  Nsga2Engine engine(config, 2, unit_sampler(3),
                     [](const std::vector<double>& x) {
                       return std::vector<double>{x[0], x[1] + x[2]};
                     });
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(engine.history().size(), 24u);
}

TEST(Nsga2, WrongObjectiveArityThrows) {
  Nsga2Config config;
  config.population = 4;
  Nsga2Engine engine(config, 2, unit_sampler(2),
                     [](const std::vector<double>&) { return std::vector<double>{1.0}; });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Nsga2, Deterministic) {
  auto make = [] {
    Nsga2Config config;
    config.population = 10;
    config.generations = 3;
    config.seed = 11;
    return Nsga2Engine(config, 2, unit_sampler(3), [](const std::vector<double>& x) {
      return std::vector<double>{x[0] + x[2], x[1]};
    });
  };
  Nsga2Engine a = make();
  Nsga2Engine b = make();
  a.run();
  b.run();
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(a.history()[i].x, b.history()[i].x);
  }
}

}  // namespace
}  // namespace lens::opt

namespace lens::core {
namespace {

TEST(NasStrategies, AllStrategiesProduceValidCandidates) {
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const DeploymentEvaluator evaluator(oracle, wifi);
  const SearchSpace space;
  const SurrogateAccuracyModel accuracy;

  for (SearchStrategy strategy :
       {SearchStrategy::kMobo, SearchStrategy::kNsga2, SearchStrategy::kRandom}) {
    NasConfig config;
    config.strategy = strategy;
    config.mobo.num_initial = 6;
    config.mobo.num_iterations = 6;
    config.mobo.pool_size = 32;
    config.nsga2.population = 6;
    config.nsga2.generations = 1;
    NasDriver driver(space, evaluator, accuracy, config);
    const NasResult result = driver.run();
    EXPECT_EQ(result.history.size(), 12u) << "strategy " << static_cast<int>(strategy);
    for (const EvaluatedCandidate& c : result.history) {
      EXPECT_TRUE(space.is_valid(c.genotype));
    }
    EXPECT_GE(result.front.size(), 1u);
  }
}

}  // namespace
}  // namespace lens::core
