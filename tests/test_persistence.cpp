// Tests for switching-table persistence, network weight checkpoints, and
// the trace generator's outage overlay.

#include <cstdio>
#include <fstream>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "comm/trace.hpp"
#include "io/io.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv.hpp"
#include "nn/dataset.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/activation.hpp"
#include "runtime/threshold_io.hpp"

namespace lens {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- switching table ---------------------------------------------------------

runtime::SwitchingTable sample_table() {
  runtime::SwitchingTable table;
  table.metric = runtime::OptimizeFor::kEnergy;
  table.option_labels = {"All-Edge", "split@pool5", "All-Cloud"};
  table.intervals = {{0, 0.05, 1.2}, {1, 1.2, 22.5}, {2, 22.5, 500.0}};
  return table;
}

TEST(SwitchingTable, SelectRespectsIntervalsAndClamps) {
  const runtime::SwitchingTable table = sample_table();
  EXPECT_EQ(table.select(0.5), 0u);
  EXPECT_EQ(table.select(5.0), 1u);
  EXPECT_EQ(table.select(100.0), 2u);
  EXPECT_EQ(table.select(0.01), 0u);    // below range: clamp left
  EXPECT_EQ(table.select(9999.0), 2u);  // above range: clamp right
  EXPECT_THROW(table.select(0.0), std::invalid_argument);
  runtime::SwitchingTable empty;
  EXPECT_THROW(empty.select(1.0), std::logic_error);
}

TEST(SwitchingTable, SaveLoadRoundTrip) {
  const runtime::SwitchingTable original = sample_table();
  const std::string path = temp_path("table.txt");
  runtime::save_switching_table(original, path);
  const runtime::SwitchingTable loaded = runtime::load_switching_table(path);
  EXPECT_EQ(loaded.metric, original.metric);
  EXPECT_EQ(loaded.option_labels, original.option_labels);
  ASSERT_EQ(loaded.intervals.size(), original.intervals.size());
  for (std::size_t i = 0; i < loaded.intervals.size(); ++i) {
    EXPECT_EQ(loaded.intervals[i].option_index, original.intervals[i].option_index);
    EXPECT_DOUBLE_EQ(loaded.intervals[i].tu_low, original.intervals[i].tu_low);
    EXPECT_DOUBLE_EQ(loaded.intervals[i].tu_high, original.intervals[i].tu_high);
  }
  // Behavioural equivalence across the whole axis.
  for (double tu = 0.1; tu < 400.0; tu *= 1.7) {
    EXPECT_EQ(loaded.select(tu), original.select(tu));
  }
  std::remove(path.c_str());
}

TEST(SwitchingTable, LoadRejectsBadFiles) {
  EXPECT_THROW(runtime::load_switching_table("/nonexistent/t.txt"), std::runtime_error);
  const std::string path = temp_path("bad_table.txt");
  // A file with no integrity footer (e.g. hand-edited) fails the checksum
  // gate before any parsing happens.
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  EXPECT_THROW(runtime::load_switching_table(path), std::runtime_error);
  // Semantically-bad payloads behind a valid footer still hit the parser's
  // own validation.
  io::atomic_write_checked(path, [](std::ostream& out) { out << "garbage\n"; });
  EXPECT_THROW(runtime::load_switching_table(path), std::invalid_argument);
  io::atomic_write_checked(path, [](std::ostream& out) {
    out << "lens-switching-table v1\nmetric energy\noptions 1\nX\nintervals 1\n5 1.0 2.0\n";
  });
  // option_index 5 out of range for 1 label.
  EXPECT_THROW(runtime::load_switching_table(path), std::invalid_argument);
  std::remove(path.c_str());
}

// ---- network weight checkpoints ----------------------------------------------

nn::Sequential small_network(unsigned seed) {
  std::mt19937_64 rng(seed);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2D>(3, 6, 3, 1, 1, rng));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::MaxPool2D>(2, 2));
  net.add(std::make_unique<nn::Dense>(8 * 8 * 6, 10, rng));
  return net;
}

TEST(Checkpoint, RoundTripPreservesOutputs) {
  nn::Sequential trained = small_network(1);
  // Nudge the weights so they differ from any fresh initialization.
  for (nn::ParamTensor* p : trained.parameters()) {
    for (float& v : p->value) v += 0.25f;
  }
  const std::string path = temp_path("weights.txt");
  nn::save_weights(trained, path);

  nn::Sequential restored = small_network(999);  // different init
  nn::load_weights(restored, path);

  nn::Tensor input(2, 16, 16, 3);
  std::mt19937_64 rng(7);
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  for (float& v : input.storage()) v = gauss(rng);
  const nn::Tensor a = trained.forward(input, false);
  const nn::Tensor b = restored.forward(input, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.storage()[i], b.storage()[i], 1e-4f);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedArchitecture) {
  nn::Sequential net = small_network(1);
  const std::string path = temp_path("weights_mismatch.txt");
  nn::save_weights(net, path);

  std::mt19937_64 rng(2);
  nn::Sequential different;
  different.add(std::make_unique<nn::Dense>(10, 4, rng));
  EXPECT_THROW(nn::load_weights(different, path), std::invalid_argument);
  EXPECT_THROW(nn::load_weights(net, "/nonexistent/w.txt"), std::runtime_error);
  std::remove(path.c_str());
}

// ---- outage overlay ------------------------------------------------------------

TEST(Outages, DisabledByDefault) {
  comm::TraceGeneratorConfig config;
  config.seed = 3;
  comm::TraceGenerator plain(config);
  const comm::ThroughputTrace trace = plain.generate(500);
  // Without outages, min/max span stays within the log-normal's usual range.
  EXPECT_GT(trace.min_mbps(), config.mean_mbps * 0.05);
}

TEST(Outages, ProduceDeepFadesAtConfiguredRate) {
  comm::TraceGeneratorConfig config;
  config.mean_mbps = 10.0;
  config.sigma = 0.2;
  config.seed = 5;
  config.outage_start_probability = 0.05;
  config.outage_mean_duration = 4.0;
  config.outage_depth_factor = 0.05;
  comm::TraceGenerator generator(config);
  const comm::ThroughputTrace trace = generator.generate(4000);
  // Count samples in deep fade (below 20% of the median).
  std::size_t faded = 0;
  for (double tu : trace.samples_mbps) {
    if (tu < 2.0) ++faded;
  }
  // Stationary outage fraction ~ p*d / (1 + p*d) ~ 17%; allow a wide band.
  const double fraction = static_cast<double>(faded) / static_cast<double>(trace.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.35);
  EXPECT_GE(trace.min_mbps(), config.floor_mbps);
}

TEST(Outages, EpisodesAreBursty) {
  comm::TraceGeneratorConfig config;
  config.mean_mbps = 10.0;
  config.sigma = 0.05;
  config.seed = 9;
  config.outage_start_probability = 0.02;
  config.outage_mean_duration = 6.0;
  config.outage_depth_factor = 0.02;
  comm::TraceGenerator generator(config);
  const comm::ThroughputTrace trace = generator.generate(4000);
  // Count fade->fade adjacencies vs isolated fades: bursts dominate.
  std::size_t faded = 0;
  std::size_t adjacent = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const bool fade = trace.samples_mbps[i] < 1.0;
    if (fade) {
      ++faded;
      if (i > 0 && trace.samples_mbps[i - 1] < 1.0) ++adjacent;
    }
  }
  ASSERT_GT(faded, 20u);
  EXPECT_GT(static_cast<double>(adjacent) / static_cast<double>(faded), 0.5);
}

TEST(Outages, Validation) {
  comm::TraceGeneratorConfig config;
  config.outage_start_probability = 1.5;
  EXPECT_THROW(comm::TraceGenerator{config}, std::invalid_argument);
  config = {};
  config.outage_start_probability = 0.1;
  config.outage_mean_duration = 0.5;
  EXPECT_THROW(comm::TraceGenerator{config}, std::invalid_argument);
  config = {};
  config.outage_start_probability = 0.1;
  config.outage_depth_factor = 0.0;
  EXPECT_THROW(comm::TraceGenerator{config}, std::invalid_argument);
}

}  // namespace
}  // namespace lens
