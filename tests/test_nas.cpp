// Tests for the NAS drivers (Algorithm 2 wiring) and the frontier-analysis
// helpers used by the Fig. 6 / Fig. 7 experiments.

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/nas.hpp"
#include "perf/predictor.hpp"

namespace lens::core {
namespace {

// Shared fixture: small search budgets so the whole file runs in seconds.
class NasTest : public ::testing::Test {
 protected:
  NasTest()
      : simulator_(perf::jetson_tx2_gpu()),
        oracle_(simulator_),
        comm_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, comm_) {}

  NasConfig small_config(ObjectiveMode mode, unsigned seed = 1) const {
    NasConfig config;
    config.mobo.num_initial = 8;
    config.mobo.num_iterations = 12;
    config.mobo.pool_size = 48;
    config.mobo.seed = seed;
    config.tu_mbps = 3.0;
    config.mode = mode;
    return config;
  }

  SearchSpace space_;
  perf::DeviceSimulator simulator_;
  perf::SimulatorOracle oracle_;
  comm::CommModel comm_;
  DeploymentEvaluator evaluator_;
  SurrogateAccuracyModel accuracy_;
};

TEST_F(NasTest, RunProducesFullHistoryAndFront) {
  NasDriver driver(space_, evaluator_, accuracy_,
                   small_config(ObjectiveMode::kBestDeployment));
  const NasResult result = driver.run();
  EXPECT_EQ(result.history.size(), 20u);
  EXPECT_GE(result.front.size(), 1u);
  for (const opt::ParetoPoint& p : result.front.points()) {
    ASSERT_LT(p.id, result.history.size());
    EXPECT_EQ(result.history[p.id].objectives(), p.objectives);
  }
  for (const EvaluatedCandidate& c : result.history) {
    EXPECT_TRUE(space_.is_valid(c.genotype));
    EXPECT_GT(c.latency_ms, 0.0);
    EXPECT_GT(c.energy_mj, 0.0);
    EXPECT_GE(c.error_percent, 11.0);
    EXPECT_FALSE(c.deployment.options.empty());
  }
}

TEST_F(NasTest, LensObjectivesAreBestDeploymentMinima) {
  NasDriver driver(space_, evaluator_, accuracy_,
                   small_config(ObjectiveMode::kBestDeployment));
  const NasResult result = driver.run();
  for (const EvaluatedCandidate& c : result.history) {
    EXPECT_DOUBLE_EQ(c.latency_ms, c.deployment.best_latency_ms());
    EXPECT_DOUBLE_EQ(c.energy_mj, c.deployment.best_energy_mj());
  }
}

TEST_F(NasTest, TraditionalObjectivesAreAllEdge) {
  NasDriver driver(space_, evaluator_, accuracy_, small_config(ObjectiveMode::kAllEdgeOnly));
  const NasResult result = driver.run();
  for (const EvaluatedCandidate& c : result.history) {
    EXPECT_DOUBLE_EQ(c.latency_ms, c.deployment.all_edge().latency_ms);
    EXPECT_DOUBLE_EQ(c.energy_mj, c.deployment.all_edge().energy_mj);
    // Best deployment can never be worse than All-Edge.
    EXPECT_LE(c.deployment.best_latency_ms(), c.latency_ms + 1e-9);
    EXPECT_LE(c.deployment.best_energy_mj(), c.energy_mj + 1e-9);
  }
}

TEST_F(NasTest, ReproducibleAcrossRuns) {
  NasDriver a(space_, evaluator_, accuracy_, small_config(ObjectiveMode::kBestDeployment, 7));
  NasDriver b(space_, evaluator_, accuracy_, small_config(ObjectiveMode::kBestDeployment, 7));
  const NasResult ra = a.run();
  const NasResult rb = b.run();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].genotype, rb.history[i].genotype);
    EXPECT_DOUBLE_EQ(ra.history[i].energy_mj, rb.history[i].energy_mj);
  }
}

TEST_F(NasTest, ObjectiveValuePolicies) {
  NasDriver driver(space_, evaluator_, accuracy_, small_config(ObjectiveMode::kAllEdgeOnly));
  const NasResult result = driver.run();
  const EvaluatedCandidate& c = result.history.front();
  EXPECT_DOUBLE_EQ(objective_value(c, kErrorObjective, DeploymentPolicy::kAllEdge),
                   c.error_percent);
  EXPECT_DOUBLE_EQ(objective_value(c, kLatencyObjective, DeploymentPolicy::kAsSearched),
                   c.latency_ms);
  EXPECT_DOUBLE_EQ(objective_value(c, kEnergyObjective, DeploymentPolicy::kAllEdge),
                   c.deployment.all_edge().energy_mj);
  EXPECT_DOUBLE_EQ(objective_value(c, kLatencyObjective, DeploymentPolicy::kBestDeployment),
                   c.deployment.best_latency_ms());
}

TEST_F(NasTest, Front2dIsNondominatedOverHistory) {
  NasDriver driver(space_, evaluator_, accuracy_,
                   small_config(ObjectiveMode::kBestDeployment));
  const NasResult result = driver.run();
  const opt::ParetoFront front =
      front_2d(result.history, kErrorObjective, kEnergyObjective);
  for (const EvaluatedCandidate& c : result.history) {
    const std::vector<double> point = {c.error_percent, c.energy_mj};
    // Nothing in history may dominate a front member... i.e. each history
    // point is either on the front or dominated/equal.
    if (front.would_accept(point)) {
      ADD_FAILURE() << "history point missing from 2-D front";
    }
  }
}

TEST_F(NasTest, RepartitionNeverWorsensAnyMember) {
  NasDriver driver(space_, evaluator_, accuracy_, small_config(ObjectiveMode::kAllEdgeOnly));
  const NasResult result = driver.run();
  const opt::ParetoFront edge_front =
      front_2d(result.history, kErrorObjective, kEnergyObjective, DeploymentPolicy::kAllEdge);
  const opt::ParetoFront repartitioned =
      repartition_front(edge_front, result.history, kErrorObjective, kEnergyObjective);
  // Every repartitioned member is component-wise <= some original member
  // (same candidate, energy can only improve, error unchanged).
  for (const opt::ParetoPoint& p : repartitioned.points()) {
    const EvaluatedCandidate& c = result.history[p.id];
    EXPECT_LE(p.objectives[1], c.deployment.all_edge().energy_mj + 1e-9);
    EXPECT_DOUBLE_EQ(p.objectives[0], c.error_percent);
  }
  EXPECT_LE(repartitioned.size(), edge_front.size());
}

TEST_F(NasTest, CompareFrontsIsConsistent) {
  opt::ParetoFront a;
  a.insert(0, {1.0, 5.0});
  a.insert(1, {2.0, 2.0});
  opt::ParetoFront b;
  b.insert(0, {3.0, 3.0});
  b.insert(1, {0.5, 8.0});
  const FrontComparison cmp = compare_fronts(a, b);
  EXPECT_DOUBLE_EQ(cmp.a_dominates_b, 0.5);  // (2,2) dominates (3,3)
  EXPECT_DOUBLE_EQ(cmp.b_dominates_a, 0.0);
  EXPECT_EQ(cmp.combined.total, 3u);
  EXPECT_EQ(cmp.combined.from_a, 2u);
}

TEST_F(NasTest, CountSatisfyingCriteria) {
  NasDriver driver(space_, evaluator_, accuracy_,
                   small_config(ObjectiveMode::kBestDeployment));
  const NasResult result = driver.run();
  const std::size_t all = count_satisfying(
      result.history, [](const EvaluatedCandidate&) { return true; });
  EXPECT_EQ(all, result.history.size());
  const std::size_t low_error = count_satisfying(
      result.history, [](const EvaluatedCandidate& c) { return c.error_percent < 25.0; });
  const std::size_t low_both = count_satisfying(result.history, [](const EvaluatedCandidate& c) {
    return c.error_percent < 25.0 && c.energy_mj < 250.0;
  });
  EXPECT_LE(low_both, low_error);
}

TEST_F(NasTest, ConvergenceCurveIsMonotone) {
  NasDriver driver(space_, evaluator_, accuracy_,
                   small_config(ObjectiveMode::kBestDeployment, 31));
  const NasResult result = driver.run();
  const std::vector<double> curve = convergence_curve(
      result.history, kErrorObjective, kEnergyObjective, {70.0, 3000.0});
  ASSERT_EQ(curve.size(), result.history.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
  EXPECT_GT(curve.back(), 0.0);
}

TEST_F(NasTest, KneePointIsBalancedFrontMember) {
  opt::ParetoFront front;
  front.insert(0, {0.0, 10.0});   // extreme in objective 1
  front.insert(1, {10.0, 0.0});   // extreme in objective 2
  front.insert(2, {2.0, 2.0});    // balanced knee
  EXPECT_EQ(knee_point(front).id, 2u);
  EXPECT_THROW(knee_point(opt::ParetoFront{}), std::invalid_argument);
}

TEST_F(NasTest, KneePointOfDegenerateFrontIsItsOnlyMember) {
  opt::ParetoFront front;
  front.insert(7, {3.0, 4.0});
  EXPECT_EQ(knee_point(front).id, 7u);
}

// The headline sanity: with identical budgets, LENS's energy-error front
// should never be dominated wholesale by the Traditional front (it sees
// strictly more deployment options per candidate).
TEST_F(NasTest, LensFrontNotDominatedByTraditional) {
  NasDriver lens(space_, evaluator_, accuracy_,
                 small_config(ObjectiveMode::kBestDeployment, 21));
  NasDriver traditional(space_, evaluator_, accuracy_,
                        small_config(ObjectiveMode::kAllEdgeOnly, 21));
  const NasResult lens_result = lens.run();
  const NasResult traditional_result = traditional.run();
  const opt::ParetoFront lens_front =
      front_2d(lens_result.history, kErrorObjective, kEnergyObjective);
  const opt::ParetoFront trad_front =
      front_2d(traditional_result.history, kErrorObjective, kEnergyObjective);
  const FrontComparison cmp = compare_fronts(lens_front, trad_front);
  EXPECT_LT(cmp.b_dominates_a, 1.0);
  EXPECT_GT(cmp.combined.total, 0u);
}

}  // namespace
}  // namespace lens::core
