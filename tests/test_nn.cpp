// Tests for the from-scratch training substrate: numerical gradient checks
// for every layer, loss correctness, optimizer behaviour, dataset
// properties, and end-to-end training sanity.

#include <cmath>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/dataset.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/tensor.hpp"

namespace lens::nn {
namespace {

// Scalar objective: weighted sum of layer outputs; weights fixed per call so
// analytic and numerical gradients see the same function.
double weighted_sum(const Tensor& out, const std::vector<float>& weights) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) acc += out.storage()[i] * weights[i];
  return acc;
}

// Numerical/analytic gradient comparison for a layer w.r.t. its input and
// every parameter. `training` selects the forward mode (batch-norm).
void check_gradients(Layer& layer, Tensor input, bool training = true,
                     double tolerance = 2e-2) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<float> unit(-1.0f, 1.0f);

  Tensor out = layer.forward(input, training);
  std::vector<float> weights(out.size());
  for (float& w : weights) w = unit(rng);

  // Analytic gradients.
  Tensor grad_out = out;
  for (std::size_t i = 0; i < grad_out.size(); ++i) grad_out.storage()[i] = weights[i];
  for (ParamTensor* p : layer.parameters()) p->zero_grad();
  const Tensor grad_in = layer.backward(grad_out);

  const float eps = 1e-3f;
  // Input gradient, spot-check a subset of coordinates.
  for (std::size_t i = 0; i < input.size(); i += std::max<std::size_t>(1, input.size() / 23)) {
    Tensor plus = input;
    Tensor minus = input;
    plus.storage()[i] += eps;
    minus.storage()[i] -= eps;
    const double f_plus = weighted_sum(layer.forward(plus, training), weights);
    const double f_minus = weighted_sum(layer.forward(minus, training), weights);
    const double numerical = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(grad_in.storage()[i], numerical,
                tolerance * std::max(1.0, std::abs(numerical)))
        << "input coordinate " << i;
  }

  // Parameter gradients (recompute the cached forward for `input` first).
  layer.forward(input, training);
  std::vector<std::vector<float>> saved_grads;
  for (ParamTensor* p : layer.parameters()) {
    p->zero_grad();
  }
  layer.backward(grad_out);
  for (ParamTensor* p : layer.parameters()) saved_grads.push_back(p->grad);

  std::size_t param_index = 0;
  for (ParamTensor* p : layer.parameters()) {
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(1, p->value.size() / 17)) {
      const float original = p->value[i];
      p->value[i] = original + eps;
      const double f_plus = weighted_sum(layer.forward(input, training), weights);
      p->value[i] = original - eps;
      const double f_minus = weighted_sum(layer.forward(input, training), weights);
      p->value[i] = original;
      const double numerical = (f_plus - f_minus) / (2.0 * eps);
      EXPECT_NEAR(saved_grads[param_index][i], numerical,
                  tolerance * std::max(1.0, std::abs(numerical)))
          << "param block " << param_index << " coordinate " << i;
    }
    ++param_index;
  }
}

Tensor random_tensor(int n, int h, int w, int c, unsigned seed) {
  Tensor t(n, h, w, c);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  for (float& v : t.storage()) v = gauss(rng);
  return t;
}

TEST(Tensor, ConstructionAndReshape) {
  Tensor t(2, 3, 4, 5, 1.5f);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_EQ(t.features(), 60);
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 7.0f);
  const Tensor r = t.reshaped(2, 1, 1, 60);
  EXPECT_FLOAT_EQ(r.at(1, 0, 0, 59), 7.0f);
  EXPECT_THROW(t.reshaped(2, 1, 1, 61), std::invalid_argument);
  EXPECT_THROW(Tensor(0, 1, 1, 1), std::invalid_argument);
}

TEST(GradCheck, Dense) {
  std::mt19937_64 rng(11);
  Dense layer(12, 7, rng);
  check_gradients(layer, random_tensor(3, 1, 1, 12, 5));
}

TEST(GradCheck, Conv2DStride1) {
  std::mt19937_64 rng(13);
  Conv2D layer(3, 4, 3, 1, 1, rng);
  check_gradients(layer, random_tensor(2, 6, 6, 3, 7));
}

TEST(GradCheck, Conv2DStride2NoPadding) {
  std::mt19937_64 rng(17);
  Conv2D layer(2, 3, 3, 2, 0, rng);
  check_gradients(layer, random_tensor(2, 7, 7, 2, 9));
}

TEST(GradCheck, ReLU) {
  ReLU layer;
  // Keep values away from the kink.
  Tensor input = random_tensor(2, 4, 4, 3, 21);
  for (float& v : input.storage()) {
    if (std::abs(v) < 0.1f) v = 0.5f;
  }
  check_gradients(layer, input);
}

TEST(GradCheck, MaxPool) {
  MaxPool2D layer(2, 2);
  // Perturbations must not flip the argmax: spread the values.
  Tensor input = random_tensor(2, 6, 6, 2, 23);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.storage()[i] += 0.01f * static_cast<float>(i % 97);
  }
  check_gradients(layer, input);
}

TEST(GradCheck, BatchNormTrainingMode) {
  BatchNorm layer(3);
  check_gradients(layer, random_tensor(4, 3, 3, 3, 29), /*training=*/true, 5e-2);
}

TEST(BatchNorm, NormalizesInTraining) {
  BatchNorm layer(2);
  Tensor input = random_tensor(8, 4, 4, 2, 31);
  // Shift one channel strongly.
  for (int n = 0; n < 8; ++n) {
    for (int h = 0; h < 4; ++h) {
      for (int w = 0; w < 4; ++w) input.at(n, h, w, 1) += 10.0f;
    }
  }
  const Tensor out = layer.forward(input, /*training=*/true);
  double mean1 = 0.0;
  for (int n = 0; n < 8; ++n) {
    for (int h = 0; h < 4; ++h) {
      for (int w = 0; w < 4; ++w) mean1 += out.at(n, h, w, 1);
    }
  }
  mean1 /= 8 * 16;
  EXPECT_NEAR(mean1, 0.0, 1e-4);  // gamma=1, beta=0 initially
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm layer(2);
  for (int step = 0; step < 50; ++step) {
    Tensor batch = random_tensor(8, 2, 2, 2, 100 + static_cast<unsigned>(step));
    for (float& v : batch.storage()) v = v * 2.0f + 3.0f;  // mean 3, std 2
    layer.forward(batch, /*training=*/true);
  }
  EXPECT_NEAR(layer.running_mean()[0], 3.0, 0.3);
  EXPECT_NEAR(layer.running_var()[0], 4.0, 0.8);
  // Inference on a mean-3 batch should output ~0.
  Tensor probe(2, 2, 2, 2, 3.0f);
  const Tensor out = layer.forward(probe, /*training=*/false);
  EXPECT_NEAR(out.storage()[0], 0.0, 0.1);
}

TEST(Loss, SoftmaxIsNormalized) {
  Tensor logits = Tensor::flat(2, 4);
  logits.storage() = {1.0f, 2.0f, 3.0f, 4.0f, -1.0f, 0.0f, 1.0f, 100.0f};
  const Tensor p = softmax(logits);
  for (int b = 0; b < 2; ++b) {
    float total = 0.0f;
    for (int k = 0; k < 4; ++k) total += p.at(b, 0, 0, k);
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
  EXPECT_NEAR(p.at(1, 0, 0, 3), 1.0f, 1e-5);  // huge logit dominates, no overflow
}

TEST(Loss, CrossEntropyKnownValue) {
  Tensor logits = Tensor::flat(1, 2);
  logits.storage() = {0.0f, 0.0f};
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(r.mean_loss, std::log(2.0), 1e-6);
  // grad = (p - onehot)/batch = (0.5-1, 0.5)/1.
  EXPECT_NEAR(r.grad_logits.storage()[0], -0.5f, 1e-6);
  EXPECT_NEAR(r.grad_logits.storage()[1], 0.5f, 1e-6);
}

TEST(Loss, GradientMatchesNumerical) {
  std::mt19937_64 rng(37);
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  Tensor logits = Tensor::flat(3, 5);
  for (float& v : logits.storage()) v = gauss(rng);
  const std::vector<int> labels = {1, 4, 0};
  const LossResult base = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); i += 3) {
    Tensor plus = logits;
    Tensor minus = logits;
    plus.storage()[i] += eps;
    minus.storage()[i] -= eps;
    const double numerical = (softmax_cross_entropy(plus, labels).mean_loss -
                              softmax_cross_entropy(minus, labels).mean_loss) /
                             (2.0 * eps);
    EXPECT_NEAR(base.grad_logits.storage()[i], numerical, 1e-3);
  }
}

TEST(Loss, Validation) {
  Tensor logits = Tensor::flat(2, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  ParamTensor p(1);
  p.value[0] = 10.0f;
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.9;
  config.weight_decay = 0.0;
  Sgd optimizer({&p}, config);
  // Constant gradient 1: with momentum the effective step grows.
  float previous = p.value[0];
  float last_step = 0.0f;
  for (int i = 0; i < 5; ++i) {
    p.grad[0] = 1.0f;
    optimizer.step();
    const float step = previous - p.value[0];
    EXPECT_GT(step, last_step);
    last_step = step;
    previous = p.value[0];
    EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // step zeroes gradients
  }
}

TEST(Sgd, WeightDecayShrinksWeights) {
  ParamTensor p(1);
  p.value[0] = 1.0f;
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.0;
  config.weight_decay = 0.5;
  Sgd optimizer({&p}, config);
  p.grad[0] = 0.0f;
  optimizer.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Sgd, Validation) {
  ParamTensor p(1);
  EXPECT_THROW(Sgd({&p}, SgdConfig{.learning_rate = 0.0}), std::invalid_argument);
  EXPECT_THROW(Sgd({nullptr}, SgdConfig{}), std::invalid_argument);
}

TEST(ShapeSet, BalancedAndBounded) {
  ShapeSet dataset({.image_size = 16, .num_classes = 10, .seed = 3});
  const LabeledData data = dataset.generate(200);
  EXPECT_EQ(data.size(), 200u);
  std::vector<int> counts(10, 0);
  for (int label : data.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 20);
  for (float v : data.images.storage()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ShapeSet, Validation) {
  EXPECT_THROW(ShapeSet({.image_size = 4}), std::invalid_argument);
  EXPECT_THROW(ShapeSet({.num_classes = 1}), std::invalid_argument);
  ShapeSet ok;
  EXPECT_THROW(ok.generate(0), std::invalid_argument);
}

TEST(Sequential, ForwardBackwardShapes) {
  std::mt19937_64 rng(41);
  Sequential net;
  net.add(std::make_unique<Conv2D>(3, 8, 3, 1, 1, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(2, 2));
  net.add(std::make_unique<Dense>(8 * 8 * 8, 10, rng));
  const Tensor out = net.forward(random_tensor(4, 16, 16, 3, 43), true);
  EXPECT_EQ(out.n(), 4);
  EXPECT_EQ(out.features(), 10);
  EXPECT_GT(net.num_parameters(), 0u);
}

TEST(Trainer, OverfitsTinyDataset) {
  // A small net must drive training accuracy to ~100% on 40 images:
  // end-to-end check that gradients, loss, and optimizer cooperate.
  ShapeSet dataset({.image_size = 16, .num_classes = 4, .noise_std = 0.02f, .seed = 7});
  const LabeledData data = dataset.generate(40);
  std::mt19937_64 rng(47);
  Sequential net;
  net.add(std::make_unique<Conv2D>(3, 8, 3, 1, 1, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(2, 2));
  net.add(std::make_unique<Conv2D>(8, 16, 3, 1, 1, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(2, 2));
  net.add(std::make_unique<Dense>(4 * 4 * 16, 4, rng));
  TrainerConfig config;
  config.batch_size = 8;
  config.sgd.learning_rate = 0.01;
  Trainer trainer(net, config);
  EpochStats last;
  for (int epoch = 0; epoch < 30; ++epoch) last = trainer.train_epoch(data);
  EXPECT_GT(last.accuracy, 0.95);
  EXPECT_LT(last.mean_loss, 0.3);
}

TEST(Trainer, GeneralizesOnShapeSet) {
  ShapeSet dataset({.image_size = 16, .num_classes = 10, .seed = 11});
  const LabeledData train = dataset.generate(600);
  const LabeledData test = dataset.generate(200);
  std::mt19937_64 rng(53);
  Sequential net;
  net.add(std::make_unique<Conv2D>(3, 12, 3, 1, 1, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(2, 2));
  net.add(std::make_unique<Conv2D>(12, 24, 3, 1, 1, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(2, 2));
  net.add(std::make_unique<Dense>(4 * 4 * 24, 10, rng));
  Trainer trainer(net, {.sgd = {.learning_rate = 0.01}, .batch_size = 16});
  for (int epoch = 0; epoch < 8; ++epoch) trainer.train_epoch(train);
  const EpochStats stats = trainer.evaluate(test);
  EXPECT_GT(stats.accuracy, 0.9);  // 10% is chance; LR 0.01 converges cleanly
}

TEST(Builder, MirrorsArchitectureAndTrains) {
  // Decode-and-train path used by TrainedAccuracyEvaluator.
  const dnn::Architecture arch(
      "test", {16, 16, 3},
      {dnn::LayerSpec::conv(8, 3), dnn::LayerSpec::max_pool(),
       dnn::LayerSpec::conv(16, 3), dnn::LayerSpec::max_pool(),
       dnn::LayerSpec::dense(32), dnn::LayerSpec::dense(10, dnn::Activation::kSoftmax)});
  std::mt19937_64 rng(59);
  Sequential net = build_network(arch, rng);
  // conv+bn+relu (3), pool (1), conv+bn+relu (3), pool (1), dense+relu (2),
  // classifier dense (1) = 11 trainable-stack layers.
  EXPECT_EQ(net.num_layers(), 11u);
  const Tensor out = net.forward(random_tensor(2, 16, 16, 3, 61), true);
  EXPECT_EQ(out.features(), 10);
  // Parameter count matches the IR's accounting.
  EXPECT_EQ(net.num_parameters(), arch.total_params());
}

TEST(TakeBatch, ExtractsCorrectRows) {
  LabeledData data;
  data.images = Tensor(3, 2, 2, 1);
  for (int n = 0; n < 3; ++n) data.images.at(n, 0, 0, 0) = static_cast<float>(n);
  data.labels = {0, 1, 2};
  const LabeledData batch = take_batch(data, {2, 0});
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(batch.images.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(batch.images.at(1, 0, 0, 0), 0.0f);
  EXPECT_EQ(batch.labels[0], 2);
  EXPECT_THROW(take_batch(data, {5}), std::out_of_range);
  EXPECT_THROW(take_batch(data, {}), std::invalid_argument);
}

}  // namespace
}  // namespace lens::nn
