// Tests for the discrete-event edge-cloud simulator.

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "sim/battery.hpp"
#include "sim/link.hpp"
#include "sim/system.hpp"
#include "sim/timeline.hpp"

namespace lens::sim {
namespace {

TEST(Timeline, FifoQueueing) {
  ResourceTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.schedule(0.0, 1.0), 1.0);
  // Arrives while busy: queues behind the first job.
  EXPECT_DOUBLE_EQ(timeline.schedule(0.5, 1.0), 2.0);
  // Arrives after idle gap: starts immediately.
  EXPECT_DOUBLE_EQ(timeline.schedule(5.0, 0.5), 5.5);
  EXPECT_DOUBLE_EQ(timeline.total_busy(), 2.5);
  EXPECT_EQ(timeline.jobs(), 3u);
}

TEST(Timeline, Validation) {
  ResourceTimeline timeline;
  EXPECT_THROW(timeline.schedule(0.0, -1.0), std::invalid_argument);
  timeline.schedule(5.0, 1.0);
  EXPECT_THROW(timeline.schedule(1.0, 1.0), std::invalid_argument);  // out of order
}

comm::ThroughputTrace flat_trace(double mbps, double interval_s = 100.0) {
  comm::ThroughputTrace trace;
  trace.samples_mbps = {mbps};
  trace.interval_s = interval_s;
  return trace;
}

TEST(Link, ConstantRateMatchesClosedForm) {
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kWifi);
  TimeVaryingLink link(flat_trace(8.0), radio);
  // 1 MB at 8 Mbps = 8e6 bits / 8e6 bit/s = 1 s.
  const TransferResult r = link.transfer(10.0, 1000000);
  EXPECT_NEAR(r.end_s, 11.0, 1e-9);
  EXPECT_NEAR(r.energy_mj, radio.transmit_power_mw(8.0) * 1.0, 1e-6);  // mW*s
}

TEST(Link, RateChangeIsIntegrated) {
  // 10 Mbps for 1 s, then 2 Mbps: 1.5 MB = 12e6 bits. First second carries
  // 10e6 bits; remaining 2e6 bits at 2 Mbps take another 1 s.
  comm::ThroughputTrace trace;
  trace.samples_mbps = {10.0, 2.0};
  trace.interval_s = 1.0;
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kLte);
  TimeVaryingLink link(trace, radio);
  const TransferResult r = link.transfer(0.0, 1500000);
  EXPECT_NEAR(r.end_s, 2.0, 1e-9);
  const double expected_energy =
      radio.transmit_power_mw(10.0) * 1.0 + radio.transmit_power_mw(2.0) * 1.0;
  EXPECT_NEAR(r.energy_mj, expected_energy, 1e-6);
}

TEST(Link, TraceWrapsAround) {
  TimeVaryingLink link(flat_trace(4.0, 1.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  EXPECT_DOUBLE_EQ(link.throughput_at(0.5), 4.0);
  EXPECT_DOUBLE_EQ(link.throughput_at(123.7), 4.0);
}

TEST(Link, FifoSerialization) {
  TimeVaryingLink link(flat_trace(8.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  const TransferResult first = link.schedule(0.0, 1000000);   // 1 s
  const TransferResult second = link.schedule(0.2, 1000000);  // queued
  EXPECT_NEAR(first.end_s, 1.0, 1e-9);
  EXPECT_NEAR(second.start_s, 1.0, 1e-9);
  EXPECT_NEAR(second.end_s, 2.0, 1e-9);
  EXPECT_NEAR(link.total_busy(), 2.0, 1e-9);
}

TEST(Link, ZeroBytesInstantaneous) {
  TimeVaryingLink link(flat_trace(8.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  const TransferResult r = link.schedule(3.0, 0);
  EXPECT_DOUBLE_EQ(r.end_s, 3.0);
  EXPECT_DOUBLE_EQ(r.energy_mj, 0.0);
}

TEST(Link, Validation) {
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kWifi);
  comm::ThroughputTrace empty;
  EXPECT_THROW(TimeVaryingLink(empty, radio), std::invalid_argument);
  comm::ThroughputTrace bad = flat_trace(8.0);
  bad.samples_mbps[0] = -1.0;
  EXPECT_THROW(TimeVaryingLink(bad, radio), std::invalid_argument);
  TimeVaryingLink link(flat_trace(8.0), radio);
  EXPECT_THROW(link.throughput_at(-1.0), std::invalid_argument);
  EXPECT_THROW(link.schedule(-1.0, 10), std::invalid_argument);
}

// ---- full system ------------------------------------------------------------

class SystemTest : public ::testing::Test {
 protected:
  SystemTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_),
        alexnet_(dnn::alexnet()),
        evaluation_(evaluator_.evaluate(alexnet_, 10.0)) {}

  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  core::DeploymentEvaluator evaluator_;
  dnn::Architecture alexnet_;
  core::DeploymentEvaluation evaluation_;
};

TEST_F(SystemTest, LightLoadLatencyMatchesIsolatedCost) {
  // At 1 req/s the edge (32 ms service) never queues: per-request latency
  // equals the isolated All-Edge latency.
  SimConfig config;
  config.duration_s = 200.0;
  config.arrival_rate_hz = 1.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.completed, 150u);
  EXPECT_NEAR(stats.p50_latency_ms, evaluation_.all_edge().latency_ms, 1.0);
  EXPECT_LT(stats.edge_utilization, 0.1);
}

TEST_F(SystemTest, OverloadQueuesAndLatencyExplodes) {
  // All-Edge serves ~32 req/s at most; at 60 req/s the queue grows without
  // bound and tail latency dwarfs the isolated cost.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 60.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.p99_latency_ms, 20.0 * evaluation_.all_edge().latency_ms);
  EXPECT_GT(stats.edge_utilization, 0.9);
}

TEST_F(SystemTest, PartitionedSustainsHigherLoadThanAllEdge) {
  // The pool5 split occupies the edge for only ~16 ms vs ~32 ms All-Edge,
  // so at 45 req/s the split's tail latency is far lower.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  std::size_t split_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
    if (evaluation_.options[i].kind == core::DeploymentKind::kPartitioned &&
        evaluation_.options[i].label(alexnet_) == "split@pool5") {
      split_index = i;
    }
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem all_edge(evaluation_.options, wifi_, flat_trace(30.0), config);
  config.fixed_option = split_index;
  EdgeCloudSystem split(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats edge_stats = all_edge.run();
  const SimStats split_stats = split.run();
  EXPECT_LT(split_stats.p99_latency_ms, 0.5 * edge_stats.p99_latency_ms);
}

TEST_F(SystemTest, EnergyAccountingIsConsistent) {
  SimConfig config;
  config.duration_s = 100.0;
  config.arrival_rate_hz = 2.0;
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = 0;  // All-Cloud
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  // All-Cloud at a steady 10 Mbps: per-inference energy equals the
  // closed-form transfer energy.
  const double expected = wifi_.tx_energy_mj(evaluation_.all_cloud().tx_bytes, 10.0);
  EXPECT_NEAR(stats.energy_per_inference_mj, expected, 0.02 * expected);
}

TEST_F(SystemTest, DynamicPolicyTracksThroughput) {
  // Trace alternates between fast and very slow: the dynamic policy should
  // use different options across time, and beat the worse fixed policy.
  comm::ThroughputTrace trace;
  trace.samples_mbps = {30.0, 0.3};
  trace.interval_s = 20.0;
  SimConfig config;
  config.duration_s = 120.0;
  config.arrival_rate_hz = 2.0;
  config.policy = DispatchPolicy::kDynamic;
  config.metric = runtime::OptimizeFor::kLatency;
  EdgeCloudSystem system(evaluation_.options, wifi_, trace, config);
  const SimStats stats = system.run();
  bool used_multiple = false;
  for (const RequestRecord& r : system.records()) {
    if (r.option != system.records().front().option) {
      used_multiple = true;
      break;
    }
  }
  EXPECT_TRUE(used_multiple);
  EXPECT_GT(stats.completed, 0u);
}

TEST_F(SystemTest, QueueAwareBeatsFixedUnderOverload) {
  // At 45 req/s the All-Edge queue explodes; spreading load across the edge
  // and the link keeps the tail bounded.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = edge_index;
  EdgeCloudSystem fixed(evaluation_.options, wifi_, flat_trace(30.0), config);
  config.policy = DispatchPolicy::kQueueAware;
  EdgeCloudSystem balanced(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats fixed_stats = fixed.run();
  const SimStats balanced_stats = balanced.run();
  EXPECT_LT(balanced_stats.p99_latency_ms, 0.5 * fixed_stats.p99_latency_ms);
  // Both resources see real work.
  EXPECT_GT(balanced_stats.edge_utilization, 0.05);
  EXPECT_GT(balanced_stats.link_utilization, 0.05);
}

TEST_F(SystemTest, QueueAwareMatchesBestChoiceWhenIdle) {
  // With no queueing pressure, the queue-aware estimate reduces to the
  // isolated latency comparison, i.e. the latency-best option.
  SimConfig config;
  config.duration_s = 100.0;
  config.arrival_rate_hz = 0.5;
  config.policy = DispatchPolicy::kQueueAware;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  system.run();
  for (const RequestRecord& r : system.records()) {
    EXPECT_EQ(r.option, evaluation_.best_latency_option);
  }
}

TEST_F(SystemTest, Validation) {
  SimConfig config;
  EXPECT_THROW(EdgeCloudSystem({}, wifi_, flat_trace(10.0), config), std::invalid_argument);
  config.fixed_option = 99;
  EXPECT_THROW(EdgeCloudSystem(evaluation_.options, wifi_, flat_trace(10.0), config),
               std::invalid_argument);
  config = {};
  config.duration_s = -1.0;
  EXPECT_THROW(EdgeCloudSystem(evaluation_.options, wifi_, flat_trace(10.0), config),
               std::invalid_argument);
  config = {};
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  system.run();
  EXPECT_THROW(system.run(), std::logic_error);
}

TEST_F(SystemTest, DeadlineAccounting) {
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;  // All-Edge overloads at this rate
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  config.deadline_ms = 100.0;
  EdgeCloudSystem overloaded(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats stats = overloaded.run();
  EXPECT_GT(stats.deadline_violations, 0u);
  EXPECT_GT(stats.violation_rate, 0.3);
  EXPECT_LE(stats.violation_rate, 1.0);

  // Light load: no violations.
  config.arrival_rate_hz = 1.0;
  EdgeCloudSystem light(evaluation_.options, wifi_, flat_trace(30.0), config);
  EXPECT_DOUBLE_EQ(light.run().violation_rate, 0.0);
}

TEST(Battery, HandComputedDrain) {
  // Two requests of 500 J each at t=10 and t=20, idle 1 W, capacity 2000 J:
  // at t=20 spent = 20 J idle + 1000 J inference -> survives with margin.
  std::vector<RequestRecord> records(2);
  records[0].completion_s = 10.0;
  records[0].energy_mj = 500.0 * 1e3;
  records[1].completion_s = 20.0;
  records[1].energy_mj = 500.0 * 1e3;
  BatteryConfig config;
  config.capacity_j = 2000.0;
  config.idle_power_mw = 1000.0;
  const BatteryReport report = battery_replay(records, config);
  EXPECT_TRUE(report.survived);
  EXPECT_EQ(report.inferences_served, 2u);
  EXPECT_NEAR(report.inference_energy_j, 1000.0, 1e-9);
  EXPECT_NEAR(report.idle_energy_j, 20.0, 1e-9);
  EXPECT_NEAR(report.mean_power_w, 1020.0 / 20.0, 1e-9);
}

TEST(Battery, DiesMidStreamAtTheRightTime) {
  // Idle 1 W, capacity 15 J, first request at t=10 costs 10 J: idle leaves
  // 5 J at t=10, the request drains it -> dead at t=10, 0 served... the
  // request itself empties the battery exactly, so it is not served.
  std::vector<RequestRecord> records(2);
  records[0].completion_s = 10.0;
  records[0].energy_mj = 10.0 * 1e3;
  records[1].completion_s = 20.0;
  records[1].energy_mj = 10.0 * 1e3;
  BatteryConfig config;
  config.capacity_j = 15.0;
  config.idle_power_mw = 1000.0;
  const BatteryReport report = battery_replay(records, config);
  EXPECT_FALSE(report.survived);
  EXPECT_EQ(report.inferences_served, 0u);
  EXPECT_NEAR(report.time_to_empty_s, 10.0, 1e-9);

  // With no requests at all, pure idle kills it at capacity/power.
  const BatteryReport idle_only = battery_replay({records[0]}, {.capacity_j = 5.0,
                                                                .idle_power_mw = 1000.0});
  EXPECT_FALSE(idle_only.survived);
  EXPECT_NEAR(idle_only.time_to_empty_s, 5.0, 1e-9);
}

TEST(Battery, PartitionedOutlastsAllEdgePerCharge) {
  // End-to-end: the energy-cheaper deployment serves more inferences from
  // the same battery.
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 10.0);

  auto run_policy = [&](std::size_t option) {
    SimConfig config;
    config.duration_s = 3000.0;
    config.arrival_rate_hz = 2.0;
    config.policy = DispatchPolicy::kFixed;
    config.fixed_option = option;
    EdgeCloudSystem system(eval.options, wifi, flat_trace(10.0), config);
    system.run();
    BatteryConfig battery;
    battery.capacity_j = 1500.0;  // small pack: dies within the run
    battery.idle_power_mw = 200.0;
    return battery_replay(system.records(), battery);
  };
  std::size_t edge_index = 0;
  std::size_t split_index = 0;
  for (std::size_t i = 0; i < eval.options.size(); ++i) {
    if (eval.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
    if (eval.options[i].kind == core::DeploymentKind::kPartitioned &&
        eval.options[i].label(alexnet) == "split@pool5") {
      split_index = i;
    }
  }
  const BatteryReport edge_report = run_policy(edge_index);
  const BatteryReport split_report = run_policy(split_index);
  ASSERT_FALSE(edge_report.survived);
  ASSERT_FALSE(split_report.survived);
  EXPECT_GT(split_report.inferences_served, edge_report.inferences_served);
}

TEST(Battery, Validation) {
  EXPECT_THROW(battery_replay({}, {.capacity_j = 0.0}), std::invalid_argument);
  std::vector<RequestRecord> unordered(2);
  unordered[0].completion_s = 10.0;
  unordered[1].completion_s = 5.0;
  EXPECT_THROW(battery_replay(unordered, {}), std::invalid_argument);
}

TEST(CommConditions, FromConditionsMatchesDirectConstruction) {
  comm::NetworkConditions conditions;
  conditions.technology = comm::WirelessTechnology::kLte;
  conditions.round_trip_ms = 12.0;
  const comm::CommModel from = comm::CommModel::from_conditions(conditions);
  const comm::CommModel direct(comm::WirelessTechnology::kLte, 12.0);
  EXPECT_DOUBLE_EQ(from.round_trip_ms(), direct.round_trip_ms());
  EXPECT_DOUBLE_EQ(from.tx_energy_mj(1000, 5.0), direct.tx_energy_mj(1000, 5.0));
}

TEST_F(SystemTest, Deterministic) {
  SimConfig config;
  config.duration_s = 50.0;
  config.arrival_rate_hz = 3.0;
  config.seed = 17;
  EdgeCloudSystem a(evaluation_.options, wifi_, flat_trace(10.0), config);
  EdgeCloudSystem b(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats sa = a.run();
  const SimStats sb = b.run();
  EXPECT_EQ(sa.completed, sb.completed);
  EXPECT_DOUBLE_EQ(sa.total_energy_mj, sb.total_energy_mj);
  EXPECT_DOUBLE_EQ(sa.p99_latency_ms, sb.p99_latency_ms);
}

}  // namespace
}  // namespace lens::sim
