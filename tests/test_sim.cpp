// Tests for the discrete-event edge-cloud simulator.

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/presets.hpp"
#include "par/runtime.hpp"
#include "perf/predictor.hpp"
#include "sim/battery.hpp"
#include "sim/fault.hpp"
#include "sim/link.hpp"
#include "sim/system.hpp"
#include "sim/timeline.hpp"

namespace lens::sim {
namespace {

TEST(Timeline, FifoQueueing) {
  ResourceTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.schedule(0.0, 1.0), 1.0);
  // Arrives while busy: queues behind the first job.
  EXPECT_DOUBLE_EQ(timeline.schedule(0.5, 1.0), 2.0);
  // Arrives after idle gap: starts immediately.
  EXPECT_DOUBLE_EQ(timeline.schedule(5.0, 0.5), 5.5);
  EXPECT_DOUBLE_EQ(timeline.total_busy(), 2.5);
  EXPECT_EQ(timeline.jobs(), 3u);
}

TEST(Timeline, Validation) {
  ResourceTimeline timeline;
  EXPECT_THROW(timeline.schedule(0.0, -1.0), std::invalid_argument);
  timeline.schedule(5.0, 1.0);
  EXPECT_THROW(timeline.schedule(1.0, 1.0), std::invalid_argument);  // out of order
}

comm::ThroughputTrace flat_trace(double mbps, double interval_s = 100.0) {
  comm::ThroughputTrace trace;
  trace.samples_mbps = {mbps};
  trace.interval_s = interval_s;
  return trace;
}

TEST(Link, ConstantRateMatchesClosedForm) {
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kWifi);
  TimeVaryingLink link(flat_trace(8.0), radio);
  // 1 MB at 8 Mbps = 8e6 bits / 8e6 bit/s = 1 s.
  const TransferResult r = link.transfer(10.0, 1000000);
  EXPECT_NEAR(r.end_s, 11.0, 1e-9);
  EXPECT_NEAR(r.energy_mj, radio.transmit_power_mw(8.0) * 1.0, 1e-6);  // mW*s
}

TEST(Link, RateChangeIsIntegrated) {
  // 10 Mbps for 1 s, then 2 Mbps: 1.5 MB = 12e6 bits. First second carries
  // 10e6 bits; remaining 2e6 bits at 2 Mbps take another 1 s.
  comm::ThroughputTrace trace;
  trace.samples_mbps = {10.0, 2.0};
  trace.interval_s = 1.0;
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kLte);
  TimeVaryingLink link(trace, radio);
  const TransferResult r = link.transfer(0.0, 1500000);
  EXPECT_NEAR(r.end_s, 2.0, 1e-9);
  const double expected_energy =
      radio.transmit_power_mw(10.0) * 1.0 + radio.transmit_power_mw(2.0) * 1.0;
  EXPECT_NEAR(r.energy_mj, expected_energy, 1e-6);
}

TEST(Link, TraceWrapsAround) {
  TimeVaryingLink link(flat_trace(4.0, 1.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  EXPECT_DOUBLE_EQ(link.throughput_at(0.5), 4.0);
  EXPECT_DOUBLE_EQ(link.throughput_at(123.7), 4.0);
}

TEST(Link, FifoSerialization) {
  TimeVaryingLink link(flat_trace(8.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  const TransferResult first = link.schedule(0.0, 1000000);   // 1 s
  const TransferResult second = link.schedule(0.2, 1000000);  // queued
  EXPECT_NEAR(first.end_s, 1.0, 1e-9);
  EXPECT_NEAR(second.start_s, 1.0, 1e-9);
  EXPECT_NEAR(second.end_s, 2.0, 1e-9);
  EXPECT_NEAR(link.total_busy(), 2.0, 1e-9);
}

TEST(Link, ZeroBytesInstantaneous) {
  TimeVaryingLink link(flat_trace(8.0), comm::power_model_for(comm::WirelessTechnology::kWifi));
  const TransferResult r = link.schedule(3.0, 0);
  EXPECT_DOUBLE_EQ(r.end_s, 3.0);
  EXPECT_DOUBLE_EQ(r.energy_mj, 0.0);
}

TEST(Link, Validation) {
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kWifi);
  comm::ThroughputTrace empty;
  EXPECT_THROW(TimeVaryingLink(empty, radio), std::invalid_argument);
  comm::ThroughputTrace bad = flat_trace(8.0);
  bad.samples_mbps[0] = -1.0;
  EXPECT_THROW(TimeVaryingLink(bad, radio), std::invalid_argument);
  TimeVaryingLink link(flat_trace(8.0), radio);
  EXPECT_THROW(link.throughput_at(-1.0), std::invalid_argument);
  EXPECT_THROW(link.schedule(-1.0, 10), std::invalid_argument);
}

// ---- full system ------------------------------------------------------------

class SystemTest : public ::testing::Test {
 protected:
  SystemTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_),
        alexnet_(dnn::alexnet()),
        evaluation_(evaluator_.evaluate(alexnet_, 10.0)) {}

  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  core::DeploymentEvaluator evaluator_;
  dnn::Architecture alexnet_;
  core::DeploymentEvaluation evaluation_;
};

TEST_F(SystemTest, LightLoadLatencyMatchesIsolatedCost) {
  // At 1 req/s the edge (32 ms service) never queues: per-request latency
  // equals the isolated All-Edge latency.
  SimConfig config;
  config.duration_s = 200.0;
  config.arrival_rate_hz = 1.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.completed, 150u);
  EXPECT_NEAR(stats.p50_latency_ms, evaluation_.all_edge().latency_ms, 1.0);
  EXPECT_LT(stats.edge_utilization, 0.1);
}

TEST_F(SystemTest, OverloadQueuesAndLatencyExplodes) {
  // All-Edge serves ~32 req/s at most; at 60 req/s the queue grows without
  // bound and tail latency dwarfs the isolated cost.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 60.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.p99_latency_ms, 20.0 * evaluation_.all_edge().latency_ms);
  EXPECT_GT(stats.edge_utilization, 0.9);
}

TEST_F(SystemTest, PartitionedSustainsHigherLoadThanAllEdge) {
  // The pool5 split occupies the edge for only ~16 ms vs ~32 ms All-Edge,
  // so at 45 req/s the split's tail latency is far lower.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  std::size_t split_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
    if (evaluation_.options[i].kind == core::DeploymentKind::kPartitioned &&
        evaluation_.options[i].label(alexnet_) == "split@pool5") {
      split_index = i;
    }
  }
  config.fixed_option = edge_index;
  EdgeCloudSystem all_edge(evaluation_.options, wifi_, flat_trace(30.0), config);
  config.fixed_option = split_index;
  EdgeCloudSystem split(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats edge_stats = all_edge.run();
  const SimStats split_stats = split.run();
  EXPECT_LT(split_stats.p99_latency_ms, 0.5 * edge_stats.p99_latency_ms);
}

TEST_F(SystemTest, EnergyAccountingIsConsistent) {
  SimConfig config;
  config.duration_s = 100.0;
  config.arrival_rate_hz = 2.0;
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = 0;  // All-Cloud
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  // All-Cloud at a steady 10 Mbps: per-inference energy equals the
  // closed-form transfer energy.
  const double expected = wifi_.tx_energy_mj(evaluation_.all_cloud().tx_bytes, 10.0);
  EXPECT_NEAR(stats.energy_per_inference_mj, expected, 0.02 * expected);
}

TEST_F(SystemTest, DynamicPolicyTracksThroughput) {
  // Trace alternates between fast and very slow: the dynamic policy should
  // use different options across time, and beat the worse fixed policy.
  comm::ThroughputTrace trace;
  trace.samples_mbps = {30.0, 0.3};
  trace.interval_s = 20.0;
  SimConfig config;
  config.duration_s = 120.0;
  config.arrival_rate_hz = 2.0;
  config.policy = DispatchPolicy::kDynamic;
  config.metric = runtime::OptimizeFor::kLatency;
  EdgeCloudSystem system(evaluation_.options, wifi_, trace, config);
  const SimStats stats = system.run();
  bool used_multiple = false;
  for (const RequestRecord& r : system.records()) {
    if (r.option != system.records().front().option) {
      used_multiple = true;
      break;
    }
  }
  EXPECT_TRUE(used_multiple);
  EXPECT_GT(stats.completed, 0u);
}

TEST_F(SystemTest, QueueAwareBeatsFixedUnderOverload) {
  // At 45 req/s the All-Edge queue explodes; spreading load across the edge
  // and the link keeps the tail bounded.
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = edge_index;
  EdgeCloudSystem fixed(evaluation_.options, wifi_, flat_trace(30.0), config);
  config.policy = DispatchPolicy::kQueueAware;
  EdgeCloudSystem balanced(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats fixed_stats = fixed.run();
  const SimStats balanced_stats = balanced.run();
  EXPECT_LT(balanced_stats.p99_latency_ms, 0.5 * fixed_stats.p99_latency_ms);
  // Both resources see real work.
  EXPECT_GT(balanced_stats.edge_utilization, 0.05);
  EXPECT_GT(balanced_stats.link_utilization, 0.05);
}

TEST_F(SystemTest, QueueAwareMatchesBestChoiceWhenIdle) {
  // With no queueing pressure, the queue-aware estimate reduces to the
  // isolated latency comparison, i.e. the latency-best option.
  SimConfig config;
  config.duration_s = 100.0;
  config.arrival_rate_hz = 0.5;
  config.policy = DispatchPolicy::kQueueAware;
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  system.run();
  for (const RequestRecord& r : system.records()) {
    EXPECT_EQ(r.option, evaluation_.best_latency_option);
  }
}

TEST_F(SystemTest, Validation) {
  SimConfig config;
  EXPECT_THROW(EdgeCloudSystem({}, wifi_, flat_trace(10.0), config), std::invalid_argument);
  config.fixed_option = 99;
  EXPECT_THROW(EdgeCloudSystem(evaluation_.options, wifi_, flat_trace(10.0), config),
               std::invalid_argument);
  config = {};
  config.duration_s = -1.0;
  EXPECT_THROW(EdgeCloudSystem(evaluation_.options, wifi_, flat_trace(10.0), config),
               std::invalid_argument);
  config = {};
  EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(10.0), config);
  system.run();
  EXPECT_THROW(system.run(), std::logic_error);
}

TEST_F(SystemTest, DeadlineAccounting) {
  SimConfig config;
  config.duration_s = 60.0;
  config.arrival_rate_hz = 45.0;  // All-Edge overloads at this rate
  config.policy = DispatchPolicy::kFixed;
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < evaluation_.options.size(); ++i) {
    if (evaluation_.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
  }
  config.fixed_option = edge_index;
  config.deadline_ms = 100.0;
  EdgeCloudSystem overloaded(evaluation_.options, wifi_, flat_trace(30.0), config);
  const SimStats stats = overloaded.run();
  EXPECT_GT(stats.deadline_violations, 0u);
  EXPECT_GT(stats.violation_rate, 0.3);
  EXPECT_LE(stats.violation_rate, 1.0);

  // Light load: no violations.
  config.arrival_rate_hz = 1.0;
  EdgeCloudSystem light(evaluation_.options, wifi_, flat_trace(30.0), config);
  EXPECT_DOUBLE_EQ(light.run().violation_rate, 0.0);
}

TEST(Battery, HandComputedDrain) {
  // Two requests of 500 J each at t=10 and t=20, idle 1 W, capacity 2000 J:
  // at t=20 spent = 20 J idle + 1000 J inference -> survives with margin.
  std::vector<RequestRecord> records(2);
  records[0].completion_s = 10.0;
  records[0].energy_mj = 500.0 * 1e3;
  records[1].completion_s = 20.0;
  records[1].energy_mj = 500.0 * 1e3;
  BatteryConfig config;
  config.capacity_j = 2000.0;
  config.idle_power_mw = 1000.0;
  const BatteryReport report = battery_replay(records, config);
  EXPECT_TRUE(report.survived);
  EXPECT_EQ(report.inferences_served, 2u);
  EXPECT_NEAR(report.inference_energy_j, 1000.0, 1e-9);
  EXPECT_NEAR(report.idle_energy_j, 20.0, 1e-9);
  EXPECT_NEAR(report.mean_power_w, 1020.0 / 20.0, 1e-9);
}

TEST(Battery, DiesMidStreamAtTheRightTime) {
  // Idle 1 W, capacity 15 J, first request at t=10 costs 10 J: idle leaves
  // 5 J at t=10, the request drains it -> dead at t=10, 0 served... the
  // request itself empties the battery exactly, so it is not served.
  std::vector<RequestRecord> records(2);
  records[0].completion_s = 10.0;
  records[0].energy_mj = 10.0 * 1e3;
  records[1].completion_s = 20.0;
  records[1].energy_mj = 10.0 * 1e3;
  BatteryConfig config;
  config.capacity_j = 15.0;
  config.idle_power_mw = 1000.0;
  const BatteryReport report = battery_replay(records, config);
  EXPECT_FALSE(report.survived);
  EXPECT_EQ(report.inferences_served, 0u);
  EXPECT_NEAR(report.time_to_empty_s, 10.0, 1e-9);

  // With no requests at all, pure idle kills it at capacity/power.
  const BatteryReport idle_only = battery_replay({records[0]}, {.capacity_j = 5.0,
                                                                .idle_power_mw = 1000.0});
  EXPECT_FALSE(idle_only.survived);
  EXPECT_NEAR(idle_only.time_to_empty_s, 5.0, 1e-9);
}

TEST(Battery, PartitionedOutlastsAllEdgePerCharge) {
  // End-to-end: the energy-cheaper deployment serves more inferences from
  // the same battery.
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 10.0);

  auto run_policy = [&](std::size_t option) {
    SimConfig config;
    config.duration_s = 3000.0;
    config.arrival_rate_hz = 2.0;
    config.policy = DispatchPolicy::kFixed;
    config.fixed_option = option;
    EdgeCloudSystem system(eval.options, wifi, flat_trace(10.0), config);
    system.run();
    BatteryConfig battery;
    battery.capacity_j = 1500.0;  // small pack: dies within the run
    battery.idle_power_mw = 200.0;
    return battery_replay(system.records(), battery);
  };
  std::size_t edge_index = 0;
  std::size_t split_index = 0;
  for (std::size_t i = 0; i < eval.options.size(); ++i) {
    if (eval.options[i].kind == core::DeploymentKind::kAllEdge) edge_index = i;
    if (eval.options[i].kind == core::DeploymentKind::kPartitioned &&
        eval.options[i].label(alexnet) == "split@pool5") {
      split_index = i;
    }
  }
  const BatteryReport edge_report = run_policy(edge_index);
  const BatteryReport split_report = run_policy(split_index);
  ASSERT_FALSE(edge_report.survived);
  ASSERT_FALSE(split_report.survived);
  EXPECT_GT(split_report.inferences_served, edge_report.inferences_served);
}

TEST(Battery, Validation) {
  EXPECT_THROW(battery_replay({}, {.capacity_j = 0.0}), std::invalid_argument);
  std::vector<RequestRecord> unordered(2);
  unordered[0].completion_s = 10.0;
  unordered[1].completion_s = 5.0;
  EXPECT_THROW(battery_replay(unordered, {}), std::invalid_argument);
}

TEST(CommConditions, FromConditionsMatchesDirectConstruction) {
  comm::NetworkConditions conditions;
  conditions.technology = comm::WirelessTechnology::kLte;
  conditions.round_trip_ms = 12.0;
  const comm::CommModel from = comm::CommModel::from_conditions(conditions);
  const comm::CommModel direct(comm::WirelessTechnology::kLte, 12.0);
  EXPECT_DOUBLE_EQ(from.round_trip_ms(), direct.round_trip_ms());
  EXPECT_DOUBLE_EQ(from.tx_energy_mj(1000, 5.0), direct.tx_energy_mj(1000, 5.0));
}

// ---- fault injection --------------------------------------------------------

TEST(Timeline, UnorderedScheduleCoexistsWithFifo) {
  ResourceTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.schedule(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(timeline.schedule(2.0, 1.0), 3.0);
  // A fallback re-execution lands before the last FIFO arrival: allowed via
  // the unordered entry point, queued behind the busy horizon.
  EXPECT_DOUBLE_EQ(timeline.schedule_unordered(1.0, 0.5), 3.5);
  EXPECT_THROW(timeline.schedule_unordered(0.0, -1.0), std::invalid_argument);
  // The FIFO contract of schedule() is untouched by unordered insertions.
  EXPECT_THROW(timeline.schedule(1.0, 1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(timeline.schedule(4.0, 1.0), 5.0);
  EXPECT_EQ(timeline.jobs(), 4u);
}

TEST(FaultSchedule, GenerationIsDeterministicAndClassIndependent) {
  FaultScheduleConfig config;
  config.seed = 42;
  config.horizon_s = 500.0;
  config.link_outage_rate_hz = 1.0 / 30.0;
  const FaultSchedule once = FaultSchedule::generate(config);
  const FaultSchedule twice = FaultSchedule::generate(config);
  ASSERT_FALSE(once.empty());
  ASSERT_EQ(once.episodes().size(), twice.episodes().size());
  for (std::size_t i = 0; i < once.episodes().size(); ++i) {
    EXPECT_DOUBLE_EQ(once.episodes()[i].start_s, twice.episodes()[i].start_s);
    EXPECT_DOUBLE_EQ(once.episodes()[i].end_s, twice.episodes()[i].end_s);
  }
  // Enabling another class must not perturb the link-outage substream.
  config.cloud_outage_rate_hz = 1.0 / 40.0;
  config.rtt_spike_rate_hz = 1.0 / 50.0;
  const FaultSchedule mixed = FaultSchedule::generate(config);
  EXPECT_GT(mixed.count(FaultClass::kCloudOutage), 0u);
  ASSERT_EQ(mixed.count(FaultClass::kLinkOutage), once.count(FaultClass::kLinkOutage));
  std::vector<FaultEpisode> link_only;
  std::vector<FaultEpisode> link_mixed;
  for (const FaultEpisode& e : once.episodes()) {
    if (e.fault == FaultClass::kLinkOutage) link_only.push_back(e);
  }
  for (const FaultEpisode& e : mixed.episodes()) {
    if (e.fault == FaultClass::kLinkOutage) link_mixed.push_back(e);
  }
  for (std::size_t i = 0; i < link_only.size(); ++i) {
    EXPECT_DOUBLE_EQ(link_only[i].start_s, link_mixed[i].start_s);
    EXPECT_DOUBLE_EQ(link_only[i].end_s, link_mixed[i].end_s);
    EXPECT_DOUBLE_EQ(link_only[i].magnitude, link_mixed[i].magnitude);
  }
}

TEST(FaultSchedule, Validation) {
  FaultScheduleConfig config;
  config.link_outage_rate_hz = 0.1;
  EXPECT_THROW(FaultSchedule::generate(config), std::invalid_argument);  // no horizon
  config.horizon_s = 100.0;
  config.link_outage_depth = 1.5;  // multiplier must stay in (0, 1]
  EXPECT_THROW(FaultSchedule::generate(config), std::invalid_argument);
  EXPECT_THROW(FaultSchedule({{FaultClass::kCloudOutage, 5.0, 5.0, 0.0}}),
               std::invalid_argument);  // empty interval
  EXPECT_THROW(FaultSchedule({{FaultClass::kEdgeSlowdown, 0.0, 1.0, 0.5}}),
               std::invalid_argument);  // slowdown < 1
}

TEST(FaultInjector, ScriptedQueriesAndDegradedTime) {
  const FaultSchedule schedule({
      {FaultClass::kLinkOutage, 1.0, 3.0, 0.25},
      {FaultClass::kCloudOutage, 2.0, 4.0, 0.0},
      {FaultClass::kRttSpike, 10.0, 12.0, 150.0},
      {FaultClass::kEdgeSlowdown, 20.0, 21.0, 2.5},
  });
  const FaultInjector faults(schedule);
  EXPECT_DOUBLE_EQ(faults.link_factor(0.5), 1.0);
  EXPECT_DOUBLE_EQ(faults.link_factor(1.5), 0.25);
  EXPECT_DOUBLE_EQ(faults.link_factor(3.0), 1.0);  // half-open interval
  EXPECT_FALSE(faults.cloud_unavailable(1.9));
  EXPECT_TRUE(faults.cloud_unavailable(2.0));
  EXPECT_DOUBLE_EQ(faults.cloud_recovery_time(3.0), 4.0);
  EXPECT_DOUBLE_EQ(faults.cloud_recovery_time(5.0), 5.0);
  EXPECT_DOUBLE_EQ(faults.rtt_extra_ms(11.0), 150.0);
  EXPECT_DOUBLE_EQ(faults.rtt_extra_ms(12.5), 0.0);
  EXPECT_DOUBLE_EQ(faults.edge_slowdown(20.5), 2.5);
  EXPECT_DOUBLE_EQ(faults.edge_slowdown(0.0), 1.0);
  EXPECT_DOUBLE_EQ(faults.next_link_boundary(0.0), 1.0);
  EXPECT_DOUBLE_EQ(faults.next_link_boundary(1.0), 3.0);
  EXPECT_TRUE(std::isinf(faults.next_link_boundary(3.0)));
  // Union of [1,4), [10,12), [20,21) clipped to [0,15): 3 + 2 = 5 s.
  EXPECT_DOUBLE_EQ(faults.degraded_time(15.0), 5.0);
  EXPECT_DOUBLE_EQ(faults.degraded_time(50.0), 6.0);
  // Default-constructed injector is always healthy.
  const FaultInjector healthy;
  EXPECT_DOUBLE_EQ(healthy.link_factor(7.0), 1.0);
  EXPECT_FALSE(healthy.cloud_unavailable(7.0));
  EXPECT_TRUE(std::isinf(healthy.next_link_boundary(0.0)));
  EXPECT_DOUBLE_EQ(healthy.degraded_time(100.0), 0.0);
}

TEST(Link, FadeIsIntegratedAcrossEpisodeBoundaries) {
  // Flat 8 Mbps with a half-depth fade over [1 s, 2 s): a 12e6-bit payload
  // carries 8e6 bits in [0,1), 4e6 bits in [1,2) -> done exactly at 2 s.
  const FaultSchedule schedule({{FaultClass::kLinkOutage, 1.0, 2.0, 0.5}});
  const FaultInjector faults(schedule);
  const comm::RadioPowerModel radio = comm::power_model_for(comm::WirelessTechnology::kWifi);
  TimeVaryingLink link(flat_trace(8.0), radio, &faults);
  EXPECT_DOUBLE_EQ(link.throughput_at(0.5), 8.0);
  EXPECT_DOUBLE_EQ(link.throughput_at(1.5), 4.0);
  const TransferResult r = link.transfer(0.0, 1500000);
  EXPECT_NEAR(r.end_s, 2.0, 1e-9);
  const double expected_energy =
      radio.transmit_power_mw(8.0) * 1.0 + radio.transmit_power_mw(4.0) * 1.0;
  EXPECT_NEAR(r.energy_mj, expected_energy, 1e-6);
}

TEST_F(SystemTest, CloudOutageDegradesGracefullyUnderDynamicDispatch) {
  // The acceptance scenario: a scripted 20 s cloud blackout in a 40 s run.
  // At 30 Mbps the latency-best option transmits, so the outage actually
  // threatens the request path.
  SimConfig config;
  config.duration_s = 40.0;
  config.arrival_rate_hz = 5.0;
  config.metric = runtime::OptimizeFor::kLatency;
  config.policy = DispatchPolicy::kDynamic;
  SimConfig faulty = config;
  faulty.faults.scripted.push_back({FaultClass::kCloudOutage, 5.0, 25.0, 0.0});

  EdgeCloudSystem clean_system(evaluation_.options, wifi_, flat_trace(30.0), config);
  EdgeCloudSystem faulty_system(evaluation_.options, wifi_, flat_trace(30.0), faulty);
  const SimStats clean = clean_system.run();
  const SimStats degraded = faulty_system.run();

  // Dynamic dispatch routes around the blackout: nothing is dropped, no
  // request ever waits out a timeout, but the forced All-Edge window costs
  // real latency.
  EXPECT_DOUBLE_EQ(degraded.availability, 1.0);
  EXPECT_EQ(degraded.dropped, 0u);
  EXPECT_EQ(degraded.timeouts, 0u);
  EXPECT_GT(degraded.mean_latency_ms, 1.05 * clean.mean_latency_ms);
  EXPECT_GT(degraded.degraded_time_s, 19.0);
  EXPECT_EQ(degraded.cloud_outage_episodes, 1u);
  bool fell_back_to_edge = false;
  for (const RequestRecord& r : faulty_system.records()) {
    if (r.arrival_s >= 5.0 && r.arrival_s < 25.0) {
      fell_back_to_edge |= evaluation_.options[r.option].tx_bytes == 0;
      EXPECT_EQ(r.timeouts, 0u);
    }
  }
  EXPECT_TRUE(fell_back_to_edge);

  // A fixed pin on the latency-best (transmitting) option must ride the
  // blackout out via timeout -> retry -> edge fallback. Same seed, same
  // arrivals; only dispatch differs.
  SimConfig pinned = faulty;
  pinned.policy = DispatchPolicy::kFixed;
  pinned.fixed_option = evaluator_.evaluate(alexnet_, 30.0).best_latency_option;
  ASSERT_GT(evaluation_.options[pinned.fixed_option].tx_bytes, 0u);
  EdgeCloudSystem pinned_system(evaluation_.options, wifi_, flat_trace(30.0), pinned);
  const SimStats suffered = pinned_system.run();
  EXPECT_GT(suffered.timeouts, 0u);
  EXPECT_GT(suffered.retries, 0u);
  EXPECT_GT(suffered.fallback_executions, 0u);
  EXPECT_DOUBLE_EQ(suffered.availability, 1.0);  // fallback saves every request
  EXPECT_GT(suffered.mean_latency_ms, degraded.mean_latency_ms);
}

TEST_F(SystemTest, OutageWithoutEdgeFallbackDropsRequests) {
  // Only the All-Cloud option exists: during the blackout there is nothing
  // to fall back to, so retries exhaust and requests drop.
  SimConfig config;
  config.duration_s = 30.0;
  config.arrival_rate_hz = 5.0;
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = 0;
  config.max_retries = 1;
  config.faults.scripted.push_back({FaultClass::kCloudOutage, 5.0, 28.0, 0.0});
  std::vector<core::DeploymentOption> only_cloud = {evaluation_.all_cloud()};
  EdgeCloudSystem system(only_cloud, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LT(stats.availability, 1.0);
  EXPECT_GT(stats.availability, 0.0);  // pre/post-blackout traffic succeeds
  EXPECT_EQ(stats.completed + stats.dropped, system.records().size());
}

TEST_F(SystemTest, RetriesRecoverAfterShortOutage) {
  // A 1 s blackout with generous retries: every request that times out
  // eventually lands once the cloud returns — nothing dropped.
  SimConfig config;
  config.duration_s = 3.0;
  config.arrival_rate_hz = 10.0;
  config.policy = DispatchPolicy::kFixed;
  config.fixed_option = 0;
  config.timeout_ms = 200.0;
  config.retry_backoff_ms = 100.0;
  config.max_retries = 8;
  config.faults.scripted.push_back({FaultClass::kCloudOutage, 0.0, 1.0, 0.0});
  std::vector<core::DeploymentOption> only_cloud = {evaluation_.all_cloud()};
  EdgeCloudSystem system(only_cloud, wifi_, flat_trace(10.0), config);
  const SimStats stats = system.run();
  EXPECT_GT(stats.timeouts, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.fallback_executions, 0u);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

TEST_F(SystemTest, RetryJitterDesynchronizesDevicesSharingAnOutage) {
  // Two devices ride out the same scripted blackout. With jitter enabled
  // their backoff draws come from per-device substreams, so their retry
  // timelines diverge — the thundering herd breaks up. With jitter off the
  // device identity is inert and the runs stay bitwise identical.
  const auto run_device = [&](std::uint64_t device_id, double jitter) {
    SimConfig config;
    config.duration_s = 5.0;
    config.arrival_rate_hz = 10.0;
    config.policy = DispatchPolicy::kFixed;
    config.fixed_option = 0;
    config.timeout_ms = 200.0;
    config.retry_backoff_ms = 100.0;
    config.max_retries = 8;
    config.retry_jitter = jitter;
    config.device_id = device_id;
    config.faults.scripted.push_back({FaultClass::kCloudOutage, 0.0, 1.5, 0.0});
    std::vector<core::DeploymentOption> only_cloud = {evaluation_.all_cloud()};
    EdgeCloudSystem system(only_cloud, wifi_, flat_trace(10.0), config);
    return system.run();
  };

  const SimStats a = run_device(1, 0.5);
  const SimStats b = run_device(2, 0.5);
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(b.retries, 0u);
  // Different substreams -> different post-outage landing times.
  EXPECT_NE(a.mean_latency_ms, b.mean_latency_ms);

  const SimStats c = run_device(1, 0.0);
  const SimStats d = run_device(2, 0.0);
  EXPECT_EQ(c.completed, d.completed);
  EXPECT_EQ(c.retries, d.retries);
  EXPECT_EQ(c.mean_latency_ms, d.mean_latency_ms);  // bitwise
  EXPECT_EQ(c.total_energy_mj, d.total_energy_mj);  // bitwise
}

TEST_F(SystemTest, FaultyStatsAreBitIdenticalAcrossThreadCounts) {
  const auto run_with_threads = [&](std::size_t threads) {
    par::set_max_threads(threads);
    SimConfig config;
    config.duration_s = 60.0;
    config.arrival_rate_hz = 8.0;
    config.seed = 99;
    config.metric = runtime::OptimizeFor::kLatency;
    config.policy = DispatchPolicy::kDynamic;
    config.faults.seed = 99;
    config.faults.link_outage_rate_hz = 1.0 / 30.0;
    config.faults.cloud_outage_rate_hz = 1.0 / 45.0;
    config.faults.cloud_outage_mean_s = 5.0;
    config.faults.rtt_spike_rate_hz = 1.0 / 40.0;
    config.faults.edge_slowdown_rate_hz = 1.0 / 50.0;
    EdgeCloudSystem system(evaluation_.options, wifi_, flat_trace(30.0), config);
    return system.run();
  };
  const SimStats one = run_with_threads(1);
  const SimStats four = run_with_threads(4);
  par::set_max_threads(0);  // restore hardware default for other tests
  EXPECT_EQ(one.completed, four.completed);
  EXPECT_EQ(one.timeouts, four.timeouts);
  EXPECT_EQ(one.retries, four.retries);
  EXPECT_EQ(one.fallback_executions, four.fallback_executions);
  EXPECT_EQ(one.dropped, four.dropped);
  EXPECT_EQ(one.mean_latency_ms, four.mean_latency_ms);      // bitwise
  EXPECT_EQ(one.total_energy_mj, four.total_energy_mj);      // bitwise
  EXPECT_EQ(one.p99_latency_ms, four.p99_latency_ms);        // bitwise
  EXPECT_EQ(one.degraded_time_s, four.degraded_time_s);      // bitwise
}

TEST_F(SystemTest, Deterministic) {
  SimConfig config;
  config.duration_s = 50.0;
  config.arrival_rate_hz = 3.0;
  config.seed = 17;
  EdgeCloudSystem a(evaluation_.options, wifi_, flat_trace(10.0), config);
  EdgeCloudSystem b(evaluation_.options, wifi_, flat_trace(10.0), config);
  const SimStats sa = a.run();
  const SimStats sb = b.run();
  EXPECT_EQ(sa.completed, sb.completed);
  EXPECT_DOUBLE_EQ(sa.total_energy_mj, sb.total_energy_mj);
  EXPECT_DOUBLE_EQ(sa.p99_latency_ms, sb.p99_latency_ms);
}

}  // namespace
}  // namespace lens::sim
