// Tests for the acquisition layer and the MOBO engine (paper Alg. 2).

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "opt/acquisition.hpp"
#include "opt/hypervolume.hpp"
#include "opt/mobo.hpp"

namespace lens::opt {
namespace {

std::vector<GaussianProcess> fit_single_objective_gp(const std::vector<double>& centers) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double c : centers) {
    x.push_back({c});
    y.push_back((c - 0.5) * (c - 0.5));  // minimum at 0.5
  }
  GpConfig config;
  config.tune_hyperparameters = false;
  config.length_scale = 0.3;
  config.noise_variance = 1e-6;
  std::vector<GaussianProcess> gps;
  gps.emplace_back(config);
  gps.front().fit(x, y);
  return gps;
}

TEST(Acquisition, RejectsEmptyInput) {
  std::vector<GaussianProcess> gps;
  ObjectiveNormalizer norm(1);
  std::mt19937_64 rng(1);
  EXPECT_THROW(select_candidate(gps, {{0.5}}, norm, {}, rng), std::invalid_argument);
  gps.emplace_back();
  EXPECT_THROW(select_candidate(gps, {}, norm, {}, rng), std::invalid_argument);
}

TEST(Acquisition, MeanScalarizedPicksPosteriorMinimum) {
  auto gps = fit_single_objective_gp({0.0, 0.2, 0.4, 0.6, 0.8, 1.0});
  ObjectiveNormalizer norm(1);
  norm.observe({0.0});
  norm.observe({0.25});
  const std::vector<std::vector<double>> pool = {{0.05}, {0.5}, {0.95}};
  AcquisitionConfig config;
  config.kind = AcquisitionKind::kMeanScalarized;
  std::mt19937_64 rng(7);
  EXPECT_EQ(select_candidate(gps, pool, norm, config, rng), 1u);
}

TEST(Acquisition, ThompsonUsuallyPicksGoodRegion) {
  auto gps = fit_single_objective_gp({0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0});
  ObjectiveNormalizer norm(1);
  norm.observe({0.0});
  norm.observe({0.25});
  const std::vector<std::vector<double>> pool = {{0.02}, {0.5}, {0.98}};
  AcquisitionConfig config;  // Thompson
  std::mt19937_64 rng(11);
  int picked_center = 0;
  for (int i = 0; i < 50; ++i) {
    if (select_candidate(gps, pool, norm, config, rng) == 1u) ++picked_center;
  }
  EXPECT_GT(picked_center, 30);  // exploitation dominates, exploration allowed
}

TEST(Acquisition, LcbPrefersUncertainWhenMeansTie) {
  // Train only near x=0 so x=1 has much larger posterior variance.
  GpConfig config;
  config.tune_hyperparameters = false;
  config.length_scale = 0.1;
  std::vector<GaussianProcess> gps;
  gps.emplace_back(config);
  gps.front().fit({{0.0}, {0.05}}, {1.0, 1.0});
  ObjectiveNormalizer norm(1);
  norm.observe({0.0});
  norm.observe({2.0});
  AcquisitionConfig acq;
  acq.kind = AcquisitionKind::kLowerConfidenceBound;
  acq.lcb_beta = 3.0;
  std::mt19937_64 rng(3);
  // Pool: point near data (low variance, mean 1) vs far point (mean ~1
  // = prior mean after normalization, high variance) -> LCB picks far.
  EXPECT_EQ(select_candidate(gps, {{0.02}, {0.95}}, norm, acq, rng), 1u);
}

TEST(Mobo, ValidatesConfiguration) {
  MoboConfig config;
  auto sampler = [](std::mt19937_64&) { return std::vector<double>{0.5}; };
  auto objectives = [](const std::vector<double>&) { return std::vector<double>{0.0}; };
  EXPECT_THROW(MoboEngine(config, 0, sampler, objectives), std::invalid_argument);
  EXPECT_THROW(MoboEngine(config, 1, nullptr, objectives), std::invalid_argument);
  config.num_initial = 0;
  EXPECT_THROW(MoboEngine(config, 1, sampler, objectives), std::invalid_argument);
}

TEST(Mobo, DetectsWrongObjectiveArity) {
  MoboConfig config;
  config.num_initial = 1;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng)};
  };
  auto objectives = [](const std::vector<double>&) {
    return std::vector<double>{0.0, 1.0};  // arity 2, engine expects 1
  };
  MoboEngine engine(config, 1, sampler, objectives);
  EXPECT_THROW(engine.step(1), std::runtime_error);
}

TEST(Mobo, HistoryGrowsAndFrontIsConsistent) {
  MoboConfig config;
  config.num_initial = 5;
  config.num_iterations = 10;
  config.pool_size = 32;
  config.seed = 3;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng), u(rng)};
  };
  auto objectives = [](const std::vector<double>& x) {
    // Classic 2-objective trade-off: distance to (0,0) vs distance to (1,1).
    const double f1 = x[0] * x[0] + x[1] * x[1];
    const double f2 = (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 1.0) * (x[1] - 1.0);
    return std::vector<double>{f1, f2};
  };
  MoboEngine engine(config, 2, sampler, objectives);
  engine.run();
  EXPECT_EQ(engine.history().size(), 15u);
  // Every front member must exist in history with identical objectives.
  for (const ParetoPoint& p : engine.front().points()) {
    ASSERT_LT(p.id, engine.history().size());
    EXPECT_EQ(engine.history()[p.id].objectives, p.objectives);
  }
  // And the front must be mutually non-dominated.
  for (const ParetoPoint& p : engine.front().points()) {
    for (const ParetoPoint& q : engine.front().points()) {
      if (&p != &q) {
        EXPECT_FALSE(dominates(p.objectives, q.objectives));
      }
    }
  }
}

TEST(Mobo, BeatsRandomSearchOnToyProblem) {
  // Compare final hypervolume of MOBO vs pure random sampling with the same
  // evaluation budget on the ZDT1-style problem.
  auto objectives = [](const std::vector<double>& x) {
    const double f1 = x[0];
    const double g = 1.0 + 9.0 * x[1];
    const double f2 = g * (1.0 - std::sqrt(f1 / g));
    return std::vector<double>{f1, f2};
  };
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng), u(rng)};
  };
  const std::vector<double> reference = {1.1, 10.1};

  double mobo_hv_sum = 0.0;
  double random_hv_sum = 0.0;
  for (unsigned seed = 1; seed <= 3; ++seed) {
    MoboConfig config;
    config.num_initial = 10;
    config.num_iterations = 40;
    config.pool_size = 64;
    config.seed = seed;
    MoboEngine engine(config, 2, sampler, objectives);
    engine.run();
    std::vector<std::vector<double>> mobo_points;
    for (const auto& p : engine.front().points()) mobo_points.push_back(p.objectives);
    mobo_hv_sum += hypervolume(mobo_points, reference);

    std::mt19937_64 rng(seed + 100);
    ParetoFront random_front;
    for (std::size_t i = 0; i < 50; ++i) random_front.insert(i, objectives(sampler(rng)));
    std::vector<std::vector<double>> random_points;
    for (const auto& p : random_front.points()) random_points.push_back(p.objectives);
    random_hv_sum += hypervolume(random_points, reference);
  }
  EXPECT_GT(mobo_hv_sum, random_hv_sum);
}

TEST(Mobo, StepIsIncremental) {
  MoboConfig config;
  config.num_initial = 3;
  config.num_iterations = 5;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng)};
  };
  auto objectives = [](const std::vector<double>& x) {
    return std::vector<double>{std::abs(x[0] - 0.3)};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  engine.step(4);
  EXPECT_EQ(engine.history().size(), 4u);
  engine.run();
  EXPECT_EQ(engine.history().size(), 8u);
}

TEST(Mobo, SurvivesExhaustedDiscreteSpace) {
  // A sampler with only 3 distinct points: once all are evaluated, the
  // dedup filter empties the pool and the engine must fall back to repeats
  // instead of hanging or throwing.
  MoboConfig config;
  config.num_initial = 2;
  config.num_iterations = 6;
  config.pool_size = 8;
  config.seed = 2;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_int_distribution<int> d(0, 2);
    return std::vector<double>{static_cast<double>(d(rng)) / 2.0};
  };
  auto objectives = [](const std::vector<double>& x) {
    return std::vector<double>{x[0]};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(engine.history().size(), 8u);
}

TEST(Mobo, IncrementalPosteriorMatchesReferenceBitForBit) {
  // The incremental O(n^2) posterior path (GaussianProcess::observe between
  // tuned refits) must reproduce the pre-refactor refit-every-iteration
  // engine exactly: same proposals, same history, same front — bit for bit.
  auto run = [](bool incremental, std::size_t refit_period) {
    MoboConfig config;
    config.num_initial = 6;
    config.num_iterations = 14;
    config.pool_size = 48;
    config.seed = 9;
    config.refit_period = refit_period;
    config.incremental_posterior = incremental;
    auto sampler = [](std::mt19937_64& rng) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      return std::vector<double>{u(rng), u(rng), u(rng)};
    };
    auto objectives = [](const std::vector<double>& x) {
      const double f1 = x[0] * x[0] + std::sin(5.0 * x[1]) * 0.3 + x[2];
      const double f2 = (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 1.0) * (x[1] - 1.0);
      return std::vector<double>{f1, f2};
    };
    MoboEngine engine(config, 2, sampler, objectives);
    engine.run();
    return engine;
  };

  for (const std::size_t refit_period : {1u, 4u, 100u}) {
    const MoboEngine incremental = run(true, refit_period);
    const MoboEngine reference = run(false, refit_period);
    ASSERT_EQ(incremental.history().size(), reference.history().size())
        << "refit_period=" << refit_period;
    for (std::size_t i = 0; i < incremental.history().size(); ++i) {
      EXPECT_EQ(incremental.history()[i].x, reference.history()[i].x)
          << "refit_period=" << refit_period << " i=" << i;
      EXPECT_EQ(incremental.history()[i].objectives, reference.history()[i].objectives)
          << "refit_period=" << refit_period << " i=" << i;
    }
    ASSERT_EQ(incremental.front().size(), reference.front().size());
    for (std::size_t i = 0; i < incremental.front().points().size(); ++i) {
      EXPECT_EQ(incremental.front().points()[i].id, reference.front().points()[i].id);
      EXPECT_EQ(incremental.front().points()[i].objectives,
                reference.front().points()[i].objectives);
    }
  }
}

TEST(Mobo, DuplicateIndexSkipsEvaluatedCandidates) {
  // Discrete sampler over 4 points: once some are evaluated, the hashed
  // duplicate index must filter them from the acquisition pool with the
  // same accept/reject semantics the old linear history scan had; the
  // exhausted-space fallback still allows repeats.
  MoboConfig config;
  config.num_initial = 2;
  config.num_iterations = 8;
  config.pool_size = 16;
  config.seed = 6;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_int_distribution<int> d(0, 3);
    return std::vector<double>{static_cast<double>(d(rng)) / 3.0};
  };
  auto objectives = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] * (1.0 - x[0])};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(engine.history().size(), 10u);
}

TEST(Mobo, RefitPeriodDoesNotChangeDeterminism) {
  auto make = [](std::size_t refit_period) {
    MoboConfig config;
    config.num_initial = 5;
    config.num_iterations = 8;
    config.seed = 4;
    config.refit_period = refit_period;
    auto sampler = [](std::mt19937_64& rng) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      return std::vector<double>{u(rng), u(rng)};
    };
    auto objectives = [](const std::vector<double>& x) {
      return std::vector<double>{x[0] + x[1], x[0] - x[1]};
    };
    MoboEngine engine(config, 2, sampler, objectives);
    engine.run();
    return engine.history().size();
  };
  // Both refit cadences complete the same budget (cheap sanity that the
  // refit bookkeeping cannot stall or over-run the loop).
  EXPECT_EQ(make(1), 13u);
  EXPECT_EQ(make(100), 13u);
}

TEST(Mobo, SeedObservationsWarmStart) {
  MoboConfig config;
  config.num_initial = 4;
  config.num_iterations = 3;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng)};
  };
  std::size_t evaluations = 0;
  auto objectives = [&](const std::vector<double>& x) {
    ++evaluations;
    return std::vector<double>{std::abs(x[0] - 0.4)};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  engine.seed_observations({{{0.1}, {0.3}}, {{0.9}, {0.5}}});
  EXPECT_EQ(engine.history().size(), 2u);
  engine.run();
  // Seeds consumed 2 of the 4 warm-up slots: only 5 real evaluations.
  EXPECT_EQ(evaluations, 5u);
  EXPECT_EQ(engine.history().size(), 7u);
}

TEST(Mobo, SeedValidation) {
  MoboConfig config;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng)};
  };
  auto objectives = [](const std::vector<double>& x) {
    return std::vector<double>{x[0]};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  EXPECT_THROW(engine.seed_observations({{{0.1}, {0.3, 0.4}}}), std::invalid_argument);
  engine.step(1);
  EXPECT_THROW(engine.seed_observations({{{0.1}, {0.3}}}), std::logic_error);
}

TEST(Mobo, ProgressHookSeesEveryEvaluation) {
  MoboConfig config;
  config.num_initial = 2;
  config.num_iterations = 3;
  auto sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return std::vector<double>{u(rng)};
  };
  auto objectives = [](const std::vector<double>& x) {
    return std::vector<double>{x[0]};
  };
  MoboEngine engine(config, 1, sampler, objectives);
  std::size_t calls = 0;
  engine.set_progress_hook([&](std::size_t index, const Observation&) {
    EXPECT_EQ(index, calls);
    ++calls;
  });
  engine.run();
  EXPECT_EQ(calls, 5u);
}

}  // namespace
}  // namespace lens::opt
