// Unit tests for kernels and Gaussian-process regression (opt/kernel, opt/gp).

#include <cmath>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "opt/gp.hpp"
#include "opt/kernel.hpp"

namespace lens::opt {
namespace {

/// Bit-level double equality (stricter than ==: distinguishes ±0.0).
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

TEST(Kernel, RbfBasicProperties) {
  const RbfKernel k(2.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.0}, {0.0}), 2.0);  // k(x,x) = signal variance
  EXPECT_DOUBLE_EQ(k.variance(), 2.0);
  // Symmetry and decay.
  EXPECT_DOUBLE_EQ(k({0.0}, {1.0}), k({1.0}, {0.0}));
  EXPECT_LT(k({0.0}, {1.0}), k({0.0}, {0.5}));
  // Known value: exp(-0.5 * 1 / 0.25) = exp(-2).
  EXPECT_NEAR(k({0.0}, {1.0}), 2.0 * std::exp(-2.0), 1e-12);
}

TEST(Kernel, Matern52BasicProperties) {
  const Matern52Kernel k(1.0, 1.0);
  EXPECT_DOUBLE_EQ(k({0.0, 0.0}, {0.0, 0.0}), 1.0);
  EXPECT_GT(k({0.0}, {0.1}), k({0.0}, {0.5}));
  EXPECT_GT(k({0.0}, {0.5}), 0.0);
}

TEST(Kernel, RejectsNonPositiveHyperparameters) {
  EXPECT_THROW(RbfKernel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RbfKernel(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Matern52Kernel(-2.0, 1.0), std::invalid_argument);
}

TEST(Kernel, GramMatrixIsSymmetricWithVarianceDiagonal) {
  const Matern52Kernel k(1.5, 0.7);
  const std::vector<std::vector<double>> xs = {{0.0, 0.1}, {0.5, 0.5}, {0.9, 0.2}};
  const Matrix g = k.gram(xs);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g(i, i), 1.5);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(Kernel, SquaredDistanceMismatchThrows) {
  EXPECT_THROW(squared_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

/// Random row set in [0,1]^dim, grid-snapped so the Hamming kernel sees
/// genuine coordinate matches (not just fuzz).
std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t dim,
                                             unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> xs;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(dim);
    for (double& v : xi) v = std::round(unit(rng) * 8.0) / 8.0;
    xs.push_back(std::move(xi));
  }
  return xs;
}

TEST(Kernel, BlockedCrossIntoMatchesScalarOracleBitForBit) {
  // The concrete kernels override cross_into with a blocked four-row sweep;
  // the base-class implementation is the scalar oracle. Sizes cover every
  // tail length mod 4, so both the blocked panels and the scalar tail run.
  const RbfKernel rbf(1.7, 0.6);
  const Matern52Kernel matern(1.0, 0.4);
  const HammingKernel hamming(2.0, 0.3);
  const std::vector<const Kernel*> kernels = {&rbf, &matern, &hamming};
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
    const std::vector<std::vector<double>> xs = random_rows(n, 7, 600 + n);
    const std::vector<double> z = random_rows(1, 7, 700 + n)[0];
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const Kernel& k = *kernels[ki];
      const std::vector<double> blocked = k.cross(xs, z);  // virtual dispatch
      std::vector<double> reference(n);
      k.Kernel::cross_into(xs, z, reference.data());  // scalar base-class oracle
      ASSERT_EQ(blocked.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(same_bits(blocked[i], reference[i]))
            << "kernel=" << ki << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Kernel, BlockedCrossIntoPropagatesDimensionMismatch) {
  // A mismatched row inside a blocked panel must surface the same exception
  // the scalar operator() raises, from the same (lowest) row.
  const RbfKernel k(1.0, 0.5);
  std::vector<std::vector<double>> xs = random_rows(9, 5, 81);
  xs[5].push_back(0.25);  // wrong dimension mid-panel
  std::vector<double> out(xs.size());
  EXPECT_THROW(k.cross_into(xs, random_rows(1, 5, 82)[0], out.data()),
               std::invalid_argument);
}

TEST(Kernel, GramRowMatchesPerElementOperatorBitForBit) {
  const Matern52Kernel k(1.2, 0.5);
  const std::vector<std::vector<double>> xs = random_rows(13, 6, 90);
  const std::vector<double> z = random_rows(1, 6, 91)[0];
  const Kernel::GramRow row = k.gram_row(xs, z);
  ASSERT_EQ(row.cross.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_TRUE(same_bits(row.cross[i], k(xs[i], z))) << "i=" << i;
  }
  EXPECT_TRUE(same_bits(row.self, k(z, z)));
}

TEST(Gp, UnfittedReturnsPrior) {
  GaussianProcess gp;
  const auto p = gp.predict({0.3});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
  EXPECT_FALSE(gp.is_fitted());
}

TEST(Gp, FitRejectsBadInput) {
  GaussianProcess gp;
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Gp, InterpolatesTrainingPointsWithLowNoise) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 1e-8;
  config.length_scale = 0.4;
  GaussianProcess gp(config);
  const std::vector<std::vector<double>> x = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> y;
  for (const auto& xi : x) y.push_back(std::sin(6.0 * xi[0]));
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-4);
    EXPECT_LT(p.variance, 1e-4);
  }
}

TEST(Gp, VarianceGrowsAwayFromData) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.length_scale = 0.2;
  GaussianProcess gp(config);
  gp.fit({{0.0}, {0.1}}, {1.0, 2.0});
  const double var_near = gp.predict({0.05}).variance;
  const double var_far = gp.predict({0.9}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(Gp, TunedFitApproximatesSmoothFunction) {
  GaussianProcess gp;  // tuned
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    const double xi = unit(rng);
    x.push_back({xi});
    y.push_back(3.0 * xi * xi - xi + 0.5);
  }
  gp.fit(x, y);
  double worst = 0.0;
  for (double q = 0.05; q < 1.0; q += 0.1) {
    const double truth = 3.0 * q * q - q + 0.5;
    worst = std::max(worst, std::abs(gp.predict({q}).mean - truth));
  }
  EXPECT_LT(worst, 0.15);
}

TEST(Gp, ConstantTargetsAreHandled) {
  GaussianProcess gp;
  gp.fit({{0.0}, {0.5}, {1.0}}, {2.0, 2.0, 2.0});
  EXPECT_NEAR(gp.predict({0.25}).mean, 2.0, 1e-6);
}

TEST(Gp, SampleAtMatchesPosteriorStatistically) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 1e-6;
  GaussianProcess gp(config);
  gp.fit({{0.0}, {1.0}}, {0.0, 4.0});
  std::mt19937_64 rng(17);
  const std::vector<std::vector<double>> query = {{0.0}, {0.5}, {1.0}};
  double sum_mid = 0.0;
  const int draws = 400;
  for (int i = 0; i < draws; ++i) {
    const auto s = gp.sample_at(query, rng);
    // Training points are pinned by the low noise.
    EXPECT_NEAR(s[0], 0.0, 0.2);
    EXPECT_NEAR(s[2], 4.0, 0.2);
    sum_mid += s[1];
  }
  const double mean_mid = sum_mid / draws;
  EXPECT_NEAR(mean_mid, gp.predict({0.5}).mean, 0.3);
}

TEST(Gp, PriorSampleHasKernelScale) {
  GaussianProcess gp;
  std::mt19937_64 rng(23);
  const auto s = gp.sample_at({{0.1}, {0.9}}, rng);
  ASSERT_EQ(s.size(), 2u);
  for (double v : s) EXPECT_LT(std::abs(v), 10.0);  // unit-variance prior
}

TEST(Gp, ObserveValidatesInput) {
  GaussianProcess unfitted;
  EXPECT_THROW(unfitted.observe({0.5}, 1.0), std::logic_error);

  GpConfig config;
  config.tune_hyperparameters = false;
  GaussianProcess gp(config);
  gp.fit({{0.0, 0.0}, {1.0, 1.0}}, {0.0, 1.0});
  EXPECT_THROW(gp.observe({0.5}, 1.0), std::invalid_argument);  // wrong dimension
  gp.observe({0.5, 0.5}, 0.5);
  EXPECT_EQ(gp.size(), 3u);
}

TEST(Gp, ObserveRejectsDegenerateAppendAndStaysUsable) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 0.0;  // only the 1e-9 jitter guards the diagonal
  GaussianProcess gp(config);
  gp.fit({{0.25}}, {1.0});
  // Appending the identical point makes the Gram matrix singular up to the
  // jitter; with zero noise the bordered pivot collapses below the PD
  // threshold. Whatever the verdict, the model must stay consistent.
  try {
    gp.observe({0.25}, 1.0);
    EXPECT_EQ(gp.size(), 2u);
  } catch (const std::domain_error&) {
    EXPECT_EQ(gp.size(), 1u);           // rejected append left the fit intact
    EXPECT_NO_THROW(gp.predict({0.3}));
  }
}

// Parameterized over kernel families: growing a model with observe() must
// reproduce a from-scratch fit() bit for bit (the incremental-posterior
// determinism contract the MOBO engine relies on).
class GpIncrementalTest : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(GpIncrementalTest, ObserveMatchesFullFitBitForBit) {
  GpConfig config;
  config.family = GetParam();
  config.tune_hyperparameters = false;
  config.signal_variance = 1.3;
  config.length_scale = 0.6;
  config.noise_variance = 1e-3;

  std::mt19937_64 rng(41 + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t dim = 4;
  const std::size_t warm = 5;
  const std::size_t total = 24;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < total; ++i) {
    std::vector<double> xi(dim);
    // Snap to a coarse grid so the Hamming kernel sees genuine matches.
    for (double& v : xi) v = std::round(unit(rng) * 8.0) / 8.0;
    x.push_back(xi);
    y.push_back(std::cos(3.0 * xi[0]) + 0.25 * xi[1] - xi[2] * xi[3]);
  }

  GaussianProcess incremental(config);
  incremental.fit({x.begin(), x.begin() + warm}, {y.begin(), y.begin() + warm});
  for (std::size_t i = warm; i < total; ++i) {
    incremental.observe(x[i], y[i]);

    GaussianProcess full(config);
    full.fit({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(i) + 1},
             {y.begin(), y.begin() + static_cast<std::ptrdiff_t>(i) + 1});

    ASSERT_EQ(incremental.size(), full.size());
    ASSERT_TRUE(same_bits(incremental.log_marginal_likelihood(), full.log_marginal_likelihood()))
        << "n=" << i + 1;
    for (std::size_t q = 0; q < 6; ++q) {
      std::vector<double> query(dim);
      for (double& v : query) v = std::round(unit(rng) * 8.0) / 8.0;
      const auto a = incremental.predict(query);
      const auto b = full.predict(query);
      ASSERT_TRUE(same_bits(a.mean, b.mean)) << "n=" << i + 1 << " q=" << q;
      ASSERT_TRUE(same_bits(a.variance, b.variance)) << "n=" << i + 1 << " q=" << q;
    }
    // Joint Thompson draws must agree too (same factor, same RNG stream).
    std::mt19937_64 rng_a(999), rng_b(999);
    const auto sample_a = incremental.sample_at({x[0], x[1], {0.5, 0.5, 0.5, 0.5}}, rng_a);
    const auto sample_b = full.sample_at({x[0], x[1], {0.5, 0.5, 0.5, 0.5}}, rng_b);
    for (std::size_t s = 0; s < sample_a.size(); ++s) {
      ASSERT_TRUE(same_bits(sample_a[s], sample_b[s])) << "n=" << i + 1 << " s=" << s;
    }
  }
}

TEST(Gp, BatchedObjectiveDrawsMatchSequentialSampleAtBitForBit) {
  // sample_objectives_at flattens the per-objective posterior draws into
  // wide parallel sections; it must consume the shared RNG in exactly the
  // order of the sequential per-objective loop and reproduce every draw
  // bit for bit — including an unfitted GP falling back to its prior.
  GpConfig config;
  config.tune_hyperparameters = false;
  std::vector<GaussianProcess> gps;
  gps.reserve(3);
  std::mt19937_64 data_rng(31);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t k = 0; k < 3; ++k) {
    gps.emplace_back(config);
    if (k == 2) continue;  // the third objective stays unfitted (prior path)
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < 12 + 5 * k; ++i) {
      std::vector<double> xi(4);
      for (double& v : xi) v = unit(data_rng);
      y.push_back(std::sin(3.0 * xi[0]) + static_cast<double>(k) * xi[1]);
      x.push_back(std::move(xi));
    }
    gps[k].fit(x, y);
  }
  std::vector<std::vector<double>> query;
  for (std::size_t i = 0; i < 9; ++i) {  // odd size: exercises chunk tails
    std::vector<double> xi(4);
    for (double& v : xi) v = unit(data_rng);
    query.push_back(std::move(xi));
  }

  std::mt19937_64 rng_sequential(424242);
  std::vector<std::vector<double>> expected;
  for (const GaussianProcess& gp : gps) {
    expected.push_back(gp.sample_at(query, rng_sequential));
  }
  std::mt19937_64 rng_batched(424242);
  const std::vector<std::vector<double>> batched =
      sample_objectives_at(gps, query, rng_batched);

  ASSERT_EQ(batched.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(batched[k].size(), expected[k].size()) << "objective " << k;
    for (std::size_t i = 0; i < expected[k].size(); ++i) {
      EXPECT_TRUE(same_bits(batched[k][i], expected[k][i]))
          << "objective " << k << " point " << i;
    }
  }
  // Both paths must leave the generator in the same state.
  EXPECT_EQ(rng_sequential(), rng_batched());
}

INSTANTIATE_TEST_SUITE_P(Families, GpIncrementalTest,
                         ::testing::Values(KernelFamily::kRbf, KernelFamily::kMatern52,
                                           KernelFamily::kHamming));

// Parameterized: both kernel families interpolate equally well.
class GpKernelFamilyTest : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(GpKernelFamilyTest, FitsLinearFunction) {
  GpConfig config;
  config.family = GetParam();
  GaussianProcess gp(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) {
    const double xi = i / 10.0;
    x.push_back({xi});
    y.push_back(2.0 * xi - 1.0);
  }
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict({0.35}).mean, -0.3, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Families, GpKernelFamilyTest,
                         ::testing::Values(KernelFamily::kRbf, KernelFamily::kMatern52));

}  // namespace
}  // namespace lens::opt
