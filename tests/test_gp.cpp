// Unit tests for kernels and Gaussian-process regression (opt/kernel, opt/gp).

#include <cmath>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "opt/gp.hpp"
#include "opt/kernel.hpp"

namespace lens::opt {
namespace {

/// Bit-level double equality (stricter than ==: distinguishes ±0.0).
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

TEST(Kernel, RbfBasicProperties) {
  const RbfKernel k(2.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.0}, {0.0}), 2.0);  // k(x,x) = signal variance
  EXPECT_DOUBLE_EQ(k.variance(), 2.0);
  // Symmetry and decay.
  EXPECT_DOUBLE_EQ(k({0.0}, {1.0}), k({1.0}, {0.0}));
  EXPECT_LT(k({0.0}, {1.0}), k({0.0}, {0.5}));
  // Known value: exp(-0.5 * 1 / 0.25) = exp(-2).
  EXPECT_NEAR(k({0.0}, {1.0}), 2.0 * std::exp(-2.0), 1e-12);
}

TEST(Kernel, Matern52BasicProperties) {
  const Matern52Kernel k(1.0, 1.0);
  EXPECT_DOUBLE_EQ(k({0.0, 0.0}, {0.0, 0.0}), 1.0);
  EXPECT_GT(k({0.0}, {0.1}), k({0.0}, {0.5}));
  EXPECT_GT(k({0.0}, {0.5}), 0.0);
}

TEST(Kernel, RejectsNonPositiveHyperparameters) {
  EXPECT_THROW(RbfKernel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RbfKernel(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Matern52Kernel(-2.0, 1.0), std::invalid_argument);
}

TEST(Kernel, GramMatrixIsSymmetricWithVarianceDiagonal) {
  const Matern52Kernel k(1.5, 0.7);
  const std::vector<std::vector<double>> xs = {{0.0, 0.1}, {0.5, 0.5}, {0.9, 0.2}};
  const Matrix g = k.gram(xs);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g(i, i), 1.5);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(Kernel, SquaredDistanceMismatchThrows) {
  EXPECT_THROW(squared_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Gp, UnfittedReturnsPrior) {
  GaussianProcess gp;
  const auto p = gp.predict({0.3});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
  EXPECT_FALSE(gp.is_fitted());
}

TEST(Gp, FitRejectsBadInput) {
  GaussianProcess gp;
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Gp, InterpolatesTrainingPointsWithLowNoise) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 1e-8;
  config.length_scale = 0.4;
  GaussianProcess gp(config);
  const std::vector<std::vector<double>> x = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> y;
  for (const auto& xi : x) y.push_back(std::sin(6.0 * xi[0]));
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-4);
    EXPECT_LT(p.variance, 1e-4);
  }
}

TEST(Gp, VarianceGrowsAwayFromData) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.length_scale = 0.2;
  GaussianProcess gp(config);
  gp.fit({{0.0}, {0.1}}, {1.0, 2.0});
  const double var_near = gp.predict({0.05}).variance;
  const double var_far = gp.predict({0.9}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(Gp, TunedFitApproximatesSmoothFunction) {
  GaussianProcess gp;  // tuned
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    const double xi = unit(rng);
    x.push_back({xi});
    y.push_back(3.0 * xi * xi - xi + 0.5);
  }
  gp.fit(x, y);
  double worst = 0.0;
  for (double q = 0.05; q < 1.0; q += 0.1) {
    const double truth = 3.0 * q * q - q + 0.5;
    worst = std::max(worst, std::abs(gp.predict({q}).mean - truth));
  }
  EXPECT_LT(worst, 0.15);
}

TEST(Gp, ConstantTargetsAreHandled) {
  GaussianProcess gp;
  gp.fit({{0.0}, {0.5}, {1.0}}, {2.0, 2.0, 2.0});
  EXPECT_NEAR(gp.predict({0.25}).mean, 2.0, 1e-6);
}

TEST(Gp, SampleAtMatchesPosteriorStatistically) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 1e-6;
  GaussianProcess gp(config);
  gp.fit({{0.0}, {1.0}}, {0.0, 4.0});
  std::mt19937_64 rng(17);
  const std::vector<std::vector<double>> query = {{0.0}, {0.5}, {1.0}};
  double sum_mid = 0.0;
  const int draws = 400;
  for (int i = 0; i < draws; ++i) {
    const auto s = gp.sample_at(query, rng);
    // Training points are pinned by the low noise.
    EXPECT_NEAR(s[0], 0.0, 0.2);
    EXPECT_NEAR(s[2], 4.0, 0.2);
    sum_mid += s[1];
  }
  const double mean_mid = sum_mid / draws;
  EXPECT_NEAR(mean_mid, gp.predict({0.5}).mean, 0.3);
}

TEST(Gp, PriorSampleHasKernelScale) {
  GaussianProcess gp;
  std::mt19937_64 rng(23);
  const auto s = gp.sample_at({{0.1}, {0.9}}, rng);
  ASSERT_EQ(s.size(), 2u);
  for (double v : s) EXPECT_LT(std::abs(v), 10.0);  // unit-variance prior
}

TEST(Gp, ObserveValidatesInput) {
  GaussianProcess unfitted;
  EXPECT_THROW(unfitted.observe({0.5}, 1.0), std::logic_error);

  GpConfig config;
  config.tune_hyperparameters = false;
  GaussianProcess gp(config);
  gp.fit({{0.0, 0.0}, {1.0, 1.0}}, {0.0, 1.0});
  EXPECT_THROW(gp.observe({0.5}, 1.0), std::invalid_argument);  // wrong dimension
  gp.observe({0.5, 0.5}, 0.5);
  EXPECT_EQ(gp.size(), 3u);
}

TEST(Gp, ObserveRejectsDegenerateAppendAndStaysUsable) {
  GpConfig config;
  config.tune_hyperparameters = false;
  config.noise_variance = 0.0;  // only the 1e-9 jitter guards the diagonal
  GaussianProcess gp(config);
  gp.fit({{0.25}}, {1.0});
  // Appending the identical point makes the Gram matrix singular up to the
  // jitter; with zero noise the bordered pivot collapses below the PD
  // threshold. Whatever the verdict, the model must stay consistent.
  try {
    gp.observe({0.25}, 1.0);
    EXPECT_EQ(gp.size(), 2u);
  } catch (const std::domain_error&) {
    EXPECT_EQ(gp.size(), 1u);           // rejected append left the fit intact
    EXPECT_NO_THROW(gp.predict({0.3}));
  }
}

// Parameterized over kernel families: growing a model with observe() must
// reproduce a from-scratch fit() bit for bit (the incremental-posterior
// determinism contract the MOBO engine relies on).
class GpIncrementalTest : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(GpIncrementalTest, ObserveMatchesFullFitBitForBit) {
  GpConfig config;
  config.family = GetParam();
  config.tune_hyperparameters = false;
  config.signal_variance = 1.3;
  config.length_scale = 0.6;
  config.noise_variance = 1e-3;

  std::mt19937_64 rng(41 + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t dim = 4;
  const std::size_t warm = 5;
  const std::size_t total = 24;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < total; ++i) {
    std::vector<double> xi(dim);
    // Snap to a coarse grid so the Hamming kernel sees genuine matches.
    for (double& v : xi) v = std::round(unit(rng) * 8.0) / 8.0;
    x.push_back(xi);
    y.push_back(std::cos(3.0 * xi[0]) + 0.25 * xi[1] - xi[2] * xi[3]);
  }

  GaussianProcess incremental(config);
  incremental.fit({x.begin(), x.begin() + warm}, {y.begin(), y.begin() + warm});
  for (std::size_t i = warm; i < total; ++i) {
    incremental.observe(x[i], y[i]);

    GaussianProcess full(config);
    full.fit({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(i) + 1},
             {y.begin(), y.begin() + static_cast<std::ptrdiff_t>(i) + 1});

    ASSERT_EQ(incremental.size(), full.size());
    ASSERT_TRUE(same_bits(incremental.log_marginal_likelihood(), full.log_marginal_likelihood()))
        << "n=" << i + 1;
    for (std::size_t q = 0; q < 6; ++q) {
      std::vector<double> query(dim);
      for (double& v : query) v = std::round(unit(rng) * 8.0) / 8.0;
      const auto a = incremental.predict(query);
      const auto b = full.predict(query);
      ASSERT_TRUE(same_bits(a.mean, b.mean)) << "n=" << i + 1 << " q=" << q;
      ASSERT_TRUE(same_bits(a.variance, b.variance)) << "n=" << i + 1 << " q=" << q;
    }
    // Joint Thompson draws must agree too (same factor, same RNG stream).
    std::mt19937_64 rng_a(999), rng_b(999);
    const auto sample_a = incremental.sample_at({x[0], x[1], {0.5, 0.5, 0.5, 0.5}}, rng_a);
    const auto sample_b = full.sample_at({x[0], x[1], {0.5, 0.5, 0.5, 0.5}}, rng_b);
    for (std::size_t s = 0; s < sample_a.size(); ++s) {
      ASSERT_TRUE(same_bits(sample_a[s], sample_b[s])) << "n=" << i + 1 << " s=" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GpIncrementalTest,
                         ::testing::Values(KernelFamily::kRbf, KernelFamily::kMatern52,
                                           KernelFamily::kHamming));

// Parameterized: both kernel families interpolate equally well.
class GpKernelFamilyTest : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(GpKernelFamilyTest, FitsLinearFunction) {
  GpConfig config;
  config.family = GetParam();
  GaussianProcess gp(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) {
    const double xi = i / 10.0;
    x.push_back({xi});
    y.push_back(2.0 * xi - 1.0);
  }
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict({0.35}).mean, -0.3, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Families, GpKernelFamilyTest,
                         ::testing::Values(KernelFamily::kRbf, KernelFamily::kMatern52));

}  // namespace
}  // namespace lens::opt
