// Tests for the accuracy objective models (surrogate and statistics of the
// error landscape it induces).

#include <random>

#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/search_space.hpp"

namespace lens::core {
namespace {

class SurrogateTest : public ::testing::Test {
 protected:
  SearchSpace space_;
  SurrogateAccuracyModel model_;
};

TEST_F(SurrogateTest, Deterministic) {
  std::mt19937_64 rng(1);
  const Genotype g = space_.random(rng);
  const dnn::Architecture arch = space_.decode(g);
  EXPECT_DOUBLE_EQ(model_.test_error_percent(g, arch), model_.test_error_percent(g, arch));
}

TEST_F(SurrogateTest, ErrorsWithinCalibratedBand) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 200; ++i) {
    const Genotype g = space_.random(rng);
    const double error = model_.test_error_percent(g, space_.decode(g));
    EXPECT_GE(error, 11.0);
    EXPECT_LE(error, 65.0);
  }
}

TEST_F(SurrogateTest, CapacityReducesErrorOnAverage) {
  // Compare the minimal and maximal architectures of the space.
  Genotype small(space_.num_dimensions(), 0);
  for (int b = 0; b < 4; ++b) small[static_cast<std::size_t>(4 * b + 3)] = 1;
  Genotype large = small;
  for (int b = 0; b < 5; ++b) {
    large[static_cast<std::size_t>(4 * b + 0)] = 2;  // depth 3
    large[static_cast<std::size_t>(4 * b + 2)] = 4;  // 128 filters
  }
  large[20] = 3;  // fc1 2048
  large[21] = 1;  // fc2 present
  const double small_error = model_.test_error_percent(small, space_.decode(small));
  const double large_error = model_.test_error_percent(large, space_.decode(large));
  EXPECT_LT(large_error, small_error - 5.0);
}

TEST_F(SurrogateTest, NoiseSeedChangesReplicates) {
  std::mt19937_64 rng(3);
  const Genotype g = space_.random(rng);
  const dnn::Architecture arch = space_.decode(g);
  SurrogateAccuracyConfig other;
  other.seed = 999;
  const SurrogateAccuracyModel replica(other);
  EXPECT_NE(model_.test_error_percent(g, arch), replica.test_error_percent(g, arch));
  // But both stay within the band.
  EXPECT_GE(replica.test_error_percent(g, arch), other.min_error);
}

TEST_F(SurrogateTest, ZeroNoiseIsMonotoneInDepthAtFixedWidth) {
  SurrogateAccuracyConfig config;
  config.noise_std = 0.0;
  const SurrogateAccuracyModel clean(config);
  Genotype shallow(space_.num_dimensions(), 0);
  for (int b = 0; b < 4; ++b) shallow[static_cast<std::size_t>(4 * b + 3)] = 1;
  Genotype deep = shallow;
  for (int b = 0; b < 5; ++b) deep[static_cast<std::size_t>(4 * b + 0)] = 2;
  EXPECT_LT(clean.test_error_percent(deep, space_.decode(deep)),
            clean.test_error_percent(shallow, space_.decode(shallow)));
}

TEST_F(SurrogateTest, OvercapacityPenaltyBites) {
  SurrogateAccuracyConfig config;
  config.noise_std = 0.0;
  config.overcapacity_knee = 6.0;   // artificially low knee
  config.overcapacity_slope = 30.0; // harsh under-training penalty
  const SurrogateAccuracyModel harsh(config);
  const SurrogateAccuracyModel normal(SurrogateAccuracyConfig{.noise_std = 0.0});
  // The largest architecture in the space exceeds the knee.
  Genotype huge(space_.num_dimensions(), 0);
  for (int b = 0; b < 5; ++b) {
    huge[static_cast<std::size_t>(4 * b + 0)] = 2;
    huge[static_cast<std::size_t>(4 * b + 2)] = 5;
    huge[static_cast<std::size_t>(4 * b + 3)] = 1;
  }
  huge[20] = 5;
  huge[21] = 1;
  huge[22] = 5;
  const dnn::Architecture arch = space_.decode(huge);
  EXPECT_GT(harsh.test_error_percent(huge, arch), normal.test_error_percent(huge, arch));
}

TEST_F(SurrogateTest, CachedDecoratorMemoizes) {
  std::mt19937_64 rng(6);
  const Genotype g = space_.random(rng);
  const dnn::Architecture arch = space_.decode(g);
  const CachedAccuracyModel cached(model_);
  const double first = cached.test_error_percent(g, arch);
  const double second = cached.test_error_percent(g, arch);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_DOUBLE_EQ(first, model_.test_error_percent(g, arch));
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 1u);
  // A different genotype misses again.
  const Genotype h = space_.random(rng);
  cached.test_error_percent(h, space_.decode(h));
  EXPECT_EQ(cached.misses(), 2u);
}

TEST_F(SurrogateTest, ErrorLandscapeHasUsefulSpread) {
  // The search needs a non-degenerate error objective: across random
  // samples the spread should be large relative to the noise.
  std::mt19937_64 rng(5);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 100; ++i) {
    const Genotype g = space_.random(rng);
    const double e = model_.test_error_percent(g, space_.decode(g));
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi - lo, 10.0);
}

}  // namespace
}  // namespace lens::core
