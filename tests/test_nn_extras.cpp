// Tests for the nn substrate extensions: AvgPool2D, Dropout, Adam.

#include <cmath>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "nn/adam.hpp"
#include "nn/avgpool.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"

namespace lens::nn {
namespace {

Tensor random_tensor(int n, int h, int w, int c, unsigned seed) {
  Tensor t(n, h, w, c);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  for (float& v : t.storage()) v = gauss(rng);
  return t;
}

TEST(AvgPool, ForwardIsWindowMean) {
  AvgPool2D layer(2, 2);
  Tensor input(1, 2, 2, 1);
  input.storage() = {1.0f, 2.0f, 3.0f, 4.0f};
  const Tensor out = layer.forward(input, true);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out.storage()[0], 2.5f);
}

TEST(AvgPool, GradientIsUniform) {
  AvgPool2D layer(2, 2);
  Tensor input = random_tensor(2, 4, 4, 3, 3);
  layer.forward(input, true);
  Tensor grad_out(2, 2, 2, 3, 1.0f);
  const Tensor grad_in = layer.backward(grad_out);
  for (float v : grad_in.storage()) EXPECT_FLOAT_EQ(v, 0.25f);
}

TEST(AvgPool, NumericalGradCheck) {
  AvgPool2D layer(2, 1);  // overlapping windows
  Tensor input = random_tensor(1, 4, 4, 2, 5);
  const Tensor out = layer.forward(input, true);
  Tensor grad_out = out;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_out.storage()[i] = 0.01f * static_cast<float>(i + 1);
  }
  const Tensor grad_in = layer.backward(grad_out);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < input.size(); i += 5) {
    Tensor plus = input;
    Tensor minus = input;
    plus.storage()[i] += eps;
    minus.storage()[i] -= eps;
    double f_plus = 0.0;
    double f_minus = 0.0;
    const Tensor out_plus = layer.forward(plus, true);
    for (std::size_t j = 0; j < out_plus.size(); ++j) {
      f_plus += out_plus.storage()[j] * grad_out.storage()[j];
    }
    const Tensor out_minus = layer.forward(minus, true);
    for (std::size_t j = 0; j < out_minus.size(); ++j) {
      f_minus += out_minus.storage()[j] * grad_out.storage()[j];
    }
    EXPECT_NEAR(grad_in.storage()[i], (f_plus - f_minus) / (2.0 * eps), 1e-3);
  }
}

TEST(AvgPool, Validation) {
  EXPECT_THROW(AvgPool2D(0, 1), std::invalid_argument);
  AvgPool2D layer(4, 4);
  EXPECT_THROW(layer.forward(Tensor(1, 2, 2, 1), true), std::invalid_argument);
  AvgPool2D fresh(2, 2);
  EXPECT_THROW(fresh.backward(Tensor(1, 1, 1, 1)), std::logic_error);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout layer(0.5f);
  const Tensor input = random_tensor(2, 3, 3, 2, 7);
  const Tensor out = layer.forward(input, /*training=*/false);
  EXPECT_EQ(out.storage(), input.storage());
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout layer(0.5f, 42);
  Tensor input(1, 1, 1, 10000, 1.0f);
  const Tensor out = layer.forward(input, /*training=*/true);
  std::size_t zeros = 0;
  double total = 0.0;
  for (float v : out.storage()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted scaling 1/(1-0.5)
      total += v;
    }
  }
  // ~50% dropped; expectation preserved.
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(total / 10000.0, 1.0, 0.06);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout layer(0.3f, 9);
  Tensor input(1, 1, 1, 64, 1.0f);
  const Tensor out = layer.forward(input, true);
  Tensor grad_out(1, 1, 1, 64, 1.0f);
  const Tensor grad_in = layer.backward(grad_out);
  for (std::size_t i = 0; i < 64; ++i) {
    if (out.storage()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(grad_in.storage()[i], 0.0f);
    } else {
      EXPECT_NEAR(grad_in.storage()[i], 1.0f / 0.7f, 1e-5);
    }
  }
}

TEST(Dropout, ZeroRateIsTransparent) {
  Dropout layer(0.0f);
  const Tensor input = random_tensor(1, 2, 2, 2, 11);
  EXPECT_EQ(layer.forward(input, true).storage(), input.storage());
  EXPECT_EQ(layer.backward(input).storage(), input.storage());
}

TEST(Dropout, Validation) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 by feeding grad = 2(w-3).
  ParamTensor w(1);
  w.value[0] = -5.0f;
  Adam optimizer({&w}, {.learning_rate = 0.1});
  for (int i = 0; i < 500; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    optimizer.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
  EXPECT_EQ(optimizer.steps_taken(), 500u);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two coordinates with gradients differing by 1000x: after bias
  // correction, Adam's effective per-coordinate step is scale-free.
  ParamTensor w(2);
  Adam optimizer({&w}, {.learning_rate = 0.01});
  w.grad[0] = 1000.0f;
  w.grad[1] = 1.0f;
  optimizer.step();
  EXPECT_NEAR(w.value[0], w.value[1], 1e-5);
}

TEST(Adam, WeightDecayShrinks) {
  ParamTensor w(1);
  w.value[0] = 1.0f;
  Adam optimizer({&w}, {.learning_rate = 0.1, .weight_decay = 0.5});
  w.grad[0] = 0.0f;
  optimizer.step();
  EXPECT_NEAR(w.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Adam, Validation) {
  ParamTensor p(1);
  EXPECT_THROW(Adam({&p}, {.learning_rate = 0.0}), std::invalid_argument);
  EXPECT_THROW(Adam({&p}, {.beta1 = 1.0}), std::invalid_argument);
  EXPECT_THROW(Adam({nullptr}, {}), std::invalid_argument);
}

TEST(Adam, TrainsSmallNetworkFasterThanOneEpochOfNothing) {
  // End-to-end: Adam should fit a small regression-style head quickly.
  std::mt19937_64 rng(13);
  Sequential net;
  net.add(std::make_unique<Dense>(8, 16, rng));
  net.add(std::make_unique<Dense>(16, 4, rng));
  Adam optimizer(net.parameters(), {.learning_rate = 5e-3});

  const Tensor inputs = random_tensor(64, 1, 1, 8, 17);
  std::vector<int> labels(64);
  for (std::size_t i = 0; i < 64; ++i) {
    // Label by the sign pattern of the first two features.
    const float a = inputs.storage()[i * 8];
    const float b = inputs.storage()[i * 8 + 1];
    labels[i] = (a > 0 ? 2 : 0) + (b > 0 ? 1 : 0);
  }
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 200; ++step) {
    const Tensor logits = net.forward(inputs, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    if (step == 0) first_loss = loss.mean_loss;
    last_loss = loss.mean_loss;
    net.backward(loss.grad_logits);
    optimizer.step();
  }
  EXPECT_LT(last_loss, 0.3 * first_loss);
}

TEST(DropoutInNetwork, TrainsWithRegularization) {
  std::mt19937_64 rng(23);
  Sequential net;
  net.add(std::make_unique<Dense>(10, 32, rng));
  net.add(std::make_unique<Dropout>(0.2f, 3));
  net.add(std::make_unique<Dense>(32, 3, rng));
  const Tensor inputs = random_tensor(32, 1, 1, 10, 29);
  std::vector<int> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = static_cast<int>(i % 3);
  Sgd optimizer(net.parameters(), {.learning_rate = 0.05});
  double last = 0.0;
  for (int step = 0; step < 150; ++step) {
    const Tensor logits = net.forward(inputs, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    last = loss.mean_loss;
    net.backward(loss.grad_logits);
    optimizer.step();
  }
  EXPECT_LT(last, 1.0);  // learns despite the noise injection
}

}  // namespace
}  // namespace lens::nn
