// Tests for device profiles, the roofline simulator, the profiler sweeps,
// and the trained regression predictors.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "dnn/presets.hpp"
#include "perf/device.hpp"
#include "perf/predictor.hpp"
#include "perf/profiler.hpp"
#include "perf/simulator.hpp"

namespace lens::perf {
namespace {

TEST(Device, ProfilesAreOrdered) {
  const DeviceProfile gpu = jetson_tx2_gpu();
  const DeviceProfile cpu = jetson_tx2_cpu();
  EXPECT_GT(gpu.conv_gflops, cpu.conv_gflops);
  EXPECT_GT(gpu.dense_bandwidth_gbps, cpu.dense_bandwidth_gbps);
  EXPECT_GT(gpu.compute_bound_power_mw, cpu.compute_bound_power_mw);
  EXPECT_EQ(gpu.mode, ComputeMode::kGpu);
  EXPECT_EQ(cpu.mode, ComputeMode::kCpu);
}

TEST(Simulator, MeasurementsAreDeterministic) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(64, 3);
  const dnn::TensorShape in{32, 32, 16};
  const LayerMeasurement a = sim.measure(conv, in);
  const LayerMeasurement b = sim.measure(conv, in);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_DOUBLE_EQ(a.power_mw, b.power_mw);
}

TEST(Simulator, DifferentLayersGetDifferentJitter) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const LayerMeasurement a = sim.measure(dnn::LayerSpec::conv(64, 3), {32, 32, 16});
  const LayerMeasurement b = sim.measure(dnn::LayerSpec::conv(64, 5), {32, 32, 16});
  EXPECT_NE(a.latency_ms, b.latency_ms);
}

TEST(Simulator, LatencyGrowsWithWork) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const double small = sim.measure(dnn::LayerSpec::conv(32, 3), {16, 16, 16}).latency_ms;
  const double big = sim.measure(dnn::LayerSpec::conv(256, 3), {64, 64, 128}).latency_ms;
  EXPECT_GT(big, small * 10.0);
}

TEST(Simulator, CpuSlowerThanGpu) {
  const DeviceSimulator gpu(jetson_tx2_gpu());
  const DeviceSimulator cpu(jetson_tx2_cpu());
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(128, 3);
  const dnn::TensorShape in{56, 56, 64};
  EXPECT_GT(cpu.measure(conv, in).latency_ms, 3.0 * gpu.measure(conv, in).latency_ms);
}

TEST(Simulator, ComputeVsMemoryBoundPower) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  // Large conv: compute bound -> high power.
  const LayerMeasurement conv = sim.measure(dnn::LayerSpec::conv(256, 3), {56, 56, 256});
  // Huge dense: memory bound -> lower power.
  const LayerMeasurement fc = sim.measure(dnn::LayerSpec::dense(4096), {1, 1, 9216});
  EXPECT_GT(conv.power_mw, fc.power_mw);
}

TEST(Simulator, EnergyIsConsistent) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const LayerMeasurement m = sim.measure(dnn::LayerSpec::conv(64, 3), {28, 28, 32});
  EXPECT_NEAR(m.energy_mj(), m.power_mw * m.latency_ms / 1e3, 1e-12);
}

TEST(Simulator, BytesTouchedAccountsWeightsAndActivations) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const dnn::LayerSpec fc = dnn::LayerSpec::dense(4096);
  const dnn::TensorShape in{1, 1, 9216};
  // weights 9216*4096 + 4096 bias, in 9216, out 4096, all * 4 bytes.
  const std::uint64_t expected =
      4ULL * (9216ULL * 4096ULL + 4096ULL + 9216ULL + 4096ULL);
  EXPECT_EQ(sim.bytes_touched(fc, in), expected);
}

TEST(Simulator, AlexNetCalibration) {
  // The headline calibration targets from DESIGN.md: total GPU latency in
  // the tens of ms with the FC layers around half of it (paper Fig. 1).
  const DeviceSimulator sim(jetson_tx2_gpu());
  const dnn::Architecture a = dnn::alexnet();
  double total = 0.0;
  double fc = 0.0;
  for (const dnn::LayerInfo& info : a.layers()) {
    const double lat = sim.measure(info.spec, info.input).latency_ms;
    total += lat;
    if (info.spec.kind == dnn::LayerKind::kDense) fc += lat;
  }
  EXPECT_GT(total, 15.0);
  EXPECT_LT(total, 60.0);
  EXPECT_GT(fc / total, 0.40);
  EXPECT_LT(fc / total, 0.60);
}

TEST(Profiler, GeneratesRequestedSampleCount) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  ProfilerConfig config;
  config.samples_per_kind = 25;
  LayerProfiler profiler(sim, config);
  for (dnn::LayerKind kind :
       {dnn::LayerKind::kConv, dnn::LayerKind::kMaxPool, dnn::LayerKind::kDense}) {
    const auto samples = profiler.profile_kind(kind);
    EXPECT_EQ(samples.size(), 25u);
    for (const ProfiledSample& s : samples) {
      EXPECT_EQ(s.layer.kind, kind);
      EXPECT_GT(s.measurement.latency_ms, 0.0);
      EXPECT_GT(s.measurement.power_mw, 0.0);
    }
  }
}

TEST(Profiler, RandomConfigsAreAlwaysApplicable) {
  const DeviceSimulator sim(jetson_tx2_cpu());
  LayerProfiler profiler(sim, {.samples_per_kind = 1, .seed = 77});
  for (int i = 0; i < 200; ++i) {
    auto [layer, input] = profiler.random_config(dnn::LayerKind::kConv);
    EXPECT_NO_THROW(dnn::output_shape(layer, input));
  }
  for (int i = 0; i < 200; ++i) {
    auto [layer, input] = profiler.random_config(dnn::LayerKind::kMaxPool);
    EXPECT_NO_THROW(dnn::output_shape(layer, input));
  }
}

TEST(Profiler, RejectsZeroSamples) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  EXPECT_THROW(LayerProfiler(sim, {.samples_per_kind = 0}), std::invalid_argument);
}

TEST(Features, DependOnKindSpecificStructure) {
  const auto conv_features = layer_features(dnn::LayerSpec::conv(64, 3), {32, 32, 16});
  const auto conv_features_k5 = layer_features(dnn::LayerSpec::conv(64, 5), {32, 32, 16});
  EXPECT_NE(conv_features, conv_features_k5);
  const auto fc_features = layer_features(dnn::LayerSpec::dense(128), {1, 1, 256});
  EXPECT_NE(conv_features.size(), fc_features.size());
}

TEST(Predictor, OracleMatchesSimulatorExactly) {
  DeviceSimulator sim(jetson_tx2_gpu());
  const SimulatorOracle oracle(sim);
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(96, 5);
  const dnn::TensorShape in{27, 27, 96};
  const LayerMeasurement truth = sim.measure(conv, in);
  const LayerMeasurement predicted = oracle.predict(conv, in);
  EXPECT_DOUBLE_EQ(predicted.latency_ms, truth.latency_ms);
  EXPECT_DOUBLE_EQ(predicted.power_mw, truth.power_mw);
}

class RooflinePredictorQualityTest : public ::testing::TestWithParam<bool> {};

TEST_P(RooflinePredictorQualityTest, HeldOutQualityIsHigh) {
  // Paper §IV-C: the prediction models must be accurate enough to rank
  // deployment options. The roofline family matches the device physics, so
  // held-out quality should be near-perfect (residual = measurement jitter).
  const bool use_gpu = GetParam();
  const DeviceSimulator sim(use_gpu ? jetson_tx2_gpu() : jetson_tx2_cpu());
  const RooflinePredictor predictor =
      RooflinePredictor::train(sim, {.samples_per_kind = 300, .seed = 5});
  for (const auto& [kind, v] : predictor.validation()) {
    EXPECT_GT(v.latency_r2, 0.95) << "kind " << static_cast<int>(kind);
    EXPECT_LT(v.latency_mape, 15.0) << "kind " << static_cast<int>(kind);
    // Pool/dense layers are memory-bound across the entire sweep, so their
    // true power variance is pure measurement jitter and R^2 is meaningless
    // (predicting the mean of noise); relative error is the real check.
    EXPECT_LT(v.power_mape, 10.0) << "kind " << static_cast<int>(kind);
    if (kind == dnn::LayerKind::kConv) {
      EXPECT_GT(v.power_r2, 0.50) << "conv has two genuine power levels";
    }
    EXPECT_GT(v.train_samples, 0u);
    EXPECT_GT(v.test_samples, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, RooflinePredictorQualityTest, ::testing::Bool());

TEST(RidgePredictor, BaselineQualityIsReasonable) {
  // The plain log-ridge family is the ablation baseline: weaker than the
  // roofline model (it cannot express the max() kink) but still orders
  // layers correctly at a coarse level.
  const DeviceSimulator sim(jetson_tx2_gpu());
  const RegressionPredictor predictor =
      RegressionPredictor::train(sim, {.samples_per_kind = 300, .seed = 5});
  for (const auto& [kind, v] : predictor.validation()) {
    EXPECT_GT(v.latency_r2, 0.25) << "kind " << static_cast<int>(kind);
    EXPECT_GT(v.train_samples, 0u);
    EXPECT_GT(v.test_samples, 0u);
  }
}

TEST(Predictor, PredictionsArePositiveAndOrdered) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const RooflinePredictor predictor =
      RooflinePredictor::train(sim, {.samples_per_kind = 300, .seed = 6});
  const LayerMeasurement small = predictor.predict(dnn::LayerSpec::conv(24, 3), {14, 14, 24});
  const LayerMeasurement big = predictor.predict(dnn::LayerSpec::conv(256, 7), {112, 112, 128});
  EXPECT_GT(small.latency_ms, 0.0);
  EXPECT_GT(big.latency_ms, small.latency_ms);
  EXPECT_GT(small.power_mw, 0.0);
}

TEST(Predictor, SaveLoadRoundTrip) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const RooflinePredictor trained =
      RooflinePredictor::train(sim, {.samples_per_kind = 200, .seed = 9});
  const std::string path = std::string(::testing::TempDir()) + "/predictor.txt";
  trained.save(path);
  const RooflinePredictor loaded = RooflinePredictor::load(path);
  // Identical predictions for representative layers of every kind.
  const std::pair<dnn::LayerSpec, dnn::TensorShape> probes[] = {
      {dnn::LayerSpec::conv(96, 5), {27, 27, 96}},
      {dnn::LayerSpec::max_pool(3, 2), {55, 55, 96}},
      {dnn::LayerSpec::dense(4096), {1, 1, 9216}},
  };
  for (const auto& [layer, input] : probes) {
    const LayerMeasurement a = trained.predict(layer, input);
    const LayerMeasurement b = loaded.predict(layer, input);
    EXPECT_NEAR(a.latency_ms, b.latency_ms, 1e-9 * a.latency_ms);
    EXPECT_NEAR(a.power_mw, b.power_mw, 1e-9 * a.power_mw);
  }
  EXPECT_TRUE(loaded.validation().empty());  // metrics are not persisted
  std::remove(path.c_str());
}

TEST(Predictor, LoadRejectsBadFiles) {
  EXPECT_THROW(RooflinePredictor::load("/nonexistent/predictor.txt"), std::runtime_error);
  const std::string path = std::string(::testing::TempDir()) + "/bad_predictor.txt";
  {
    std::ofstream out(path);
    out << "not a predictor\n";
  }
  EXPECT_THROW(RooflinePredictor::load(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "lens-roofline-predictor v1\nconv garbage\n";
  }
  EXPECT_THROW(RooflinePredictor::load(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "lens-roofline-predictor v1\n";
  }
  EXPECT_THROW(RooflinePredictor::load(path), std::invalid_argument);  // no models
  std::remove(path.c_str());
}

TEST(Predictor, AlexNetTotalsCloseToGroundTruth) {
  const DeviceSimulator sim(jetson_tx2_gpu());
  const RooflinePredictor predictor =
      RooflinePredictor::train(sim, {.samples_per_kind = 400, .seed = 8});
  const dnn::Architecture a = dnn::alexnet();
  double truth = 0.0;
  double predicted = 0.0;
  for (const dnn::LayerInfo& info : a.layers()) {
    truth += sim.measure(info.spec, info.input).latency_ms;
    predicted += predictor.predict(info.spec, info.input).latency_ms;
  }
  EXPECT_NEAR(predicted, truth, 0.15 * truth);  // within 15% end to end
}

}  // namespace
}  // namespace lens::perf
