// Tests for the runtime subsystem: cost curves, analytic crossovers,
// dominance intervals (cross-checked against dense scans), the throughput
// tracker, and dynamic-vs-fixed trace playback.

#include <cmath>

#include <gtest/gtest.h>

#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "runtime/threshold.hpp"
#include "runtime/tracker.hpp"

namespace lens::runtime {
namespace {

core::DeploymentOption make_option(core::DeploymentKind kind, double edge_latency,
                                   double edge_energy, std::uint64_t tx_bytes) {
  core::DeploymentOption o;
  o.kind = kind;
  o.edge_latency_ms = edge_latency;
  o.edge_energy_mj = edge_energy;
  o.tx_bytes = tx_bytes;
  return o;
}

TEST(CostCurve, ValueAndValidation) {
  const CostCurve c{10.0, 20.0};
  EXPECT_DOUBLE_EQ(c.value(2.0), 20.0);
  EXPECT_DOUBLE_EQ(c.value(20.0), 11.0);
  EXPECT_THROW(c.value(0.0), std::invalid_argument);
}

TEST(CostCurve, LatencyCurveMatchesCommModel) {
  const comm::CommModel comm(comm::WirelessTechnology::kWifi, 15.0);
  const auto option =
      make_option(core::DeploymentKind::kPartitioned, 12.0, 100.0, 36864);
  const CostCurve curve = latency_curve(option, comm);
  for (double tu : {0.5, 3.0, 16.0}) {
    EXPECT_NEAR(curve.value(tu), 12.0 + comm.comm_latency_ms(36864, tu), 1e-9);
  }
}

TEST(CostCurve, EnergyCurveMatchesCommModel) {
  const comm::CommModel comm(comm::WirelessTechnology::kLte, 15.0);
  const auto option =
      make_option(core::DeploymentKind::kPartitioned, 12.0, 100.0, 36864);
  const CostCurve curve = energy_curve(option, comm);
  for (double tu : {0.5, 3.0, 16.0}) {
    EXPECT_NEAR(curve.value(tu), 100.0 + comm.tx_energy_mj(36864, tu), 1e-9);
  }
}

TEST(CostCurve, AllEdgeIsFlat) {
  const comm::CommModel comm(comm::WirelessTechnology::kWifi, 15.0);
  const auto edge = make_option(core::DeploymentKind::kAllEdge, 30.0, 280.0, 0);
  const CostCurve lat = latency_curve(edge, comm);
  const CostCurve ene = energy_curve(edge, comm);
  EXPECT_DOUBLE_EQ(lat.per_inverse_tu, 0.0);
  EXPECT_DOUBLE_EQ(lat.value(1.0), lat.value(100.0));
  EXPECT_DOUBLE_EQ(ene.value(0.3), 280.0);
}

TEST(Crossover, AnalyticMatchesNumeric) {
  const CostCurve flat{30.0, 0.0};
  const CostCurve hyperbolic{10.0, 100.0};
  const auto tu = crossover_tu(flat, hyperbolic);
  ASSERT_TRUE(tu.has_value());
  EXPECT_NEAR(*tu, 5.0, 1e-12);  // 30 = 10 + 100/t -> t = 5
  EXPECT_NEAR(flat.value(*tu), hyperbolic.value(*tu), 1e-9);
}

TEST(Crossover, ParallelOrIdenticalCurvesHaveNone) {
  EXPECT_FALSE(crossover_tu({10.0, 5.0}, {10.0, 5.0}).has_value());
  EXPECT_FALSE(crossover_tu({10.0, 5.0}, {10.0, 8.0}).has_value());  // same constant
  EXPECT_FALSE(crossover_tu({10.0, 5.0}, {12.0, 5.0}).has_value());  // same slope
  // Crossing at negative throughput: not physical.
  EXPECT_FALSE(crossover_tu({10.0, 5.0}, {12.0, 8.0}).has_value());
}

TEST(DominanceIntervals, PartitionCoversRangeWithoutGaps) {
  const std::vector<CostCurve> curves = {{30.0, 0.0}, {10.0, 100.0}, {0.0, 400.0}};
  const auto intervals = dominance_intervals(curves, 0.1, 100.0);
  ASSERT_FALSE(intervals.empty());
  EXPECT_DOUBLE_EQ(intervals.front().tu_low, 0.1);
  EXPECT_DOUBLE_EQ(intervals.back().tu_high, 100.0);
  for (std::size_t i = 0; i + 1 < intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(intervals[i].tu_high, intervals[i + 1].tu_low);
    EXPECT_NE(intervals[i].option_index, intervals[i + 1].option_index);
  }
}

TEST(DominanceIntervals, AgreesWithDenseScan) {
  const std::vector<CostCurve> curves = {
      {30.0, 0.0}, {12.0, 90.0}, {2.0, 350.0}, {25.0, 20.0}};
  const auto intervals = dominance_intervals(curves, 0.2, 80.0);
  for (double tu = 0.21; tu < 80.0; tu *= 1.07) {
    // Winner per the intervals.
    std::size_t interval_winner = intervals.back().option_index;
    for (const DominanceInterval& iv : intervals) {
      if (tu >= iv.tu_low && tu < iv.tu_high) {
        interval_winner = iv.option_index;
        break;
      }
    }
    // Winner per brute force.
    std::size_t scan_winner = 0;
    for (std::size_t i = 1; i < curves.size(); ++i) {
      if (curves[i].value(tu) < curves[scan_winner].value(tu)) scan_winner = i;
    }
    // Allow ties right at a boundary.
    EXPECT_NEAR(curves[interval_winner].value(tu), curves[scan_winner].value(tu), 1e-6)
        << "tu=" << tu;
  }
}

TEST(DominanceIntervals, Validation) {
  EXPECT_THROW(dominance_intervals({}, 0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(dominance_intervals({{1.0, 1.0}}, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(dominance_intervals({{1.0, 1.0}}, 5.0, 5.0), std::invalid_argument);
}

TEST(Tracker, EwmaBehaviour) {
  ThroughputTracker tracker(0.5);
  EXPECT_FALSE(tracker.has_estimate());
  EXPECT_THROW(tracker.estimate_mbps(), std::logic_error);
  tracker.report(10.0);
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 10.0);
  tracker.report(20.0);
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 15.0);
  tracker.report(20.0);
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 17.5);
  EXPECT_EQ(tracker.samples(), 3u);
}

TEST(Tracker, Validation) {
  EXPECT_THROW(ThroughputTracker(0.0), std::invalid_argument);
  EXPECT_THROW(ThroughputTracker(1.5), std::invalid_argument);
  ThroughputTracker tracker;
  EXPECT_THROW(tracker.report(0.0), std::invalid_argument);
}

class DeployerTest : public ::testing::Test {
 protected:
  DeployerTest() : comm_(comm::WirelessTechnology::kLte, 10.0) {
    // Model-A style options: partitioned (cheap edge prefix + small tx),
    // All-Edge (flat), All-Cloud (no edge cost, big tx).
    options_.push_back(make_option(core::DeploymentKind::kAllCloud, 0.0, 0.0, 150528));
    options_.push_back(make_option(core::DeploymentKind::kPartitioned, 15.0, 160.0, 36864));
    options_.push_back(make_option(core::DeploymentKind::kAllEdge, 30.0, 290.0, 0));
  }

  comm::CommModel comm_;
  std::vector<core::DeploymentOption> options_;
};

TEST_F(DeployerTest, SelectMatchesCheapestCurve) {
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy);
  for (double tu = 0.1; tu < 200.0; tu *= 1.31) {
    const std::size_t chosen = deployer.select(tu);
    for (std::size_t i = 0; i < deployer.curves().size(); ++i) {
      EXPECT_GE(deployer.curves()[i].value(tu) + 1e-9,
                deployer.curves()[chosen].value(tu));
    }
  }
}

TEST_F(DeployerTest, DynamicNeverWorseThanAnyFixedWithInstantTracking) {
  // With alpha=1 the tracker is exact, so per-sample the dynamic choice is
  // the cheapest option -> cumulative cost <= any fixed policy.
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy);
  comm::TraceGeneratorConfig trace_config;
  trace_config.mean_mbps = 8.0;
  trace_config.seed = 5;
  comm::TraceGenerator generator(trace_config);
  const comm::ThroughputTrace trace = generator.generate(40);
  const PlaybackResult dynamic = deployer.play_dynamic(trace, /*tracker_alpha=*/1.0);
  for (std::size_t i = 0; i < options_.size(); ++i) {
    const PlaybackResult fixed = deployer.play_fixed(trace, i);
    EXPECT_LE(dynamic.total_cost, fixed.total_cost + 1e-9) << "fixed option " << i;
  }
}

TEST_F(DeployerTest, PlaybackAccountingIsConsistent) {
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kLatency);
  comm::TraceGenerator generator;
  const comm::ThroughputTrace trace = generator.generate(25);
  const PlaybackResult result = deployer.play_dynamic(trace);
  ASSERT_EQ(result.per_sample_cost.size(), 25u);
  ASSERT_EQ(result.cumulative_cost.size(), 25u);
  ASSERT_EQ(result.chosen_option.size(), 25u);
  double running = 0.0;
  for (std::size_t i = 0; i < 25; ++i) {
    running += result.per_sample_cost[i];
    EXPECT_NEAR(result.cumulative_cost[i], running, 1e-9);
  }
  EXPECT_NEAR(result.total_cost, running, 1e-9);
}

TEST_F(DeployerTest, Validation) {
  EXPECT_THROW(DynamicDeployer({}, comm_, OptimizeFor::kEnergy), std::invalid_argument);
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy);
  comm::ThroughputTrace empty;
  EXPECT_THROW(deployer.play_dynamic(empty), std::invalid_argument);
  comm::TraceGenerator generator;
  const comm::ThroughputTrace trace = generator.generate(5);
  EXPECT_THROW(deployer.play_fixed(trace, 99), std::out_of_range);
}

TEST_F(DeployerTest, OutageSelectsAsAnalyzedFloor) {
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy, 0.05, 500.0);
  // A dead link (tu <= 0) behaves like the most pessimistic analyzed state
  // instead of throwing.
  EXPECT_EQ(deployer.select(0.0), deployer.select(0.05));
  EXPECT_EQ(deployer.select(-3.0), deployer.select(0.05));
  EXPECT_EQ(deployer.select_with_hysteresis(0.0, 0), deployer.select_with_hysteresis(0.05, 0));
}

TEST_F(DeployerTest, OutageSamplesAreCountedAndPricedAtFloor) {
  const double tu_min = 0.05;
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy, tu_min, 500.0);
  comm::ThroughputTrace trace;
  trace.samples_mbps = {8.0, 0.0, 6.0, -1.0, 4.0};
  trace.interval_s = 1.0;

  const PlaybackResult dynamic = deployer.play_dynamic(trace, /*tracker_alpha=*/1.0);
  EXPECT_EQ(dynamic.outages, 2u);
  ASSERT_EQ(dynamic.per_sample_cost.size(), 5u);
  // Outage samples are charged at the floor throughput for whatever option
  // was selected.
  for (const std::size_t i : {1u, 3u}) {
    EXPECT_DOUBLE_EQ(dynamic.per_sample_cost[i],
                     deployer.curves()[dynamic.chosen_option[i]].value(tu_min));
  }

  const PlaybackResult fixed = deployer.play_fixed(trace, 2);
  EXPECT_EQ(fixed.outages, 2u);
  EXPECT_DOUBLE_EQ(fixed.per_sample_cost[1], deployer.curves()[2].value(tu_min));

  // A clean trace reports zero outages.
  comm::TraceGenerator generator;
  EXPECT_EQ(deployer.play_dynamic(generator.generate(10)).outages, 0u);
}

TEST(Tracker, OutagePolicyDecaysHeldEstimateToFloor) {
  ThroughputTracker tracker(0.5, /*outage_decay=*/0.5, /*floor_mbps=*/1.0);
  // Outages before any measurement only count; no estimate is invented.
  tracker.report_outage();
  EXPECT_FALSE(tracker.has_estimate());
  EXPECT_EQ(tracker.outages(), 1u);

  tracker.report(8.0);
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 8.0);
  // An outage episode decays the held estimate geometrically...
  tracker.report_outage();
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 4.0);
  tracker.report_outage();
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 2.0);
  // ...down to the floor, never below.
  for (int i = 0; i < 10; ++i) tracker.report_outage();
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 1.0);
  EXPECT_EQ(tracker.outages(), 13u);
  EXPECT_EQ(tracker.samples(), 1u);  // outages are not measurements
  // Recovery blends the new reading with the decayed estimate.
  tracker.report(9.0);
  EXPECT_DOUBLE_EQ(tracker.estimate_mbps(), 0.5 * 9.0 + 0.5 * 1.0);

  EXPECT_THROW(ThroughputTracker(0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ThroughputTracker(0.5, 1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(ThroughputTracker(0.5, 0.5, 0.0), std::invalid_argument);
}

TEST_F(DeployerTest, FallbackPolicyGovernsOutageSelection) {
  // Latency metric: All-Cloud wins above ~60 Mbps, All-Edge below — so an
  // outage forces a real re-staging decision.
  const double tu_min = 0.05;
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kLatency, tu_min, 500.0);
  comm::ThroughputTrace trace;
  trace.interval_s = 1.0;
  for (int i = 0; i < 5; ++i) trace.samples_mbps.push_back(200.0);
  for (int i = 0; i < 3; ++i) trace.samples_mbps.push_back(0.0);
  for (int i = 0; i < 5; ++i) trace.samples_mbps.push_back(200.0);

  const std::size_t floor_choice = deployer.select(tu_min);
  const std::size_t fast_choice = deployer.select(200.0);
  ASSERT_NE(floor_choice, fast_choice);  // the episode must matter

  const PlaybackResult floor_run = deployer.play_dynamic(trace, /*tracker_alpha=*/1.0);
  FallbackPolicy hold;
  hold.on_outage = FallbackPolicy::OnOutage::kHoldLast;
  hold.hold_decay = 1.0;  // hold-last exactly
  const PlaybackResult hold_run = deployer.play_dynamic(trace, 1.0, 0.0, hold);

  for (std::size_t i = 5; i < 8; ++i) {
    // Pessimistic floor re-stages to the worst-case winner for the episode;
    // exact hold-last keeps the pre-outage choice.
    EXPECT_EQ(floor_run.chosen_option[i], floor_choice);
    EXPECT_EQ(hold_run.chosen_option[i], fast_choice);
  }
  EXPECT_EQ(floor_run.option_switches, 2u);  // into and out of the episode
  EXPECT_EQ(hold_run.option_switches, 0u);
  EXPECT_EQ(floor_run.outages, 3u);
  EXPECT_EQ(hold_run.outages, 3u);
  EXPECT_DOUBLE_EQ(hold_run.degraded_fraction, 3.0 / 13.0);
  // Pricing is policy-independent: outage samples charge the chosen option
  // at the floor, so hold-last pays for its optimism during the episode.
  EXPECT_GE(hold_run.total_cost, floor_run.total_cost);
}

TEST_F(DeployerTest, HysteresisBoundsFlappingOnOutageTraces) {
  // Mean throughput sits on the All-Edge / All-Cloud latency threshold
  // (~60 Mbps) and the Markov overlay injects deep fades on top.
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kLatency);
  comm::TraceGeneratorConfig config;
  config.mean_mbps = 60.0;
  config.sigma = 0.5;
  config.correlation = 0.5;
  config.seed = 31;
  config.outage_start_probability = 0.15;
  config.outage_mean_duration = 2.0;
  config.outage_depth_factor = 0.05;
  comm::TraceGenerator generator(config);
  const comm::ThroughputTrace trace = generator.generate(300);

  const PlaybackResult plain = deployer.play_dynamic(trace, /*tracker_alpha=*/1.0);
  const PlaybackResult damped =
      deployer.play_dynamic(trace, 1.0, /*hysteresis_margin=*/0.3);
  // The Markov fades make an instant tracker flap between options; the
  // hysteresis band absorbs most of the re-staging churn (deep fades still
  // switch — their cost gap exceeds any sane margin, as it should).
  EXPECT_GT(plain.option_switches, 20u);
  EXPECT_LT(damped.option_switches, plain.option_switches / 2);
  // Staying inside the margin costs little on the accumulated bill.
  EXPECT_LE(damped.total_cost, plain.total_cost * 1.1 + 1e-9);
}

TEST_F(DeployerTest, CloudUnreachableForcesCheapestEdgeOnly) {
  const DynamicDeployer deployer(options_, comm_, OptimizeFor::kEnergy);
  ASSERT_TRUE(deployer.cheapest_edge_only().has_value());
  EXPECT_EQ(*deployer.cheapest_edge_only(), 2u);  // the All-Edge option
  EXPECT_EQ(deployer.select_cloud_unreachable(), 2u);
  // An option set with no edge-only member cannot degrade gracefully.
  const std::vector<core::DeploymentOption> cloud_only = {options_[0], options_[1]};
  const DynamicDeployer stuck(cloud_only, comm_, OptimizeFor::kEnergy);
  EXPECT_FALSE(stuck.cheapest_edge_only().has_value());
  EXPECT_THROW(stuck.select_cloud_unreachable(), std::logic_error);
}

// End-to-end runtime scenario on the real AlexNet options: the paper's
// §V-C analysis structure (thresholds exist and switching respects them).
TEST(RuntimeEndToEnd, AlexNetEnergyThresholdIsPhysical) {
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 10.0);

  // Runtime options: best partition + All-Edge (paper model A setup).
  std::vector<core::DeploymentOption> options = {eval.energy_choice(), eval.all_edge()};
  ASSERT_EQ(options[0].kind, core::DeploymentKind::kPartitioned);
  const DynamicDeployer deployer(options, wifi, OptimizeFor::kEnergy, 0.05, 200.0);
  // There must be a threshold: edge wins at very low t_u, partition at high.
  EXPECT_EQ(deployer.select(0.1), 1u);   // All-Edge
  EXPECT_EQ(deployer.select(50.0), 0u);  // Partitioned
  ASSERT_GE(deployer.intervals().size(), 2u);
  const double threshold = deployer.intervals().front().tu_high;
  EXPECT_GT(threshold, 0.3);
  EXPECT_LT(threshold, 20.0);
}

}  // namespace
}  // namespace lens::runtime
