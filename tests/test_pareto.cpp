// Unit + property tests for Pareto utilities, hypervolume, scalarization.

#include <random>

#include <gtest/gtest.h>

#include "opt/hypervolume.hpp"
#include "opt/pareto.hpp"
#include "opt/scalarization.hpp"

namespace lens::opt {
namespace {

TEST(Dominates, StrictAndWeakCases) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 3.0}));
  EXPECT_TRUE(dominates({1.0, 3.0}, {2.0, 3.0}));  // equal in one, better in other
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0})); // equality is not domination
  EXPECT_FALSE(dominates({1.0, 4.0}, {2.0, 3.0})); // incomparable
  EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 2.0}));
}

TEST(Dominates, RejectsMismatchedOrEmpty) {
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(dominates({}, {}), std::invalid_argument);
}

TEST(ParetoFront, InsertEvictsDominated) {
  ParetoFront front;
  EXPECT_TRUE(front.insert(0, {5.0, 5.0}));
  EXPECT_TRUE(front.insert(1, {3.0, 6.0}));  // incomparable, both stay
  EXPECT_EQ(front.size(), 2u);
  EXPECT_TRUE(front.insert(2, {2.0, 2.0}));  // dominates both
  EXPECT_EQ(front.size(), 1u);
  EXPECT_EQ(front.points().front().id, 2u);
}

TEST(ParetoFront, RejectsDominatedAndDuplicates) {
  ParetoFront front;
  front.insert(0, {1.0, 1.0});
  EXPECT_FALSE(front.insert(1, {2.0, 2.0}));
  EXPECT_FALSE(front.insert(2, {1.0, 1.0}));  // exact duplicate
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, WouldAcceptMatchesInsert) {
  ParetoFront front;
  front.insert(0, {1.0, 5.0});
  front.insert(1, {5.0, 1.0});
  EXPECT_TRUE(front.would_accept({0.5, 6.0}));
  EXPECT_TRUE(front.would_accept({2.0, 2.0}));
  EXPECT_FALSE(front.would_accept({6.0, 6.0}));
}

TEST(ParetoFront, FromPointsFiltersToNondominated) {
  const ParetoFront front = ParetoFront::from_points({
      {0, {1.0, 4.0}}, {1, {2.0, 3.0}}, {2, {3.0, 3.5}}, {3, {4.0, 1.0}},
  });
  EXPECT_EQ(front.size(), 3u);  // (3, 3.5) is dominated by (2, 3)
  EXPECT_FALSE(front.would_accept({3.0, 3.5}));
}

TEST(FractionDominated, Basics) {
  ParetoFront a;
  a.insert(0, {1.0, 1.0});
  ParetoFront b;
  b.insert(0, {2.0, 2.0});
  b.insert(1, {0.5, 3.0});
  EXPECT_DOUBLE_EQ(fraction_dominated(/*victims=*/b, /*aggressors=*/a), 0.5);
  EXPECT_DOUBLE_EQ(fraction_dominated(/*victims=*/a, /*aggressors=*/b), 0.0);
  EXPECT_DOUBLE_EQ(fraction_dominated(ParetoFront{}, a), 0.0);
}

TEST(CombinedFront, CreditsAndCounts) {
  ParetoFront a;
  a.insert(0, {1.0, 5.0});
  a.insert(1, {3.0, 3.0});
  ParetoFront b;
  b.insert(0, {2.0, 4.0});   // survives (incomparable with both of a)
  b.insert(1, {5.0, 5.0});   // dominated by a's (3,3) and (1,5)? (3,3) dominates -> out
  const CombinedFrontStats stats = combined_front(a, b);
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.from_a, 2u);
  EXPECT_EQ(stats.from_b, 1u);
  EXPECT_NEAR(stats.fraction_a, 2.0 / 3.0, 1e-12);
}

TEST(CombinedFront, DuplicateObjectivesCreditA) {
  ParetoFront a;
  a.insert(0, {1.0, 1.0});
  ParetoFront b;
  b.insert(7, {1.0, 1.0});
  const CombinedFrontStats stats = combined_front(a, b);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_EQ(stats.from_a, 1u);
  EXPECT_EQ(stats.from_b, 0u);
}

// Property: no member of a front may dominate another member.
class ParetoPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParetoPropertyTest, FrontMembersAreMutuallyNondominated) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  ParetoFront front;
  for (std::size_t i = 0; i < 200; ++i) {
    front.insert(i, {unit(rng), unit(rng), unit(rng)});
  }
  for (const ParetoPoint& p : front.points()) {
    for (const ParetoPoint& q : front.points()) {
      if (&p == &q) continue;
      EXPECT_FALSE(dominates(p.objectives, q.objectives));
    }
  }
}

TEST_P(ParetoPropertyTest, InsertionOrderInvariance) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<ParetoPoint> points;
  for (std::size_t i = 0; i < 60; ++i) points.push_back({i, {unit(rng), unit(rng)}});

  const ParetoFront forward = ParetoFront::from_points(points);
  std::vector<ParetoPoint> reversed(points.rbegin(), points.rend());
  const ParetoFront backward = ParetoFront::from_points(reversed);
  EXPECT_EQ(forward.size(), backward.size());
  for (const ParetoPoint& p : forward.points()) {
    EXPECT_FALSE(backward.would_accept(p.objectives));  // already present/equal
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoPropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Hypervolume, KnownRectangles2D) {
  // Single point (1,1) vs ref (3,3): area 2*2 = 4.
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 1.0}}, {3.0, 3.0}), 4.0);
  // Two staircase points: [1,3]x[2,3] union [2,3]x[1,3] = 2 + 2 - 1.
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 2.0}, {2.0, 1.0}}, {3.0, 3.0}), 3.0);
}

TEST(Hypervolume, PointsOutsideReferenceContributeNothing) {
  EXPECT_DOUBLE_EQ(hypervolume({{4.0, 4.0}}, {3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 3.0}}, {3.0, 3.0}), 0.0);  // not strictly inside
}

TEST(Hypervolume, DominatedPointsDontChangeVolume) {
  const std::vector<std::vector<double>> front = {{1.0, 2.0}, {2.0, 1.0}};
  std::vector<std::vector<double>> with_dominated = front;
  with_dominated.push_back({2.5, 2.5});
  EXPECT_DOUBLE_EQ(hypervolume(front, {3.0, 3.0}), hypervolume(with_dominated, {3.0, 3.0}));
}

TEST(Hypervolume, Known3DBox) {
  // One point (0,0,0), ref (1,2,3): volume 6.
  EXPECT_DOUBLE_EQ(hypervolume({{0.0, 0.0, 0.0}}, {1.0, 2.0, 3.0}), 6.0);
}

TEST(Hypervolume, MonotoneUnderImprovement) {
  const double base = hypervolume({{1.0, 1.0}}, {3.0, 3.0});
  const double better = hypervolume({{0.5, 1.0}}, {3.0, 3.0});
  EXPECT_GT(better, base);
  const double more_points = hypervolume({{1.0, 1.0}, {0.2, 2.5}}, {3.0, 3.0});
  EXPECT_GT(more_points, base);
}

TEST(Hypervolume, FourDimensionalBox) {
  // One point at the origin, reference (1,2,3,4): volume 24.
  EXPECT_DOUBLE_EQ(hypervolume({{0.0, 0.0, 0.0, 0.0}}, {1.0, 2.0, 3.0, 4.0}), 24.0);
  // Two disjoint-ish boxes in 4-D: union < sum, > max.
  const double joint = hypervolume({{0.0, 0.0, 0.0, 2.0}, {0.0, 0.0, 2.0, 0.0}},
                                   {1.0, 1.0, 3.0, 3.0});
  EXPECT_GT(joint, 3.0);   // each box alone is 1*1*1*3 = 3 or 1*1*3*1 = 3... union > 3
  EXPECT_LT(joint, 6.0);   // strictly less than the sum (they overlap)
}

TEST(Hypervolume, ScalesLinearlyWithReferenceShift) {
  // Widening the reference along one axis adds exactly the slab volume for
  // a single point.
  const double base = hypervolume({{1.0, 1.0}}, {3.0, 3.0});
  const double wider = hypervolume({{1.0, 1.0}}, {4.0, 3.0});
  EXPECT_NEAR(wider - base, 1.0 * 2.0, 1e-12);
}

TEST(Hypervolume, DimensionMismatchThrows) {
  EXPECT_THROW(hypervolume({{1.0, 2.0}}, {3.0, 3.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(hypervolume({}, {}), std::invalid_argument);
}

TEST(Scalarization, NormalizerMapsRangeToUnit) {
  ObjectiveNormalizer norm(2);
  norm.observe({0.0, 100.0});
  norm.observe({10.0, 300.0});
  const auto mid = norm.normalize({5.0, 200.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.5);
  EXPECT_DOUBLE_EQ(mid[1], 0.5);
  const auto lo = norm.normalize({0.0, 100.0});
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(lo[1], 0.0);
}

TEST(Scalarization, DegenerateRangeMapsToHalf) {
  ObjectiveNormalizer norm(1);
  norm.observe({7.0});
  norm.observe({7.0});
  EXPECT_DOUBLE_EQ(norm.normalize({7.0})[0], 0.5);
}

TEST(Scalarization, AugmentedChebyshevFavorsBalancedSolutions) {
  const std::vector<double> w = {0.5, 0.5};
  const double balanced = augmented_chebyshev({0.4, 0.4}, w);
  const double skewed = augmented_chebyshev({0.0, 0.9}, w);
  EXPECT_LT(balanced, skewed);
}

TEST(Scalarization, SimplexWeightsSumToOne) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = random_simplex_weights(3, rng);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GT(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Scalarization, InputValidation) {
  EXPECT_THROW(ObjectiveNormalizer(0), std::invalid_argument);
  ObjectiveNormalizer norm(2);
  EXPECT_THROW(norm.observe({1.0}), std::invalid_argument);
  EXPECT_THROW(augmented_chebyshev({1.0}, {0.5, 0.5}), std::invalid_argument);
  std::mt19937_64 rng(1);
  EXPECT_THROW(random_simplex_weights(0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lens::opt
