// Randomized cross-module invariant sweeps: properties that must hold for
// *any* architecture / throughput / option set, checked over many seeds.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/robust.hpp"
#include "core/search_space.hpp"
#include "dnn/summary.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "sim/system.hpp"

namespace lens {
namespace {

class PropertySweep : public ::testing::TestWithParam<unsigned> {
 protected:
  PropertySweep()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_),
        rng_(GetParam()) {}

  core::SearchSpace space_;
  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  core::DeploymentEvaluator evaluator_;
  std::mt19937_64 rng_;
};

TEST_P(PropertySweep, EvaluationAtThroughputMatchesCostCurves) {
  // The throughput-free curve decomposition must reconstruct the evaluated
  // costs exactly at every throughput — for every option of any candidate.
  for (int trial = 0; trial < 5; ++trial) {
    const core::Genotype g = space_.random(rng_);
    const dnn::Architecture arch = space_.decode(g);
    std::uniform_real_distribution<double> tu_dist(0.3, 40.0);
    const double tu = tu_dist(rng_);
    const core::DeploymentEvaluation eval = evaluator_.evaluate(arch, tu);
    for (const core::DeploymentOption& option : eval.options) {
      const runtime::CostCurve lat = runtime::latency_curve(option, wifi_);
      const runtime::CostCurve ene = runtime::energy_curve(option, wifi_);
      EXPECT_NEAR(lat.value(tu), option.latency_ms, 1e-6 * option.latency_ms + 1e-9);
      EXPECT_NEAR(ene.value(tu), option.energy_mj, 1e-6 * option.energy_mj + 1e-9);
    }
  }
}

TEST_P(PropertySweep, EvaluationsAtTwoThroughputsShareEdgeCosts) {
  // Edge-side components are throughput independent.
  const core::Genotype g = space_.random(rng_);
  const dnn::Architecture arch = space_.decode(g);
  const core::DeploymentEvaluation a = evaluator_.evaluate(arch, 1.5);
  const core::DeploymentEvaluation b = evaluator_.evaluate(arch, 25.0);
  ASSERT_EQ(a.options.size(), b.options.size());
  for (std::size_t i = 0; i < a.options.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.options[i].edge_latency_ms, b.options[i].edge_latency_ms);
    EXPECT_DOUBLE_EQ(a.options[i].edge_energy_mj, b.options[i].edge_energy_mj);
    EXPECT_EQ(a.options[i].tx_bytes, b.options[i].tx_bytes);
  }
}

TEST_P(PropertySweep, DominanceIntervalsConsistentWithEvaluation) {
  // For any candidate: the deployer's winner at t_u equals the evaluator's
  // argmin at t_u (they are two routes to the same minimum).
  const core::Genotype g = space_.random(rng_);
  const dnn::Architecture arch = space_.decode(g);
  const core::DeploymentEvaluation eval = evaluator_.evaluate(arch, 5.0);
  const runtime::DynamicDeployer deployer(eval.options, wifi_,
                                          runtime::OptimizeFor::kEnergy, 0.05, 200.0);
  std::uniform_real_distribution<double> tu_dist(0.1, 150.0);
  for (int probe = 0; probe < 10; ++probe) {
    const double tu = tu_dist(rng_);
    const core::DeploymentEvaluation at_tu = evaluator_.evaluate(arch, tu);
    const std::size_t deployer_choice = deployer.select(tu);
    // Compare costs (indices can differ on exact ties).
    EXPECT_NEAR(at_tu.best_energy_mj(),
                runtime::energy_curve(eval.options[deployer_choice], wifi_).value(tu),
                1e-6 * at_tu.best_energy_mj());
  }
}

TEST_P(PropertySweep, RobustHeadroomConsistency) {
  // expected_oracle <= expected_fixed_best <= every option's expectation,
  // for arbitrary distributions and candidates.
  const core::Genotype g = space_.random(rng_);
  const dnn::Architecture arch = space_.decode(g);
  std::uniform_real_distribution<double> median_dist(0.5, 20.0);
  std::uniform_real_distribution<double> sigma_dist(0.05, 1.2);
  const auto distribution = core::ThroughputDistribution::log_normal(
      median_dist(rng_), sigma_dist(rng_), 11);
  const core::RobustDeploymentEvaluator robust(evaluator_, distribution);
  const core::RobustEvaluation result = robust.evaluate(arch);
  EXPECT_LE(result.energy.expected_oracle, result.energy.expected_fixed_best + 1e-9);
  EXPECT_LE(result.latency.expected_oracle, result.latency.expected_fixed_best + 1e-9);
  // Oracle is also bounded below by evaluating at each support point.
  double pointwise = 0.0;
  for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
    pointwise += distribution.weight[s] *
                 evaluator_.evaluate(arch, distribution.tu_mbps[s]).best_energy_mj();
  }
  EXPECT_NEAR(result.energy.expected_oracle, pointwise, 1e-6 * pointwise);
}

TEST_P(PropertySweep, SummaryAndSignatureNeverCrash) {
  for (int trial = 0; trial < 5; ++trial) {
    const core::Genotype g = space_.random(rng_);
    const dnn::Architecture arch = space_.decode(g);
    const std::string text = dnn::summary(arch);
    EXPECT_NE(text.find(arch.name()), std::string::npos);
    EXPECT_FALSE(dnn::signature(arch).empty());
  }
}

TEST_P(PropertySweep, SimulatorConservesEnergyAccounting) {
  // In a fixed-option run, every request's energy equals the option's edge
  // energy plus the link-integrated radio energy; totals must add up.
  const core::Genotype g = space_.random(rng_);
  const dnn::Architecture arch = space_.decode(g);
  const core::DeploymentEvaluation eval = evaluator_.evaluate(arch, 8.0);
  sim::SimConfig config;
  config.duration_s = 20.0;
  config.arrival_rate_hz = 2.0;
  config.policy = sim::DispatchPolicy::kFixed;
  config.fixed_option = eval.best_energy_option;
  config.seed = GetParam();
  comm::ThroughputTrace trace;
  trace.samples_mbps = {8.0};
  trace.interval_s = 1000.0;
  sim::EdgeCloudSystem system(eval.options, wifi_, trace, config);
  const sim::SimStats stats = system.run();
  double sum = 0.0;
  for (const sim::RequestRecord& r : system.records()) sum += r.energy_mj;
  EXPECT_NEAR(stats.total_energy_mj, sum, 1e-6);
  if (stats.completed > 0) {
    const core::DeploymentOption& option = eval.options[config.fixed_option];
    const double expected = option.edge_energy_mj +
                            (option.tx_bytes > 0 ? wifi_.tx_energy_mj(option.tx_bytes, 8.0)
                                                 : 0.0);
    EXPECT_NEAR(stats.energy_per_inference_mj, expected, 0.01 * expected + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Values(11u, 23u, 37u, 51u));

}  // namespace
}  // namespace lens
