// Tests for the lens::par threading layer: pool lifecycle, the
// parallel_for/parallel_map determinism + exception contracts, and the
// end-to-end guarantee that a NAS search is bit-identical at 1 vs 4 threads
// for every SearchStrategy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/nas.hpp"
#include "par/parallel.hpp"
#include "par/runtime.hpp"
#include "par/thread_pool.hpp"
#include "perf/predictor.hpp"

namespace lens {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  par::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex mutex;
  std::condition_variable done;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 16) {
        // Signal under the mutex so the waiter cannot destroy `done` while
        // this thread is still inside notify_one (condvar lifetime race).
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(done.wait_for(lock, std::chrono::seconds(10), [&] { return count == 16; }));
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  std::atomic<int> completed{0};
  {
    par::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(completed, 32);
}

TEST(ThreadPool, SizeClampsToAtLeastOneWorker) {
  par::ThreadPool clamped(0);
  EXPECT_EQ(clamped.size(), 1u);
  std::atomic<bool> ran{false};
  clamped.submit([&] { ran = true; });
  for (int spins = 0; !ran && spins < 5000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    par::parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelMap, OrderedResultsMatchSerial) {
  par::ThreadPool pool(4);
  const std::vector<double> out =
      par::parallel_map(pool, 257, [](std::size_t i) { return 1.0 / (1.0 + i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 1.0 / (1.0 + i));  // bitwise, not approximate
  }
}

TEST(ParallelMap, PropagatesExceptions) {
  par::ThreadPool pool(4);
  EXPECT_THROW(par::parallel_map(pool, 64,
                                 [](std::size_t i) -> int {
                                   if (i == 37) throw std::runtime_error("boom");
                                   return static_cast<int>(i);
                                 }),
               std::runtime_error);
  // The pool survives a failed section and keeps working.
  const std::vector<int> ok =
      par::parallel_map(pool, 8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(ok[7], 7);
}

TEST(ParallelFor, RethrowsLowestChunkError) {
  par::ThreadPool pool(4);
  try {
    par::parallel_for(pool, 100, [](std::size_t i) {
      if (i == 10) throw std::runtime_error("first");
      if (i == 90) throw std::logic_error("last");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // lowest failing chunk wins
  }
}

TEST(ParallelFor, NestedSectionsRunInline) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(pool, 8, [&](std::size_t outer) {
    // Inside a worker: the nested loop must fall back to inline execution
    // instead of deadlocking on the occupied pool.
    par::parallel_for(pool, 8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(Runtime, MaxThreadsOverride) {
  const std::size_t before = par::max_threads();
  EXPECT_GE(before, 1u);
  par::set_max_threads(3);
  EXPECT_EQ(par::max_threads(), 3u);
  EXPECT_EQ(par::global_pool().size(), 3u);
  par::set_max_threads(0);
  EXPECT_EQ(par::max_threads(), before);
}

// --- End-to-end determinism: 1-thread vs 4-thread searches are bit-identical.

core::NasResult run_search(core::SearchStrategy strategy, std::size_t threads) {
  par::set_max_threads(threads);
  perf::DeviceSimulator simulator(perf::jetson_tx2_gpu());
  perf::SimulatorOracle oracle(simulator);
  comm::CommModel comm(comm::WirelessTechnology::kWifi, 5.0);
  core::DeploymentEvaluator evaluator(oracle, comm);
  core::SearchSpace space;
  core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.strategy = strategy;
  config.mobo.num_initial = 6;
  config.mobo.num_iterations = 6;
  config.mobo.pool_size = 32;
  config.mobo.seed = 7;
  config.nsga2.population = 8;
  config.nsga2.generations = 2;
  config.nsga2.seed = 7;
  config.tu_mbps = 3.0;

  core::NasDriver driver(space, evaluator, accuracy, config);
  core::NasResult result = driver.run();
  par::set_max_threads(0);
  return result;
}

void expect_identical(const core::NasResult& a, const core::NasResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genotype, b.history[i].genotype) << "candidate " << i;
    EXPECT_EQ(a.history[i].name, b.history[i].name);
    // Bitwise equality, not EXPECT_NEAR: the determinism contract.
    EXPECT_EQ(a.history[i].error_percent, b.history[i].error_percent);
    EXPECT_EQ(a.history[i].latency_ms, b.history[i].latency_ms);
    EXPECT_EQ(a.history[i].energy_mj, b.history[i].energy_mj);
  }
  ASSERT_EQ(a.front.size(), b.front.size());
  const auto& pa = a.front.points();
  const auto& pb = b.front.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].id, pb[i].id);
    EXPECT_EQ(pa[i].objectives, pb[i].objectives);
  }
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.unique_evaluations, b.unique_evaluations);
}

TEST(Determinism, MoboSearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kMobo, 1),
                   run_search(core::SearchStrategy::kMobo, 4));
}

TEST(Determinism, Nsga2SearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kNsga2, 1),
                   run_search(core::SearchStrategy::kNsga2, 4));
}

TEST(Determinism, RandomSearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kRandom, 1),
                   run_search(core::SearchStrategy::kRandom, 4));
}

TEST(NasCache, DuplicateGenotypesAreServedFromCache) {
  // Random search with a tiny space-free budget cannot guarantee dupes, so
  // check the accounting invariant instead: hits + unique == history.
  const core::NasResult result = run_search(core::SearchStrategy::kNsga2, 2);
  EXPECT_EQ(result.cache_hits + result.unique_evaluations, result.history.size());
}

}  // namespace
}  // namespace lens
