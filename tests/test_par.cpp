// Tests for the lens::par threading layer: pool lifecycle, the
// parallel_for/parallel_map determinism + exception contracts, and the
// end-to-end guarantee that a NAS search is bit-identical at 1 vs 4 threads
// for every SearchStrategy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <cstdint>
#include <limits>
#include <set>

#include "core/nas.hpp"
#include "par/parallel.hpp"
#include "par/probe.hpp"
#include "par/runtime.hpp"
#include "par/substream.hpp"
#include "par/thread_pool.hpp"
#include "perf/predictor.hpp"

namespace lens {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  par::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex mutex;
  std::condition_variable done;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 16) {
        // Signal under the mutex so the waiter cannot destroy `done` while
        // this thread is still inside notify_one (condvar lifetime race).
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(done.wait_for(lock, std::chrono::seconds(10), [&] { return count == 16; }));
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  std::atomic<int> completed{0};
  {
    par::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(completed, 32);
}

TEST(ThreadPool, SizeClampsToAtLeastOneWorker) {
  par::ThreadPool clamped(0);
  EXPECT_EQ(clamped.size(), 1u);
  std::atomic<bool> ran{false};
  clamped.submit([&] { ran = true; });
  for (int spins = 0; !ran && spins < 5000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    par::parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelMap, OrderedResultsMatchSerial) {
  par::ThreadPool pool(4);
  const std::vector<double> out =
      par::parallel_map(pool, 257, [](std::size_t i) { return 1.0 / (1.0 + i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 1.0 / (1.0 + i));  // bitwise, not approximate
  }
}

TEST(ParallelMap, PropagatesExceptions) {
  par::ThreadPool pool(4);
  EXPECT_THROW(par::parallel_map(pool, 64,
                                 [](std::size_t i) -> int {
                                   if (i == 37) throw std::runtime_error("boom");
                                   return static_cast<int>(i);
                                 }),
               std::runtime_error);
  // The pool survives a failed section and keeps working.
  const std::vector<int> ok =
      par::parallel_map(pool, 8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(ok[7], 7);
}

TEST(ParallelFor, RethrowsLowestChunkError) {
  par::ThreadPool pool(4);
  try {
    par::parallel_for(pool, 100, [](std::size_t i) {
      if (i == 10) throw std::runtime_error("first");
      if (i == 90) throw std::logic_error("last");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // lowest failing chunk wins
  }
}

TEST(ParallelFor, NestedSectionsRunInline) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(pool, 8, [&](std::size_t outer) {
    // Inside a worker: the nested loop must fall back to inline execution
    // instead of deadlocking on the occupied pool.
    par::parallel_for(pool, 8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ChunkRange, PartitionsContiguouslyWithBalancedSizes) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 100u, 1001u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 5u, 7u, 13u, 64u}) {
      if (chunks > n) continue;
      const std::size_t base = n / chunks;
      const std::size_t extra = n % chunks;
      std::size_t expected_begin = 0;
      for (std::size_t k = 0; k < chunks; ++k) {
        const auto [begin, end] = par::chunk_range(n, chunks, k);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " chunks=" << chunks << " k=" << k;
        EXPECT_EQ(end - begin, base + (k < extra ? 1 : 0));
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);  // last chunk ends exactly at n
    }
  }
}

TEST(ChunkRange, NoOverflowNearSizeMax) {
  // The legacy `n * k / chunks` boundary form wrapped for n near
  // 2^64 / chunks, silently shrinking (or reordering) chunks. The
  // division-first form must partition even n == SIZE_MAX exactly.
  for (const std::size_t n :
       {std::numeric_limits<std::size_t>::max(),
        std::numeric_limits<std::size_t>::max() - 5,
        std::numeric_limits<std::size_t>::max() / 2 + 3}) {
    for (const std::size_t chunks : {2u, 3u, 7u, 16u}) {
      const std::size_t base = n / chunks;
      const std::size_t extra = n % chunks;
      std::size_t expected_begin = 0;
      for (std::size_t k = 0; k < chunks; ++k) {
        const auto [begin, end] = par::chunk_range(n, chunks, k);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " chunks=" << chunks << " k=" << k;
        EXPECT_GT(end, begin);  // a wrapped boundary would invert the range
        EXPECT_EQ(end - begin, base + (k < extra ? 1 : 0));
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(Substream, SeedsAreDeterministic) {
  EXPECT_EQ(par::substream_seed(42, 7), par::substream_seed(42, 7));
  EXPECT_NE(par::substream_seed(42, 7), par::substream_seed(42, 8));
  EXPECT_NE(par::substream_seed(42, 7), par::substream_seed(43, 7));
}

TEST(Substream, AvoidsXorDerivationCollisions) {
  // The banned `seed ^ index` derivation collides whenever seed1 ^ index1
  // == seed2 ^ index2 — e.g. (1, 2) and (3, 0) — handing two "independent"
  // substreams the same mt19937_64 stream. The splitmix64 mix must keep
  // every such pair distinct.
  EXPECT_NE(par::substream_seed(1, 2), par::substream_seed(3, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(par::substream_seed(seed, index));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);  // no collisions across the grid
}

TEST(ParallelFor, OversubscribedChunksCoverEveryIndexOnce) {
  // chunks > workers: the FIFO queue drains 13 chunks through 2 threads.
  par::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(101);
  par::parallel_for_chunked(pool, hits.size(), 13, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, ChunkCountNeverAffectsResults) {
  // The determinism contract, sharpened: results depend only on the index,
  // never on how many chunks the range was split into.
  par::ThreadPool pool(4);
  const std::size_t n = 257;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = 1.0 / (1.0 + static_cast<double>(i));
  for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u, 64u, 257u}) {
    std::vector<double> out(n);
    par::parallel_for_chunked(pool, n, chunks,
                              [&](std::size_t i) { out[i] = 1.0 / (1.0 + static_cast<double>(i)); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], reference[i]) << "chunks=" << chunks << " i=" << i;
    }
  }
}

TEST(ParallelFor, UnevenLoadStillBitIdentical) {
  // A straggler workload: index 0 is ~100x heavier than the rest. With
  // oversubscribed chunks the heavy chunk overlaps the light ones; the
  // output must stay bit-identical to the serial loop regardless.
  const std::size_t n = 64;
  const auto body = [](std::size_t i) {
    const std::size_t spins = i == 0 ? 20000 : 200;
    double acc = static_cast<double>(i);
    for (std::size_t s = 0; s < spins; ++s) acc += 1.0 / (1.0 + acc);
    return acc;
  };
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = body(i);
  for (const std::size_t threads : {2u, 3u, 7u, 8u}) {
    par::ThreadPool pool(threads);
    std::vector<double> out(n);
    par::parallel_for(pool, n, [&](std::size_t i) { out[i] = body(i); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], serial[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ScalingProbe, GreedyMakespanOverlapsStragglerChunks) {
  // Synthetic section: one 8 ms straggler plus seven 1 ms chunks. Greedy
  // in-order list scheduling on 2 workers runs the straggler on one worker
  // while the other drains the rest — makespan 8, not the serialized 15.
  par::ScalingProbe probe;
  probe.add_section({8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(probe.work_ms(), 15.0);
  EXPECT_DOUBLE_EQ(probe.makespan_ms(1), 15.0);
  EXPECT_DOUBLE_EQ(probe.makespan_ms(2), 8.0);
  EXPECT_DOUBLE_EQ(probe.makespan_ms(8), 8.0);  // bounded below by the straggler
  EXPECT_DOUBLE_EQ(probe.modeled_speedup(2), 15.0 / 8.0);
}

TEST(ScalingProbe, BarrierBetweenSectionsLimitsOverlap) {
  par::ScalingProbe probe;
  probe.add_section({2.0, 2.0});
  probe.add_section({2.0, 2.0});
  EXPECT_EQ(probe.sections(), 2u);
  EXPECT_EQ(probe.chunks(), 4u);
  // Sections cannot overlap each other: makespan(2) = 2 + 2, not 8 / 2.
  EXPECT_DOUBLE_EQ(probe.makespan_ms(2), 4.0);
  EXPECT_DOUBLE_EQ(probe.modeled_speedup(2), 2.0);
}

TEST(ScalingProbe, RecordsParallelForSectionsWhileActive) {
  par::ThreadPool pool(2);
  {
    par::ScalingProbe probe;
    EXPECT_EQ(par::ScalingProbe::active(), &probe);
    par::parallel_for(pool, 64, [](std::size_t) {});
    EXPECT_EQ(probe.sections(), 1u);
    EXPECT_EQ(probe.chunks(), pool.size() * par::kChunksPerThread);
    EXPECT_GE(probe.work_ms(), 0.0);
  }
  EXPECT_EQ(par::ScalingProbe::active(), nullptr);  // scope restores
}

TEST(Runtime, MaxThreadsOverride) {
  const std::size_t before = par::max_threads();
  EXPECT_GE(before, 1u);
  par::set_max_threads(3);
  EXPECT_EQ(par::max_threads(), 3u);
  EXPECT_EQ(par::global_pool().size(), 3u);
  par::set_max_threads(0);
  EXPECT_EQ(par::max_threads(), before);
}

// --- End-to-end determinism: 1-thread vs 4-thread searches are bit-identical.

core::NasResult run_search(core::SearchStrategy strategy, std::size_t threads) {
  par::set_max_threads(threads);
  perf::DeviceSimulator simulator(perf::jetson_tx2_gpu());
  perf::SimulatorOracle oracle(simulator);
  comm::CommModel comm(comm::WirelessTechnology::kWifi, 5.0);
  core::DeploymentEvaluator evaluator(oracle, comm);
  core::SearchSpace space;
  core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.strategy = strategy;
  config.mobo.num_initial = 6;
  config.mobo.num_iterations = 6;
  config.mobo.pool_size = 32;
  config.mobo.seed = 7;
  config.nsga2.population = 8;
  config.nsga2.generations = 2;
  config.nsga2.seed = 7;
  config.tu_mbps = 3.0;

  core::NasDriver driver(space, evaluator, accuracy, config);
  core::NasResult result = driver.run();
  par::set_max_threads(0);
  return result;
}

void expect_identical(const core::NasResult& a, const core::NasResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genotype, b.history[i].genotype) << "candidate " << i;
    EXPECT_EQ(a.history[i].name, b.history[i].name);
    // Bitwise equality, not EXPECT_NEAR: the determinism contract.
    EXPECT_EQ(a.history[i].error_percent, b.history[i].error_percent);
    EXPECT_EQ(a.history[i].latency_ms, b.history[i].latency_ms);
    EXPECT_EQ(a.history[i].energy_mj, b.history[i].energy_mj);
  }
  ASSERT_EQ(a.front.size(), b.front.size());
  const auto& pa = a.front.points();
  const auto& pb = b.front.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].id, pb[i].id);
    EXPECT_EQ(pa[i].objectives, pb[i].objectives);
  }
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.unique_evaluations, b.unique_evaluations);
}

TEST(Determinism, MoboSearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kMobo, 1),
                   run_search(core::SearchStrategy::kMobo, 4));
}

TEST(Determinism, MoboSearchIdenticalAcrossThreadSweep) {
  // Chunk counts scale with the pool (kChunksPerThread per worker), so every
  // thread count here exercises a different chunks-per-section layout —
  // including prime counts that never divide the index space evenly. All of
  // them must reproduce the 1-thread search bit-for-bit.
  const core::NasResult reference = run_search(core::SearchStrategy::kMobo, 1);
  for (const std::size_t threads : {2u, 3u, 7u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(reference, run_search(core::SearchStrategy::kMobo, threads));
  }
}

TEST(Determinism, Nsga2SearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kNsga2, 1),
                   run_search(core::SearchStrategy::kNsga2, 4));
}

TEST(Determinism, RandomSearchIdenticalAcrossThreadCounts) {
  expect_identical(run_search(core::SearchStrategy::kRandom, 1),
                   run_search(core::SearchStrategy::kRandom, 4));
}

TEST(NasCache, DuplicateGenotypesAreServedFromCache) {
  // Random search with a tiny space-free budget cannot guarantee dupes, so
  // check the accounting invariant instead: hits + unique == history.
  const core::NasResult result = run_search(core::SearchStrategy::kNsga2, 2);
  EXPECT_EQ(result.cache_hits + result.unique_evaluations, result.history.size());
}

}  // namespace
}  // namespace lens
