// Unit tests for the dense linear-algebra kernel (opt/matrix).

#include <cmath>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "opt/matrix.hpp"

namespace lens::opt {
namespace {

/// Bit-level double equality (stricter than ==: distinguishes ±0.0).
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

/// Random SPD matrix of size n (Gram of a Gaussian matrix plus ridge).
Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = gauss(rng);
  }
  Matrix a = b.multiply(b.transposed());
  a.add_diagonal(0.5);
  return a;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix i = Matrix::identity(2);
  const Matrix ai = a.multiply(i);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
  }
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::from_rows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 154.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(a.multiply(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<double> v = {1.0, -1.0};
  const std::vector<double> out = a.multiply(v);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
  EXPECT_DOUBLE_EQ(out[2], -1.0);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(Matrix, AddAndDiagonal) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix sum = a.add(a);
  EXPECT_DOUBLE_EQ(sum(1, 1), 8.0);
  a.add_diagonal(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
}

TEST(Cholesky, FactorOfKnownSpdMatrix) {
  // A = L L^T with L = [[2,0],[1,3]] -> A = [[4,2],[2,10]].
  const Matrix a = Matrix::from_rows({{4, 2}, {2, 10}});
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), std::domain_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, SolveReconstructsSolution) {
  const Matrix a = Matrix::from_rows({{6, 2, 1}, {2, 5, 2}, {1, 2, 4}});
  const std::vector<double> x_true = {1.0, -2.0, 3.0};
  const std::vector<double> b = a.multiply(x_true);
  const Matrix l = cholesky(a);
  const std::vector<double> x = cholesky_solve(l, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, LogDetMatchesDirectComputation) {
  const Matrix a = Matrix::from_rows({{4, 2}, {2, 10}});  // det = 36
  const Matrix l = cholesky(a);
  EXPECT_NEAR(log_det_from_cholesky(l), std::log(36.0), 1e-12);
}

TEST(Dot, BasicAndMismatch) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// Property sweep: random SPD systems solve to high accuracy.
class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, RandomSpdSolve) {
  const int n = GetParam();
  std::mt19937_64 rng(1000 + static_cast<unsigned>(n));
  std::normal_distribution<double> gauss(0.0, 1.0);
  Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) b(r, c) = gauss(rng);
  }
  Matrix a = b.multiply(b.transposed());  // PSD
  a.add_diagonal(0.5);                    // strictly PD
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (double& v : x_true) v = gauss(rng);
  const std::vector<double> rhs = a.multiply(x_true);
  const Matrix l = cholesky(a);
  const std::vector<double> x = cholesky_solve(l, rhs);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);

  // L L^T reconstructs A.
  const Matrix rebuilt = l.multiply(l.transposed());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest, ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

TEST(TriangularSolves, ForwardAndTransposeAgreeWithDense) {
  const Matrix l = Matrix::from_rows({{2, 0, 0}, {1, 3, 0}, {-1, 2, 4}});
  const std::vector<double> b = {2.0, 7.0, 9.0};
  const std::vector<double> y = solve_lower(l, b);
  // Verify L y = b.
  const std::vector<double> ly = l.multiply(y);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ly[i], b[i], 1e-12);
  const std::vector<double> z = solve_lower_transpose(l, b);
  const std::vector<double> ltz = l.transposed().multiply(z);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ltz[i], b[i], 1e-12);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

// ---- CholeskyFactor: the incremental factorization layer --------------------

TEST(CholeskyFactor, SingleElementEdgeCase) {
  CholeskyFactor f;
  EXPECT_TRUE(f.empty());
  f.extend({}, 4.0);  // 1x1: L = [2]
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(f.log_det(), std::log(4.0));
  const std::vector<double> x = f.solve({8.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);

  const CholeskyFactor g = CholeskyFactor::factorize(Matrix::from_rows({{4.0}}));
  EXPECT_TRUE(same_bits(g.at(0, 0), f.at(0, 0)));
}

TEST(CholeskyFactor, FactorizeMatchesFreeCholeskyBitForBit) {
  for (const std::size_t n : {1u, 2u, 5u, 17u, 40u}) {
    const Matrix a = random_spd(n, 90 + static_cast<unsigned>(n));
    const Matrix reference = cholesky(a);
    const CholeskyFactor f = CholeskyFactor::factorize(a);
    ASSERT_EQ(f.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        EXPECT_TRUE(same_bits(f.at(i, j), reference(i, j))) << "n=" << n << " (" << i << "," << j << ")";
      }
      for (std::size_t j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(f.at(i, j), 0.0);
    }
    EXPECT_TRUE(same_bits(f.log_det(), log_det_from_cholesky(reference)));
  }
}

TEST(CholeskyFactor, ExtendEqualsFullFactorizationBitForBit) {
  // Randomized SPD append sweep: start from a small factor and append rows
  // one at a time; after every append the incrementally-built factor must
  // equal the from-scratch factorization of the leading block, bit for bit.
  const std::size_t n_max = 32;
  const Matrix a = random_spd(n_max, 1234);
  CholeskyFactor incremental;
  std::vector<double> cross;
  for (std::size_t n = 1; n <= n_max; ++n) {
    cross.resize(n - 1);
    for (std::size_t j = 0; j + 1 < n; ++j) cross[j] = a(n - 1, j);
    incremental.extend(cross, a(n - 1, n - 1));

    Matrix leading(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) leading(r, c) = a(r, c);
    }
    const Matrix reference = cholesky(leading);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        ASSERT_TRUE(same_bits(incremental.at(i, j), reference(i, j)))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(CholeskyFactor, BlockedSolveLowerMatchesScalarOracleBitForBit) {
  // solve_lower's blocked four-row forward substitution vs the scalar
  // row-oriented oracle (solve_lower_reference), across sizes that exercise
  // every tail length mod 4. Bitwise equality: the blocked panels must keep
  // each row's accumulation in ascending column order, which makes the two
  // paths the same sequence of IEEE operations.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u, 16u, 33u, 64u}) {
    const Matrix a = random_spd(n, 400 + static_cast<unsigned>(n));
    const CholeskyFactor f = CholeskyFactor::factorize(a);
    std::mt19937_64 rng(500 + n);
    std::normal_distribution<double> gauss(0.0, 1.0);
    std::vector<double> b(n);
    for (double& v : b) v = gauss(rng);
    const std::vector<double> blocked = f.solve_lower(b);
    const std::vector<double> reference = f.solve_lower_reference(b);
    ASSERT_EQ(blocked.size(), reference.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(blocked[i], reference[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(CholeskyFactor, SolvesMatchFreeFunctions) {
  const std::size_t n = 12;
  const Matrix a = random_spd(n, 77);
  const Matrix l = cholesky(a);
  const CholeskyFactor f = CholeskyFactor::factorize(a);
  std::mt19937_64 rng(7);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> b(n);
  for (double& v : b) v = gauss(rng);

  const std::vector<double> fwd = f.solve_lower(b);
  const std::vector<double> fwd_ref = solve_lower(l, b);
  const std::vector<double> bwd = f.solve_lower_transpose(b);
  const std::vector<double> bwd_ref = solve_lower_transpose(l, b);
  const std::vector<double> full = f.solve(b);
  const std::vector<double> full_ref = cholesky_solve(l, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(fwd[i], fwd_ref[i]));
    EXPECT_TRUE(same_bits(bwd[i], bwd_ref[i]));
    EXPECT_TRUE(same_bits(full[i], full_ref[i]));
  }
}

TEST(CholeskyFactor, RejectsNonPositiveDefiniteExtension) {
  // [[1, 1], [1, 1]] is singular: the second pivot is exactly 0.
  CholeskyFactor f;
  f.extend({}, 1.0);
  EXPECT_THROW(f.extend({1.0}, 1.0), std::domain_error);
  // A failed extend leaves the factor untouched and usable.
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 1.0);
  f.extend({0.5}, 1.0);  // a valid append still works afterwards
  EXPECT_EQ(f.size(), 2u);

  EXPECT_THROW(CholeskyFactor::factorize(Matrix::from_rows({{1, 2}, {2, 1}})),
               std::domain_error);
  EXPECT_THROW(CholeskyFactor::factorize(Matrix(2, 3)), std::invalid_argument);
}

TEST(CholeskyFactor, ValidatesShapes) {
  CholeskyFactor f = CholeskyFactor::factorize(Matrix::identity(3));
  EXPECT_THROW(f.extend({1.0}, 1.0), std::invalid_argument);       // cross_row too short
  EXPECT_THROW(f.solve({1.0, 2.0}), std::invalid_argument);        // rhs size mismatch
  EXPECT_THROW(f.solve_lower({1.0}), std::invalid_argument);
  EXPECT_THROW(f.solve_lower_transpose({1.0}), std::invalid_argument);
  EXPECT_THROW(f.at(3, 0), std::out_of_range);
}

TEST(CholeskyFactor, DenseRoundTrip) {
  const Matrix a = random_spd(6, 55);
  const CholeskyFactor f = CholeskyFactor::factorize(a);
  const Matrix dense = f.dense();
  const Matrix rebuilt = dense.multiply(dense.transposed());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-8);
  }
}

}  // namespace
}  // namespace lens::opt
