// Tests for the architecture IR: shape algebra, FLOPs/params, presets,
// data-size accounting, partition-candidate identification.

#include <gtest/gtest.h>

#include "dnn/architecture.hpp"
#include "dnn/presets.hpp"

namespace lens::dnn {
namespace {

TEST(LayerSpec, FactoriesValidate) {
  EXPECT_THROW(LayerSpec::conv(0, 3), std::invalid_argument);
  EXPECT_THROW(LayerSpec::conv(16, -1), std::invalid_argument);
  EXPECT_THROW(LayerSpec::max_pool(0), std::invalid_argument);
  EXPECT_THROW(LayerSpec::dense(0), std::invalid_argument);
}

TEST(LayerSpec, ConvDefaultsToSamePadding) {
  const LayerSpec c3 = LayerSpec::conv(16, 3);
  EXPECT_EQ(c3.padding, 1);
  const LayerSpec c7 = LayerSpec::conv(16, 7);
  EXPECT_EQ(c7.padding, 3);
  const LayerSpec explicit_pad = LayerSpec::conv(16, 5, 1, 0);
  EXPECT_EQ(explicit_pad.padding, 0);
}

TEST(Shapes, ConvSamePaddingPreservesSpatial) {
  const TensorShape in{32, 32, 3};
  const TensorShape out = output_shape(LayerSpec::conv(64, 3), in);
  EXPECT_EQ(out.height, 32);
  EXPECT_EQ(out.width, 32);
  EXPECT_EQ(out.channels, 64);
}

TEST(Shapes, ConvStrideAndPadding) {
  // AlexNet conv1: 224 -> (224 + 4 - 11)/4 + 1 = 55.
  const TensorShape out = output_shape(LayerSpec::conv(96, 11, 4, 2), {224, 224, 3});
  EXPECT_EQ(out.height, 55);
  EXPECT_EQ(out.width, 55);
  EXPECT_EQ(out.channels, 96);
}

TEST(Shapes, PoolHalvesWithDefaults) {
  const TensorShape out = output_shape(LayerSpec::max_pool(), {56, 56, 128});
  EXPECT_EQ(out.height, 28);
  EXPECT_EQ(out.width, 28);
  EXPECT_EQ(out.channels, 128);
}

TEST(Shapes, OverlappingPool) {
  // AlexNet pools: k3 s2, 55 -> 27.
  const TensorShape out = output_shape(LayerSpec::max_pool(3, 2), {55, 55, 96});
  EXPECT_EQ(out.height, 27);
}

TEST(Shapes, DenseFlattensAnything) {
  const TensorShape out = output_shape(LayerSpec::dense(100), {6, 6, 256});
  EXPECT_EQ(out.height, 1);
  EXPECT_EQ(out.width, 1);
  EXPECT_EQ(out.channels, 100);
}

TEST(Shapes, RejectsCollapsedOutputs) {
  EXPECT_THROW(output_shape(LayerSpec::max_pool(2, 2), {1, 1, 8}), std::invalid_argument);
  EXPECT_THROW(output_shape(LayerSpec::conv(8, 7, 1, 0), {3, 3, 1}), std::invalid_argument);
  EXPECT_THROW(output_shape(LayerSpec::conv(8, 3), {0, 4, 1}), std::invalid_argument);
}

TEST(Flops, DenseCountsMacsAndBias) {
  // 10 -> 5: 2*10*5 + 5 = 105, + relu 5 elements.
  const LayerSpec fc = LayerSpec::dense(5);
  EXPECT_EQ(layer_flops(fc, {1, 1, 10}), 105u + 5u);
  LayerSpec no_act = fc;
  no_act.activation = Activation::kNone;
  EXPECT_EQ(layer_flops(no_act, {1, 1, 10}), 105u);
}

TEST(Flops, ConvMatchesHandComputation) {
  // 8x8x2 input, 4 filters, k3 same padding: out 8*8*4 = 256 elems.
  // macs = 256 * 3*3*2 = 4608, flops = 2*4608 + 256 (bias) = 9472;
  // +bn 4*256 +relu 256 when enabled.
  const LayerSpec bare = LayerSpec::conv(4, 3, 1, -1, /*batch_norm=*/false,
                                         Activation::kNone);
  EXPECT_EQ(layer_flops(bare, {8, 8, 2}), 9472u);
  const LayerSpec fused = LayerSpec::conv(4, 3);  // bn + relu
  EXPECT_EQ(layer_flops(fused, {8, 8, 2}), 9472u + 4u * 256u + 256u);
}

TEST(Params, ConvAndDenseCounts) {
  const LayerSpec conv = LayerSpec::conv(4, 3, 1, -1, /*batch_norm=*/false);
  EXPECT_EQ(layer_params(conv, {8, 8, 2}), 3u * 3u * 2u * 4u + 4u);
  const LayerSpec conv_bn = LayerSpec::conv(4, 3);
  EXPECT_EQ(layer_params(conv_bn, {8, 8, 2}), 3u * 3u * 2u * 4u + 4u + 8u);
  EXPECT_EQ(layer_params(LayerSpec::dense(5), {1, 1, 10}), 55u);
  EXPECT_EQ(layer_params(LayerSpec::max_pool(), {8, 8, 2}), 0u);
}

TEST(Architecture, ValidatesConstruction) {
  EXPECT_THROW(Architecture("x", {32, 32, 3}, {}), std::invalid_argument);
  EXPECT_THROW(Architecture("x", {0, 32, 3}, {LayerSpec::conv(8, 3)}),
               std::invalid_argument);
  // Spatial layer after dense is rejected.
  EXPECT_THROW(Architecture("x", {32, 32, 3},
                            {LayerSpec::dense(10), LayerSpec::max_pool()}),
               std::invalid_argument);
}

TEST(Architecture, TraceAccumulatesTotals) {
  const Architecture arch("tiny", {8, 8, 3},
                          {LayerSpec::conv(4, 3), LayerSpec::max_pool(),
                           LayerSpec::dense(10, Activation::kSoftmax)});
  ASSERT_EQ(arch.num_layers(), 3u);
  std::uint64_t flops = 0;
  std::uint64_t params = 0;
  for (const LayerInfo& info : arch.layers()) {
    flops += info.flops;
    params += info.params;
  }
  EXPECT_EQ(arch.total_flops(), flops);
  EXPECT_EQ(arch.total_params(), params);
  EXPECT_EQ(arch.layers()[1].output.height, 4);
  EXPECT_EQ(arch.layers()[2].output.channels, 10);
}

TEST(Architecture, AlexNetStyleNames) {
  const Architecture a = alexnet();
  const auto& layers = a.layers();
  EXPECT_EQ(layers[0].name, "conv1");
  EXPECT_EQ(layers[1].name, "pool1");
  EXPECT_EQ(layers[2].name, "conv2");
  EXPECT_EQ(layers[3].name, "pool2");
  EXPECT_EQ(layers[7].name, "pool5");
  EXPECT_EQ(layers[8].name, "fc6");
  EXPECT_EQ(layers[10].name, "fc8");
}

TEST(Presets, AlexNetCanonicalShapes) {
  const Architecture a = alexnet();
  EXPECT_EQ(a.layers()[0].output, (TensorShape{55, 55, 96}));
  EXPECT_EQ(a.layers()[1].output, (TensorShape{27, 27, 96}));
  EXPECT_EQ(a.layers()[7].output, (TensorShape{6, 6, 256}));     // pool5
  EXPECT_EQ(a.layers()[8].output, (TensorShape{1, 1, 4096}));    // fc6
  // ~61M parameters (within 5%).
  EXPECT_NEAR(static_cast<double>(a.total_params()), 61.0e6, 3.0e6);
}

TEST(Presets, Vgg16Totals) {
  const Architecture v = vgg16();
  // 13 convs + 5 pools + 3 fcs.
  EXPECT_EQ(v.num_layers(), 21u);
  EXPECT_NEAR(static_cast<double>(v.total_params()), 138.0e6, 5.0e6);
}

TEST(Presets, Vgg11Totals) {
  const Architecture v = vgg11();
  // 8 convs + 5 pools + 3 fcs.
  EXPECT_EQ(v.num_layers(), 16u);
  EXPECT_EQ(v.count_kind(LayerKind::kConv), 8u);
  EXPECT_NEAR(static_cast<double>(v.total_params()), 133.0e6, 5.0e6);
  // Fewer convs than VGG-16 but the same FC stack.
  EXPECT_LT(v.total_flops(), vgg16().total_flops());
}

TEST(Presets, LeNet5ShapesAndDegenerateSplitProfile) {
  const Architecture l = lenet5();
  // Canonical trace: 32 -> conv5 -> 28 -> pool -> 14 -> conv5 -> 10 -> pool -> 5.
  EXPECT_EQ(l.layers()[0].output, (TensorShape{28, 28, 6}));
  EXPECT_EQ(l.layers()[3].output, (TensorShape{5, 5, 16}));
  EXPECT_NEAR(static_cast<double>(l.total_params()), 61706.0, 2000.0);
  // With a 1 kB uint8 input, every fp32 feature map (even pool2's 5x5x16 =
  // 1.6 kB) exceeds the input: only the FC outputs are viable splits — the
  // opposite profile of AlexNet's Fig. 1.
  const auto candidates = l.partition_candidates();
  EXPECT_EQ(candidates.size(), 3u);
  EXPECT_EQ(l.layers()[candidates.front()].spec.kind, LayerKind::kDense);
}

TEST(DataSize, PaperInputIs147kB) {
  const Architecture a = alexnet();
  EXPECT_EQ(a.input_bytes(), 224u * 224u * 3u);  // 150528 B = 147 kB
}

TEST(DataSize, AlexNetPartitionCandidatesStartAtPool5) {
  // Paper Fig. 1: with uint8 input and fp32 activations, every layer before
  // pool5 produces more wire bytes than the input.
  const Architecture a = alexnet();
  const std::vector<std::size_t> candidates = a.partition_candidates();
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(a.layers()[candidates.front()].name, "pool5");
  // fc6..fc8 also viable.
  EXPECT_EQ(candidates.size(), 4u);
}

TEST(DataSize, CustomPolicyChangesCandidates) {
  // Counting activations at 1 byte/element makes earlier pools viable.
  const Architecture a = alexnet();
  DataSizeModel bytes1;
  bytes1.activation_bytes_per_element = 1;
  const auto candidates = a.partition_candidates(bytes1);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(a.layers()[candidates.front()].name, "pool1");
}

TEST(Architecture, OutputBytesBoundsChecked) {
  const Architecture a = alexnet();
  EXPECT_THROW(a.output_bytes(a.num_layers()), std::out_of_range);
}

TEST(Architecture, CountKind) {
  const Architecture a = alexnet();
  EXPECT_EQ(a.count_kind(LayerKind::kConv), 5u);
  EXPECT_EQ(a.count_kind(LayerKind::kMaxPool), 3u);
  EXPECT_EQ(a.count_kind(LayerKind::kDense), 3u);
}

TEST(Shapes, AsymmetricInputsPropagate) {
  // Non-square inputs flow through every kind correctly.
  const TensorShape in{31, 17, 5};
  const TensorShape conv_out = output_shape(LayerSpec::conv(8, 3), in);
  EXPECT_EQ(conv_out.height, 31);
  EXPECT_EQ(conv_out.width, 17);
  const TensorShape pool_out = output_shape(LayerSpec::max_pool(2, 2), in);
  EXPECT_EQ(pool_out.height, 15);
  EXPECT_EQ(pool_out.width, 8);
}

TEST(Flops, MonotoneInEveryParameter) {
  const TensorShape in{28, 28, 16};
  const auto base = layer_flops(LayerSpec::conv(32, 3), in);
  EXPECT_GT(layer_flops(LayerSpec::conv(64, 3), in), base);   // more filters
  EXPECT_GT(layer_flops(LayerSpec::conv(32, 5), in), base);   // bigger kernel
  EXPECT_LT(layer_flops(LayerSpec::conv(32, 3, 2), in), base); // stride shrinks output
}

TEST(Architecture, SingleDenseStackIsValid) {
  // Pure-MLP architectures (no spatial layers at all) are legal.
  const Architecture mlp("mlp", {1, 1, 64},
                         {LayerSpec::dense(32), LayerSpec::dense(10, Activation::kSoftmax)});
  EXPECT_EQ(mlp.num_layers(), 2u);
  EXPECT_EQ(mlp.layers()[0].name, "fc1");
  EXPECT_EQ(mlp.layers()[1].name, "fc2");
}

TEST(KindName, AllKinds) {
  EXPECT_EQ(kind_name(LayerKind::kConv), "conv");
  EXPECT_EQ(kind_name(LayerKind::kMaxPool), "pool");
  EXPECT_EQ(kind_name(LayerKind::kDense), "fc");
}

// Property: conv output shrinks monotonically with stride.
class StrideSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(StrideSweepTest, SpatialSizeDecreasesWithStride) {
  const int stride = GetParam();
  const TensorShape out = output_shape(LayerSpec::conv(8, 3, stride, 1), {64, 64, 3});
  EXPECT_EQ(out.height, (64 + 2 - 3) / stride + 1);
  if (stride > 1) {
    const TensorShape denser = output_shape(LayerSpec::conv(8, 3, stride - 1, 1), {64, 64, 3});
    EXPECT_GT(denser.height, out.height);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweepTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lens::dnn
