// Tests for the distribution-aware evaluation extension, the edge memory
// budget, and hysteretic runtime switching.

#include <cmath>

#include <gtest/gtest.h>

#include "comm/trace.hpp"
#include "core/robust.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"

namespace lens::core {
namespace {

TEST(ThroughputDistribution, LogNormalQuantiles) {
  const auto d = ThroughputDistribution::log_normal(10.0, 0.5, 9);
  ASSERT_EQ(d.tu_mbps.size(), 9u);
  d.validate();
  // Median atom sits at the median.
  EXPECT_NEAR(d.tu_mbps[4], 10.0, 1e-6);
  // Symmetric in log space: sqrt(q_lo * q_hi) ~ median.
  EXPECT_NEAR(std::sqrt(d.tu_mbps[0] * d.tu_mbps[8]), 10.0, 0.2);
  // Mean exceeds the median for a log-normal.
  EXPECT_GT(d.mean(), 10.0);
}

TEST(ThroughputDistribution, ZeroSigmaCollapses) {
  const auto d = ThroughputDistribution::log_normal(5.0, 0.0, 5);
  for (double tu : d.tu_mbps) EXPECT_NEAR(tu, 5.0, 1e-9);
  EXPECT_NEAR(d.mean(), 5.0, 1e-9);
}

TEST(ThroughputDistribution, FromSamplesAndValidation) {
  const auto d = ThroughputDistribution::from_samples({2.0, 4.0, 6.0});
  EXPECT_NEAR(d.mean(), 4.0, 1e-12);
  EXPECT_THROW(ThroughputDistribution::from_samples({}), std::invalid_argument);
  EXPECT_THROW(ThroughputDistribution::log_normal(-1.0, 0.5), std::invalid_argument);
  ThroughputDistribution bad;
  bad.tu_mbps = {1.0};
  bad.weight = {0.5};
  EXPECT_THROW(bad.validate(), std::invalid_argument);  // weights must sum to 1
  bad.weight = {1.0};
  bad.tu_mbps = {-1.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

class RobustEvalTest : public ::testing::Test {
 protected:
  RobustEvalTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_),
        alexnet_(dnn::alexnet()) {}

  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  DeploymentEvaluator evaluator_;
  dnn::Architecture alexnet_;
};

TEST_F(RobustEvalTest, OracleNeverWorseThanFixed) {
  const RobustDeploymentEvaluator robust(
      evaluator_, ThroughputDistribution::log_normal(8.0, 0.8, 15));
  const RobustEvaluation result = robust.evaluate(alexnet_);
  EXPECT_LE(result.latency.expected_oracle, result.latency.expected_fixed_best + 1e-9);
  EXPECT_LE(result.energy.expected_oracle, result.energy.expected_fixed_best + 1e-9);
  EXPECT_GE(result.latency.switching_headroom(), 0.0);
  EXPECT_LT(result.latency.switching_headroom(), 1.0);
}

TEST_F(RobustEvalTest, DegenerateDistributionMatchesPointEvaluation) {
  const RobustDeploymentEvaluator robust(
      evaluator_, ThroughputDistribution::log_normal(10.0, 0.0, 3));
  const RobustEvaluation result = robust.evaluate(alexnet_);
  const DeploymentEvaluation point = evaluator_.evaluate(alexnet_, 10.0);
  EXPECT_NEAR(result.latency.expected_fixed_best, point.best_latency_ms(), 1e-6);
  EXPECT_NEAR(result.energy.expected_fixed_best, point.best_energy_mj(), 1e-6);
  // With a single support point, oracle == fixed best.
  EXPECT_NEAR(result.latency.expected_oracle, result.latency.expected_fixed_best, 1e-9);
}

TEST_F(RobustEvalTest, WiderDistributionsIncreaseHeadroom) {
  // A distribution that straddles deployment thresholds gives the runtime
  // switcher something to do; a tight one does not.
  const RobustDeploymentEvaluator narrow(
      evaluator_, ThroughputDistribution::log_normal(8.0, 0.05, 15));
  const RobustDeploymentEvaluator wide(
      evaluator_, ThroughputDistribution::log_normal(8.0, 1.2, 15));
  const double narrow_headroom = narrow.evaluate(alexnet_).energy.switching_headroom();
  const double wide_headroom = wide.evaluate(alexnet_).energy.switching_headroom();
  EXPECT_GE(wide_headroom, narrow_headroom);
}

TEST_F(RobustEvalTest, FixedBestIndexIsTrueArgmin) {
  const auto distribution = ThroughputDistribution::log_normal(6.0, 0.7, 11);
  const RobustDeploymentEvaluator robust(evaluator_, distribution);
  const RobustEvaluation result = robust.evaluate(alexnet_);
  // Recompute the expected cost of every option and confirm the argmin.
  for (std::size_t i = 0; i < result.base.options.size(); ++i) {
    double expected = 0.0;
    const DeploymentOption& o = result.base.options[i];
    for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
      double cost = o.edge_energy_mj;
      if (o.tx_bytes > 0) cost += wifi_.tx_energy_mj(o.tx_bytes, distribution.tu_mbps[s]);
      expected += distribution.weight[s] * cost;
    }
    EXPECT_GE(expected + 1e-9, result.energy.expected_fixed_best);
  }
}

// ---- edge memory budget -----------------------------------------------------

TEST_F(RobustEvalTest, MemoryBudgetFiltersHeavyOptions) {
  // AlexNet carries ~61M params (~244 MB fp32); pool5 splits keep only the
  // conv trunk (~3.7M params, ~15 MB) on the edge.
  EvaluatorConfig config;
  config.edge_memory_budget_bytes = 50ULL << 20;  // 50 MB
  const DeploymentEvaluator budgeted(oracle_, wifi_, config);
  const DeploymentEvaluation result = budgeted.evaluate(alexnet_, 10.0);
  EXPECT_FALSE(result.has_all_edge());          // 244 MB does not fit
  EXPECT_NO_THROW(result.all_cloud());          // always available
  bool has_conv_split = false;
  for (const DeploymentOption& o : result.options) {
    EXPECT_LE(o.edge_weight_bytes, config.edge_memory_budget_bytes);
    if (o.kind == DeploymentKind::kPartitioned) has_conv_split = true;
  }
  EXPECT_TRUE(has_conv_split);
  EXPECT_THROW(result.all_edge(), std::logic_error);
}

TEST_F(RobustEvalTest, UnlimitedBudgetKeepsEverything) {
  const DeploymentEvaluation result = evaluator_.evaluate(alexnet_, 10.0);
  EXPECT_TRUE(result.has_all_edge());
  // Weight accounting: All-Edge holds the full model.
  EXPECT_EQ(result.all_edge().edge_weight_bytes, 4ULL * alexnet_.total_params());
  EXPECT_EQ(result.all_cloud().edge_weight_bytes, 0u);
}

TEST_F(RobustEvalTest, TinyBudgetForcesAllCloud) {
  EvaluatorConfig config;
  config.edge_memory_budget_bytes = 1024;  // nothing fits
  const DeploymentEvaluator budgeted(oracle_, wifi_, config);
  const DeploymentEvaluation result = budgeted.evaluate(alexnet_, 10.0);
  ASSERT_EQ(result.options.size(), 1u);
  EXPECT_EQ(result.options.front().kind, DeploymentKind::kAllCloud);
  EXPECT_EQ(result.best_latency_option, 0u);
}

// ---- fault-scenario pricing -------------------------------------------------

TEST(FaultScenarios, DefaultMixIsWellFormed) {
  const std::vector<FaultScenario> scenarios = default_fault_scenarios(10.0);
  ASSERT_GE(scenarios.size(), 4u);
  double mass = 0.0;
  bool has_cloud_outage = false;
  for (const FaultScenario& s : scenarios) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.probability, 0.0);
    EXPECT_GT(s.tu_mbps, 0.0);
    EXPECT_GE(s.edge_slowdown, 1.0);
    has_cloud_outage |= !s.cloud_available;
    mass += s.probability;
  }
  EXPECT_TRUE(has_cloud_outage);
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_THROW(default_fault_scenarios(0.0), std::invalid_argument);
}

TEST_F(RobustEvalTest, HealthyScenarioMatchesPointEvaluation) {
  const RobustDeploymentEvaluator robust(
      evaluator_, ThroughputDistribution::from_samples({10.0}));
  const DeploymentPlan plan = evaluator_.compile(alexnet_);
  const std::vector<FaultScenario> healthy = {
      {"healthy", 1.0, 10.0, true, 1.0, 0.0}};
  const FaultEvaluation result = robust.evaluate_under_faults(plan, healthy);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].servable);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  const DeploymentEvaluation point = evaluator_.evaluate(alexnet_, 10.0);
  EXPECT_NEAR(result.expected_latency_ms, point.best_latency_ms(), 1e-9);
  EXPECT_NEAR(result.degradation_ratio, 1.0, 1e-9);
}

TEST_F(RobustEvalTest, CloudOutageScenarioForcesEdgeOnlyOption) {
  const RobustDeploymentEvaluator robust(
      evaluator_, ThroughputDistribution::from_samples({10.0}));
  const DeploymentPlan plan = evaluator_.compile(alexnet_);
  const FaultEvaluation result =
      robust.evaluate_under_faults(plan, default_fault_scenarios(10.0));
  EXPECT_DOUBLE_EQ(result.availability, 1.0);  // AlexNet has an All-Edge option
  EXPECT_GE(result.degradation_ratio, 1.0 - 1e-9);
  for (const FaultScenarioOutcome& o : result.outcomes) {
    ASSERT_TRUE(o.servable) << o.scenario.name;
    if (!o.scenario.cloud_available) {
      EXPECT_EQ(plan.options()[o.best_option].tx_bytes, 0u) << o.scenario.name;
    }
    if (o.scenario.rtt_extra_ms > 0.0 &&
        plan.options()[o.best_option].tx_bytes > 0) {
      // A transmitting winner under an RTT spike must have absorbed it.
      EXPECT_GE(o.latency_ms, o.scenario.rtt_extra_ms);
    }
  }
}

TEST_F(RobustEvalTest, PlanWithoutEdgeOptionLosesAvailability) {
  // 1 KB budget leaves only All-Cloud: the cloud-outage scenario is
  // unservable and its probability mass is lost from availability.
  EvaluatorConfig config;
  config.edge_memory_budget_bytes = 1024;
  const DeploymentEvaluator budgeted(oracle_, wifi_, config);
  const RobustDeploymentEvaluator robust(
      budgeted, ThroughputDistribution::from_samples({10.0}));
  const DeploymentPlan plan = budgeted.compile(alexnet_);
  const std::vector<FaultScenario> scenarios = default_fault_scenarios(10.0);
  const FaultEvaluation result = robust.evaluate_under_faults(plan, scenarios);
  double lost = 0.0;
  for (const FaultScenarioOutcome& o : result.outcomes) {
    if (!o.scenario.cloud_available) {
      EXPECT_FALSE(o.servable);
      lost += o.scenario.probability;
    } else {
      EXPECT_TRUE(o.servable);
    }
  }
  EXPECT_GT(lost, 0.0);
  EXPECT_NEAR(result.availability, 1.0 - lost, 1e-12);
}

TEST_F(RobustEvalTest, FaultEvaluationValidation) {
  const RobustDeploymentEvaluator robust(
      evaluator_, ThroughputDistribution::from_samples({10.0}));
  const DeploymentPlan plan = evaluator_.compile(alexnet_);
  EXPECT_THROW(robust.evaluate_under_faults(plan, {}), std::invalid_argument);
  EXPECT_THROW(robust.evaluate_under_faults(plan, {{"half", 0.5, 10.0, true, 1.0, 0.0}}),
               std::invalid_argument);  // mass != 1
  EXPECT_THROW(
      robust.evaluate_under_faults(plan, {{"dead-link", 1.0, 0.0, true, 1.0, 0.0}}),
      std::invalid_argument);  // non-positive throughput
  EXPECT_THROW(
      robust.evaluate_under_faults(plan, {{"speedup", 1.0, 10.0, true, 0.5, 0.0}}),
      std::invalid_argument);  // slowdown < 1
}

}  // namespace
}  // namespace lens::core

namespace lens::runtime {
namespace {

std::vector<core::DeploymentOption> two_options() {
  core::DeploymentOption partitioned;
  partitioned.kind = core::DeploymentKind::kPartitioned;
  partitioned.edge_latency_ms = 10.0;
  partitioned.tx_bytes = 40000;
  core::DeploymentOption edge;
  edge.kind = core::DeploymentKind::kAllEdge;
  edge.edge_latency_ms = 30.0;
  return {partitioned, edge};
}

TEST(Hysteresis, SuppressesMarginalSwitches) {
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const DynamicDeployer deployer(two_options(), wifi, OptimizeFor::kLatency);
  // Find the crossover and probe just on the far side of it: the cheapest
  // option flips, but only barely, so a 10% margin holds the current one.
  const auto threshold = crossover_tu(deployer.curves()[0], deployer.curves()[1]);
  ASSERT_TRUE(threshold.has_value());
  const double just_past = *threshold * 0.98;  // slightly cheaper for option 1
  const std::size_t plain = deployer.select(just_past);
  EXPECT_EQ(deployer.select_with_hysteresis(just_past, 1 - plain, 0.10), 1 - plain);
  // Far past the threshold, the switch happens regardless of the margin.
  EXPECT_EQ(deployer.select_with_hysteresis(*threshold / 4.0, 0, 0.10),
            deployer.select(*threshold / 4.0));
}

TEST(Hysteresis, ReducesSwitchCountOnNoisyTrace) {
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const DynamicDeployer deployer(two_options(), wifi, OptimizeFor::kLatency);
  const auto threshold = crossover_tu(deployer.curves()[0], deployer.curves()[1]);
  ASSERT_TRUE(threshold.has_value());
  comm::TraceGeneratorConfig config;
  config.mean_mbps = *threshold;  // hover right at the flip point
  config.sigma = 0.25;
  config.correlation = 0.0;
  config.seed = 13;
  comm::TraceGenerator generator(config);
  const comm::ThroughputTrace trace = generator.generate(200);

  auto switch_count = [](const PlaybackResult& r) {
    std::size_t switches = 0;
    for (std::size_t i = 1; i < r.chosen_option.size(); ++i) {
      if (r.chosen_option[i] != r.chosen_option[i - 1]) ++switches;
    }
    return switches;
  };
  const PlaybackResult plain = deployer.play_dynamic(trace, 1.0, 0.0);
  const PlaybackResult damped = deployer.play_dynamic(trace, 1.0, 0.15);
  EXPECT_LT(switch_count(damped), switch_count(plain));
  // Cost penalty of damping must be small near the threshold (curves cross
  // there, so either option is nearly optimal).
  EXPECT_LT(damped.total_cost, plain.total_cost * 1.05);
}

TEST(Hysteresis, Validation) {
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const DynamicDeployer deployer(two_options(), wifi, OptimizeFor::kLatency);
  EXPECT_THROW(deployer.select_with_hysteresis(5.0, 99, 0.1), std::out_of_range);
  EXPECT_THROW(deployer.select_with_hysteresis(5.0, 0, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace lens::runtime
