// Tests for Algorithm 1: the deployment evaluator. Includes brute-force
// cross-checks of the reported minima and reproduction of the paper's
// motivational results (Fig. 2 / Table I deployment preferences).

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"

namespace lens::core {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : gpu_sim_(perf::jetson_tx2_gpu()),
        cpu_sim_(perf::jetson_tx2_cpu()),
        gpu_oracle_(gpu_sim_),
        cpu_oracle_(cpu_sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        lte_(comm::WirelessTechnology::kLte, 5.0),
        alexnet_(dnn::alexnet()) {}

  perf::DeviceSimulator gpu_sim_;
  perf::DeviceSimulator cpu_sim_;
  perf::SimulatorOracle gpu_oracle_;
  perf::SimulatorOracle cpu_oracle_;
  comm::CommModel wifi_;
  comm::CommModel lte_;
  dnn::Architecture alexnet_;
};

TEST_F(EvaluatorTest, OptionSetContainsAllFamilies) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const DeploymentEvaluation result = evaluator.evaluate(alexnet_, 10.0);
  EXPECT_NO_THROW(result.all_edge());
  EXPECT_NO_THROW(result.all_cloud());
  // AlexNet: All-Cloud + splits at pool5/fc6/fc7 + All-Edge (fc8 is last).
  EXPECT_EQ(result.options.size(), 5u);
  EXPECT_EQ(result.layer_latency_ms.size(), alexnet_.num_layers());
  EXPECT_EQ(result.layer_energy_mj.size(), alexnet_.num_layers());
}

TEST_F(EvaluatorTest, BestIndicesAreTrueMinima) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  for (double tu : {0.5, 2.0, 8.0, 25.0, 100.0}) {
    const DeploymentEvaluation result = evaluator.evaluate(alexnet_, tu);
    for (const DeploymentOption& o : result.options) {
      EXPECT_GE(o.latency_ms, result.best_latency_ms());
      EXPECT_GE(o.energy_mj, result.best_energy_mj());
    }
  }
}

TEST_F(EvaluatorTest, AllEdgeEqualsLayerSums) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const DeploymentEvaluation result = evaluator.evaluate(alexnet_, 10.0);
  double latency_sum = 0.0;
  double energy_sum = 0.0;
  for (std::size_t i = 0; i < alexnet_.num_layers(); ++i) {
    latency_sum += result.layer_latency_ms[i];
    energy_sum += result.layer_energy_mj[i];
  }
  EXPECT_NEAR(result.all_edge().latency_ms, latency_sum, 1e-9);
  EXPECT_NEAR(result.all_edge().energy_mj, energy_sum, 1e-9);
  EXPECT_EQ(result.all_edge().tx_bytes, 0u);
}

TEST_F(EvaluatorTest, AllCloudMatchesCommModel) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const double tu = 4.0;
  const DeploymentEvaluation result = evaluator.evaluate(alexnet_, tu);
  const DeploymentOption& cloud = result.all_cloud();
  EXPECT_EQ(cloud.tx_bytes, alexnet_.input_bytes());
  EXPECT_NEAR(cloud.latency_ms, wifi_.comm_latency_ms(cloud.tx_bytes, tu), 1e-9);
  EXPECT_NEAR(cloud.energy_mj, wifi_.tx_energy_mj(cloud.tx_bytes, tu), 1e-9);
  EXPECT_DOUBLE_EQ(cloud.edge_latency_ms, 0.0);
}

TEST_F(EvaluatorTest, PartitionCostsAccumulatePrefixPlusComm) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const double tu = 7.0;
  const DeploymentEvaluation result = evaluator.evaluate(alexnet_, tu);
  for (const DeploymentOption& o : result.options) {
    if (o.kind != DeploymentKind::kPartitioned) continue;
    const std::size_t split = o.split_after.value();
    double latency_prefix = 0.0;
    double energy_prefix = 0.0;
    for (std::size_t i = 0; i <= split; ++i) {
      latency_prefix += result.layer_latency_ms[i];
      energy_prefix += result.layer_energy_mj[i];
    }
    EXPECT_NEAR(o.latency_ms, latency_prefix + wifi_.comm_latency_ms(o.tx_bytes, tu), 1e-9);
    EXPECT_NEAR(o.energy_mj, energy_prefix + wifi_.tx_energy_mj(o.tx_bytes, tu), 1e-9);
    EXPECT_NEAR(o.edge_latency_ms, latency_prefix, 1e-9);
    EXPECT_NEAR(o.edge_energy_mj, energy_prefix, 1e-9);
    // Only viable (smaller-than-input) splits may appear.
    EXPECT_LT(o.tx_bytes, alexnet_.input_bytes());
  }
}

TEST_F(EvaluatorTest, SplitLabelsUseLayerNames) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const DeploymentEvaluation result = evaluator.evaluate(alexnet_, 16.1);
  bool saw_pool5 = false;
  for (const DeploymentOption& o : result.options) {
    if (o.kind == DeploymentKind::kPartitioned && o.label(alexnet_) == "split@pool5") {
      saw_pool5 = true;
    }
  }
  EXPECT_TRUE(saw_pool5);
  EXPECT_EQ(result.all_edge().label(alexnet_), "All-Edge");
  EXPECT_EQ(result.all_cloud().label(alexnet_), "All-Cloud");
}

// ---- Paper reproduction: Table I deployment preferences --------------------

struct RegionCase {
  double tu_mbps;
  const char* gpu_wifi_latency;
  const char* gpu_wifi_energy;
  const char* cpu_lte_latency;
  const char* cpu_lte_energy;
};

class TableOneTest : public ::testing::TestWithParam<RegionCase> {};

TEST_P(TableOneTest, DeploymentPreferencesMatchPaper) {
  const RegionCase c = GetParam();
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator gpu_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator cpu_sim(perf::jetson_tx2_cpu());
  const perf::SimulatorOracle gpu(gpu_sim);
  const perf::SimulatorOracle cpu(cpu_sim);
  const DeploymentEvaluator gpu_wifi(gpu, comm::CommModel(comm::WirelessTechnology::kWifi, 5.0));
  const DeploymentEvaluator cpu_lte(cpu, comm::CommModel(comm::WirelessTechnology::kLte, 5.0));

  const DeploymentEvaluation g = gpu_wifi.evaluate(alexnet, c.tu_mbps);
  const DeploymentEvaluation l = cpu_lte.evaluate(alexnet, c.tu_mbps);
  EXPECT_EQ(g.latency_choice().label(alexnet), c.gpu_wifi_latency);
  EXPECT_EQ(g.energy_choice().label(alexnet), c.gpu_wifi_energy);
  EXPECT_EQ(l.latency_choice().label(alexnet), c.cpu_lte_latency);
  EXPECT_EQ(l.energy_choice().label(alexnet), c.cpu_lte_energy);
}

INSTANTIATE_TEST_SUITE_P(
    Regions, TableOneTest,
    ::testing::Values(
        // S. Korea, USA, Afghanistan rows of paper Table I.
        RegionCase{16.1, "All-Edge", "split@pool5", "All-Cloud", "All-Cloud"},
        RegionCase{7.5, "All-Edge", "split@pool5", "split@pool5", "All-Cloud"},
        RegionCase{0.7, "All-Edge", "All-Edge", "All-Edge", "split@pool5"}));

TEST_F(EvaluatorTest, Figure2LatencyCrossoverAtHighThroughput) {
  // Paper Fig. 2 (GPU/WiFi): All-Edge wins latency at low t_u, Pool5 at 30 Mbps.
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  EXPECT_EQ(evaluator.evaluate(alexnet_, 5.0).latency_choice().label(alexnet_), "All-Edge");
  EXPECT_EQ(evaluator.evaluate(alexnet_, 30.0).latency_choice().label(alexnet_),
            "split@pool5");
}

TEST_F(EvaluatorTest, MonotoneInThroughputForFixedOption) {
  // Raising t_u can only help options that transmit.
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  const DeploymentEvaluation slow = evaluator.evaluate(alexnet_, 2.0);
  const DeploymentEvaluation fast = evaluator.evaluate(alexnet_, 20.0);
  EXPECT_LT(fast.all_cloud().latency_ms, slow.all_cloud().latency_ms);
  EXPECT_LT(fast.all_cloud().energy_mj, slow.all_cloud().energy_mj);
  EXPECT_DOUBLE_EQ(fast.all_edge().latency_ms, slow.all_edge().latency_ms);
}

TEST_F(EvaluatorTest, CpuPrefersOffloadMoreThanGpu) {
  // At moderate throughput the weak CPU should lean cloud-ward while the
  // GPU stays on device (paper Fig. 2's left-right contrast).
  const DeploymentEvaluator gpu_eval(gpu_oracle_, wifi_);
  const DeploymentEvaluator cpu_eval(cpu_oracle_, wifi_);
  const double tu = 10.0;
  const auto gpu_result = gpu_eval.evaluate(alexnet_, tu);
  const auto cpu_result = cpu_eval.evaluate(alexnet_, tu);
  EXPECT_EQ(gpu_result.latency_choice().kind, DeploymentKind::kAllEdge);
  EXPECT_NE(cpu_result.latency_choice().kind, DeploymentKind::kAllEdge);
}

TEST_F(EvaluatorTest, ThroughputValidation) {
  const DeploymentEvaluator evaluator(gpu_oracle_, wifi_);
  EXPECT_THROW(evaluator.evaluate(alexnet_, 0.0), std::invalid_argument);
}

TEST(DeploymentKindName, AllValues) {
  EXPECT_EQ(deployment_kind_name(DeploymentKind::kAllEdge), "All-Edge");
  EXPECT_EQ(deployment_kind_name(DeploymentKind::kAllCloud), "All-Cloud");
  EXPECT_EQ(deployment_kind_name(DeploymentKind::kPartitioned), "Partitioned");
}

}  // namespace
}  // namespace lens::core
