// Frozen-reference tests for the batched SoA serving kernels and the fleet
// engine built on them. Every batch kernel (trace step_batch,
// tracker_update_batch, select_batch, price_batch_into) is pinned
// bit-for-bit (EXPECT_EQ, no tolerances) against the scalar object API it
// refactored — the scalar paths are themselves pinned by the existing
// per-subsystem frozen-reference suites, so the chain grounds out at the
// historical numbers. FleetEngine determinism is pinned by byte-comparing
// whole FleetStats CSV reports across thread counts.

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/machine.hpp"
#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "core/topology.hpp"
#include "dnn/presets.hpp"
#include "fleet/fleet.hpp"
#include "par/substream.hpp"
#include "par/thread_pool.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "runtime/tracker.hpp"
#include "sim/fault.hpp"

namespace lens {
namespace {

// ---------------------------------------------------------------------------
// par::SplitMix64
// ---------------------------------------------------------------------------

TEST(SplitMix64, StreamMatchesSubstreamSeed) {
  // The URBG *is* the splitmix64 stream substream_seed samples: draw i of
  // SplitMix64(seed) equals substream_seed(seed, i).
  par::SplitMix64 rng(0x9a3779b9f1234567ull);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rng(), par::substream_seed(0x9a3779b9f1234567ull, i));
  }
}

TEST(SplitMix64, UrbgContract) {
  EXPECT_EQ(par::SplitMix64::min(), 0u);
  EXPECT_EQ(par::SplitMix64::max(), ~std::uint64_t{0});
  par::SplitMix64 a(7), b(7), c(8);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a != c);
  (void)a();
  EXPECT_TRUE(a != b);  // state advanced
}

// ---------------------------------------------------------------------------
// comm::TraceGenerator::step / step_batch
// ---------------------------------------------------------------------------

comm::TraceGeneratorConfig outage_trace_config() {
  comm::TraceGeneratorConfig config;
  config.mean_mbps = 8.0;
  config.sigma = 0.5;
  config.correlation = 0.7;
  config.seed = 42;
  config.outage_start_probability = 0.15;
  config.outage_mean_duration = 2.5;
  config.outage_depth_factor = 0.04;
  return config;
}

TEST(TraceStep, StepReproducesGenerateBitForBit) {
  for (const auto& config :
       {comm::TraceGeneratorConfig{}, outage_trace_config()}) {
    comm::TraceGenerator whole(config);
    const comm::ThroughputTrace a = whole.generate(40);
    const comm::ThroughputTrace b = whole.generate(24);  // stream continues

    comm::TraceGenerator stepped(config);
    comm::TraceState state = stepped.start_state(std::mt19937_64(config.seed));
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(stepped.step(state), a.samples_mbps[i]) << "sample " << i;
    }
    // A second generate() re-draws a stationary start from the same stream.
    comm::TraceState state2 = stepped.start_state(std::move(state.rng));
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(stepped.step(state2), b.samples_mbps[i]) << "sample " << i;
    }
  }
}

TEST(TraceStep, StepBatchMatchesScalarStep) {
  const comm::TraceGeneratorConfig config = outage_trace_config();
  const comm::TraceGenerator gen(config);
  constexpr std::size_t kDevices = 37;

  std::vector<comm::FleetTraceState> batch(kDevices), scalar(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    batch[d] = gen.start_state(par::SplitMix64(par::substream_seed(123, d)));
    scalar[d] = gen.start_state(par::SplitMix64(par::substream_seed(123, d)));
  }
  std::vector<double> out(kDevices);
  for (std::size_t step = 0; step < 16; ++step) {
    gen.step_batch(batch.data(), kDevices, out.data());
    for (std::size_t d = 0; d < kDevices; ++d) {
      EXPECT_EQ(out[d], gen.step(scalar[d])) << "device " << d << " step " << step;
    }
  }
}

// ---------------------------------------------------------------------------
// runtime::tracker_update / tracker_update_batch
// ---------------------------------------------------------------------------

TEST(TrackerBatch, CoreMatchesObjectWrapper) {
  const runtime::TrackerParams params{0.6, 0.4, 0.07};
  runtime::ThroughputTracker object(params.alpha, params.outage_decay,
                                    params.floor_mbps);
  runtime::TrackerState core;
  // Leading outage (no-op on the estimate), EWMA folds, decay chain to floor.
  const double readings[] = {0.0, 12.0, 8.5, 0.0, 0.0, 3.25, 0.0, 0.0, 0.0, 40.0};
  for (double tu : readings) {
    if (tu > 0.0) {
      object.report(tu);
    } else {
      object.report_outage();
    }
    runtime::tracker_update(params, core, tu);
    EXPECT_EQ(core.samples, object.samples());
    EXPECT_EQ(core.outages, object.outages());
    if (object.has_estimate()) {
      EXPECT_EQ(core.estimate_mbps, object.estimate_mbps());
    }
  }
}

TEST(TrackerBatch, BatchMatchesPerSampleReports) {
  const runtime::TrackerParams params{0.7, 0.5, 0.05};
  constexpr std::size_t kDevices = 29;
  constexpr std::size_t kSteps = 50;

  // Per-device reading sequences from decorrelated substreams, ~1/4 outages.
  std::vector<std::vector<double>> readings(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    std::mt19937_64 rng(par::substream_seed(9, d));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (std::size_t s = 0; s < kSteps; ++s) {
      const double u = unit(rng);
      readings[d].push_back(u < 0.25 ? 0.0 : u * 30.0);
    }
  }

  std::vector<double> estimate(kDevices, 0.0);
  std::vector<std::uint32_t> samples(kDevices, 0), outages(kDevices, 0);
  std::vector<double> step_readings(kDevices);
  std::vector<runtime::ThroughputTracker> oracle(
      kDevices, runtime::ThroughputTracker(params.alpha, params.outage_decay,
                                           params.floor_mbps));

  for (std::size_t s = 0; s < kSteps; ++s) {
    for (std::size_t d = 0; d < kDevices; ++d) step_readings[d] = readings[d][s];
    runtime::tracker_update_batch(params, estimate, samples, outages, step_readings);
    for (std::size_t d = 0; d < kDevices; ++d) {
      if (step_readings[d] > 0.0) {
        oracle[d].report(step_readings[d]);
      } else {
        oracle[d].report_outage();
      }
      EXPECT_EQ(samples[d], oracle[d].samples());
      EXPECT_EQ(outages[d], oracle[d].outages());
      if (oracle[d].has_estimate()) {
        EXPECT_EQ(estimate[d], oracle[d].estimate_mbps()) << "device " << d;
      }
    }
  }
}

TEST(TrackerBatch, RejectsMismatchedSpans) {
  std::vector<double> estimate(3, 0.0), tu(4, 1.0);
  std::vector<std::uint32_t> samples(3, 0), outages(3, 0);
  EXPECT_THROW(
      runtime::tracker_update_batch({}, estimate, samples, outages, tu),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// runtime::select_batch vs select_with_hysteresis
// ---------------------------------------------------------------------------

core::DeploymentOption make_option(core::DeploymentKind kind, double edge_latency,
                                   double edge_energy, std::uint64_t tx_bytes) {
  core::DeploymentOption o;
  o.kind = kind;
  o.edge_latency_ms = edge_latency;
  o.edge_energy_mj = edge_energy;
  o.tx_bytes = tx_bytes;
  return o;
}

runtime::DynamicDeployer make_deployer() {
  const comm::CommModel comm(comm::WirelessTechnology::kWifi, 15.0);
  std::vector<core::DeploymentOption> options;
  options.push_back(make_option(core::DeploymentKind::kAllEdge, 30.0, 280.0, 0));
  options.push_back(make_option(core::DeploymentKind::kPartitioned, 12.0, 90.0, 36864));
  // A tie candidate: same curve as the partitioned option above.
  options.push_back(make_option(core::DeploymentKind::kPartitioned, 12.0, 90.0, 36864));
  options.push_back(make_option(core::DeploymentKind::kAllCloud, 2.0, 10.0, 154587));
  return runtime::DynamicDeployer(std::move(options), comm,
                                  runtime::OptimizeFor::kLatency, 0.05, 500.0);
}

TEST(SelectBatch, MatchesSelectWithHysteresisEverywhere) {
  const runtime::DynamicDeployer deployer = make_deployer();

  // Probe set: interval boundaries exactly, one ulp-ish either side, interior
  // points, the analyzed ends, and outage readings (clamped to tu_min).
  std::vector<double> probes = {0.05, 0.5, 2.0, 10.0, 100.0, 499.0, 0.0, -3.0};
  for (const runtime::DominanceInterval& iv : deployer.intervals()) {
    probes.push_back(iv.tu_low);
    probes.push_back(iv.tu_low * (1.0 + 1e-12));
    probes.push_back(iv.tu_low * (1.0 - 1e-12));
    probes.push_back(std::nextafter(iv.tu_high, 0.0));
  }

  for (const double margin : {0.0, 0.05, 0.5}) {
    for (std::size_t current = 0; current < deployer.options().size(); ++current) {
      std::vector<std::uint32_t> batch_current(probes.size(),
                                               static_cast<std::uint32_t>(current));
      deployer.select_batch(probes, batch_current, margin);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        EXPECT_EQ(batch_current[i],
                  deployer.select_with_hysteresis(probes[i], current, margin))
            << "tu=" << probes[i] << " current=" << current << " margin=" << margin;
      }
    }
  }
}

TEST(SelectBatch, TiedCurvesNeverFlap) {
  // Two options sharing one curve: whichever is current must stay current
  // (a tie can never beat the hysteresis margin, even at margin 0).
  const comm::CommModel comm(comm::WirelessTechnology::kWifi, 15.0);
  std::vector<core::DeploymentOption> options;
  options.push_back(make_option(core::DeploymentKind::kPartitioned, 12.0, 90.0, 36864));
  options.push_back(make_option(core::DeploymentKind::kPartitioned, 12.0, 90.0, 36864));
  const runtime::DynamicDeployer deployer(std::move(options), comm,
                                          runtime::OptimizeFor::kLatency, 0.05, 500.0);
  for (const double tu : {0.3, 3.0, 30.0}) {
    std::vector<double> probe{tu};
    for (std::uint32_t current : {0u, 1u}) {
      std::vector<std::uint32_t> option{current};
      deployer.select_batch(probe, option, 0.0);
      EXPECT_EQ(option[0], current);
    }
  }
}

TEST(SelectBatch, RejectsMismatchedSpans) {
  const runtime::DynamicDeployer deployer = make_deployer();
  std::vector<double> tu(3, 1.0);
  std::vector<std::uint32_t> current(2, 0);
  EXPECT_THROW(deployer.select_batch(tu, current), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// core::DeploymentPlan::price_batch_into
// ---------------------------------------------------------------------------

// One compiled plan shared by every pricing/fleet test (plans are
// self-contained value types, so the statics only pay the predictor once).
const core::DeploymentPlan& alexnet_plan() {
  static const core::DeploymentPlan plan = [] {
    static const perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
    static const perf::SimulatorOracle oracle(sim);
    const comm::CommModel comm(comm::WirelessTechnology::kWifi, 5.0);
    const core::DeploymentEvaluator evaluator(oracle, comm);
    return evaluator.compile(dnn::alexnet());
  }();
  return plan;
}

TEST(PriceBatchInto, MatchesPriceBatchAndScalarOracle) {
  const core::DeploymentPlan& plan = alexnet_plan();
  std::vector<double> tus;
  for (double tu = 0.1; tu < 60.0; tu *= 1.7) tus.push_back(tu);

  const std::vector<core::PricedObjectives> expected = plan.price_batch(tus);
  std::vector<core::PricedObjectives> got(tus.size());
  plan.price_batch_into(tus, got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].best_latency_ms, expected[i].best_latency_ms);
    EXPECT_EQ(got[i].best_energy_mj, expected[i].best_energy_mj);
    EXPECT_EQ(got[i].best_latency_option, expected[i].best_latency_option);
    EXPECT_EQ(got[i].best_energy_option, expected[i].best_energy_option);
    // Ground truth: the scalar per-throughput pricer.
    const core::PricedObjectives oracle = plan.objectives_at(tus[i]);
    EXPECT_EQ(got[i].best_latency_ms, oracle.best_latency_ms);
    EXPECT_EQ(got[i].best_energy_mj, oracle.best_energy_mj);
  }
}

TEST(PriceBatchInto, ReusedBufferIsOverwritten) {
  const core::DeploymentPlan& plan = alexnet_plan();
  std::vector<core::PricedObjectives> buffer(2,
                                             core::PricedObjectives{1e9, 1e9, 99, 99});
  std::vector<double> tus{5.0, 6.0};
  plan.price_batch_into(tus, buffer);
  const core::PricedObjectives oracle = plan.objectives_at(5.0);
  EXPECT_EQ(buffer[0].best_latency_ms, oracle.best_latency_ms);
  EXPECT_EQ(buffer[0].best_latency_option, oracle.best_latency_option);
}

TEST(PriceBatchInto, Validation) {
  const core::DeploymentPlan& plan = alexnet_plan();
  std::vector<double> tus{5.0, -1.0};
  std::vector<core::PricedObjectives> out(2);
  EXPECT_THROW(plan.price_batch_into(tus, out), std::invalid_argument);
  std::vector<core::PricedObjectives> short_out(1);
  std::vector<double> ok{5.0, 6.0};
  EXPECT_THROW(plan.price_batch_into(ok, short_out), std::invalid_argument);
}

TEST(PriceBatchPerHopInto, MatchesObjectivesAt) {
  const core::DeploymentPlan& plan = alexnet_plan();
  std::vector<std::vector<double>> tus{{3.0}, {8.0}, {21.0}};
  std::vector<core::PricedObjectives> got(tus.size());
  plan.price_batch_per_hop_into(tus, got);
  for (std::size_t i = 0; i < tus.size(); ++i) {
    const core::PricedObjectives oracle = plan.objectives_at(tus[i]);
    EXPECT_EQ(got[i].best_latency_ms, oracle.best_latency_ms);
    EXPECT_EQ(got[i].best_energy_mj, oracle.best_energy_mj);
  }
}

// ---------------------------------------------------------------------------
// sim::FaultSchedule::generate_for_device
// ---------------------------------------------------------------------------

sim::FaultScheduleConfig fleet_fault_config() {
  sim::FaultScheduleConfig config;
  config.horizon_s = 4000.0;
  config.link_outage_rate_hz = 1.0 / 300.0;
  config.link_outage_mean_s = 60.0;
  config.cloud_outage_rate_hz = 1.0 / 900.0;
  config.cloud_outage_mean_s = 120.0;
  return config;
}

TEST(FaultSubstreams, PerDeviceSchedulesAreDeterministicAndDecorrelated) {
  const sim::FaultScheduleConfig config = fleet_fault_config();
  const sim::FaultSchedule a = sim::FaultSchedule::generate_for_device(config, 77, 3);
  const sim::FaultSchedule b = sim::FaultSchedule::generate_for_device(config, 77, 3);
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].start_s, b.episodes()[i].start_s);
    EXPECT_EQ(a.episodes()[i].end_s, b.episodes()[i].end_s);
  }
  // Neighboring devices (and neighboring fleet seeds) draw different
  // episodes — substream_seed avalanche-mixes both inputs.
  const sim::FaultSchedule c = sim::FaultSchedule::generate_for_device(config, 77, 4);
  const sim::FaultSchedule d = sim::FaultSchedule::generate_for_device(config, 78, 3);
  const auto first_start = [](const sim::FaultSchedule& s) {
    return s.empty() ? -1.0 : s.episodes().front().start_s;
  };
  EXPECT_NE(first_start(a), first_start(c));
  EXPECT_NE(first_start(a), first_start(d));
}

// ---------------------------------------------------------------------------
// fleet::FleetEngine
// ---------------------------------------------------------------------------

fleet::FleetConfig small_fleet_config() {
  fleet::FleetConfig config;
  config.devices = 4100;  // > 4 chunks: the parallel path actually shards
  config.steps = 20;
  config.step_s = 300.0;
  config.seed = 5;
  config.trace.mean_mbps = 6.0;
  config.trace.sigma = 0.6;
  config.trace.outage_start_probability = 0.05;
  config.faults = fleet_fault_config();
  config.faults.horizon_s = 0.0;  // derive from steps * step_s
  return config;
}

TEST(FleetEngine, ReportIsBitIdenticalAcrossThreadCounts) {
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetEngine engine(plan, small_fleet_config());
  par::ThreadPool one(1), five(5);
  const fleet::FleetStats serial = engine.run(one);
  const fleet::FleetStats parallel = engine.run(five);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_GT(serial.total_switches, 0u);
  EXPECT_GT(serial.outage_readings, 0u);  // cloud outages fed the tracker
}

TEST(FleetEngine, ReportInvariants) {
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetConfig config = small_fleet_config();
  fleet::FleetEngine engine(plan, config);
  par::ThreadPool pool(3);
  const fleet::FleetStats stats = engine.run(pool);

  EXPECT_EQ(stats.devices, config.devices);
  EXPECT_EQ(stats.steps, config.steps);
  EXPECT_EQ(stats.cloud_qps.size(), config.steps);
  // Histograms partition the observations exactly.
  std::uint64_t hist_total = 0;
  for (std::uint64_t c : stats.latency_histogram) hist_total += c;
  EXPECT_EQ(hist_total, static_cast<std::uint64_t>(config.devices) * config.steps);
  std::uint64_t devices_binned = 0, switches_binned = 0;
  for (std::size_t b = 0; b < stats.switch_histogram.size(); ++b) {
    devices_binned += stats.switch_histogram[b];
    if (b + 1 < stats.switch_histogram.size()) {
      switches_binned += stats.switch_histogram[b] * b;
    }
  }
  EXPECT_EQ(devices_binned, config.devices);
  EXPECT_LE(switches_binned, stats.total_switches);
  // The oracle prices the whole option set: it can only lower-bound the
  // dynamic policy on the selection metric.
  EXPECT_LE(stats.oracle_mean_latency_ms, stats.mean_latency_ms);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  EXPECT_LE(stats.p99_latency_ms, stats.p999_latency_ms);
  EXPECT_LE(stats.peak_cloud_qps + 1e-12,
            static_cast<double>(config.devices) * config.device_qps + 1e-9);
}

TEST(FleetEngine, RunIsRepeatable) {
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetEngine engine(plan, small_fleet_config());
  par::ThreadPool pool(2);
  EXPECT_EQ(engine.run(pool).csv(), engine.run(pool).csv());
}

TEST(FleetEngine, Validation) {
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetConfig config;
  config.devices = 0;
  EXPECT_THROW(fleet::FleetEngine(plan, config), std::invalid_argument);
  config = fleet::FleetConfig{};
  config.steps = 0;
  EXPECT_THROW(fleet::FleetEngine(plan, config), std::invalid_argument);
  config = fleet::FleetConfig{};
  config.hysteresis_margin = -0.1;
  EXPECT_THROW(fleet::FleetEngine(plan, config), std::invalid_argument);
}

// A fleet pushed through a scripted regional brownout: a healthy pool with
// headroom loses 60% of its capacity for six steps mid-run. At 40 Mbps the
// plan's latency choice transmits (split@pool5), so nearly every device
// offers its suffix to the pool.
fleet::FleetConfig brownout_fleet_config() {
  fleet::FleetConfig config;
  config.devices = 4100;  // > 4 chunks: the parallel path actually shards
  config.steps = 18;
  config.step_s = 100.0;
  config.seed = 5;
  config.trace.mean_mbps = 40.0;
  config.trace.sigma = 0.2;
  cloud::CloudConfig pool;
  pool.machines = 3;  // 3 x 1700 qps admitted > 4100 offered when healthy
  config.cloud = pool;
  config.cloud_faults.seed = 5;
  config.cloud_faults.scripted.push_back(
      {sim::FaultClass::kRegionalBrownout, 600.0, 1200.0, 0.6});
  config.sla_ms = 300.0;
  return config;
}

TEST(FleetEngine, BrownoutSmokeShedsTripsBreakersAndStaysDeterministic) {
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetEngine engine(plan, brownout_fleet_config());
  par::ThreadPool one(1), eight(8);
  const fleet::FleetStats serial = engine.run(one);
  const fleet::FleetStats parallel = engine.run(eight);
  // The acceptance bar: the full CSV report — every finite-cloud column
  // included — is byte-identical at any thread count.
  EXPECT_EQ(serial.csv(), parallel.csv());

  // The brownout bites: admission sheds, repeat-shed devices trip open.
  EXPECT_GT(serial.shed, 0u);
  EXPECT_GT(serial.shed_rate, 0.0);
  EXPECT_GT(serial.breaker_trips, 0u);
  EXPECT_GT(serial.breaker_open_time_s, 0.0);
  EXPECT_GT(serial.datacenter_energy_j, 0.0);

  // Shedding is confined to the brownout window (steps 6..11): before it
  // the pool has headroom, and after it the breakers re-close.
  ASSERT_EQ(serial.shed_qps.size(), 18u);
  for (std::size_t s = 0; s < 6; ++s) EXPECT_EQ(serial.shed_qps[s], 0.0);
  EXPECT_GT(serial.shed_qps[7], 0.0);
  EXPECT_EQ(serial.shed_qps.back(), 0.0);
  // offered = admitted + shed, always.
  for (std::size_t s = 0; s < serial.offered_qps.size(); ++s) {
    EXPECT_NEAR(serial.offered_qps[s], serial.cloud_qps[s] + serial.shed_qps[s],
                1e-9);
  }
}

TEST(FleetEngine, BrownoutTailIsBoundedByTheEdgeOnlyCeiling) {
  // Shed devices fast-fail onto the cheapest edge-only option, so even the
  // p999 of a partial brownout cannot exceed (modulo the pool's bounded
  // queue wait) the latency of a run where the cloud is gone entirely and
  // EVERY transmitting device serves the edge fallback.
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetConfig partial = brownout_fleet_config();
  fleet::FleetConfig blackout = brownout_fleet_config();
  blackout.cloud_faults.scripted.clear();
  blackout.cloud_faults.scripted.push_back(
      {sim::FaultClass::kRegionalBrownout, 0.0, 1e9, 1.0});
  par::ThreadPool pool(4);
  const fleet::FleetStats some = fleet::FleetEngine(plan, partial).run(pool);
  const fleet::FleetStats ceiling = fleet::FleetEngine(plan, blackout).run(pool);
  EXPECT_GT(ceiling.shed, some.shed);
  EXPECT_LE(some.p999_latency_ms, ceiling.p999_latency_ms * 1.05);
  // SLA accounting is wired through: the 300 ms bar is generous for
  // alexnet, so violations stay rare but the columns exist and are sane.
  EXPECT_LE(some.sla_violation_rate, 1.0);
  EXPECT_EQ(some.sla_violations == 0, some.sla_violation_rate == 0.0);
}

TEST(FleetEngine, InfiniteCloudKeepsLegacySeriesInvariants) {
  // Without FleetConfig::cloud the admission path is bypassed entirely:
  // offered == admitted, nothing is shed, no breaker ever trips.
  const core::DeploymentPlan& plan = alexnet_plan();
  fleet::FleetEngine engine(plan, small_fleet_config());
  par::ThreadPool pool(3);
  const fleet::FleetStats stats = engine.run(pool);
  ASSERT_EQ(stats.offered_qps.size(), stats.cloud_qps.size());
  for (std::size_t s = 0; s < stats.offered_qps.size(); ++s) {
    EXPECT_EQ(stats.offered_qps[s], stats.cloud_qps[s]);
    EXPECT_EQ(stats.shed_qps[s], 0.0);
  }
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(stats.breaker_open_time_s, 0.0);
  EXPECT_EQ(stats.datacenter_energy_j, 0.0);
}

TEST(FleetEngine, ChunkCountDependsOnDevicesAlone) {
  EXPECT_EQ(fleet::FleetEngine::num_chunks(1), 1u);
  EXPECT_EQ(fleet::FleetEngine::num_chunks(1023), 1u);
  EXPECT_EQ(fleet::FleetEngine::num_chunks(10000), 9u);
  EXPECT_EQ(fleet::FleetEngine::num_chunks(1u << 20), 1024u);
  EXPECT_EQ(fleet::FleetEngine::num_chunks(100000000), 4096u);
}

// ---------------------------------------------------------------------------
// sim::FaultSchedule::generate_for_region -- shared failure domains
// ---------------------------------------------------------------------------

sim::FaultScheduleConfig region_fault_config() {
  sim::FaultScheduleConfig config;
  config.horizon_s = 4000.0;
  config.backhaul_brownout_rate_hz = 1.0 / 400.0;
  config.backhaul_outage_rate_hz = 1.0 / 700.0;
  config.fog_failure_rate_hz = 1.0 / 900.0;
  return config;
}

TEST(FaultSubstreams, RegionSchedulesAreSharedDeterministicAndDisjoint) {
  const sim::FaultScheduleConfig config = region_fault_config();
  // Two devices of one region see the SAME backhaul series — the schedule is
  // a function of (config, fleet seed, region id), nothing per-device.
  const sim::FaultSchedule a = sim::FaultSchedule::generate_for_region(config, 77, 2);
  const sim::FaultSchedule b = sim::FaultSchedule::generate_for_region(config, 77, 2);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].fault, b.episodes()[i].fault);
    EXPECT_EQ(a.episodes()[i].start_s, b.episodes()[i].start_s);
    EXPECT_EQ(a.episodes()[i].end_s, b.episodes()[i].end_s);
    EXPECT_EQ(a.episodes()[i].magnitude, b.episodes()[i].magnitude);
    EXPECT_EQ(a.episodes()[i].hop, b.episodes()[i].hop);
  }
  const auto first_start = [](const sim::FaultSchedule& s) {
    return s.empty() ? -1.0 : s.episodes().front().start_s;
  };
  // Neighboring regions and neighboring fleet seeds draw different episodes.
  const sim::FaultSchedule c = sim::FaultSchedule::generate_for_region(config, 77, 3);
  const sim::FaultSchedule d = sim::FaultSchedule::generate_for_region(config, 78, 2);
  EXPECT_NE(first_start(a), first_start(c));
  EXPECT_NE(first_start(a), first_start(d));
  // Region roots are salted away from the per-device substreams: region r's
  // schedule never collides with device r's, even for the same class knobs.
  sim::FaultScheduleConfig as_device = config;
  as_device.backhaul_brownout_rate_hz = 0.0;
  as_device.backhaul_outage_rate_hz = 0.0;
  as_device.fog_failure_rate_hz = 0.0;
  as_device.link_outage_rate_hz = 1.0 / 400.0;
  const sim::FaultSchedule dev =
      sim::FaultSchedule::generate_for_device(as_device, 77, 2);
  EXPECT_NE(first_start(a), first_start(dev));
  // Meanwhile the two devices' RADIO traces stay private (the existing
  // per-device decorrelation) — shared backhaul, decorrelated radios.
  const sim::FaultSchedule dev2 =
      sim::FaultSchedule::generate_for_device(as_device, 77, 3);
  EXPECT_NE(first_start(dev), first_start(dev2));
}

// ---------------------------------------------------------------------------
// fleet::FleetEngine -- K-tier regional failure domains
// ---------------------------------------------------------------------------

// 3-tier alexnet plan shared by the K-tier fleet tests: wifi radio to a
// datacenter-gpu fog tier, 40 Mbps backhaul to a free cloud.
const core::DeploymentPlan& ktier_alexnet_plan() {
  static const core::DeploymentPlan plan = [] {
    static const perf::DeviceSimulator edge_sim(perf::jetson_tx2_gpu());
    static const perf::SimulatorOracle edge(edge_sim);
    static const perf::DeviceSimulator fog_sim(perf::datacenter_gpu());
    static const perf::SimulatorOracle fog(fog_sim);
    core::EdgeFogCloudConfig config;
    config.radio = comm::CommModel(comm::WirelessTechnology::kWifi, 5.0);
    config.backhaul = comm::CommModel(comm::WirelessTechnology::kWifi, 40.0);
    return core::DeploymentEvaluator(core::edge_fog_cloud(edge, fog, nullptr, config))
        .compile(dnn::alexnet());
  }();
  return plan;
}

// Heavy 3-tier plan: vgg16 transmits at fleet trace rates, so the fog and
// cloud admission paths both carry real load.
const core::DeploymentPlan& ktier_vgg_plan() {
  static const core::DeploymentPlan plan = [] {
    static const perf::DeviceSimulator edge_sim(perf::jetson_tx2_gpu());
    static const perf::SimulatorOracle edge(edge_sim);
    static const perf::DeviceSimulator fog_sim(perf::datacenter_gpu());
    static const perf::SimulatorOracle fog(fog_sim);
    core::EdgeFogCloudConfig config;
    config.radio = comm::CommModel(comm::WirelessTechnology::kWifi, 4.0);
    config.backhaul = comm::CommModel(comm::WirelessTechnology::kWifi, 40.0);
    return core::DeploymentEvaluator(core::edge_fog_cloud(edge, fog, nullptr, config))
        .compile(dnn::vgg16());
  }();
  return plan;
}

TEST(FleetEngine, KTierCtorValidatesHopRates) {
  const core::DeploymentPlan& plan = ktier_alexnet_plan();
  fleet::FleetConfig config = small_fleet_config();
  // Arity must match the plan's hop count (radio first).
  EXPECT_THROW(fleet::FleetEngine(plan, {5.0}, config), std::invalid_argument);
  EXPECT_THROW(fleet::FleetEngine(plan, {5.0, 40.0, 40.0}, config),
               std::invalid_argument);
  // Backhaul entries must be positive and finite.
  EXPECT_THROW(fleet::FleetEngine(plan, {5.0, 0.0}, config), std::invalid_argument);
  EXPECT_THROW(fleet::FleetEngine(plan, {5.0, -3.0}, config), std::invalid_argument);
  EXPECT_THROW(fleet::FleetEngine(
                   plan, {5.0, std::numeric_limits<double>::infinity()}, config),
               std::invalid_argument);
  // Entry 0 is the radio-axis placeholder selection collapses onto: its
  // value is never read, but the slot must exist.
  EXPECT_NO_THROW(fleet::FleetEngine(plan, {0.0, 40.0}, config));
  // A K-tier plan through the two-tier ctor is rejected outright.
  EXPECT_THROW(fleet::FleetEngine(plan, config), std::invalid_argument);
}

TEST(FleetEngine, RegionalKnobsRequireKTierPlan) {
  const core::DeploymentPlan& two_tier = alexnet_plan();
  fleet::FleetConfig config = small_fleet_config();
  config.num_regions = 2;
  EXPECT_THROW(fleet::FleetEngine(two_tier, config), std::invalid_argument);
  config = small_fleet_config();
  config.fog = cloud::fog_site_defaults(2);
  EXPECT_THROW(fleet::FleetEngine(two_tier, config), std::invalid_argument);
  config = small_fleet_config();
  config.region_faults.backhaul_outage_rate_hz = 0.001;
  EXPECT_THROW(fleet::FleetEngine(two_tier, config), std::invalid_argument);

  const core::DeploymentPlan& ktier = ktier_alexnet_plan();
  config = small_fleet_config();
  config.num_regions = 0;
  EXPECT_THROW(fleet::FleetEngine(ktier, {5.0, 40.0}, config),
               std::invalid_argument);
  config = small_fleet_config();
  config.num_regions = fleet::kMaxRegions + 1;
  EXPECT_THROW(fleet::FleetEngine(ktier, {5.0, 40.0}, config),
               std::invalid_argument);
  config = small_fleet_config();
  config.num_regions = 4;
  config.region_map.assign(config.devices - 1, 0);  // wrong arity
  EXPECT_THROW(fleet::FleetEngine(ktier, {5.0, 40.0}, config),
               std::invalid_argument);
  config = small_fleet_config();
  config.num_regions = 4;
  config.region_map.assign(config.devices, 0);
  config.region_map.back() = 4;  // out of range
  EXPECT_THROW(fleet::FleetEngine(ktier, {5.0, 40.0}, config),
               std::invalid_argument);
  config = small_fleet_config();
  config.num_regions = 4;
  config.region_episodes.push_back(
      {7, {sim::FaultClass::kBackhaulOutage, 0.0, 100.0, 0.0, 1}});
  EXPECT_THROW(fleet::FleetEngine(ktier, {5.0, 40.0}, config),
               std::invalid_argument);
}

// Frozen-reference oracle for the retired pinned-backhaul K-tier shortcut:
// per device, advance the scalar trace / tracker / hysteresis-select cores
// and price on the plan's ctor-collapsed curves at the nominal backhaul
// rates. When regions share a constant backhaul and no regional faults
// fire, the regional engine must reproduce these numbers bit for bit.
TEST(FleetEngine, KTierHealthyPathMatchesPinnedBackhaulOracle) {
  const core::DeploymentPlan& plan = ktier_alexnet_plan();
  const std::vector<double> hop_tu = {5.0, 40.0};
  fleet::FleetConfig config;
  config.devices = 600;  // one chunk: device-order accumulation everywhere
  config.steps = 12;
  config.step_s = 300.0;
  config.seed = 9;
  config.trace.mean_mbps = 6.0;
  config.trace.sigma = 0.6;
  config.trace.outage_start_probability = 0.05;

  const std::vector<comm::CostCurve> lat = plan.collapsed_latency_curves(0, hop_tu);
  const std::vector<comm::CostCurve> energy = plan.collapsed_energy_curves(0, hop_tu);
  const std::vector<runtime::DominanceInterval> intervals =
      runtime::dominance_intervals(lat, config.tu_min, config.tu_max);
  const comm::TraceGenerator gen(config.trace);
  const auto init = static_cast<std::uint32_t>(
      runtime::select_option(intervals, config.trace.mean_mbps));

  double total_lat = 0.0, total_energy = 0.0;
  std::uint64_t switches = 0, outage_readings = 0;
  std::vector<comm::FleetTraceState> state(config.devices);
  std::vector<runtime::TrackerState> tracker(config.devices);
  std::vector<std::uint32_t> option(config.devices, init);
  for (std::size_t i = 0; i < config.devices; ++i) {
    state[i] = gen.start_state(par::SplitMix64(par::substream_seed(config.seed, i)));
  }
  for (std::size_t s = 0; s < config.steps; ++s) {
    double step_lat = 0.0, step_energy = 0.0;  // chunk-local, like the engine
    for (std::size_t i = 0; i < config.devices; ++i) {
      const double tu = gen.step(state[i]);
      runtime::tracker_update(config.tracker, tracker[i], tu);
      const double est =
          tracker[i].estimate_mbps > 0.0 ? tracker[i].estimate_mbps : config.tu_min;
      const auto o = static_cast<std::uint32_t>(runtime::select_option_hysteresis(
          intervals, lat, est, option[i], config.hysteresis_margin));
      if (o != option[i]) ++switches;
      option[i] = o;
      const double eff = tu > 0.0 ? tu : config.tu_min;
      step_lat += lat[o].value(eff);
      step_energy += energy[o].value(eff);
    }
    total_lat += step_lat;
    total_energy += step_energy;
  }
  for (const runtime::TrackerState& t : tracker) outage_readings += t.outages;
  const double device_steps =
      static_cast<double>(config.devices) * static_cast<double>(config.steps);

  par::ThreadPool pool(3);
  const fleet::FleetStats regions_off =
      fleet::FleetEngine(plan, hop_tu, config).run(pool);
  EXPECT_EQ(regions_off.mean_latency_ms, total_lat / device_steps);
  EXPECT_EQ(regions_off.mean_energy_mj, total_energy / device_steps);
  EXPECT_EQ(regions_off.total_switches, switches);
  EXPECT_EQ(regions_off.outage_readings, outage_readings);
  ASSERT_EQ(regions_off.regions.size(), 1u);

  // Eight healthy regions: identical global numbers (the region partition
  // only adds columns), and every per-region fault column stays zero.
  fleet::FleetConfig split = config;
  split.num_regions = 8;
  const fleet::FleetStats regions_on =
      fleet::FleetEngine(plan, hop_tu, split).run(pool);
  EXPECT_EQ(regions_on.mean_latency_ms, regions_off.mean_latency_ms);
  EXPECT_EQ(regions_on.mean_energy_mj, regions_off.mean_energy_mj);
  EXPECT_EQ(regions_on.total_switches, regions_off.total_switches);
  EXPECT_EQ(regions_on.latency_histogram, regions_off.latency_histogram);
  EXPECT_EQ(regions_on.oracle_mean_latency_ms, regions_off.oracle_mean_latency_ms);
  ASSERT_EQ(regions_on.regions.size(), 8u);
  for (const fleet::FleetStats::RegionStats& rs : regions_on.regions) {
    EXPECT_EQ(rs.degraded_device_s, 0.0);
    EXPECT_EQ(rs.backhaul_out_s, 0.0);
    EXPECT_EQ(rs.fog_shed_qps, 0.0);
    EXPECT_EQ(rs.breaker_open_s, 0.0);
  }
  EXPECT_EQ(regions_on.degraded_steps, 0u);
  EXPECT_EQ(regions_on.fog_shed, 0u);
}

// A 3-tier fleet through a regional disaster drill walking every ladder
// rung: region 0 stays healthy, region 1 loses its fog site (sheds retry
// cloud-direct over the live backhaul), region 2 loses fog AND backhaul
// (sheds fall through to the edge-only rung), region 3 rides out a six-step
// backhaul outage window. Breakers bound the retry traffic throughout.
fleet::FleetConfig regional_drill_config() {
  fleet::FleetConfig config;
  config.devices = 4100;  // > 4 chunks: the parallel path actually shards
  config.steps = 18;
  config.step_s = 100.0;
  config.seed = 5;
  config.trace.mean_mbps = 4.0;
  config.trace.sigma = 0.2;
  config.num_regions = 4;
  config.fog = cloud::fog_site_defaults(8);
  cloud::CloudConfig dc;
  dc.machines = 8;
  config.cloud = dc;
  config.sla_ms = 500.0;
  config.region_episodes.push_back(
      {1, {sim::FaultClass::kFogSiteFailure, 0.0, 1e9, 1.0}});
  config.region_episodes.push_back(
      {2, {sim::FaultClass::kFogSiteFailure, 0.0, 1e9, 1.0}});
  config.region_episodes.push_back(
      {2, {sim::FaultClass::kBackhaulOutage, 0.0, 1e9, 0.0, 1}});
  config.region_episodes.push_back(
      {3, {sim::FaultClass::kBackhaulOutage, 600.0, 1200.0, 0.0, 1}});
  return config;
}

TEST(FleetEngine, RegionalDrillWalksTheTierLadderDeterministically) {
  const core::DeploymentPlan& plan = ktier_vgg_plan();
  fleet::FleetEngine engine(plan, {4.0, 40.0}, regional_drill_config());
  par::ThreadPool one(1), eight(8);
  const fleet::FleetStats serial = engine.run(one);
  const fleet::FleetStats parallel = engine.run(eight);
  // The acceptance bar: byte-identical CSV — per-region columns included —
  // with regional outages, dead fog sites, and breakers all in flight.
  EXPECT_EQ(serial.csv(), parallel.csv());

  ASSERT_EQ(serial.regions.size(), 4u);
  const auto& r0 = serial.regions[0];
  const auto& r1 = serial.regions[1];
  const auto& r2 = serial.regions[2];
  const auto& r3 = serial.regions[3];

  // Healthy region: fog load admitted, no regional faults, no degradation.
  EXPECT_GT(r0.fog_offered_qps, 0.0);
  EXPECT_GT(r0.fog_admitted_qps, 0.0);
  EXPECT_EQ(r0.backhaul_out_s, 0.0);
  EXPECT_GT(r0.fog_energy_j, 0.0);
  EXPECT_EQ(r0.degraded_device_s, 0.0);

  // Region 1 (ladder rung 2): the fog site is down all run — nothing
  // admitted, early offers shed, and sheds retry CLOUD-DIRECT over the
  // live backhaul, so region 1 offers more to the central cloud than a
  // healthy region does.
  EXPECT_EQ(r1.fog_admitted_qps, 0.0);
  EXPECT_GT(r1.fog_shed_qps, 0.0);
  EXPECT_GT(r1.cloud_offered_qps, r0.cloud_offered_qps);
  EXPECT_GT(r1.degraded_device_s, 0.0);
  // The fog breaker bounds the retry traffic: devices spend most steps held
  // open instead of re-probing the dead site every step.
  EXPECT_GT(r1.breaker_open_s, 0.0);
  EXPECT_LT(r1.fog_offered_qps, r0.fog_offered_qps);

  // Region 2 (ladder rung 3): fog dead AND backhaul dead — cloud-direct is
  // unreachable, so sheds fall through to the edge-only fallback and the
  // region never offers the central cloud anything.
  EXPECT_EQ(r2.fog_admitted_qps, 0.0);
  EXPECT_EQ(r2.cloud_offered_qps, 0.0);
  EXPECT_LT(r2.cloud_offered_qps, r1.cloud_offered_qps);  // ladder ordering
  EXPECT_GT(r2.degraded_device_s, 0.0);
  EXPECT_EQ(r2.backhaul_out_s,
            static_cast<double>(serial.steps) * serial.step_s);

  // Region 3: the outage window covers exactly steps 6..11 — 600 wall-s of
  // backhaul-out time, with the fog tier healthy throughout.
  EXPECT_EQ(r3.backhaul_out_s, 600.0);
  EXPECT_GT(r3.fog_admitted_qps, 0.0);

  // Global roll-ups agree with the per-region columns.
  EXPECT_GT(serial.fog_shed, 0u);
  EXPECT_GT(serial.degraded_steps, 0u);
  EXPECT_GT(serial.breaker_trips, 0u);
  double region_fog_energy = 0.0, region_shed_qps = 0.0;
  for (const auto& rs : serial.regions) {
    region_fog_energy += rs.fog_energy_j;
    region_shed_qps += rs.fog_shed_qps;
  }
  EXPECT_EQ(serial.fog_energy_j, region_fog_energy);
  // fog_shed_qps = shed-count * device_qps / steps, summed over regions.
  const fleet::FleetConfig& cfg = engine.config();
  EXPECT_NEAR(static_cast<double>(serial.fog_shed) * cfg.device_qps /
                  static_cast<double>(cfg.steps),
              region_shed_qps, 1e-9);
}

}  // namespace
}  // namespace lens
