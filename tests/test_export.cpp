// Tests for CSV export of search results and learning-rate schedules.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/export.hpp"
#include "io/io.hpp"
#include "nn/schedule.hpp"
#include "perf/predictor.hpp"

namespace lens::core {
namespace {

NasResult small_search(const SearchSpace& space, const DeploymentEvaluator& evaluator) {
  const SurrogateAccuracyModel accuracy;
  NasConfig config;
  config.mobo.num_initial = 6;
  config.mobo.num_iterations = 4;
  config.mobo.pool_size = 24;
  config.mobo.seed = 4;
  NasDriver driver(space, evaluator, accuracy, config);
  return driver.run();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

class ExportTest : public ::testing::Test {
 protected:
  ExportTest()
      : sim_(perf::jetson_tx2_gpu()),
        oracle_(sim_),
        wifi_(comm::WirelessTechnology::kWifi, 5.0),
        evaluator_(oracle_, wifi_),
        result_(small_search(space_, evaluator_)) {}

  SearchSpace space_;
  perf::DeviceSimulator sim_;
  perf::SimulatorOracle oracle_;
  comm::CommModel wifi_;
  DeploymentEvaluator evaluator_;
  NasResult result_;
};

TEST_F(ExportTest, HistoryCsvHasAllRows) {
  const std::string path = temp_path("history.csv");
  save_history_csv(result_, space_, path);
  // + header + trailing `# lens:fnv1a` integrity footer
  EXPECT_EQ(count_lines(path), result_.history.size() + 2);
  std::remove(path.c_str());
}

TEST_F(ExportTest, FrontCsvHasFrontRows) {
  const std::string path = temp_path("front.csv");
  save_front_csv(result_, space_, path);
  EXPECT_EQ(count_lines(path), result_.front.size() + 2);
  std::remove(path.c_str());
}

TEST_F(ExportTest, RowsCarryConsistentValues) {
  const std::string path = temp_path("history_check.csv");
  save_history_csv(result_, space_, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  EXPECT_NE(line.find("error_percent"), std::string::npos);
  std::getline(in, line);  // first candidate
  std::stringstream row(line);
  std::string cell;
  std::getline(row, cell, ',');
  EXPECT_EQ(cell, "0");
  std::getline(row, cell, ',');
  EXPECT_EQ(cell, result_.history.front().name);
  std::getline(row, cell, ',');
  EXPECT_NEAR(std::stod(cell), result_.history.front().error_percent, 1e-6);
  std::remove(path.c_str());
}

TEST_F(ExportTest, FrontFlagsMatchParetoMembership) {
  const std::string path = temp_path("history_flags.csv");
  save_history_csv(result_, space_, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::size_t flagged = 0;
  while (std::getline(in, line)) {
    // 6th column is on_front.
    std::stringstream row(line);
    std::string cell;
    for (int i = 0; i < 6; ++i) std::getline(row, cell, ',');
    if (cell == "1") ++flagged;
  }
  EXPECT_EQ(flagged, result_.front.size());
  std::remove(path.c_str());
}

TEST_F(ExportTest, GenotypeRoundTripAndResume) {
  const std::string path = temp_path("resume.csv");
  save_front_csv(result_, space_, path);
  const std::vector<Genotype> genotypes = load_genotypes_csv(space_, path);
  ASSERT_EQ(genotypes.size(), result_.front.size());
  // Order matches the front's points; every genotype decodes.
  for (std::size_t i = 0; i < genotypes.size(); ++i) {
    EXPECT_EQ(genotypes[i], result_.history[result_.front.points()[i].id].genotype);
    EXPECT_NO_THROW(space_.decode(genotypes[i]));
  }

  // Resume a search from the checkpoint: seeded candidates appear first in
  // the history with identical objective values (evaluator is deterministic).
  const SurrogateAccuracyModel accuracy;
  NasConfig config;
  config.mobo.num_initial = 8;
  config.mobo.num_iterations = 3;
  config.mobo.pool_size = 24;
  config.mobo.seed = 9;
  config.warm_start = genotypes;
  NasDriver driver(space_, evaluator_, accuracy, config);
  const NasResult resumed = driver.run();
  EXPECT_EQ(resumed.history.size(), 8u + 3u);  // seeds count toward warm-up
  for (std::size_t i = 0; i < genotypes.size(); ++i) {
    EXPECT_EQ(resumed.history[i].genotype, genotypes[i]);
  }
  std::remove(path.c_str());
}

TEST_F(ExportTest, LoadGenotypesValidation) {
  EXPECT_THROW(load_genotypes_csv(space_, "/nonexistent/x.csv"), std::runtime_error);
  const std::string path = temp_path("bad_geno.csv");
  // Footer-less file (e.g. hand-edited): checksum gate rejects it.
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW(load_genotypes_csv(space_, path), std::runtime_error);
  // Valid footer, semantically-bad payloads: parser validation still fires.
  io::atomic_write_checked(path, [](std::ostream& out) { out << "wrong,header\n"; });
  EXPECT_THROW(load_genotypes_csv(space_, path), std::invalid_argument);
  io::atomic_write_checked(path,
                           [](std::ostream& out) { out << "index,genotype\n0,not-numbers\n"; });
  EXPECT_THROW(load_genotypes_csv(space_, path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST_F(ExportTest, BadPathThrows) {
  EXPECT_THROW(save_history_csv(result_, space_, "/nonexistent-dir/x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace lens::core

namespace lens::nn {
namespace {

TEST(Schedules, ConstantIsConstant) {
  const ConstantLr lr(0.01);
  EXPECT_DOUBLE_EQ(lr.learning_rate(0), 0.01);
  EXPECT_DOUBLE_EQ(lr.learning_rate(100), 0.01);
  EXPECT_THROW(ConstantLr(0.0), std::invalid_argument);
}

TEST(Schedules, StepDecayHalvesOnSchedule) {
  const StepDecayLr lr(0.1, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr.learning_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(lr.learning_rate(9), 0.1);
  EXPECT_DOUBLE_EQ(lr.learning_rate(10), 0.05);
  EXPECT_DOUBLE_EQ(lr.learning_rate(25), 0.025);
  EXPECT_THROW(StepDecayLr(0.1, 1.5, 10), std::invalid_argument);
  EXPECT_THROW(StepDecayLr(0.1, 0.5, 0), std::invalid_argument);
}

TEST(Schedules, CosineDecayEndpoints) {
  const CosineDecayLr lr(0.1, 10, 0.001);
  EXPECT_DOUBLE_EQ(lr.learning_rate(0), 0.1);
  EXPECT_NEAR(lr.learning_rate(5), 0.5 * (0.1 + 0.001), 1e-9);
  EXPECT_DOUBLE_EQ(lr.learning_rate(10), 0.001);
  EXPECT_DOUBLE_EQ(lr.learning_rate(50), 0.001);  // clamps after the horizon
  // Monotone non-increasing.
  for (std::size_t e = 1; e <= 10; ++e) {
    EXPECT_LE(lr.learning_rate(e), lr.learning_rate(e - 1) + 1e-12);
  }
  EXPECT_THROW(CosineDecayLr(0.1, 0), std::invalid_argument);
  EXPECT_THROW(CosineDecayLr(0.1, 10, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace lens::nn
