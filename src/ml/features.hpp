#pragma once
// Feature engineering helpers for the layer-performance regression models
// (paper §IV-C: "Each prediction model would have its input features
// constructed as in [Neurosurgeon]").

#include <vector>

namespace lens::ml {

/// Standardizes feature columns to zero mean / unit variance. Columns with
/// (near-)zero variance pass through unscaled so constant features don't
/// explode.
class FeatureScaler {
 public:
  /// Learn column statistics from a design matrix (rows = samples).
  void fit(const std::vector<std::vector<double>>& x);

  /// Apply the learned scaling to one sample.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Apply to a whole design matrix.
  std::vector<std::vector<double>> transform(const std::vector<std::vector<double>>& x) const;

  bool is_fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std_dev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// log(1 + v) transform for heavy-tailed features (sizes, FLOP counts).
double log1p_feature(double v);

/// Expand a feature vector with pairwise products (degree-2 interaction
/// terms, no squares of the bias). Keeps the original features first.
std::vector<double> with_pairwise_products(const std::vector<double>& x);

}  // namespace lens::ml
