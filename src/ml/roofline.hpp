#pragma once
// Physically-informed piecewise regression for layer latency:
//   latency = max(flops * u, bytes * v) + c        (u = 1/rate_compute, ...)
// Fit by alternating assignment / least squares: each sample is assigned to
// the branch currently explaining it, then (u, v, c) are re-fit jointly by
// linear least squares on the assigned design. This is the per-layer-type
// prediction-model family Neurosurgeon-style methodologies use for devices
// whose kernels are either compute- or bandwidth-bound.

#include <cstddef>
#include <vector>

namespace lens::ml {

struct RooflineConfig {
  int max_iterations = 25;
  double lambda = 1e-12;  ///< tiny ridge term for numerical safety
};

/// Two-branch roofline latency regressor.
class RooflineRegression {
 public:
  explicit RooflineRegression(RooflineConfig config = {});

  /// Fit on parallel vectors of per-sample FLOPs, moved bytes, and measured
  /// latency. Throws on empty / mismatched input or non-positive targets.
  void fit(const std::vector<double>& flops, const std::vector<double>& bytes,
           const std::vector<double>& latency);

  /// Reconstruct a fitted model from its parameters (deserialization).
  static RooflineRegression from_params(double compute_rate, double memory_rate,
                                        double overhead);

  /// Predicted latency for one (flops, bytes) pair.
  double predict(double flops, double bytes) const;

  /// True when the compute branch dominates for this workload.
  bool compute_bound(double flops, double bytes) const;

  bool is_fitted() const { return fitted_; }
  /// Effective compute rate (FLOP per latency-unit), i.e. 1/u.
  double compute_rate() const { return 1.0 / inv_compute_rate_; }
  /// Effective memory rate (bytes per latency-unit), i.e. 1/v.
  double memory_rate() const { return 1.0 / inv_memory_rate_; }
  double overhead() const { return overhead_; }
  int iterations_used() const { return iterations_used_; }

 private:
  RooflineConfig config_;
  bool fitted_ = false;
  double inv_compute_rate_ = 0.0;
  double inv_memory_rate_ = 0.0;
  double overhead_ = 0.0;
  int iterations_used_ = 0;
};

}  // namespace lens::ml
