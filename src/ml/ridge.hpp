#pragma once
// L2-regularized linear regression (ridge), solved in closed form via the
// normal equations and a Cholesky factorization. This is the regression
// family behind the per-layer latency / power predictors (paper §IV-C).

#include <vector>

namespace lens::ml {

struct RidgeConfig {
  double lambda = 1e-3;      ///< L2 penalty (not applied to the intercept)
  bool fit_intercept = true;
};

/// Ridge regression y ~ w . x + b.
class RidgeRegression {
 public:
  explicit RidgeRegression(RidgeConfig config = {});

  /// Fit on a design matrix (rows = samples) and targets. Throws on empty,
  /// ragged, or size-mismatched input.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  /// Predict a single sample. Throws if not fitted or dimension mismatch.
  double predict(const std::vector<double>& x) const;

  /// Predict a batch.
  std::vector<double> predict(const std::vector<std::vector<double>>& x) const;

  bool is_fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  RidgeConfig config_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace lens::ml
