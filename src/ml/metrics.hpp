#pragma once
// Regression quality metrics and dataset split helpers.

#include <cstddef>
#include <random>
#include <utility>
#include <vector>

namespace lens::ml {

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot. Returns 1.0 for a
/// perfect fit; can be negative for fits worse than the mean predictor.
double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Root-mean-squared error.
double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Mean absolute percentage error (%); entries with |y_true| < eps are skipped.
double mape(const std::vector<double>& y_true, const std::vector<double>& y_pred,
            double eps = 1e-9);

/// Spearman rank correlation in [-1, 1]: correlation of the rank orders of
/// two paired samples (average ranks for ties). The right metric for "does
/// surrogate A rank candidates like evaluator B". Throws on mismatched or
/// short (<2) input.
double spearman_correlation(const std::vector<double>& a, const std::vector<double>& b);

/// A regression dataset: parallel design matrix and targets.
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  std::size_t size() const { return y.size(); }
  void add(std::vector<double> features, double target);
};

/// Random train/test split; `test_fraction` in (0,1).
std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             std::mt19937_64& rng);

}  // namespace lens::ml
