#include "ml/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/matrix.hpp"

namespace lens::ml {

RooflineRegression::RooflineRegression(RooflineConfig config) : config_(config) {
  if (config.max_iterations <= 0) {
    throw std::invalid_argument("RooflineRegression: max_iterations must be positive");
  }
}

void RooflineRegression::fit(const std::vector<double>& flops,
                             const std::vector<double>& bytes,
                             const std::vector<double>& latency) {
  const std::size_t n = latency.size();
  if (n == 0 || flops.size() != n || bytes.size() != n) {
    throw std::invalid_argument("RooflineRegression::fit: empty or mismatched data");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (flops[i] <= 0.0 || bytes[i] <= 0.0 || latency[i] <= 0.0) {
      throw std::invalid_argument("RooflineRegression::fit: non-positive sample");
    }
  }

  // Initialize rates from the medians of latency/work ratios: an over-
  // estimate for the non-binding branch, but a sane starting assignment.
  auto median_ratio = [n](const std::vector<double>& work, const std::vector<double>& y) {
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = y[i] / work[i];
    std::nth_element(r.begin(), r.begin() + static_cast<std::ptrdiff_t>(n / 2), r.end());
    return r[n / 2];
  };
  double u = median_ratio(flops, latency);  // latency per FLOP
  double v = median_ratio(bytes, latency);  // latency per byte
  double c = 0.0;

  std::vector<bool> assigned_compute(n);
  std::vector<bool> previous(n);
  for (int iteration = 0; iteration < config_.max_iterations; ++iteration) {
    for (std::size_t i = 0; i < n; ++i) {
      assigned_compute[i] = flops[i] * u >= bytes[i] * v;
    }
    if (iteration > 0 && assigned_compute == previous) {
      iterations_used_ = iteration;
      break;
    }
    previous = assigned_compute;

    // Joint least squares over [compute_work, memory_work, 1] where exactly
    // one work column is active per row. Rows are weighted by 1/latency so
    // the fit minimizes *relative* residuals — otherwise the handful of
    // largest layers dominate and the per-layer overhead of small layers is
    // fit arbitrarily badly.
    opt::Matrix design(n, 3);
    std::vector<double> target(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double weight = 1.0 / latency[i];
      design(i, 0) = (assigned_compute[i] ? flops[i] : 0.0) * weight;
      design(i, 1) = (assigned_compute[i] ? 0.0 : bytes[i]) * weight;
      design(i, 2) = weight;
      target[i] = 1.0;  // latency[i] * weight
    }
    // Column equilibration: the work columns are ~1e8x larger than the
    // intercept column, so a raw ridge term would crush the intercept.
    double scale[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      for (int j = 0; j < 3; ++j) scale[j] += design(i, j) * design(i, j);
    }
    for (int j = 0; j < 3; ++j) {
      scale[j] = std::sqrt(scale[j] / static_cast<double>(n));
      if (scale[j] < 1e-300) scale[j] = 1.0;  // empty branch column
      for (std::size_t i = 0; i < n; ++i) design(i, j) /= scale[j];
    }
    opt::Matrix gram = design.transposed().multiply(design);
    gram.add_diagonal(config_.lambda + 1e-9);
    const std::vector<double> rhs = design.transposed().multiply(target);
    std::vector<double> solution = opt::CholeskyFactor::factorize(gram).solve(rhs);
    for (int j = 0; j < 3; ++j) solution[static_cast<std::size_t>(j)] /= scale[j];
    // Keep parameters physical: rates and overhead never negative.
    u = std::max(solution[0], 1e-18);
    v = std::max(solution[1], 1e-18);
    c = std::max(solution[2], 0.0);
    iterations_used_ = iteration + 1;
  }

  inv_compute_rate_ = u;
  inv_memory_rate_ = v;
  overhead_ = c;
  fitted_ = true;
}

RooflineRegression RooflineRegression::from_params(double compute_rate, double memory_rate,
                                                   double overhead) {
  if (compute_rate <= 0.0 || memory_rate <= 0.0 || overhead < 0.0) {
    throw std::invalid_argument("RooflineRegression::from_params: invalid parameters");
  }
  RooflineRegression model;
  model.inv_compute_rate_ = 1.0 / compute_rate;
  model.inv_memory_rate_ = 1.0 / memory_rate;
  model.overhead_ = overhead;
  model.fitted_ = true;
  return model;
}

double RooflineRegression::predict(double flops, double bytes) const {
  if (!fitted_) throw std::logic_error("RooflineRegression::predict: not fitted");
  return std::max(flops * inv_compute_rate_, bytes * inv_memory_rate_) + overhead_;
}

bool RooflineRegression::compute_bound(double flops, double bytes) const {
  if (!fitted_) throw std::logic_error("RooflineRegression::compute_bound: not fitted");
  return flops * inv_compute_rate_ >= bytes * inv_memory_rate_;
}

}  // namespace lens::ml
