#include "ml/features.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::ml {

void FeatureScaler::fit(const std::vector<std::vector<double>>& x) {
  if (x.empty()) throw std::invalid_argument("FeatureScaler::fit: empty design matrix");
  const std::size_t dim = x.front().size();
  mean_.assign(dim, 0.0);
  std_.assign(dim, 0.0);
  for (const auto& row : x) {
    if (row.size() != dim) throw std::invalid_argument("FeatureScaler::fit: ragged rows");
    for (std::size_t j = 0; j < dim; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(x.size()));
    if (s < 1e-12) s = 1.0;
  }
}

std::vector<double> FeatureScaler::transform(const std::vector<double>& x) const {
  if (!is_fitted()) throw std::logic_error("FeatureScaler::transform: not fitted");
  if (x.size() != mean_.size()) throw std::invalid_argument("FeatureScaler: size mismatch");
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean_[j]) / std_[j];
  return out;
}

std::vector<std::vector<double>> FeatureScaler::transform(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

double log1p_feature(double v) {
  if (v < 0.0) throw std::invalid_argument("log1p_feature: negative value");
  return std::log1p(v);
}

std::vector<double> with_pairwise_products(const std::vector<double>& x) {
  std::vector<double> out = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i; j < x.size(); ++j) {
      out.push_back(x[i] * x[j]);
    }
  }
  return out;
}

}  // namespace lens::ml
