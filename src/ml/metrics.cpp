#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lens::ml {

namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: vectors must be equal-sized and non-empty");
  }
}
}  // namespace

double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  const double mean =
      std::accumulate(y_true.begin(), y_true.end(), 0.0) / static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    acc += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

double mape(const std::vector<double>& y_true, const std::vector<double>& y_pred, double eps) {
  check_sizes(y_true, y_pred);
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (std::abs(y_true[i]) < eps) continue;
    acc += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
    ++counted;
  }
  if (counted == 0) throw std::invalid_argument("mape: all targets below eps");
  return 100.0 * acc / static_cast<double>(counted);
}

namespace {
/// Average ranks (1-based; ties share the mean of their positions).
std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mean_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("spearman_correlation: need >=2 paired samples");
  }
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  // Pearson correlation of the ranks (robust to ties).
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean_a) * (rb[i] - mean_b);
    var_a += (ra[i] - mean_a) * (ra[i] - mean_a);
    var_b += (rb[i] - mean_b) * (rb[i] - mean_b);
  }
  if (var_a < 1e-12 || var_b < 1e-12) return 0.0;  // a constant ranking carries no signal
  return cov / std::sqrt(var_a * var_b);
}

void Dataset::add(std::vector<double> features, double target) {
  x.push_back(std::move(features));
  y.push_back(target);
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             std::mt19937_64& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: test_fraction must be in (0,1)");
  }
  if (data.x.size() != data.y.size()) {
    throw std::invalid_argument("train_test_split: inconsistent dataset");
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  const auto test_count = static_cast<std::size_t>(
      std::round(test_fraction * static_cast<double>(data.size())));
  Dataset train;
  Dataset test;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& target = i < test_count ? test : train;
    target.add(data.x[order[i]], data.y[order[i]]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace lens::ml
