#include "ml/ridge.hpp"

#include <stdexcept>

#include "opt/matrix.hpp"

namespace lens::ml {

RidgeRegression::RidgeRegression(RidgeConfig config) : config_(config) {
  if (config_.lambda < 0.0) throw std::invalid_argument("RidgeRegression: lambda must be >= 0");
}

void RidgeRegression::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("RidgeRegression::fit: empty or mismatched data");
  }
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  const std::size_t cols = d + (config_.fit_intercept ? 1 : 0);

  opt::Matrix a(n, cols);
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i].size() != d) throw std::invalid_argument("RidgeRegression::fit: ragged rows");
    for (std::size_t j = 0; j < d; ++j) a(i, j) = x[i][j];
    if (config_.fit_intercept) a(i, d) = 1.0;
  }

  // Normal equations: (A^T A + lambda I') w = A^T y, with no penalty on the
  // intercept column.
  opt::Matrix at = a.transposed();
  opt::Matrix gram = at.multiply(a);
  for (std::size_t j = 0; j < d; ++j) gram(j, j) += config_.lambda;
  // Tiny jitter keeps the factorization alive for rank-deficient designs.
  gram.add_diagonal(1e-10);
  const std::vector<double> rhs = at.multiply(y);
  std::vector<double> solution = opt::CholeskyFactor::factorize(gram).solve(rhs);

  weights_.assign(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(d));
  intercept_ = config_.fit_intercept ? solution[d] : 0.0;
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  if (!is_fitted()) throw std::logic_error("RidgeRegression::predict: not fitted");
  if (x.size() != weights_.size()) {
    throw std::invalid_argument("RidgeRegression::predict: dimension mismatch");
  }
  double acc = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) acc += weights_[j] * x[j];
  return acc;
}

std::vector<double> RidgeRegression::predict(const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace lens::ml
