#pragma once
// Finite datacenter model: a homogeneous machine pool with per-machine
// capacity (layer-milliseconds of model suffix executed per wall-second),
// a linear idle->active power curve with an explicit powered-off state,
// and a bounded per-machine run queue.
//
// The paper (and PRs 1-8) treat the cloud half of a partitioned model as
// infinite capacity: `DeploymentOption::cloud_latency_ms` is a constant
// independent of load. lens::cloud replaces that abstraction with M
// machines, each a bounded FIFO (M/M/1/K in steady state), so overload
// produces visible queueing delay and shed load instead of free service.

#include <cstddef>

namespace lens::cloud {

/// Placement policy for the cloud halves of partitioned inference streams.
enum class PlacementPolicy {
  /// Fill machines in index order (classic first-fit); every surviving
  /// machine stays powered, so idle machines burn `idle_w`.
  kGreedyFirstFit,
  /// Consolidate onto as few machines as the admission ceiling allows and
  /// power idle machines off entirely. The pool is homogeneous, so the
  /// admission capacity (and therefore the shed rate) matches greedy
  /// exactly; only the energy bill differs.
  kEnergyBestFit,
};

const char* placement_policy_name(PlacementPolicy policy);

/// One machine class (the pool is homogeneous).
struct MachineSpec {
  /// Service capacity: layer-milliseconds of model suffix executed per
  /// wall-clock second. 1000 is real time (a 5 ms suffix takes 5 ms);
  /// 4000 serves a 5 ms suffix stream at 800 jobs/s.
  double capacity_ms_per_s = 4000.0;
  double active_w = 220.0;  ///< Draw at 100% utilization.
  double idle_w = 95.0;     ///< Draw powered on at 0% utilization.
  /// Bounded run queue: jobs resident per machine (waiting + in service).
  /// An arrival that finds `queue_slots` residents is rejected.
  std::size_t queue_slots = 8;
};

struct CloudConfig {
  std::size_t machines = 64;
  MachineSpec machine;
  PlacementPolicy policy = PlacementPolicy::kGreedyFirstFit;
  /// Admission ceiling: the controller sheds load beyond this fraction of
  /// a machine's service rate, keeping queues off the M/M/1 knee so wait
  /// stays bounded instead of collapsing under overload.
  double admit_utilization = 0.85;
  /// Suffix cost assumed when a deployment option carries no measured
  /// cloud latency (the evaluator's infinite-cloud default of 0 ms).
  double assumed_job_ms = 2.0;
};

/// A regional fog site: the same bounded-pool model as the datacenter but
/// sized like a street-cabinet micro-datacenter — few machines, slower
/// parts, shallower queues, and a lower admission ceiling so the site sheds
/// early rather than letting queueing delay eat the latency the fog tier
/// exists to save. `machines` is the per-region pool size (the fleet gives
/// every region its own pool from one preset).
CloudConfig fog_site_defaults(std::size_t machines);

/// Steady-state metrics of one bounded FIFO machine queue: M/M/1/K with
/// K = queue_slots resident jobs (waiting + in service).
struct QueueMetrics {
  double rho = 0.0;                ///< Offered utilization lambda/mu.
  double block_probability = 0.0;  ///< P(arrival finds the queue full).
  double mean_jobs = 0.0;          ///< L: mean resident jobs.
  double mean_wait_ms = 0.0;       ///< Mean queueing wait (excl. service)
                                   ///< of an admitted job.
};

/// Closed-form M/M/1/K steady state: truncated-geometric occupancy,
/// blocking probability p_K, L by direct summation identity, and mean
/// queueing wait via Little's law over the admitted rate. Throws
/// std::invalid_argument for non-positive rates or zero slots.
QueueMetrics mm1k_metrics(double arrival_hz, double service_hz,
                          std::size_t queue_slots);

/// The homogeneous pool: validated configuration plus the per-machine
/// capacity, queueing, and power math shared by both scheduler paths.
class MachinePool {
 public:
  /// Throws std::invalid_argument on invalid knobs (no machines,
  /// non-positive capacity, idle draw above active, zero queue slots,
  /// admit_utilization outside (0, 1], non-positive assumed_job_ms).
  explicit MachinePool(const CloudConfig& config);

  const CloudConfig& config() const { return config_; }
  std::size_t machines() const { return config_.machines; }

  /// Suffix cost actually scheduled: options compiled under the paper's
  /// infinite-cloud assumption carry cloud_latency_ms == 0, which would
  /// mean free service; substitute the configured assumed cost.
  double effective_job_ms(double job_ms) const;

  /// Per-machine service rate (jobs/s) for a suffix of `job_ms`, under a
  /// brownout capacity factor in [0, 1]. Zero when the factor is zero.
  double service_hz(double job_ms, double brownout_factor = 1.0) const;

  /// Steady-state queue metrics of one machine fed at `arrival_hz`.
  QueueMetrics queue_metrics(double arrival_hz, double job_ms,
                             double brownout_factor = 1.0) const;

  /// Electrical draw of one powered machine at utilization u in [0, 1]
  /// (linear idle->active interpolation). Powered-off machines draw 0.
  double machine_power_w(double utilization) const;

 private:
  CloudConfig config_;
};

}  // namespace lens::cloud
