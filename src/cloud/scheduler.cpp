#include "cloud/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lens::cloud {

namespace {

std::size_t machines_surviving(std::size_t total, double failure_fraction) {
  const double q = std::clamp(failure_fraction, 0.0, 1.0);
  const auto failed = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(total)));
  return total - std::min(failed, total);
}

}  // namespace

CloudScheduler::CloudScheduler(const CloudConfig& config)
    : pool_(config), machines_(config.machines) {}

StepOutcome CloudScheduler::place_step(double offered_qps, double job_ms,
                                       double failure_fraction,
                                       double brownout_factor) const {
  if (!(offered_qps >= 0.0) || !std::isfinite(offered_qps)) {
    throw std::invalid_argument("place_step: offered_qps must be >= 0");
  }
  const CloudConfig& cfg = pool_.config();
  StepOutcome out;
  out.offered_qps = offered_qps;
  out.machines_up = machines_surviving(cfg.machines, failure_fraction);

  const double mu = pool_.service_hz(job_ms, brownout_factor);
  const double per_machine_qps = cfg.admit_utilization * mu;
  const double capacity_qps =
      per_machine_qps * static_cast<double>(out.machines_up);
  out.admitted_qps = std::min(offered_qps, capacity_qps);
  out.shed_qps = offered_qps - out.admitted_qps;
  out.admit_fraction =
      offered_qps > 0.0 ? out.admitted_qps / offered_qps : 1.0;

  // First-fit fluid packing: fill machines to the admission ceiling in
  // sequence, one partially loaded machine at the boundary.
  std::size_t full = 0;
  double partial_qps = 0.0;
  if (per_machine_qps > 0.0 && out.admitted_qps > 0.0) {
    full = static_cast<std::size_t>(out.admitted_qps / per_machine_qps);
    full = std::min(full, out.machines_up);
    partial_qps =
        out.admitted_qps - per_machine_qps * static_cast<double>(full);
    if (partial_qps < 1e-9 * std::max(1.0, out.admitted_qps)) {
      partial_qps = 0.0;
    }
  }
  out.machines_active = full + (partial_qps > 0.0 ? 1 : 0);

  if (out.admitted_qps > 0.0 && mu > 0.0) {
    const std::size_t slots = cfg.machine.queue_slots;
    const QueueMetrics at_cap = mm1k_metrics(per_machine_qps, mu, slots);
    double wait_weighted = at_cap.mean_wait_ms * per_machine_qps *
                           static_cast<double>(full);
    double power = pool_.machine_power_w(per_machine_qps / mu) *
                   static_cast<double>(full);
    if (partial_qps > 0.0) {
      const QueueMetrics part = mm1k_metrics(partial_qps, mu, slots);
      wait_weighted += part.mean_wait_ms * partial_qps;
      power += pool_.machine_power_w(partial_qps / mu);
    }
    out.mean_wait_ms = wait_weighted / out.admitted_qps;
    out.power_w = power;
  }
  if (cfg.policy == PlacementPolicy::kGreedyFirstFit) {
    // Greedy keeps every surviving machine powered; best-fit consolidation
    // powers the idle tail off entirely (0 W), which is the whole gap.
    out.power_w += cfg.machine.idle_w *
                   static_cast<double>(out.machines_up - out.machines_active);
  }
  return out;
}

Admission CloudScheduler::admit(double arrival_s, double job_ms,
                                double failure_fraction,
                                double brownout_factor) {
  if (!(arrival_s >= 0.0) || !std::isfinite(arrival_s)) {
    throw std::invalid_argument(
        "CloudScheduler::admit: arrival must be finite and non-negative");
  }

  Admission result;
  const std::size_t up =
      machines_surviving(pool_.machines(), failure_fraction);
  const double mu = pool_.service_hz(job_ms, brownout_factor);
  if (up == 0 || mu <= 0.0) {
    ++shed_;
    return result;
  }
  const std::size_t slots = pool_.config().machine.queue_slots;
  const bool best_fit =
      pool_.config().policy == PlacementPolicy::kEnergyBestFit;

  std::size_t chosen = up;  // sentinel: nothing fits
  std::size_t chosen_depth = 0;
  for (std::size_t i = 0; i < up; ++i) {
    Machine& m = machines_[i];
    while (!m.completions.empty() && m.completions.front() <= arrival_s) {
      m.completions.pop_front();
    }
    const std::size_t depth = m.completions.size();
    if (depth >= slots) continue;
    if (!best_fit) {
      chosen = i;
      break;  // first fit
    }
    if (chosen == up || depth > chosen_depth) {
      chosen = i;
      chosen_depth = depth;
    }
  }
  if (chosen == up) {
    ++shed_;
    return result;
  }

  Machine& m = machines_[chosen];
  const double service_s = 1.0 / mu;
  const double start_s = std::max(arrival_s, m.busy_until_s);
  result.admitted = true;
  result.machine = chosen;
  result.start_s = start_s;
  result.completion_s = start_s + service_s;
  result.wait_ms = (start_s - arrival_s) * 1e3;
  m.completions.push_back(result.completion_s);
  m.busy_until_s = result.completion_s;
  m.busy_total_s += service_s;
  ++served_;
  return result;
}

double CloudScheduler::energy_j(double horizon_s) const {
  const CloudConfig& cfg = pool_.config();
  const double h = std::max(0.0, horizon_s);
  double joules = 0.0;
  for (const Machine& m : machines_) {
    const double busy = std::min(m.busy_total_s, h);
    joules += busy * cfg.machine.active_w;
    if (cfg.policy == PlacementPolicy::kGreedyFirstFit) {
      joules += (h - busy) * cfg.machine.idle_w;
    }
  }
  return joules;
}

}  // namespace lens::cloud
