#include "cloud/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lens::cloud {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kGreedyFirstFit:
      return "greedy-first-fit";
    case PlacementPolicy::kEnergyBestFit:
      return "energy-best-fit";
  }
  return "unknown";
}

CloudConfig fog_site_defaults(std::size_t machines) {
  CloudConfig config;
  config.machines = machines;
  config.machine.capacity_ms_per_s = 1500.0;  // embedded parts, not Xeons
  config.machine.active_w = 65.0;
  config.machine.idle_w = 18.0;
  config.machine.queue_slots = 4;     // shallow: shed early, stay low-latency
  config.admit_utilization = 0.7;     // back off the M/M/1 knee harder
  config.policy = PlacementPolicy::kGreedyFirstFit;
  return config;
}

QueueMetrics mm1k_metrics(double arrival_hz, double service_hz,
                          std::size_t queue_slots) {
  if (!(arrival_hz >= 0.0) || !std::isfinite(arrival_hz)) {
    throw std::invalid_argument("mm1k_metrics: arrival rate must be >= 0");
  }
  if (!(service_hz > 0.0) || !std::isfinite(service_hz)) {
    throw std::invalid_argument("mm1k_metrics: service rate must be > 0");
  }
  if (queue_slots == 0) {
    throw std::invalid_argument("mm1k_metrics: need at least one queue slot");
  }
  QueueMetrics m;
  m.rho = arrival_hz / service_hz;
  if (arrival_hz == 0.0) {
    return m;  // empty queue: no blocking, no residents, no wait
  }
  const double rho = m.rho;
  const auto k = static_cast<double>(queue_slots);
  if (std::abs(rho - 1.0) < 1e-12) {
    // Degenerate uniform occupancy: p_n = 1/(K+1).
    m.block_probability = 1.0 / (k + 1.0);
    m.mean_jobs = k / 2.0;
  } else {
    const double rho_k = std::pow(rho, k);
    const double geom = 1.0 - rho * rho_k;  // 1 - rho^{K+1}
    m.block_probability = (1.0 - rho) * rho_k / geom;
    m.mean_jobs = rho * (1.0 - (k + 1.0) * rho_k + k * rho * rho_k) /
                  ((1.0 - rho) * geom);
  }
  const double admitted_hz = arrival_hz * (1.0 - m.block_probability);
  if (admitted_hz > 0.0) {
    // Little's law gives time-in-system; subtract service for pure wait.
    const double wait_s = m.mean_jobs / admitted_hz - 1.0 / service_hz;
    m.mean_wait_ms = std::max(0.0, wait_s * 1e3);
  }
  return m;
}

MachinePool::MachinePool(const CloudConfig& config) : config_(config) {
  if (config_.machines == 0) {
    throw std::invalid_argument("MachinePool: need at least one machine");
  }
  const MachineSpec& spec = config_.machine;
  if (!(spec.capacity_ms_per_s > 0.0) || !std::isfinite(spec.capacity_ms_per_s)) {
    throw std::invalid_argument("MachinePool: capacity must be > 0");
  }
  if (!(spec.idle_w >= 0.0) || !(spec.active_w >= spec.idle_w)) {
    throw std::invalid_argument(
        "MachinePool: need 0 <= idle_w <= active_w");
  }
  if (spec.queue_slots == 0) {
    throw std::invalid_argument("MachinePool: need at least one queue slot");
  }
  if (!(config_.admit_utilization > 0.0) || config_.admit_utilization > 1.0) {
    throw std::invalid_argument(
        "MachinePool: admit_utilization must lie in (0, 1]");
  }
  if (!(config_.assumed_job_ms > 0.0)) {
    throw std::invalid_argument("MachinePool: assumed_job_ms must be > 0");
  }
}

double MachinePool::effective_job_ms(double job_ms) const {
  return job_ms > 0.0 ? job_ms : config_.assumed_job_ms;
}

double MachinePool::service_hz(double job_ms, double brownout_factor) const {
  if (brownout_factor <= 0.0) return 0.0;
  const double factor = std::min(brownout_factor, 1.0);
  return config_.machine.capacity_ms_per_s * factor / effective_job_ms(job_ms);
}

QueueMetrics MachinePool::queue_metrics(double arrival_hz, double job_ms,
                                        double brownout_factor) const {
  const double mu = service_hz(job_ms, brownout_factor);
  if (mu <= 0.0) {
    throw std::invalid_argument(
        "MachinePool::queue_metrics: no service capacity");
  }
  return mm1k_metrics(arrival_hz, mu, config_.machine.queue_slots);
}

double MachinePool::machine_power_w(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return config_.machine.idle_w +
         (config_.machine.active_w - config_.machine.idle_w) * u;
}

}  // namespace lens::cloud
