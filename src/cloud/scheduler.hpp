#pragma once
// CloudScheduler: admission control + placement over a MachinePool.
//
// Two entry points share the same pool math:
//  - place_step(): a fluid (analytic) step for the fleet engine — offered
//    QPS in, {admitted, shed, mean wait, active machines, power} out.
//    Pure function of the configuration, called serially once per fleet
//    step, so fleet determinism is untouched by thread count.
//  - admit(): discrete per-request admission for EdgeCloudSystem — jobs
//    arrive in nondecreasing time order and either join a bounded
//    per-machine FIFO (placement by policy) or are shed immediately.

#include <cstddef>
#include <deque>
#include <vector>

#include "cloud/machine.hpp"

namespace lens::cloud {

/// Outcome of one fluid scheduling step (the fleet path).
struct StepOutcome {
  double offered_qps = 0.0;
  double admitted_qps = 0.0;
  double shed_qps = 0.0;
  /// admitted/offered; 1 when nothing was offered.
  double admit_fraction = 1.0;
  /// Mean queueing wait experienced by admitted jobs.
  double mean_wait_ms = 0.0;
  std::size_t machines_up = 0;      ///< Survived machine failures.
  std::size_t machines_active = 0;  ///< Hosting load this step.
  double power_w = 0.0;             ///< Pool electrical draw.
};

/// Outcome of one discrete admission attempt (the EdgeCloudSystem path).
struct Admission {
  bool admitted = false;
  std::size_t machine = 0;
  double start_s = 0.0;       ///< Service start (>= arrival).
  double completion_s = 0.0;  ///< Service completion.
  double wait_ms = 0.0;       ///< Queueing delay ahead of service.
};

class CloudScheduler {
 public:
  /// Validates the configuration via MachinePool (throws).
  explicit CloudScheduler(const CloudConfig& config);

  const MachinePool& pool() const { return pool_; }

  /// Fluid step: split `offered_qps` of suffix jobs (each `job_ms` of
  /// layer work) into admitted and shed, given a fraction of failed
  /// machines and a brownout capacity factor. First-fit packing fills
  /// machines to the admission ceiling in sequence; the policies admit
  /// identically (homogeneous pool) and differ only in how idle machines
  /// are powered. Queue blocking beyond the admission ceiling is folded
  /// into the wait estimate, not modeled as extra shed.
  StepOutcome place_step(double offered_qps, double job_ms,
                         double failure_fraction = 0.0,
                         double brownout_factor = 1.0) const;

  /// Discrete admission at `arrival_s` (throws std::invalid_argument on
  /// negative or non-finite arrivals). Jobs queue per machine in admission
  /// order: a job submitted with an earlier arrival than previously
  /// admitted work still queues behind it, matching
  /// ResourceTimeline::schedule_unordered — retry traffic arrives out of
  /// global time order. Greedy first-fit scans machines in index order;
  /// energy best-fit places on the fullest machine that still has a slot
  /// (tie: lowest index), keeping the pool's tail idle so it can power off.
  Admission admit(double arrival_s, double job_ms,
                  double failure_fraction = 0.0,
                  double brownout_factor = 1.0);

  std::size_t jobs_served() const { return served_; }
  std::size_t jobs_shed() const { return shed_; }

  /// Datacenter energy over [0, horizon_s] of the discrete run: active
  /// draw integrated over per-machine busy time, plus idle draw for the
  /// whole powered pool under greedy (best-fit powers idle machines off,
  /// so it pays active-busy energy only).
  double energy_j(double horizon_s) const;

 private:
  MachinePool pool_;
  struct Machine {
    std::deque<double> completions;  ///< Resident-job completion times.
    double busy_until_s = 0.0;
    double busy_total_s = 0.0;
  };
  std::vector<Machine> machines_;
  std::size_t served_ = 0;
  std::size_t shed_ = 0;
};

}  // namespace lens::cloud
