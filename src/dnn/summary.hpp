#pragma once
// Human-readable architecture summaries (Keras-style table).

#include <string>

#include "dnn/architecture.hpp"

namespace lens::dnn {

/// Multi-line per-layer table: name, configuration, output shape, FLOPs,
/// params, plus totals and the partition-candidate markers under `sizes`.
std::string summary(const Architecture& arch, const DataSizeModel& sizes = {});

/// Compact one-line signature, e.g.
/// "conv3x3x64 conv3x3x64 pool conv5x5x128 pool fc1024 fc10".
std::string signature(const Architecture& arch);

}  // namespace lens::dnn
