#pragma once
// Reference architectures used by the paper's motivational analysis
// (AlexNet, Figs. 1-2, Table I) and as the search-space template (VGG-16).

#include "dnn/architecture.hpp"

namespace lens::dnn {

/// Classic AlexNet (Krizhevsky et al. 2012) for a 224x224x3 input and
/// `num_classes` outputs. conv1 uses padding 2 so the 224 input maps to the
/// canonical 55x55x96 first feature map. No batch norm (true to the
/// original; LRN is ignored as a fused no-op for size purposes).
Architecture alexnet(int num_classes = 1000);

/// VGG-16 (Simonyan & Zisserman) for a 224x224x3 input.
Architecture vgg16(int num_classes = 1000);

/// VGG-11 ("configuration A") for a 224x224x3 input.
Architecture vgg11(int num_classes = 1000);

/// LeNet-5-style network for a 32x32x1 input (classic small baseline; its
/// tiny feature maps make every layer a viable partition point, the
/// degenerate opposite of AlexNet's Fig. 1 profile).
Architecture lenet5(int num_classes = 10);

}  // namespace lens::dnn
