#include "dnn/presets.hpp"

namespace lens::dnn {

Architecture alexnet(int num_classes) {
  std::vector<LayerSpec> layers = {
      LayerSpec::conv(96, 11, 4, 2, /*batch_norm=*/false),
      LayerSpec::max_pool(3, 2),
      LayerSpec::conv(256, 5, 1, 2, /*batch_norm=*/false),
      LayerSpec::max_pool(3, 2),
      LayerSpec::conv(384, 3, 1, 1, /*batch_norm=*/false),
      LayerSpec::conv(384, 3, 1, 1, /*batch_norm=*/false),
      LayerSpec::conv(256, 3, 1, 1, /*batch_norm=*/false),
      LayerSpec::max_pool(3, 2),
      LayerSpec::dense(4096),
      LayerSpec::dense(4096),
      LayerSpec::dense(num_classes, Activation::kSoftmax),
  };
  return Architecture("alexnet", {224, 224, 3}, std::move(layers));
}

Architecture vgg16(int num_classes) {
  std::vector<LayerSpec> layers;
  const int block_filters[] = {64, 128, 256, 512, 512};
  const int block_depth[] = {2, 2, 3, 3, 3};
  for (int b = 0; b < 5; ++b) {
    for (int d = 0; d < block_depth[b]; ++d) {
      layers.push_back(LayerSpec::conv(block_filters[b], 3, 1, 1, /*batch_norm=*/false));
    }
    layers.push_back(LayerSpec::max_pool(2, 2));
  }
  layers.push_back(LayerSpec::dense(4096));
  layers.push_back(LayerSpec::dense(4096));
  layers.push_back(LayerSpec::dense(num_classes, Activation::kSoftmax));
  return Architecture("vgg16", {224, 224, 3}, std::move(layers));
}

Architecture vgg11(int num_classes) {
  std::vector<LayerSpec> layers;
  const int block_filters[] = {64, 128, 256, 512, 512};
  const int block_depth[] = {1, 1, 2, 2, 2};
  for (int b = 0; b < 5; ++b) {
    for (int d = 0; d < block_depth[b]; ++d) {
      layers.push_back(LayerSpec::conv(block_filters[b], 3, 1, 1, /*batch_norm=*/false));
    }
    layers.push_back(LayerSpec::max_pool(2, 2));
  }
  layers.push_back(LayerSpec::dense(4096));
  layers.push_back(LayerSpec::dense(4096));
  layers.push_back(LayerSpec::dense(num_classes, Activation::kSoftmax));
  return Architecture("vgg11", {224, 224, 3}, std::move(layers));
}

Architecture lenet5(int num_classes) {
  std::vector<LayerSpec> layers = {
      LayerSpec::conv(6, 5, 1, 0, /*batch_norm=*/false),
      LayerSpec::max_pool(2, 2),
      LayerSpec::conv(16, 5, 1, 0, /*batch_norm=*/false),
      LayerSpec::max_pool(2, 2),
      LayerSpec::dense(120),
      LayerSpec::dense(84),
      LayerSpec::dense(num_classes, Activation::kSoftmax),
  };
  return Architecture("lenet5", {32, 32, 1}, std::move(layers));
}

}  // namespace lens::dnn
