#include "dnn/architecture.hpp"

#include <stdexcept>

namespace lens::dnn {

Architecture::Architecture(std::string name, TensorShape input, std::vector<LayerSpec> layers)
    : name_(std::move(name)), input_(input) {
  if (layers.empty()) throw std::invalid_argument("Architecture: empty layer stack");
  if (input.height <= 0 || input.width <= 0 || input.channels <= 0) {
    throw std::invalid_argument("Architecture: degenerate input shape");
  }
  layers_.reserve(layers.size());
  TensorShape current = input;
  std::size_t conv_seen = 0;
  std::size_t pool_seen = 0;
  std::size_t fc_seen = 0;
  bool dense_started = false;
  for (const LayerSpec& spec : layers) {
    if (dense_started && spec.kind != LayerKind::kDense) {
      throw std::invalid_argument("Architecture: spatial layer after a dense layer");
    }
    LayerInfo info;
    info.spec = spec;
    info.input = current;
    info.output = output_shape(spec, current);
    info.flops = layer_flops(spec, current);
    info.params = layer_params(spec, current);
    switch (spec.kind) {
      case LayerKind::kConv:
        info.name = "conv" + std::to_string(++conv_seen);
        break;
      case LayerKind::kMaxPool:
        // AlexNet-style: a pool is numbered after the conv it follows
        // (pool5 follows conv5); consecutive pools keep counting.
        pool_seen = conv_seen > pool_seen ? conv_seen : pool_seen + 1;
        info.name = "pool" + std::to_string(pool_seen);
        break;
      case LayerKind::kDense:
        dense_started = true;
        // FC numbering continues from the conv count (AlexNet: fc6..fc8).
        info.name = "fc" + std::to_string(conv_seen + (++fc_seen));
        break;
    }
    total_flops_ += info.flops;
    total_params_ += info.params;
    current = info.output;
    layers_.push_back(std::move(info));
  }
}

std::uint64_t Architecture::input_bytes(const DataSizeModel& model) const {
  return model.input_bytes(input_);
}

std::uint64_t Architecture::output_bytes(std::size_t layer_index,
                                         const DataSizeModel& model) const {
  if (layer_index >= layers_.size()) {
    throw std::out_of_range("Architecture::output_bytes: bad layer index");
  }
  return model.activation_bytes(layers_[layer_index].output);
}

std::vector<std::size_t> Architecture::partition_candidates(const DataSizeModel& model) const {
  std::vector<std::size_t> out;
  const std::uint64_t threshold = input_bytes(model);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (output_bytes(i, model) < threshold) out.push_back(i);
  }
  return out;
}

std::size_t Architecture::count_kind(LayerKind kind) const {
  std::size_t n = 0;
  for (const LayerInfo& info : layers_) {
    if (info.spec.kind == kind) ++n;
  }
  return n;
}

}  // namespace lens::dnn
