#pragma once
// Wire-size accounting for tensors crossing the edge-cloud link.
//
// The paper counts the raw camera input at 1 byte/element (224*224*3 =
// 147 kB, §V) while intermediate activations travel as fp32 (Neurosurgeon
// convention). Both are knobs here so experiments can study e.g. quantized
// activation transfer.

#include <cstdint>

#include "dnn/layer.hpp"

namespace lens::dnn {

/// Bytes-per-element policy for data crossing the wireless link.
struct DataSizeModel {
  int input_bytes_per_element = 1;       ///< raw uint8 sensor data
  int activation_bytes_per_element = 4;  ///< fp32 feature maps

  /// Wire size of the model input.
  std::uint64_t input_bytes(const TensorShape& shape) const {
    return static_cast<std::uint64_t>(shape.elements()) * input_bytes_per_element;
  }

  /// Wire size of an intermediate activation tensor.
  std::uint64_t activation_bytes(const TensorShape& shape) const {
    return static_cast<std::uint64_t>(shape.elements()) * activation_bytes_per_element;
  }
};

}  // namespace lens::dnn
