#include "dnn/layer.hpp"

#include <stdexcept>

namespace lens::dnn {

LayerSpec LayerSpec::conv(int filters, int kernel, int stride, int padding, bool batch_norm,
                          Activation activation) {
  if (filters <= 0 || kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("LayerSpec::conv: non-positive parameter");
  }
  LayerSpec spec;
  spec.kind = LayerKind::kConv;
  spec.filters = filters;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding >= 0 ? padding : kernel / 2;  // default: "same" padding
  spec.batch_norm = batch_norm;
  spec.activation = activation;
  return spec;
}

LayerSpec LayerSpec::max_pool(int kernel, int stride) {
  if (kernel <= 0) throw std::invalid_argument("LayerSpec::max_pool: non-positive kernel");
  LayerSpec spec;
  spec.kind = LayerKind::kMaxPool;
  spec.kernel = kernel;
  spec.stride = stride > 0 ? stride : kernel;
  return spec;
}

LayerSpec LayerSpec::dense(int units, Activation activation) {
  if (units <= 0) throw std::invalid_argument("LayerSpec::dense: non-positive units");
  LayerSpec spec;
  spec.kind = LayerKind::kDense;
  spec.units = units;
  spec.activation = activation;
  return spec;
}

std::string kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kMaxPool: return "pool";
    case LayerKind::kDense: return "fc";
  }
  throw std::logic_error("kind_name: unknown LayerKind");
}

namespace {
int spatial_out(int in, int window, int stride, int padding) {
  const int padded = in + 2 * padding;
  if (padded < window) {
    throw std::invalid_argument("output_shape: window larger than padded input");
  }
  return (padded - window) / stride + 1;
}
}  // namespace

TensorShape output_shape(const LayerSpec& layer, const TensorShape& input) {
  if (input.height <= 0 || input.width <= 0 || input.channels <= 0) {
    throw std::invalid_argument("output_shape: degenerate input shape");
  }
  switch (layer.kind) {
    case LayerKind::kConv: {
      const int h = spatial_out(input.height, layer.kernel, layer.stride, layer.padding);
      const int w = spatial_out(input.width, layer.kernel, layer.stride, layer.padding);
      if (h <= 0 || w <= 0) throw std::invalid_argument("output_shape: conv output collapsed");
      return {h, w, layer.filters};
    }
    case LayerKind::kMaxPool: {
      const int h = spatial_out(input.height, layer.kernel, layer.stride, 0);
      const int w = spatial_out(input.width, layer.kernel, layer.stride, 0);
      if (h <= 0 || w <= 0) throw std::invalid_argument("output_shape: pool output collapsed");
      return {h, w, input.channels};
    }
    case LayerKind::kDense:
      return {1, 1, layer.units};
  }
  throw std::logic_error("output_shape: unknown LayerKind");
}

std::uint64_t layer_flops(const LayerSpec& layer, const TensorShape& input) {
  const TensorShape out = output_shape(layer, input);
  const auto out_elems = static_cast<std::uint64_t>(out.elements());
  std::uint64_t flops = 0;
  switch (layer.kind) {
    case LayerKind::kConv: {
      const std::uint64_t macs = out_elems * static_cast<std::uint64_t>(layer.kernel) *
                                 layer.kernel * static_cast<std::uint64_t>(input.channels);
      flops = 2 * macs + out_elems;  // + bias adds
      break;
    }
    case LayerKind::kMaxPool:
      flops = out_elems * static_cast<std::uint64_t>(layer.kernel) * layer.kernel;
      break;
    case LayerKind::kDense: {
      const auto in_elems = static_cast<std::uint64_t>(input.elements());
      flops = 2 * in_elems * static_cast<std::uint64_t>(layer.units) +
              static_cast<std::uint64_t>(layer.units);
      break;
    }
  }
  if (layer.batch_norm) flops += 4 * out_elems;          // scale, shift, mean, var apply
  if (layer.activation != Activation::kNone) flops += out_elems;
  return flops;
}

std::uint64_t layer_params(const LayerSpec& layer, const TensorShape& input) {
  std::uint64_t params = 0;
  switch (layer.kind) {
    case LayerKind::kConv:
      params = static_cast<std::uint64_t>(layer.kernel) * layer.kernel *
                   static_cast<std::uint64_t>(input.channels) * layer.filters +
               static_cast<std::uint64_t>(layer.filters);
      if (layer.batch_norm) params += 2ULL * layer.filters;
      break;
    case LayerKind::kMaxPool:
      params = 0;
      break;
    case LayerKind::kDense:
      params = static_cast<std::uint64_t>(input.elements()) * layer.units +
               static_cast<std::uint64_t>(layer.units);
      if (layer.batch_norm) params += 2ULL * layer.units;
      break;
  }
  return params;
}

}  // namespace lens::dnn
