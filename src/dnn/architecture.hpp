#pragma once
// A validated feed-forward architecture: input shape plus a fused-layer
// stack, with the per-layer shape / FLOPs / params trace precomputed. This
// is the object Algorithm 1 walks (Size_comp, per-layer prediction,
// partition-point identification).

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/datasize.hpp"
#include "dnn/layer.hpp"

namespace lens::dnn {

/// Per-layer record of the architecture trace.
struct LayerInfo {
  LayerSpec spec;
  TensorShape input;
  TensorShape output;
  std::uint64_t flops = 0;
  std::uint64_t params = 0;
  std::string name;  ///< e.g. "conv1", "pool2", "fc6" (1-based, AlexNet style)
};

/// Immutable, shape-checked architecture.
class Architecture {
 public:
  /// Builds and validates the trace. Throws std::invalid_argument when any
  /// layer cannot be applied to its incoming shape or the stack is empty.
  Architecture(std::string name, TensorShape input, std::vector<LayerSpec> layers);

  const std::string& name() const { return name_; }
  const TensorShape& input_shape() const { return input_; }
  const std::vector<LayerInfo>& layers() const { return layers_; }
  std::size_t num_layers() const { return layers_.size(); }

  std::uint64_t total_flops() const { return total_flops_; }
  std::uint64_t total_params() const { return total_params_; }

  /// Wire size of the input under `model`.
  std::uint64_t input_bytes(const DataSizeModel& model = {}) const;

  /// Wire size of layer i's output activation under `model`.
  std::uint64_t output_bytes(std::size_t layer_index, const DataSizeModel& model = {}) const;

  /// Indices of layers whose output is strictly smaller on the wire than the
  /// model input — the candidate partition points of Alg. 1 line 9
  /// ("Identify"). All-Edge / All-Cloud are handled by the evaluator, not
  /// listed here.
  std::vector<std::size_t> partition_candidates(const DataSizeModel& model = {}) const;

  /// Count of layers of a given kind (used by the >=4-pools constraint).
  std::size_t count_kind(LayerKind kind) const;

 private:
  std::string name_;
  TensorShape input_;
  std::vector<LayerInfo> layers_;
  std::uint64_t total_flops_ = 0;
  std::uint64_t total_params_ = 0;
};

}  // namespace lens::dnn
