#include "dnn/summary.hpp"

#include <cstdio>

namespace lens::dnn {

namespace {
std::string config_string(const LayerSpec& spec) {
  char buffer[64];
  switch (spec.kind) {
    case LayerKind::kConv:
      std::snprintf(buffer, sizeof buffer, "%dx%d s%d p%d f%d%s", spec.kernel, spec.kernel,
                    spec.stride, spec.padding, spec.filters, spec.batch_norm ? " +bn" : "");
      break;
    case LayerKind::kMaxPool:
      std::snprintf(buffer, sizeof buffer, "%dx%d s%d", spec.kernel, spec.kernel,
                    spec.stride);
      break;
    case LayerKind::kDense:
      std::snprintf(buffer, sizeof buffer, "units %d%s", spec.units,
                    spec.activation == Activation::kSoftmax ? " +softmax" : "");
      break;
  }
  return buffer;
}
}  // namespace

std::string summary(const Architecture& arch, const DataSizeModel& sizes) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%s: input %dx%dx%d (%llu B on the wire)\n",
                arch.name().c_str(), arch.input_shape().height, arch.input_shape().width,
                arch.input_shape().channels,
                static_cast<unsigned long long>(arch.input_bytes(sizes)));
  out += line;
  std::snprintf(line, sizeof line, "%-8s %-20s %-13s %12s %12s %6s\n", "layer", "config",
                "output", "flops", "params", "split?");
  out += line;
  const std::uint64_t input_bytes = arch.input_bytes(sizes);
  for (std::size_t i = 0; i < arch.num_layers(); ++i) {
    const LayerInfo& info = arch.layers()[i];
    char shape[32];
    std::snprintf(shape, sizeof shape, "%dx%dx%d", info.output.height, info.output.width,
                  info.output.channels);
    const bool viable = arch.output_bytes(i, sizes) < input_bytes;
    std::snprintf(line, sizeof line, "%-8s %-20s %-13s %12llu %12llu %6s\n",
                  info.name.c_str(), config_string(info.spec).c_str(), shape,
                  static_cast<unsigned long long>(info.flops),
                  static_cast<unsigned long long>(info.params), viable ? "yes" : "-");
    out += line;
  }
  std::snprintf(line, sizeof line, "total: %.3f GFLOP, %llu params (%.1f MB fp32)\n",
                static_cast<double>(arch.total_flops()) / 1e9,
                static_cast<unsigned long long>(arch.total_params()),
                static_cast<double>(arch.total_params()) * 4.0 / (1024.0 * 1024.0));
  out += line;
  return out;
}

std::string signature(const Architecture& arch) {
  std::string out;
  char token[48];
  for (const LayerInfo& info : arch.layers()) {
    switch (info.spec.kind) {
      case LayerKind::kConv:
        std::snprintf(token, sizeof token, "conv%dx%dx%d", info.spec.kernel,
                      info.spec.kernel, info.spec.filters);
        break;
      case LayerKind::kMaxPool:
        std::snprintf(token, sizeof token, "pool");
        break;
      case LayerKind::kDense:
        std::snprintf(token, sizeof token, "fc%d", info.spec.units);
        break;
    }
    if (!out.empty()) out += ' ';
    out += token;
  }
  return out;
}

}  // namespace lens::dnn
