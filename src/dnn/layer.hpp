#pragma once
// Layer-level architecture IR.
//
// Activations and batch normalization are folded into their parent layer as
// attributes rather than standalone layers, mirroring the paper's Fig. 1
// convention ("any activation or normalization layers are fused with their
// preceding layers"): they add FLOPs/params but never change feature-map
// sizes, so they can never be partition points.

#include <cstdint>
#include <string>

namespace lens::dnn {

/// Kinds of (fused) layers the IR supports.
enum class LayerKind { kConv, kMaxPool, kDense };

/// Post-layer activation function.
enum class Activation { kNone, kRelu, kSoftmax };

/// Spatial feature-map shape (height x width x channels). Dense outputs are
/// represented as 1 x 1 x units.
struct TensorShape {
  int height = 0;
  int width = 0;
  int channels = 0;

  std::int64_t elements() const {
    return static_cast<std::int64_t>(height) * width * channels;
  }
  bool operator==(const TensorShape&) const = default;
};

/// One fused layer. Use the factory functions; they keep the per-kind field
/// conventions straight (e.g. `kernel`/`stride` are reused by pooling).
struct LayerSpec {
  LayerKind kind = LayerKind::kConv;

  int filters = 0;   ///< conv: output channels
  int kernel = 0;    ///< conv / pool: square window size
  int stride = 1;    ///< conv / pool
  int padding = 0;   ///< conv only
  int units = 0;     ///< dense: output neurons

  Activation activation = Activation::kNone;
  bool batch_norm = false;

  /// 2-D convolution (optionally batch-normalized, default ReLU).
  static LayerSpec conv(int filters, int kernel, int stride = 1, int padding = -1,
                        bool batch_norm = true, Activation activation = Activation::kRelu);

  /// Max pooling (default the paper's 2x2, stride 2).
  static LayerSpec max_pool(int kernel = 2, int stride = -1);

  /// Fully connected layer; flattens any input shape implicitly.
  static LayerSpec dense(int units, Activation activation = Activation::kRelu);

  bool operator==(const LayerSpec&) const = default;
};

/// Human-readable kind tag ("conv", "pool", "fc").
std::string kind_name(LayerKind kind);

/// Output shape of `layer` applied to `input`. Throws std::invalid_argument
/// when the layer cannot be applied (window larger than the padded input,
/// non-positive result, bad parameters).
TensorShape output_shape(const LayerSpec& layer, const TensorShape& input);

/// Forward FLOPs (multiply and add counted separately) including the fused
/// batch-norm / activation element-wise work.
std::uint64_t layer_flops(const LayerSpec& layer, const TensorShape& input);

/// Trainable parameter count (weights + biases + batch-norm scale/shift).
std::uint64_t layer_params(const LayerSpec& layer, const TensorShape& input);

}  // namespace lens::dnn
