#pragma once
// Fleet-scale serving simulation (ROADMAP north-star: "millions of users").
//
// A FleetEngine time-steps a population of devices that all serve the same
// compiled DeploymentPlan: per step and per device it advances an AR(1)
// throughput trace, folds the reading into an EWMA tracker, re-selects the
// deployment option under hysteresis, and prices the serving cost — all via
// the batched SoA kernels of comm/runtime/core (step_batch,
// tracker_update_batch, select_batch, price_batch_into), never through
// per-device objects. Aggregates land in a FleetStats report: cloud
// offered-load / QPS per step, switching-rate histogram, p50/p99/p999
// end-to-end latency, and energy per device-hour.
//
// Determinism contract: FleetStats is bit-identical for ANY thread count.
// Devices are sharded into contiguous chunks whose boundaries depend only
// on the device count (par::chunk_range over a chunk count derived from
// n_devices alone); each chunk accumulates into its own slot; and all
// floating-point merges run serially in chunk-index order after the
// parallel section. Per-device randomness comes from
// par::substream_seed(seed, device_id) — never from shared generators — so
// device i's trajectory is a pure function of (config, i).
//
// Memory: per-device state is a few dozen bytes (par::SplitMix64 carries
// 8 bytes of RNG state instead of mt19937_64's ~2.5 KB), so a million
// devices fit in ~150 MB of flat SoA arrays.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/machine.hpp"
#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/plan.hpp"
#include "par/thread_pool.hpp"
#include "runtime/threshold.hpp"
#include "runtime/tracker.hpp"
#include "sim/fault.hpp"

namespace lens::fleet {

/// Latency histogram shape: log-spaced bins, kBinsPerDecade per decade
/// starting at kLatencyFloorMs. Percentiles are reported as the geometric
/// center of the bin holding the rank — deterministic by construction.
inline constexpr std::size_t kLatencyBins = 64;
inline constexpr double kLatencyFloorMs = 0.01;
inline constexpr double kLatencyBinsPerDecade = 8.0;

/// Switching histogram: switches-per-device over the whole run, bins
/// 0..kSwitchBins-2 plus one overflow bin.
inline constexpr std::size_t kSwitchBins = 17;

/// Ceiling on regional failure domains: per-(chunk, region) accumulators
/// are dense, so the region count is bounded to keep them cache-resident.
inline constexpr std::size_t kMaxRegions = 1024;

/// A scripted fault episode targeted at ONE region (the CLI's
/// --region-brownout): merged verbatim into that region's schedule only,
/// unlike FaultScheduleConfig::scripted which lands on every region.
struct RegionEpisode {
  std::uint32_t region = 0;
  sim::FaultEpisode episode;
};

/// One fleet scenario. The trace/tracker knobs are shared by every device;
/// heterogeneity comes from each device's private RNG substream.
struct FleetConfig {
  std::size_t devices = 1000;
  std::size_t steps = 64;
  double step_s = 300.0;   ///< wall seconds per step (trace sample spacing)
  std::uint64_t seed = 1;  ///< fleet seed; device i uses substream_seed(seed, i)

  /// Link-model knobs (TraceGeneratorConfig::seed is ignored — the fleet
  /// seed above roots every device's substream).
  comm::TraceGeneratorConfig trace;
  runtime::TrackerParams tracker;
  double hysteresis_margin = 0.05;
  runtime::OptimizeFor metric = runtime::OptimizeFor::kLatency;
  double tu_min = 0.05;  ///< outage clamp / analyzed floor (Mbps)
  double tu_max = 1000.0;
  double device_qps = 1.0;  ///< inference queries per second per device

  /// Per-device fault injection (rates of 0 disable a class). Only
  /// kLinkOutage on hop 0 (throughput fade) and kCloudOutage (reading
  /// forced to outage) are applied by the fleet loop. Each device derives
  /// its schedule via substream_seed(seed, device_id) — independent of
  /// sharding. horizon_s <= 0 defaults to steps * step_s.
  sim::FaultScheduleConfig faults;

  /// Finite-cloud model (std::nullopt = the paper's infinite cloud). When
  /// set, every step the cloud-reaching device-steps offer their suffixes
  /// to a cloud::CloudScheduler: the admission controller sheds the excess
  /// by a deterministic per-device priority hash (thread-count invariant),
  /// admitted devices pay the pool's queueing wait on top of their curve
  /// cost, shed devices fast-fail to the cheapest edge-only option.
  std::optional<cloud::CloudConfig> cloud;
  /// Datacenter-level fault schedule shared by the whole pool: only
  /// kMachineFailure / kRegionalBrownout rates and scripted episodes are
  /// consulted (per-device classes live in `faults`). Generated from its
  /// own seed field; horizon_s <= 0 defaults to steps * step_s.
  sim::FaultScheduleConfig cloud_faults;
  /// End-to-end latency SLA for violation accounting (0 = off).
  double sla_ms = 0.0;
  /// Circuit breaker (finite cloud only; needs an edge-only option): a
  /// device shed on this many consecutive offers trips open for
  /// breaker_open_steps plus a deterministic per-device jitter of
  /// 0..breaker_jitter_steps steps — it serves the edge fallback without
  /// offering meanwhile, then probes half-open. 0 disables.
  std::size_t breaker_failures = 3;
  std::size_t breaker_open_steps = 4;
  std::size_t breaker_jitter_steps = 3;

  // ---- regional failure domains (K-tier plans only) --------------------
  /// Devices partition into deterministic regions: region_map[i] when a map
  /// is supplied (size must equal `devices`, entries < num_regions), else
  /// device_id % num_regions. Every device of a region shares ONE backhaul
  /// fault series and ONE fog pool — that correlation is the point.
  std::size_t num_regions = 1;
  std::vector<std::uint32_t> region_map;
  /// Region-level fault schedule: only the regional classes
  /// (kBackhaulBrownout / kBackhaulOutage / kFogSiteFailure) plus scripted
  /// episodes are consulted, generated per region via
  /// FaultSchedule::generate_for_region (seed field ignored; the fleet
  /// seed roots the streams). horizon_s <= 0 defaults to steps * step_s.
  sim::FaultScheduleConfig region_faults;
  /// Scripted episodes hitting one region only (see RegionEpisode).
  std::vector<RegionEpisode> region_episodes;
  /// Finite fog-site pool (K >= 3 plans): EVERY region gets its own pool
  /// with this config; fog-tier compute must win an admission slot or shed
  /// down the tier ladder (cloud-direct if the plan allows, else the
  /// edge-only fallback), with the circuit-breaker knobs above applied to
  /// the fog hop as well. std::nullopt = the paper's infinite fog.
  std::optional<cloud::CloudConfig> fog;
};

/// Aggregate report of one fleet run. All fields are bit-identical for any
/// thread count; csv() serializes every one of them with round-trip (%.17g)
/// precision so CI can byte-diff runs.
struct FleetStats {
  std::size_t devices = 0;
  std::size_t steps = 0;
  double step_s = 0.0;

  double mean_latency_ms = 0.0;  ///< over device-steps, dynamic policy
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;

  double mean_energy_mj = 0.0;            ///< per inference, dynamic policy
  double energy_mj_per_device_hour = 0.0; ///< at device_qps inference load

  double mean_cloud_qps = 0.0;  ///< queries/s admitted by the cloud
  double peak_cloud_qps = 0.0;
  double mean_offered_mbps = 0.0;  ///< fleet uplink offered load
  double mean_offered_qps = 0.0;   ///< queries/s offered to the cloud

  std::uint64_t total_switches = 0;  ///< option re-stagings across the run
  double switches_per_device_hour = 0.0;
  std::uint64_t outage_readings = 0;  ///< tracker outage updates (faults)

  /// Oracle columns: per-device-step objective minima over the full option
  /// set at the realized throughput (price_batch_into) — the regret
  /// reference the dynamic tracker+hysteresis policy is compared against.
  double oracle_mean_latency_ms = 0.0;
  double oracle_mean_energy_mj = 0.0;

  // ---- finite-cloud columns (all zero without FleetConfig::cloud) ----
  std::uint64_t shed = 0;  ///< device-steps rejected by admission control
  double shed_rate = 0.0;  ///< shed / offered device-steps
  std::uint64_t sla_violations = 0;  ///< device-steps beyond sla_ms
  double sla_violation_rate = 0.0;   ///< violations / device-steps
  std::uint64_t breaker_trips = 0;   ///< closed -> open transitions
  double breaker_open_time_s = 0.0;  ///< device-steps spent open * step_s
  double datacenter_energy_j = 0.0;  ///< machine-pool energy over the run
  double mean_queue_wait_ms = 0.0;   ///< admitted-weighted pool queueing wait
  double mean_machines_active = 0.0; ///< machines hosting load, mean per step

  // ---- regional / fog columns (zero or empty on the two-tier path) ----
  std::uint64_t fog_shed = 0;        ///< device-steps shed by regional fog pools
  std::uint64_t degraded_steps = 0;  ///< device-steps served off the selected option
  double fog_energy_j = 0.0;         ///< all regional fog pools over the run

  /// Per-region breakdown, indexed by region id (empty at K=2). QPS fields
  /// are means over steps; *_s fields are device-seconds except
  /// backhaul_out_s (region wall-seconds with >= 1 backhaul hop out).
  struct RegionStats {
    double fog_offered_qps = 0.0;
    double fog_admitted_qps = 0.0;
    double fog_shed_qps = 0.0;
    double cloud_offered_qps = 0.0;
    double cloud_admitted_qps = 0.0;
    double cloud_shed_qps = 0.0;
    double degraded_device_s = 0.0;  ///< served off the selected option
    double breaker_open_s = 0.0;     ///< fog + cloud breakers held open
    double backhaul_out_s = 0.0;
    double fog_energy_j = 0.0;
    double fog_queue_wait_ms = 0.0;  ///< admitted-weighted mean
  };
  std::vector<RegionStats> regions;

  /// Per-step series. With a finite cloud, cloud_qps is the ADMITTED rate
  /// and offered = admitted + shed; without one, offered == cloud_qps and
  /// shed is identically zero.
  std::vector<double> cloud_qps;                 ///< per-step series
  std::vector<double> offered_qps;               ///< per-step series
  std::vector<double> shed_qps;                  ///< per-step series
  std::vector<std::uint64_t> switch_histogram;   ///< kSwitchBins entries
  std::vector<std::uint64_t> latency_histogram;  ///< kLatencyBins entries

  /// Deterministic "key,value" CSV (series rows keyed with their index).
  std::string csv() const;
};

/// Time-stepped fleet simulator over one compiled plan. Construction
/// precomputes the cost curves and dominance intervals; run() owns the SoA
/// device state and may be called repeatedly (each call restarts from the
/// seeded initial state and returns the same report).
class FleetEngine {
 public:
  /// Two-tier plan: selection and pricing on the radio-throughput axis.
  FleetEngine(const core::DeploymentPlan& plan, FleetConfig config);

  /// K-tier plan with NOMINAL backhaul rates hop_tu_mbps[h] for hops past
  /// the radio (full per-hop vector; entry 0 is the radio-axis placeholder
  /// that selection collapses onto — its value is never read, but the
  /// vector's arity must match the plan's hop count and every entry past
  /// hop 0 must be positive; both are validated, not silently ignored).
  /// Selection runs on 1-D curves collapsed at these nominal rates;
  /// realized pricing re-collapses per (step, region) whenever a regional
  /// backhaul fault stretches a hop, and falls back to these exact curves
  /// in healthy regions.
  FleetEngine(const core::DeploymentPlan& plan, const std::vector<double>& hop_tu_mbps,
              FleetConfig config);

  /// Run on the shared global pool (par::set_max_threads / --threads).
  FleetStats run();
  /// Run on an explicit pool. Thread count never changes the report.
  FleetStats run(par::ThreadPool& pool);

  /// Deterministic shard count for `devices` (depends on nothing else).
  static std::size_t num_chunks(std::size_t devices);

  const FleetConfig& config() const { return config_; }

 private:
  void validate() const;
  /// K-tier precomputation: per-option tier/hop tables and the degradation
  /// ladder targets (best option confined to tiers 0..h, best cloud-direct
  /// option) under the selection metric at the staged trace mean.
  void build_ladder_tables();

  core::DeploymentPlan plan_;
  FleetConfig config_;
  std::vector<comm::CostCurve> latency_curves_;
  std::vector<comm::CostCurve> energy_curves_;
  std::vector<runtime::DominanceInterval> intervals_;
  bool two_tier_ = true;
  /// Cheapest edge-only option under the selected metric (the shed /
  /// breaker fallback target); nullopt when every option transmits.
  std::optional<std::uint32_t> fallback_option_;

  // ---- K-tier regional tables (empty on the two-tier path) -------------
  std::vector<double> hop_tu_;         ///< nominal per-hop rates (per-hop ctor)
  std::vector<double> fog_ms_;         ///< per option: fog-tier compute (ms)
  std::vector<double> cloud_ms_;       ///< per option: last-tier compute (ms)
  std::vector<double> radio_coeff_ms_; ///< latency surface per_inverse_tu[0]
  double radio_rtt_ms_ = 0.0;          ///< hop-0 handshake constant
  std::vector<std::uint8_t> crosses_;  ///< [opt * num_hops + h]: ships over hop h
  std::vector<std::uint8_t> occupies_cloud_;  ///< per option: last tier occupied
  /// Degradation-ladder target per hop h: the best option confined to
  /// tiers 0..h (cuts[h] == n), -1 when the plan has none.
  std::vector<std::int32_t> ladder_within_;
  /// Best cloud-occupying option with zero fog compute — where fog sheds
  /// retry when the backhaul is alive; -1 when the plan has none.
  std::int32_t cloud_direct_ = -1;
};

}  // namespace lens::fleet
