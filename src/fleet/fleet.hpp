#pragma once
// Fleet-scale serving simulation (ROADMAP north-star: "millions of users").
//
// A FleetEngine time-steps a population of devices that all serve the same
// compiled DeploymentPlan: per step and per device it advances an AR(1)
// throughput trace, folds the reading into an EWMA tracker, re-selects the
// deployment option under hysteresis, and prices the serving cost — all via
// the batched SoA kernels of comm/runtime/core (step_batch,
// tracker_update_batch, select_batch, price_batch_into), never through
// per-device objects. Aggregates land in a FleetStats report: cloud
// offered-load / QPS per step, switching-rate histogram, p50/p99/p999
// end-to-end latency, and energy per device-hour.
//
// Determinism contract: FleetStats is bit-identical for ANY thread count.
// Devices are sharded into contiguous chunks whose boundaries depend only
// on the device count (par::chunk_range over a chunk count derived from
// n_devices alone); each chunk accumulates into its own slot; and all
// floating-point merges run serially in chunk-index order after the
// parallel section. Per-device randomness comes from
// par::substream_seed(seed, device_id) — never from shared generators — so
// device i's trajectory is a pure function of (config, i).
//
// Memory: per-device state is a few dozen bytes (par::SplitMix64 carries
// 8 bytes of RNG state instead of mt19937_64's ~2.5 KB), so a million
// devices fit in ~150 MB of flat SoA arrays.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/machine.hpp"
#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/plan.hpp"
#include "par/thread_pool.hpp"
#include "runtime/threshold.hpp"
#include "runtime/tracker.hpp"
#include "sim/fault.hpp"

namespace lens::fleet {

/// Latency histogram shape: log-spaced bins, kBinsPerDecade per decade
/// starting at kLatencyFloorMs. Percentiles are reported as the geometric
/// center of the bin holding the rank — deterministic by construction.
inline constexpr std::size_t kLatencyBins = 64;
inline constexpr double kLatencyFloorMs = 0.01;
inline constexpr double kLatencyBinsPerDecade = 8.0;

/// Switching histogram: switches-per-device over the whole run, bins
/// 0..kSwitchBins-2 plus one overflow bin.
inline constexpr std::size_t kSwitchBins = 17;

/// One fleet scenario. The trace/tracker knobs are shared by every device;
/// heterogeneity comes from each device's private RNG substream.
struct FleetConfig {
  std::size_t devices = 1000;
  std::size_t steps = 64;
  double step_s = 300.0;   ///< wall seconds per step (trace sample spacing)
  std::uint64_t seed = 1;  ///< fleet seed; device i uses substream_seed(seed, i)

  /// Link-model knobs (TraceGeneratorConfig::seed is ignored — the fleet
  /// seed above roots every device's substream).
  comm::TraceGeneratorConfig trace;
  runtime::TrackerParams tracker;
  double hysteresis_margin = 0.05;
  runtime::OptimizeFor metric = runtime::OptimizeFor::kLatency;
  double tu_min = 0.05;  ///< outage clamp / analyzed floor (Mbps)
  double tu_max = 1000.0;
  double device_qps = 1.0;  ///< inference queries per second per device

  /// Per-device fault injection (rates of 0 disable a class). Only
  /// kLinkOutage on hop 0 (throughput fade) and kCloudOutage (reading
  /// forced to outage) are applied by the fleet loop. Each device derives
  /// its schedule via substream_seed(seed, device_id) — independent of
  /// sharding. horizon_s <= 0 defaults to steps * step_s.
  sim::FaultScheduleConfig faults;

  /// Finite-cloud model (std::nullopt = the paper's infinite cloud). When
  /// set, every step the cloud-reaching device-steps offer their suffixes
  /// to a cloud::CloudScheduler: the admission controller sheds the excess
  /// by a deterministic per-device priority hash (thread-count invariant),
  /// admitted devices pay the pool's queueing wait on top of their curve
  /// cost, shed devices fast-fail to the cheapest edge-only option.
  std::optional<cloud::CloudConfig> cloud;
  /// Datacenter-level fault schedule shared by the whole pool: only
  /// kMachineFailure / kRegionalBrownout rates and scripted episodes are
  /// consulted (per-device classes live in `faults`). Generated from its
  /// own seed field; horizon_s <= 0 defaults to steps * step_s.
  sim::FaultScheduleConfig cloud_faults;
  /// End-to-end latency SLA for violation accounting (0 = off).
  double sla_ms = 0.0;
  /// Circuit breaker (finite cloud only; needs an edge-only option): a
  /// device shed on this many consecutive offers trips open for
  /// breaker_open_steps plus a deterministic per-device jitter of
  /// 0..breaker_jitter_steps steps — it serves the edge fallback without
  /// offering meanwhile, then probes half-open. 0 disables.
  std::size_t breaker_failures = 3;
  std::size_t breaker_open_steps = 4;
  std::size_t breaker_jitter_steps = 3;
};

/// Aggregate report of one fleet run. All fields are bit-identical for any
/// thread count; csv() serializes every one of them with round-trip (%.17g)
/// precision so CI can byte-diff runs.
struct FleetStats {
  std::size_t devices = 0;
  std::size_t steps = 0;
  double step_s = 0.0;

  double mean_latency_ms = 0.0;  ///< over device-steps, dynamic policy
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;

  double mean_energy_mj = 0.0;            ///< per inference, dynamic policy
  double energy_mj_per_device_hour = 0.0; ///< at device_qps inference load

  double mean_cloud_qps = 0.0;  ///< queries/s admitted by the cloud
  double peak_cloud_qps = 0.0;
  double mean_offered_mbps = 0.0;  ///< fleet uplink offered load
  double mean_offered_qps = 0.0;   ///< queries/s offered to the cloud

  std::uint64_t total_switches = 0;  ///< option re-stagings across the run
  double switches_per_device_hour = 0.0;
  std::uint64_t outage_readings = 0;  ///< tracker outage updates (faults)

  /// Oracle columns: per-device-step objective minima over the full option
  /// set at the realized throughput (price_batch_into) — the regret
  /// reference the dynamic tracker+hysteresis policy is compared against.
  double oracle_mean_latency_ms = 0.0;
  double oracle_mean_energy_mj = 0.0;

  // ---- finite-cloud columns (all zero without FleetConfig::cloud) ----
  std::uint64_t shed = 0;  ///< device-steps rejected by admission control
  double shed_rate = 0.0;  ///< shed / offered device-steps
  std::uint64_t sla_violations = 0;  ///< device-steps beyond sla_ms
  double sla_violation_rate = 0.0;   ///< violations / device-steps
  std::uint64_t breaker_trips = 0;   ///< closed -> open transitions
  double breaker_open_time_s = 0.0;  ///< device-steps spent open * step_s
  double datacenter_energy_j = 0.0;  ///< machine-pool energy over the run
  double mean_queue_wait_ms = 0.0;   ///< admitted-weighted pool queueing wait
  double mean_machines_active = 0.0; ///< machines hosting load, mean per step

  /// Per-step series. With a finite cloud, cloud_qps is the ADMITTED rate
  /// and offered = admitted + shed; without one, offered == cloud_qps and
  /// shed is identically zero.
  std::vector<double> cloud_qps;                 ///< per-step series
  std::vector<double> offered_qps;               ///< per-step series
  std::vector<double> shed_qps;                  ///< per-step series
  std::vector<std::uint64_t> switch_histogram;   ///< kSwitchBins entries
  std::vector<std::uint64_t> latency_histogram;  ///< kLatencyBins entries

  /// Deterministic "key,value" CSV (series rows keyed with their index).
  std::string csv() const;
};

/// Time-stepped fleet simulator over one compiled plan. Construction
/// precomputes the cost curves and dominance intervals; run() owns the SoA
/// device state and may be called repeatedly (each call restarts from the
/// seeded initial state and returns the same report).
class FleetEngine {
 public:
  /// Two-tier plan: selection and pricing on the radio-throughput axis.
  FleetEngine(const core::DeploymentPlan& plan, FleetConfig config);

  /// K-tier plan with hops past the radio pinned at hop_tu_mbps[h] (full
  /// per-hop vector, entry 0 ignored), mirroring DynamicDeployer's K-tier
  /// ctor: the radio axis drives selection via collapsed 1-D curves.
  FleetEngine(const core::DeploymentPlan& plan, const std::vector<double>& hop_tu_mbps,
              FleetConfig config);

  /// Run on the shared global pool (par::set_max_threads / --threads).
  FleetStats run();
  /// Run on an explicit pool. Thread count never changes the report.
  FleetStats run(par::ThreadPool& pool);

  /// Deterministic shard count for `devices` (depends on nothing else).
  static std::size_t num_chunks(std::size_t devices);

  const FleetConfig& config() const { return config_; }

 private:
  void validate() const;

  core::DeploymentPlan plan_;
  FleetConfig config_;
  std::vector<comm::CostCurve> latency_curves_;
  std::vector<comm::CostCurve> energy_curves_;
  std::vector<runtime::DominanceInterval> intervals_;
  bool two_tier_ = true;
  /// Cheapest edge-only option under the selected metric (the shed /
  /// breaker fallback target); nullopt when every option transmits.
  std::optional<std::uint32_t> fallback_option_;
};

}  // namespace lens::fleet
