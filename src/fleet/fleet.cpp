#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "par/parallel.hpp"
#include "par/runtime.hpp"
#include "par/substream.hpp"
#include "runtime/deployer.hpp"

namespace lens::fleet {

namespace {

/// Shard sizing: coarse enough that per-chunk dispatch is negligible, fine
/// enough that thousands of chunks load-balance any realistic pool. Both
/// constants are part of the determinism contract — the chunk count (and so
/// every float-merge order) is a function of the device count alone.
constexpr std::size_t kDevicesPerChunk = 1024;
constexpr std::size_t kMaxChunks = 4096;

std::size_t latency_bin(double ms) {
  if (!(ms > kLatencyFloorMs)) return 0;
  const double b = std::log10(ms / kLatencyFloorMs) * kLatencyBinsPerDecade;
  const auto k = static_cast<std::size_t>(b);
  return k >= kLatencyBins ? kLatencyBins - 1 : k;
}

double latency_bin_center(std::size_t k) {
  return kLatencyFloorMs *
         std::pow(10.0, (static_cast<double>(k) + 0.5) / kLatencyBinsPerDecade);
}

double percentile_from_hist(const std::vector<std::uint64_t>& hist, std::uint64_t total,
                            double q) {
  if (total == 0) return 0.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    cum += hist[k];
    if (cum >= rank) return latency_bin_center(k);
  }
  return latency_bin_center(hist.size() - 1);
}

/// Per-device fault episodes in CSR layout (flat arrays + offsets), so the
/// hot loop touches contiguous memory. Only the classes the fleet loop
/// applies are extracted: hop-0 link fades and cloud outages.
struct FaultCsr {
  bool enabled = false;
  std::vector<std::uint64_t> link_off;  // devices + 1
  std::vector<double> link_start, link_end, link_depth;
  std::vector<std::uint64_t> cloud_off;  // devices + 1
  std::vector<double> cloud_start, cloud_end;
};

/// Episodes of one device shard, kept in device order within the shard.
struct FaultShard {
  std::vector<std::uint64_t> link_count, cloud_count;  // per device in shard
  std::vector<double> link_start, link_end, link_depth;
  std::vector<double> cloud_start, cloud_end;
};

FaultCsr build_fault_csr(const FleetConfig& config, par::ThreadPool& pool,
                         std::size_t chunks) {
  FaultCsr csr;
  if (!config.faults.any_enabled()) return csr;
  csr.enabled = true;
  sim::FaultScheduleConfig fcfg = config.faults;
  if (fcfg.horizon_s <= 0.0) {
    fcfg.horizon_s = static_cast<double>(config.steps) * config.step_s;
  }

  // Each device's schedule is a pure function of (config, seed, device id),
  // so shards generate independently; the CSR concatenation below runs
  // serially in chunk order, keeping the layout thread-count-invariant.
  std::vector<FaultShard> shards(chunks);
  par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
    const auto [begin, end] = par::chunk_range(config.devices, chunks, c);
    FaultShard& shard = shards[c];
    shard.link_count.reserve(end - begin);
    shard.cloud_count.reserve(end - begin);
    for (std::size_t d = begin; d < end; ++d) {
      const sim::FaultSchedule schedule =
          sim::FaultSchedule::generate_for_device(fcfg, config.seed, d);
      std::uint64_t links = 0, clouds = 0;
      for (const sim::FaultEpisode& e : schedule.episodes()) {
        if (e.fault == sim::FaultClass::kLinkOutage && e.hop == 0) {
          shard.link_start.push_back(e.start_s);
          shard.link_end.push_back(e.end_s);
          shard.link_depth.push_back(e.magnitude);
          ++links;
        } else if (e.fault == sim::FaultClass::kCloudOutage) {
          shard.cloud_start.push_back(e.start_s);
          shard.cloud_end.push_back(e.end_s);
          ++clouds;
        }
      }
      shard.link_count.push_back(links);
      shard.cloud_count.push_back(clouds);
    }
  });

  csr.link_off.reserve(config.devices + 1);
  csr.cloud_off.reserve(config.devices + 1);
  csr.link_off.push_back(0);
  csr.cloud_off.push_back(0);
  for (const FaultShard& shard : shards) {
    for (std::size_t i = 0; i < shard.link_count.size(); ++i) {
      csr.link_off.push_back(csr.link_off.back() + shard.link_count[i]);
      csr.cloud_off.push_back(csr.cloud_off.back() + shard.cloud_count[i]);
    }
    csr.link_start.insert(csr.link_start.end(), shard.link_start.begin(),
                          shard.link_start.end());
    csr.link_end.insert(csr.link_end.end(), shard.link_end.begin(),
                        shard.link_end.end());
    csr.link_depth.insert(csr.link_depth.end(), shard.link_depth.begin(),
                          shard.link_depth.end());
    csr.cloud_start.insert(csr.cloud_start.end(), shard.cloud_start.begin(),
                           shard.cloud_start.end());
    csr.cloud_end.insert(csr.cloud_end.end(), shard.cloud_end.begin(),
                         shard.cloud_end.end());
  }
  return csr;
}

/// Per-chunk float/int accumulators, merged serially in chunk order.
struct ChunkAccum {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double offered_bits = 0.0;  // uplink bits per query, summed over devices
  double oracle_latency_ms = 0.0;
  double oracle_energy_mj = 0.0;
  std::uint64_t cloud_devices = 0;
  std::uint64_t switches = 0;
};

void append_row(std::string& out, const char* key, long long index, double value) {
  char buf[96];
  if (index < 0) {
    std::snprintf(buf, sizeof buf, "%s,,%.17g\n", key, value);
  } else {
    std::snprintf(buf, sizeof buf, "%s,%lld,%.17g\n", key, index, value);
  }
  out += buf;
}

void append_row(std::string& out, const char* key, long long index,
                std::uint64_t value) {
  char buf[96];
  if (index < 0) {
    std::snprintf(buf, sizeof buf, "%s,,%llu\n", key,
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%s,%lld,%llu\n", key, index,
                  static_cast<unsigned long long>(value));
  }
  out += buf;
}

}  // namespace

std::string FleetStats::csv() const {
  std::string out = "key,index,value\n";
  append_row(out, "devices", -1, static_cast<std::uint64_t>(devices));
  append_row(out, "steps", -1, static_cast<std::uint64_t>(steps));
  append_row(out, "step_s", -1, step_s);
  append_row(out, "mean_latency_ms", -1, mean_latency_ms);
  append_row(out, "p50_latency_ms", -1, p50_latency_ms);
  append_row(out, "p99_latency_ms", -1, p99_latency_ms);
  append_row(out, "p999_latency_ms", -1, p999_latency_ms);
  append_row(out, "mean_energy_mj", -1, mean_energy_mj);
  append_row(out, "energy_mj_per_device_hour", -1, energy_mj_per_device_hour);
  append_row(out, "mean_cloud_qps", -1, mean_cloud_qps);
  append_row(out, "peak_cloud_qps", -1, peak_cloud_qps);
  append_row(out, "mean_offered_mbps", -1, mean_offered_mbps);
  append_row(out, "total_switches", -1, total_switches);
  append_row(out, "switches_per_device_hour", -1, switches_per_device_hour);
  append_row(out, "outage_readings", -1, outage_readings);
  append_row(out, "oracle_mean_latency_ms", -1, oracle_mean_latency_ms);
  append_row(out, "oracle_mean_energy_mj", -1, oracle_mean_energy_mj);
  for (std::size_t i = 0; i < cloud_qps.size(); ++i) {
    append_row(out, "cloud_qps", static_cast<long long>(i), cloud_qps[i]);
  }
  for (std::size_t i = 0; i < switch_histogram.size(); ++i) {
    append_row(out, "switch_hist", static_cast<long long>(i), switch_histogram[i]);
  }
  for (std::size_t i = 0; i < latency_histogram.size(); ++i) {
    append_row(out, "latency_hist", static_cast<long long>(i), latency_histogram[i]);
  }
  return out;
}

std::size_t FleetEngine::num_chunks(std::size_t devices) {
  const std::size_t chunks = devices / kDevicesPerChunk;
  return std::clamp<std::size_t>(chunks, 1, kMaxChunks);
}

void FleetEngine::validate() const {
  if (plan_.num_options() == 0) throw std::invalid_argument("FleetEngine: empty plan");
  if (config_.devices == 0) throw std::invalid_argument("FleetEngine: devices must be > 0");
  if (config_.steps == 0) throw std::invalid_argument("FleetEngine: steps must be > 0");
  if (config_.step_s <= 0.0) throw std::invalid_argument("FleetEngine: step_s must be > 0");
  if (config_.device_qps <= 0.0) {
    throw std::invalid_argument("FleetEngine: device_qps must be > 0");
  }
  if (config_.hysteresis_margin < 0.0) {
    throw std::invalid_argument("FleetEngine: negative hysteresis margin");
  }
  if (config_.tu_min <= 0.0 || config_.tu_max <= config_.tu_min) {
    throw std::invalid_argument("FleetEngine: need 0 < tu_min < tu_max");
  }
}

FleetEngine::FleetEngine(const core::DeploymentPlan& plan, FleetConfig config)
    : plan_(plan), config_(std::move(config)) {
  if (plan_.num_hops() > 1) {
    throw std::invalid_argument("FleetEngine: K-tier plan needs the per-hop ctor");
  }
  latency_curves_ = plan_.latency_curves();
  energy_curves_ = plan_.energy_curves();
  two_tier_ = true;
  validate();
  const auto& sel = config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                                     : energy_curves_;
  intervals_ = runtime::dominance_intervals(sel, config_.tu_min, config_.tu_max);
}

FleetEngine::FleetEngine(const core::DeploymentPlan& plan,
                         const std::vector<double>& hop_tu_mbps, FleetConfig config)
    : plan_(plan), config_(std::move(config)), two_tier_(plan.num_hops() <= 1) {
  latency_curves_ = plan_.collapsed_latency_curves(0, hop_tu_mbps);
  energy_curves_ = plan_.collapsed_energy_curves(0, hop_tu_mbps);
  validate();
  const auto& sel = config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                                     : energy_curves_;
  intervals_ = runtime::dominance_intervals(sel, config_.tu_min, config_.tu_max);
}

FleetStats FleetEngine::run() { return run(par::global_pool()); }

FleetStats FleetEngine::run(par::ThreadPool& pool) {
  const std::size_t n = config_.devices;
  const std::size_t steps = config_.steps;
  const std::size_t chunks = num_chunks(n);
  const std::size_t num_options = plan_.num_options();
  const comm::TraceGenerator gen(config_.trace);  // validates knobs; stateless use
  const runtime::TrackerParams tracker = config_.tracker;
  const std::vector<comm::CostCurve>& sel_curves =
      config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                       : energy_curves_;
  const std::vector<core::DeploymentOption>& options = plan_.options();

  // --- SoA device state -----------------------------------------------
  std::vector<comm::FleetTraceState> states(n);
  std::vector<double> estimate(n, 0.0);
  std::vector<double> tu(n, 0.0);
  std::vector<double> eff(n, 0.0);
  std::vector<std::uint32_t> samples(n, 0);
  std::vector<std::uint32_t> outages(n, 0);
  std::vector<std::uint32_t> option(n, 0);
  std::vector<std::uint32_t> prev(n, 0);
  std::vector<std::uint32_t> switch_count(n, 0);
  std::vector<core::PricedObjectives> priced(two_tier_ ? n : 0);

  // Every device boots on the option that wins at the configured trace
  // mean — the deployment a fleet operator would stage before telemetry.
  const auto init_option = static_cast<std::uint32_t>(
      runtime::select_option(intervals_, config_.trace.mean_mbps));
  std::fill(option.begin(), option.end(), init_option);

  // Per-device streams rooted at substream_seed(seed, device): trajectories
  // are a pure function of (config, device id), independent of sharding.
  par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
    const auto [begin, end] = par::chunk_range(n, chunks, c);
    for (std::size_t i = begin; i < end; ++i) {
      states[i] =
          gen.start_state(par::SplitMix64(par::substream_seed(config_.seed, i)));
    }
  });

  const FaultCsr csr = build_fault_csr(config_, pool, chunks);

  // --- per-chunk accumulators (serial chunk-order merge) ---------------
  std::vector<ChunkAccum> acc(chunks);
  std::vector<std::uint64_t> hist(chunks * kLatencyBins, 0);

  FleetStats stats;
  stats.devices = n;
  stats.steps = steps;
  stats.step_s = config_.step_s;
  stats.cloud_qps.reserve(steps);
  std::vector<std::uint64_t> lat_hist(kLatencyBins, 0);
  double total_latency = 0.0, total_energy = 0.0, total_offered_bits = 0.0;
  double total_oracle_latency = 0.0, total_oracle_energy = 0.0;

  for (std::size_t s = 0; s < steps; ++s) {
    const double t = static_cast<double>(s) * config_.step_s;
    std::fill(acc.begin(), acc.end(), ChunkAccum{});
    std::fill(hist.begin(), hist.end(), 0);

    par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
      const auto [begin, end] = par::chunk_range(n, chunks, c);
      const std::size_t len = end - begin;

      // 1. Trace step: one AR(1) advance per device.
      gen.step_batch(&states[begin], len, &tu[begin]);

      // 2. Fault overlay: link fades scale the reading; a cloud outage
      //    turns it into an outage reading (tu = 0) — an unreachable cloud
      //    is indistinguishable from a dead link at the device.
      if (csr.enabled) {
        for (std::size_t i = begin; i < end; ++i) {
          double factor = 1.0;
          for (std::uint64_t j = csr.link_off[i]; j < csr.link_off[i + 1]; ++j) {
            if (t >= csr.link_start[j] && t < csr.link_end[j]) {
              factor = std::min(factor, csr.link_depth[j]);
            }
          }
          tu[i] *= factor;
          for (std::uint64_t j = csr.cloud_off[i]; j < csr.cloud_off[i + 1]; ++j) {
            if (t >= csr.cloud_start[j] && t < csr.cloud_end[j]) {
              tu[i] = 0.0;
              break;
            }
          }
        }
      }

      // 3. Tracker update (EWMA fold / outage decay) over the shard.
      runtime::tracker_update_batch(
          tracker, std::span<double>(estimate.data() + begin, len),
          std::span<std::uint32_t>(samples.data() + begin, len),
          std::span<std::uint32_t>(outages.data() + begin, len),
          std::span<const double>(tu.data() + begin, len));

      // 4. Hysteresis re-select on the tracked estimate (0 until the first
      //    successful sample, which select_batch clamps to the analyzed
      //    floor — the pessimistic-floor fallback of the runtime stack).
      std::copy(option.begin() + static_cast<std::ptrdiff_t>(begin),
                option.begin() + static_cast<std::ptrdiff_t>(end),
                prev.begin() + static_cast<std::ptrdiff_t>(begin));
      runtime::select_batch(intervals_, sel_curves, config_.tu_min,
                            config_.hysteresis_margin,
                            std::span<const double>(estimate.data() + begin, len),
                            std::span<std::uint32_t>(option.data() + begin, len));

      // 5. Price the realized link state: serving costs at the actual
      //    throughput (outage clamped to the floor), plus the full-option-
      //    set oracle via the allocation-free batch pricer.
      for (std::size_t i = begin; i < end; ++i) {
        eff[i] = tu[i] > 0.0 ? tu[i] : config_.tu_min;
      }
      if (two_tier_) {
        plan_.price_batch_into(std::span<const double>(eff.data() + begin, len),
                               std::span<core::PricedObjectives>(priced.data() + begin, len));
      }

      ChunkAccum& a = acc[c];
      std::uint64_t* h = hist.data() + c * kLatencyBins;
      for (std::size_t i = begin; i < end; ++i) {
        if (option[i] != prev[i]) {
          ++a.switches;
          ++switch_count[i];
        }
        const std::uint32_t o = option[i];
        const double lat = latency_curves_[o].value(eff[i]);
        const double energy = energy_curves_[o].value(eff[i]);
        a.latency_ms += lat;
        a.energy_mj += energy;
        ++h[latency_bin(lat)];
        const core::DeploymentOption& od = options[o];
        if (od.tx_bytes > 0) {
          ++a.cloud_devices;
          a.offered_bits += static_cast<double>(od.tx_bytes) * 8.0;
        }
        if (two_tier_) {
          a.oracle_latency_ms += priced[i].best_latency_ms;
          a.oracle_energy_mj += priced[i].best_energy_mj;
        } else {
          // Collapsed K-tier curves: min over options, ascending strict-<.
          double best_lat = latency_curves_[0].value(eff[i]);
          double best_energy = energy_curves_[0].value(eff[i]);
          for (std::size_t k = 1; k < num_options; ++k) {
            const double l = latency_curves_[k].value(eff[i]);
            const double e = energy_curves_[k].value(eff[i]);
            if (l < best_lat) best_lat = l;
            if (e < best_energy) best_energy = e;
          }
          a.oracle_latency_ms += best_lat;
          a.oracle_energy_mj += best_energy;
        }
      }
    });

    // Serial merge in chunk-index order: the only float accumulation whose
    // order could depend on scheduling, pinned here for any thread count.
    double step_offered_bits = 0.0;
    std::uint64_t step_cloud = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      total_latency += acc[c].latency_ms;
      total_energy += acc[c].energy_mj;
      total_oracle_latency += acc[c].oracle_latency_ms;
      total_oracle_energy += acc[c].oracle_energy_mj;
      step_offered_bits += acc[c].offered_bits;
      step_cloud += acc[c].cloud_devices;
      stats.total_switches += acc[c].switches;
      for (std::size_t k = 0; k < kLatencyBins; ++k) {
        lat_hist[k] += hist[c * kLatencyBins + k];
      }
    }
    total_offered_bits += step_offered_bits;
    stats.cloud_qps.push_back(static_cast<double>(step_cloud) * config_.device_qps);
  }

  // --- report -----------------------------------------------------------
  const double device_steps = static_cast<double>(n) * static_cast<double>(steps);
  const double device_hours =
      device_steps * config_.step_s / 3600.0;  // each step is step_s of wall time
  stats.mean_latency_ms = total_latency / device_steps;
  stats.mean_energy_mj = total_energy / device_steps;
  // Every device-step serves device_qps * step_s inferences at its priced
  // per-inference energy.
  stats.energy_mj_per_device_hour =
      total_energy * config_.device_qps * config_.step_s / device_hours;
  stats.oracle_mean_latency_ms = total_oracle_latency / device_steps;
  stats.oracle_mean_energy_mj = total_oracle_energy / device_steps;
  stats.mean_offered_mbps =
      total_offered_bits * config_.device_qps / 1e6 / static_cast<double>(steps);
  double qps_sum = 0.0;
  for (double q : stats.cloud_qps) {
    qps_sum += q;
    stats.peak_cloud_qps = std::max(stats.peak_cloud_qps, q);
  }
  stats.mean_cloud_qps = qps_sum / static_cast<double>(steps);
  stats.switches_per_device_hour =
      static_cast<double>(stats.total_switches) / device_hours;
  for (std::uint32_t o : outages) stats.outage_readings += o;
  stats.latency_histogram = lat_hist;
  const std::uint64_t total_obs = static_cast<std::uint64_t>(n) * steps;
  stats.p50_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.50);
  stats.p99_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.99);
  stats.p999_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.999);
  stats.switch_histogram.assign(kSwitchBins, 0);
  for (std::uint32_t sc : switch_count) {
    const std::size_t bin = std::min<std::size_t>(sc, kSwitchBins - 1);
    ++stats.switch_histogram[bin];
  }
  return stats;
}

}  // namespace lens::fleet
