#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cloud/scheduler.hpp"
#include "par/parallel.hpp"
#include "par/runtime.hpp"
#include "par/substream.hpp"
#include "runtime/deployer.hpp"

namespace lens::fleet {

namespace {

/// Shard sizing: coarse enough that per-chunk dispatch is negligible, fine
/// enough that thousands of chunks load-balance any realistic pool. Both
/// constants are part of the determinism contract — the chunk count (and so
/// every float-merge order) is a function of the device count alone.
constexpr std::size_t kDevicesPerChunk = 1024;
constexpr std::size_t kMaxChunks = 4096;

std::size_t latency_bin(double ms) {
  if (!(ms > kLatencyFloorMs)) return 0;
  const double b = std::log10(ms / kLatencyFloorMs) * kLatencyBinsPerDecade;
  const auto k = static_cast<std::size_t>(b);
  return k >= kLatencyBins ? kLatencyBins - 1 : k;
}

double latency_bin_center(std::size_t k) {
  return kLatencyFloorMs *
         std::pow(10.0, (static_cast<double>(k) + 0.5) / kLatencyBinsPerDecade);
}

double percentile_from_hist(const std::vector<std::uint64_t>& hist, std::uint64_t total,
                            double q) {
  if (total == 0) return 0.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    cum += hist[k];
    if (cum >= rank) return latency_bin_center(k);
  }
  return latency_bin_center(hist.size() - 1);
}

/// Per-device fault episodes in CSR layout (flat arrays + offsets), so the
/// hot loop touches contiguous memory. Only the classes the fleet loop
/// applies are extracted: hop-0 link fades and cloud outages.
struct FaultCsr {
  bool enabled = false;
  std::vector<std::uint64_t> link_off;  // devices + 1
  std::vector<double> link_start, link_end, link_depth;
  std::vector<std::uint64_t> cloud_off;  // devices + 1
  std::vector<double> cloud_start, cloud_end;
};

/// Episodes of one device shard, kept in device order within the shard.
struct FaultShard {
  std::vector<std::uint64_t> link_count, cloud_count;  // per device in shard
  std::vector<double> link_start, link_end, link_depth;
  std::vector<double> cloud_start, cloud_end;
};

FaultCsr build_fault_csr(const FleetConfig& config, par::ThreadPool& pool,
                         std::size_t chunks) {
  FaultCsr csr;
  if (!config.faults.any_enabled()) return csr;
  csr.enabled = true;
  sim::FaultScheduleConfig fcfg = config.faults;
  if (fcfg.horizon_s <= 0.0) {
    fcfg.horizon_s = static_cast<double>(config.steps) * config.step_s;
  }

  // Each device's schedule is a pure function of (config, seed, device id),
  // so shards generate independently; the CSR concatenation below runs
  // serially in chunk order, keeping the layout thread-count-invariant.
  std::vector<FaultShard> shards(chunks);
  par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
    const auto [begin, end] = par::chunk_range(config.devices, chunks, c);
    FaultShard& shard = shards[c];
    shard.link_count.reserve(end - begin);
    shard.cloud_count.reserve(end - begin);
    for (std::size_t d = begin; d < end; ++d) {
      const sim::FaultSchedule schedule =
          sim::FaultSchedule::generate_for_device(fcfg, config.seed, d);
      std::uint64_t links = 0, clouds = 0;
      for (const sim::FaultEpisode& e : schedule.episodes()) {
        if (e.fault == sim::FaultClass::kLinkOutage && e.hop == 0) {
          shard.link_start.push_back(e.start_s);
          shard.link_end.push_back(e.end_s);
          shard.link_depth.push_back(e.magnitude);
          ++links;
        } else if (e.fault == sim::FaultClass::kCloudOutage) {
          shard.cloud_start.push_back(e.start_s);
          shard.cloud_end.push_back(e.end_s);
          ++clouds;
        }
      }
      shard.link_count.push_back(links);
      shard.cloud_count.push_back(clouds);
    }
  });

  csr.link_off.reserve(config.devices + 1);
  csr.cloud_off.reserve(config.devices + 1);
  csr.link_off.push_back(0);
  csr.cloud_off.push_back(0);
  for (const FaultShard& shard : shards) {
    for (std::size_t i = 0; i < shard.link_count.size(); ++i) {
      csr.link_off.push_back(csr.link_off.back() + shard.link_count[i]);
      csr.cloud_off.push_back(csr.cloud_off.back() + shard.cloud_count[i]);
    }
    csr.link_start.insert(csr.link_start.end(), shard.link_start.begin(),
                          shard.link_start.end());
    csr.link_end.insert(csr.link_end.end(), shard.link_end.begin(),
                        shard.link_end.end());
    csr.link_depth.insert(csr.link_depth.end(), shard.link_depth.begin(),
                          shard.link_depth.end());
    csr.cloud_start.insert(csr.cloud_start.end(), shard.cloud_start.begin(),
                           shard.cloud_start.end());
    csr.cloud_end.insert(csr.cloud_end.end(), shard.cloud_end.begin(),
                         shard.cloud_end.end());
  }
  return csr;
}

/// Per-chunk accumulators of the offer pass (pass A): what the chunk's
/// devices want from the cloud this step, before admission control.
struct OfferAccum {
  std::uint64_t offered = 0;   // devices offering a suffix this step
  double job_ms_sum = 0.0;     // their summed suffix cost (layer-ms)
};

/// Device flags of the regional K-tier step (dev_flags SoA array).
constexpr std::uint8_t kFlagFogOffered = 1;   // offered its fog suffix
constexpr std::uint8_t kFlagFogAdmitted = 2;  // fog pool admitted it
constexpr std::uint8_t kFlagFogShed = 4;      // fog shed it AND it degraded
constexpr std::uint8_t kFlagFogOpen = 8;      // fog breaker held it open

/// Per-(chunk, region) accumulators of the regional path (racc[c * R + r]),
/// merged serially in (region, chunk) order.
struct RegionAccum {
  std::uint64_t fog_offered = 0;
  double fog_job_ms = 0.0;
  std::uint64_t fog_admitted = 0;
  std::uint64_t fog_shed = 0;
  std::uint64_t cloud_admitted = 0;
  std::uint64_t cloud_shed = 0;
  std::uint64_t degraded = 0;      // served off the hysteresis selection
  std::uint64_t breaker_open = 0;  // fog + cloud breaker device-steps open
};

/// Run-long per-region totals (serial accumulation only).
struct RegionTotals {
  std::uint64_t fog_offered = 0;
  std::uint64_t fog_admitted = 0;
  std::uint64_t fog_shed = 0;
  std::uint64_t cloud_admitted = 0;
  std::uint64_t cloud_shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t breaker_open = 0;
  std::uint64_t backhaul_out_steps = 0;
  double fog_energy_j = 0.0;
  double fog_wait_weighted_ms = 0.0;
};

/// Per-chunk float/int accumulators of the accounting pass (pass B),
/// merged serially in chunk order.
struct ChunkAccum {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double offered_bits = 0.0;  // uplink bits per query, summed over devices
  double oracle_latency_ms = 0.0;
  double oracle_energy_mj = 0.0;
  std::uint64_t cloud_devices = 0;
  std::uint64_t switches = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t sla_violations = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_open_steps = 0;  // device-steps served open
};

/// Cheapest edge-only option under the selection curves (constant in tu,
/// so any throughput prices it) — the shed / breaker fallback target.
std::optional<std::uint32_t> cheapest_edge_only(
    const std::vector<core::DeploymentOption>& options,
    const std::vector<comm::CostCurve>& sel) {
  std::optional<std::uint32_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (options[i].tx_bytes != 0) continue;
    const double cost = sel[i].value(1.0);
    if (cost < best_cost) {
      best_cost = cost;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return best;
}

/// Admission threshold on the top 32 bits of a device's priority hash:
/// a device offers successfully iff (key >> 32) < threshold. fraction 1
/// maps to 2^32, above every 32-bit value — everyone admitted.
std::uint64_t admit_threshold(double fraction) {
  if (fraction >= 1.0) return 1ull << 32;
  if (fraction <= 0.0) return 0;
  return static_cast<std::uint64_t>(fraction * 4294967296.0);
}

void append_row(std::string& out, const char* key, long long index, double value) {
  char buf[96];
  if (index < 0) {
    std::snprintf(buf, sizeof buf, "%s,,%.17g\n", key, value);
  } else {
    std::snprintf(buf, sizeof buf, "%s,%lld,%.17g\n", key, index, value);
  }
  out += buf;
}

void append_row(std::string& out, const char* key, long long index,
                std::uint64_t value) {
  char buf[96];
  if (index < 0) {
    std::snprintf(buf, sizeof buf, "%s,,%llu\n", key,
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%s,%lld,%llu\n", key, index,
                  static_cast<unsigned long long>(value));
  }
  out += buf;
}

}  // namespace

std::string FleetStats::csv() const {
  std::string out = "key,index,value\n";
  append_row(out, "devices", -1, static_cast<std::uint64_t>(devices));
  append_row(out, "steps", -1, static_cast<std::uint64_t>(steps));
  append_row(out, "step_s", -1, step_s);
  append_row(out, "mean_latency_ms", -1, mean_latency_ms);
  append_row(out, "p50_latency_ms", -1, p50_latency_ms);
  append_row(out, "p99_latency_ms", -1, p99_latency_ms);
  append_row(out, "p999_latency_ms", -1, p999_latency_ms);
  append_row(out, "mean_energy_mj", -1, mean_energy_mj);
  append_row(out, "energy_mj_per_device_hour", -1, energy_mj_per_device_hour);
  append_row(out, "mean_cloud_qps", -1, mean_cloud_qps);
  append_row(out, "peak_cloud_qps", -1, peak_cloud_qps);
  append_row(out, "mean_offered_mbps", -1, mean_offered_mbps);
  append_row(out, "total_switches", -1, total_switches);
  append_row(out, "switches_per_device_hour", -1, switches_per_device_hour);
  append_row(out, "outage_readings", -1, outage_readings);
  append_row(out, "oracle_mean_latency_ms", -1, oracle_mean_latency_ms);
  append_row(out, "oracle_mean_energy_mj", -1, oracle_mean_energy_mj);
  append_row(out, "mean_offered_qps", -1, mean_offered_qps);
  append_row(out, "shed", -1, shed);
  append_row(out, "shed_rate", -1, shed_rate);
  append_row(out, "sla_violations", -1, sla_violations);
  append_row(out, "sla_violation_rate", -1, sla_violation_rate);
  append_row(out, "breaker_trips", -1, breaker_trips);
  append_row(out, "breaker_open_time_s", -1, breaker_open_time_s);
  append_row(out, "datacenter_energy_j", -1, datacenter_energy_j);
  append_row(out, "mean_queue_wait_ms", -1, mean_queue_wait_ms);
  append_row(out, "mean_machines_active", -1, mean_machines_active);
  append_row(out, "fog_shed", -1, fog_shed);
  append_row(out, "degraded_steps", -1, degraded_steps);
  append_row(out, "fog_energy_j", -1, fog_energy_j);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto idx = static_cast<long long>(r);
    append_row(out, "region_fog_offered_qps", idx, regions[r].fog_offered_qps);
    append_row(out, "region_fog_admitted_qps", idx, regions[r].fog_admitted_qps);
    append_row(out, "region_fog_shed_qps", idx, regions[r].fog_shed_qps);
    append_row(out, "region_cloud_offered_qps", idx, regions[r].cloud_offered_qps);
    append_row(out, "region_cloud_admitted_qps", idx, regions[r].cloud_admitted_qps);
    append_row(out, "region_cloud_shed_qps", idx, regions[r].cloud_shed_qps);
    append_row(out, "region_degraded_device_s", idx, regions[r].degraded_device_s);
    append_row(out, "region_breaker_open_s", idx, regions[r].breaker_open_s);
    append_row(out, "region_backhaul_out_s", idx, regions[r].backhaul_out_s);
    append_row(out, "region_fog_energy_j", idx, regions[r].fog_energy_j);
    append_row(out, "region_fog_queue_wait_ms", idx, regions[r].fog_queue_wait_ms);
  }
  for (std::size_t i = 0; i < cloud_qps.size(); ++i) {
    append_row(out, "cloud_qps", static_cast<long long>(i), cloud_qps[i]);
  }
  for (std::size_t i = 0; i < offered_qps.size(); ++i) {
    append_row(out, "offered_qps", static_cast<long long>(i), offered_qps[i]);
  }
  for (std::size_t i = 0; i < shed_qps.size(); ++i) {
    append_row(out, "shed_qps", static_cast<long long>(i), shed_qps[i]);
  }
  for (std::size_t i = 0; i < switch_histogram.size(); ++i) {
    append_row(out, "switch_hist", static_cast<long long>(i), switch_histogram[i]);
  }
  for (std::size_t i = 0; i < latency_histogram.size(); ++i) {
    append_row(out, "latency_hist", static_cast<long long>(i), latency_histogram[i]);
  }
  return out;
}

std::size_t FleetEngine::num_chunks(std::size_t devices) {
  const std::size_t chunks = devices / kDevicesPerChunk;
  return std::clamp<std::size_t>(chunks, 1, kMaxChunks);
}

void FleetEngine::validate() const {
  if (plan_.num_options() == 0) throw std::invalid_argument("FleetEngine: empty plan");
  if (config_.devices == 0) throw std::invalid_argument("FleetEngine: devices must be > 0");
  if (config_.steps == 0) throw std::invalid_argument("FleetEngine: steps must be > 0");
  if (config_.step_s <= 0.0) throw std::invalid_argument("FleetEngine: step_s must be > 0");
  if (config_.device_qps <= 0.0) {
    throw std::invalid_argument("FleetEngine: device_qps must be > 0");
  }
  if (config_.hysteresis_margin < 0.0) {
    throw std::invalid_argument("FleetEngine: negative hysteresis margin");
  }
  if (config_.tu_min <= 0.0 || config_.tu_max <= config_.tu_min) {
    throw std::invalid_argument("FleetEngine: need 0 < tu_min < tu_max");
  }
  if (config_.sla_ms < 0.0) {
    throw std::invalid_argument("FleetEngine: sla_ms must be >= 0");
  }
  if (config_.cloud.has_value()) {
    cloud::MachinePool validate_pool(*config_.cloud);  // throws on bad knobs
    (void)validate_pool;
  }
  if (config_.num_regions == 0) {
    throw std::invalid_argument("FleetEngine: num_regions must be >= 1");
  }
  if (config_.num_regions > kMaxRegions) {
    throw std::invalid_argument("FleetEngine: num_regions exceeds kMaxRegions");
  }
  const bool regional_knobs =
      config_.num_regions > 1 || !config_.region_map.empty() ||
      !config_.region_episodes.empty() || config_.fog.has_value() ||
      config_.region_faults.any_enabled();
  if (two_tier_ && regional_knobs) {
    throw std::invalid_argument(
        "FleetEngine: regional failure domains need a K-tier plan "
        "(use the per-hop ctor with a 3+-tier plan)");
  }
  if (!config_.region_map.empty()) {
    if (config_.region_map.size() != config_.devices) {
      throw std::invalid_argument(
          "FleetEngine: region_map must have one entry per device");
    }
    for (std::uint32_t r : config_.region_map) {
      if (r >= config_.num_regions) {
        throw std::invalid_argument("FleetEngine: region_map entry out of range");
      }
    }
  }
  for (const RegionEpisode& re : config_.region_episodes) {
    if (re.region >= config_.num_regions) {
      throw std::invalid_argument(
          "FleetEngine: region_episodes entry targets a region out of range");
    }
  }
  if (config_.fog.has_value()) {
    cloud::MachinePool validate_fog(*config_.fog);  // throws on bad knobs
    (void)validate_fog;
  }
}

FleetEngine::FleetEngine(const core::DeploymentPlan& plan, FleetConfig config)
    : plan_(plan), config_(std::move(config)) {
  if (plan_.num_hops() > 1) {
    throw std::invalid_argument("FleetEngine: K-tier plan needs the per-hop ctor");
  }
  latency_curves_ = plan_.latency_curves();
  energy_curves_ = plan_.energy_curves();
  two_tier_ = true;
  validate();
  const auto& sel = config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                                     : energy_curves_;
  intervals_ = runtime::dominance_intervals(sel, config_.tu_min, config_.tu_max);
  fallback_option_ = cheapest_edge_only(plan_.options(), sel);
}

FleetEngine::FleetEngine(const core::DeploymentPlan& plan,
                         const std::vector<double>& hop_tu_mbps, FleetConfig config)
    : plan_(plan), config_(std::move(config)), two_tier_(plan.num_hops() <= 1) {
  if (hop_tu_mbps.size() != plan_.num_hops()) {
    throw std::invalid_argument(
        "FleetEngine: hop_tu_mbps needs one entry per hop (radio first): plan has " +
        std::to_string(plan_.num_hops()) + " hop(s), got " +
        std::to_string(hop_tu_mbps.size()));
  }
  for (std::size_t h = 1; h < hop_tu_mbps.size(); ++h) {
    if (!(hop_tu_mbps[h] > 0.0) || !std::isfinite(hop_tu_mbps[h])) {
      throw std::invalid_argument(
          "FleetEngine: hop_tu_mbps entries past hop 0 (the backhauls) must be "
          "positive and finite");
    }
  }
  hop_tu_ = hop_tu_mbps;
  latency_curves_ = plan_.collapsed_latency_curves(0, hop_tu_mbps);
  energy_curves_ = plan_.collapsed_energy_curves(0, hop_tu_mbps);
  validate();
  const auto& sel = config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                                     : energy_curves_;
  intervals_ = runtime::dominance_intervals(sel, config_.tu_min, config_.tu_max);
  fallback_option_ = cheapest_edge_only(plan_.options(), sel);
  if (!two_tier_) build_ladder_tables();
}

void FleetEngine::build_ladder_tables() {
  const std::vector<core::DeploymentOption>& options = plan_.options();
  const std::size_t num_hops = plan_.num_hops();
  const std::size_t num_layers = plan_.layer_latency_ms().size();
  const std::size_t m = options.size();
  fog_ms_.assign(m, 0.0);
  cloud_ms_.assign(m, 0.0);
  radio_coeff_ms_.assign(m, 0.0);
  crosses_.assign(m * num_hops, 0);
  occupies_cloud_.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const core::DeploymentOption& o = options[i];
    // Option crosses hop h iff a tier past h is occupied: cuts[h] < n.
    for (std::size_t h = 0; h < num_hops; ++h) {
      crosses_[i * num_hops + h] = o.cuts[h] < num_layers ? 1 : 0;
    }
    occupies_cloud_[i] = crosses_[i * num_hops + (num_hops - 1)];
    cloud_ms_[i] = o.tier_latency_ms.back();
    for (std::size_t k = 1; k + 1 < o.tier_latency_ms.size(); ++k) {
      fog_ms_[i] += o.tier_latency_ms[k];
    }
    radio_coeff_ms_[i] = plan_.latency_surfaces()[i].per_inverse_tu[0];
  }
  radio_rtt_ms_ = plan_.hop(0).round_trip_ms();

  // Ladder targets under the selection metric at the staged trace mean —
  // the same reference throughput the boot option uses.
  const std::vector<comm::CostCurve>& sel =
      config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                       : energy_curves_;
  const double ref_tu = config_.trace.mean_mbps > 0.0 ? config_.trace.mean_mbps : 1.0;
  ladder_within_.assign(num_hops, -1);
  for (std::size_t h = 0; h < num_hops; ++h) {
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (crosses_[i * num_hops + h]) continue;
      const double cost = sel[i].value(ref_tu);
      if (cost < best_cost) {
        best_cost = cost;
        ladder_within_[h] = static_cast<std::int32_t>(i);
      }
    }
  }
  double best_direct = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    if (!occupies_cloud_[i] || fog_ms_[i] != 0.0) continue;
    const double cost = sel[i].value(ref_tu);
    if (cost < best_direct) {
      best_direct = cost;
      cloud_direct_ = static_cast<std::int32_t>(i);
    }
  }
}

FleetStats FleetEngine::run() { return run(par::global_pool()); }

FleetStats FleetEngine::run(par::ThreadPool& pool) {
  const std::size_t n = config_.devices;
  const std::size_t steps = config_.steps;
  const std::size_t chunks = num_chunks(n);
  const std::size_t num_options = plan_.num_options();
  const comm::TraceGenerator gen(config_.trace);  // validates knobs; stateless use
  const runtime::TrackerParams tracker = config_.tracker;
  const std::vector<comm::CostCurve>& sel_curves =
      config_.metric == runtime::OptimizeFor::kLatency ? latency_curves_
                                                       : energy_curves_;
  const std::vector<core::DeploymentOption>& options = plan_.options();

  // --- SoA device state -----------------------------------------------
  std::vector<comm::FleetTraceState> states(n);
  std::vector<double> estimate(n, 0.0);
  std::vector<double> tu(n, 0.0);
  std::vector<double> eff(n, 0.0);
  std::vector<std::uint32_t> samples(n, 0);
  std::vector<std::uint32_t> outages(n, 0);
  std::vector<std::uint32_t> option(n, 0);
  std::vector<std::uint32_t> prev(n, 0);
  std::vector<std::uint32_t> switch_count(n, 0);
  std::vector<core::PricedObjectives> priced(two_tier_ ? n : 0);

  // Every device boots on the option that wins at the configured trace
  // mean — the deployment a fleet operator would stage before telemetry.
  const auto init_option = static_cast<std::uint32_t>(
      runtime::select_option(intervals_, config_.trace.mean_mbps));
  std::fill(option.begin(), option.end(), init_option);

  // Per-device streams rooted at substream_seed(seed, device): trajectories
  // are a pure function of (config, device id), independent of sharding.
  par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
    const auto [begin, end] = par::chunk_range(n, chunks, c);
    for (std::size_t i = begin; i < end; ++i) {
      states[i] =
          gen.start_state(par::SplitMix64(par::substream_seed(config_.seed, i)));
    }
  });

  const FaultCsr csr = build_fault_csr(config_, pool, chunks);

  // --- finite-cloud state ----------------------------------------------
  const bool cloud_on = config_.cloud.has_value();
  std::optional<cloud::CloudScheduler> cloud_sched;
  if (cloud_on) cloud_sched.emplace(*config_.cloud);
  const bool breaker_on = cloud_on && config_.breaker_failures > 0 &&
                          fallback_option_.has_value();
  // Per-device admission priority hash: a fixed key per (seed, device), so
  // shedding follows a stable deterministic priority order — the same
  // devices yield first every step, independent of sharding or threads.
  std::vector<std::uint64_t> admit_key;
  std::vector<std::uint32_t> fail_streak;
  std::vector<std::uint32_t> breaker_until;  // 0 = closed; else probe step
  if (cloud_on) {
    admit_key.resize(n);
    const std::uint64_t root = par::substream_seed(config_.seed, 0xc10d);
    par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
      const auto [begin, end] = par::chunk_range(n, chunks, c);
      for (std::size_t i = begin; i < end; ++i) {
        admit_key[i] = par::substream_seed(root, i);
      }
    });
    if (breaker_on) {
      fail_streak.assign(n, 0);
      breaker_until.assign(n, 0);
    }
  }
  // Datacenter-level faults (machine failures, brownouts): one shared
  // schedule, queried serially per step.
  sim::FaultInjector dc_faults;
  if (cloud_on && config_.cloud_faults.any_enabled()) {
    sim::FaultScheduleConfig dc_cfg = config_.cloud_faults;
    if (dc_cfg.horizon_s <= 0.0) {
      dc_cfg.horizon_s = static_cast<double>(steps) * config_.step_s;
    }
    dc_faults = sim::FaultInjector(sim::FaultSchedule::generate(dc_cfg));
  }

  // --- regional failure domains (K-tier path only) ----------------------
  // Every K-tier run flows through the regional machinery with R >= 1; a
  // healthy region prices on the EXACT nominal collapsed curves (pointer,
  // not copy), so a no-fault run is bit-identical to the retired
  // pinned-backhaul shortcut by construction.
  const std::size_t num_hops = plan_.num_hops();
  const bool regional = !two_tier_;
  const std::size_t R = regional ? config_.num_regions : 0;
  const bool fog_on = regional && config_.fog.has_value();
  std::optional<cloud::CloudScheduler> fog_sched;
  if (fog_on) fog_sched.emplace(*config_.fog);
  // The fog breaker needs a rung to fast-fail onto (cloud-direct or the
  // edge fallback), mirroring the cloud breaker's fallback requirement.
  const bool fog_breaker_on = fog_on && config_.breaker_failures > 0 &&
                              (fallback_option_.has_value() || cloud_direct_ >= 0);
  std::vector<std::uint32_t> region_of;
  std::vector<sim::FaultInjector> region_inj(R);
  std::vector<std::uint32_t> eff_opt, offered_opt;
  std::vector<std::uint8_t> dev_flags;
  std::vector<std::uint64_t> fog_key;
  std::vector<std::uint32_t> fog_streak, fog_until;
  if (regional) {
    region_of.resize(n);
    eff_opt.assign(n, 0);
    offered_opt.assign(n, 0);
    dev_flags.assign(n, 0);
    par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
      const auto [begin, end] = par::chunk_range(n, chunks, c);
      for (std::size_t i = begin; i < end; ++i) {
        region_of[i] = config_.region_map.empty()
                           ? static_cast<std::uint32_t>(i % R)
                           : config_.region_map[i];
      }
    });
    if (config_.region_faults.any_enabled() || !config_.region_episodes.empty()) {
      sim::FaultScheduleConfig rcfg = config_.region_faults;
      if (rcfg.horizon_s <= 0.0) {
        rcfg.horizon_s = static_cast<double>(steps) * config_.step_s;
      }
      for (std::size_t r = 0; r < R; ++r) {
        sim::FaultScheduleConfig cfg_r = rcfg;
        for (const RegionEpisode& re : config_.region_episodes) {
          if (re.region == static_cast<std::uint32_t>(r)) {
            cfg_r.scripted.push_back(re.episode);
          }
        }
        region_inj[r] = sim::FaultInjector(
            sim::FaultSchedule::generate_for_region(cfg_r, config_.seed, r));
      }
    }
    if (fog_on) {
      // Fog admission priority: a hash stream disjoint from the cloud's
      // admit keys, so fog and cloud never shed the same unlucky devices.
      fog_key.resize(n);
      const std::uint64_t fog_root = par::substream_seed(config_.seed, 0xf09);
      par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
        const auto [begin, end] = par::chunk_range(n, chunks, c);
        for (std::size_t i = begin; i < end; ++i) {
          fog_key[i] = par::substream_seed(fog_root, i);
        }
      });
      if (fog_breaker_on) {
        fog_streak.assign(n, 0);
        fog_until.assign(n, 0);
      }
    }
  }
  // Per-step regional backhaul state and repriced latency curves. Energy
  // surfaces never carry a backhaul coefficient (transfers past the radio
  // are not billed to the battery), so energy always prices on the base
  // curves; latency re-collapses only in regions with an active brownout.
  std::vector<std::uint8_t> hop_out(R * std::max<std::size_t>(num_hops, 1), 0);
  std::vector<std::uint8_t> region_any_out(R, 0);
  std::vector<std::vector<comm::CostCurve>> region_lat_scratch(R);
  std::vector<const std::vector<comm::CostCurve>*> region_lat(R, &latency_curves_);
  std::vector<double> pin = hop_tu_;  // reused per-region collapse pin vector
  std::vector<double> region_fog_fail(R, 0.0);
  std::vector<cloud::StepOutcome> fog_out(R);
  std::vector<std::uint64_t> fog_threshold(R, admit_threshold(1.0));
  std::vector<RegionTotals> rtot(R);

  // --- per-chunk accumulators (serial chunk-order merge) ---------------
  std::vector<ChunkAccum> acc(chunks);
  std::vector<OfferAccum> offers(chunks);
  std::vector<std::uint64_t> hist(chunks * kLatencyBins, 0);
  std::vector<RegionAccum> racc(chunks * R);

  FleetStats stats;
  stats.devices = n;
  stats.steps = steps;
  stats.step_s = config_.step_s;
  stats.cloud_qps.reserve(steps);
  stats.offered_qps.reserve(steps);
  stats.shed_qps.reserve(steps);
  std::vector<std::uint64_t> lat_hist(kLatencyBins, 0);
  double total_latency = 0.0, total_energy = 0.0, total_offered_bits = 0.0;
  double total_oracle_latency = 0.0, total_oracle_energy = 0.0;
  double dc_energy_j = 0.0, wait_weighted_ms = 0.0, machines_active_sum = 0.0;
  std::uint64_t total_offered_devsteps = 0, total_admitted = 0;
  std::uint64_t breaker_open_devsteps = 0;

  for (std::size_t s = 0; s < steps; ++s) {
    const double t = static_cast<double>(s) * config_.step_s;
    std::fill(acc.begin(), acc.end(), ChunkAccum{});
    std::fill(offers.begin(), offers.end(), OfferAccum{});
    std::fill(hist.begin(), hist.end(), 0);

    // ---- serial regional state: backhaul health + repriced curves -------
    if (regional) {
      for (std::size_t r = 0; r < R; ++r) {
        const sim::FaultInjector& inj = region_inj[r];
        bool any_out = false;
        bool any_slow = false;
        for (std::size_t h = 1; h < num_hops; ++h) {
          const bool out = inj.backhaul_unavailable(t, h);
          hop_out[r * num_hops + h] = out ? 1 : 0;
          any_out |= out;
          const double factor = inj.backhaul_factor(t, h);
          pin[h] = hop_tu_[h] * factor;
          if (factor != 1.0) any_slow = true;
        }
        region_any_out[r] = any_out ? 1 : 0;
        if (any_out) ++rtot[r].backhaul_out_steps;
        if (any_slow) {
          plan_.collapse_latency_curves_into(0, pin, region_lat_scratch[r]);
          region_lat[r] = &region_lat_scratch[r];
        } else {
          region_lat[r] = &latency_curves_;  // nominal: the exact ctor curves
        }
        region_fog_fail[r] = inj.fog_failure_fraction(t);
      }
    }

    // ---- pass A: trace, faults, tracking, selection, offer counting ----
    par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
      const auto [begin, end] = par::chunk_range(n, chunks, c);
      const std::size_t len = end - begin;

      // 1. Trace step: one AR(1) advance per device.
      gen.step_batch(&states[begin], len, &tu[begin]);

      // 2. Fault overlay: link fades scale the reading; a cloud outage
      //    turns it into an outage reading (tu = 0) — an unreachable cloud
      //    is indistinguishable from a dead link at the device.
      if (csr.enabled) {
        for (std::size_t i = begin; i < end; ++i) {
          double factor = 1.0;
          for (std::uint64_t j = csr.link_off[i]; j < csr.link_off[i + 1]; ++j) {
            if (t >= csr.link_start[j] && t < csr.link_end[j]) {
              factor = std::min(factor, csr.link_depth[j]);
            }
          }
          tu[i] *= factor;
          for (std::uint64_t j = csr.cloud_off[i]; j < csr.cloud_off[i + 1]; ++j) {
            if (t >= csr.cloud_start[j] && t < csr.cloud_end[j]) {
              tu[i] = 0.0;
              break;
            }
          }
        }
      }

      // 3. Tracker update (EWMA fold / outage decay) over the shard.
      runtime::tracker_update_batch(
          tracker, std::span<double>(estimate.data() + begin, len),
          std::span<std::uint32_t>(samples.data() + begin, len),
          std::span<std::uint32_t>(outages.data() + begin, len),
          std::span<const double>(tu.data() + begin, len));

      // 4. Hysteresis re-select on the tracked estimate (0 until the first
      //    successful sample, which select_batch clamps to the analyzed
      //    floor — the pessimistic-floor fallback of the runtime stack).
      std::copy(option.begin() + static_cast<std::ptrdiff_t>(begin),
                option.begin() + static_cast<std::ptrdiff_t>(end),
                prev.begin() + static_cast<std::ptrdiff_t>(begin));
      runtime::select_batch(intervals_, sel_curves, config_.tu_min,
                            config_.hysteresis_margin,
                            std::span<const double>(estimate.data() + begin, len),
                            std::span<std::uint32_t>(option.data() + begin, len));

      // 5. Offer counting: what this shard wants from the next tier up,
      //    before admission. Breaker-open devices sit the step out.
      if (regional) {
        // K-tier ladder, stage 1: backhaul-outage clamp (walk down to the
        // deepest tier the region can still reach), fog breaker fast-fail,
        // and fog offer counting per (chunk, region).
        RegionAccum* ra = racc.data() + c * R;
        for (std::size_t r = 0; r < R; ++r) ra[r] = RegionAccum{};
        for (std::size_t i = begin; i < end; ++i) {
          std::uint32_t o = option[i];
          std::uint8_t fl = 0;
          const std::uint32_t r = region_of[i];
          if (region_any_out[r]) {
            for (std::size_t hh = 1; hh < num_hops; ++hh) {
              if (!hop_out[r * num_hops + hh] || !crosses_[o * num_hops + hh]) {
                continue;
              }
              // The shallowest dead hop decides: confine to tiers 0..hh
              // (when the plan has such an option at all).
              if (ladder_within_[hh] >= 0) {
                o = static_cast<std::uint32_t>(ladder_within_[hh]);
              }
              break;
            }
          }
          offered_opt[i] = o;
          if (fog_on && fog_ms_[o] > 0.0) {
            const bool open = fog_breaker_on && fog_until[i] > 0 &&
                              s < static_cast<std::size_t>(fog_until[i]);
            if (open) {
              // Fog breaker open: skip the probe entirely and serve the
              // next rung — cloud-direct when the plan has one and every
              // backhaul hop is alive, else the edge fallback.
              if (cloud_direct_ >= 0 && !region_any_out[r]) {
                o = static_cast<std::uint32_t>(cloud_direct_);
              } else if (fallback_option_.has_value()) {
                o = *fallback_option_;
              }
              fl |= kFlagFogOpen;
            } else {
              fl |= kFlagFogOffered;
              ++ra[r].fog_offered;
              ra[r].fog_job_ms += fog_ms_[o];
            }
          }
          eff_opt[i] = o;
          dev_flags[i] = fl;
        }
        // Without a fog stage the central-cloud offers are final here;
        // with one they wait for pass A2 (fog sheds retry cloud-direct).
        if (cloud_on && !fog_on) {
          OfferAccum& oa = offers[c];
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t o = eff_opt[i];
            if (!occupies_cloud_[o]) continue;
            if (breaker_on && breaker_until[i] > 0 &&
                s < static_cast<std::size_t>(breaker_until[i])) {
              continue;
            }
            ++oa.offered;
            oa.job_ms_sum += cloud_ms_[o];
          }
        }
      } else if (cloud_on) {
        OfferAccum& oa = offers[c];
        for (std::size_t i = begin; i < end; ++i) {
          const core::DeploymentOption& od = options[option[i]];
          if (od.tx_bytes == 0) continue;
          if (breaker_on && breaker_until[i] > 0 &&
              s < static_cast<std::size_t>(breaker_until[i])) {
            continue;
          }
          ++oa.offered;
          oa.job_ms_sum += od.cloud_latency_ms;
        }
      }
    });

    // ---- serial fog stage: one place_step per region, then pass A2 ------
    // Admission fractions must come out of ONE serial call per region so
    // the admitted/shed split never depends on sharding; the parallel A2
    // pass then resolves each device against its region's threshold and
    // finalizes the central-cloud offers (fog sheds retry down-ladder, the
    // breaker bounding how many keep retrying).
    if (fog_on) {
      for (std::size_t r = 0; r < R; ++r) {
        std::uint64_t fog_offered_devices = 0;
        double fog_job_ms_sum = 0.0;
        for (std::size_t c = 0; c < chunks; ++c) {  // serial chunk order
          fog_offered_devices += racc[c * R + r].fog_offered;
          fog_job_ms_sum += racc[c * R + r].fog_job_ms;
        }
        const double fog_offered_qps =
            static_cast<double>(fog_offered_devices) * config_.device_qps;
        const double fog_job_ms =
            fog_offered_devices > 0
                ? fog_job_ms_sum / static_cast<double>(fog_offered_devices)
                : 0.0;
        fog_out[r] = fog_sched->place_step(fog_offered_qps, fog_job_ms,
                                           region_fog_fail[r], 1.0);
        fog_threshold[r] = admit_threshold(fog_out[r].admit_fraction);
        rtot[r].fog_energy_j += fog_out[r].power_w * config_.step_s;
      }
      par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
        const auto [begin, end] = par::chunk_range(n, chunks, c);
        RegionAccum* ra = racc.data() + c * R;
        for (std::size_t i = begin; i < end; ++i) {
          std::uint8_t fl = dev_flags[i];
          if (!(fl & kFlagFogOffered)) continue;
          const std::uint32_t r = region_of[i];
          if ((fog_key[i] >> 32) < fog_threshold[r]) {
            fl |= kFlagFogAdmitted;
            ++ra[r].fog_admitted;
            if (fog_breaker_on) {
              fog_streak[i] = 0;
              fog_until[i] = 0;  // closed (or a probe that succeeded)
            }
          } else {
            ++ra[r].fog_shed;
            // Shed by the fog site: retry down the ladder. The aborted
            // radio leg is billed in pass B off offered_opt.
            std::uint32_t down = eff_opt[i];
            if (cloud_direct_ >= 0 && !region_any_out[r]) {
              down = static_cast<std::uint32_t>(cloud_direct_);
            } else if (fallback_option_.has_value()) {
              down = *fallback_option_;
            }
            if (down != eff_opt[i]) {
              eff_opt[i] = down;
              fl |= kFlagFogShed;
            }
            if (fog_breaker_on) {
              const bool probing = fog_until[i] > 0;  // s >= until here
              if (probing || ++fog_streak[i] >= config_.breaker_failures) {
                const auto jitter = static_cast<std::size_t>(
                    fog_key[i] %
                    static_cast<std::uint64_t>(config_.breaker_jitter_steps + 1));
                fog_until[i] = static_cast<std::uint32_t>(
                    s + 1 + config_.breaker_open_steps + jitter);
                if (!probing) {
                  ++acc[c].breaker_trips;
                  fog_streak[i] = 0;
                }
              }
            }
          }
          dev_flags[i] = fl;
        }
        if (cloud_on) {
          OfferAccum& oa = offers[c];
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t o = eff_opt[i];
            if (!occupies_cloud_[o]) continue;
            if (breaker_on && breaker_until[i] > 0 &&
                s < static_cast<std::size_t>(breaker_until[i])) {
              continue;
            }
            ++oa.offered;
            oa.job_ms_sum += cloud_ms_[o];
          }
        }
      });
    }

    // ---- serial scheduler step: admission fraction for the whole fleet --
    // One place_step call per step, outside the parallel section, so the
    // admitted/shed split and the queueing feedback are identical at any
    // thread count.
    cloud::StepOutcome outcome;
    std::uint64_t threshold = admit_threshold(1.0);
    if (cloud_on) {
      std::uint64_t offered_devices = 0;
      double job_ms_sum = 0.0;
      for (std::size_t c = 0; c < chunks; ++c) {  // serial chunk-order merge
        offered_devices += offers[c].offered;
        job_ms_sum += offers[c].job_ms_sum;
      }
      const double offered_qps_step =
          static_cast<double>(offered_devices) * config_.device_qps;
      const double job_ms =
          offered_devices > 0 ? job_ms_sum / static_cast<double>(offered_devices)
                              : 0.0;
      outcome = cloud_sched->place_step(offered_qps_step, job_ms,
                                        dc_faults.machine_failure_fraction(t),
                                        dc_faults.brownout_factor(t));
      threshold = admit_threshold(outcome.admit_fraction);
    }

    // ---- pass B: admission, breaker ladder, pricing, accounting --------
    par::parallel_for_chunked(pool, chunks, chunks, [&](std::size_t c) {
      const auto [begin, end] = par::chunk_range(n, chunks, c);
      const std::size_t len = end - begin;

      // Price the realized link state: serving costs at the actual
      // throughput (outage clamped to the floor), plus the full-option-
      // set oracle via the allocation-free batch pricer.
      for (std::size_t i = begin; i < end; ++i) {
        eff[i] = tu[i] > 0.0 ? tu[i] : config_.tu_min;
      }
      if (two_tier_) {
        plan_.price_batch_into(std::span<const double>(eff.data() + begin, len),
                               std::span<core::PricedObjectives>(priced.data() + begin, len));
      }

      ChunkAccum& a = acc[c];
      std::uint64_t* h = hist.data() + c * kLatencyBins;
      if (two_tier_) {
        for (std::size_t i = begin; i < end; ++i) {
          if (option[i] != prev[i]) {
            ++a.switches;
            ++switch_count[i];
          }
          const std::uint32_t o = option[i];
          double lat = latency_curves_[o].value(eff[i]);
          double energy = energy_curves_[o].value(eff[i]);
          const core::DeploymentOption& od = options[o];
          if (od.tx_bytes > 0) {
            ++a.cloud_devices;
            a.offered_bits += static_cast<double>(od.tx_bytes) * 8.0;
          }
          if (cloud_on && od.tx_bytes > 0) {
            const bool open = breaker_on && breaker_until[i] > 0 &&
                              s < static_cast<std::size_t>(breaker_until[i]);
            if (open) {
              // Breaker open: fast-fail straight to the edge fallback — no
              // transmit, no offer, no reject round trip.
              const std::uint32_t fb = *fallback_option_;
              lat = latency_curves_[fb].value(eff[i]);
              energy = energy_curves_[fb].value(eff[i]);
              ++a.breaker_open_steps;
            } else if ((admit_key[i] >> 32) < threshold) {
              lat += outcome.mean_wait_ms;  // queueing feedback into RTT
              ++a.admitted;
              if (breaker_on) {
                fail_streak[i] = 0;
                breaker_until[i] = 0;  // closed (or a probe that succeeded)
              }
            } else {
              ++a.shed;
              // Shed: everything but the cloud suffix happened (prefix,
              // transmit, the reject's round trip is the curve's RTT term),
              // then the full model re-runs on the edge fallback.
              if (fallback_option_.has_value()) {
                const std::uint32_t fb = *fallback_option_;
                lat += latency_curves_[fb].value(eff[i]) - od.cloud_latency_ms;
                energy += energy_curves_[fb].value(eff[i]);
              }
              if (breaker_on) {
                const bool probing = breaker_until[i] > 0;  // s >= until here
                if (probing || ++fail_streak[i] >= config_.breaker_failures) {
                  const auto jitter = static_cast<std::size_t>(
                      admit_key[i] %
                      static_cast<std::uint64_t>(config_.breaker_jitter_steps + 1));
                  breaker_until[i] = static_cast<std::uint32_t>(
                      s + 1 + config_.breaker_open_steps + jitter);
                  if (!probing) {
                    ++a.breaker_trips;
                    fail_streak[i] = 0;
                  }
                }
              }
            }
          }
          a.latency_ms += lat;
          a.energy_mj += energy;
          ++h[latency_bin(lat)];
          if (config_.sla_ms > 0.0 && lat > config_.sla_ms) ++a.sla_violations;
          a.oracle_latency_ms += priced[i].best_latency_ms;
          a.oracle_energy_mj += priced[i].best_energy_mj;
        }
      } else {
        // K-tier regional accounting: price eff_opt (the tier-ladder
        // resolution of the hysteresis selection) on the REGION's realized
        // curves, then run the central-cloud admission/breaker stage.
        RegionAccum* ra = racc.data() + c * R;
        for (std::size_t i = begin; i < end; ++i) {
          if (option[i] != prev[i]) {
            ++a.switches;
            ++switch_count[i];
          }
          const std::uint8_t fl = dev_flags[i];
          std::uint32_t o = eff_opt[i];
          const std::uint32_t r = region_of[i];
          const std::vector<comm::CostCurve>& latc = *region_lat[r];
          double lat = latc[o].value(eff[i]);
          double energy = energy_curves_[o].value(eff[i]);
          if (fl & kFlagFogAdmitted) lat += fog_out[r].mean_wait_ms;
          if (options[o].tx_bytes > 0) {
            ++a.cloud_devices;
            a.offered_bits += static_cast<double>(options[o].tx_bytes) * 8.0;
          }
          if (cloud_on && occupies_cloud_[o]) {
            const bool open = breaker_on && breaker_until[i] > 0 &&
                              s < static_cast<std::size_t>(breaker_until[i]);
            if (open) {
              const std::uint32_t fb = *fallback_option_;
              lat = latc[fb].value(eff[i]);
              energy = energy_curves_[fb].value(eff[i]);
              o = fb;
              ++a.breaker_open_steps;
              ++ra[r].breaker_open;
            } else if ((admit_key[i] >> 32) < threshold) {
              lat += outcome.mean_wait_ms;
              ++a.admitted;
              ++ra[r].cloud_admitted;
              if (breaker_on) {
                fail_streak[i] = 0;
                breaker_until[i] = 0;
              }
            } else {
              ++a.shed;
              ++ra[r].cloud_shed;
              // Shed at the cloud door: everything up to the last tier ran
              // (the curve's backhaul and RTT terms), minus the unserved
              // cloud suffix, plus the edge re-execution.
              if (fallback_option_.has_value()) {
                const std::uint32_t fb = *fallback_option_;
                lat += latc[fb].value(eff[i]) - cloud_ms_[o];
                energy += energy_curves_[fb].value(eff[i]);
                o = fb;
              }
              if (breaker_on) {
                const bool probing = breaker_until[i] > 0;  // s >= until
                if (probing || ++fail_streak[i] >= config_.breaker_failures) {
                  const auto jitter = static_cast<std::size_t>(
                      admit_key[i] %
                      static_cast<std::uint64_t>(config_.breaker_jitter_steps + 1));
                  breaker_until[i] = static_cast<std::uint32_t>(
                      s + 1 + config_.breaker_open_steps + jitter);
                  if (!probing) {
                    ++a.breaker_trips;
                    fail_streak[i] = 0;
                  }
                }
              }
            }
          }
          if (fl & kFlagFogShed) {
            // The aborted fog attempt's radio leg: edge prefix, hop-0
            // transfer at the realized radio rate, and the reject's
            // handshake round trip.
            const std::uint32_t po = offered_opt[i];
            lat += options[po].edge_latency_ms + radio_coeff_ms_[po] / eff[i] +
                   radio_rtt_ms_;
            energy += energy_curves_[po].value(eff[i]);
          }
          if (fl & kFlagFogOpen) {
            ++a.breaker_open_steps;
            ++ra[r].breaker_open;
          }
          if (o != option[i]) ++ra[r].degraded;
          a.latency_ms += lat;
          a.energy_mj += energy;
          ++h[latency_bin(lat)];
          if (config_.sla_ms > 0.0 && lat > config_.sla_ms) ++a.sla_violations;
          // Oracle: min over options on the region's realized curves,
          // ascending strict-<.
          double best_lat = latc[0].value(eff[i]);
          double best_energy = energy_curves_[0].value(eff[i]);
          for (std::size_t k = 1; k < num_options; ++k) {
            const double l = latc[k].value(eff[i]);
            const double e = energy_curves_[k].value(eff[i]);
            if (l < best_lat) best_lat = l;
            if (e < best_energy) best_energy = e;
          }
          a.oracle_latency_ms += best_lat;
          a.oracle_energy_mj += best_energy;
        }
      }
    });

    // Serial merge in chunk-index order: the only float accumulation whose
    // order could depend on scheduling, pinned here for any thread count.
    double step_offered_bits = 0.0;
    std::uint64_t step_cloud = 0, step_admitted = 0, step_shed = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      total_latency += acc[c].latency_ms;
      total_energy += acc[c].energy_mj;
      total_oracle_latency += acc[c].oracle_latency_ms;
      total_oracle_energy += acc[c].oracle_energy_mj;
      step_offered_bits += acc[c].offered_bits;
      step_cloud += acc[c].cloud_devices;
      step_admitted += acc[c].admitted;
      step_shed += acc[c].shed;
      stats.total_switches += acc[c].switches;
      stats.shed += acc[c].shed;
      stats.sla_violations += acc[c].sla_violations;
      stats.breaker_trips += acc[c].breaker_trips;
      breaker_open_devsteps += acc[c].breaker_open_steps;
      for (std::size_t k = 0; k < kLatencyBins; ++k) {
        lat_hist[k] += hist[c * kLatencyBins + k];
      }
    }
    // Per-region merge, serially in (region, chunk) order. The fog wait
    // weighting needs this step's per-region admits, so it lives here.
    for (std::size_t r = 0; r < R; ++r) {
      std::uint64_t step_fog_admitted = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const RegionAccum& x = racc[c * R + r];
        rtot[r].fog_offered += x.fog_offered;
        step_fog_admitted += x.fog_admitted;
        rtot[r].fog_shed += x.fog_shed;
        rtot[r].cloud_admitted += x.cloud_admitted;
        rtot[r].cloud_shed += x.cloud_shed;
        rtot[r].degraded += x.degraded;
        rtot[r].breaker_open += x.breaker_open;
      }
      rtot[r].fog_admitted += step_fog_admitted;
      if (fog_on) {
        rtot[r].fog_wait_weighted_ms +=
            fog_out[r].mean_wait_ms * static_cast<double>(step_fog_admitted);
      }
    }
    total_offered_bits += step_offered_bits;
    if (cloud_on) {
      const std::uint64_t step_offered = step_admitted + step_shed;
      total_offered_devsteps += step_offered;
      total_admitted += step_admitted;
      stats.cloud_qps.push_back(static_cast<double>(step_admitted) *
                                config_.device_qps);
      stats.offered_qps.push_back(static_cast<double>(step_offered) *
                                  config_.device_qps);
      stats.shed_qps.push_back(static_cast<double>(step_shed) * config_.device_qps);
      dc_energy_j += outcome.power_w * config_.step_s;
      wait_weighted_ms += outcome.mean_wait_ms * static_cast<double>(step_admitted);
      machines_active_sum += static_cast<double>(outcome.machines_active);
    } else {
      const double qps = static_cast<double>(step_cloud) * config_.device_qps;
      total_offered_devsteps += step_cloud;
      total_admitted += step_cloud;
      stats.cloud_qps.push_back(qps);
      stats.offered_qps.push_back(qps);
      stats.shed_qps.push_back(0.0);
    }
  }

  // --- report -----------------------------------------------------------
  const double device_steps = static_cast<double>(n) * static_cast<double>(steps);
  const double device_hours =
      device_steps * config_.step_s / 3600.0;  // each step is step_s of wall time
  stats.mean_latency_ms = total_latency / device_steps;
  stats.mean_energy_mj = total_energy / device_steps;
  // Every device-step serves device_qps * step_s inferences at its priced
  // per-inference energy.
  stats.energy_mj_per_device_hour =
      total_energy * config_.device_qps * config_.step_s / device_hours;
  stats.oracle_mean_latency_ms = total_oracle_latency / device_steps;
  stats.oracle_mean_energy_mj = total_oracle_energy / device_steps;
  stats.mean_offered_mbps =
      total_offered_bits * config_.device_qps / 1e6 / static_cast<double>(steps);
  double qps_sum = 0.0;
  for (double q : stats.cloud_qps) {
    qps_sum += q;
    stats.peak_cloud_qps = std::max(stats.peak_cloud_qps, q);
  }
  stats.mean_cloud_qps = qps_sum / static_cast<double>(steps);
  double offered_sum = 0.0;
  for (double q : stats.offered_qps) offered_sum += q;
  stats.mean_offered_qps = offered_sum / static_cast<double>(steps);
  if (total_offered_devsteps > 0) {
    stats.shed_rate = static_cast<double>(stats.shed) /
                      static_cast<double>(total_offered_devsteps);
  }
  stats.sla_violation_rate =
      static_cast<double>(stats.sla_violations) / device_steps;
  stats.breaker_open_time_s =
      static_cast<double>(breaker_open_devsteps) * config_.step_s;
  stats.datacenter_energy_j = dc_energy_j;
  if (total_admitted > 0) {
    stats.mean_queue_wait_ms =
        wait_weighted_ms / static_cast<double>(total_admitted);
  }
  if (cloud_on) {
    stats.mean_machines_active = machines_active_sum / static_cast<double>(steps);
  }
  stats.switches_per_device_hour =
      static_cast<double>(stats.total_switches) / device_hours;
  for (std::uint32_t o : outages) stats.outage_readings += o;
  stats.latency_histogram = lat_hist;
  const std::uint64_t total_obs = static_cast<std::uint64_t>(n) * steps;
  stats.p50_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.50);
  stats.p99_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.99);
  stats.p999_latency_ms = percentile_from_hist(lat_hist, total_obs, 0.999);
  stats.switch_histogram.assign(kSwitchBins, 0);
  for (std::uint32_t sc : switch_count) {
    const std::size_t bin = std::min<std::size_t>(sc, kSwitchBins - 1);
    ++stats.switch_histogram[bin];
  }
  if (regional) {
    const double steps_d = static_cast<double>(steps);
    stats.regions.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      FleetStats::RegionStats& rs = stats.regions[r];
      const RegionTotals& rt = rtot[r];
      rs.fog_offered_qps =
          static_cast<double>(rt.fog_offered) * config_.device_qps / steps_d;
      rs.fog_admitted_qps =
          static_cast<double>(rt.fog_admitted) * config_.device_qps / steps_d;
      rs.fog_shed_qps =
          static_cast<double>(rt.fog_shed) * config_.device_qps / steps_d;
      rs.cloud_offered_qps = static_cast<double>(rt.cloud_admitted + rt.cloud_shed) *
                             config_.device_qps / steps_d;
      rs.cloud_admitted_qps =
          static_cast<double>(rt.cloud_admitted) * config_.device_qps / steps_d;
      rs.cloud_shed_qps =
          static_cast<double>(rt.cloud_shed) * config_.device_qps / steps_d;
      rs.degraded_device_s = static_cast<double>(rt.degraded) * config_.step_s;
      rs.breaker_open_s = static_cast<double>(rt.breaker_open) * config_.step_s;
      rs.backhaul_out_s =
          static_cast<double>(rt.backhaul_out_steps) * config_.step_s;
      rs.fog_energy_j = rt.fog_energy_j;
      if (rt.fog_admitted > 0) {
        rs.fog_queue_wait_ms =
            rt.fog_wait_weighted_ms / static_cast<double>(rt.fog_admitted);
      }
      stats.fog_shed += rt.fog_shed;
      stats.degraded_steps += rt.degraded;
      stats.fog_energy_j += rt.fog_energy_j;
    }
  }
  return stats;
}

}  // namespace lens::fleet
