#pragma once
// Terminal plotting for the experiment harnesses: scatter plots (Pareto
// fronts, explored candidates) and line charts (convergence, cumulative
// cost traces) rendered as plain text so the bench binaries can reproduce
// the paper's *figures*, not just their summary statistics.

#include <string>
#include <vector>

namespace lens::viz {

/// One plotted series: points plus the glyph that draws them.
struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotConfig {
  int width = 72;    ///< plot area columns (excluding axis gutter)
  int height = 20;   ///< plot area rows
  std::string x_label;
  std::string y_label;
  bool log_x = false;
  bool log_y = false;
};

/// Render a scatter plot of the series onto a character canvas. Later
/// series overdraw earlier ones where cells collide. Includes axis ranges
/// and a legend line. Throws std::invalid_argument on empty input, ragged
/// series, non-positive values under log scaling, or degenerate config.
std::string scatter_plot(const std::vector<Series>& series, const PlotConfig& config = {});

/// Render line charts: like scatter_plot but connects consecutive points of
/// each series with linear interpolation across columns.
std::string line_plot(const std::vector<Series>& series, const PlotConfig& config = {});

}  // namespace lens::viz
