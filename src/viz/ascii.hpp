#pragma once
// Terminal plotting for the experiment harnesses: scatter plots (Pareto
// fronts, explored candidates) and line charts (convergence, cumulative
// cost traces) rendered as plain text so the bench binaries can reproduce
// the paper's *figures*, not just their summary statistics.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lens::viz {

/// One plotted series: points plus the glyph that draws them.
struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotConfig {
  int width = 72;    ///< plot area columns (excluding axis gutter)
  int height = 20;   ///< plot area rows
  std::string x_label;
  std::string y_label;
  bool log_x = false;
  bool log_y = false;
};

/// Render a scatter plot of the series onto a character canvas. Later
/// series overdraw earlier ones where cells collide. Includes axis ranges
/// and a legend line. Throws std::invalid_argument on empty input, ragged
/// series, non-positive values under log scaling, or degenerate config.
std::string scatter_plot(const std::vector<Series>& series, const PlotConfig& config = {});

/// Render line charts: like scatter_plot but connects consecutive points of
/// each series with linear interpolation across columns.
std::string line_plot(const std::vector<Series>& series, const PlotConfig& config = {});

/// One-line diagram of a K-tier layer partition: each tier as a box with its
/// layer range, joined by hop arrows annotated with the bytes they carry.
///   [edge: L0-L3] ==(12.5 KB)==> [fog: L4-L9] ==(4.1 KB)==> [cloud: L10-L15]
/// Tiers with no layers render as "idle" (empty middle tiers still relay);
/// hops carrying nothing render as a plain arrow. `cuts` are the K-1
/// nondecreasing cut points over `num_layers` layers (tier k runs
/// [cuts[k-1], cuts[k])); `hop_bytes[h]` is the payload crossing hop h.
/// Throws std::invalid_argument on mismatched sizes or out-of-order cuts.
std::string tier_diagram(const std::vector<std::string>& tier_names,
                         const std::vector<std::size_t>& cuts, std::size_t num_layers,
                         const std::vector<std::uint64_t>& hop_bytes);

}  // namespace lens::viz
