#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace lens::viz {

namespace {

struct Bounds {
  double x_lo, x_hi, y_lo, y_hi;
};

double maybe_log(double v, bool log_scale) {
  if (!log_scale) return v;
  if (v <= 0.0) throw std::invalid_argument("ascii plot: non-positive value on log axis");
  return std::log10(v);
}

Bounds compute_bounds(const std::vector<Series>& series, const PlotConfig& config) {
  Bounds b{std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};
  std::size_t total_points = 0;
  for (const Series& s : series) {
    if (s.x.size() != s.y.size()) throw std::invalid_argument("ascii plot: ragged series");
    total_points += s.x.size();
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      b.x_lo = std::min(b.x_lo, maybe_log(s.x[i], config.log_x));
      b.x_hi = std::max(b.x_hi, maybe_log(s.x[i], config.log_x));
      b.y_lo = std::min(b.y_lo, maybe_log(s.y[i], config.log_y));
      b.y_hi = std::max(b.y_hi, maybe_log(s.y[i], config.log_y));
    }
  }
  if (total_points == 0) throw std::invalid_argument("ascii plot: no points");
  // Degenerate ranges get a symmetric pad so single values still render.
  if (b.x_hi - b.x_lo < 1e-12) {
    b.x_lo -= 0.5;
    b.x_hi += 0.5;
  }
  if (b.y_hi - b.y_lo < 1e-12) {
    b.y_lo -= 0.5;
    b.y_hi += 0.5;
  }
  return b;
}

class Canvas {
 public:
  Canvas(int width, int height) : width_(width), height_(height) {
    if (width < 8 || height < 4) throw std::invalid_argument("ascii plot: canvas too small");
    cells_.assign(static_cast<std::size_t>(width) * height, ' ');
  }

  void put(int col, int row, char glyph) {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return;
    cells_[static_cast<std::size_t>(row) * width_ + col] = glyph;
  }

  int width() const { return width_; }
  int height() const { return height_; }

  std::string render(const Bounds& bounds, const PlotConfig& config,
                     const std::vector<Series>& series) const {
    std::string out;
    char line[160];
    // Top y value.
    std::snprintf(line, sizeof line, "%10.3g +", unlog(bounds.y_hi, config.log_y));
    out += line;
    out += std::string(static_cast<std::size_t>(width_), '-') + "+\n";
    for (int row = 0; row < height_; ++row) {
      if (row == height_ / 2 && !config.y_label.empty()) {
        std::snprintf(line, sizeof line, "%10.10s |", config.y_label.c_str());
      } else {
        std::snprintf(line, sizeof line, "%10s |", "");
      }
      out += line;
      out.append(cells_.begin() + static_cast<std::ptrdiff_t>(row) * width_,
                 cells_.begin() + static_cast<std::ptrdiff_t>(row + 1) * width_);
      out += "|\n";
    }
    std::snprintf(line, sizeof line, "%10.3g +", unlog(bounds.y_lo, config.log_y));
    out += line;
    out += std::string(static_cast<std::size_t>(width_), '-') + "+\n";
    {
      char lo_text[32];
      char hi_text[32];
      std::snprintf(lo_text, sizeof lo_text, "%.3g", unlog(bounds.x_lo, config.log_x));
      std::snprintf(hi_text, sizeof hi_text, "%.3g", unlog(bounds.x_hi, config.log_x));
      std::string footer(static_cast<std::size_t>(width_) + 2, ' ');
      footer.replace(0, std::string(lo_text).size(), lo_text);
      const std::string hi(hi_text);
      footer.replace(footer.size() - hi.size(), hi.size(), hi);
      if (!config.x_label.empty() && config.x_label.size() + 16 < footer.size()) {
        footer.replace((footer.size() - config.x_label.size()) / 2, config.x_label.size(),
                       config.x_label);
      }
      out += "           " + footer + "\n";
    }
    // Legend.
    out += "            ";
    for (const Series& s : series) {
      out += "[";
      out += s.glyph;
      out += "] " + s.label + "  ";
    }
    out += "\n";
    return out;
  }

 private:
  static double unlog(double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  }

  int width_;
  int height_;
  std::vector<char> cells_;
};

void validate(const std::vector<Series>& series) {
  if (series.empty()) throw std::invalid_argument("ascii plot: no series");
}

}  // namespace

std::string scatter_plot(const std::vector<Series>& series, const PlotConfig& config) {
  validate(series);
  const Bounds bounds = compute_bounds(series, config);
  Canvas canvas(config.width, config.height);
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double xn = (maybe_log(s.x[i], config.log_x) - bounds.x_lo) /
                        (bounds.x_hi - bounds.x_lo);
      const double yn = (maybe_log(s.y[i], config.log_y) - bounds.y_lo) /
                        (bounds.y_hi - bounds.y_lo);
      const int col = static_cast<int>(std::lround(xn * (config.width - 1)));
      const int row = static_cast<int>(std::lround((1.0 - yn) * (config.height - 1)));
      canvas.put(col, row, s.glyph);
    }
  }
  return canvas.render(bounds, config, series);
}

std::string line_plot(const std::vector<Series>& series, const PlotConfig& config) {
  validate(series);
  const Bounds bounds = compute_bounds(series, config);
  Canvas canvas(config.width, config.height);
  for (const Series& s : series) {
    // Interpolate y across every canvas column between consecutive points.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const double x0 = maybe_log(s.x[i], config.log_x);
      const double x1 = maybe_log(s.x[i + 1], config.log_x);
      const double y0 = maybe_log(s.y[i], config.log_y);
      const double y1 = maybe_log(s.y[i + 1], config.log_y);
      const int c0 = static_cast<int>(
          std::lround((x0 - bounds.x_lo) / (bounds.x_hi - bounds.x_lo) * (config.width - 1)));
      const int c1 = static_cast<int>(
          std::lround((x1 - bounds.x_lo) / (bounds.x_hi - bounds.x_lo) * (config.width - 1)));
      const int step = c1 >= c0 ? 1 : -1;
      for (int col = c0; col != c1 + step; col += step) {
        const double t = c1 == c0 ? 0.0 : static_cast<double>(col - c0) / (c1 - c0);
        const double y = y0 + t * (y1 - y0);
        const double yn = (y - bounds.y_lo) / (bounds.y_hi - bounds.y_lo);
        const int row = static_cast<int>(std::lround((1.0 - yn) * (config.height - 1)));
        canvas.put(col, row, s.glyph);
      }
    }
    if (s.x.size() == 1) {
      const double xn = (maybe_log(s.x[0], config.log_x) - bounds.x_lo) /
                        (bounds.x_hi - bounds.x_lo);
      const double yn = (maybe_log(s.y[0], config.log_y) - bounds.y_lo) /
                        (bounds.y_hi - bounds.y_lo);
      canvas.put(static_cast<int>(std::lround(xn * (config.width - 1))),
                 static_cast<int>(std::lround((1.0 - yn) * (config.height - 1))), s.glyph);
    }
  }
  return canvas.render(bounds, config, series);
}

namespace {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

std::string tier_diagram(const std::vector<std::string>& tier_names,
                         const std::vector<std::size_t>& cuts, std::size_t num_layers,
                         const std::vector<std::uint64_t>& hop_bytes) {
  if (tier_names.size() < 2 || cuts.size() != tier_names.size() - 1 ||
      hop_bytes.size() != cuts.size()) {
    throw std::invalid_argument("tier_diagram: need K >= 2 tiers, K-1 cuts and hop bytes");
  }
  std::size_t prev = 0;
  for (std::size_t c : cuts) {
    if (c < prev || c > num_layers) {
      throw std::invalid_argument("tier_diagram: cuts must be nondecreasing and <= layers");
    }
    prev = c;
  }
  std::string out;
  for (std::size_t k = 0; k < tier_names.size(); ++k) {
    const std::size_t begin = k == 0 ? 0 : cuts[k - 1];
    const std::size_t end = k == cuts.size() ? num_layers : cuts[k];
    out += '[' + tier_names[k] + ": ";
    if (end > begin) {
      out += 'L' + std::to_string(begin) + "-L" + std::to_string(end - 1);
    } else {
      out += "idle";
    }
    out += ']';
    if (k < cuts.size()) {
      // A hop carrying payload gets its byte count; an unused hop (the
      // chain stopped earlier) renders as a bare arrow.
      out += hop_bytes[k] > 0 ? " ==(" + format_bytes(hop_bytes[k]) + ")==> " : " ----> ";
    }
  }
  return out;
}

}  // namespace lens::viz
