#pragma once
// Edge-to-cloud communication cost model (paper Eqs. 3-6):
//   L_comm = L_Tx + L_RT,  L_Tx = Size(data) / t_u
//   E_comm = E_Tx = P_Tx * L_Tx
// Cloud-side compute is free from the edge's perspective (paper §III-A).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/wireless.hpp"

namespace lens::comm {

/// A cost that is hyperbolic in the upload throughput:
///   f(t_u) = constant + per_inverse_tu / t_u.
/// Both end-to-end metrics of a deployment option have this shape (paper
/// §IV-E), so every option can be summarized by two coefficients and priced
/// at any throughput without re-running the predictors.
struct CostCurve {
  double constant = 0.0;
  double per_inverse_tu = 0.0;

  /// Throws std::invalid_argument for non-positive throughput.
  double value(double tu_mbps) const {
    if (tu_mbps <= 0.0) {
      throw std::invalid_argument("CostCurve: throughput must be positive");
    }
    return constant + per_inverse_tu / tu_mbps;
  }
};

/// A cost that is hyperbolic in each of H per-hop throughputs:
///   f(t) = constant + sum_h per_inverse_tu[h] / t[h].
/// The K-tier generalization of CostCurve: a deployment option that crosses
/// several network hops contributes one 1/t term per hop it transmits over
/// (unused hops carry a zero coefficient). Collapsing all but one hop at
/// fixed throughputs recovers a 1-D CostCurve, which is how the existing
/// threshold/deployer machinery is reused for K >= 3.
struct MultiHopCurve {
  double constant = 0.0;
  std::vector<double> per_inverse_tu;  ///< one coefficient per hop; 0 = unused

  std::size_t num_hops() const { return per_inverse_tu.size(); }

  /// Throws std::invalid_argument on size mismatch or non-positive entries.
  double value(const std::vector<double>& tu_mbps) const {
    if (tu_mbps.size() != per_inverse_tu.size()) {
      throw std::invalid_argument("MultiHopCurve: throughput vector size mismatch");
    }
    double total = constant;
    for (std::size_t h = 0; h < per_inverse_tu.size(); ++h) {
      if (tu_mbps[h] <= 0.0) {
        throw std::invalid_argument("MultiHopCurve: throughput must be positive");
      }
      total += per_inverse_tu[h] / tu_mbps[h];
    }
    return total;
  }

  /// 1-D curve in hop `free_hop` with every other hop pinned at
  /// `fixed_tu_mbps[h]`. Entries for unused hops (zero coefficient) and for
  /// `free_hop` itself are never read, so they may be arbitrary.
  CostCurve collapse(std::size_t free_hop, const std::vector<double>& fixed_tu_mbps) const {
    if (free_hop >= per_inverse_tu.size()) {
      throw std::invalid_argument("MultiHopCurve: free hop out of range");
    }
    if (fixed_tu_mbps.size() != per_inverse_tu.size()) {
      throw std::invalid_argument("MultiHopCurve: throughput vector size mismatch");
    }
    CostCurve curve{constant, per_inverse_tu[free_hop]};
    for (std::size_t h = 0; h < per_inverse_tu.size(); ++h) {
      if (h == free_hop || per_inverse_tu[h] == 0.0) continue;
      if (fixed_tu_mbps[h] <= 0.0) {
        throw std::invalid_argument("MultiHopCurve: throughput must be positive");
      }
      curve.constant += per_inverse_tu[h] / fixed_tu_mbps[h];
    }
    return curve;
  }
};

/// Network environment: technology, expected upload throughput, and the
/// measured round-trip latency to the server.
struct NetworkConditions {
  WirelessTechnology technology = WirelessTechnology::kWifi;
  double upload_mbps = 3.0;       ///< expected t_u (paper's experiments use 3 Mbps)
  double round_trip_ms = 20.0;    ///< L_RT, averaged ping
};

/// Communication cost calculator for a fixed technology. Throughput is a
/// per-call argument so the same model serves both design-time evaluation
/// (expected t_u) and runtime adaptation (tracked t_u).
class CommModel {
 public:
  explicit CommModel(WirelessTechnology technology, double round_trip_ms = 20.0);
  CommModel(const RadioPowerModel& power_model, double round_trip_ms);

  /// Build from a NetworkConditions bundle (technology + RTT; the expected
  /// throughput stays a per-call argument as everywhere else).
  static CommModel from_conditions(const NetworkConditions& conditions) {
    return CommModel(conditions.technology, conditions.round_trip_ms);
  }

  // The three per-call costs below are inline: plan pricing calls them once
  // or twice per option, and the expressions must stay exactly as written —
  // priced plans are bit-compared against these very formulas.

  /// Transmission latency L_Tx in ms for `bytes` at `tu_mbps`.
  double tx_latency_ms(std::uint64_t bytes, double tu_mbps) const {
    if (tu_mbps <= 0.0) {
      throw std::invalid_argument("CommModel: throughput must be positive");
    }
    const double bits = static_cast<double>(bytes) * 8.0;
    // t_u Mbps = t_u * 1e6 bit/s = t_u * 1e3 bit/ms.
    return bits / (tu_mbps * 1e3);
  }

  /// Total communication latency L_comm = L_Tx + L_RT in ms.
  double comm_latency_ms(std::uint64_t bytes, double tu_mbps) const {
    return tx_latency_ms(bytes, tu_mbps) + round_trip_ms_;
  }

  /// Transmission energy E_Tx = P_Tx * L_Tx in mJ.
  double tx_energy_mj(std::uint64_t bytes, double tu_mbps) const {
    const double power_mw = power_model_.transmit_power_mw(tu_mbps);
    const double latency_s = tx_latency_ms(bytes, tu_mbps) / 1e3;
    return power_mw * latency_s;  // mW * s = mJ
  }

  /// Closed form of comm_latency_ms as a function of t_u:
  ///   L_comm(t_u) = L_RT + bits / (1e3 t_u)   [ms].
  /// The single source of truth for the latency-vs-throughput algebra used
  /// by deployment plans and the runtime threshold analysis.
  CostCurve comm_latency_curve(std::uint64_t bytes) const;

  /// Closed form of tx_energy_mj as a function of t_u:
  ///   E_Tx(t_u) = (alpha t_u + beta) * Mb / t_u = alpha*Mb + beta*Mb / t_u
  /// [mJ] — the alpha term of the radio power model folds into the constant.
  CostCurve tx_energy_curve(std::uint64_t bytes) const;

  double round_trip_ms() const { return round_trip_ms_; }
  const RadioPowerModel& power_model() const { return power_model_; }

 private:
  RadioPowerModel power_model_;
  double round_trip_ms_;
};

}  // namespace lens::comm
