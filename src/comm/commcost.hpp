#pragma once
// Edge-to-cloud communication cost model (paper Eqs. 3-6):
//   L_comm = L_Tx + L_RT,  L_Tx = Size(data) / t_u
//   E_comm = E_Tx = P_Tx * L_Tx
// Cloud-side compute is free from the edge's perspective (paper §III-A).

#include <cstdint>

#include "comm/wireless.hpp"

namespace lens::comm {

/// Network environment: technology, expected upload throughput, and the
/// measured round-trip latency to the server.
struct NetworkConditions {
  WirelessTechnology technology = WirelessTechnology::kWifi;
  double upload_mbps = 3.0;       ///< expected t_u (paper's experiments use 3 Mbps)
  double round_trip_ms = 20.0;    ///< L_RT, averaged ping
};

/// Communication cost calculator for a fixed technology. Throughput is a
/// per-call argument so the same model serves both design-time evaluation
/// (expected t_u) and runtime adaptation (tracked t_u).
class CommModel {
 public:
  explicit CommModel(WirelessTechnology technology, double round_trip_ms = 20.0);
  CommModel(const RadioPowerModel& power_model, double round_trip_ms);

  /// Build from a NetworkConditions bundle (technology + RTT; the expected
  /// throughput stays a per-call argument as everywhere else).
  static CommModel from_conditions(const NetworkConditions& conditions) {
    return CommModel(conditions.technology, conditions.round_trip_ms);
  }

  /// Transmission latency L_Tx in ms for `bytes` at `tu_mbps`.
  double tx_latency_ms(std::uint64_t bytes, double tu_mbps) const;

  /// Total communication latency L_comm = L_Tx + L_RT in ms.
  double comm_latency_ms(std::uint64_t bytes, double tu_mbps) const;

  /// Transmission energy E_Tx = P_Tx * L_Tx in mJ.
  double tx_energy_mj(std::uint64_t bytes, double tu_mbps) const;

  double round_trip_ms() const { return round_trip_ms_; }
  const RadioPowerModel& power_model() const { return power_model_; }

 private:
  RadioPowerModel power_model_;
  double round_trip_ms_;
};

}  // namespace lens::comm
