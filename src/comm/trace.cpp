#include "comm/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lens::comm {

double ThroughputTrace::mean_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  double acc = 0.0;
  for (double v : samples_mbps) acc += v;
  return acc / static_cast<double>(samples_mbps.size());
}

double ThroughputTrace::min_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  return *std::min_element(samples_mbps.begin(), samples_mbps.end());
}

double ThroughputTrace::max_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  return *std::max_element(samples_mbps.begin(), samples_mbps.end());
}

TraceGenerator::TraceGenerator(TraceGeneratorConfig config)
    : config_(config), rng_(config.seed) {
  if (config.mean_mbps <= 0.0 || config.sigma < 0.0 || config.correlation < 0.0 ||
      config.correlation >= 1.0 || config.floor_mbps <= 0.0) {
    throw std::invalid_argument("TraceGenerator: invalid configuration");
  }
  if (config.outage_start_probability < 0.0 || config.outage_start_probability >= 1.0 ||
      config.outage_mean_duration < 1.0 || config.outage_depth_factor <= 0.0 ||
      config.outage_depth_factor > 1.0) {
    throw std::invalid_argument("TraceGenerator: invalid outage configuration");
  }
}

ThroughputTrace TraceGenerator::generate(std::size_t n, double interval_s) {
  if (n == 0) throw std::invalid_argument("TraceGenerator::generate: n must be positive");
  std::normal_distribution<double> gauss(0.0, 1.0);
  const double mu = std::log(config_.mean_mbps);
  const double rho = config_.correlation;
  const double innovation_scale = config_.sigma * std::sqrt(1.0 - rho * rho);

  ThroughputTrace trace;
  trace.interval_s = interval_s;
  trace.samples_mbps.reserve(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double log_tu = mu + config_.sigma * gauss(rng_);  // stationary start
  bool in_outage = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (config_.outage_start_probability > 0.0) {
      if (!in_outage && unit(rng_) < config_.outage_start_probability) {
        in_outage = true;
      } else if (in_outage && unit(rng_) < 1.0 / config_.outage_mean_duration) {
        in_outage = false;
      }
    }
    const double depth = in_outage ? config_.outage_depth_factor : 1.0;
    trace.samples_mbps.push_back(
        std::max(config_.floor_mbps, std::exp(log_tu) * depth));
    log_tu = mu + rho * (log_tu - mu) + innovation_scale * gauss(rng_);
  }
  return trace;
}

}  // namespace lens::comm
