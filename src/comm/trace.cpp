#include "comm/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lens::comm {

double ThroughputTrace::mean_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  double acc = 0.0;
  for (double v : samples_mbps) acc += v;
  return acc / static_cast<double>(samples_mbps.size());
}

double ThroughputTrace::min_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  return *std::min_element(samples_mbps.begin(), samples_mbps.end());
}

double ThroughputTrace::max_mbps() const {
  if (samples_mbps.empty()) throw std::logic_error("ThroughputTrace: empty trace");
  return *std::max_element(samples_mbps.begin(), samples_mbps.end());
}

TraceGenerator::TraceGenerator(TraceGeneratorConfig config)
    : config_(config), rng_(config.seed) {
  if (config.mean_mbps <= 0.0 || config.sigma < 0.0 || config.correlation < 0.0 ||
      config.correlation >= 1.0 || config.floor_mbps <= 0.0) {
    throw std::invalid_argument("TraceGenerator: invalid configuration");
  }
  if (config.outage_start_probability < 0.0 || config.outage_start_probability >= 1.0 ||
      config.outage_mean_duration < 1.0 || config.outage_depth_factor <= 0.0 ||
      config.outage_depth_factor > 1.0) {
    throw std::invalid_argument("TraceGenerator: invalid outage configuration");
  }
}

double TraceGenerator::mu() const { return std::log(config_.mean_mbps); }

double TraceGenerator::innovation_scale() const {
  const double rho = config_.correlation;
  return config_.sigma * std::sqrt(1.0 - rho * rho);
}

double TraceGenerator::sample_floor(double mbps) const {
  return std::max(config_.floor_mbps, mbps);
}

ThroughputTrace TraceGenerator::generate(std::size_t n, double interval_s) {
  if (n == 0) throw std::invalid_argument("TraceGenerator::generate: n must be positive");
  ThroughputTrace trace;
  trace.interval_s = interval_s;
  trace.samples_mbps.reserve(n);
  // Thread the member RNG through a stream state and back, so consecutive
  // generate() calls keep consuming one stream exactly as they always did.
  TraceState state = start_state(std::move(rng_));
  for (std::size_t i = 0; i < n; ++i) trace.samples_mbps.push_back(step(state));
  rng_ = std::move(state.rng);
  return trace;
}

}  // namespace lens::comm
