#pragma once
// Upload-throughput traces for the runtime analysis (paper §V-C).
//
// The paper collected LTE t_u with TestMyNet every 5 minutes for 40 samples;
// we substitute a synthetic generator producing temporally-correlated
// log-normal throughput series with a configurable mean — the properties
// that matter for exercising the threshold-crossing behaviour of Fig. 8.

#include <cstddef>
#include <random>
#include <vector>

namespace lens::comm {

/// A measured or synthetic throughput time series.
struct ThroughputTrace {
  std::vector<double> samples_mbps;
  double interval_s = 300.0;  ///< paper: one sample every 5 minutes

  std::size_t size() const { return samples_mbps.size(); }
  double mean_mbps() const;
  double min_mbps() const;
  double max_mbps() const;
};

/// AR(1) log-normal throughput generator:
///   log t_u[i] = mu + rho * (log t_u[i-1] - mu) + sigma * sqrt(1-rho^2) * z_i
/// optionally overlaid with a two-state Markov outage process (deep fades /
/// congestion events real cellular links exhibit but a stationary AR(1)
/// cannot produce): while "in outage" the sample is multiplied by
/// outage_depth_factor; outage episodes start with probability
/// outage_start_probability per sample and end with probability
/// 1/outage_mean_duration per sample (geometric durations).
struct TraceGeneratorConfig {
  double mean_mbps = 12.0;    ///< long-run median throughput
  double sigma = 0.45;        ///< log-domain volatility
  double correlation = 0.6;   ///< AR(1) coefficient in [0,1)
  double floor_mbps = 0.1;    ///< clamp: radios never report ~0 up
  unsigned seed = 7;
  double outage_start_probability = 0.0;  ///< 0 disables the overlay
  double outage_mean_duration = 3.0;      ///< samples, >= 1
  double outage_depth_factor = 0.05;      ///< throughput multiplier in outage
};

/// Generates correlated throughput traces.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGeneratorConfig config = {});

  /// Produce a trace of `n` samples at `interval_s` spacing.
  ThroughputTrace generate(std::size_t n, double interval_s = 300.0);

 private:
  TraceGeneratorConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace lens::comm
