#pragma once
// Upload-throughput traces for the runtime analysis (paper §V-C).
//
// The paper collected LTE t_u with TestMyNet every 5 minutes for 40 samples;
// we substitute a synthetic generator producing temporally-correlated
// log-normal throughput series with a configurable mean — the properties
// that matter for exercising the threshold-crossing behaviour of Fig. 8.
//
// Incremental generation: whole-trace generate() is a convenience wrapper
// around a single-step state machine — start_state() draws the stationary
// AR(1) start, step() advances one sample, step_batch() advances a packed
// array of per-device states (the fleet simulator's hot path). The state is
// templated on the RNG engine: the default std::mt19937_64 reproduces the
// historical generate() output bit-for-bit (tests pin this against a frozen
// reference), while par::SplitMix64 shrinks per-device state to a few dozen
// bytes so a million-device fleet can carry one stream per device.

#include <cstddef>
#include <random>
#include <utility>
#include <vector>

#include "par/substream.hpp"

namespace lens::comm {

/// A measured or synthetic throughput time series.
struct ThroughputTrace {
  std::vector<double> samples_mbps;
  double interval_s = 300.0;  ///< paper: one sample every 5 minutes

  std::size_t size() const { return samples_mbps.size(); }
  double mean_mbps() const;
  double min_mbps() const;
  double max_mbps() const;
};

/// AR(1) log-normal throughput generator:
///   log t_u[i] = mu + rho * (log t_u[i-1] - mu) + sigma * sqrt(1-rho^2) * z_i
/// optionally overlaid with a two-state Markov outage process (deep fades /
/// congestion events real cellular links exhibit but a stationary AR(1)
/// cannot produce): while "in outage" the sample is multiplied by
/// outage_depth_factor; outage episodes start with probability
/// outage_start_probability per sample and end with probability
/// 1/outage_mean_duration per sample (geometric durations).
struct TraceGeneratorConfig {
  double mean_mbps = 12.0;    ///< long-run median throughput
  double sigma = 0.45;        ///< log-domain volatility
  double correlation = 0.6;   ///< AR(1) coefficient in [0,1)
  double floor_mbps = 0.1;    ///< clamp: radios never report ~0 up
  unsigned seed = 7;
  double outage_start_probability = 0.0;  ///< 0 disables the overlay
  double outage_mean_duration = 3.0;      ///< samples, >= 1
  double outage_depth_factor = 0.05;      ///< throughput multiplier in outage
};

/// Per-stream state of the incremental trace generator: the RNG engine, the
/// (stateful) gaussian draw — std::normal_distribution caches its spare
/// polar-method variate, so it must travel with the stream — and the AR(1)
/// log-throughput carried between samples. One of these per simulated
/// device is the fleet's packed per-device trace state.
template <typename Engine = std::mt19937_64>
struct BasicTraceState {
  Engine rng{};
  std::normal_distribution<double> gauss{0.0, 1.0};
  std::uniform_real_distribution<double> unit{0.0, 1.0};
  double log_tu = 0.0;     ///< log of the next sample (pre outage overlay)
  bool in_outage = false;  ///< two-state Markov outage overlay
};

/// The exact-legacy state: stepping it reproduces generate() bit-for-bit.
using TraceState = BasicTraceState<std::mt19937_64>;
/// Fleet-scale state: 8-byte splitmix64 stream instead of ~2.5 KB of
/// mt19937_64, seeded per device with par::substream_seed.
using FleetTraceState = BasicTraceState<par::SplitMix64>;

/// Generates correlated throughput traces.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGeneratorConfig config = {});

  /// Produce a trace of `n` samples at `interval_s` spacing. Equivalent to
  /// start_state() + n x step() on the generator's own RNG stream (and
  /// bit-identical to the pre-refactor whole-trace loop).
  ThroughputTrace generate(std::size_t n, double interval_s = 300.0);

  /// Fresh stream state over `rng`: draws the stationary AR(1) start
  ///   log t_u = mu + sigma * z.
  template <typename Engine>
  BasicTraceState<Engine> start_state(Engine rng) const {
    BasicTraceState<Engine> state;
    state.rng = std::move(rng);
    state.log_tu = mu() + config_.sigma * state.gauss(state.rng);
    return state;
  }

  /// Advance one sample: apply the Markov outage overlay, emit the floored
  /// sample, then run the AR(1) recursion. Same draw order and arithmetic
  /// as the whole-trace loop, so n calls == generate(n) bit-for-bit.
  template <typename Engine>
  double step(BasicTraceState<Engine>& state) const {
    if (config_.outage_start_probability > 0.0) {
      if (!state.in_outage &&
          state.unit(state.rng) < config_.outage_start_probability) {
        state.in_outage = true;
      } else if (state.in_outage &&
                 state.unit(state.rng) < 1.0 / config_.outage_mean_duration) {
        state.in_outage = false;
      }
    }
    const double depth = state.in_outage ? config_.outage_depth_factor : 1.0;
    const double sample = sample_floor(std::exp(state.log_tu) * depth);
    state.log_tu = mu() + config_.correlation * (state.log_tu - mu()) +
                   innovation_scale() * state.gauss(state.rng);
    return sample;
  }

  /// SoA pass over packed per-device states: out_mbps[i] = step(states[i])
  /// for i in [0, n). The scalar step() above is the frozen oracle; the
  /// fleet engine drives whole device shards through this form.
  template <typename Engine>
  void step_batch(BasicTraceState<Engine>* states, std::size_t n,
                  double* out_mbps) const {
    for (std::size_t i = 0; i < n; ++i) out_mbps[i] = step(states[i]);
  }

  const TraceGeneratorConfig& config() const { return config_; }

 private:
  double mu() const;                ///< log(mean_mbps)
  double innovation_scale() const;  ///< sigma * sqrt(1 - rho^2)
  double sample_floor(double mbps) const;

  TraceGeneratorConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace lens::comm
