#pragma once
// Wireless technology models.
//
// Transmission power follows the throughput-linear models of Huang et al.,
// "A Close Examination of Performance and Power Characteristics of 4G LTE
// Networks" (MobiSys'12), the source the paper cites for P_Tx:
//     P_tx(t_u) = alpha_u * t_u + beta   [mW, t_u in Mbps]
//
// Unit conventions used across the whole library:
//   latency: ms, energy: mJ, power: mW, throughput: Mbps, data size: bytes.

#include <stdexcept>
#include <string>

namespace lens::comm {

/// Supported radio technologies ("Tech" input of Alg. 1/2).
enum class WirelessTechnology { kWifi, kLte, k3G };

/// Throughput-linear uplink power model P(t_u) = alpha_mw_per_mbps * t_u + beta_mw.
struct RadioPowerModel {
  double alpha_mw_per_mbps = 0.0;
  double beta_mw = 0.0;

  /// Uplink transmission power in mW at upload throughput `tu_mbps`.
  /// Throws std::invalid_argument for non-positive throughput.
  /// Inline: this sits on the plan-pricing hot path (one call per priced
  /// transmitting option).
  double transmit_power_mw(double tu_mbps) const {
    if (tu_mbps <= 0.0) {
      throw std::invalid_argument("RadioPowerModel: throughput must be positive");
    }
    return alpha_mw_per_mbps * tu_mbps + beta_mw;
  }
};

/// The published MobiSys'12 model constants for each technology
/// (LTE: 438.39*t_u + 1288.04; WiFi: 283.17*t_u + 132.86; 3G: 868.98*t_u + 817.88).
RadioPowerModel power_model_for(WirelessTechnology tech);

/// Human-readable technology name ("WiFi", "LTE", "3G").
std::string technology_name(WirelessTechnology tech);

}  // namespace lens::comm
