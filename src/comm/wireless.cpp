#include "comm/wireless.hpp"

#include <stdexcept>

namespace lens::comm {

RadioPowerModel power_model_for(WirelessTechnology tech) {
  switch (tech) {
    case WirelessTechnology::kWifi: return {283.17, 132.86};
    case WirelessTechnology::kLte: return {438.39, 1288.04};
    case WirelessTechnology::k3G: return {868.98, 817.88};
  }
  throw std::logic_error("power_model_for: unknown technology");
}

std::string technology_name(WirelessTechnology tech) {
  switch (tech) {
    case WirelessTechnology::kWifi: return "WiFi";
    case WirelessTechnology::kLte: return "LTE";
    case WirelessTechnology::k3G: return "3G";
  }
  throw std::logic_error("technology_name: unknown technology");
}

}  // namespace lens::comm
