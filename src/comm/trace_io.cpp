#include "comm/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace lens::comm {

double percentile_mbps(const ThroughputTrace& trace, double p) {
  if (trace.size() == 0) throw std::invalid_argument("percentile_mbps: empty trace");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile_mbps: p out of range");
  std::vector<double> sorted = trace.samples_mbps;
  std::sort(sorted.begin(), sorted.end());
  const double position = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(position));
  const auto upper = static_cast<std::size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

void save_trace_csv(const ThroughputTrace& trace, const std::string& path) {
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << std::setprecision(17);
    out << "# interval_s=" << trace.interval_s << "\n";
    out << "index,tu_mbps\n";
    for (std::size_t i = 0; i < trace.size(); ++i) {
      out << i << "," << trace.samples_mbps[i] << "\n";
    }
  });
}

ThroughputTrace load_trace_csv(const std::string& path) {
  // The footer check catches a trace truncated to fewer rows, which would
  // otherwise parse cleanly as a silently shorter trace.
  std::istringstream in(io::read_checked(path));
  ThroughputTrace trace;
  std::string line;
  // Header: "# interval_s=<v>".
  if (!std::getline(in, line) || line.rfind("# interval_s=", 0) != 0) {
    throw std::invalid_argument("load_trace_csv: missing interval header");
  }
  trace.interval_s = std::stod(line.substr(line.find('=') + 1));
  if (!std::getline(in, line) || line != "index,tu_mbps") {
    throw std::invalid_argument("load_trace_csv: missing column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("load_trace_csv: malformed row: " + line);
    }
    const double tu = std::stod(line.substr(comma + 1));
    if (tu <= 0.0) throw std::invalid_argument("load_trace_csv: non-positive throughput");
    trace.samples_mbps.push_back(tu);
  }
  if (trace.samples_mbps.empty()) {
    throw std::invalid_argument("load_trace_csv: no samples in " + path);
  }
  return trace;
}

}  // namespace lens::comm
