#include "comm/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lens::comm {

double percentile_mbps(const ThroughputTrace& trace, double p) {
  if (trace.size() == 0) throw std::invalid_argument("percentile_mbps: empty trace");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile_mbps: p out of range");
  std::vector<double> sorted = trace.samples_mbps;
  std::sort(sorted.begin(), sorted.end());
  const double position = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(position));
  const auto upper = static_cast<std::size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

void save_trace_csv(const ThroughputTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_csv: cannot open " + path);
  out << "# interval_s=" << trace.interval_s << "\n";
  out << "index,tu_mbps\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out << i << "," << trace.samples_mbps[i] << "\n";
  }
  if (!out) throw std::runtime_error("save_trace_csv: write failed for " + path);
}

ThroughputTrace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);
  ThroughputTrace trace;
  std::string line;
  // Header: "# interval_s=<v>".
  if (!std::getline(in, line) || line.rfind("# interval_s=", 0) != 0) {
    throw std::invalid_argument("load_trace_csv: missing interval header");
  }
  trace.interval_s = std::stod(line.substr(line.find('=') + 1));
  if (!std::getline(in, line) || line != "index,tu_mbps") {
    throw std::invalid_argument("load_trace_csv: missing column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("load_trace_csv: malformed row: " + line);
    }
    const double tu = std::stod(line.substr(comma + 1));
    if (tu <= 0.0) throw std::invalid_argument("load_trace_csv: non-positive throughput");
    trace.samples_mbps.push_back(tu);
  }
  if (trace.samples_mbps.empty()) {
    throw std::invalid_argument("load_trace_csv: no samples in " + path);
  }
  return trace;
}

}  // namespace lens::comm
