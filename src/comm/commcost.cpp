#include "comm/commcost.hpp"

#include <stdexcept>

namespace lens::comm {

CommModel::CommModel(WirelessTechnology technology, double round_trip_ms)
    : CommModel(power_model_for(technology), round_trip_ms) {}

CommModel::CommModel(const RadioPowerModel& power_model, double round_trip_ms)
    : power_model_(power_model), round_trip_ms_(round_trip_ms) {
  if (round_trip_ms < 0.0) {
    throw std::invalid_argument("CommModel: negative round-trip latency");
  }
}

CostCurve CommModel::comm_latency_curve(std::uint64_t bytes) const {
  // L_Tx = bits / (t_u * 1e3) ms.
  return {round_trip_ms_, static_cast<double>(bytes) * 8.0 / 1e3};
}

CostCurve CommModel::tx_energy_curve(std::uint64_t bytes) const {
  const double megabits = static_cast<double>(bytes) * 8.0 / 1e6;
  return {power_model_.alpha_mw_per_mbps * megabits, power_model_.beta_mw * megabits};
}

}  // namespace lens::comm
