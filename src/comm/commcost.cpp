#include "comm/commcost.hpp"

#include <stdexcept>

namespace lens::comm {

CommModel::CommModel(WirelessTechnology technology, double round_trip_ms)
    : CommModel(power_model_for(technology), round_trip_ms) {}

CommModel::CommModel(const RadioPowerModel& power_model, double round_trip_ms)
    : power_model_(power_model), round_trip_ms_(round_trip_ms) {
  if (round_trip_ms < 0.0) {
    throw std::invalid_argument("CommModel: negative round-trip latency");
  }
}

double CommModel::tx_latency_ms(std::uint64_t bytes, double tu_mbps) const {
  if (tu_mbps <= 0.0) throw std::invalid_argument("CommModel: throughput must be positive");
  const double bits = static_cast<double>(bytes) * 8.0;
  // t_u Mbps = t_u * 1e6 bit/s = t_u * 1e3 bit/ms.
  return bits / (tu_mbps * 1e3);
}

double CommModel::comm_latency_ms(std::uint64_t bytes, double tu_mbps) const {
  return tx_latency_ms(bytes, tu_mbps) + round_trip_ms_;
}

double CommModel::tx_energy_mj(std::uint64_t bytes, double tu_mbps) const {
  const double power_mw = power_model_.transmit_power_mw(tu_mbps);
  const double latency_s = tx_latency_ms(bytes, tu_mbps) / 1e3;
  return power_mw * latency_s;  // mW * s = mJ
}

}  // namespace lens::comm
