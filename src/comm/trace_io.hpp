#pragma once
// Trace persistence (CSV) and order statistics. Lets experiments replay the
// same throughput traces across runs, or import real measurements (e.g.
// actual TestMyNet exports) in place of the synthetic generator.

#include <string>

#include "comm/trace.hpp"

namespace lens::comm {

/// p-th percentile (p in [0,100]) by linear interpolation of the sorted
/// samples. Throws on an empty trace or out-of-range p.
double percentile_mbps(const ThroughputTrace& trace, double p);

/// Write "index,tu_mbps" rows with a one-line header that carries the
/// sampling interval. Throws std::runtime_error on I/O failure.
void save_trace_csv(const ThroughputTrace& trace, const std::string& path);

/// Inverse of save_trace_csv. Throws std::runtime_error on I/O or parse
/// failure, std::invalid_argument on malformed content.
ThroughputTrace load_trace_csv(const std::string& path);

}  // namespace lens::comm
