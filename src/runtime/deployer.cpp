#include "runtime/deployer.hpp"

#include <limits>
#include <stdexcept>

namespace lens::runtime {

DynamicDeployer::DynamicDeployer(std::vector<core::DeploymentOption> options,
                                 const comm::CommModel& comm, OptimizeFor metric,
                                 double tu_min, double tu_max)
    : options_(std::move(options)), metric_(metric), tu_min_(tu_min) {
  if (options_.empty()) throw std::invalid_argument("DynamicDeployer: no options");
  curves_.reserve(options_.size());
  for (const core::DeploymentOption& o : options_) {
    curves_.push_back(cost_curve(o, comm, metric));
  }
  intervals_ = dominance_intervals(curves_, tu_min, tu_max);
  find_edge_only();
}

DynamicDeployer::DynamicDeployer(const core::DeploymentPlan& plan, OptimizeFor metric,
                                 double tu_min, double tu_max)
    : options_(plan.options()),
      curves_(metric == OptimizeFor::kLatency ? plan.latency_curves()
                                              : plan.energy_curves()),
      metric_(metric),
      tu_min_(tu_min) {
  if (options_.empty()) throw std::invalid_argument("DynamicDeployer: empty plan");
  if (plan.num_hops() > 1) {
    throw std::invalid_argument(
        "DynamicDeployer: K-tier plan needs the per-hop throughput ctor");
  }
  intervals_ = dominance_intervals(curves_, tu_min, tu_max);
  find_edge_only();
}

DynamicDeployer::DynamicDeployer(const core::DeploymentPlan& plan, OptimizeFor metric,
                                 const std::vector<double>& hop_tu_mbps, double tu_min,
                                 double tu_max)
    : options_(plan.options()), metric_(metric), tu_min_(tu_min) {
  if (options_.empty()) throw std::invalid_argument("DynamicDeployer: empty plan");
  // Collapse the multi-hop surfaces onto the radio axis; at K=2 this yields
  // the very same coefficients as the plan's 1-D curves.
  curves_ = metric == OptimizeFor::kLatency
                ? plan.collapsed_latency_curves(0, hop_tu_mbps)
                : plan.collapsed_energy_curves(0, hop_tu_mbps);
  intervals_ = dominance_intervals(curves_, tu_min, tu_max);
  find_edge_only();
}

namespace {

/// Does the option ship anything over hop `h`? Hand-built legacy options may
/// lack the per-hop byte vector; they describe a single radio hop.
bool uses_hop(const core::DeploymentOption& o, std::size_t h) {
  if (!o.hop_tx_bytes.empty()) return h < o.hop_tx_bytes.size() && o.hop_tx_bytes[h] > 0;
  return h == 0 && o.tx_bytes > 0;
}

/// All layers on tiers 0..max_tier — equivalently, no hop >= max_tier used.
bool confined_to(const core::DeploymentOption& o, std::size_t max_tier) {
  const std::size_t num_hops = o.hop_tx_bytes.empty() ? 1 : o.hop_tx_bytes.size();
  for (std::size_t h = max_tier; h < num_hops; ++h) {
    if (uses_hop(o, h)) return false;
  }
  return true;
}

}  // namespace

std::optional<std::size_t> DynamicDeployer::cheapest_confined(std::size_t max_tier) const {
  std::optional<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (!confined_to(options_[i], max_tier)) continue;
    // Confined options may still use hops below max_tier, so rank at the
    // pessimistic floor the threshold analysis covers.
    const double cost = curves_[i].value(tu_min_);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

std::size_t DynamicDeployer::select_hop_unreachable(std::size_t down_hop) const {
  for (std::size_t max_tier = down_hop + 1; max_tier-- > 0;) {
    if (const auto pick = cheapest_confined(max_tier)) return *pick;
  }
  throw std::logic_error(
      "select_hop_unreachable: option set has no member below the dead hop");
}

void DynamicDeployer::find_edge_only() {
  // Edge-only cost curves are constant in throughput, so comparing them at
  // any point (here 1 Mbps) ranks them correctly.
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (options_[i].tx_bytes != 0) continue;
    const double cost = curves_[i].value(1.0);
    if (cost < best_cost) {
      best_cost = cost;
      edge_only_ = i;
    }
  }
}

std::size_t DynamicDeployer::select_cloud_unreachable() const {
  if (!edge_only_.has_value()) {
    throw std::logic_error(
        "select_cloud_unreachable: option set has no edge-only member");
  }
  return *edge_only_;
}

std::size_t DynamicDeployer::select(double tu_mbps) const {
  return select_option(intervals_, effective_tu(tu_mbps));
}

void select_batch(std::span<const DominanceInterval> intervals,
                  std::span<const CostCurve> curves, double tu_min, double margin,
                  std::span<const double> tu_mbps,
                  std::span<std::uint32_t> current_option) {
  if (tu_mbps.size() != current_option.size()) {
    throw std::invalid_argument("select_batch: span lengths differ");
  }
  for (std::size_t i = 0; i < tu_mbps.size(); ++i) {
    const double tu = tu_mbps[i] > 0.0 ? tu_mbps[i] : tu_min;
    current_option[i] = static_cast<std::uint32_t>(
        select_option_hysteresis(intervals, curves, tu, current_option[i], margin));
  }
}

void DynamicDeployer::select_batch(std::span<const double> tu_mbps,
                                   std::span<std::uint32_t> current_option,
                                   double margin) const {
  runtime::select_batch(intervals_, curves_, tu_min_, margin, tu_mbps, current_option);
}

namespace {
PlaybackResult accumulate(const comm::ThroughputTrace& trace,
                          const std::vector<CostCurve>& curves,
                          const std::vector<std::size_t>& choices, double tu_min) {
  PlaybackResult r;
  r.per_sample_cost.reserve(trace.size());
  r.cumulative_cost.reserve(trace.size());
  r.chosen_option = choices;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    double tu = trace.samples_mbps[i];
    if (tu <= 0.0) {  // link outage: price at the analyzed floor
      ++r.outages;
      tu = tu_min;
    }
    const double cost = curves[choices[i]].value(tu);
    r.per_sample_cost.push_back(cost);
    r.total_cost += cost;
    r.cumulative_cost.push_back(r.total_cost);
    if (i > 0 && choices[i] != choices[i - 1]) ++r.option_switches;
  }
  if (trace.size() > 0) {
    r.degraded_fraction =
        static_cast<double>(r.outages) / static_cast<double>(trace.size());
  }
  return r;
}
}  // namespace

std::size_t DynamicDeployer::select_with_hysteresis(double tu_mbps, std::size_t current,
                                                    double margin) const {
  if (current >= options_.size()) {
    throw std::out_of_range("select_with_hysteresis: bad current option");
  }
  if (margin < 0.0) throw std::invalid_argument("select_with_hysteresis: negative margin");
  return select_option_hysteresis(intervals_, curves_, effective_tu(tu_mbps), current,
                                  margin);
}

PlaybackResult DynamicDeployer::play_dynamic(const comm::ThroughputTrace& trace,
                                             double tracker_alpha,
                                             double hysteresis_margin,
                                             FallbackPolicy fallback) const {
  if (trace.size() == 0) throw std::invalid_argument("play_dynamic: empty trace");
  ThroughputTracker tracker(tracker_alpha, fallback.hold_decay, tu_min_);
  std::vector<std::size_t> choices;
  choices.reserve(trace.size());
  for (double tu : trace.samples_mbps) {
    double selection_tu;
    if (tu <= 0.0) {
      // Outage sample: never folded into the EWMA as a fake measurement.
      tracker.report_outage();
      const bool hold = fallback.on_outage == FallbackPolicy::OnOutage::kHoldLast &&
                        tracker.has_estimate();
      selection_tu = hold ? tracker.estimate_mbps() : tu_min_;
    } else {
      tracker.report(tu);
      selection_tu = tracker.estimate_mbps();
    }
    if (hysteresis_margin > 0.0 && !choices.empty()) {
      choices.push_back(
          select_with_hysteresis(selection_tu, choices.back(), hysteresis_margin));
    } else {
      choices.push_back(select(selection_tu));
    }
  }
  return accumulate(trace, curves_, choices, tu_min_);
}

PlaybackResult DynamicDeployer::play_fixed(const comm::ThroughputTrace& trace,
                                           std::size_t option_index) const {
  if (trace.size() == 0) throw std::invalid_argument("play_fixed: empty trace");
  if (option_index >= options_.size()) {
    throw std::out_of_range("play_fixed: bad option index");
  }
  return accumulate(trace, curves_, std::vector<std::size_t>(trace.size(), option_index),
                    tu_min_);
}

}  // namespace lens::runtime
