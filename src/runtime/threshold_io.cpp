#include "runtime/threshold_io.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace lens::runtime {

namespace {
constexpr const char* kMagic = "lens-switching-table v1";
}

std::size_t SwitchingTable::select(double tu_mbps) const {
  if (intervals.empty()) throw std::logic_error("SwitchingTable: empty table");
  if (tu_mbps <= 0.0) throw std::invalid_argument("SwitchingTable: throughput must be positive");
  for (const DominanceInterval& iv : intervals) {
    if (tu_mbps >= iv.tu_low && tu_mbps < iv.tu_high) return iv.option_index;
  }
  return tu_mbps < intervals.front().tu_low ? intervals.front().option_index
                                            : intervals.back().option_index;
}

void save_switching_table(const SwitchingTable& table, const std::string& path) {
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << kMagic << "\n" << std::setprecision(17);
    out << "metric " << (table.metric == OptimizeFor::kLatency ? "latency" : "energy")
        << "\n";
    out << "options " << table.option_labels.size() << "\n";
    for (const std::string& label : table.option_labels) out << label << "\n";
    out << "intervals " << table.intervals.size() << "\n";
    for (const DominanceInterval& iv : table.intervals) {
      out << iv.option_index << ' ' << iv.tu_low << ' ' << iv.tu_high << "\n";
    }
  });
}

SwitchingTable load_switching_table(const std::string& path) {
  // Checksum/size verification up front: a table truncated mid-write (even
  // inside the final floating-point literal) is rejected, not half-parsed.
  std::istringstream in(io::read_checked(path));
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::invalid_argument("load_switching_table: bad header in " + path);
  }
  SwitchingTable table;
  std::string keyword;
  std::string metric_name;
  if (!(in >> keyword >> metric_name) || keyword != "metric") {
    throw std::invalid_argument("load_switching_table: missing metric line");
  }
  if (metric_name == "latency") {
    table.metric = OptimizeFor::kLatency;
  } else if (metric_name == "energy") {
    table.metric = OptimizeFor::kEnergy;
  } else {
    throw std::invalid_argument("load_switching_table: unknown metric '" + metric_name + "'");
  }
  std::size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "options") {
    throw std::invalid_argument("load_switching_table: missing options line");
  }
  std::getline(in, line);  // consume end of line
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line) || line.empty()) {
      throw std::invalid_argument("load_switching_table: truncated option labels");
    }
    table.option_labels.push_back(line);
  }
  if (!(in >> keyword >> count) || keyword != "intervals") {
    throw std::invalid_argument("load_switching_table: missing intervals line");
  }
  for (std::size_t i = 0; i < count; ++i) {
    DominanceInterval iv;
    if (!(in >> iv.option_index >> iv.tu_low >> iv.tu_high)) {
      throw std::invalid_argument("load_switching_table: truncated intervals");
    }
    if (iv.option_index >= table.option_labels.size() || iv.tu_low >= iv.tu_high) {
      throw std::invalid_argument("load_switching_table: inconsistent interval");
    }
    table.intervals.push_back(iv);
  }
  if (table.intervals.empty()) {
    throw std::invalid_argument("load_switching_table: no intervals in " + path);
  }
  return table;
}

}  // namespace lens::runtime
