#include "runtime/tracker.hpp"

#include <stdexcept>

namespace lens::runtime {

ThroughputTracker::ThroughputTracker(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ThroughputTracker: alpha must be in (0,1]");
  }
}

void ThroughputTracker::report(double tu_mbps) {
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument("ThroughputTracker: throughput must be positive");
  }
  estimate_ = samples_ == 0 ? tu_mbps : alpha_ * tu_mbps + (1.0 - alpha_) * estimate_;
  ++samples_;
}

double ThroughputTracker::estimate_mbps() const {
  if (samples_ == 0) throw std::logic_error("ThroughputTracker: no samples yet");
  return estimate_;
}

}  // namespace lens::runtime
