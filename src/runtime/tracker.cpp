#include "runtime/tracker.hpp"

#include <stdexcept>

namespace lens::runtime {

void tracker_update_batch(const TrackerParams& params, std::span<double> estimate_mbps,
                          std::span<std::uint32_t> samples,
                          std::span<std::uint32_t> outages,
                          std::span<const double> tu_mbps) {
  const std::size_t n = tu_mbps.size();
  if (estimate_mbps.size() != n || samples.size() != n || outages.size() != n) {
    throw std::invalid_argument("tracker_update_batch: span lengths differ");
  }
  for (std::size_t i = 0; i < n; ++i) {
    TrackerState state{estimate_mbps[i], samples[i], outages[i]};
    tracker_update(params, state, tu_mbps[i]);
    estimate_mbps[i] = state.estimate_mbps;
    samples[i] = state.samples;
    outages[i] = state.outages;
  }
}

ThroughputTracker::ThroughputTracker(double alpha, double outage_decay, double floor_mbps)
    : params_{alpha, outage_decay, floor_mbps} {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ThroughputTracker: alpha must be in (0,1]");
  }
  if (outage_decay <= 0.0 || outage_decay > 1.0) {
    throw std::invalid_argument("ThroughputTracker: outage decay must be in (0,1]");
  }
  if (floor_mbps <= 0.0) {
    throw std::invalid_argument("ThroughputTracker: floor must be positive");
  }
}

void ThroughputTracker::report(double tu_mbps) {
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument(
        "ThroughputTracker: throughput must be positive (use report_outage)");
  }
  tracker_update(params_, state_, tu_mbps);
}

void ThroughputTracker::report_outage() {
  // tracker_update treats any non-positive reading as an outage; before any
  // successful measurement there is nothing to decay, so the tracker stays
  // estimate-less rather than inventing a number.
  tracker_update(params_, state_, 0.0);
}

double ThroughputTracker::estimate_mbps() const {
  if (state_.samples == 0) throw std::logic_error("ThroughputTracker: no samples yet");
  return state_.estimate_mbps;
}

}  // namespace lens::runtime
