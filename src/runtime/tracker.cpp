#include "runtime/tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::runtime {

ThroughputTracker::ThroughputTracker(double alpha, double outage_decay, double floor_mbps)
    : alpha_(alpha), outage_decay_(outage_decay), floor_mbps_(floor_mbps) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ThroughputTracker: alpha must be in (0,1]");
  }
  if (outage_decay <= 0.0 || outage_decay > 1.0) {
    throw std::invalid_argument("ThroughputTracker: outage decay must be in (0,1]");
  }
  if (floor_mbps <= 0.0) {
    throw std::invalid_argument("ThroughputTracker: floor must be positive");
  }
}

void ThroughputTracker::report(double tu_mbps) {
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument(
        "ThroughputTracker: throughput must be positive (use report_outage)");
  }
  estimate_ = samples_ == 0 ? tu_mbps : alpha_ * tu_mbps + (1.0 - alpha_) * estimate_;
  ++samples_;
}

void ThroughputTracker::report_outage() {
  ++outages_;
  // Before any successful measurement there is nothing to decay: the
  // tracker stays estimate-less rather than inventing a number.
  if (samples_ == 0) return;
  estimate_ = std::max(floor_mbps_, estimate_ * outage_decay_);
}

double ThroughputTracker::estimate_mbps() const {
  if (samples_ == 0) throw std::logic_error("ThroughputTracker: no samples yet");
  return estimate_;
}

}  // namespace lens::runtime
