#pragma once
// Dynamic deployment switching (paper Fig. 5 and §V-C).
//
// A DynamicDeployer holds the deployment options of one deployed model and
// their cost-vs-throughput curves for the metric being optimized. At
// runtime it picks the cheapest option for the tracked throughput (O(1) per
// decision via precomputed dominance intervals). Trace playback accumulates
// per-inference cost over a throughput trace for dynamic vs fixed policies,
// regenerating Fig. 8.
//
// Degraded links are handled by a FallbackPolicy rather than a blind clamp:
// outage samples (tu <= 0) either price-select at the analyzed pessimistic
// floor or hold the tracker's last estimate with geometric decay
// (suppressing needless re-staging across brief fades), and a cloud that is
// unreachable altogether forces the cheapest edge-only option.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "runtime/threshold.hpp"
#include "runtime/tracker.hpp"

namespace lens::runtime {

/// How the runtime degrades when the link or the cloud misbehaves.
struct FallbackPolicy {
  enum class OnOutage {
    kPessimisticFloor,  ///< select as if tu == tu_min (worst analyzed state)
    kHoldLast,          ///< keep the tracker's decayed last estimate
  };
  OnOutage on_outage = OnOutage::kPessimisticFloor;
  /// Per-outage-sample decay of the held estimate under kHoldLast (the
  /// tracker's outage_decay; 1.0 = hold-last exactly).
  double hold_decay = 0.5;
};

/// Cumulative cost of a playback run.
struct PlaybackResult {
  double total_cost = 0.0;                 ///< ms or mJ, per the metric
  std::vector<double> per_sample_cost;     ///< one inference per trace sample
  std::vector<double> cumulative_cost;     ///< running sum
  std::vector<std::size_t> chosen_option;  ///< option index per sample
  /// Trace samples with non-positive throughput (link outages); they are
  /// priced at the analyzed tu_min instead of aborting the playback (the
  /// FallbackPolicy only governs option *selection* during the episode).
  std::size_t outages = 0;
  /// Degradation accounting: option changes between consecutive samples
  /// (each switch re-stages model weights) and the fraction of samples
  /// spent in outage.
  std::size_t option_switches = 0;
  double degraded_fraction = 0.0;
};

/// Stateless select core: index of the cheapest option at throughput `tu`
/// (already clamped positive), via the precomputed dominance intervals.
/// Outside the analyzed range the nearest end's winner wins. The object
/// API (DynamicDeployer::select) is a thin wrapper over this.
inline std::size_t select_option(std::span<const DominanceInterval> intervals,
                                 double tu) {
  for (const DominanceInterval& iv : intervals) {
    if (tu >= iv.tu_low && tu < iv.tu_high) return iv.option_index;
  }
  return tu < intervals.front().tu_low ? intervals.front().option_index
                                       : intervals.back().option_index;
}

/// Stateless hysteresis core: keep `current` unless the cheapest option
/// beats it by more than `margin` (relative). Bit-identical to
/// DynamicDeployer::select_with_hysteresis on the same curves/intervals.
inline std::size_t select_option_hysteresis(std::span<const DominanceInterval> intervals,
                                            std::span<const CostCurve> curves, double tu,
                                            std::size_t current, double margin) {
  const std::size_t cheapest = select_option(intervals, tu);
  if (cheapest == current) return current;
  const double current_cost = curves[current].value(tu);
  const double cheapest_cost = curves[cheapest].value(tu);
  return cheapest_cost < current_cost * (1.0 - margin) ? cheapest : current;
}

/// SoA batch form of the hysteresis rule: for each device i, clamp a
/// non-positive tu_mbps[i] (outage) to tu_min, then update
/// current_option[i] in place per select_option_hysteresis. The scalar core
/// is the frozen oracle (EXPECT_EQ bit-identity tests).
void select_batch(std::span<const DominanceInterval> intervals,
                  std::span<const CostCurve> curves, double tu_min, double margin,
                  std::span<const double> tu_mbps,
                  std::span<std::uint32_t> current_option);

/// Runtime option selector for one model.
class DynamicDeployer {
 public:
  /// `options` are the deployment options considered at runtime (typically
  /// the design-time best plus All-Edge and/or All-Cloud, as in §V-C).
  DynamicDeployer(std::vector<core::DeploymentOption> options, const comm::CommModel& comm,
                  OptimizeFor metric, double tu_min = 0.05, double tu_max = 1000.0);

  /// All options of a compiled plan, with the cost curves taken straight
  /// from the plan (no re-derivation of the comm algebra).
  DynamicDeployer(const core::DeploymentPlan& plan, OptimizeFor metric,
                  double tu_min = 0.05, double tu_max = 1000.0);

  /// K-tier plan with the hops past the radio pinned at `hop_tu_mbps[h]`
  /// (full per-hop vector; entry 0 — the radio — stays the selection axis
  /// and its value is ignored). At K=2 this is exactly the plan ctor above.
  DynamicDeployer(const core::DeploymentPlan& plan, OptimizeFor metric,
                  const std::vector<double>& hop_tu_mbps, double tu_min = 0.05,
                  double tu_max = 1000.0);

  /// Index (into options()) of the cheapest option at `tu_mbps`. A
  /// non-positive throughput (link outage) is clamped to the analyzed
  /// tu_min — the most pessimistic state the threshold analysis covers.
  std::size_t select(double tu_mbps) const;

  /// Hysteretic selection: keep `current` unless the cheapest option beats
  /// it by more than `margin` (relative, e.g. 0.05 = 5%). Suppresses option
  /// flapping when the throughput hovers around a threshold; model weights
  /// must be re-staged on every switch, so flapping has a real cost.
  std::size_t select_with_hysteresis(double tu_mbps, std::size_t current,
                                     double margin = 0.05) const;

  /// Batched hysteresis over SoA device spans (see the free select_batch):
  /// current_option[i] is updated in place from reading tu_mbps[i], with the
  /// deployer's own intervals/curves/tu_min.
  void select_batch(std::span<const double> tu_mbps,
                    std::span<std::uint32_t> current_option,
                    double margin = 0.05) const;

  /// Cheapest edge-only option (tx_bytes == 0) under the metric, if the
  /// option set has one. Edge-only costs are throughput-independent, so
  /// this is precomputed once.
  std::optional<std::size_t> cheapest_edge_only() const { return edge_only_; }

  /// Forced all-edge selection for when the cloud is unreachable (every
  /// transmitting option would only time out). Throws std::logic_error
  /// when the option set has no edge-only member.
  std::size_t select_cloud_unreachable() const;

  /// Cheapest option whose layers all live on tiers 0..max_tier (so it uses
  /// no hop >= max_tier), ranked at the analyzed pessimistic floor tu_min.
  /// max_tier 0 is the edge-only query.
  std::optional<std::size_t> cheapest_confined(std::size_t max_tier) const;

  /// Tier-ladder fallback: hop `down_hop` is unreachable, so walk down the
  /// hierarchy — first the cheapest option confined to tiers 0..down_hop,
  /// then 0..down_hop-1, ... down to edge-only. Throws std::logic_error when
  /// even the edge-only rung is missing. select_cloud_unreachable() is the
  /// hop-0 rung of this ladder.
  std::size_t select_hop_unreachable(std::size_t down_hop) const;

  /// Thresholds partitioning the throughput axis (design-time output the
  /// runtime switcher consults).
  const std::vector<DominanceInterval>& intervals() const { return intervals_; }

  const std::vector<core::DeploymentOption>& options() const { return options_; }
  const std::vector<CostCurve>& curves() const { return curves_; }
  OptimizeFor metric() const { return metric_; }

  /// Play a trace switching dynamically via a throughput tracker.
  /// `hysteresis_margin` > 0 applies select_with_hysteresis per sample.
  /// Outage samples (tu <= 0) feed the tracker's report_outage() and select
  /// per `fallback` (floor vs decayed hold-last).
  PlaybackResult play_dynamic(const comm::ThroughputTrace& trace,
                              double tracker_alpha = 0.7,
                              double hysteresis_margin = 0.0,
                              FallbackPolicy fallback = {}) const;

  /// Play a trace pinned to one option.
  PlaybackResult play_fixed(const comm::ThroughputTrace& trace,
                            std::size_t option_index) const;

 private:
  /// Point-query outage clamp: non-positive throughput prices as tu_min_.
  double effective_tu(double tu_mbps) const { return tu_mbps > 0.0 ? tu_mbps : tu_min_; }
  void find_edge_only();

  std::vector<core::DeploymentOption> options_;
  std::vector<CostCurve> curves_;
  std::vector<DominanceInterval> intervals_;
  std::optional<std::size_t> edge_only_;
  OptimizeFor metric_;
  double tu_min_ = 0.05;
};

}  // namespace lens::runtime
