#pragma once
// Dynamic deployment switching (paper Fig. 5 and §V-C).
//
// A DynamicDeployer holds the deployment options of one deployed model and
// their cost-vs-throughput curves for the metric being optimized. At
// runtime it picks the cheapest option for the tracked throughput (O(1) per
// decision via precomputed dominance intervals). Trace playback accumulates
// per-inference cost over a throughput trace for dynamic vs fixed policies,
// regenerating Fig. 8.

#include <cstddef>
#include <vector>

#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "runtime/threshold.hpp"
#include "runtime/tracker.hpp"

namespace lens::runtime {

/// Cumulative cost of a playback run.
struct PlaybackResult {
  double total_cost = 0.0;                 ///< ms or mJ, per the metric
  std::vector<double> per_sample_cost;     ///< one inference per trace sample
  std::vector<double> cumulative_cost;     ///< running sum
  std::vector<std::size_t> chosen_option;  ///< option index per sample
  /// Trace samples with non-positive throughput (link outages); they are
  /// priced at the analyzed tu_min instead of aborting the playback.
  std::size_t outages = 0;
};

/// Runtime option selector for one model.
class DynamicDeployer {
 public:
  /// `options` are the deployment options considered at runtime (typically
  /// the design-time best plus All-Edge and/or All-Cloud, as in §V-C).
  DynamicDeployer(std::vector<core::DeploymentOption> options, const comm::CommModel& comm,
                  OptimizeFor metric, double tu_min = 0.05, double tu_max = 1000.0);

  /// All options of a compiled plan, with the cost curves taken straight
  /// from the plan (no re-derivation of the comm algebra).
  DynamicDeployer(const core::DeploymentPlan& plan, OptimizeFor metric,
                  double tu_min = 0.05, double tu_max = 1000.0);

  /// Index (into options()) of the cheapest option at `tu_mbps`. A
  /// non-positive throughput (link outage) is clamped to the analyzed
  /// tu_min — the most pessimistic state the threshold analysis covers.
  std::size_t select(double tu_mbps) const;

  /// Hysteretic selection: keep `current` unless the cheapest option beats
  /// it by more than `margin` (relative, e.g. 0.05 = 5%). Suppresses option
  /// flapping when the throughput hovers around a threshold; model weights
  /// must be re-staged on every switch, so flapping has a real cost.
  std::size_t select_with_hysteresis(double tu_mbps, std::size_t current,
                                     double margin = 0.05) const;

  /// Thresholds partitioning the throughput axis (design-time output the
  /// runtime switcher consults).
  const std::vector<DominanceInterval>& intervals() const { return intervals_; }

  const std::vector<core::DeploymentOption>& options() const { return options_; }
  const std::vector<CostCurve>& curves() const { return curves_; }
  OptimizeFor metric() const { return metric_; }

  /// Play a trace switching dynamically via a throughput tracker.
  /// `hysteresis_margin` > 0 applies select_with_hysteresis per sample.
  PlaybackResult play_dynamic(const comm::ThroughputTrace& trace,
                              double tracker_alpha = 0.7,
                              double hysteresis_margin = 0.0) const;

  /// Play a trace pinned to one option.
  PlaybackResult play_fixed(const comm::ThroughputTrace& trace,
                            std::size_t option_index) const;

 private:
  /// Outage policy: non-positive throughput prices as tu_min_.
  double effective_tu(double tu_mbps) const { return tu_mbps > 0.0 ? tu_mbps : tu_min_; }

  std::vector<core::DeploymentOption> options_;
  std::vector<CostCurve> curves_;
  std::vector<DominanceInterval> intervals_;
  OptimizeFor metric_;
  double tu_min_ = 0.05;
};

}  // namespace lens::runtime
