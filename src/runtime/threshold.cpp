#include "runtime/threshold.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lens::runtime {

double CostCurve::value(double tu_mbps) const {
  if (tu_mbps <= 0.0) throw std::invalid_argument("CostCurve: throughput must be positive");
  return constant + per_inverse_tu / tu_mbps;
}

CostCurve latency_curve(const core::DeploymentOption& option, const comm::CommModel& comm) {
  CostCurve c;
  c.constant = option.edge_latency_ms + option.cloud_latency_ms;
  if (option.tx_bytes > 0) {
    c.constant += comm.round_trip_ms();
    // L_Tx = bits / (t_u * 1e3) ms.
    c.per_inverse_tu = static_cast<double>(option.tx_bytes) * 8.0 / 1e3;
  }
  return c;
}

CostCurve energy_curve(const core::DeploymentOption& option, const comm::CommModel& comm) {
  CostCurve c;
  c.constant = option.edge_energy_mj;
  if (option.tx_bytes > 0) {
    const double megabits = static_cast<double>(option.tx_bytes) * 8.0 / 1e6;
    const comm::RadioPowerModel& p = comm.power_model();
    // E_Tx = (alpha t_u + beta) * Mb / t_u = alpha*Mb + beta*Mb / t_u [mJ].
    c.constant += p.alpha_mw_per_mbps * megabits;
    c.per_inverse_tu = p.beta_mw * megabits;
  }
  return c;
}

CostCurve cost_curve(const core::DeploymentOption& option, const comm::CommModel& comm,
                     OptimizeFor metric) {
  return metric == OptimizeFor::kLatency ? latency_curve(option, comm)
                                         : energy_curve(option, comm);
}

std::optional<double> crossover_tu(const CostCurve& a, const CostCurve& b) {
  const double d_const = a.constant - b.constant;
  const double d_slope = b.per_inverse_tu - a.per_inverse_tu;
  if (std::abs(d_const) < 1e-15 || std::abs(d_slope) < 1e-15) return std::nullopt;
  const double tu = d_slope / d_const;
  if (tu <= 0.0 || !std::isfinite(tu)) return std::nullopt;
  return tu;
}

std::vector<DominanceInterval> dominance_intervals(const std::vector<CostCurve>& curves,
                                                   double tu_min, double tu_max) {
  if (curves.empty()) throw std::invalid_argument("dominance_intervals: no curves");
  if (!(tu_min > 0.0) || !(tu_max > tu_min)) {
    throw std::invalid_argument("dominance_intervals: bad throughput range");
  }
  // Breakpoints: all pairwise crossings inside the range.
  std::vector<double> edges = {tu_min, tu_max};
  for (std::size_t i = 0; i < curves.size(); ++i) {
    for (std::size_t j = i + 1; j < curves.size(); ++j) {
      if (const auto tu = crossover_tu(curves[i], curves[j])) {
        if (*tu > tu_min && *tu < tu_max) edges.push_back(*tu);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](double a, double b) { return std::abs(a - b) < 1e-12; }),
              edges.end());

  auto best_at = [&](double tu) {
    std::size_t best = 0;
    double best_value = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < curves.size(); ++i) {
      const double v = curves[i].value(tu);
      if (v < best_value) {
        best_value = v;
        best = i;
      }
    }
    return best;
  };

  std::vector<DominanceInterval> intervals;
  for (std::size_t e = 0; e + 1 < edges.size(); ++e) {
    // Geometric midpoint: robust for hyperbolic curves across decades.
    const double mid = std::sqrt(edges[e] * edges[e + 1]);
    const std::size_t winner = best_at(mid);
    if (!intervals.empty() && intervals.back().option_index == winner) {
      intervals.back().tu_high = edges[e + 1];  // merge
    } else {
      intervals.push_back({winner, edges[e], edges[e + 1]});
    }
  }
  return intervals;
}

}  // namespace lens::runtime
