#include "runtime/threshold.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lens::runtime {

// The comm cost algebra is owned by comm::CommModel; these helpers only add
// the option's throughput-free edge/cloud constants on top.

CostCurve latency_curve(const core::DeploymentOption& option, const comm::CommModel& comm) {
  CostCurve c;
  c.constant = option.edge_latency_ms + option.cloud_latency_ms;
  if (option.tx_bytes > 0) {
    const CostCurve tx = comm.comm_latency_curve(option.tx_bytes);
    c.constant += tx.constant;
    c.per_inverse_tu = tx.per_inverse_tu;
  }
  return c;
}

CostCurve energy_curve(const core::DeploymentOption& option, const comm::CommModel& comm) {
  CostCurve c;
  c.constant = option.edge_energy_mj;
  if (option.tx_bytes > 0) {
    const CostCurve tx = comm.tx_energy_curve(option.tx_bytes);
    c.constant += tx.constant;
    c.per_inverse_tu = tx.per_inverse_tu;
  }
  return c;
}

CostCurve cost_curve(const core::DeploymentOption& option, const comm::CommModel& comm,
                     OptimizeFor metric) {
  return metric == OptimizeFor::kLatency ? latency_curve(option, comm)
                                         : energy_curve(option, comm);
}

std::optional<double> crossover_tu(const CostCurve& a, const CostCurve& b) {
  const double d_const = a.constant - b.constant;
  const double d_slope = b.per_inverse_tu - a.per_inverse_tu;
  // Degeneracy is relative to the coefficient magnitudes: an absolute
  // epsilon would miss crossings between large-valued curves (their
  // difference is legitimately big on an absolute scale) and fabricate
  // crossings between near-identical ones.
  const double const_scale = std::max(std::abs(a.constant), std::abs(b.constant));
  const double slope_scale = std::max(std::abs(a.per_inverse_tu), std::abs(b.per_inverse_tu));
  constexpr double kRelEps = 1e-12;
  if (std::abs(d_const) <= kRelEps * const_scale) return std::nullopt;
  if (std::abs(d_slope) <= kRelEps * slope_scale) return std::nullopt;
  const double tu = d_slope / d_const;
  if (tu <= 0.0 || !std::isfinite(tu)) return std::nullopt;
  return tu;
}

std::vector<DominanceInterval> dominance_intervals(const std::vector<CostCurve>& curves,
                                                   double tu_min, double tu_max) {
  if (curves.empty()) throw std::invalid_argument("dominance_intervals: no curves");
  if (!(tu_min > 0.0) || !(tu_max > tu_min)) {
    throw std::invalid_argument("dominance_intervals: bad throughput range");
  }
  // Breakpoints: all pairwise crossings inside the range.
  std::vector<double> edges = {tu_min, tu_max};
  for (std::size_t i = 0; i < curves.size(); ++i) {
    for (std::size_t j = i + 1; j < curves.size(); ++j) {
      if (const auto tu = crossover_tu(curves[i], curves[j])) {
        if (*tu > tu_min && *tu < tu_max) edges.push_back(*tu);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  // Merge breakpoints that coincide up to relative rounding error. All
  // edges are positive and sorted, so (b - a) <= eps * b is a symmetric-
  // enough relative test; an absolute epsilon would glue together distinct
  // crossings in the multi-hundred-Mbps regime and keep duplicates apart
  // in the sub-kbps one.
  constexpr double kRelDedup = 1e-9;
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](double a, double b) {
                            return std::abs(b - a) <= kRelDedup * std::max(a, b);
                          }),
              edges.end());

  auto best_at = [&](double tu) {
    std::size_t best = 0;
    double best_value = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < curves.size(); ++i) {
      const double v = curves[i].value(tu);
      if (v < best_value) {
        best_value = v;
        best = i;
      }
    }
    return best;
  };

  std::vector<DominanceInterval> intervals;
  for (std::size_t e = 0; e + 1 < edges.size(); ++e) {
    // Geometric midpoint: robust for hyperbolic curves across decades.
    const double mid = std::sqrt(edges[e] * edges[e + 1]);
    const std::size_t winner = best_at(mid);
    if (!intervals.empty() && intervals.back().option_index == winner) {
      intervals.back().tu_high = edges[e + 1];  // merge
    } else {
      intervals.push_back({winner, edges[e], edges[e + 1]});
    }
  }
  return intervals;
}

std::vector<CostCurve> collapse_curves(const std::vector<comm::MultiHopCurve>& surfaces,
                                       std::size_t free_hop,
                                       const std::vector<double>& fixed_tu_mbps) {
  std::vector<CostCurve> curves;
  curves.reserve(surfaces.size());
  for (const comm::MultiHopCurve& surface : surfaces) {
    curves.push_back(surface.collapse(free_hop, fixed_tu_mbps));
  }
  return curves;
}

std::optional<double> crossover_tu_hop(const comm::MultiHopCurve& a,
                                       const comm::MultiHopCurve& b, std::size_t free_hop,
                                       const std::vector<double>& fixed_tu_mbps) {
  return crossover_tu(a.collapse(free_hop, fixed_tu_mbps),
                      b.collapse(free_hop, fixed_tu_mbps));
}

std::size_t SwitchingSurface::select(double tu0_mbps, double tu1_mbps) const {
  if (rows.empty()) throw std::logic_error("SwitchingSurface: empty surface");
  // Nearest backhaul grid row in log space (the grid is log-spaced).
  const double tu1 = std::min(std::max(tu1_mbps, backhaul_tus_mbps.front()),
                              backhaul_tus_mbps.back());
  std::size_t row = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < backhaul_tus_mbps.size(); ++i) {
    const double distance = std::abs(std::log(tu1) - std::log(backhaul_tus_mbps[i]));
    if (distance < best_distance) {
      best_distance = distance;
      row = i;
    }
  }
  const std::vector<DominanceInterval>& intervals = rows[row];
  for (const DominanceInterval& iv : intervals) {
    if (tu0_mbps >= iv.tu_low && tu0_mbps < iv.tu_high) return iv.option_index;
  }
  return tu0_mbps < intervals.front().tu_low ? intervals.front().option_index
                                             : intervals.back().option_index;
}

SwitchingSurface switching_surface(const std::vector<comm::MultiHopCurve>& surfaces,
                                   double tu0_min, double tu0_max, double tu1_min,
                                   double tu1_max, std::size_t num_rows) {
  if (surfaces.empty()) throw std::invalid_argument("switching_surface: no surfaces");
  for (const comm::MultiHopCurve& surface : surfaces) {
    if (surface.num_hops() != 2) {
      throw std::invalid_argument("switching_surface: expected two-hop surfaces");
    }
  }
  if (!(tu1_min > 0.0) || !(tu1_max > tu1_min)) {
    throw std::invalid_argument("switching_surface: bad backhaul throughput range");
  }
  if (num_rows < 2) throw std::invalid_argument("switching_surface: need >= 2 rows");

  SwitchingSurface out;
  out.backhaul_tus_mbps.reserve(num_rows);
  out.rows.reserve(num_rows);
  const double log_lo = std::log(tu1_min);
  const double log_hi = std::log(tu1_max);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const double frac = static_cast<double>(r) / static_cast<double>(num_rows - 1);
    const double tu1 = std::exp(log_lo + (log_hi - log_lo) * frac);
    out.backhaul_tus_mbps.push_back(tu1);
    out.rows.push_back(
        dominance_intervals(collapse_curves(surfaces, 0, {1.0, tu1}), tu0_min, tu0_max));
  }
  return out;
}

}  // namespace lens::runtime
