#pragma once
// Runtime threshold analysis (paper §IV-E).
//
// For a fixed deployment option, both end-to-end metrics are hyperbolic in
// the upload throughput t_u:
//   latency(t_u) = [edge_latency + L_RT*1{tx}] + bits / (1000 t_u)
//   energy(t_u)  = [edge_energy + alpha*bits/1e6] + beta*bits / (1e6 t_u)
// (the energy constant absorbs the alpha*t_u term of the radio power model,
// since P*L_Tx = (alpha t_u + beta) * bits/(1e6 t_u)). Every pairwise
// crossover therefore has a closed form, and the t_u axis partitions into
// dominance intervals — the thresholds the on-device tracker switches on.

#include <cstddef>
#include <optional>
#include <vector>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"

namespace lens::runtime {

/// Which metric the runtime system optimizes when switching options.
enum class OptimizeFor { kLatency, kEnergy };

/// f(t_u) = constant + per_inverse_tu / t_u. The closed-form comm algebra
/// lives in comm::CommModel (comm_latency_curve / tx_energy_curve); compiled
/// core::DeploymentPlans carry one curve pair per option, so runtime
/// consumers normally take curves straight from the plan.
using CostCurve = comm::CostCurve;

/// Cost-vs-throughput curve of a deployment option for the latency metric.
/// For options from a compiled plan, prefer DeploymentPlan::latency_curves().
CostCurve latency_curve(const core::DeploymentOption& option, const comm::CommModel& comm);

/// Cost-vs-throughput curve for the (edge) energy metric.
CostCurve energy_curve(const core::DeploymentOption& option, const comm::CommModel& comm);

/// Metric-dispatching convenience.
CostCurve cost_curve(const core::DeploymentOption& option, const comm::CommModel& comm,
                     OptimizeFor metric);

/// Throughput at which two curves cross, if a crossing exists at positive
/// finite throughput (paper: "equating their respective accumulative
/// latency equations").
std::optional<double> crossover_tu(const CostCurve& a, const CostCurve& b);

/// One maximal throughput interval over which a single option is best.
struct DominanceInterval {
  std::size_t option_index = 0;
  double tu_low = 0.0;   ///< inclusive
  double tu_high = 0.0;  ///< exclusive; tu_max at the right edge
};

/// Partition [tu_min, tu_max] into dominance intervals of the given curves.
/// Throws when curves is empty or the range is degenerate.
std::vector<DominanceInterval> dominance_intervals(const std::vector<CostCurve>& curves,
                                                   double tu_min, double tu_max);

// --- K-tier (per-hop) threshold machinery -------------------------------
//
// A K-tier deployment option costs constant + sum_h slope_h / t_h over the
// per-hop throughput vector (comm::MultiHopCurve). Fixing every hop but one
// collapses the surface onto the familiar 1-D hyperbola, so crossovers and
// dominance intervals in any single hop reuse the machinery above verbatim.

/// Collapse per-option multi-hop surfaces into 1-D curves in hop `free_hop`,
/// with every other hop pinned at `fixed_tu_mbps[h]` (full per-hop vector;
/// the free entry is ignored).
std::vector<CostCurve> collapse_curves(const std::vector<comm::MultiHopCurve>& surfaces,
                                       std::size_t free_hop,
                                       const std::vector<double>& fixed_tu_mbps);

/// Throughput in hop `free_hop` at which two surfaces cross, with the other
/// hops pinned at `fixed_tu_mbps`.
std::optional<double> crossover_tu_hop(const comm::MultiHopCurve& a,
                                       const comm::MultiHopCurve& b, std::size_t free_hop,
                                       const std::vector<double>& fixed_tu_mbps);

/// Per-hop switching surface for two-hop (3-tier edge-fog-cloud)
/// hierarchies: dominance intervals over the radio throughput t_0,
/// conditioned on a log-spaced grid of backhaul throughputs t_1. Each row is
/// an ordinary 1-D switching table; select() snaps the observed backhaul to
/// the nearest grid row (log distance) and does the usual interval lookup.
struct SwitchingSurface {
  std::vector<double> backhaul_tus_mbps;             ///< grid, ascending
  std::vector<std::vector<DominanceInterval>> rows;  ///< rows[i]: intervals at grid i

  /// Option index to use at (t_0, t_1); clamps outside the analyzed ranges.
  /// Throws std::logic_error on an empty surface.
  std::size_t select(double tu0_mbps, double tu1_mbps) const;
};

/// Build a SwitchingSurface for two-hop option surfaces over
/// [tu0_min, tu0_max] x [tu1_min, tu1_max] with `num_rows` >= 2 backhaul
/// grid rows. Throws std::invalid_argument on empty surfaces, non-two-hop
/// surfaces, or degenerate ranges.
SwitchingSurface switching_surface(const std::vector<comm::MultiHopCurve>& surfaces,
                                   double tu0_min, double tu0_max, double tu1_min,
                                   double tu1_max, std::size_t num_rows);

}  // namespace lens::runtime
