#pragma once
// Runtime threshold analysis (paper §IV-E).
//
// For a fixed deployment option, both end-to-end metrics are hyperbolic in
// the upload throughput t_u:
//   latency(t_u) = [edge_latency + L_RT*1{tx}] + bits / (1000 t_u)
//   energy(t_u)  = [edge_energy + alpha*bits/1e6] + beta*bits / (1e6 t_u)
// (the energy constant absorbs the alpha*t_u term of the radio power model,
// since P*L_Tx = (alpha t_u + beta) * bits/(1e6 t_u)). Every pairwise
// crossover therefore has a closed form, and the t_u axis partitions into
// dominance intervals — the thresholds the on-device tracker switches on.

#include <cstddef>
#include <optional>
#include <vector>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"

namespace lens::runtime {

/// Which metric the runtime system optimizes when switching options.
enum class OptimizeFor { kLatency, kEnergy };

/// f(t_u) = constant + per_inverse_tu / t_u. The closed-form comm algebra
/// lives in comm::CommModel (comm_latency_curve / tx_energy_curve); compiled
/// core::DeploymentPlans carry one curve pair per option, so runtime
/// consumers normally take curves straight from the plan.
using CostCurve = comm::CostCurve;

/// Cost-vs-throughput curve of a deployment option for the latency metric.
/// For options from a compiled plan, prefer DeploymentPlan::latency_curves().
CostCurve latency_curve(const core::DeploymentOption& option, const comm::CommModel& comm);

/// Cost-vs-throughput curve for the (edge) energy metric.
CostCurve energy_curve(const core::DeploymentOption& option, const comm::CommModel& comm);

/// Metric-dispatching convenience.
CostCurve cost_curve(const core::DeploymentOption& option, const comm::CommModel& comm,
                     OptimizeFor metric);

/// Throughput at which two curves cross, if a crossing exists at positive
/// finite throughput (paper: "equating their respective accumulative
/// latency equations").
std::optional<double> crossover_tu(const CostCurve& a, const CostCurve& b);

/// One maximal throughput interval over which a single option is best.
struct DominanceInterval {
  std::size_t option_index = 0;
  double tu_low = 0.0;   ///< inclusive
  double tu_high = 0.0;  ///< exclusive; tu_max at the right edge
};

/// Partition [tu_min, tu_max] into dominance intervals of the given curves.
/// Throws when curves is empty or the range is degenerate.
std::vector<DominanceInterval> dominance_intervals(const std::vector<CostCurve>& curves,
                                                   double tu_min, double tu_max);

}  // namespace lens::runtime
