#pragma once
// Online upload-throughput tracker (the "throughput tracker" of Fig. 5):
// an exponentially-weighted moving average over reported measurements, the
// O(1) runtime component that drives deployment-option switching.
//
// Link outages are first-class: real traces contain non-positive readings
// (probe failures, deep fades), and feeding them to report() is a caller
// bug — it throws. report_outage() is the sanctioned path: it decays the
// held estimate geometrically toward a floor (hold-last-with-decay), so an
// outage episode degrades the estimate smoothly instead of killing the
// runtime loop or silently skipping samples.
//
// Batched form: the update rule itself is a pure function of (params,
// state, reading) — tracker_update() — and tracker_update_batch() applies
// it across structure-of-arrays spans of per-device state, which is how the
// fleet simulator advances a million trackers per timestep without a
// million object calls. ThroughputTracker is a thin wrapper over the same
// core (frozen-reference tests pin wrapper == core bit-for-bit).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

namespace lens::runtime {

/// EWMA/outage-decay knobs shared by every tracker of a fleet.
/// `alpha` in (0,1]: weight of the newest sample (1 = trust latest fully).
/// `outage_decay` in (0,1]: per-outage-sample multiplier applied to the
/// held estimate (1 = hold-last exactly). `floor_mbps` > 0: the estimate
/// never decays below this.
struct TrackerParams {
  double alpha = 0.7;
  double outage_decay = 0.5;
  double floor_mbps = 0.05;
};

/// Per-device tracker state, SoA-friendly (plain scalars, no invariants a
/// zero-initialized block would violate).
struct TrackerState {
  double estimate_mbps = 0.0;
  std::uint32_t samples = 0;  ///< successful reports folded in
  std::uint32_t outages = 0;  ///< outage readings recorded
};

/// The whole tracker update rule: a positive reading is folded into the
/// EWMA (first report seeds it), a non-positive reading is an outage that
/// decays the held estimate geometrically toward the floor (and is a no-op
/// on the estimate before any successful report — the tracker stays
/// estimate-less rather than inventing a number).
inline void tracker_update(const TrackerParams& params, TrackerState& state,
                           double tu_mbps) {
  if (tu_mbps > 0.0) {
    state.estimate_mbps = state.samples == 0
                              ? tu_mbps
                              : params.alpha * tu_mbps +
                                    (1.0 - params.alpha) * state.estimate_mbps;
    ++state.samples;
  } else {
    ++state.outages;
    if (state.samples == 0) return;
    state.estimate_mbps =
        std::max(params.floor_mbps, state.estimate_mbps * params.outage_decay);
  }
}

/// SoA batch update: estimate/samples/outages are parallel per-device
/// arrays, tu_mbps the per-device readings (non-positive = outage).
/// Bit-identical to calling tracker_update() per index — the scalar core is
/// the frozen oracle.
void tracker_update_batch(const TrackerParams& params, std::span<double> estimate_mbps,
                          std::span<std::uint32_t> samples,
                          std::span<std::uint32_t> outages,
                          std::span<const double> tu_mbps);

/// EWMA throughput estimator with an outage decay policy (object form; a
/// validated thin wrapper over tracker_update).
class ThroughputTracker {
 public:
  explicit ThroughputTracker(double alpha = 0.7, double outage_decay = 0.5,
                             double floor_mbps = 0.05);

  /// Fold in a new measurement (Mbps). Throws on non-positive values —
  /// report an outage via report_outage() instead.
  void report(double tu_mbps);

  /// Record a link-outage reading: decays the held estimate by
  /// outage_decay (clamped to floor_mbps). Before any successful report
  /// the tracker stays estimate-less (has_estimate() == false).
  void report_outage();

  /// Current estimate. Throws std::logic_error before the first report.
  double estimate_mbps() const;

  bool has_estimate() const { return state_.samples > 0; }
  std::size_t samples() const { return state_.samples; }
  /// Outage readings recorded so far (report_outage calls).
  std::size_t outages() const { return state_.outages; }

 private:
  TrackerParams params_;
  TrackerState state_;
};

}  // namespace lens::runtime
