#pragma once
// Online upload-throughput tracker (the "throughput tracker" of Fig. 5):
// an exponentially-weighted moving average over reported measurements, the
// O(1) runtime component that drives deployment-option switching.
//
// Link outages are first-class: real traces contain non-positive readings
// (probe failures, deep fades), and feeding them to report() is a caller
// bug — it throws. report_outage() is the sanctioned path: it decays the
// held estimate geometrically toward a floor (hold-last-with-decay), so an
// outage episode degrades the estimate smoothly instead of killing the
// runtime loop or silently skipping samples.

#include <cstddef>

namespace lens::runtime {

/// EWMA throughput estimator with an outage decay policy.
class ThroughputTracker {
 public:
  /// `alpha` in (0,1]: weight of the newest sample (1 = trust latest fully).
  /// `outage_decay` in (0,1]: per-outage-sample multiplier applied to the
  /// held estimate (1 = hold-last exactly). `floor_mbps` > 0: the estimate
  /// never decays below this.
  explicit ThroughputTracker(double alpha = 0.7, double outage_decay = 0.5,
                             double floor_mbps = 0.05);

  /// Fold in a new measurement (Mbps). Throws on non-positive values —
  /// report an outage via report_outage() instead.
  void report(double tu_mbps);

  /// Record a link-outage reading: decays the held estimate by
  /// outage_decay (clamped to floor_mbps). Before any successful report
  /// the tracker stays estimate-less (has_estimate() == false).
  void report_outage();

  /// Current estimate. Throws std::logic_error before the first report.
  double estimate_mbps() const;

  bool has_estimate() const { return samples_ > 0; }
  std::size_t samples() const { return samples_; }
  /// Outage readings recorded so far (report_outage calls).
  std::size_t outages() const { return outages_; }

 private:
  double alpha_;
  double outage_decay_;
  double floor_mbps_;
  double estimate_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t outages_ = 0;
};

}  // namespace lens::runtime
