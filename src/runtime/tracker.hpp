#pragma once
// Online upload-throughput tracker (the "throughput tracker" of Fig. 5):
// an exponentially-weighted moving average over reported measurements, the
// O(1) runtime component that drives deployment-option switching.

#include <cstddef>

namespace lens::runtime {

/// EWMA throughput estimator.
class ThroughputTracker {
 public:
  /// `alpha` in (0,1]: weight of the newest sample (1 = trust latest fully).
  explicit ThroughputTracker(double alpha = 0.7);

  /// Fold in a new measurement (Mbps). Throws on non-positive values.
  void report(double tu_mbps);

  /// Current estimate. Throws std::logic_error before the first report.
  double estimate_mbps() const;

  bool has_estimate() const { return samples_ > 0; }
  std::size_t samples() const { return samples_; }

 private:
  double alpha_;
  double estimate_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace lens::runtime
