#pragma once
// Persistence for runtime switching tables.
//
// The threshold analysis runs at design time (paper §IV-E); its output — the
// dominance intervals over t_u — is what actually ships to the edge device
// for the O(1) runtime switcher. These helpers serialize that table to a
// small text file and load it back.

#include <string>
#include <vector>

#include "runtime/threshold.hpp"

namespace lens::runtime {

/// A serializable switching table: option labels plus their dominance
/// intervals over the throughput axis.
struct SwitchingTable {
  OptimizeFor metric = OptimizeFor::kLatency;
  std::vector<std::string> option_labels;
  std::vector<DominanceInterval> intervals;

  /// Option index to use at `tu_mbps` (clamps outside the analyzed range).
  /// Throws std::logic_error on an empty table.
  std::size_t select(double tu_mbps) const;
};

/// Write the table to `path`. Throws std::runtime_error on I/O failure.
void save_switching_table(const SwitchingTable& table, const std::string& path);

/// Load a table saved by save_switching_table. Throws std::runtime_error /
/// std::invalid_argument on bad files.
SwitchingTable load_switching_table(const std::string& path);

}  // namespace lens::runtime
