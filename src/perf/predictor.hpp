#pragma once
// Per-layer performance prediction models (paper §IV-C).
//
// Algorithm 1 calls L_Predict / P_Predict through the LayerPerformanceModel
// interface. Two implementations:
//  - SimulatorOracle: queries the ground-truth simulator directly (ideal
//    predictors; used in tests and upper-bound studies).
//  - RegressionPredictor: the paper's actual pipeline — per-layer-type ridge
//    regression models trained on profiling datasets, with Neurosurgeon-
//    style engineered features. Latency is fit in log space (it spans four
//    orders of magnitude); power is fit linearly.

#include <map>
#include <vector>

#include "dnn/layer.hpp"
#include "ml/features.hpp"
#include "ml/ridge.hpp"
#include "ml/roofline.hpp"
#include "perf/profiler.hpp"
#include "perf/simulator.hpp"

namespace lens::perf {

/// Interface Algorithm 1 uses to estimate a layer's on-device cost.
class LayerPerformanceModel {
 public:
  virtual ~LayerPerformanceModel() = default;

  /// Estimated latency (ms) and average power (mW) of one layer.
  virtual LayerMeasurement predict(const dnn::LayerSpec& layer,
                                   const dnn::TensorShape& input) const = 0;
};

/// Ideal predictor: returns the simulator's ground truth.
class SimulatorOracle final : public LayerPerformanceModel {
 public:
  explicit SimulatorOracle(DeviceSimulator simulator) : simulator_(std::move(simulator)) {}

  LayerMeasurement predict(const dnn::LayerSpec& layer,
                           const dnn::TensorShape& input) const override {
    return simulator_.measure(layer, input);
  }

  const DeviceSimulator& simulator() const { return simulator_; }

 private:
  DeviceSimulator simulator_;
};

/// Engineered feature vector for a (layer, input) pair; shared by training
/// and inference so the two can never drift apart.
std::vector<double> layer_features(const dnn::LayerSpec& layer, const dnn::TensorShape& input);

/// Held-out quality of one layer-kind's models.
struct PredictorValidation {
  double latency_r2 = 0.0;
  double power_r2 = 0.0;
  double latency_mape = 0.0;  ///< %
  double power_mape = 0.0;    ///< %
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
};

/// Trained per-layer-type regression predictor.
class RegressionPredictor final : public LayerPerformanceModel {
 public:
  /// Profile the device (simulator stands in for the physical board), fit
  /// one latency + one power model per layer kind, and record held-out
  /// validation metrics.
  static RegressionPredictor train(const DeviceSimulator& simulator,
                                   ProfilerConfig config = {});

  LayerMeasurement predict(const dnn::LayerSpec& layer,
                           const dnn::TensorShape& input) const override;

  /// Held-out metrics per layer kind (R^2, MAPE).
  const std::map<dnn::LayerKind, PredictorValidation>& validation() const {
    return validation_;
  }

 private:
  struct KindModels {
    ml::FeatureScaler scaler;
    ml::RidgeRegression log_latency;
    ml::RidgeRegression power;
  };

  std::map<dnn::LayerKind, KindModels> models_;
  std::map<dnn::LayerKind, PredictorValidation> validation_;
};

/// Roofline-family predictor: per layer kind, latency is fit with the
/// two-branch RooflineRegression over (FLOPs, moved bytes) and power with a
/// per-branch level (compute-bound vs memory-bound draw). This is the
/// recommended predictor — it matches the physics of batch-1 inference and
/// reaches held-out R^2 well above the plain ridge-on-log-features model
/// (kept above as an ablation baseline).
class RooflinePredictor final : public LayerPerformanceModel {
 public:
  /// Profile the device and fit per-kind roofline + power-level models.
  static RooflinePredictor train(const DeviceSimulator& simulator, ProfilerConfig config = {});

  LayerMeasurement predict(const dnn::LayerSpec& layer,
                           const dnn::TensorShape& input) const override;

  const std::map<dnn::LayerKind, PredictorValidation>& validation() const {
    return validation_;
  }

  /// Persist the trained models to a small text file (profile once on the
  /// target board, ship the predictor with the app). Throws
  /// std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Load a predictor saved by save(). Validation metrics are not persisted
  /// (validation() is empty on a loaded predictor). Throws
  /// std::runtime_error / std::invalid_argument on bad files.
  static RooflinePredictor load(const std::string& path);

 private:
  struct KindModels {
    ml::RooflineRegression latency;
    double compute_bound_power_mw = 0.0;
    double memory_bound_power_mw = 0.0;
  };

  std::map<dnn::LayerKind, KindModels> models_;
  std::map<dnn::LayerKind, PredictorValidation> validation_;
};

}  // namespace lens::perf
