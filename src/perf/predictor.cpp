#include "perf/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "par/substream.hpp"

namespace lens::perf {

std::vector<double> layer_features(const dnn::LayerSpec& layer,
                                   const dnn::TensorShape& input) {
  const dnn::TensorShape out = dnn::output_shape(layer, input);
  const double flops = static_cast<double>(dnn::layer_flops(layer, input));
  const double params = static_cast<double>(dnn::layer_params(layer, input));
  const double in_elems = static_cast<double>(input.elements());
  const double out_elems = static_cast<double>(out.elements());
  const double moved = 4.0 * (params + in_elems + out_elems);

  // Shared log-domain magnitude features plus per-kind structural features.
  std::vector<double> f = {
      ml::log1p_feature(flops),
      ml::log1p_feature(moved),
      ml::log1p_feature(in_elems),
      ml::log1p_feature(out_elems),
      ml::log1p_feature(params),
  };
  switch (layer.kind) {
    case dnn::LayerKind::kConv:
      f.push_back(static_cast<double>(layer.kernel));
      f.push_back(static_cast<double>(layer.stride));
      f.push_back(static_cast<double>(layer.filters) / 100.0);
      f.push_back(static_cast<double>(input.channels) / 100.0);
      break;
    case dnn::LayerKind::kMaxPool:
      f.push_back(static_cast<double>(layer.kernel));
      f.push_back(static_cast<double>(layer.stride));
      break;
    case dnn::LayerKind::kDense:
      f.push_back(static_cast<double>(layer.units) / 1000.0);
      break;
  }
  return f;
}

RegressionPredictor RegressionPredictor::train(const DeviceSimulator& simulator,
                                               ProfilerConfig config) {
  RegressionPredictor predictor;
  LayerProfiler profiler(simulator, config);
  // Named substream of the profiler seed (splitmix64-mixed — see
  // par/substream.hpp; xor-ing a small salt yields correlated streams).
  std::mt19937_64 split_rng(par::substream_seed(config.seed, 0x5eedULL));

  for (dnn::LayerKind kind :
       {dnn::LayerKind::kConv, dnn::LayerKind::kMaxPool, dnn::LayerKind::kDense}) {
    const std::vector<ProfiledSample> samples = profiler.profile_kind(kind);

    ml::Dataset log_latency;
    ml::Dataset power;
    for (const ProfiledSample& s : samples) {
      std::vector<double> f = layer_features(s.layer, s.input);
      log_latency.add(f, std::log(s.measurement.latency_ms));
      power.add(std::move(f), s.measurement.power_mw);
    }
    auto [lat_train, lat_test] = ml::train_test_split(log_latency, 0.25, split_rng);
    // Reuse the same split indices would be ideal; an independent split of
    // the power dataset is statistically equivalent here.
    auto [pow_train, pow_test] = ml::train_test_split(power, 0.25, split_rng);

    KindModels models;
    models.scaler.fit(lat_train.x);
    models.log_latency.fit(models.scaler.transform(lat_train.x), lat_train.y);
    models.power.fit(models.scaler.transform(pow_train.x), pow_train.y);

    PredictorValidation v;
    v.train_samples = lat_train.size();
    v.test_samples = lat_test.size();
    {
      const std::vector<double> pred =
          models.log_latency.predict(models.scaler.transform(lat_test.x));
      std::vector<double> pred_ms(pred.size());
      std::vector<double> true_ms(pred.size());
      for (std::size_t i = 0; i < pred.size(); ++i) {
        pred_ms[i] = std::exp(pred[i]);
        true_ms[i] = std::exp(lat_test.y[i]);
      }
      v.latency_r2 = ml::r2_score(true_ms, pred_ms);
      v.latency_mape = ml::mape(true_ms, pred_ms);
    }
    {
      const std::vector<double> pred =
          models.power.predict(models.scaler.transform(pow_test.x));
      v.power_r2 = ml::r2_score(pow_test.y, pred);
      v.power_mape = ml::mape(pow_test.y, pred);
    }
    predictor.models_.emplace(kind, std::move(models));
    predictor.validation_.emplace(kind, v);
  }
  return predictor;
}

RooflinePredictor RooflinePredictor::train(const DeviceSimulator& simulator,
                                           ProfilerConfig config) {
  RooflinePredictor predictor;
  LayerProfiler profiler(simulator, config);
  std::mt19937_64 split_rng(par::substream_seed(config.seed, 0x0f10ULL));

  for (dnn::LayerKind kind :
       {dnn::LayerKind::kConv, dnn::LayerKind::kMaxPool, dnn::LayerKind::kDense}) {
    const std::vector<ProfiledSample> samples = profiler.profile_kind(kind);

    // Random hold-out split over sample indices.
    std::vector<std::size_t> order(samples.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), split_rng);
    const std::size_t test_count = samples.size() / 4;

    std::vector<double> train_flops, train_bytes, train_latency;
    std::vector<const ProfiledSample*> train_samples, test_samples;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const ProfiledSample& s = samples[order[i]];
      if (i < test_count) {
        test_samples.push_back(&s);
      } else {
        train_samples.push_back(&s);
        train_flops.push_back(static_cast<double>(dnn::layer_flops(s.layer, s.input)));
        train_bytes.push_back(static_cast<double>(simulator.bytes_touched(s.layer, s.input)));
        train_latency.push_back(s.measurement.latency_ms);
      }
    }

    KindModels models;
    models.latency.fit(train_flops, train_bytes, train_latency);

    // Power levels: mean measured power per latency-model branch.
    double compute_sum = 0.0, memory_sum = 0.0, all_sum = 0.0;
    std::size_t compute_count = 0, memory_count = 0;
    for (const ProfiledSample* s : train_samples) {
      const double f = static_cast<double>(dnn::layer_flops(s->layer, s->input));
      const double b = static_cast<double>(simulator.bytes_touched(s->layer, s->input));
      all_sum += s->measurement.power_mw;
      if (models.latency.compute_bound(f, b)) {
        compute_sum += s->measurement.power_mw;
        ++compute_count;
      } else {
        memory_sum += s->measurement.power_mw;
        ++memory_count;
      }
    }
    const double global_mean = all_sum / static_cast<double>(train_samples.size());
    models.compute_bound_power_mw =
        compute_count > 0 ? compute_sum / static_cast<double>(compute_count) : global_mean;
    models.memory_bound_power_mw =
        memory_count > 0 ? memory_sum / static_cast<double>(memory_count) : global_mean;

    // Held-out validation.
    PredictorValidation v;
    v.train_samples = train_samples.size();
    v.test_samples = test_samples.size();
    std::vector<double> lat_true, lat_pred, pow_true, pow_pred;
    for (const ProfiledSample* s : test_samples) {
      const double f = static_cast<double>(dnn::layer_flops(s->layer, s->input));
      const double b = static_cast<double>(simulator.bytes_touched(s->layer, s->input));
      lat_true.push_back(s->measurement.latency_ms);
      lat_pred.push_back(models.latency.predict(f, b));
      pow_true.push_back(s->measurement.power_mw);
      pow_pred.push_back(models.latency.compute_bound(f, b) ? models.compute_bound_power_mw
                                                            : models.memory_bound_power_mw);
    }
    v.latency_r2 = ml::r2_score(lat_true, lat_pred);
    v.latency_mape = ml::mape(lat_true, lat_pred);
    v.power_r2 = ml::r2_score(pow_true, pow_pred);
    v.power_mape = ml::mape(pow_true, pow_pred);

    predictor.models_.emplace(kind, std::move(models));
    predictor.validation_.emplace(kind, v);
  }
  return predictor;
}

namespace {
constexpr const char* kPredictorMagic = "lens-roofline-predictor v1";

std::string kind_tag(dnn::LayerKind kind) { return dnn::kind_name(kind); }

dnn::LayerKind kind_from_tag(const std::string& tag) {
  if (tag == "conv") return dnn::LayerKind::kConv;
  if (tag == "pool") return dnn::LayerKind::kMaxPool;
  if (tag == "fc") return dnn::LayerKind::kDense;
  throw std::invalid_argument("RooflinePredictor::load: unknown layer kind '" + tag + "'");
}
}  // namespace

void RooflinePredictor::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("RooflinePredictor::save: cannot open " + path);
  out << kPredictorMagic << "\n" << std::setprecision(17);
  for (const auto& [kind, m] : models_) {
    out << kind_tag(kind) << ' ' << m.latency.compute_rate() << ' '
        << m.latency.memory_rate() << ' ' << m.latency.overhead() << ' '
        << m.compute_bound_power_mw << ' ' << m.memory_bound_power_mw << "\n";
  }
  if (!out) throw std::runtime_error("RooflinePredictor::save: write failed for " + path);
}

RooflinePredictor RooflinePredictor::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("RooflinePredictor::load: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kPredictorMagic) {
    throw std::invalid_argument("RooflinePredictor::load: bad header in " + path);
  }
  RooflinePredictor predictor;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string tag;
    double compute_rate = 0.0;
    double memory_rate = 0.0;
    double overhead = 0.0;
    KindModels models;
    if (!(row >> tag >> compute_rate >> memory_rate >> overhead >>
          models.compute_bound_power_mw >> models.memory_bound_power_mw)) {
      throw std::invalid_argument("RooflinePredictor::load: malformed row: " + line);
    }
    models.latency = ml::RooflineRegression::from_params(compute_rate, memory_rate, overhead);
    predictor.models_.emplace(kind_from_tag(tag), std::move(models));
  }
  if (predictor.models_.empty()) {
    throw std::invalid_argument("RooflinePredictor::load: no models in " + path);
  }
  return predictor;
}

LayerMeasurement RooflinePredictor::predict(const dnn::LayerSpec& layer,
                                            const dnn::TensorShape& input) const {
  const auto it = models_.find(layer.kind);
  if (it == models_.end()) {
    throw std::logic_error("RooflinePredictor: no model for layer kind");
  }
  const KindModels& m = it->second;
  const double f = static_cast<double>(dnn::layer_flops(layer, input));
  // bytes_touched without a simulator instance: weights + in + out, fp32 —
  // same formula DeviceSimulator::bytes_touched uses.
  const dnn::TensorShape out = dnn::output_shape(layer, input);
  const double b = 4.0 * (static_cast<double>(dnn::layer_params(layer, input)) +
                          static_cast<double>(input.elements()) +
                          static_cast<double>(out.elements()));
  LayerMeasurement result;
  result.latency_ms = m.latency.predict(f, b);
  result.power_mw =
      m.latency.compute_bound(f, b) ? m.compute_bound_power_mw : m.memory_bound_power_mw;
  return result;
}

LayerMeasurement RegressionPredictor::predict(const dnn::LayerSpec& layer,
                                              const dnn::TensorShape& input) const {
  const auto it = models_.find(layer.kind);
  if (it == models_.end()) {
    throw std::logic_error("RegressionPredictor: no model for layer kind");
  }
  const KindModels& m = it->second;
  const std::vector<double> f = m.scaler.transform(layer_features(layer, input));
  LayerMeasurement out;
  out.latency_ms = std::exp(m.log_latency.predict(f));
  out.power_mw = std::max(0.0, m.power.predict(f));
  return out;
}

}  // namespace lens::perf
