#pragma once
// Ground-truth per-layer latency / power "measurement" source.
//
// Substitutes the physical Jetson TX2 + Caffe timing + INA3221 power rails
// of the paper (see DESIGN.md substitution table). The model is a roofline:
//   t = max(flops / rate_compute, bytes_touched / rate_memory) + overhead
// with layer-family-specific effective rates and a deterministic
// multiplicative jitter seeded by the layer configuration, so repeated
// "measurements" of the same layer agree (like averaging real runs) while
// different layers de-correlate from any clean analytic form — giving the
// downstream regression models something honest to learn.

#include <cstdint>

#include "dnn/layer.hpp"
#include "perf/device.hpp"

namespace lens::perf {

/// One simulated measurement.
struct LayerMeasurement {
  double latency_ms = 0.0;
  double power_mw = 0.0;

  double energy_mj() const { return power_mw * latency_ms / 1e3; }
};

/// Roofline device simulator for a fixed DeviceProfile.
class DeviceSimulator {
 public:
  explicit DeviceSimulator(DeviceProfile profile);

  /// Measure one layer applied to `input`. Throws (via shape algebra) when
  /// the layer is inapplicable.
  LayerMeasurement measure(const dnn::LayerSpec& layer, const dnn::TensorShape& input) const;

  /// Total bytes the layer moves: weights + input activation + output
  /// activation, all fp32.
  std::uint64_t bytes_touched(const dnn::LayerSpec& layer,
                              const dnn::TensorShape& input) const;

  const DeviceProfile& profile() const { return profile_; }

 private:
  /// Deterministic jitter factor in [1-a, 1+a] derived from the layer
  /// configuration hash; `salt` decorrelates latency from power jitter.
  double jitter(const dnn::LayerSpec& layer, const dnn::TensorShape& input,
                std::uint64_t salt) const;

  DeviceProfile profile_;
};

}  // namespace lens::perf
