#pragma once
// Edge-device performance profiles.
//
// A DeviceProfile parameterizes the roofline-style ground-truth simulator
// that substitutes for the physical Jetson TX2 (see DESIGN.md). Rates are
// *effective* (achieved by a Caffe-class framework at batch 1), not peaks.
//
// Calibration targets (AlexNet, 224x224x3):
//   TX2 GPU : ~2.15 GFLOP of conv at ~140 GFLOP/s -> ~15 ms; 234 MB of FC
//             weights at ~15.6 GB/s -> ~15 ms. FC share ~50 % (paper Fig. 1).
//   TX2 CPU : conv ~21 GFLOP/s -> ~100 ms; FC streaming ~0.8 GB/s -> ~290 ms
//             (unblocked GEMV path). These magnitudes reproduce the
//             deployment-preference flips of paper Fig. 2 / Table I.

#include <string>

namespace lens::perf {

/// Which compute engine of the board runs inference.
enum class ComputeMode { kGpu, kCpu };

/// Effective execution-rate and power profile for one device configuration.
struct DeviceProfile {
  std::string name;
  ComputeMode mode = ComputeMode::kGpu;

  // Effective compute rates (GFLOP/s) by layer family.
  double conv_gflops = 140.0;
  double dense_gflops = 140.0;
  double pool_gflops = 60.0;

  // Effective memory-streaming rates (GB/s) by layer family.
  double conv_bandwidth_gbps = 25.0;
  double dense_bandwidth_gbps = 15.6;
  double pool_bandwidth_gbps = 25.0;

  /// Fixed per-layer dispatch overhead (kernel launch / op setup), ms.
  double layer_overhead_ms = 0.1;

  // Board power draw (mW) attributable to inference while a layer runs,
  // depending on whether the layer is compute- or memory-bound.
  double compute_bound_power_mw = 11000.0;
  double memory_bound_power_mw = 8000.0;

  /// Multiplicative measurement-noise amplitude of the simulator (e.g. 0.03
  /// = +/-3 % jitter). Deterministic per layer configuration.
  double noise_amplitude = 0.03;
};

/// NVIDIA Jetson TX2 class device, GPU (Pascal, fp32, batch 1).
DeviceProfile jetson_tx2_gpu();

/// NVIDIA Jetson TX2 class device, CPU backend.
DeviceProfile jetson_tx2_cpu();

/// Datacenter-class GPU (V100-era, batch 1): used to model finite cloud
/// compute when the paper's "cloud latency is negligible" assumption is
/// itself under study. Power numbers are irrelevant to LENS (cloud energy
/// is not billed to the edge) but kept plausible.
DeviceProfile datacenter_gpu();

/// Raspberry-Pi-class CPU: a much weaker edge device for sensitivity
/// studies (the deployment crossovers shift strongly cloud-ward).
DeviceProfile embedded_cpu();

}  // namespace lens::perf
