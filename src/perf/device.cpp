#include "perf/device.hpp"

namespace lens::perf {

DeviceProfile jetson_tx2_gpu() {
  DeviceProfile p;
  p.name = "jetson-tx2-gpu";
  p.mode = ComputeMode::kGpu;
  p.conv_gflops = 140.0;
  p.dense_gflops = 140.0;
  p.pool_gflops = 60.0;
  p.conv_bandwidth_gbps = 25.0;
  p.dense_bandwidth_gbps = 15.6;
  p.pool_bandwidth_gbps = 25.0;
  p.layer_overhead_ms = 0.1;
  p.compute_bound_power_mw = 11000.0;
  p.memory_bound_power_mw = 8000.0;
  return p;
}

DeviceProfile datacenter_gpu() {
  DeviceProfile p;
  p.name = "datacenter-gpu";
  p.mode = ComputeMode::kGpu;
  p.conv_gflops = 4000.0;
  p.dense_gflops = 4000.0;
  p.pool_gflops = 1500.0;
  p.conv_bandwidth_gbps = 500.0;
  p.dense_bandwidth_gbps = 350.0;
  p.pool_bandwidth_gbps = 500.0;
  p.layer_overhead_ms = 0.03;
  p.compute_bound_power_mw = 250000.0;
  p.memory_bound_power_mw = 180000.0;
  return p;
}

DeviceProfile embedded_cpu() {
  DeviceProfile p;
  p.name = "embedded-cpu";
  p.mode = ComputeMode::kCpu;
  p.conv_gflops = 4.0;
  p.dense_gflops = 4.0;
  p.pool_gflops = 2.0;
  p.conv_bandwidth_gbps = 1.5;
  p.dense_bandwidth_gbps = 0.4;
  p.pool_bandwidth_gbps = 1.0;
  p.layer_overhead_ms = 0.05;
  p.compute_bound_power_mw = 3200.0;
  p.memory_bound_power_mw = 2000.0;
  return p;
}

DeviceProfile jetson_tx2_cpu() {
  DeviceProfile p;
  p.name = "jetson-tx2-cpu";
  p.mode = ComputeMode::kCpu;
  p.conv_gflops = 21.0;
  p.dense_gflops = 21.0;
  p.pool_gflops = 8.0;
  p.conv_bandwidth_gbps = 4.0;
  p.dense_bandwidth_gbps = 0.8;  // unblocked GEMV weight streaming
  p.pool_bandwidth_gbps = 2.0;
  p.layer_overhead_ms = 0.02;
  p.compute_bound_power_mw = 5500.0;
  p.memory_bound_power_mw = 3000.0;
  return p;
}

}  // namespace lens::perf
