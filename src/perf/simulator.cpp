#include "perf/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace lens::perf {

namespace {

/// splitmix64: cheap, well-mixed integer hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_config(const dnn::LayerSpec& layer, const dnn::TensorShape& input,
                          std::uint64_t salt) {
  std::uint64_t h = salt;
  h = mix(h ^ static_cast<std::uint64_t>(layer.kind));
  h = mix(h ^ static_cast<std::uint64_t>(layer.filters));
  h = mix(h ^ static_cast<std::uint64_t>(layer.kernel));
  h = mix(h ^ static_cast<std::uint64_t>(layer.stride));
  h = mix(h ^ static_cast<std::uint64_t>(layer.padding));
  h = mix(h ^ static_cast<std::uint64_t>(layer.units));
  h = mix(h ^ static_cast<std::uint64_t>(input.height));
  h = mix(h ^ static_cast<std::uint64_t>(input.width));
  h = mix(h ^ static_cast<std::uint64_t>(input.channels));
  return h;
}

std::pair<double, double> rates_for(const DeviceProfile& p, dnn::LayerKind kind) {
  switch (kind) {
    case dnn::LayerKind::kConv: return {p.conv_gflops, p.conv_bandwidth_gbps};
    case dnn::LayerKind::kMaxPool: return {p.pool_gflops, p.pool_bandwidth_gbps};
    case dnn::LayerKind::kDense: return {p.dense_gflops, p.dense_bandwidth_gbps};
  }
  throw std::logic_error("rates_for: unknown LayerKind");
}

}  // namespace

DeviceSimulator::DeviceSimulator(DeviceProfile profile) : profile_(std::move(profile)) {}

std::uint64_t DeviceSimulator::bytes_touched(const dnn::LayerSpec& layer,
                                             const dnn::TensorShape& input) const {
  const dnn::TensorShape out = dnn::output_shape(layer, input);
  const std::uint64_t weights = dnn::layer_params(layer, input);
  const auto in_elems = static_cast<std::uint64_t>(input.elements());
  const auto out_elems = static_cast<std::uint64_t>(out.elements());
  return 4ULL * (weights + in_elems + out_elems);
}

double DeviceSimulator::jitter(const dnn::LayerSpec& layer, const dnn::TensorShape& input,
                               std::uint64_t salt) const {
  const std::uint64_t h = hash_config(layer, input, salt);
  // Map to [-1, 1) then scale by the noise amplitude.
  const double unit = (static_cast<double>(h >> 11) / 9007199254740992.0) * 2.0 - 1.0;
  return 1.0 + profile_.noise_amplitude * unit;
}

LayerMeasurement DeviceSimulator::measure(const dnn::LayerSpec& layer,
                                          const dnn::TensorShape& input) const {
  const auto [gflops, bandwidth_gbps] = rates_for(profile_, layer.kind);
  const double flops = static_cast<double>(dnn::layer_flops(layer, input));
  const double bytes = static_cast<double>(bytes_touched(layer, input));

  const double compute_ms = flops / (gflops * 1e6);        // GFLOP/s = 1e6 FLOP/ms
  const double memory_ms = bytes / (bandwidth_gbps * 1e6); // GB/s = 1e6 B/ms
  const bool compute_bound = compute_ms >= memory_ms;

  LayerMeasurement m;
  m.latency_ms = (std::max(compute_ms, memory_ms) + profile_.layer_overhead_ms) *
                 jitter(layer, input, 0x1a7e);
  const double busy_power =
      compute_bound ? profile_.compute_bound_power_mw : profile_.memory_bound_power_mw;
  m.power_mw = busy_power * jitter(layer, input, 0x90e2);
  return m;
}

}  // namespace lens::perf
