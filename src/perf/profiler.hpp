#pragma once
// Profiling sweeps: sample random layer configurations per layer kind,
// "measure" them on the device simulator, and emit regression datasets
// (paper §IV-C: "different combinations of both layer parameters and
// input/output feature map sizes are evaluated and used to construct
// datasets for training the prediction models").

#include <random>
#include <utility>
#include <vector>

#include "dnn/layer.hpp"
#include "ml/metrics.hpp"
#include "perf/simulator.hpp"

namespace lens::perf {

struct ProfilerConfig {
  std::size_t samples_per_kind = 500;
  unsigned seed = 11;
};

/// One profiled configuration: the layer, its input, and the measurement.
struct ProfiledSample {
  dnn::LayerSpec layer;
  dnn::TensorShape input;
  LayerMeasurement measurement;
};

/// Generates profiling sweeps over the layer-configuration space.
class LayerProfiler {
 public:
  LayerProfiler(const DeviceSimulator& simulator, ProfilerConfig config = {});

  /// Sample `config.samples_per_kind` valid random configurations of `kind`
  /// and measure each.
  std::vector<ProfiledSample> profile_kind(dnn::LayerKind kind);

  /// Draw one random valid configuration of `kind` (exposed for tests).
  std::pair<dnn::LayerSpec, dnn::TensorShape> random_config(dnn::LayerKind kind);

 private:
  const DeviceSimulator& simulator_;
  ProfilerConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace lens::perf
