#include "perf/profiler.hpp"

#include <stdexcept>

#include "par/parallel.hpp"

namespace lens::perf {

LayerProfiler::LayerProfiler(const DeviceSimulator& simulator, ProfilerConfig config)
    : simulator_(simulator), config_(config), rng_(config.seed) {
  if (config.samples_per_kind == 0) {
    throw std::invalid_argument("LayerProfiler: samples_per_kind must be positive");
  }
}

std::pair<dnn::LayerSpec, dnn::TensorShape> LayerProfiler::random_config(dnn::LayerKind kind) {
  auto pick = [&](std::initializer_list<int> values) {
    std::uniform_int_distribution<std::size_t> d(0, values.size() - 1);
    return *(values.begin() + d(rng_));
  };
  switch (kind) {
    case dnn::LayerKind::kConv: {
      for (;;) {
        const int size = pick({7, 14, 28, 32, 56, 64, 112, 128, 224});
        const int channels = pick({3, 16, 24, 36, 64, 96, 128, 256, 384, 512});
        const int kernel = pick({1, 3, 5, 7, 11});
        const int stride = pick({1, 2, 4});
        const int filters = pick({16, 24, 36, 64, 96, 128, 256, 384, 512});
        if (size + kernel < kernel + kernel) continue;  // unreachable guard
        const dnn::TensorShape input{size, size, channels};
        const dnn::LayerSpec layer = dnn::LayerSpec::conv(filters, kernel, stride);
        try {
          dnn::output_shape(layer, input);
          return {layer, input};
        } catch (const std::invalid_argument&) {
          continue;  // window larger than input etc.; redraw
        }
      }
    }
    case dnn::LayerKind::kMaxPool: {
      for (;;) {
        const int size = pick({6, 7, 13, 14, 27, 28, 55, 56, 112, 224});
        const int channels = pick({16, 24, 36, 64, 96, 128, 256, 384, 512});
        const int kernel = pick({2, 3});
        const int stride = pick({1, 2});
        const dnn::TensorShape input{size, size, channels};
        const dnn::LayerSpec layer = dnn::LayerSpec::max_pool(kernel, stride);
        try {
          dnn::output_shape(layer, input);
          return {layer, input};
        } catch (const std::invalid_argument&) {
          continue;
        }
      }
    }
    case dnn::LayerKind::kDense: {
      const int in_elems = pick({256, 512, 1024, 2048, 4096, 6400, 9216, 18432, 36864});
      const int units = pick({64, 128, 256, 512, 1024, 2048, 4096, 8192});
      const dnn::TensorShape input{1, 1, in_elems};
      return {dnn::LayerSpec::dense(units), input};
    }
  }
  throw std::logic_error("LayerProfiler::random_config: unknown LayerKind");
}

std::vector<ProfiledSample> LayerProfiler::profile_kind(dnn::LayerKind kind) {
  // Configuration sampling consumes the profiler RNG and must stay serial;
  // the simulated measurements are pure per configuration and fan out over
  // the pool, written back in draw order.
  std::vector<std::pair<dnn::LayerSpec, dnn::TensorShape>> configs;
  configs.reserve(config_.samples_per_kind);
  for (std::size_t i = 0; i < config_.samples_per_kind; ++i) {
    configs.push_back(random_config(kind));
  }
  const std::vector<LayerMeasurement> measurements =
      par::parallel_map(configs.size(), [&](std::size_t i) {
        return simulator_.measure(configs[i].first, configs[i].second);
      });
  std::vector<ProfiledSample> samples;
  samples.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    samples.push_back({configs[i].first, configs[i].second, measurements[i]});
  }
  return samples;
}

}  // namespace lens::perf
