#pragma once
// Per-channel batch normalization (NHWC; statistics over N*H*W).

#include "nn/layer.hpp"

namespace lens::nn {

class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(int channels, float momentum = 0.1f, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "batchnorm"; }

  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }

 private:
  int channels_;
  float momentum_, epsilon_;
  ParamTensor gamma_;  ///< scale, initialized to 1
  ParamTensor beta_;   ///< shift, initialized to 0
  std::vector<float> running_mean_;
  std::vector<float> running_var_;

  // Backward caches (training mode).
  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;
  int cached_count_ = 0;  ///< N*H*W of the last training batch
};

}  // namespace lens::nn
