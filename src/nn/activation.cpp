#include "nn/activation.hpp"

#include <stdexcept>

namespace lens::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  n_ = input.n();
  h_ = input.h();
  w_ = input.w();
  c_ = input.c();
  Tensor output = input;
  mask_.assign(input.size(), false);
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output.storage()[i] > 0.0f) {
      mask_[i] = true;
    } else {
      output.storage()[i] = 0.0f;
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (mask_.empty()) throw std::logic_error("ReLU::backward before forward");
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (!mask_[i]) grad_input.storage()[i] = 0.0f;
  }
  return grad_input;
}

}  // namespace lens::nn
