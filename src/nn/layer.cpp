#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::nn {

void he_init(std::vector<float>& weights, std::size_t fan_in, std::mt19937_64& rng) {
  if (fan_in == 0) throw std::invalid_argument("he_init: zero fan-in");
  std::normal_distribution<float> gauss(0.0f,
                                        std::sqrt(2.0f / static_cast<float>(fan_in)));
  for (float& w : weights) w = gauss(rng);
}

}  // namespace lens::nn
