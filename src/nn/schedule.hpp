#pragma once
// Learning-rate schedules for the training substrate.

#include <cstddef>

namespace lens::nn {

/// Interface: learning rate as a function of the 0-based epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double learning_rate(std::size_t epoch) const = 0;
};

/// Constant rate.
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double rate);
  double learning_rate(std::size_t epoch) const override;

 private:
  double rate_;
};

/// Multiply by `factor` every `period` epochs.
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(double initial, double factor, std::size_t period);
  double learning_rate(std::size_t epoch) const override;

 private:
  double initial_;
  double factor_;
  std::size_t period_;
};

/// Cosine annealing from `initial` to `floor` over `total_epochs`.
class CosineDecayLr final : public LrSchedule {
 public:
  CosineDecayLr(double initial, std::size_t total_epochs, double floor = 0.0);
  double learning_rate(std::size_t epoch) const override;

 private:
  double initial_;
  std::size_t total_epochs_;
  double floor_;
};

}  // namespace lens::nn
