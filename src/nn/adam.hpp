#pragma once
// Adam optimizer (Kingma & Ba) with bias correction and decoupled weight
// decay (AdamW-style).

#include <vector>

#include "nn/layer.hpp"

namespace lens::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<ParamTensor*> parameters, AdamConfig config = {});

  /// Apply one update from accumulated gradients, then zero them.
  void step();

  void zero_grad();
  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }
  std::size_t steps_taken() const { return steps_; }

 private:
  std::vector<ParamTensor*> parameters_;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
  AdamConfig config_;
  std::size_t steps_ = 0;
};

}  // namespace lens::nn
