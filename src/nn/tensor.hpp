#pragma once
// Minimal dense 4-D tensor (NHWC) for the training substrate.

#include <cstddef>
#include <vector>

namespace lens::nn {

/// Batch tensor, NHWC layout, float32.
class Tensor {
 public:
  Tensor() = default;

  /// Allocate an n x h x w x c tensor filled with `fill`.
  Tensor(int n, int h, int w, int c, float fill = 0.0f);

  /// Flat vector view (n x 1 x 1 x c).
  static Tensor flat(int n, int c, float fill = 0.0f) { return Tensor(n, 1, 1, c, fill); }

  int n() const { return n_; }
  int h() const { return h_; }
  int w() const { return w_; }
  int c() const { return c_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Feature count per batch element.
  int features() const { return h_ * w_ * c_; }

  float& at(int n, int h, int w, int c);
  float at(int n, int h, int w, int c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Same storage reinterpreted as n x 1 x 1 x features (no copy of note:
  /// returns a reshaped copy of the header, data is copied — tensors are
  /// value types here and small).
  Tensor reshaped(int n, int h, int w, int c) const;

  void fill(float value);

 private:
  int n_ = 0, h_ = 0, w_ = 0, c_ = 0;
  std::vector<float> data_;
};

}  // namespace lens::nn
