#include "nn/builder.hpp"

#include <memory>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace lens::nn {

Sequential build_network(const dnn::Architecture& arch, std::mt19937_64& rng) {
  Sequential network;
  for (const dnn::LayerInfo& info : arch.layers()) {
    const dnn::LayerSpec& spec = info.spec;
    switch (spec.kind) {
      case dnn::LayerKind::kConv:
        network.add(std::make_unique<Conv2D>(info.input.channels, spec.filters, spec.kernel,
                                             spec.stride, spec.padding, rng));
        if (spec.batch_norm) network.add(std::make_unique<BatchNorm>(spec.filters));
        if (spec.activation == dnn::Activation::kRelu) network.add(std::make_unique<ReLU>());
        break;
      case dnn::LayerKind::kMaxPool:
        network.add(std::make_unique<MaxPool2D>(spec.kernel, spec.stride));
        break;
      case dnn::LayerKind::kDense:
        network.add(std::make_unique<Dense>(static_cast<int>(info.input.elements()),
                                            spec.units, rng));
        if (spec.activation == dnn::Activation::kRelu) network.add(std::make_unique<ReLU>());
        // Softmax is fused into the loss; no layer emitted.
        break;
    }
  }
  return network;
}

}  // namespace lens::nn
