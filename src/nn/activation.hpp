#pragma once
// Element-wise activation layers.

#include "nn/layer.hpp"

namespace lens::nn {

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  std::vector<bool> mask_;  ///< true where input > 0
  int n_ = 0, h_ = 0, w_ = 0, c_ = 0;
};

}  // namespace lens::nn
