#pragma once
// Bridge from the dnn architecture IR to a trainable nn::Sequential.
//
// The search space decodes genotypes into dnn::Architecture (shapes, FLOPs);
// this builder materializes the same stack with trainable layers so a
// candidate can actually be trained (core::TrainedAccuracyEvaluator path).
// The architecture's own input shape is used — construct the SearchSpace
// with a training-sized input (e.g. 16x16x3) for this path.

#include <random>

#include "dnn/architecture.hpp"
#include "nn/network.hpp"

namespace lens::nn {

/// Build a trainable network mirroring `arch`. Conv layers expand to
/// Conv2D [+ BatchNorm] [+ ReLU]; the final softmax activation is omitted
/// (the loss fuses it). Throws when a layer cannot be materialized.
Sequential build_network(const dnn::Architecture& arch, std::mt19937_64& rng);

}  // namespace lens::nn
