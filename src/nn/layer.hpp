#pragma once
// Trainable-layer interface for the from-scratch training substrate.
//
// Layers are stateful: forward() caches whatever backward() needs, so a
// backward() call must always follow the forward() it differentiates.
// Parameters expose (value, grad) pairs the optimizer updates in place.

#include <random>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace lens::nn {

/// A learnable parameter block with its gradient accumulator.
struct ParamTensor {
  std::vector<float> value;
  std::vector<float> grad;

  explicit ParamTensor(std::size_t size = 0) : value(size, 0.0f), grad(size, 0.0f) {}
  void zero_grad() { std::fill(grad.begin(), grad.end(), 0.0f); }
};

/// Base class of all trainable layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` toggles batch-norm statistics updates.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass: gradient w.r.t. this layer's input, given the gradient
  /// w.r.t. its output. Accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for pooling / activations).
  virtual std::vector<ParamTensor*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

/// He-normal initialization for ReLU networks.
void he_init(std::vector<float>& weights, std::size_t fan_in, std::mt19937_64& rng);

}  // namespace lens::nn
