#include "nn/checkpoint.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace lens::nn {

namespace {
constexpr const char* kMagic = "lens-weights v1";
}

void save_weights(Sequential& network, const std::string& path) {
  const std::vector<ParamTensor*> params = network.parameters();
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << kMagic << "\n" << params.size() << "\n" << std::setprecision(9);
    for (const ParamTensor* p : params) {
      out << p->value.size();
      for (float v : p->value) out << ' ' << v;
      out << "\n";
    }
  });
}

void load_weights(Sequential& network, const std::string& path) {
  // Verify the integrity footer before parsing: truncated or corrupted
  // checkpoints are rejected here instead of loading a partial network.
  std::istringstream in(io::read_checked(path));
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::invalid_argument("load_weights: bad header in " + path);
  }
  std::size_t block_count = 0;
  if (!(in >> block_count)) throw std::invalid_argument("load_weights: missing block count");
  const std::vector<ParamTensor*> params = network.parameters();
  if (block_count != params.size()) {
    throw std::invalid_argument("load_weights: parameter block count mismatch");
  }
  for (ParamTensor* p : params) {
    std::size_t size = 0;
    if (!(in >> size) || size != p->value.size()) {
      throw std::invalid_argument("load_weights: parameter block size mismatch");
    }
    for (float& v : p->value) {
      if (!(in >> v)) throw std::invalid_argument("load_weights: truncated weights");
    }
  }
  std::string extra;
  if (in >> extra) {
    throw std::invalid_argument("load_weights: trailing garbage after last block in " +
                                path);
  }
}

}  // namespace lens::nn
