#include "nn/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace lens::nn {

namespace {
constexpr const char* kMagic = "lens-weights v1";
}

void save_weights(Sequential& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  const std::vector<ParamTensor*> params = network.parameters();
  out << kMagic << "\n" << params.size() << "\n" << std::setprecision(9);
  for (const ParamTensor* p : params) {
    out << p->value.size();
    for (float v : p->value) out << ' ' << v;
    out << "\n";
  }
  if (!out) throw std::runtime_error("save_weights: write failed for " + path);
}

void load_weights(Sequential& network, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::invalid_argument("load_weights: bad header in " + path);
  }
  std::size_t block_count = 0;
  if (!(in >> block_count)) throw std::invalid_argument("load_weights: missing block count");
  const std::vector<ParamTensor*> params = network.parameters();
  if (block_count != params.size()) {
    throw std::invalid_argument("load_weights: parameter block count mismatch");
  }
  for (ParamTensor* p : params) {
    std::size_t size = 0;
    if (!(in >> size) || size != p->value.size()) {
      throw std::invalid_argument("load_weights: parameter block size mismatch");
    }
    for (float& v : p->value) {
      if (!(in >> v)) throw std::invalid_argument("load_weights: truncated weights");
    }
  }
}

}  // namespace lens::nn
