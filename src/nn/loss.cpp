#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lens::nn {

Tensor softmax(const Tensor& logits) {
  const int classes = logits.features();
  Tensor probs = logits;
  for (int b = 0; b < logits.n(); ++b) {
    float* row = probs.data() + static_cast<std::size_t>(b) * classes;
    const float peak = *std::max_element(row, row + classes);
    float total = 0.0f;
    for (int k = 0; k < classes; ++k) {
      row[k] = std::exp(row[k] - peak);
      total += row[k];
    }
    for (int k = 0; k < classes; ++k) row[k] /= total;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (static_cast<std::size_t>(logits.n()) != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: batch/label size mismatch");
  }
  const int classes = logits.features();
  LossResult result;
  result.grad_logits = softmax(logits);
  const float inv_batch = 1.0f / static_cast<float>(logits.n());

  for (int b = 0; b < logits.n(); ++b) {
    const int label = labels[static_cast<std::size_t>(b)];
    if (label < 0 || label >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float* row = result.grad_logits.data() + static_cast<std::size_t>(b) * classes;
    const float p = std::max(row[label], 1e-12f);
    result.mean_loss += -std::log(p);
    const int predicted =
        static_cast<int>(std::max_element(row, row + classes) - row);
    if (predicted == label) ++result.correct;
    // grad = (softmax - onehot) / batch
    row[label] -= 1.0f;
    for (int k = 0; k < classes; ++k) row[k] *= inv_batch;
  }
  result.mean_loss /= static_cast<double>(logits.n());
  return result;
}

}  // namespace lens::nn
