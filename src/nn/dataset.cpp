#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lens::nn {

ShapeSet::ShapeSet(ShapeSetConfig config) : config_(config), rng_(config.seed) {
  if (config.image_size < 8) throw std::invalid_argument("ShapeSet: image too small");
  if (config.num_classes < 2 || config.num_classes > 10) {
    throw std::invalid_argument("ShapeSet: num_classes must be in [2,10]");
  }
}

void ShapeSet::render(Tensor& images, int index, int label) {
  const int s = config_.image_size;
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::normal_distribution<float> noise(0.0f, config_.noise_std);

  // Random foreground/background colors, kept apart for contrast.
  float fg[3];
  float bg[3];
  for (int c = 0; c < 3; ++c) {
    fg[c] = 0.6f + 0.4f * unit(rng_);
    bg[c] = 0.4f * unit(rng_);
  }
  const int period = 2 + static_cast<int>(unit(rng_) * 3.0f);  // stripes/checker
  const int phase = static_cast<int>(unit(rng_) * static_cast<float>(period));
  const float cx = (0.3f + 0.4f * unit(rng_)) * static_cast<float>(s);
  const float cy = (0.3f + 0.4f * unit(rng_)) * static_cast<float>(s);
  const float radius = (0.2f + 0.15f * unit(rng_)) * static_cast<float>(s);
  const float angle = unit(rng_) * 6.2831853f;
  const float dir_x = std::cos(angle);
  const float dir_y = std::sin(angle);

  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      bool on = false;
      float blend = -1.0f;  // >=0: continuous value instead of binary
      switch (label) {
        case 0: on = ((y + phase) / period) % 2 == 0; break;                    // h-stripes
        case 1: on = ((x + phase) / period) % 2 == 0; break;                    // v-stripes
        case 2: on = ((x + y + phase) / period) % 2 == 0; break;                // diagonal
        case 3: on = (((x + phase) / period) + ((y + phase) / period)) % 2 == 0; break;
        case 4: {  // disc
          const float dx = static_cast<float>(x) - cx;
          const float dy = static_cast<float>(y) - cy;
          on = dx * dx + dy * dy <= radius * radius;
          break;
        }
        case 5: {  // hollow frame
          const int margin = 1 + period / 2;
          const bool outer = x >= margin && x < s - margin && y >= margin && y < s - margin;
          const bool inner = x >= 2 * margin && x < s - 2 * margin && y >= 2 * margin &&
                             y < s - 2 * margin;
          on = outer && !inner;
          break;
        }
        case 6: {  // cross
          const int half_width = 1 + period / 2;
          on = std::abs(x - static_cast<int>(cx)) < half_width ||
               std::abs(y - static_cast<int>(cy)) < half_width;
          break;
        }
        case 7: {  // linear gradient along a random direction
          const float t = (dir_x * static_cast<float>(x) + dir_y * static_cast<float>(y)) /
                          static_cast<float>(s);
          blend = 0.5f + 0.5f * std::tanh(2.0f * t);
          break;
        }
        case 8: {  // sparse dots on a regular-ish lattice
          on = (x % (period + 2) == phase % (period + 2)) &&
               (y % (period + 2) == phase % (period + 2));
          break;
        }
        case 9: {  // wedge: half-plane through the center at a random angle
          const float dx = static_cast<float>(x) - static_cast<float>(s) / 2.0f;
          const float dy = static_cast<float>(y) - static_cast<float>(s) / 2.0f;
          on = dir_x * dx + dir_y * dy > 0.0f;
          break;
        }
        default: throw std::logic_error("ShapeSet: bad label");
      }
      for (int c = 0; c < 3; ++c) {
        float v;
        if (blend >= 0.0f) {
          v = bg[c] + (fg[c] - bg[c]) * blend;
        } else {
          v = on ? fg[c] : bg[c];
        }
        v += noise(rng_);
        // Center the data: [-1, 1] keeps early training well-conditioned.
        images.at(index, y, x, c) = 2.0f * std::clamp(v, 0.0f, 1.0f) - 1.0f;
      }
    }
  }
}

LabeledData ShapeSet::generate(std::size_t count) {
  if (count == 0) throw std::invalid_argument("ShapeSet::generate: count must be positive");
  LabeledData data;
  data.images = Tensor(static_cast<int>(count), config_.image_size, config_.image_size, 3);
  data.labels.resize(count);

  // Balanced, then shuffled.
  for (std::size_t i = 0; i < count; ++i) {
    data.labels[i] = static_cast<int>(i % static_cast<std::size_t>(config_.num_classes));
  }
  std::shuffle(data.labels.begin(), data.labels.end(), rng_);
  for (std::size_t i = 0; i < count; ++i) {
    render(data.images, static_cast<int>(i), data.labels[i]);
  }
  return data;
}

}  // namespace lens::nn
