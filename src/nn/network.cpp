#include "nn/network.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lens::nn {

LabeledData take_batch(const LabeledData& data, const std::vector<std::size_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("take_batch: empty index set");
  const Tensor& src = data.images;
  LabeledData batch;
  batch.images = Tensor(static_cast<int>(indices.size()), src.h(), src.w(), src.c());
  batch.labels.reserve(indices.size());
  const std::size_t stride = static_cast<std::size_t>(src.features());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t index = indices[i];
    if (index >= data.size()) throw std::out_of_range("take_batch: index out of range");
    std::copy_n(src.data() + index * stride, stride, batch.images.data() + i * stride);
    batch.labels.push_back(data.labels[index]);
  }
  return batch;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  if (layers_.empty()) throw std::logic_error("Sequential::forward: empty network");
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

void Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<ParamTensor*> Sequential::parameters() {
  std::vector<ParamTensor*> params;
  for (auto& layer : layers_) {
    for (ParamTensor* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::size_t Sequential::num_parameters() {
  std::size_t total = 0;
  for (ParamTensor* p : parameters()) total += p->value.size();
  return total;
}

Trainer::Trainer(Sequential& network, TrainerConfig config)
    : network_(network),
      config_(config),
      optimizer_(network.parameters(), config.sgd),
      rng_(config.shuffle_seed) {
  if (config_.batch_size <= 0) throw std::invalid_argument("Trainer: bad batch size");
}

EpochStats Trainer::train_epoch(const LabeledData& data) {
  if (data.size() == 0) throw std::invalid_argument("train_epoch: empty dataset");
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng_);

  EpochStats stats;
  std::size_t correct = 0;
  std::size_t seen = 0;
  double loss_sum = 0.0;
  const auto batch_size = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t end = std::min(order.size(), start + batch_size);
    const std::vector<std::size_t> indices(order.begin() + static_cast<std::ptrdiff_t>(start),
                                           order.begin() + static_cast<std::ptrdiff_t>(end));
    const LabeledData batch = take_batch(data, indices);
    const Tensor logits = network_.forward(batch.images, /*training=*/true);
    LossResult loss = softmax_cross_entropy(logits, batch.labels);
    network_.backward(loss.grad_logits);
    optimizer_.step();
    loss_sum += loss.mean_loss * static_cast<double>(indices.size());
    correct += loss.correct;
    seen += indices.size();
  }
  stats.mean_loss = loss_sum / static_cast<double>(seen);
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  return stats;
}

EpochStats Trainer::evaluate(const LabeledData& data) {
  if (data.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  EpochStats stats;
  std::size_t correct = 0;
  double loss_sum = 0.0;
  const auto batch_size = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    std::vector<std::size_t> indices(end - start);
    std::iota(indices.begin(), indices.end(), start);
    const LabeledData batch = take_batch(data, indices);
    const Tensor logits = network_.forward(batch.images, /*training=*/false);
    const LossResult loss = softmax_cross_entropy(logits, batch.labels);
    loss_sum += loss.mean_loss * static_cast<double>(indices.size());
    correct += loss.correct;
  }
  stats.mean_loss = loss_sum / static_cast<double>(data.size());
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  return stats;
}

}  // namespace lens::nn
