#pragma once
// Weight checkpointing for trained networks: save/load every parameter
// block of a Sequential so a trained candidate can ship (or resume).

#include <string>

#include "nn/network.hpp"

namespace lens::nn {

/// Write all parameter blocks of `network` to a text file. Throws
/// std::runtime_error on I/O failure.
void save_weights(Sequential& network, const std::string& path);

/// Load weights saved by save_weights into an architecture-identical
/// network (same layer stack, same parameter-block sizes). Throws
/// std::runtime_error / std::invalid_argument on bad files or mismatched
/// architectures.
void load_weights(Sequential& network, const std::string& path);

}  // namespace lens::nn
