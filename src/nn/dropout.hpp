#pragma once
// Inverted dropout: active only in training mode; inference is identity.

#include <random>

#include "nn/layer.hpp"

namespace lens::nn {

class Dropout final : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1).
  explicit Dropout(float rate, unsigned seed = 1234);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  std::mt19937_64 rng_;
  std::vector<bool> mask_;  ///< kept positions of the last training forward
  bool last_was_training_ = false;
};

}  // namespace lens::nn
