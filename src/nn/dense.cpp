#include "nn/dense.hpp"

#include <stdexcept>

namespace lens::nn {

Dense::Dense(int in_features, int out_features, std::mt19937_64& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(static_cast<std::size_t>(in_features) * out_features),
      bias_(static_cast<std::size_t>(out_features)) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: bad dimensions");
  }
  he_init(weights_.value, static_cast<std::size_t>(in_features), rng);
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  if (input.features() != in_features_) {
    throw std::invalid_argument("Dense: input feature mismatch");
  }
  cached_input_ = input.reshaped(input.n(), 1, 1, in_features_);
  Tensor output = Tensor::flat(input.n(), out_features_);
  for (int b = 0; b < input.n(); ++b) {
    const float* x = cached_input_.data() + static_cast<std::size_t>(b) * in_features_;
    float* y = output.data() + static_cast<std::size_t>(b) * out_features_;
    for (int o = 0; o < out_features_; ++o) y[o] = bias_.value[o];
    for (int i = 0; i < in_features_; ++i) {
      const float v = x[i];
      if (v == 0.0f) continue;
      const float* wrow = weights_.value.data() + static_cast<std::size_t>(i) * out_features_;
      for (int o = 0; o < out_features_; ++o) y[o] += v * wrow[o];
    }
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Dense::backward before forward");
  Tensor grad_input = Tensor::flat(cached_input_.n(), in_features_);
  for (int b = 0; b < cached_input_.n(); ++b) {
    const float* x = cached_input_.data() + static_cast<std::size_t>(b) * in_features_;
    const float* go = grad_output.data() + static_cast<std::size_t>(b) * out_features_;
    float* gi = grad_input.data() + static_cast<std::size_t>(b) * in_features_;
    for (int o = 0; o < out_features_; ++o) bias_.grad[o] += go[o];
    for (int i = 0; i < in_features_; ++i) {
      float* wg = weights_.grad.data() + static_cast<std::size_t>(i) * out_features_;
      const float* wv = weights_.value.data() + static_cast<std::size_t>(i) * out_features_;
      const float xv = x[i];
      float acc = 0.0f;
      for (int o = 0; o < out_features_; ++o) {
        wg[o] += xv * go[o];
        acc += go[o] * wv[o];
      }
      gi[i] = acc;
    }
  }
  return grad_input;
}

}  // namespace lens::nn
