#pragma once
// SGD with momentum and decoupled weight decay.

#include <vector>

#include "nn/layer.hpp"

namespace lens::nn {

struct SgdConfig {
  // With momentum 0.9 the effective step is ~10x the learning rate; 0.01
  // trains the ShapeSet-scale networks to convergence without divergence.
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

/// Stateful SGD optimizer over a fixed parameter set.
class Sgd {
 public:
  Sgd(std::vector<ParamTensor*> parameters, SgdConfig config = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  /// Zero all gradients without updating.
  void zero_grad();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<ParamTensor*> parameters_;
  std::vector<std::vector<float>> velocity_;
  SgdConfig config_;
};

}  // namespace lens::nn
