#include "nn/optimizer.hpp"

#include <stdexcept>

namespace lens::nn {

Sgd::Sgd(std::vector<ParamTensor*> parameters, SgdConfig config)
    : parameters_(std::move(parameters)), config_(config) {
  if (config_.learning_rate <= 0.0) throw std::invalid_argument("Sgd: bad learning rate");
  velocity_.reserve(parameters_.size());
  for (const ParamTensor* p : parameters_) {
    if (p == nullptr) throw std::invalid_argument("Sgd: null parameter");
    velocity_.emplace_back(p->value.size(), 0.0f);
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    ParamTensor& param = *parameters_[p];
    std::vector<float>& v = velocity_[p];
    for (std::size_t i = 0; i < param.value.size(); ++i) {
      v[i] = mu * v[i] + param.grad[i] + wd * param.value[i];
      param.value[i] -= lr * v[i];
    }
    param.zero_grad();
  }
}

void Sgd::zero_grad() {
  for (ParamTensor* p : parameters_) p->zero_grad();
}

}  // namespace lens::nn
