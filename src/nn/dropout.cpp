#include "nn/dropout.hpp"

#include <stdexcept>

namespace lens::nn {

Dropout::Dropout(float rate, unsigned seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_was_training_ = training;
  if (!training || rate_ == 0.0f) {
    mask_.clear();
    return input;
  }
  std::bernoulli_distribution keep(1.0 - static_cast<double>(rate_));
  const float scale = 1.0f / (1.0f - rate_);  // inverted dropout
  Tensor output = input;
  mask_.assign(input.size(), false);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (keep(rng_)) {
      mask_[i] = true;
      output.storage()[i] *= scale;
    } else {
      output.storage()[i] = 0.0f;
    }
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_was_training_ || rate_ == 0.0f) return grad_output;
  if (mask_.size() != grad_output.size()) {
    throw std::logic_error("Dropout::backward: no matching forward");
  }
  const float scale = 1.0f / (1.0f - rate_);
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    grad_input.storage()[i] = mask_[i] ? grad_input.storage()[i] * scale : 0.0f;
  }
  return grad_input;
}

}  // namespace lens::nn
