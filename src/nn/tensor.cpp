#include "nn/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::nn {

Tensor::Tensor(int n, int h, int w, int c, float fill)
    : n_(n), h_(h), w_(w), c_(c) {
  if (n <= 0 || h <= 0 || w <= 0 || c <= 0) {
    throw std::invalid_argument("Tensor: non-positive dimension");
  }
  data_.assign(static_cast<std::size_t>(n) * h * w * c, fill);
}

float& Tensor::at(int n, int h, int w, int c) {
  return data_[((static_cast<std::size_t>(n) * h_ + h) * w_ + w) * c_ + c];
}

float Tensor::at(int n, int h, int w, int c) const {
  return data_[((static_cast<std::size_t>(n) * h_ + h) * w_ + w) * c_ + c];
}

Tensor Tensor::reshaped(int n, int h, int w, int c) const {
  if (static_cast<std::size_t>(n) * h * w * c != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor out;
  out.n_ = n;
  out.h_ = h;
  out.w_ = w;
  out.c_ = c;
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

}  // namespace lens::nn
