#include "nn/conv.hpp"

#include <stdexcept>

namespace lens::nn {

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride, int padding,
               std::mt19937_64& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_(static_cast<std::size_t>(kernel) * kernel * in_channels * out_channels),
      bias_(static_cast<std::size_t>(out_channels)) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2D: bad parameters");
  }
  he_init(weights_.value, static_cast<std::size_t>(kernel) * kernel * in_channels, rng);
}

void Conv2D::im2col(const Tensor& input, int batch_index, std::vector<float>& cols) const {
  const int patch = kernel_ * kernel_ * in_channels_;
  cols.assign(static_cast<std::size_t>(out_h_) * out_w_ * patch, 0.0f);
  std::size_t row = 0;
  for (int oy = 0; oy < out_h_; ++oy) {
    for (int ox = 0; ox < out_w_; ++ox, ++row) {
      float* dst = cols.data() + row * patch;
      int k = 0;
      for (int ky = 0; ky < kernel_; ++ky) {
        const int iy = oy * stride_ + ky - padding_;
        for (int kx = 0; kx < kernel_; ++kx) {
          const int ix = ox * stride_ + kx - padding_;
          if (iy >= 0 && iy < input.h() && ix >= 0 && ix < input.w()) {
            for (int c = 0; c < in_channels_; ++c) {
              dst[k++] = input.at(batch_index, iy, ix, c);
            }
          } else {
            k += in_channels_;  // zero padding
          }
        }
      }
    }
  }
}

void Conv2D::col2im(const std::vector<float>& cols, Tensor& grad_input,
                    int batch_index) const {
  const int patch = kernel_ * kernel_ * in_channels_;
  std::size_t row = 0;
  for (int oy = 0; oy < out_h_; ++oy) {
    for (int ox = 0; ox < out_w_; ++ox, ++row) {
      const float* src = cols.data() + row * patch;
      int k = 0;
      for (int ky = 0; ky < kernel_; ++ky) {
        const int iy = oy * stride_ + ky - padding_;
        for (int kx = 0; kx < kernel_; ++kx) {
          const int ix = ox * stride_ + kx - padding_;
          if (iy >= 0 && iy < grad_input.h() && ix >= 0 && ix < grad_input.w()) {
            for (int c = 0; c < in_channels_; ++c) {
              grad_input.at(batch_index, iy, ix, c) += src[k++];
            }
          } else {
            k += in_channels_;
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  if (input.c() != in_channels_) throw std::invalid_argument("Conv2D: channel mismatch");
  out_h_ = (input.h() + 2 * padding_ - kernel_) / stride_ + 1;
  out_w_ = (input.w() + 2 * padding_ - kernel_) / stride_ + 1;
  if (out_h_ <= 0 || out_w_ <= 0) throw std::invalid_argument("Conv2D: output collapsed");
  cached_input_ = input;

  const int patch = kernel_ * kernel_ * in_channels_;
  Tensor output(input.n(), out_h_, out_w_, out_channels_);
  std::vector<float> cols;
  for (int b = 0; b < input.n(); ++b) {
    im2col(input, b, cols);
    // output_row = cols_row (1 x patch) * W (patch x cout) + bias
    for (int row = 0; row < out_h_ * out_w_; ++row) {
      const float* src = cols.data() + static_cast<std::size_t>(row) * patch;
      float* dst = output.data() +
                   ((static_cast<std::size_t>(b) * out_h_ * out_w_) + row) * out_channels_;
      for (int o = 0; o < out_channels_; ++o) dst[o] = bias_.value[o];
      for (int k = 0; k < patch; ++k) {
        const float v = src[k];
        if (v == 0.0f) continue;
        const float* wrow = weights_.value.data() + static_cast<std::size_t>(k) * out_channels_;
        for (int o = 0; o < out_channels_; ++o) dst[o] += v * wrow[o];
      }
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Conv2D::backward before forward");
  const Tensor& input = cached_input_;
  const int patch = kernel_ * kernel_ * in_channels_;
  Tensor grad_input(input.n(), input.h(), input.w(), in_channels_);
  std::vector<float> cols;
  std::vector<float> grad_cols(static_cast<std::size_t>(out_h_) * out_w_ * patch);

  for (int b = 0; b < input.n(); ++b) {
    im2col(input, b, cols);
    std::fill(grad_cols.begin(), grad_cols.end(), 0.0f);
    for (int row = 0; row < out_h_ * out_w_; ++row) {
      const float* go = grad_output.data() +
                        ((static_cast<std::size_t>(b) * out_h_ * out_w_) + row) * out_channels_;
      const float* ci = cols.data() + static_cast<std::size_t>(row) * patch;
      float* gc = grad_cols.data() + static_cast<std::size_t>(row) * patch;
      // bias grad
      for (int o = 0; o < out_channels_; ++o) bias_.grad[o] += go[o];
      // weight grad += ci^T * go ; grad_cols = go * W^T
      for (int k = 0; k < patch; ++k) {
        float* wg = weights_.grad.data() + static_cast<std::size_t>(k) * out_channels_;
        const float* wv = weights_.value.data() + static_cast<std::size_t>(k) * out_channels_;
        const float civ = ci[k];
        float acc = 0.0f;
        for (int o = 0; o < out_channels_; ++o) {
          wg[o] += civ * go[o];
          acc += go[o] * wv[o];
        }
        gc[k] = acc;
      }
    }
    col2im(grad_cols, grad_input, b);
  }
  return grad_input;
}

}  // namespace lens::nn
