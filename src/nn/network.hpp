#pragma once
// Sequential network container, labeled datasets, and the training loop.

#include <memory>
#include <random>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace lens::nn {

/// A labeled image set: images is n x h x w x c, labels holds n class ids.
struct LabeledData {
  Tensor images;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// Extract a batch of the given indices.
LabeledData take_batch(const LabeledData& data, const std::vector<std::size_t>& indices);

/// Ordered layer stack.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& input, bool training);
  /// Backpropagate from the loss gradient through every layer.
  void backward(const Tensor& grad_output);

  std::vector<ParamTensor*> parameters();
  std::size_t num_parameters();
  std::size_t num_layers() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Loss/accuracy pair.
struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;  ///< in [0,1]

  double error_percent() const { return 100.0 * (1.0 - accuracy); }
};

struct TrainerConfig {
  SgdConfig sgd;
  int batch_size = 32;
  unsigned shuffle_seed = 99;
};

/// Minibatch trainer with softmax cross-entropy.
class Trainer {
 public:
  Trainer(Sequential& network, TrainerConfig config = {});

  /// One pass over the training data (shuffled); returns training stats.
  EpochStats train_epoch(const LabeledData& data);

  /// Forward-only evaluation.
  EpochStats evaluate(const LabeledData& data);

 private:
  Sequential& network_;
  TrainerConfig config_;
  Sgd optimizer_;
  std::mt19937_64 rng_;
};

}  // namespace lens::nn
