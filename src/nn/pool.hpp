#pragma once
// Max-pooling layer with argmax-routed backward pass.

#include "nn/layer.hpp"

namespace lens::nn {

class MaxPool2D final : public Layer {
 public:
  MaxPool2D(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  int kernel_, stride_;
  int in_h_ = 0, in_w_ = 0, in_c_ = 0, in_n_ = 0;
  std::vector<int> argmax_;  ///< flat input index per output element
};

}  // namespace lens::nn
