#pragma once
// Fully connected layer. Flattens any input shape implicitly (matching the
// dnn IR convention).

#include <random>

#include "nn/layer.hpp"

namespace lens::nn {

class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, std::mt19937_64& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&weights_, &bias_}; }
  std::string name() const override { return "dense"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_, out_features_;
  ParamTensor weights_;  ///< [in, out], row-major
  ParamTensor bias_;     ///< [out]
  Tensor cached_input_;  ///< flattened
};

}  // namespace lens::nn
