#pragma once
// Average-pooling layer (uniform gradient routing).

#include "nn/layer.hpp"

namespace lens::nn {

class AvgPool2D final : public Layer {
 public:
  AvgPool2D(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "avgpool2d"; }

 private:
  int kernel_, stride_;
  int in_n_ = 0, in_h_ = 0, in_w_ = 0, in_c_ = 0;
  int out_h_ = 0, out_w_ = 0;
};

}  // namespace lens::nn
