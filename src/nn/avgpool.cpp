#include "nn/avgpool.hpp"

#include <stdexcept>

namespace lens::nn {

AvgPool2D::AvgPool2D(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0) throw std::invalid_argument("AvgPool2D: bad parameters");
}

Tensor AvgPool2D::forward(const Tensor& input, bool /*training*/) {
  if (input.h() < kernel_ || input.w() < kernel_) {
    throw std::invalid_argument("AvgPool2D: window larger than input");
  }
  out_h_ = (input.h() - kernel_) / stride_ + 1;
  out_w_ = (input.w() - kernel_) / stride_ + 1;
  if (out_h_ <= 0 || out_w_ <= 0) throw std::invalid_argument("AvgPool2D: output collapsed");
  in_n_ = input.n();
  in_h_ = input.h();
  in_w_ = input.w();
  in_c_ = input.c();

  Tensor output(input.n(), out_h_, out_w_, input.c());
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int b = 0; b < input.n(); ++b) {
    for (int oy = 0; oy < out_h_; ++oy) {
      for (int ox = 0; ox < out_w_; ++ox) {
        for (int c = 0; c < input.c(); ++c) {
          float acc = 0.0f;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += input.at(b, oy * stride_ + ky, ox * stride_ + kx, c);
            }
          }
          output.at(b, oy, ox, c) = acc * scale;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (in_n_ == 0) throw std::logic_error("AvgPool2D::backward before forward");
  Tensor grad_input(in_n_, in_h_, in_w_, in_c_);
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int b = 0; b < in_n_; ++b) {
    for (int oy = 0; oy < out_h_; ++oy) {
      for (int ox = 0; ox < out_w_; ++ox) {
        for (int c = 0; c < in_c_; ++c) {
          const float g = grad_output.at(b, oy, ox, c) * scale;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              grad_input.at(b, oy * stride_ + ky, ox * stride_ + kx, c) += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace lens::nn
