#pragma once
// 2-D convolution layer (im2col + GEMM), with bias.

#include <random>

#include "nn/layer.hpp"

namespace lens::nn {

class Conv2D final : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int padding,
         std::mt19937_64& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&weights_, &bias_}; }
  std::string name() const override { return "conv2d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }

 private:
  /// Expand one batch item into the [out_h*out_w, k*k*cin] patch matrix.
  void im2col(const Tensor& input, int batch_index, std::vector<float>& cols) const;
  /// Scatter-add a patch-matrix gradient back to an input-shaped gradient.
  void col2im(const std::vector<float>& cols, Tensor& grad_input, int batch_index) const;

  int in_channels_, out_channels_, kernel_, stride_, padding_;
  int out_h_ = 0, out_w_ = 0;  // set during forward
  ParamTensor weights_;  ///< [k*k*cin, cout], row-major
  ParamTensor bias_;     ///< [cout]
  Tensor cached_input_;
};

}  // namespace lens::nn
