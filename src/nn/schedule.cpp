#include "nn/schedule.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lens::nn {

ConstantLr::ConstantLr(double rate) : rate_(rate) {
  if (rate <= 0.0) throw std::invalid_argument("ConstantLr: rate must be positive");
}

double ConstantLr::learning_rate(std::size_t /*epoch*/) const { return rate_; }

StepDecayLr::StepDecayLr(double initial, double factor, std::size_t period)
    : initial_(initial), factor_(factor), period_(period) {
  if (initial <= 0.0 || factor <= 0.0 || factor > 1.0 || period == 0) {
    throw std::invalid_argument("StepDecayLr: invalid parameters");
  }
}

double StepDecayLr::learning_rate(std::size_t epoch) const {
  return initial_ * std::pow(factor_, static_cast<double>(epoch / period_));
}

CosineDecayLr::CosineDecayLr(double initial, std::size_t total_epochs, double floor)
    : initial_(initial), total_epochs_(total_epochs), floor_(floor) {
  if (initial <= 0.0 || total_epochs == 0 || floor < 0.0 || floor > initial) {
    throw std::invalid_argument("CosineDecayLr: invalid parameters");
  }
}

double CosineDecayLr::learning_rate(std::size_t epoch) const {
  if (epoch >= total_epochs_) return floor_;
  const double progress = static_cast<double>(epoch) / static_cast<double>(total_epochs_);
  return floor_ + 0.5 * (initial_ - floor_) * (1.0 + std::cos(std::numbers::pi * progress));
}

}  // namespace lens::nn
