#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace lens::nn {

MaxPool2D::MaxPool2D(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0) throw std::invalid_argument("MaxPool2D: bad parameters");
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  if (input.h() < kernel_ || input.w() < kernel_) {
    throw std::invalid_argument("MaxPool2D: window larger than input");
  }
  const int out_h = (input.h() - kernel_) / stride_ + 1;
  const int out_w = (input.w() - kernel_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) throw std::invalid_argument("MaxPool2D: output collapsed");
  in_n_ = input.n();
  in_h_ = input.h();
  in_w_ = input.w();
  in_c_ = input.c();

  Tensor output(input.n(), out_h, out_w, input.c());
  argmax_.assign(output.size(), -1);
  std::size_t out_index = 0;
  for (int b = 0; b < input.n(); ++b) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        for (int c = 0; c < input.c(); ++c, ++out_index) {
          float best = -std::numeric_limits<float>::infinity();
          int best_index = -1;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              const float v = input.at(b, iy, ix, c);
              if (v > best) {
                best = v;
                best_index = static_cast<int>(
                    ((static_cast<std::size_t>(b) * in_h_ + iy) * in_w_ + ix) * in_c_ + c);
              }
            }
          }
          output.storage()[out_index] = best;
          argmax_[out_index] = best_index;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (argmax_.empty()) throw std::logic_error("MaxPool2D::backward before forward");
  Tensor grad_input(in_n_, in_h_, in_w_, in_c_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input.storage()[static_cast<std::size_t>(argmax_[i])] += grad_output.storage()[i];
  }
  return grad_input;
}

}  // namespace lens::nn
