#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::nn {

Adam::Adam(std::vector<ParamTensor*> parameters, AdamConfig config)
    : parameters_(std::move(parameters)), config_(config) {
  if (config_.learning_rate <= 0.0 || config_.beta1 < 0.0 || config_.beta1 >= 1.0 ||
      config_.beta2 < 0.0 || config_.beta2 >= 1.0 || config_.epsilon <= 0.0) {
    throw std::invalid_argument("Adam: invalid configuration");
  }
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const ParamTensor* p : parameters_) {
    if (p == nullptr) throw std::invalid_argument("Adam: null parameter");
    first_moment_.emplace_back(p->value.size(), 0.0f);
    second_moment_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++steps_;
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(steps_));
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto eps = static_cast<float>(config_.epsilon);
  const auto wd = static_cast<float>(config_.weight_decay);

  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    ParamTensor& param = *parameters_[p];
    std::vector<float>& m = first_moment_[p];
    std::vector<float>& v = second_moment_[p];
    for (std::size_t i = 0; i < param.value.size(); ++i) {
      const float g = param.grad[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const auto m_hat = static_cast<float>(m[i] / bias1);
      const auto v_hat = static_cast<float>(v[i] / bias2);
      param.value[i] -= lr * (m_hat / (std::sqrt(v_hat) + eps) + wd * param.value[i]);
    }
    param.zero_grad();
  }
}

void Adam::zero_grad() {
  for (ParamTensor* p : parameters_) p->zero_grad();
}

}  // namespace lens::nn
