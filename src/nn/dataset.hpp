#pragma once
// ShapeSet: a procedural 10-class image dataset.
//
// Substitutes CIFAR-10 for the real-training path (see DESIGN.md): ten
// visually distinct parametric pattern families (stripes, checkerboards,
// discs, frames, crosses, gradients, dots, wedges) with randomized colors,
// phases and additive noise. Small CNNs reach high accuracy in a few
// epochs, so "train a candidate and measure test error" is exercised
// end-to-end at laptop scale.

#include <random>

#include "nn/network.hpp"

namespace lens::nn {

struct ShapeSetConfig {
  int image_size = 16;
  int num_classes = 10;   ///< up to 10 pattern families
  float noise_std = 0.10f;
  unsigned seed = 42;
};

/// Procedural dataset generator.
class ShapeSet {
 public:
  explicit ShapeSet(ShapeSetConfig config = {});

  /// Generate `count` labeled images (balanced classes, shuffled).
  LabeledData generate(std::size_t count);

  const ShapeSetConfig& config() const { return config_; }

 private:
  void render(Tensor& images, int index, int label);

  ShapeSetConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace lens::nn
