#pragma once
// Softmax + cross-entropy loss (fused for numerical stability).

#include <vector>

#include "nn/tensor.hpp"

namespace lens::nn {

/// Result of one loss evaluation over a batch.
struct LossResult {
  double mean_loss = 0.0;
  std::size_t correct = 0;  ///< top-1 hits in the batch
  Tensor grad_logits;       ///< d(mean loss)/d(logits)
};

/// Computes softmax cross-entropy of `logits` (n x classes) against integer
/// `labels`, plus the gradient w.r.t. logits.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Softmax probabilities (row-wise), numerically stabilized.
Tensor softmax(const Tensor& logits);

}  // namespace lens::nn
