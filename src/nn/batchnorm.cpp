#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::nn {

BatchNorm::BatchNorm(int channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(static_cast<std::size_t>(channels)),
      beta_(static_cast<std::size_t>(channels)),
      running_mean_(static_cast<std::size_t>(channels), 0.0f),
      running_var_(static_cast<std::size_t>(channels), 1.0f) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm: bad channel count");
  std::fill(gamma_.value.begin(), gamma_.value.end(), 1.0f);
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  if (input.c() != channels_) throw std::invalid_argument("BatchNorm: channel mismatch");
  const int count = input.n() * input.h() * input.w();
  Tensor output = input;

  if (training) {
    std::vector<float> mean(channels_, 0.0f);
    std::vector<float> var(channels_, 0.0f);
    for (std::size_t i = 0; i < input.size(); ++i) {
      mean[i % channels_] += input.storage()[i];
    }
    for (float& m : mean) m /= static_cast<float>(count);
    for (std::size_t i = 0; i < input.size(); ++i) {
      const float d = input.storage()[i] - mean[i % channels_];
      var[i % channels_] += d * d;
    }
    for (float& v : var) v /= static_cast<float>(count);

    cached_inv_std_.resize(channels_);
    for (int c = 0; c < channels_; ++c) {
      cached_inv_std_[c] = 1.0f / std::sqrt(var[c] + epsilon_);
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var[c];
    }
    cached_normalized_ = input;
    cached_count_ = count;
    for (std::size_t i = 0; i < input.size(); ++i) {
      const int c = static_cast<int>(i % channels_);
      const float normalized = (input.storage()[i] - mean[c]) * cached_inv_std_[c];
      cached_normalized_.storage()[i] = normalized;
      output.storage()[i] = gamma_.value[c] * normalized + beta_.value[c];
    }
  } else {
    for (std::size_t i = 0; i < input.size(); ++i) {
      const int c = static_cast<int>(i % channels_);
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + epsilon_);
      output.storage()[i] =
          gamma_.value[c] * (input.storage()[i] - running_mean_[c]) * inv_std +
          beta_.value[c];
    }
  }
  return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (cached_normalized_.empty()) {
    throw std::logic_error("BatchNorm::backward before a training forward");
  }
  const float count = static_cast<float>(cached_count_);
  // Standard BN backward:
  //   dX = gamma * inv_std / m * (m*dY - sum(dY) - xhat * sum(dY*xhat))
  std::vector<float> sum_dy(channels_, 0.0f);
  std::vector<float> sum_dy_xhat(channels_, 0.0f);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const int c = static_cast<int>(i % channels_);
    sum_dy[c] += grad_output.storage()[i];
    sum_dy_xhat[c] += grad_output.storage()[i] * cached_normalized_.storage()[i];
  }
  for (int c = 0; c < channels_; ++c) {
    beta_.grad[c] += sum_dy[c];
    gamma_.grad[c] += sum_dy_xhat[c];
  }
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const int c = static_cast<int>(i % channels_);
    grad_input.storage()[i] =
        gamma_.value[c] * cached_inv_std_[c] / count *
        (count * grad_output.storage()[i] - sum_dy[c] -
         cached_normalized_.storage()[i] * sum_dy_xhat[c]);
  }
  return grad_input;
}

}  // namespace lens::nn
