#include "core/run_checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <stdexcept>

#include "io/io.hpp"

namespace lens::core {

namespace {

namespace fs = std::filesystem;

constexpr const char* kSnapshotFormat = "mobo-snapshot-v1";
constexpr const char* kSnapshotPrefix = "snapshot-";
constexpr const char* kSnapshotSuffix = ".ckpt";

std::atomic<bool> g_interrupted{false};

void handle_signal(int) { g_interrupted.store(true, std::memory_order_relaxed); }

}  // namespace

std::string checkpoint_file_name(std::size_t evaluations) {
  std::string digits = std::to_string(evaluations);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return kSnapshotPrefix + digits + kSnapshotSuffix;
}

void save_run_checkpoint(const std::string& directory, const opt::MoboSnapshot& snapshot,
                         std::size_t keep) {
  if (directory.empty()) {
    throw std::invalid_argument("save_run_checkpoint: empty directory");
  }
  if (keep == 0) throw std::invalid_argument("save_run_checkpoint: keep must be >= 1");
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    throw std::runtime_error("save_run_checkpoint: cannot create " + directory + ": " +
                             ec.message());
  }
  const std::string path =
      (fs::path(directory) / checkpoint_file_name(snapshot.evaluations_done)).string();
  io::write_framed(path, kSnapshotFormat, snapshot.serialize());

  // Prune only after the new snapshot is durably renamed into place, so a
  // crash at any point leaves at least the previous rotation intact.
  std::vector<std::string> snapshots = list_run_checkpoints(directory);
  while (snapshots.size() > keep) {
    fs::remove(snapshots.front(), ec);  // oldest first; best effort
    snapshots.erase(snapshots.begin());
  }
}

std::vector<std::string> list_run_checkpoints(const std::string& directory) {
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) {
    throw std::runtime_error("list_run_checkpoints: cannot read " + directory + ": " +
                             ec.message());
  }
  std::vector<std::string> snapshots;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSnapshotPrefix, 0) == 0 && name.size() > std::string(kSnapshotSuffix).size() &&
        name.compare(name.size() - std::string(kSnapshotSuffix).size(),
                     std::string::npos, kSnapshotSuffix) == 0) {
      snapshots.push_back(entry.path().string());
    }
  }
  // Zero-padded evaluation counts: lexicographic filename order is
  // evaluation order.
  std::sort(snapshots.begin(), snapshots.end());
  return snapshots;
}

opt::MoboSnapshot load_newest_run_checkpoint(const std::string& directory,
                                             std::string* loaded_path) {
  std::vector<std::string> snapshots = list_run_checkpoints(directory);
  std::string failures;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    try {
      opt::MoboSnapshot snapshot =
          opt::MoboSnapshot::deserialize(io::read_framed(*it, kSnapshotFormat));
      if (loaded_path != nullptr) *loaded_path = *it;
      return snapshot;
    } catch (const std::exception& error) {
      // Corrupted/truncated rotation: fall back to the previous one.
      failures += "\n  " + *it + ": " + error.what();
    }
  }
  throw std::runtime_error("load_newest_run_checkpoint: no loadable snapshot in " +
                           directory + (failures.empty() ? " (directory empty)" : failures));
}

void install_interrupt_flush_handler() {
#if !defined(_WIN32)
  struct sigaction action{};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // don't fail checkpoint writes on EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
#endif
}

bool interrupt_requested() { return g_interrupted.load(std::memory_order_relaxed); }

void request_interrupt() { g_interrupted.store(true, std::memory_order_relaxed); }

void clear_interrupt() { g_interrupted.store(false, std::memory_order_relaxed); }

}  // namespace lens::core
