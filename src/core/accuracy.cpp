#include "core/accuracy.hpp"

#include <algorithm>
#include <cmath>

namespace lens::core {

SurrogateAccuracyModel::SurrogateAccuracyModel(SurrogateAccuracyConfig config)
    : config_(config) {}

double SurrogateAccuracyModel::test_error_percent(const Genotype& genotype,
                                                  const dnn::Architecture& arch) const {
  const double log_params = std::log10(static_cast<double>(std::max<std::uint64_t>(
      arch.total_params(), 1)));

  int conv_layers = 0;
  int fc_layers = 0;
  double kernel_sum = 0.0;
  for (const dnn::LayerInfo& info : arch.layers()) {
    if (info.spec.kind == dnn::LayerKind::kConv) {
      ++conv_layers;
      kernel_sum += info.spec.kernel;
    } else if (info.spec.kind == dnn::LayerKind::kDense) {
      ++fc_layers;
    }
  }
  const double mean_kernel = conv_layers > 0 ? kernel_sum / conv_layers : 3.0;

  double error = config_.base_error;
  error -= config_.capacity_gain * std::max(0.0, log_params - config_.capacity_baseline);
  error -= config_.depth_gain * conv_layers;
  if (mean_kernel > 3.0) error -= config_.kernel_gain * std::min(1.0, (mean_kernel - 3.0) / 2.0);
  if (fc_layers >= 3) error -= config_.fc2_gain;  // hidden fc1 + fc2 + classifier
  if (log_params > config_.overcapacity_knee) {
    error += config_.overcapacity_slope * (log_params - config_.overcapacity_knee);
  }

  // Deterministic, genotype-seeded "training noise".
  std::uint64_t h = 0xcbf29ce484222325ULL ^ config_.seed;
  for (int v : genotype) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  std::mt19937_64 rng(h);
  std::normal_distribution<double> gauss(0.0, config_.noise_std);
  error += gauss(rng);

  return std::clamp(error, config_.min_error, config_.max_error);
}

double CachedAccuracyModel::test_error_percent(const Genotype& genotype,
                                               const dnn::Architecture& arch) const {
  const auto it = cache_.find(genotype);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const double error = inner_.test_error_percent(genotype, arch);
  cache_.emplace(genotype, error);
  return error;
}

}  // namespace lens::core
