#pragma once
// Local refinement of search results (extension): hill-climb a frontier
// member through its one-step grid neighborhood under a scalarized
// objective. MOBO's global exploration rarely polishes the last grid steps
// around a frontier point; a short deterministic descent often does.

#include <vector>

#include "core/accuracy.hpp"
#include "core/evaluator.hpp"
#include "core/nas.hpp"
#include "core/search_space.hpp"

namespace lens::core {

/// All valid genotypes at Hamming distance 1 (one dimension moved one grid
/// step up or down) that satisfy the search-space constraint.
std::vector<Genotype> grid_neighbors(const SearchSpace& space, const Genotype& genotype);

struct RefineConfig {
  /// Scalarization weights over (error, latency, energy); need not sum to 1.
  double error_weight = 1.0;
  double latency_weight = 1.0;
  double energy_weight = 1.0;
  int max_steps = 32;
  ObjectiveMode mode = ObjectiveMode::kBestDeployment;
  double tu_mbps = 3.0;
};

struct RefineResult {
  EvaluatedCandidate candidate;       ///< best found
  int steps_taken = 0;                ///< accepted moves
  std::size_t evaluations = 0;        ///< objective evaluations spent
  double initial_score = 0.0;
  double final_score = 0.0;
};

/// Steepest-descent hill climbing from `start` until a local optimum or the
/// step budget. The score is the weighted sum of normalized-by-start
/// objectives, so the weights express relative importance independent of
/// units. Throws std::invalid_argument for invalid starts or non-positive
/// weights summed to zero.
RefineResult refine(const SearchSpace& space, const DeploymentEvaluator& evaluator,
                    const AccuracyModel& accuracy, const Genotype& start,
                    const RefineConfig& config = {});

}  // namespace lens::core
