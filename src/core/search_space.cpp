#include "core/search_space.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::core {

namespace {
constexpr std::size_t kDimsPerBlock = 4;  // depth, kernel, filters, pool?
constexpr std::size_t kFcDims = 3;        // fc1_units, fc2_present?, fc2_units
}  // namespace

SearchSpace::SearchSpace(SearchSpaceConfig config) : config_(std::move(config)) {
  if (config_.num_blocks <= 0 || config_.depths.empty() || config_.kernels.empty() ||
      config_.filters.empty() || config_.fc_units.empty()) {
    throw std::invalid_argument("SearchSpace: empty dimension lists");
  }
  if (config_.min_pools > config_.num_blocks) {
    throw std::invalid_argument("SearchSpace: min_pools exceeds the number of blocks");
  }
  cardinalities_.reserve(kDimsPerBlock * config_.num_blocks + kFcDims);
  for (int b = 0; b < config_.num_blocks; ++b) {
    cardinalities_.push_back(static_cast<int>(config_.depths.size()));
    cardinalities_.push_back(static_cast<int>(config_.kernels.size()));
    cardinalities_.push_back(static_cast<int>(config_.filters.size()));
    cardinalities_.push_back(2);  // optional pool
  }
  cardinalities_.push_back(static_cast<int>(config_.fc_units.size()));  // fc1
  cardinalities_.push_back(2);                                          // fc2 present?
  cardinalities_.push_back(static_cast<int>(config_.fc_units.size()));  // fc2
}

double SearchSpace::log10_size() const {
  double acc = 0.0;
  for (int c : cardinalities_) acc += std::log10(static_cast<double>(c));
  return acc;
}

void SearchSpace::check_in_range(const Genotype& genotype) const {
  if (genotype.size() != cardinalities_.size()) {
    throw std::invalid_argument("SearchSpace: genotype has wrong dimensionality");
  }
  for (std::size_t i = 0; i < genotype.size(); ++i) {
    if (genotype[i] < 0 || genotype[i] >= cardinalities_[i]) {
      throw std::invalid_argument("SearchSpace: genotype index out of range");
    }
  }
}

int SearchSpace::count_pools(const Genotype& genotype) const {
  check_in_range(genotype);
  int pools = 0;
  for (int b = 0; b < config_.num_blocks; ++b) {
    pools += genotype[kDimsPerBlock * b + 3];
  }
  return pools;
}

bool SearchSpace::is_valid(const Genotype& genotype) const {
  if (genotype.size() != cardinalities_.size()) return false;
  for (std::size_t i = 0; i < genotype.size(); ++i) {
    if (genotype[i] < 0 || genotype[i] >= cardinalities_[i]) return false;
  }
  return count_pools(genotype) >= config_.min_pools;
}

Genotype SearchSpace::random(std::mt19937_64& rng) const {
  Genotype g(cardinalities_.size());
  for (;;) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::uniform_int_distribution<int> d(0, cardinalities_[i] - 1);
      g[i] = d(rng);
    }
    if (is_valid(g)) return g;
  }
}

dnn::Architecture SearchSpace::decode(const Genotype& genotype) const {
  if (!is_valid(genotype)) {
    throw std::invalid_argument("SearchSpace::decode: invalid genotype");
  }
  std::vector<dnn::LayerSpec> layers;
  for (int b = 0; b < config_.num_blocks; ++b) {
    const std::size_t base = kDimsPerBlock * static_cast<std::size_t>(b);
    const int depth = config_.depths[genotype[base + 0]];
    const int kernel = config_.kernels[genotype[base + 1]];
    const int filters = config_.filters[genotype[base + 2]];
    const bool pool = genotype[base + 3] == 1;
    for (int d = 0; d < depth; ++d) {
      layers.push_back(dnn::LayerSpec::conv(filters, kernel, /*stride=*/1, /*padding=*/-1,
                                            /*batch_norm=*/true));
    }
    if (pool) layers.push_back(dnn::LayerSpec::max_pool(2, 2));
  }
  const std::size_t fc_base = kDimsPerBlock * static_cast<std::size_t>(config_.num_blocks);
  layers.push_back(dnn::LayerSpec::dense(config_.fc_units[genotype[fc_base + 0]]));
  if (genotype[fc_base + 1] == 1) {
    layers.push_back(dnn::LayerSpec::dense(config_.fc_units[genotype[fc_base + 2]]));
  }
  layers.push_back(dnn::LayerSpec::dense(config_.num_classes, dnn::Activation::kSoftmax));
  return dnn::Architecture(architecture_name(genotype), config_.input, std::move(layers));
}

std::vector<double> SearchSpace::to_normalized(const Genotype& genotype) const {
  check_in_range(genotype);
  std::vector<double> x(genotype.size());
  for (std::size_t i = 0; i < genotype.size(); ++i) {
    const int card = cardinalities_[i];
    x[i] = card <= 1 ? 0.0
                     : static_cast<double>(genotype[i]) / static_cast<double>(card - 1);
  }
  return x;
}

Genotype SearchSpace::from_normalized(const std::vector<double>& x) const {
  if (x.size() != cardinalities_.size()) {
    throw std::invalid_argument("SearchSpace::from_normalized: wrong dimensionality");
  }
  Genotype g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int card = cardinalities_[i];
    const double clamped = std::min(1.0, std::max(0.0, x[i]));
    g[i] = static_cast<int>(std::lround(clamped * (card - 1)));
  }
  return g;
}

std::string SearchSpace::architecture_name(const Genotype& genotype) const {
  check_in_range(genotype);
  // FNV-1a over the indices -> 8 hex chars.
  std::uint64_t h = 1469598103934665603ULL;
  for (int v : genotype) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e37ULL;
    h *= 1099511628211ULL;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string name = "arch-";
  for (int i = 0; i < 8; ++i) name.push_back(kHex[(h >> (4 * i)) & 0xF]);
  return name;
}

}  // namespace lens::core
