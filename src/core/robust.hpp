#pragma once
// Distribution-aware deployment evaluation (an extension the paper's §IV-E
// points toward): instead of scoring candidates at a single expected t_u,
// score them against a *distribution* of upload throughputs.
//
// Two summaries are exposed per architecture:
//  - expected cost of the best FIXED option (pick one option, pay its mean
//    cost over the distribution), and
//  - expected cost under ORACLE SWITCHING (per throughput sample, pay the
//    cheapest option) — the value an ideal runtime switcher would realize.
// The gap between them is exactly the runtime-adaptation headroom of the
// architecture, a quantity a designer can trade off at search time.

#include <cstddef>
#include <vector>

#include "core/evaluator.hpp"
#include "core/plan.hpp"

namespace lens::core {

/// Discretized throughput distribution: support points and probabilities.
struct ThroughputDistribution {
  std::vector<double> tu_mbps;
  std::vector<double> weight;

  /// Discretize a log-normal throughput law (median `median_mbps`, log-std
  /// `sigma`) into `points` equal-probability quantile atoms.
  static ThroughputDistribution log_normal(double median_mbps, double sigma,
                                           std::size_t points = 9);

  /// Empirical distribution from a measured/generated trace.
  static ThroughputDistribution from_samples(const std::vector<double>& samples);

  double mean() const;
  void validate() const;  ///< throws std::invalid_argument on malformed data
};

/// Per-metric robust summary.
struct RobustMetric {
  double expected_fixed_best = 0.0;   ///< best single option's mean cost
  std::size_t fixed_best_option = 0;  ///< index into options
  double expected_oracle = 0.0;       ///< per-sample cheapest option
  /// Adaptation headroom: (fixed - oracle) / fixed, in [0, 1).
  double switching_headroom() const {
    return expected_fixed_best <= 0.0
               ? 0.0
               : (expected_fixed_best - expected_oracle) / expected_fixed_best;
  }
};

/// Robust evaluation of one architecture.
struct RobustEvaluation {
  DeploymentEvaluation base;  ///< options evaluated at the distribution mean
  RobustMetric latency;
  RobustMetric energy;
};

/// Evaluates architectures against a throughput distribution using the
/// analytic cost curves of each deployment option.
class RobustDeploymentEvaluator {
 public:
  RobustDeploymentEvaluator(const DeploymentEvaluator& evaluator,
                            ThroughputDistribution distribution);

  /// Compiles `arch` once and scores the plan across the distribution.
  RobustEvaluation evaluate(const dnn::Architecture& arch) const;

  /// Scores an already-compiled plan — no predictor work at all. Use this
  /// to evaluate the same architecture under several distributions.
  RobustEvaluation evaluate(const DeploymentPlan& plan) const;

  const ThroughputDistribution& distribution() const { return distribution_; }

 private:
  const DeploymentEvaluator& evaluator_;
  ThroughputDistribution distribution_;
};

}  // namespace lens::core
