#pragma once
// Distribution-aware deployment evaluation (an extension the paper's §IV-E
// points toward): instead of scoring candidates at a single expected t_u,
// score them against a *distribution* of upload throughputs.
//
// Two summaries are exposed per architecture:
//  - expected cost of the best FIXED option (pick one option, pay its mean
//    cost over the distribution), and
//  - expected cost under ORACLE SWITCHING (per throughput sample, pay the
//    cheapest option) — the value an ideal runtime switcher would realize.
// The gap between them is exactly the runtime-adaptation headroom of the
// architecture, a quantity a designer can trade off at search time.
//
// Fault-aware pricing extends the same idea from throughput uncertainty to
// failure modes: evaluate_under_faults() scores a plan over a discrete set
// of degraded operating scenarios (deep fades, cloud outages, RTT spikes,
// edge stragglers), yielding an availability figure — the probability mass
// of scenarios the plan can serve at all — and the expected degradation a
// designer accepts by depending on the cloud.

#include <cstddef>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/plan.hpp"

namespace lens::core {

/// Discretized throughput distribution: support points and probabilities.
struct ThroughputDistribution {
  std::vector<double> tu_mbps;
  std::vector<double> weight;

  /// Discretize a log-normal throughput law (median `median_mbps`, log-std
  /// `sigma`) into `points` equal-probability quantile atoms.
  static ThroughputDistribution log_normal(double median_mbps, double sigma,
                                           std::size_t points = 9);

  /// Empirical distribution from a measured/generated trace.
  static ThroughputDistribution from_samples(const std::vector<double>& samples);

  double mean() const;
  void validate() const;  ///< throws std::invalid_argument on malformed data
};

/// Per-metric robust summary.
struct RobustMetric {
  double expected_fixed_best = 0.0;   ///< best single option's mean cost
  std::size_t fixed_best_option = 0;  ///< index into options
  double expected_oracle = 0.0;       ///< per-sample cheapest option
  /// Adaptation headroom: (fixed - oracle) / fixed, in [0, 1).
  double switching_headroom() const {
    return expected_fixed_best <= 0.0
               ? 0.0
               : (expected_fixed_best - expected_oracle) / expected_fixed_best;
  }
};

/// Robust evaluation of one architecture.
struct RobustEvaluation {
  DeploymentEvaluation base;  ///< options evaluated at the distribution mean
  RobustMetric latency;
  RobustMetric energy;
};

/// One hypothesized degraded operating condition to price a plan under.
struct FaultScenario {
  std::string name;
  double probability = 0.0;     ///< scenario mass; all scenarios sum to 1
  double tu_mbps = 0.0;         ///< link throughput while the fault holds
  bool cloud_available = true;  ///< false: only edge-only options servable
  double edge_slowdown = 1.0;   ///< >= 1, stretches edge compute latency
  double rtt_extra_ms = 0.0;    ///< added round trip (congestion/reroute)
};

/// How one plan fares in one scenario.
struct FaultScenarioOutcome {
  FaultScenario scenario;
  bool servable = false;     ///< some option can run under the scenario
  std::size_t best_option = 0;  ///< latency-minimal servable option
  double latency_ms = 0.0;   ///< of best_option (0 when unservable)
  double energy_mj = 0.0;    ///< of best_option (0 when unservable)
};

/// Plan-level fault pricing: expected behavior across a scenario set.
struct FaultEvaluation {
  std::vector<FaultScenarioOutcome> outcomes;
  /// Probability mass of scenarios the plan can serve at all. 1.0 whenever
  /// the plan has an edge-only option (it survives any cloud fault).
  double availability = 0.0;
  /// Conditional expectations over the servable scenarios.
  double expected_latency_ms = 0.0;
  double expected_energy_mj = 0.0;
  /// expected_latency_ms over the nominal (fault-free) best latency at the
  /// evaluator's distribution mean; >= 1 means faults cost latency.
  double degradation_ratio = 1.0;
};

/// A standard five-scenario fault mix around a nominal throughput:
/// nominal conditions plus deep fade, cloud outage, RTT spike, and edge
/// straggler. Probabilities sum to exactly 1.
std::vector<FaultScenario> default_fault_scenarios(double nominal_tu_mbps);

/// Evaluates architectures against a throughput distribution using the
/// analytic cost curves of each deployment option.
class RobustDeploymentEvaluator {
 public:
  RobustDeploymentEvaluator(const DeploymentEvaluator& evaluator,
                            ThroughputDistribution distribution);

  /// Compiles `arch` once and scores the plan across the distribution.
  RobustEvaluation evaluate(const dnn::Architecture& arch) const;

  /// Scores an already-compiled plan — no predictor work at all. Use this
  /// to evaluate the same architecture under several distributions.
  RobustEvaluation evaluate(const DeploymentPlan& plan) const;

  /// Prices `plan` over a discrete fault-scenario mix (probabilities must
  /// sum to 1; throws std::invalid_argument on malformed scenarios). Per
  /// scenario the latency-minimal option still servable is chosen — cloud
  /// unavailability restricts the choice to edge-only options — and the
  /// result aggregates availability, conditional expected latency/energy,
  /// and the degradation ratio against the fault-free best latency at the
  /// distribution mean.
  FaultEvaluation evaluate_under_faults(const DeploymentPlan& plan,
                                        const std::vector<FaultScenario>& scenarios) const;

  const ThroughputDistribution& distribution() const { return distribution_; }

 private:
  const DeploymentEvaluator& evaluator_;
  ThroughputDistribution distribution_;
};

}  // namespace lens::core
