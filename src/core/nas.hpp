#pragma once
// Algorithm 2: the MOBO-based NAS drivers.
//
// LENS and the Traditional baseline share everything except how the
// performance objectives are computed:
//  - LENS (kBestDeployment): Algorithm 1 — each candidate is scored under
//    its best partitioning / All-Edge / All-Cloud option.
//  - Traditional (kAllEdgeOnly): platform-aware NAS for the edge device —
//    the candidate is scored as if it always runs entirely on the edge.
//    (Its Pareto set can be partitioned *post hoc*; see analysis.hpp.)

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/accuracy.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "core/run_checkpoint.hpp"
#include "core/search_space.hpp"
#include "opt/mobo.hpp"
#include "opt/nsga2.hpp"

namespace lens::core {

/// Objective vector layout used throughout the NAS drivers.
enum Objective : std::size_t {
  kErrorObjective = 0,    ///< test error, %
  kLatencyObjective = 1,  ///< end-to-end latency, ms
  kEnergyObjective = 2,   ///< edge energy, mJ
};
inline constexpr std::size_t kNumObjectives = 3;

/// How the performance objectives of a candidate are derived from its
/// Algorithm-1 evaluation.
enum class ObjectiveMode {
  kBestDeployment,  ///< LENS: min over all deployment options
  kAllEdgeOnly,     ///< Traditional: All-Edge costs only
};

/// Which search engine drives Algorithm 2's outer loop. The paper uses
/// MOBO (Dragonfly); NSGA-II and pure random search are ablation baselines
/// under matched evaluation budgets.
enum class SearchStrategy { kMobo, kNsga2, kRandom };

struct NasConfig {
  opt::MoboConfig mobo;
  /// Used when strategy == kNsga2; population*(generations+1) evaluations.
  opt::Nsga2Config nsga2;
  SearchStrategy strategy = SearchStrategy::kMobo;
  double tu_mbps = 3.0;  ///< expected upload throughput (paper: 3 Mbps)
  /// K-tier searches: expected throughput per hop (radio first). When
  /// non-empty it must match the evaluator topology's hop count and replaces
  /// tu_mbps for pricing; leave empty for two-tier searches, whose pricing
  /// path is byte-for-byte the legacy scalar one. The memoized plans are
  /// throughput-independent either way, so the cache key stays the genotype.
  std::vector<double> hop_tu_mbps;
  ObjectiveMode mode = ObjectiveMode::kBestDeployment;
  /// Cross-config warm start (kMobo only): these genotypes are re-evaluated
  /// first (deterministic, cheap) and seeded into the GP models; they count
  /// toward the warm-up budget. Load them with core::load_genotypes_csv.
  /// Use this to transfer observations into a *different* search config
  /// (another throughput/region); for exact crash recovery use resume_run.
  std::vector<Genotype> warm_start;
  /// Periodic durable snapshots (kMobo only). With a non-empty directory the
  /// driver saves a rotated engine snapshot every `checkpoint.period`
  /// evaluations and after the final one, and polls the graceful-flush
  /// interrupt flag between chunks.
  CheckpointConfig checkpoint;
  /// Exact-state resume (kMobo only): restore the newest valid snapshot in
  /// this directory and continue; the completed trajectory is bit-identical
  /// to the uninterrupted run under the same config. Mutually exclusive
  /// with warm_start.
  std::string resume_run;
};

/// One evaluated candidate with full deployment detail.
struct EvaluatedCandidate {
  Genotype genotype;
  std::string name;
  /// Objective values as seen by the search (per the driver's mode).
  double error_percent = 0.0;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Full Algorithm-1 result (all options), regardless of mode.
  DeploymentEvaluation deployment;

  std::vector<double> objectives() const {
    return {error_percent, latency_ms, energy_mj};
  }
};

/// FNV-1a over the genotype entries; keys the driver's memoizing
/// evaluation cache. Cached entries are compiled DeploymentPlans —
/// throughput-independent — so the key is the genotype alone and a cached
/// candidate can be re-priced at any t_u without predictor work.
struct GenotypeHash {
  std::size_t operator()(const Genotype& genotype) const noexcept;
};

/// Search outcome: every explored candidate plus the 3-objective Pareto
/// front (ParetoPoint::id indexes `history`).
struct NasResult {
  std::vector<EvaluatedCandidate> history;
  opt::ParetoFront front;
  /// History entries served from the memoizing evaluation cache (duplicate
  /// genotypes the search re-visited) vs evaluated fresh.
  std::size_t cache_hits = 0;
  std::size_t unique_evaluations = 0;
  /// True when the search stopped early on SIGINT/SIGTERM after flushing a
  /// final checkpoint (see CheckpointConfig); the partial result is valid
  /// and resumable via NasConfig::resume_run.
  bool interrupted = false;
};

/// Runs Algorithm 2 over a search space with the configured objective mode.
///
/// Batch evaluations (MOBO warm-up, NSGA-II generations, random search) fan
/// Algorithm-1 out over the lens::par pool; the accuracy model is always
/// queried serially in history order, so it need not be thread-safe. With a
/// fixed config the result is bit-identical for any thread count.
class NasDriver {
 public:
  NasDriver(const SearchSpace& space, const DeploymentEvaluator& evaluator,
            const AccuracyModel& accuracy, NasConfig config);

  /// Execute the full search (C_init random + N_iter MOBO evaluations).
  NasResult run();

 private:
  /// Compiled genotype, memoized across the search. The plan carries no
  /// throughput, so the cache never needs invalidating on t_u changes.
  struct CacheEntry {
    std::string name;
    DeploymentPlan plan;
    double error_percent = 0.0;
  };

  /// Evaluate a batch of normalized design points (uncached genotypes in
  /// parallel), append one history record per input in input order, and
  /// return the objective vectors.
  std::vector<std::vector<double>> evaluate_batch(const std::vector<std::vector<double>>& xs,
                                                  NasResult& result);

  /// kMobo branch of run(): warm-start seeding or exact-state resume, then
  /// either one uninterrupted run() or the checkpointed stepping loop.
  void run_mobo(NasResult& result);

  const SearchSpace& space_;
  const DeploymentEvaluator& evaluator_;
  const AccuracyModel& accuracy_;
  NasConfig config_;
  std::unordered_map<Genotype, CacheEntry, GenotypeHash> cache_;
  std::size_t cache_hits_ = 0;
};

}  // namespace lens::core
