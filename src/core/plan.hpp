#pragma once
// Compiled deployment plans: Algorithm 1 split into compile(arch) / price(tu).
//
// compile() runs the per-layer performance predictors exactly once and
// precomputes everything that does not depend on the upload throughput:
// latency/energy prefix sums, cloud suffix sums, memory-feasible split
// points, and the closed-form cost-vs-t_u curve pair of every option
// (constant + per_inverse_tu / t_u, with the comm algebra supplied by
// comm::CommModel). price() then produces a full DeploymentEvaluation in
// O(options) with zero predictor calls — and, via price_into / objectives_at,
// zero allocation — so multi-throughput consumers (robust evaluation,
// regional portfolios, threshold analysis, the serving simulator) pay the
// predictor pipeline once per architecture instead of once per query.
//
// Determinism contract: price(tu) reproduces the pre-refactor
// DeploymentEvaluator::evaluate(arch, tu) bit-for-bit (same arithmetic,
// same operation order, same option ordering), so plans can be cached and
// shared freely without perturbing search trajectories.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"

namespace lens::core {

/// The throughput-dependent summary of one priced plan: both objective
/// minima and their argmin options. Allocation-free.
struct PricedObjectives {
  double best_latency_ms = 0.0;
  double best_energy_mj = 0.0;
  std::size_t best_latency_option = 0;
  std::size_t best_energy_option = 0;
};

/// Throughput-independent compilation of Algorithm 1 for one architecture.
///
/// The stored options carry only the t_u-free fields (edge costs, tx bytes,
/// cloud suffix latency, resident weights); their latency_ms / energy_mj
/// fields stay zero until priced. A plan is self-contained — it copies the
/// communication model — so it can outlive the evaluator that compiled it
/// (e.g. inside the NAS driver's genotype-keyed cache).
class DeploymentPlan {
 public:
  DeploymentPlan() = default;

  std::size_t num_options() const { return options_.size(); }
  /// Option descriptors with unpriced (zero) latency_ms / energy_mj.
  const std::vector<DeploymentOption>& options() const { return options_; }
  const std::vector<double>& layer_latency_ms() const { return layer_latency_ms_; }
  const std::vector<double>& layer_energy_mj() const { return layer_energy_mj_; }
  const comm::CommModel& comm() const { return comm_; }

  /// Closed-form cost-vs-t_u curve of each option, aligned with options().
  const std::vector<comm::CostCurve>& latency_curves() const { return latency_curves_; }
  const std::vector<comm::CostCurve>& energy_curves() const { return energy_curves_; }

  /// End-to-end cost of option `index` at throughput `tu_mbps`, using the
  /// exact arithmetic of the legacy evaluate() path (bit-identical).
  double option_latency_ms(std::size_t index, double tu_mbps) const;
  double option_energy_mj(std::size_t index, double tu_mbps) const;

  /// Full Algorithm-1 result at `tu_mbps`: O(options), no predictor calls.
  DeploymentEvaluation price(double tu_mbps) const;

  /// As price(), but reuses `out`'s storage — allocation-free once the
  /// vectors have grown to capacity (hot loops over throughput sweeps).
  void price_into(double tu_mbps, DeploymentEvaluation& out) const;

  /// Objective minima only — no DeploymentEvaluation materialized at all.
  PricedObjectives objectives_at(double tu_mbps) const;

  /// objectives_at over a throughput sweep (one result per input, in order).
  std::vector<PricedObjectives> price_batch(const std::vector<double>& tus_mbps) const;

 private:
  friend class DeploymentEvaluator;

  std::vector<DeploymentOption> options_;
  std::vector<comm::CostCurve> latency_curves_;
  std::vector<comm::CostCurve> energy_curves_;
  std::vector<double> layer_latency_ms_;
  std::vector<double> layer_energy_mj_;
  comm::CommModel comm_{comm::WirelessTechnology::kWifi, 0.0};
};

}  // namespace lens::core
