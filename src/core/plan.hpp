#pragma once
// Compiled deployment plans: Algorithm 1 split into compile(arch) / price(tu).
//
// compile() runs the per-layer performance predictors exactly once and
// precomputes everything that does not depend on the upload throughput:
// latency/energy prefix sums, cloud suffix sums, memory-feasible split
// points, and the closed-form cost-vs-t_u curve pair of every option
// (constant + per_inverse_tu / t_u, with the comm algebra supplied by
// comm::CommModel). price() then produces a full DeploymentEvaluation in
// O(options) with zero predictor calls — and, via price_into / objectives_at,
// zero allocation — so multi-throughput consumers (robust evaluation,
// regional portfolios, threshold analysis, the serving simulator) pay the
// predictor pipeline once per architecture instead of once per query.
//
// Determinism contract: price(tu) reproduces the pre-refactor
// DeploymentEvaluator::evaluate(arch, tu) bit-for-bit (same arithmetic,
// same operation order, same option ordering), so plans can be cached and
// shared freely without perturbing search trajectories.
//
// K-tier plans: when the evaluator is built from a TierTopology with K >= 3
// tiers, the option set is the dominance-pruned cut-point lattice
// (0 <= c_1 <= ... <= c_{K-1} <= n) and pricing takes a per-hop throughput
// vector. Plans stay throughput-independent — the NAS memo cache keyed by
// genotype alone is unaffected. Two-tier plans are compiled by the frozen
// legacy path above, so the determinism contract holds verbatim at K=2.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"

namespace lens::core {

/// The throughput-dependent summary of one priced plan: both objective
/// minima and their argmin options. Allocation-free.
struct PricedObjectives {
  double best_latency_ms = 0.0;
  double best_energy_mj = 0.0;
  std::size_t best_latency_option = 0;
  std::size_t best_energy_option = 0;
};

/// Throughput-independent compilation of Algorithm 1 for one architecture.
///
/// The stored options carry only the t_u-free fields (edge costs, tx bytes,
/// cloud suffix latency, resident weights); their latency_ms / energy_mj
/// fields stay zero until priced. A plan is self-contained — it copies the
/// communication model — so it can outlive the evaluator that compiled it
/// (e.g. inside the NAS driver's genotype-keyed cache).
class DeploymentPlan {
 public:
  DeploymentPlan() = default;

  std::size_t num_options() const { return options_.size(); }
  /// Option descriptors with unpriced (zero) latency_ms / energy_mj.
  const std::vector<DeploymentOption>& options() const { return options_; }
  const std::vector<double>& layer_latency_ms() const { return layer_latency_ms_; }
  const std::vector<double>& layer_energy_mj() const { return layer_energy_mj_; }
  /// Hop-0 communication model (the device radio).
  const comm::CommModel& comm() const { return comm_; }
  /// Communication model of hop `h` (0 = device radio).
  const comm::CommModel& hop(std::size_t h) const;

  /// Hierarchy shape this plan was compiled for (2 tiers / 1 hop for the
  /// classic edge-cloud pair and for default-constructed plans).
  std::size_t num_tiers() const { return num_tiers_; }
  std::size_t num_hops() const { return num_tiers_ - 1; }
  const std::vector<std::string>& tier_names() const { return tier_names_; }

  /// Closed-form cost-vs-t_u curve of each option, aligned with options().
  /// Two-tier plans only; K >= 3 plans expose latency_surfaces() instead
  /// (these stay empty there).
  const std::vector<comm::CostCurve>& latency_curves() const { return latency_curves_; }
  const std::vector<comm::CostCurve>& energy_curves() const { return energy_curves_; }

  /// Per-option multi-hop cost surfaces, aligned with options(). Populated
  /// for every K (at K=2 they carry the same coefficients as the 1-D curves).
  const std::vector<comm::MultiHopCurve>& latency_surfaces() const { return latency_surfaces_; }
  const std::vector<comm::MultiHopCurve>& energy_surfaces() const { return energy_surfaces_; }

  /// 1-D curves in hop `free_hop` with every other hop pinned at
  /// `fixed_tu_mbps` (full per-hop vector; the free entry is ignored). The
  /// bridge that lets the 1-D threshold/deployer machinery drive K >= 3
  /// plans.
  std::vector<comm::CostCurve> collapsed_latency_curves(
      std::size_t free_hop, const std::vector<double>& fixed_tu_mbps) const;
  std::vector<comm::CostCurve> collapsed_energy_curves(
      std::size_t free_hop, const std::vector<double>& fixed_tu_mbps) const;

  /// Allocation-free collapse into caller-owned storage (resized to
  /// options().size()), same arithmetic as the allocating forms above. The
  /// fleet re-collapses per (step, region) when a regional backhaul fault
  /// stretches a hop, so this runs thousands of times per run. Note the
  /// energy surfaces only ever carry a hop-0 coefficient (backhaul
  /// transfers are not billed to the battery), so collapse_energy_curves_
  /// into yields the same curves for every backhaul vector.
  void collapse_latency_curves_into(std::size_t free_hop,
                                    const std::vector<double>& fixed_tu_mbps,
                                    std::vector<comm::CostCurve>& out) const;
  void collapse_energy_curves_into(std::size_t free_hop,
                                   const std::vector<double>& fixed_tu_mbps,
                                   std::vector<comm::CostCurve>& out) const;

  /// End-to-end cost of option `index` at throughput `tu_mbps`, using the
  /// exact arithmetic of the legacy evaluate() path (bit-identical).
  /// Two-tier plans only.
  double option_latency_ms(std::size_t index, double tu_mbps) const;
  double option_energy_mj(std::size_t index, double tu_mbps) const;

  /// Per-hop-throughput forms; at K=2 a one-element vector delegates to the
  /// scalar (bit-identical) path.
  double option_latency_ms(std::size_t index, const std::vector<double>& tu_mbps) const;
  double option_energy_mj(std::size_t index, const std::vector<double>& tu_mbps) const;

  /// Full Algorithm-1 result at `tu_mbps`: O(options), no predictor calls.
  /// Two-tier plans only (throws std::logic_error otherwise).
  DeploymentEvaluation price(double tu_mbps) const;

  /// K-tier pricing: one throughput per hop, tu_mbps[0] being the device
  /// radio. A one-element vector on a two-tier plan takes the scalar path.
  DeploymentEvaluation price(const std::vector<double>& tu_mbps) const;

  /// As price(), but reuses `out`'s storage — allocation-free once the
  /// vectors have grown to capacity (hot loops over throughput sweeps).
  void price_into(double tu_mbps, DeploymentEvaluation& out) const;
  void price_into(const std::vector<double>& tu_mbps, DeploymentEvaluation& out) const;

  /// Objective minima only — no DeploymentEvaluation materialized at all.
  PricedObjectives objectives_at(double tu_mbps) const;
  PricedObjectives objectives_at(const std::vector<double>& tu_mbps) const;

  /// objectives_at over a throughput sweep (one result per input, in order).
  /// Two-tier plans sweep the radio throughput; K >= 3 plans use
  /// price_batch_per_hop below.
  std::vector<PricedObjectives> price_batch(const std::vector<double>& tus_mbps) const;
  std::vector<PricedObjectives> price_batch_per_hop(
      const std::vector<std::vector<double>>& tus_mbps) const;

  /// Allocation-free core of price_batch: writes out[i] = objective minima
  /// at tus_mbps[i] into caller-owned storage (out.size() must match).
  /// price_batch delegates here; the fleet inner loop calls this directly
  /// with per-shard buffers so a million-device step allocates nothing.
  void price_batch_into(std::span<const double> tus_mbps,
                        std::span<PricedObjectives> out) const;

  /// Per-hop allocation-free variant (K >= 3 plans): one throughput vector
  /// per result slot, written into caller-owned `out`.
  void price_batch_per_hop_into(std::span<const std::vector<double>> tus_mbps,
                                std::span<PricedObjectives> out) const;

 private:
  friend class DeploymentEvaluator;

  void require_two_tier(const char* what) const;

  std::vector<DeploymentOption> options_;
  std::vector<comm::CostCurve> latency_curves_;
  std::vector<comm::CostCurve> energy_curves_;
  std::vector<comm::MultiHopCurve> latency_surfaces_;
  std::vector<comm::MultiHopCurve> energy_surfaces_;
  std::vector<double> layer_latency_ms_;
  std::vector<double> layer_energy_mj_;
  comm::CommModel comm_{comm::WirelessTechnology::kWifi, 0.0};
  /// Hops past the radio (empty at K=2); hop h >= 1 lives at index h-1.
  std::vector<comm::CommModel> later_hops_;
  std::vector<std::string> tier_names_;
  std::size_t num_tiers_ = 2;
};

}  // namespace lens::core
