#pragma once
// The experimental search space of the paper (Fig. 4): a VGG-derived family
// of 5 convolutional blocks — each with a searchable depth, kernel size,
// filter count and an optional 2x2 max-pool — followed by one mandatory and
// one optional fully-connected layer, then the softmax classifier. A hard
// constraint requires at least 4 pooling layers per architecture ("to
// highlight cases that can benefit from layer distribution").

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "dnn/architecture.hpp"

namespace lens::core {

/// Encoded architecture: one integer index per search dimension.
using Genotype = std::vector<int>;

struct SearchSpaceConfig {
  dnn::TensorShape input{224, 224, 3};  ///< performance-objective input (147 kB)
  int num_classes = 10;                 ///< CIFAR-10
  int num_blocks = 5;
  std::vector<int> depths{1, 2, 3};
  std::vector<int> kernels{3, 5, 7};
  std::vector<int> filters{24, 36, 64, 96, 128, 256};
  std::vector<int> fc_units{256, 512, 1024, 2048, 4096, 8192};
  int min_pools = 4;
};

/// Encode/decode/sample interface over the genotype grid.
///
/// Genotype layout (all entries are indices into the config lists):
///   [block b: depth, kernel, filters, pool?] * num_blocks,
///   fc1_units, fc2_present?, fc2_units
/// The trailing classifier FC (num_classes, softmax) is always appended by
/// decode() and is not searched.
class SearchSpace {
 public:
  explicit SearchSpace(SearchSpaceConfig config = {});

  const SearchSpaceConfig& config() const { return config_; }
  std::size_t num_dimensions() const { return cardinalities_.size(); }
  const std::vector<int>& cardinalities() const { return cardinalities_; }

  /// log10 of the total number of genotypes on the grid (before the pooling
  /// constraint); a size indicator for reports.
  double log10_size() const;

  /// True when the genotype is in-range and satisfies the >= min_pools
  /// constraint.
  bool is_valid(const Genotype& genotype) const;

  /// Rejection-sample a valid genotype.
  Genotype random(std::mt19937_64& rng) const;

  /// Materialize the architecture. Throws std::invalid_argument for invalid
  /// genotypes.
  dnn::Architecture decode(const Genotype& genotype) const;

  /// Map a genotype onto [0,1]^d for the GP kernel (index / (cardinality-1)).
  std::vector<double> to_normalized(const Genotype& genotype) const;

  /// Inverse of to_normalized (nearest grid point).
  Genotype from_normalized(const std::vector<double>& x) const;

  /// Short deterministic name for a genotype (stable across runs).
  std::string architecture_name(const Genotype& genotype) const;

  /// Number of pooling layers the genotype instantiates.
  int count_pools(const Genotype& genotype) const;

 private:
  void check_in_range(const Genotype& genotype) const;

  SearchSpaceConfig config_;
  std::vector<int> cardinalities_;
};

}  // namespace lens::core
