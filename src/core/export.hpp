#pragma once
// CSV export of search results, for plotting Fig. 6-style scatter/frontier
// figures with external tooling.

#include <string>

#include "core/nas.hpp"

namespace lens::core {

/// Write one row per explored candidate:
///   index,name,error_percent,latency_ms,energy_mj,on_front,
///   latency_split,energy_split,all_edge_latency_ms,all_edge_energy_mj
/// Written atomically (temp + fsync + rename) with a trailing
/// `# lens:fnv1a ...` integrity footer — still plain CSV for external
/// tooling (read with comment='#'). Throws std::runtime_error on I/O
/// failure; a crash mid-write leaves the previous file intact.
void save_history_csv(const NasResult& result, const SearchSpace& space,
                      const std::string& path);

/// Write only the Pareto-front members (same columns, same durability).
void save_front_csv(const NasResult& result, const SearchSpace& space,
                    const std::string& path);

/// Read back the genotypes of a CSV written by save_history_csv /
/// save_front_csv (the trailing `genotype` column, dash-separated indices).
/// The integrity footer is verified first, so truncated or corrupted files
/// are rejected outright rather than yielding a partial genotype list.
/// Invalid genotypes are rejected. Use with NasConfig::warm_start to
/// warm-start a (possibly different) search config. Throws
/// std::runtime_error / std::invalid_argument on bad files.
std::vector<Genotype> load_genotypes_csv(const SearchSpace& space, const std::string& path);

}  // namespace lens::core
