#include "core/export.hpp"

#include <iomanip>
#include <set>
#include <sstream>

#include "io/io.hpp"

namespace lens::core {

namespace {

constexpr const char* kHeader =
    "index,name,error_percent,latency_ms,energy_mj,on_front,"
    "latency_split,energy_split,all_edge_latency_ms,all_edge_energy_mj,genotype\n";

std::string encode_genotype(const Genotype& genotype) {
  std::string out;
  for (std::size_t i = 0; i < genotype.size(); ++i) {
    if (i > 0) out += '-';
    out += std::to_string(genotype[i]);
  }
  return out;
}

void write_row(std::ostream& out, std::size_t index, const EvaluatedCandidate& c,
               const SearchSpace& space, bool on_front) {
  const dnn::Architecture arch = space.decode(c.genotype);
  out << index << ',' << c.name << ',' << c.error_percent << ',' << c.latency_ms << ','
      << c.energy_mj << ',' << (on_front ? 1 : 0) << ','
      << c.deployment.latency_choice().label(arch) << ','
      << c.deployment.energy_choice().label(arch) << ',';
  if (c.deployment.has_all_edge()) {
    out << c.deployment.all_edge().latency_ms << ',' << c.deployment.all_edge().energy_mj;
  } else {
    out << "nan,nan";
  }
  out << ',' << encode_genotype(c.genotype) << '\n';
}

std::set<std::size_t> front_ids(const NasResult& result) {
  std::set<std::size_t> ids;
  for (const opt::ParetoPoint& p : result.front.points()) ids.insert(p.id);
  return ids;
}

}  // namespace

void save_history_csv(const NasResult& result, const SearchSpace& space,
                      const std::string& path) {
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << std::setprecision(12) << kHeader;
    const std::set<std::size_t> ids = front_ids(result);
    for (std::size_t i = 0; i < result.history.size(); ++i) {
      write_row(out, i, result.history[i], space, ids.count(i) > 0);
    }
  });
}

void save_front_csv(const NasResult& result, const SearchSpace& space,
                    const std::string& path) {
  io::atomic_write_checked(path, [&](std::ostream& out) {
    out << std::setprecision(12) << kHeader;
    for (const opt::ParetoPoint& p : result.front.points()) {
      write_row(out, p.id, result.history.at(p.id), space, true);
    }
  });
}

std::vector<Genotype> load_genotypes_csv(const SearchSpace& space, const std::string& path) {
  // Integrity first: a CSV truncated mid-write (or with bytes appended)
  // fails the footer check here instead of yielding a silently shorter
  // genotype list.
  std::istringstream in(io::read_checked(path));
  std::string line;
  if (!std::getline(in, line) || line.find(",genotype") == std::string::npos) {
    throw std::invalid_argument("load_genotypes_csv: missing genotype column in " + path);
  }
  std::vector<Genotype> genotypes;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t last_comma = line.rfind(',');
    if (last_comma == std::string::npos) {
      throw std::invalid_argument("load_genotypes_csv: malformed row: " + line);
    }
    const std::string encoded = line.substr(last_comma + 1);
    Genotype genotype;
    std::size_t position = 0;
    while (position <= encoded.size()) {
      const std::size_t dash = encoded.find('-', position);
      const std::string digit = encoded.substr(
          position, dash == std::string::npos ? std::string::npos : dash - position);
      try {
        genotype.push_back(std::stoi(digit));
      } catch (const std::exception&) {
        throw std::invalid_argument("load_genotypes_csv: bad genotype token '" + digit +
                                    "'");
      }
      if (dash == std::string::npos) break;
      position = dash + 1;
    }
    if (!space.is_valid(genotype)) {
      throw std::invalid_argument("load_genotypes_csv: genotype invalid for this space");
    }
    genotypes.push_back(std::move(genotype));
  }
  return genotypes;
}

}  // namespace lens::core
