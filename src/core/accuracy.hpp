#pragma once
// Accuracy objective models.
//
// The paper trains each candidate on CIFAR-10 for 10 epochs and reports test
// error. Doing that for 300-iteration searches is out of scope here (see
// DESIGN.md), so the default is a surrogate: a deterministic test-error
// model over architecture statistics, calibrated to the 10-epoch CIFAR-10
// error band, with architecture-seeded noise standing in for training
// stochasticity. A real from-scratch trainer (lens::nn +
// core::TrainedAccuracyEvaluator) covers the end-to-end path at small scale.

#include <map>
#include <random>

#include "core/search_space.hpp"
#include "dnn/architecture.hpp"

namespace lens::core {

/// Interface for the error objective (test error, %; minimization).
class AccuracyModel {
 public:
  virtual ~AccuracyModel() = default;

  /// Estimated test error in percent for the decoded architecture.
  virtual double test_error_percent(const Genotype& genotype,
                                    const dnn::Architecture& arch) const = 0;
};

/// Deterministic capacity/depth-based surrogate.
///
/// Error decreases with log-capacity and conv depth (diminishing returns),
/// gains a mild bonus for larger kernels and a second FC layer, and pays an
/// under-training penalty for very large models (a 10-epoch budget cannot
/// saturate them). A genotype-hashed noise term (std ~= noise_std) emulates
/// run-to-run training variance while keeping experiments reproducible.
struct SurrogateAccuracyConfig {
  double base_error = 56.0;       ///< error of a minimal architecture
  double capacity_gain = 9.5;     ///< % per decade of parameters above baseline
  double capacity_baseline = 5.0; ///< log10(params) where capacity starts paying
                                  ///< (5.0 fits the paper's space; lower it for
                                  ///< small training-sized spaces)
  double depth_gain = 0.8;        ///< % per conv layer
  double kernel_gain = 1.0;       ///< bonus when mean kernel > 3
  double fc2_gain = 0.8;          ///< bonus for the optional second FC
  double overcapacity_knee = 7.5; ///< log10(params) where under-training bites
  double overcapacity_slope = 4.0;
  double min_error = 11.0;
  double max_error = 65.0;
  double noise_std = 1.2;
  unsigned seed = 1234;           ///< decorrelates replicate "training runs"
};

class SurrogateAccuracyModel final : public AccuracyModel {
 public:
  explicit SurrogateAccuracyModel(SurrogateAccuracyConfig config = {});

  double test_error_percent(const Genotype& genotype,
                            const dnn::Architecture& arch) const override;

 private:
  SurrogateAccuracyConfig config_;
};

/// Memoizing decorator: caches per-genotype results of an underlying model.
/// Worth wrapping around TrainedAccuracyEvaluator (minutes per miss) when
/// local refinement or portfolio planning re-queries genotypes; safe for
/// any deterministic model. Not thread-safe.
class CachedAccuracyModel final : public AccuracyModel {
 public:
  /// `inner` must outlive this object.
  explicit CachedAccuracyModel(const AccuracyModel& inner) : inner_(inner) {}

  double test_error_percent(const Genotype& genotype,
                            const dnn::Architecture& arch) const override;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  const AccuracyModel& inner_;
  mutable std::map<Genotype, double> cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace lens::core
