#pragma once
// Accuracy objective backed by real training (the paper's actual pipeline,
// at laptop scale): decode the genotype against a training-sized input,
// build a trainable network, train for a few epochs on ShapeSet, and report
// held-out test error.

#include <random>

#include "core/accuracy.hpp"
#include "nn/dataset.hpp"

namespace lens::core {

struct TrainedAccuracyConfig {
  dnn::TensorShape train_input{16, 16, 3};  ///< shapes the trainable decode
  std::size_t train_samples = 1024;
  std::size_t test_samples = 256;
  int epochs = 3;                           ///< paper: 10 epochs on CIFAR-10
  nn::TrainerConfig trainer;
  nn::ShapeSetConfig dataset;
  unsigned init_seed = 2024;                ///< weight-initialization stream
};

/// Trains each queried candidate from scratch and returns test error.
///
/// The genotype is re-decoded with `train_input` as the input shape (the
/// performance objectives keep using the search space's own 224x224x3
/// input, exactly as the paper decouples CIFAR-10 accuracy from the 147 kB
/// performance-evaluation input). Architectures whose pooling stack
/// collapses the training input below 1x1 are rejected with
/// std::invalid_argument — use search spaces sized for the training input.
class TrainedAccuracyEvaluator final : public AccuracyModel {
 public:
  TrainedAccuracyEvaluator(const SearchSpace& space, TrainedAccuracyConfig config = {});

  double test_error_percent(const Genotype& genotype,
                            const dnn::Architecture& arch) const override;

 private:
  SearchSpaceConfig train_space_config_;
  TrainedAccuracyConfig config_;
  nn::LabeledData train_data_;
  nn::LabeledData test_data_;
};

}  // namespace lens::core
