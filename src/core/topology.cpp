#include "core/topology.hpp"

#include <stdexcept>
#include <utility>

namespace lens::core {

TierTopology::TierTopology(std::vector<TierSpec> tiers, std::vector<comm::CommModel> hops)
    : tiers_(std::move(tiers)), hops_(std::move(hops)) {
  if (tiers_.size() < 2) {
    throw std::invalid_argument("TierTopology: need at least 2 tiers (edge + one remote)");
  }
  if (hops_.size() + 1 != tiers_.size()) {
    throw std::invalid_argument("TierTopology: K tiers require exactly K-1 hops");
  }
  if (tiers_.front().model == nullptr) {
    throw std::invalid_argument("TierTopology: tier 0 (the edge device) needs a model");
  }
  for (const TierSpec& tier : tiers_) {
    if (tier.name.empty()) {
      throw std::invalid_argument("TierTopology: every tier needs a name");
    }
  }
}

TierTopology TierTopology::two_tier(const perf::LayerPerformanceModel& edge_model,
                                    comm::CommModel radio, std::uint64_t edge_budget_bytes,
                                    const perf::LayerPerformanceModel* cloud_model) {
  std::vector<TierSpec> tiers;
  tiers.push_back({"edge", &edge_model, edge_budget_bytes});
  tiers.push_back({"cloud", cloud_model, 0});
  return TierTopology(std::move(tiers), {std::move(radio)});
}

std::vector<std::string> TierTopology::tier_names() const {
  std::vector<std::string> names;
  names.reserve(tiers_.size());
  for (const TierSpec& tier : tiers_) names.push_back(tier.name);
  return names;
}

TierTopology edge_fog_cloud(const perf::LayerPerformanceModel& edge_model,
                            const perf::LayerPerformanceModel& fog_model,
                            const perf::LayerPerformanceModel* cloud_model,
                            const EdgeFogCloudConfig& config) {
  std::vector<TierSpec> tiers;
  tiers.push_back({"edge", &edge_model, config.edge_memory_budget_bytes});
  tiers.push_back({"fog", &fog_model, config.fog_memory_budget_bytes});
  tiers.push_back({"cloud", cloud_model, 0});
  return TierTopology(std::move(tiers), {config.radio, config.backhaul});
}

}  // namespace lens::core
