#include "core/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lens::core {

namespace {

/// Beasley-Springer-Moro inverse normal CDF (sufficient accuracy for
/// quantile discretization).
double inverse_normal_cdf(double p) {
  static const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                             -25.44106049637};
  static const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                             3.13082909833};
  static const double c[] = {0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
                             0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
                             0.0000321767881768, 0.0000002888167364, 0.0000003960315187};
  const double y = p - 0.5;
  if (std::abs(y) < 0.42) {
    const double r = y * y;
    return y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = p < 0.5 ? p : 1.0 - p;
  r = std::log(-std::log(r));
  double x = c[0];
  double power = 1.0;
  for (int i = 1; i < 9; ++i) {
    power *= r;
    x += c[i] * power;
  }
  return p < 0.5 ? -x : x;
}

/// Cost of one plan option at a specific throughput (the plan owns the
/// comm algebra; no formula is re-derived here).
double option_cost(const DeploymentPlan& plan, std::size_t index, double tu_mbps,
                   bool latency) {
  return latency ? plan.option_latency_ms(index, tu_mbps)
                 : plan.option_energy_mj(index, tu_mbps);
}

RobustMetric robust_metric(const DeploymentPlan& plan,
                           const ThroughputDistribution& distribution, bool latency) {
  RobustMetric metric;
  double best_fixed = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    double expected = 0.0;
    for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
      expected += distribution.weight[s] *
                  option_cost(plan, i, distribution.tu_mbps[s], latency);
    }
    if (expected < best_fixed) {
      best_fixed = expected;
      best_index = i;
    }
  }
  metric.expected_fixed_best = best_fixed;
  metric.fixed_best_option = best_index;

  double oracle = 0.0;
  for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
    double cheapest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < plan.num_options(); ++i) {
      cheapest = std::min(cheapest, option_cost(plan, i, distribution.tu_mbps[s], latency));
    }
    oracle += distribution.weight[s] * cheapest;
  }
  metric.expected_oracle = oracle;
  return metric;
}

}  // namespace

ThroughputDistribution ThroughputDistribution::log_normal(double median_mbps, double sigma,
                                                          std::size_t points) {
  if (median_mbps <= 0.0 || sigma < 0.0 || points == 0) {
    throw std::invalid_argument("ThroughputDistribution::log_normal: bad parameters");
  }
  ThroughputDistribution d;
  d.tu_mbps.reserve(points);
  d.weight.assign(points, 1.0 / static_cast<double>(points));
  for (std::size_t i = 0; i < points; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    d.tu_mbps.push_back(median_mbps * std::exp(sigma * inverse_normal_cdf(p)));
  }
  return d;
}

ThroughputDistribution ThroughputDistribution::from_samples(
    const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("ThroughputDistribution::from_samples: empty");
  }
  ThroughputDistribution d;
  d.tu_mbps = samples;
  d.weight.assign(samples.size(), 1.0 / static_cast<double>(samples.size()));
  d.validate();
  return d;
}

double ThroughputDistribution::mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < tu_mbps.size(); ++i) acc += tu_mbps[i] * weight[i];
  return acc;
}

void ThroughputDistribution::validate() const {
  if (tu_mbps.empty() || tu_mbps.size() != weight.size()) {
    throw std::invalid_argument("ThroughputDistribution: empty or mismatched");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < tu_mbps.size(); ++i) {
    if (tu_mbps[i] <= 0.0 || weight[i] < 0.0) {
      throw std::invalid_argument("ThroughputDistribution: non-positive support/weight");
    }
    total += weight[i];
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("ThroughputDistribution: weights must sum to 1");
  }
}

RobustDeploymentEvaluator::RobustDeploymentEvaluator(const DeploymentEvaluator& evaluator,
                                                     ThroughputDistribution distribution)
    : evaluator_(evaluator), distribution_(std::move(distribution)) {
  distribution_.validate();
}

RobustEvaluation RobustDeploymentEvaluator::evaluate(const dnn::Architecture& arch) const {
  return evaluate(evaluator_.compile(arch));
}

RobustEvaluation RobustDeploymentEvaluator::evaluate(const DeploymentPlan& plan) const {
  RobustEvaluation result;
  result.base = plan.price(distribution_.mean());
  result.latency = robust_metric(plan, distribution_, /*latency=*/true);
  result.energy = robust_metric(plan, distribution_, /*latency=*/false);
  return result;
}

}  // namespace lens::core
