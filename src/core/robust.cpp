#include "core/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lens::core {

namespace {

/// Beasley-Springer-Moro inverse normal CDF (sufficient accuracy for
/// quantile discretization).
double inverse_normal_cdf(double p) {
  static const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                             -25.44106049637};
  static const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                             3.13082909833};
  static const double c[] = {0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
                             0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
                             0.0000321767881768, 0.0000002888167364, 0.0000003960315187};
  const double y = p - 0.5;
  if (std::abs(y) < 0.42) {
    const double r = y * y;
    return y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = p < 0.5 ? p : 1.0 - p;
  r = std::log(-std::log(r));
  double x = c[0];
  double power = 1.0;
  for (int i = 1; i < 9; ++i) {
    power *= r;
    x += c[i] * power;
  }
  return p < 0.5 ? -x : x;
}

/// Cost of one plan option at a specific throughput (the plan owns the
/// comm algebra; no formula is re-derived here).
double option_cost(const DeploymentPlan& plan, std::size_t index, double tu_mbps,
                   bool latency) {
  return latency ? plan.option_latency_ms(index, tu_mbps)
                 : plan.option_energy_mj(index, tu_mbps);
}

RobustMetric robust_metric(const DeploymentPlan& plan,
                           const ThroughputDistribution& distribution, bool latency) {
  RobustMetric metric;
  double best_fixed = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < plan.num_options(); ++i) {
    double expected = 0.0;
    for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
      expected += distribution.weight[s] *
                  option_cost(plan, i, distribution.tu_mbps[s], latency);
    }
    if (expected < best_fixed) {
      best_fixed = expected;
      best_index = i;
    }
  }
  metric.expected_fixed_best = best_fixed;
  metric.fixed_best_option = best_index;

  double oracle = 0.0;
  for (std::size_t s = 0; s < distribution.tu_mbps.size(); ++s) {
    double cheapest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < plan.num_options(); ++i) {
      cheapest = std::min(cheapest, option_cost(plan, i, distribution.tu_mbps[s], latency));
    }
    oracle += distribution.weight[s] * cheapest;
  }
  metric.expected_oracle = oracle;
  return metric;
}

}  // namespace

ThroughputDistribution ThroughputDistribution::log_normal(double median_mbps, double sigma,
                                                          std::size_t points) {
  if (median_mbps <= 0.0 || sigma < 0.0 || points == 0) {
    throw std::invalid_argument("ThroughputDistribution::log_normal: bad parameters");
  }
  ThroughputDistribution d;
  d.tu_mbps.reserve(points);
  d.weight.assign(points, 1.0 / static_cast<double>(points));
  for (std::size_t i = 0; i < points; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    d.tu_mbps.push_back(median_mbps * std::exp(sigma * inverse_normal_cdf(p)));
  }
  return d;
}

ThroughputDistribution ThroughputDistribution::from_samples(
    const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("ThroughputDistribution::from_samples: empty");
  }
  ThroughputDistribution d;
  d.tu_mbps = samples;
  d.weight.assign(samples.size(), 1.0 / static_cast<double>(samples.size()));
  d.validate();
  return d;
}

double ThroughputDistribution::mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < tu_mbps.size(); ++i) acc += tu_mbps[i] * weight[i];
  return acc;
}

void ThroughputDistribution::validate() const {
  if (tu_mbps.empty() || tu_mbps.size() != weight.size()) {
    throw std::invalid_argument("ThroughputDistribution: empty or mismatched");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < tu_mbps.size(); ++i) {
    if (tu_mbps[i] <= 0.0 || weight[i] < 0.0) {
      throw std::invalid_argument("ThroughputDistribution: non-positive support/weight");
    }
    total += weight[i];
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("ThroughputDistribution: weights must sum to 1");
  }
}

RobustDeploymentEvaluator::RobustDeploymentEvaluator(const DeploymentEvaluator& evaluator,
                                                     ThroughputDistribution distribution)
    : evaluator_(evaluator), distribution_(std::move(distribution)) {
  distribution_.validate();
}

RobustEvaluation RobustDeploymentEvaluator::evaluate(const dnn::Architecture& arch) const {
  return evaluate(evaluator_.compile(arch));
}

RobustEvaluation RobustDeploymentEvaluator::evaluate(const DeploymentPlan& plan) const {
  RobustEvaluation result;
  result.base = plan.price(distribution_.mean());
  result.latency = robust_metric(plan, distribution_, /*latency=*/true);
  result.energy = robust_metric(plan, distribution_, /*latency=*/false);
  return result;
}

std::vector<FaultScenario> default_fault_scenarios(double nominal_tu_mbps) {
  if (nominal_tu_mbps <= 0.0) {
    throw std::invalid_argument("default_fault_scenarios: non-positive throughput");
  }
  return {
      {"nominal", 0.85, nominal_tu_mbps, true, 1.0, 0.0},
      {"deep-fade", 0.06, nominal_tu_mbps * 0.1, true, 1.0, 0.0},
      {"cloud-outage", 0.04, nominal_tu_mbps, false, 1.0, 0.0},
      {"rtt-spike", 0.03, nominal_tu_mbps, true, 1.0, 200.0},
      {"edge-straggler", 0.02, nominal_tu_mbps, true, 3.0, 0.0},
  };
}

FaultEvaluation RobustDeploymentEvaluator::evaluate_under_faults(
    const DeploymentPlan& plan, const std::vector<FaultScenario>& scenarios) const {
  if (scenarios.empty()) {
    throw std::invalid_argument("evaluate_under_faults: no scenarios");
  }
  double mass = 0.0;
  for (const FaultScenario& s : scenarios) {
    if (s.probability < 0.0 || s.tu_mbps <= 0.0 || s.edge_slowdown < 1.0 ||
        s.rtt_extra_ms < 0.0) {
      throw std::invalid_argument("evaluate_under_faults: malformed scenario '" +
                                  s.name + "'");
    }
    mass += s.probability;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    throw std::invalid_argument("evaluate_under_faults: probabilities must sum to 1");
  }

  const std::vector<DeploymentOption>& options = plan.options();
  FaultEvaluation result;
  result.outcomes.reserve(scenarios.size());
  for (const FaultScenario& s : scenarios) {
    FaultScenarioOutcome outcome;
    outcome.scenario = s;
    // Latency-minimal option still servable under the scenario. The plan's
    // curves price the fault-free path; the scenario overlays stretch the
    // edge compute and (for transmitting options) the round trip. Energy is
    // taken from the plan unchanged: a slow edge draws power for longer but
    // the per-inference work is the same to first order.
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < options.size(); ++i) {
      const DeploymentOption& o = options[i];
      if (!s.cloud_available && o.tx_bytes > 0) continue;
      double latency = plan.option_latency_ms(i, s.tu_mbps) +
                       o.edge_latency_ms * (s.edge_slowdown - 1.0);
      if (o.tx_bytes > 0) latency += s.rtt_extra_ms;
      if (!outcome.servable || latency < best) {
        best = latency;
        outcome.best_option = i;
        outcome.servable = true;
      }
    }
    if (outcome.servable) {
      outcome.latency_ms = best;
      outcome.energy_mj = plan.option_energy_mj(outcome.best_option, s.tu_mbps);
      result.availability += s.probability;
      result.expected_latency_ms += s.probability * outcome.latency_ms;
      result.expected_energy_mj += s.probability * outcome.energy_mj;
    }
    result.outcomes.push_back(outcome);
  }
  if (result.availability > 0.0) {
    result.expected_latency_ms /= result.availability;
    result.expected_energy_mj /= result.availability;
  }
  double nominal_best = std::numeric_limits<double>::infinity();
  const double mean_tu = distribution_.mean();
  for (std::size_t i = 0; i < options.size(); ++i) {
    nominal_best = std::min(nominal_best, plan.option_latency_ms(i, mean_tu));
  }
  if (nominal_best > 0.0 && result.availability > 0.0) {
    result.degradation_ratio = result.expected_latency_ms / nominal_best;
  }
  return result;
}

}  // namespace lens::core
