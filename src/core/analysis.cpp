#include "core/analysis.hpp"

#include "opt/hypervolume.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::core {

double objective_value(const EvaluatedCandidate& candidate, Objective objective,
                       DeploymentPolicy policy) {
  if (objective == kErrorObjective) return candidate.error_percent;
  switch (policy) {
    case DeploymentPolicy::kAsSearched:
      return objective == kLatencyObjective ? candidate.latency_ms : candidate.energy_mj;
    case DeploymentPolicy::kAllEdge: {
      const DeploymentOption& edge = candidate.deployment.all_edge();
      return objective == kLatencyObjective ? edge.latency_ms : edge.energy_mj;
    }
    case DeploymentPolicy::kBestDeployment:
      return objective == kLatencyObjective ? candidate.deployment.best_latency_ms()
                                            : candidate.deployment.best_energy_mj();
  }
  throw std::logic_error("objective_value: unknown policy");
}

opt::ParetoFront front_2d(const std::vector<EvaluatedCandidate>& history, Objective a,
                          Objective b, DeploymentPolicy policy) {
  opt::ParetoFront front;
  for (std::size_t i = 0; i < history.size(); ++i) {
    front.insert(i, {objective_value(history[i], a, policy),
                     objective_value(history[i], b, policy)});
  }
  return front;
}

opt::ParetoFront repartition_front(const opt::ParetoFront& front,
                                   const std::vector<EvaluatedCandidate>& history, Objective a,
                                   Objective b) {
  opt::ParetoFront repartitioned;
  for (const opt::ParetoPoint& p : front.points()) {
    const EvaluatedCandidate& candidate = history.at(p.id);
    repartitioned.insert(
        p.id, {objective_value(candidate, a, DeploymentPolicy::kBestDeployment),
               objective_value(candidate, b, DeploymentPolicy::kBestDeployment)});
  }
  return repartitioned;
}

FrontComparison compare_fronts(const opt::ParetoFront& a, const opt::ParetoFront& b) {
  FrontComparison cmp;
  cmp.a_dominates_b = opt::fraction_dominated(/*victims=*/b, /*aggressors=*/a);
  cmp.b_dominates_a = opt::fraction_dominated(/*victims=*/a, /*aggressors=*/b);
  cmp.combined = opt::combined_front(a, b);
  return cmp;
}

std::vector<double> convergence_curve(const std::vector<EvaluatedCandidate>& history,
                                      Objective a, Objective b,
                                      const std::vector<double>& reference) {
  std::vector<double> curve;
  curve.reserve(history.size());
  opt::ParetoFront front;
  for (std::size_t i = 0; i < history.size(); ++i) {
    front.insert(i, {objective_value(history[i], a, DeploymentPolicy::kAsSearched),
                     objective_value(history[i], b, DeploymentPolicy::kAsSearched)});
    std::vector<std::vector<double>> points;
    points.reserve(front.size());
    for (const opt::ParetoPoint& p : front.points()) points.push_back(p.objectives);
    curve.push_back(opt::hypervolume(points, reference));
  }
  return curve;
}

const opt::ParetoPoint& knee_point(const opt::ParetoFront& front) {
  if (front.empty()) throw std::invalid_argument("knee_point: empty front");
  const std::size_t k = front.points().front().objectives.size();
  std::vector<double> lo(k, 1e300);
  std::vector<double> hi(k, -1e300);
  for (const opt::ParetoPoint& p : front.points()) {
    for (std::size_t j = 0; j < k; ++j) {
      lo[j] = std::min(lo[j], p.objectives[j]);
      hi[j] = std::max(hi[j], p.objectives[j]);
    }
  }
  const opt::ParetoPoint* best = nullptr;
  double best_distance = 1e300;
  for (const opt::ParetoPoint& p : front.points()) {
    double distance = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double width = hi[j] - lo[j];
      const double normalized = width > 1e-12 ? (p.objectives[j] - lo[j]) / width : 0.0;
      distance += normalized * normalized;
    }
    if (distance < best_distance) {
      best_distance = distance;
      best = &p;
    }
  }
  return *best;
}

std::size_t count_satisfying(const std::vector<EvaluatedCandidate>& history,
                             const std::function<bool(const EvaluatedCandidate&)>& predicate) {
  std::size_t n = 0;
  for (const EvaluatedCandidate& c : history) {
    if (predicate(c)) ++n;
  }
  return n;
}

}  // namespace lens::core
