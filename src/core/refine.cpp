#include "core/refine.hpp"

#include <limits>
#include <stdexcept>

namespace lens::core {

std::vector<Genotype> grid_neighbors(const SearchSpace& space, const Genotype& genotype) {
  if (!space.is_valid(genotype)) {
    throw std::invalid_argument("grid_neighbors: invalid genotype");
  }
  std::vector<Genotype> out;
  for (std::size_t d = 0; d < genotype.size(); ++d) {
    for (int delta : {-1, +1}) {
      Genotype neighbor = genotype;
      neighbor[d] += delta;
      if (space.is_valid(neighbor)) out.push_back(std::move(neighbor));
    }
  }
  return out;
}

namespace {

EvaluatedCandidate evaluate_candidate(const SearchSpace& space,
                                      const DeploymentEvaluator& evaluator,
                                      const AccuracyModel& accuracy, const Genotype& g,
                                      const RefineConfig& config) {
  const dnn::Architecture arch = space.decode(g);
  EvaluatedCandidate c;
  c.genotype = g;
  c.name = arch.name();
  c.deployment = evaluator.evaluate(arch, config.tu_mbps);
  c.error_percent = accuracy.test_error_percent(g, arch);
  if (config.mode == ObjectiveMode::kBestDeployment) {
    c.latency_ms = c.deployment.best_latency_ms();
    c.energy_mj = c.deployment.best_energy_mj();
  } else {
    c.latency_ms = c.deployment.all_edge().latency_ms;
    c.energy_mj = c.deployment.all_edge().energy_mj;
  }
  return c;
}

}  // namespace

RefineResult refine(const SearchSpace& space, const DeploymentEvaluator& evaluator,
                    const AccuracyModel& accuracy, const Genotype& start,
                    const RefineConfig& config) {
  if (config.error_weight < 0.0 || config.latency_weight < 0.0 ||
      config.energy_weight < 0.0 ||
      config.error_weight + config.latency_weight + config.energy_weight <= 0.0) {
    throw std::invalid_argument("refine: weights must be non-negative, not all zero");
  }
  RefineResult result;
  result.candidate = evaluate_candidate(space, evaluator, accuracy, start, config);
  ++result.evaluations;

  // Normalize each objective by the starting point's value so the weights
  // are unit-free; guards against zero baselines.
  const double err0 = std::max(result.candidate.error_percent, 1e-9);
  const double lat0 = std::max(result.candidate.latency_ms, 1e-9);
  const double ene0 = std::max(result.candidate.energy_mj, 1e-9);
  auto score = [&](const EvaluatedCandidate& c) {
    return config.error_weight * c.error_percent / err0 +
           config.latency_weight * c.latency_ms / lat0 +
           config.energy_weight * c.energy_mj / ene0;
  };

  double current_score = score(result.candidate);
  result.initial_score = current_score;
  for (int step = 0; step < config.max_steps; ++step) {
    EvaluatedCandidate best_neighbor;
    double best_score = std::numeric_limits<double>::infinity();
    for (const Genotype& g : grid_neighbors(space, result.candidate.genotype)) {
      EvaluatedCandidate c = evaluate_candidate(space, evaluator, accuracy, g, config);
      ++result.evaluations;
      const double s = score(c);
      if (s < best_score) {
        best_score = s;
        best_neighbor = std::move(c);
      }
    }
    if (best_score + 1e-12 >= current_score) break;  // local optimum
    current_score = best_score;
    result.candidate = std::move(best_neighbor);
    ++result.steps_taken;
  }
  result.final_score = current_score;
  return result;
}

}  // namespace lens::core
