#include "core/evaluator.hpp"

#include <stdexcept>
#include <utility>

#include "core/plan.hpp"

namespace lens::core {

std::string deployment_kind_name(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kAllEdge: return "All-Edge";
    case DeploymentKind::kAllCloud: return "All-Cloud";
    case DeploymentKind::kPartitioned: return "Partitioned";
  }
  throw std::logic_error("deployment_kind_name: unknown kind");
}

std::vector<std::string> default_tier_names(std::size_t num_tiers) {
  if (num_tiers < 2) {
    throw std::invalid_argument("default_tier_names: need at least 2 tiers");
  }
  std::vector<std::string> names;
  names.reserve(num_tiers);
  names.emplace_back("edge");
  if (num_tiers == 3) {
    names.emplace_back("fog");
  } else {
    for (std::size_t k = 1; k + 1 < num_tiers; ++k) {
      names.push_back("fog" + std::to_string(k));
    }
  }
  names.emplace_back("cloud");
  return names;
}

std::string option_label(const DeploymentOption& option, const dnn::Architecture& arch,
                         const std::vector<std::string>& tier_names) {
  // Two-tier options (and hand-built legacy options without a cut vector)
  // keep the historical names so existing goldens and CSV consumers see no
  // change.
  if (option.cuts.size() <= 1) {
    switch (option.kind) {
      case DeploymentKind::kAllEdge: return "All-Edge";
      case DeploymentKind::kAllCloud: return "All-Cloud";
      case DeploymentKind::kPartitioned:
        return "split@" + arch.layers().at(option.split_after.value()).name;
    }
    throw std::logic_error("option_label: unknown kind");
  }
  if (tier_names.size() != option.cuts.size() + 1) {
    throw std::invalid_argument("option_label: tier name count does not match cuts");
  }
  const std::size_t n = arch.num_layers();
  std::string out;
  for (std::size_t k = 0; k < tier_names.size(); ++k) {
    const std::size_t begin = k == 0 ? 0 : option.cuts[k - 1];
    const std::size_t end = k == tier_names.size() - 1 ? n : option.cuts[k];
    if (begin == end) continue;  // tier holds no layers
    if (!out.empty()) out += '|';
    out += tier_names[k];
    if (begin != 0) out += '@' + std::to_string(begin);
  }
  return out;
}

std::string DeploymentOption::label(const dnn::Architecture& arch) const {
  if (cuts.size() <= 1) return option_label(*this, arch, {});
  return option_label(*this, arch, default_tier_names(cuts.size() + 1));
}

bool DeploymentEvaluation::has_all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return true;
  }
  return false;
}

const DeploymentOption& DeploymentEvaluation::all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Edge option");
}

const DeploymentOption& DeploymentEvaluation::all_cloud() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllCloud) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Cloud option");
}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, dnn::DataSizeModel sizes)
    : DeploymentEvaluator(model, std::move(comm), EvaluatorConfig{sizes, 0}) {}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, EvaluatorConfig config)
    : topology_(TierTopology::two_tier(model, std::move(comm),
                                       config.edge_memory_budget_bytes, config.cloud_model)),
      config_(config) {}

DeploymentEvaluator::DeploymentEvaluator(TierTopology topology, dnn::DataSizeModel sizes)
    : topology_(std::move(topology)), config_() {
  config_.sizes = sizes;
  config_.edge_memory_budget_bytes = topology_.tier(0).memory_budget_bytes;
  config_.cloud_model = topology_.tier(topology_.num_tiers() - 1).model;
}

DeploymentPlan DeploymentEvaluator::compile(const dnn::Architecture& arch) const {
  if (topology_.num_tiers() == 2) return compile_two_tier(arch);
  return compile_multitier(arch);
}

DeploymentEvaluation DeploymentEvaluator::evaluate(const dnn::Architecture& arch,
                                                   double tu_mbps) const {
  return compile(arch).price(tu_mbps);
}

}  // namespace lens::core
