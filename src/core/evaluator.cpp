#include "core/evaluator.hpp"

#include <stdexcept>

#include "core/plan.hpp"

namespace lens::core {

std::string deployment_kind_name(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kAllEdge: return "All-Edge";
    case DeploymentKind::kAllCloud: return "All-Cloud";
    case DeploymentKind::kPartitioned: return "Partitioned";
  }
  throw std::logic_error("deployment_kind_name: unknown kind");
}

std::string DeploymentOption::label(const dnn::Architecture& arch) const {
  switch (kind) {
    case DeploymentKind::kAllEdge: return "All-Edge";
    case DeploymentKind::kAllCloud: return "All-Cloud";
    case DeploymentKind::kPartitioned:
      return "split@" + arch.layers().at(split_after.value()).name;
  }
  throw std::logic_error("DeploymentOption::label: unknown kind");
}

bool DeploymentEvaluation::has_all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return true;
  }
  return false;
}

const DeploymentOption& DeploymentEvaluation::all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Edge option");
}

const DeploymentOption& DeploymentEvaluation::all_cloud() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllCloud) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Cloud option");
}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, dnn::DataSizeModel sizes)
    : DeploymentEvaluator(model, std::move(comm), EvaluatorConfig{sizes, 0}) {}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, EvaluatorConfig config)
    : model_(model), comm_(std::move(comm)), config_(config) {}

DeploymentEvaluation DeploymentEvaluator::evaluate(const dnn::Architecture& arch,
                                                   double tu_mbps) const {
  return compile(arch).price(tu_mbps);
}

}  // namespace lens::core
