#include "core/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::core {

std::string deployment_kind_name(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kAllEdge: return "All-Edge";
    case DeploymentKind::kAllCloud: return "All-Cloud";
    case DeploymentKind::kPartitioned: return "Partitioned";
  }
  throw std::logic_error("deployment_kind_name: unknown kind");
}

std::string DeploymentOption::label(const dnn::Architecture& arch) const {
  switch (kind) {
    case DeploymentKind::kAllEdge: return "All-Edge";
    case DeploymentKind::kAllCloud: return "All-Cloud";
    case DeploymentKind::kPartitioned:
      return "split@" + arch.layers().at(split_after.value()).name;
  }
  throw std::logic_error("DeploymentOption::label: unknown kind");
}

bool DeploymentEvaluation::has_all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return true;
  }
  return false;
}

const DeploymentOption& DeploymentEvaluation::all_edge() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllEdge) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Edge option");
}

const DeploymentOption& DeploymentEvaluation::all_cloud() const {
  for (const DeploymentOption& o : options) {
    if (o.kind == DeploymentKind::kAllCloud) return o;
  }
  throw std::logic_error("DeploymentEvaluation: missing All-Cloud option");
}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, dnn::DataSizeModel sizes)
    : DeploymentEvaluator(model, std::move(comm), EvaluatorConfig{sizes, 0}) {}

DeploymentEvaluator::DeploymentEvaluator(const perf::LayerPerformanceModel& model,
                                         comm::CommModel comm, EvaluatorConfig config)
    : model_(model), comm_(std::move(comm)), config_(config) {}

DeploymentEvaluation DeploymentEvaluator::evaluate(const dnn::Architecture& arch,
                                                   double tu_mbps) const {
  DeploymentEvaluation result;
  const std::size_t n = arch.num_layers();

  // Lines 5-8: per-layer prediction.
  result.layer_latency_ms.reserve(n);
  result.layer_energy_mj.reserve(n);
  for (const dnn::LayerInfo& info : arch.layers()) {
    const perf::LayerMeasurement m = model_.predict(info.spec, info.input);
    result.layer_latency_ms.push_back(m.latency_ms);
    result.layer_energy_mj.push_back(m.energy_mj());
  }

  // Cloud execution time of the suffix starting at layer `first` (0 when
  // the paper's infinite-cloud assumption is in force).
  std::vector<double> cloud_suffix_ms(n + 1, 0.0);
  if (config_.cloud_model != nullptr) {
    for (std::size_t i = n; i-- > 0;) {
      const dnn::LayerInfo& info = arch.layers()[i];
      cloud_suffix_ms[i] =
          cloud_suffix_ms[i + 1] +
          config_.cloud_model->predict(info.spec, info.input).latency_ms;
    }
  }

  // All-Cloud: ship the raw input, wait for the answer. Always feasible —
  // nothing is resident on the edge.
  {
    DeploymentOption o;
    o.kind = DeploymentKind::kAllCloud;
    o.tx_bytes = arch.input_bytes(config_.sizes);
    o.edge_latency_ms = 0.0;
    o.edge_energy_mj = 0.0;
    o.cloud_latency_ms = cloud_suffix_ms[0];
    o.latency_ms = comm_.comm_latency_ms(o.tx_bytes, tu_mbps) + o.cloud_latency_ms;
    o.energy_mj = comm_.tx_energy_mj(o.tx_bytes, tu_mbps);
    result.options.push_back(o);
  }

  // Lines 9-12: each viable split point, with accumulated edge cost plus the
  // transfer of that layer's output. Options whose edge-resident weights
  // exceed the memory budget are skipped.
  const std::uint64_t budget = config_.edge_memory_budget_bytes;
  double latency_prefix = 0.0;
  double energy_prefix = 0.0;
  std::uint64_t weight_prefix = 0;
  const std::uint64_t input_bytes = arch.input_bytes(config_.sizes);
  for (std::size_t i = 0; i < n; ++i) {
    latency_prefix += result.layer_latency_ms[i];
    energy_prefix += result.layer_energy_mj[i];
    weight_prefix += 4ULL * arch.layers()[i].params;
    const std::uint64_t out_bytes = arch.output_bytes(i, config_.sizes);
    const bool viable = out_bytes < input_bytes;
    const bool fits = budget == 0 || weight_prefix <= budget;
    const bool last = i + 1 == n;
    if (last && fits) {
      // All-Edge: full on-device execution, no transfer.
      DeploymentOption o;
      o.kind = DeploymentKind::kAllEdge;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.latency_ms = latency_prefix;
      o.energy_mj = energy_prefix;
      o.edge_weight_bytes = weight_prefix;
      result.options.push_back(o);
    } else if (!last && viable && fits) {
      DeploymentOption o;
      o.kind = DeploymentKind::kPartitioned;
      o.split_after = i;
      o.tx_bytes = out_bytes;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.cloud_latency_ms = cloud_suffix_ms[i + 1];
      o.latency_ms = latency_prefix + comm_.comm_latency_ms(out_bytes, tu_mbps) +
                     o.cloud_latency_ms;
      o.energy_mj = energy_prefix + comm_.tx_energy_mj(out_bytes, tu_mbps);
      o.edge_weight_bytes = weight_prefix;
      result.options.push_back(o);
    }
  }

  // Lines 13-14: independent minima for each objective.
  result.best_latency_option = 0;
  result.best_energy_option = 0;
  for (std::size_t i = 1; i < result.options.size(); ++i) {
    if (result.options[i].latency_ms <
        result.options[result.best_latency_option].latency_ms) {
      result.best_latency_option = i;
    }
    if (result.options[i].energy_mj < result.options[result.best_energy_option].energy_mj) {
      result.best_energy_option = i;
    }
  }
  return result;
}

}  // namespace lens::core
