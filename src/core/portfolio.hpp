#pragma once
// Multi-region deployment planning (extension of the paper's Table-I
// motivation): the same application ships to markets with very different
// expected uplinks. Given a searched Pareto set, evaluate each frontier
// model across all target regions and pick the architecture minimizing an
// aggregate (mean or worst-case) of its per-region best-deployment costs,
// subject to an accuracy bound.

#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/nas.hpp"

namespace lens::core {

/// One deployment market.
struct Region {
  std::string name;
  double tu_mbps = 3.0;
};

/// How per-region costs aggregate into a single score.
enum class Aggregate { kMean, kWorstCase };

struct PortfolioConfig {
  Objective objective = kEnergyObjective;  ///< kLatencyObjective or kEnergyObjective
  Aggregate aggregate = Aggregate::kMean;
  /// Only frontier members with error below this bound are considered.
  double max_error_percent = 100.0;
};

/// Per-region outcome for the selected model.
struct RegionPlan {
  Region region;
  std::string deployment_label;  ///< e.g. "split@pool5"
  double cost = 0.0;             ///< ms or mJ per the objective
};

struct PortfolioResult {
  std::size_t history_index = 0;     ///< selected candidate in result.history
  std::string architecture_name;
  double aggregate_cost = 0.0;
  std::vector<RegionPlan> plans;     ///< one per region, same order as input
};

/// Evaluate every accuracy-feasible frontier member of `result` across
/// `regions` with `evaluator` and return the aggregate-minimizing plan.
/// Throws std::invalid_argument when regions is empty or no frontier member
/// meets the accuracy bound.
PortfolioResult plan_portfolio(const NasResult& result, const SearchSpace& space,
                               const DeploymentEvaluator& evaluator,
                               const std::vector<Region>& regions,
                               const PortfolioConfig& config = {});

}  // namespace lens::core
