#pragma once
// Algorithm 1 of the paper: performance-objective evaluation of a candidate
// architecture under its *best* deployment option.
//
// For every layer, latency and power are estimated with the trained
// prediction models; layers whose output is smaller on the wire than the
// model input are candidate partition points; each candidate's cost is the
// accumulated on-device cost up to that layer plus the cost of shipping its
// output to the cloud. All-Edge (never transmit) and All-Cloud (ship the raw
// input) complete the option set. The minima over options are the latency /
// energy objective values (computed independently — the best split for
// latency need not be the best split for energy).
//
// The algorithm runs in two stages (core/plan.hpp): compile(arch) does all
// predictor work once and yields a throughput-independent DeploymentPlan;
// price(tu) instantiates the evaluation for a concrete throughput.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "comm/commcost.hpp"
#include "core/topology.hpp"
#include "dnn/architecture.hpp"
#include "dnn/datasize.hpp"
#include "perf/predictor.hpp"

namespace lens::core {

/// The three deployment families of Fig. 5. Under K-tier topologies the
/// classification generalizes: everything on tier 0 is kAllEdge, everything
/// on the last tier is kAllCloud, anything else is kPartitioned.
enum class DeploymentKind { kAllEdge, kAllCloud, kPartitioned };

std::string deployment_kind_name(DeploymentKind kind);

/// One concrete deployment option with its end-to-end cost at the evaluated
/// throughput.
struct DeploymentOption {
  DeploymentKind kind = DeploymentKind::kAllEdge;
  /// Index of the last edge-side layer (kPartitioned only, 2-tier plans).
  std::optional<std::size_t> split_after;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Edge-side execution cost only (no communication). These are throughput
  /// independent; the runtime module rebuilds cost-vs-t_u curves from them.
  double edge_latency_ms = 0.0;
  double edge_energy_mj = 0.0;
  /// Bytes shipped over the first hop for this option (0 for All-Edge).
  std::uint64_t tx_bytes = 0;
  /// fp32 weight bytes resident on the edge device for this option.
  std::uint64_t edge_weight_bytes = 0;
  /// Off-device execution latency of the offloaded layers, summed over all
  /// remote tiers (0 under the paper's infinite-cloud assumption).
  /// Throughput-independent.
  double cloud_latency_ms = 0.0;

  // K-tier generalization. For a K-tier plan the option is a cut vector
  // c_1 <= ... <= c_{K-1}: tier k runs layers [c_k, c_{k+1}) with c_0 = 0 and
  // c_K = n. The legacy scalar fields above stay populated for every K
  // (edge_* = tier 0, tx_bytes = hop 0, cloud_latency_ms = remote total).

  /// Cut boundaries, size K-1 ({c} for the classic two-tier split).
  std::vector<std::size_t> cuts;
  /// Per-tier compute latency, size K; [0] == edge_latency_ms.
  std::vector<double> tier_latency_ms;
  /// Bytes transmitted over each hop, size K-1; [0] == tx_bytes. A hop past
  /// the last occupied tier carries nothing (0).
  std::vector<std::uint64_t> hop_tx_bytes;

  /// Human-readable label, e.g. "All-Edge", "All-Cloud", "split@pool5",
  /// using default tier names for K >= 3. Prefer option_label() when the
  /// real topology names are at hand.
  std::string label(const dnn::Architecture& arch) const;
};

/// Default tier names by hierarchy depth: {edge, cloud}, {edge, fog, cloud},
/// then {edge, fog1, ..., cloud}.
std::vector<std::string> default_tier_names(std::size_t num_tiers);

/// The shared cut-vector formatter used by the CLI, CSV export, and
/// viz::ascii. Two-tier options keep the legacy names ("All-Edge",
/// "All-Cloud", "split@<layer>") so existing goldens stay valid; deeper
/// hierarchies render the occupied tiers as "edge|fog@4|cloud@9" where @i is
/// the first layer index placed on that tier.
std::string option_label(const DeploymentOption& option, const dnn::Architecture& arch,
                         const std::vector<std::string>& tier_names);

/// Full result of one Algorithm-1 evaluation.
struct DeploymentEvaluation {
  /// Every option considered (All-Cloud, each viable split, All-Edge).
  std::vector<DeploymentOption> options;
  std::size_t best_latency_option = 0;  ///< index into options
  std::size_t best_energy_option = 0;   ///< index into options
  /// Per-layer predicted execution cost on the edge device.
  std::vector<double> layer_latency_ms;
  std::vector<double> layer_energy_mj;

  double best_latency_ms() const { return options[best_latency_option].latency_ms; }
  double best_energy_mj() const { return options[best_energy_option].energy_mj; }
  const DeploymentOption& latency_choice() const { return options[best_latency_option]; }
  const DeploymentOption& energy_choice() const { return options[best_energy_option]; }

  /// True when an All-Edge option exists (it can be filtered out by the
  /// edge memory budget).
  bool has_all_edge() const;
  /// All-Edge entry; throws std::logic_error when the memory budget removed
  /// it. All-Cloud is always present.
  const DeploymentOption& all_edge() const;
  const DeploymentOption& all_cloud() const;
};

struct EvaluatorConfig {
  dnn::DataSizeModel sizes;
  /// Edge memory budget (bytes of fp32 weights the device can hold); 0 means
  /// unlimited. Options whose edge-side weights exceed the budget are not
  /// generated (All-Cloud keeps nothing on the edge and is always feasible).
  std::uint64_t edge_memory_budget_bytes = 0;
  /// Optional cloud-side performance model (non-owning; must outlive the
  /// evaluator). When set, the cloud execution latency of the offloaded
  /// suffix is added to each transmitting option's latency — lifting the
  /// paper's "L_cloud is negligible" assumption (§III-A). Cloud energy is
  /// never billed to the edge. nullptr keeps the paper's model.
  const perf::LayerPerformanceModel* cloud_model = nullptr;
};

class DeploymentPlan;

/// Algorithm-1 evaluator bound to a tier topology (performance models per
/// tier, communication model per hop) and a wire-size policy. The historical
/// two-argument form — one edge model, one comm model — builds the K=2
/// topology internally and compiles through a frozen legacy path that is
/// bit-identical to the pre-K-tier code.
class DeploymentEvaluator {
 public:
  DeploymentEvaluator(const perf::LayerPerformanceModel& model, comm::CommModel comm,
                      dnn::DataSizeModel sizes = {});
  DeploymentEvaluator(const perf::LayerPerformanceModel& model, comm::CommModel comm,
                      EvaluatorConfig config);
  /// K-tier form. Tier budgets come from the topology;
  /// `config.edge_memory_budget_bytes` and `config.cloud_model` are ignored
  /// (tier 0 / last tier of the topology are authoritative).
  DeploymentEvaluator(TierTopology topology, dnn::DataSizeModel sizes = {});

  /// Compile `arch` into a throughput-independent DeploymentPlan: runs the
  /// per-layer predictors once, precomputes prefix/suffix sums per tier, the
  /// feasible (and for K >= 3, dominance-pruned) cut-point lattice, and
  /// per-option cost curves. The returned plan prices any throughput vector
  /// in O(options). Defined in core/plan.hpp (include it to use the plan).
  DeploymentPlan compile(const dnn::Architecture& arch) const;

  /// Evaluate all deployment options of `arch` at upload throughput
  /// `tu_mbps`. Thin compile(arch).price(tu_mbps) wrapper — bit-identical
  /// to the historical single-stage implementation; prefer holding the plan
  /// when evaluating the same architecture at several throughputs. Two-tier
  /// topologies only; deeper hierarchies price with a throughput vector.
  DeploymentEvaluation evaluate(const dnn::Architecture& arch, double tu_mbps) const;

  const comm::CommModel& comm() const { return topology_.hop(0); }
  const dnn::DataSizeModel& sizes() const { return config_.sizes; }
  const EvaluatorConfig& config() const { return config_; }
  const TierTopology& topology() const { return topology_; }

 private:
  DeploymentPlan compile_two_tier(const dnn::Architecture& arch) const;
  DeploymentPlan compile_multitier(const dnn::Architecture& arch) const;

  TierTopology topology_;
  EvaluatorConfig config_;
};

}  // namespace lens::core
