#pragma once
// Algorithm 1 of the paper: performance-objective evaluation of a candidate
// architecture under its *best* deployment option.
//
// For every layer, latency and power are estimated with the trained
// prediction models; layers whose output is smaller on the wire than the
// model input are candidate partition points; each candidate's cost is the
// accumulated on-device cost up to that layer plus the cost of shipping its
// output to the cloud. All-Edge (never transmit) and All-Cloud (ship the raw
// input) complete the option set. The minima over options are the latency /
// energy objective values (computed independently — the best split for
// latency need not be the best split for energy).
//
// The algorithm runs in two stages (core/plan.hpp): compile(arch) does all
// predictor work once and yields a throughput-independent DeploymentPlan;
// price(tu) instantiates the evaluation for a concrete throughput.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "comm/commcost.hpp"
#include "dnn/architecture.hpp"
#include "dnn/datasize.hpp"
#include "perf/predictor.hpp"

namespace lens::core {

/// The three deployment families of Fig. 5.
enum class DeploymentKind { kAllEdge, kAllCloud, kPartitioned };

std::string deployment_kind_name(DeploymentKind kind);

/// One concrete deployment option with its end-to-end cost at the evaluated
/// throughput.
struct DeploymentOption {
  DeploymentKind kind = DeploymentKind::kAllEdge;
  /// Index of the last edge-side layer (kPartitioned only).
  std::optional<std::size_t> split_after;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Edge-side execution cost only (no communication). These are throughput
  /// independent; the runtime module rebuilds cost-vs-t_u curves from them.
  double edge_latency_ms = 0.0;
  double edge_energy_mj = 0.0;
  /// Bytes shipped to the cloud for this option (0 for All-Edge).
  std::uint64_t tx_bytes = 0;
  /// fp32 weight bytes resident on the edge device for this option.
  std::uint64_t edge_weight_bytes = 0;
  /// Cloud-side execution latency of the offloaded suffix (0 under the
  /// paper's infinite-cloud assumption). Throughput-independent.
  double cloud_latency_ms = 0.0;

  /// Human-readable label, e.g. "All-Edge", "All-Cloud", "split@pool5".
  std::string label(const dnn::Architecture& arch) const;
};

/// Full result of one Algorithm-1 evaluation.
struct DeploymentEvaluation {
  /// Every option considered (All-Cloud, each viable split, All-Edge).
  std::vector<DeploymentOption> options;
  std::size_t best_latency_option = 0;  ///< index into options
  std::size_t best_energy_option = 0;   ///< index into options
  /// Per-layer predicted execution cost on the edge device.
  std::vector<double> layer_latency_ms;
  std::vector<double> layer_energy_mj;

  double best_latency_ms() const { return options[best_latency_option].latency_ms; }
  double best_energy_mj() const { return options[best_energy_option].energy_mj; }
  const DeploymentOption& latency_choice() const { return options[best_latency_option]; }
  const DeploymentOption& energy_choice() const { return options[best_energy_option]; }

  /// True when an All-Edge option exists (it can be filtered out by the
  /// edge memory budget).
  bool has_all_edge() const;
  /// All-Edge entry; throws std::logic_error when the memory budget removed
  /// it. All-Cloud is always present.
  const DeploymentOption& all_edge() const;
  const DeploymentOption& all_cloud() const;
};

struct EvaluatorConfig {
  dnn::DataSizeModel sizes;
  /// Edge memory budget (bytes of fp32 weights the device can hold); 0 means
  /// unlimited. Options whose edge-side weights exceed the budget are not
  /// generated (All-Cloud keeps nothing on the edge and is always feasible).
  std::uint64_t edge_memory_budget_bytes = 0;
  /// Optional cloud-side performance model (non-owning; must outlive the
  /// evaluator). When set, the cloud execution latency of the offloaded
  /// suffix is added to each transmitting option's latency — lifting the
  /// paper's "L_cloud is negligible" assumption (§III-A). Cloud energy is
  /// never billed to the edge. nullptr keeps the paper's model.
  const perf::LayerPerformanceModel* cloud_model = nullptr;
};

class DeploymentPlan;

/// Algorithm-1 evaluator bound to a performance model, a communication
/// model, and a wire-size / memory policy.
class DeploymentEvaluator {
 public:
  DeploymentEvaluator(const perf::LayerPerformanceModel& model, comm::CommModel comm,
                      dnn::DataSizeModel sizes = {});
  DeploymentEvaluator(const perf::LayerPerformanceModel& model, comm::CommModel comm,
                      EvaluatorConfig config);

  /// Compile `arch` into a throughput-independent DeploymentPlan: runs the
  /// per-layer predictors once, precomputes prefix/suffix sums, feasible
  /// split points, and per-option cost curves. O(l) in the number of
  /// layers; the returned plan prices any t_u in O(options). Defined in
  /// core/plan.hpp (include it to use the plan).
  DeploymentPlan compile(const dnn::Architecture& arch) const;

  /// Evaluate all deployment options of `arch` at upload throughput
  /// `tu_mbps`. Thin compile(arch).price(tu_mbps) wrapper — bit-identical
  /// to the historical single-stage implementation; prefer holding the plan
  /// when evaluating the same architecture at several throughputs.
  DeploymentEvaluation evaluate(const dnn::Architecture& arch, double tu_mbps) const;

  const comm::CommModel& comm() const { return comm_; }
  const dnn::DataSizeModel& sizes() const { return config_.sizes; }
  const EvaluatorConfig& config() const { return config_; }

 private:
  const perf::LayerPerformanceModel& model_;
  comm::CommModel comm_;
  EvaluatorConfig config_;
};

}  // namespace lens::core
