#pragma once
// K-tier deployment topologies: an ordered chain of compute tiers
// (tier 0 = the battery-powered edge device, tier K-1 = the deepest server)
// joined by K-1 network hops. The two-tier edge-cloud pair the paper studies
// is the K=2 special case; a built-in edge-fog-cloud preset provides the
// first K=3 scenario family.
//
// A TierTopology is a *description* — per-tier performance models (non-owning,
// like EvaluatorConfig::cloud_model) plus per-hop communication models. The
// DeploymentEvaluator consumes it to enumerate the cut-point lattice: K-1
// ordered cut boundaries 0 <= c_1 <= ... <= c_{K-1} <= n, with tier k running
// layers [c_k, c_{k+1}) and hop h shipping the activation at boundary c_{h+1}
// whenever any layer runs past tier h.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/commcost.hpp"
#include "perf/predictor.hpp"

namespace lens::core {

/// One compute tier in the hierarchy.
struct TierSpec {
  std::string name;
  /// Performance model for layers placed on this tier. nullptr means the
  /// tier's compute is free (the paper's infinite-cloud assumption) — only
  /// meaningful for tiers past the edge device. Non-owning; must outlive
  /// every evaluator built from the topology.
  const perf::LayerPerformanceModel* model = nullptr;
  /// fp32 weight bytes this tier can hold; 0 = unlimited.
  std::uint64_t memory_budget_bytes = 0;
};

/// An ordered edge-to-cloud chain: K tiers, K-1 hops. Tier 0 is always the
/// edge device (it must have a performance model — its compute and energy
/// are what the NAS objectives bill); hop h connects tier h to tier h+1.
class TierTopology {
 public:
  TierTopology(std::vector<TierSpec> tiers, std::vector<comm::CommModel> hops);

  /// The classic edge-cloud pair as a topology. `cloud_model` may be nullptr
  /// (free cloud); `edge_budget_bytes` 0 means unlimited.
  static TierTopology two_tier(const perf::LayerPerformanceModel& edge_model,
                               comm::CommModel radio, std::uint64_t edge_budget_bytes = 0,
                               const perf::LayerPerformanceModel* cloud_model = nullptr);

  std::size_t num_tiers() const { return tiers_.size(); }
  std::size_t num_hops() const { return hops_.size(); }
  const TierSpec& tier(std::size_t k) const { return tiers_.at(k); }
  const comm::CommModel& hop(std::size_t h) const { return hops_.at(h); }
  const std::vector<TierSpec>& tiers() const { return tiers_; }
  const std::vector<comm::CommModel>& hops() const { return hops_; }
  std::vector<std::string> tier_names() const;

 private:
  std::vector<TierSpec> tiers_;
  std::vector<comm::CommModel> hops_;
};

/// Knobs of the built-in 3-tier preset below.
struct EdgeFogCloudConfig {
  /// Hop 0: the device's radio link to the fog node.
  comm::CommModel radio{comm::WirelessTechnology::kWifi, 5.0};
  /// Hop 1: the fog node's backhaul to the cloud. Backhaul transfers are
  /// not billed to the device battery, so only its latency curve matters.
  comm::CommModel backhaul{comm::WirelessTechnology::kWifi, 20.0};
  std::uint64_t edge_memory_budget_bytes = 0;
  std::uint64_t fog_memory_budget_bytes = 0;
};

/// Built-in 3-tier scenario family: edge device -> fog node -> cloud.
/// `fog_model` serves the middle tier; `cloud_model` may be nullptr for the
/// paper's free-cloud assumption. Models are non-owning.
TierTopology edge_fog_cloud(const perf::LayerPerformanceModel& edge_model,
                            const perf::LayerPerformanceModel& fog_model,
                            const perf::LayerPerformanceModel* cloud_model,
                            const EdgeFogCloudConfig& config);

}  // namespace lens::core
