#include "core/plan.hpp"

#include <stdexcept>
#include <utility>

namespace lens::core {

DeploymentPlan DeploymentEvaluator::compile(const dnn::Architecture& arch) const {
  DeploymentPlan plan;
  plan.comm_ = comm_;
  const std::size_t n = arch.num_layers();

  // Lines 5-8: per-layer prediction — the only predictor calls of the whole
  // compile/price pipeline.
  plan.layer_latency_ms_.reserve(n);
  plan.layer_energy_mj_.reserve(n);
  for (const dnn::LayerInfo& info : arch.layers()) {
    const perf::LayerMeasurement m = model_.predict(info.spec, info.input);
    plan.layer_latency_ms_.push_back(m.latency_ms);
    plan.layer_energy_mj_.push_back(m.energy_mj());
  }

  // Cloud execution time of the suffix starting at layer `first` (0 when
  // the paper's infinite-cloud assumption is in force).
  std::vector<double> cloud_suffix_ms(n + 1, 0.0);
  if (config_.cloud_model != nullptr) {
    for (std::size_t i = n; i-- > 0;) {
      const dnn::LayerInfo& info = arch.layers()[i];
      cloud_suffix_ms[i] =
          cloud_suffix_ms[i + 1] +
          config_.cloud_model->predict(info.spec, info.input).latency_ms;
    }
  }

  const std::uint64_t input_bytes = arch.input_bytes(config_.sizes);

  // All-Cloud: ship the raw input, wait for the answer. Always feasible —
  // nothing is resident on the edge.
  {
    DeploymentOption o;
    o.kind = DeploymentKind::kAllCloud;
    o.tx_bytes = input_bytes;
    o.edge_latency_ms = 0.0;
    o.edge_energy_mj = 0.0;
    o.cloud_latency_ms = cloud_suffix_ms[0];
    plan.options_.push_back(o);
  }

  // Lines 9-12: each viable split point with its accumulated edge cost.
  // Options whose edge-resident weights exceed the memory budget are
  // skipped.
  const std::uint64_t budget = config_.edge_memory_budget_bytes;
  double latency_prefix = 0.0;
  double energy_prefix = 0.0;
  std::uint64_t weight_prefix = 0;
  for (std::size_t i = 0; i < n; ++i) {
    latency_prefix += plan.layer_latency_ms_[i];
    energy_prefix += plan.layer_energy_mj_[i];
    weight_prefix += 4ULL * arch.layers()[i].params;
    const std::uint64_t out_bytes = arch.output_bytes(i, config_.sizes);
    const bool viable = out_bytes < input_bytes;
    const bool fits = budget == 0 || weight_prefix <= budget;
    const bool last = i + 1 == n;
    if (last && fits) {
      // All-Edge: full on-device execution, no transfer.
      DeploymentOption o;
      o.kind = DeploymentKind::kAllEdge;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.edge_weight_bytes = weight_prefix;
      plan.options_.push_back(o);
    } else if (!last && viable && fits) {
      DeploymentOption o;
      o.kind = DeploymentKind::kPartitioned;
      o.split_after = i;
      o.tx_bytes = out_bytes;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.cloud_latency_ms = cloud_suffix_ms[i + 1];
      o.edge_weight_bytes = weight_prefix;
      plan.options_.push_back(o);
    }
  }

  // Per-option closed-form curves; the comm algebra comes from CommModel.
  plan.latency_curves_.reserve(plan.options_.size());
  plan.energy_curves_.reserve(plan.options_.size());
  for (const DeploymentOption& o : plan.options_) {
    comm::CostCurve latency{o.edge_latency_ms + o.cloud_latency_ms, 0.0};
    comm::CostCurve energy{o.edge_energy_mj, 0.0};
    if (o.tx_bytes > 0) {
      const comm::CostCurve tx_latency = comm_.comm_latency_curve(o.tx_bytes);
      latency.constant += tx_latency.constant;
      latency.per_inverse_tu = tx_latency.per_inverse_tu;
      const comm::CostCurve tx_energy = comm_.tx_energy_curve(o.tx_bytes);
      energy.constant += tx_energy.constant;
      energy.per_inverse_tu = tx_energy.per_inverse_tu;
    }
    plan.latency_curves_.push_back(latency);
    plan.energy_curves_.push_back(energy);
  }
  return plan;
}

// The pricing arithmetic deliberately mirrors the legacy evaluate() path
// term-for-term (edge prefix + comm + cloud suffix, in that order) so priced
// plans are bit-identical to the pre-refactor results.

double DeploymentPlan::option_latency_ms(std::size_t index, double tu_mbps) const {
  const DeploymentOption& o = options_.at(index);
  if (o.tx_bytes == 0) return o.edge_latency_ms;
  return o.edge_latency_ms + comm_.comm_latency_ms(o.tx_bytes, tu_mbps) +
         o.cloud_latency_ms;
}

double DeploymentPlan::option_energy_mj(std::size_t index, double tu_mbps) const {
  const DeploymentOption& o = options_.at(index);
  if (o.tx_bytes == 0) return o.edge_energy_mj;
  return o.edge_energy_mj + comm_.tx_energy_mj(o.tx_bytes, tu_mbps);
}

DeploymentEvaluation DeploymentPlan::price(double tu_mbps) const {
  DeploymentEvaluation result;
  price_into(tu_mbps, result);
  return result;
}

void DeploymentPlan::price_into(double tu_mbps, DeploymentEvaluation& out) const {
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  out.options.assign(options_.begin(), options_.end());
  out.layer_latency_ms = layer_latency_ms_;
  out.layer_energy_mj = layer_energy_mj_;
  for (DeploymentOption& o : out.options) {
    if (o.tx_bytes == 0) {
      o.latency_ms = o.edge_latency_ms;
      o.energy_mj = o.edge_energy_mj;
    } else {
      o.latency_ms = o.edge_latency_ms + comm_.comm_latency_ms(o.tx_bytes, tu_mbps) +
                     o.cloud_latency_ms;
      o.energy_mj = o.edge_energy_mj + comm_.tx_energy_mj(o.tx_bytes, tu_mbps);
    }
  }

  // Lines 13-14: independent minima for each objective.
  out.best_latency_option = 0;
  out.best_energy_option = 0;
  for (std::size_t i = 1; i < out.options.size(); ++i) {
    if (out.options[i].latency_ms < out.options[out.best_latency_option].latency_ms) {
      out.best_latency_option = i;
    }
    if (out.options[i].energy_mj < out.options[out.best_energy_option].energy_mj) {
      out.best_energy_option = i;
    }
  }
}

PricedObjectives DeploymentPlan::objectives_at(double tu_mbps) const {
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  PricedObjectives best;
  best.best_latency_ms = option_latency_ms(0, tu_mbps);
  best.best_energy_mj = option_energy_mj(0, tu_mbps);
  for (std::size_t i = 1; i < options_.size(); ++i) {
    const double latency = option_latency_ms(i, tu_mbps);
    const double energy = option_energy_mj(i, tu_mbps);
    if (latency < best.best_latency_ms) {
      best.best_latency_ms = latency;
      best.best_latency_option = i;
    }
    if (energy < best.best_energy_mj) {
      best.best_energy_mj = energy;
      best.best_energy_option = i;
    }
  }
  return best;
}

std::vector<PricedObjectives> DeploymentPlan::price_batch(
    const std::vector<double>& tus_mbps) const {
  // Option-outer / throughput-inner sweep with running minima. Per option
  // the curve terms (edge costs, bits, cloud suffix, radio-power
  // coefficients) are hoisted once and the inner loop over throughputs is a
  // pure map — independent iterations the compiler vectorizes. Every
  // arithmetic expression below replicates option_latency_ms /
  // option_energy_mj (via CommModel's inline formulas) term-for-term, and
  // the minima are updated with the same strict-< in ascending option
  // order, so the result is bit-identical to the per-throughput
  // objectives_at() loop — which tests keep as the scalar oracle.
  const std::size_t m = tus_mbps.size();
  if (m == 0) return {};
  if (tus_mbps.front() <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  for (double tu : tus_mbps) {
    if (tu <= 0.0) {
      throw std::invalid_argument("DeploymentPlan: throughput must be positive");
    }
  }

  const double rtt = comm_.round_trip_ms();
  const double alpha = comm_.power_model().alpha_mw_per_mbps;
  const double beta = comm_.power_model().beta_mw;
  std::vector<PricedObjectives> out(m);

  for (std::size_t opt = 0; opt < options_.size(); ++opt) {
    const DeploymentOption& o = options_[opt];
    if (o.tx_bytes == 0) {
      // Throughput-free option: one candidate value for the whole sweep.
      const double latency = o.edge_latency_ms;
      const double energy = o.edge_energy_mj;
      for (std::size_t t = 0; t < m; ++t) {
        if (opt == 0 || latency < out[t].best_latency_ms) {
          out[t].best_latency_ms = latency;
          out[t].best_latency_option = opt;
        }
        if (opt == 0 || energy < out[t].best_energy_mj) {
          out[t].best_energy_mj = energy;
          out[t].best_energy_option = opt;
        }
      }
      continue;
    }
    const double bits = static_cast<double>(o.tx_bytes) * 8.0;
    const double edge_latency = o.edge_latency_ms;
    const double cloud_latency = o.cloud_latency_ms;
    const double edge_energy = o.edge_energy_mj;
    for (std::size_t t = 0; t < m; ++t) {
      const double tu = tus_mbps[t];
      const double tx_ms = bits / (tu * 1e3);
      const double latency = edge_latency + (tx_ms + rtt) + cloud_latency;
      const double energy = edge_energy + (alpha * tu + beta) * (tx_ms / 1e3);
      if (opt == 0 || latency < out[t].best_latency_ms) {
        out[t].best_latency_ms = latency;
        out[t].best_latency_option = opt;
      }
      if (opt == 0 || energy < out[t].best_energy_mj) {
        out[t].best_energy_mj = energy;
        out[t].best_energy_option = opt;
      }
    }
  }
  return out;
}

}  // namespace lens::core
